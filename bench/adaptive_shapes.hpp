// Shared communication shapes for the adaptive-protocol benchmarks.
//
// bench_ablation_rendezvous sweeps static thresholds over these shapes and
// reports each shape's optimal static threshold; bench_adaptive runs the
// same shapes with the simulator's online cost model and gates its
// steady-state makespan against that optimum. Keeping the shape and sweep
// definitions in one header makes "within one size class of the ablation's
// optimum" a statement both binaries compute identically.
//
// All shapes run on the paper testbed (copy at 0.00025 us/B, handshake
// 9.4 us), where the analytic eager/rendezvous crossover sits at
// handshake / copy = 37 600 bytes.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "netsim/sim.hpp"

namespace adaptive_shapes {

constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

/// The static sweep grid every consumer shares (same grid as the original
/// threshold ablation, so historical numbers stay comparable).
constexpr std::size_t kThresholdGrid[] = {0,      1024,    8192, 32768,
                                          262144, 2097152, kNever};

/// A shape is a per-(src, dst) volume function over `nprocs` ranks,
/// exchanged `rounds` times (every rank sends to and receives from every
/// peer with a nonzero volume each round). Rounds amortize the adaptive
/// model's warmup so the measurement reflects steady state.
struct Shape {
    const char* name;
    int nprocs;
    int rounds;
    std::uint64_t (*volume)(int src, int dst);
};

// -- Volume functions -------------------------------------------------------
// Fig. 15-like alltoallw mixes: a nonuniform sparse pattern whose per-peer
// volumes straddle the crossover, plus uniform controls on either side of
// it. Fig. 16-like VecScatter: a halo pattern — bulk traffic to lattice
// neighbours, slivers to everyone adjacent in rank order.

inline std::uint64_t vol_uniform_small(int src, int dst) {
    return src == dst ? 0 : 4096;
}
inline std::uint64_t vol_uniform_large(int src, int dst) {
    return src == dst ? 0 : 262144;
}
inline std::uint64_t vol_fig15_nonuniform(int src, int dst) {
    if (src == dst) return 0;
    // Most pairs exchange control-sized messages; every third peer gets a
    // bulk payload — the nonuniform volume distribution of the paper's
    // sparse-matrix alltoallw.
    const int d = (dst - src + 64) % 3;
    if (d == 0) return 1048576;
    if (d == 1) return 16384;
    return 512;
}
inline std::uint64_t vol_fig16_halo(int src, int dst) {
    if (src == dst) return 0;
    const int dist = src > dst ? src - dst : dst - src;
    if (dist == 1) return 393216;  // face neighbour: bulk strided halo
    if (dist == 2) return 6144;    // edge neighbour: thin halo
    return 0;
}

inline const Shape* shapes(std::size_t* count) {
    static const Shape kShapes[] = {
        {"fig15_nonuniform", 8, 48, vol_fig15_nonuniform},
        {"fig16_halo", 8, 48, vol_fig16_halo},
        {"uniform_small", 4, 64, vol_uniform_small},
        {"uniform_large", 4, 64, vol_uniform_large},
    };
    *count = sizeof(kShapes) / sizeof(kShapes[0]);
    return kShapes;
}

/// One program per rank: per round, post all sends then all receives.
/// Simulator sends never block, so the order is deadlock-free.
inline std::vector<nncomm::sim::RankProgram> build_programs(const Shape& s) {
    namespace sim = nncomm::sim;
    std::vector<sim::RankProgram> progs(static_cast<std::size_t>(s.nprocs));
    for (int t = 0; t < s.rounds; ++t) {
        for (int r = 0; r < s.nprocs; ++r) {
            auto& p = progs[static_cast<std::size_t>(r)];
            for (int d = 0; d < s.nprocs; ++d) {
                if (s.volume(r, d) > 0) p.push_back(sim::Op::send(d, t, s.volume(r, d)));
            }
            for (int d = 0; d < s.nprocs; ++d) {
                if (s.volume(d, r) > 0) p.push_back(sim::Op::recv(d, t));
            }
        }
    }
    return progs;
}

inline nncomm::sim::ClusterConfig shape_cluster(const Shape& s) {
    // No injected skew: these gates compare protocol policies, not noise.
    return nncomm::sim::make_paper_testbed(s.nprocs, /*skew_us_mean=*/0.0);
}

inline nncomm::sim::SimResult run_static(const Shape& s, std::size_t threshold) {
    auto cluster = shape_cluster(s);
    cluster.rendezvous_threshold = threshold;
    return nncomm::sim::Simulator(cluster).run(build_programs(s));
}

inline nncomm::sim::SimResult run_adaptive(const Shape& s) {
    auto cluster = shape_cluster(s);
    cluster.adaptive_protocol = true;  // fallback stays the 32 KiB default
    return nncomm::sim::Simulator(cluster).run(build_programs(s));
}

/// Sweeps the grid and returns the best static threshold (argmin makespan).
inline std::size_t best_static_threshold(const Shape& s, double* best_makespan) {
    double best = 0.0;
    std::size_t best_thr = 0;
    for (std::size_t thr : kThresholdGrid) {
        const double mk = run_static(s, thr).makespan_us;
        if (best == 0.0 || mk < best) {
            best = mk;
            best_thr = thr;
        }
    }
    if (best_makespan != nullptr) *best_makespan = best;
    return best_thr;
}

/// The paper testbed's analytic crossover: one saved copy outgrows the
/// handshake at handshake / copy bytes.
inline std::uint64_t analytic_crossover(const nncomm::sim::ClusterConfig& c) {
    if (c.copy_us_per_byte <= 0.0) return kNever;
    return static_cast<std::uint64_t>(c.rendezvous_handshake_us / c.copy_us_per_byte);
}

/// "Within one size class": the benchmark size grids step by powers of
/// four, so a learned threshold is converged when it lands within a factor
/// of four of the target.
inline bool within_one_size_class(std::uint64_t learned, std::uint64_t target) {
    if (learned == 0 || target == 0) return false;
    return learned * 4 >= target && learned <= target * 4;
}

inline std::string threshold_name(std::size_t thr) {
    return thr == kNever ? "never" : std::to_string(thr);
}

}  // namespace adaptive_shapes

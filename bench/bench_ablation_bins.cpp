// Ablation: the Alltoallw bin design (paper §4.2.2 — "we used three bins:
// zero size messages, small messages and large messages").
//
// Separates the two mechanisms on the paper's §3.2 motivating scenario:
// rank 0 sends one large noncontiguous message (to rank 1) and several
// small ones (to ranks 2..5); everyone else is silent.
//
//   round-robin       — neither mechanism: zero-size synchronization with
//                       every peer, packing in round-robin order,
//   zero-exempt only  — skip silent peers but pack in rank order (the
//                       large message still delays the small peers),
//   3 bins            — skip silent peers AND pack small before large.
//
// The metric that matters is when the small-message peers get their data.
#include <algorithm>
#include <string>

#include "bench/common.hpp"
#include "netsim/programs.hpp"

using namespace nncomm;
using namespace nncomm::sim;
using benchutil::Table;

namespace {

constexpr int kProcs = 64;
constexpr std::uint64_t kLargeBytes = 4 << 20;  // 4 MB noncontiguous
constexpr std::uint64_t kSmallBytes = 512;

AlltoallwWorkload workload(std::size_t threshold) {
    AlltoallwWorkload wl;
    wl.nprocs = kProcs;
    wl.volume.assign(static_cast<std::size_t>(kProcs) * kProcs, 0);
    wl.vol(0, 1) = kLargeBytes;
    for (int k = 2; k <= 5; ++k) wl.vol(0, k) = kSmallBytes;
    wl.block_len = 24.0;  // sparse 3-double blocks
    wl.pack = PackModel::DualContext;
    wl.small_msg_threshold = threshold;
    return wl;
}

struct Run {
    double small_peers_us;  ///< latest finish among ranks 2..5
    double makespan_us;
};

Run run(AlltoallwSchedule schedule, std::size_t threshold) {
    auto cluster = make_uniform_cluster(kProcs);
    const auto result =
        Simulator(cluster).run(alltoallw_program(cluster, workload(threshold), schedule));
    Run out{0.0, result.makespan_us};
    for (int r = 2; r <= 5; ++r) {
        out.small_peers_us = std::max(out.small_peers_us,
                                      result.finish_us[static_cast<std::size_t>(r)]);
    }
    return out;
}

}  // namespace

int main() {
    std::printf("== Ablation: Alltoallw bins (64 procs; rank 0 sends 4 MB to rank 1 and\n"
                "512 B to ranks 2..5; 58 peers silent) ==\n\n");

    const Run rr = run(AlltoallwSchedule::RoundRobin, 4096);
    const Run zero_only = run(AlltoallwSchedule::BinnedRankOrder, 4096);
    const Run three = run(AlltoallwSchedule::Binned, 4096);

    Table t({"Design", "Small peers done (us)", "Operation done (us)"});
    t.add_row({"round-robin (baseline)", benchutil::fmt(rr.small_peers_us, 1),
               benchutil::fmt(rr.makespan_us, 1)});
    t.add_row({"zero-exemption only", benchutil::fmt(zero_only.small_peers_us, 1),
               benchutil::fmt(zero_only.makespan_us, 1)});
    t.add_row({"zero + small-first bins", benchutil::fmt(three.small_peers_us, 1),
               benchutil::fmt(three.makespan_us, 1)});
    t.print();

    std::printf("\nsmall/large threshold sweep (3-bin design, small-peer completion):\n\n");
    Table s({"Threshold (B)", "Small peers done (us)"});
    for (std::size_t thr : {std::size_t{0}, std::size_t{256}, std::size_t{1024},
                            std::size_t{4096}, std::size_t{1} << 22, std::size_t{1} << 26}) {
        s.add_row({std::to_string(thr),
                   benchutil::fmt(run(AlltoallwSchedule::Binned, thr).small_peers_us, 1)});
    }
    s.print();

    std::printf("\nzero-size exemption removes 58 synchronizations; small-first packing\n"
                "keeps the 512 B peers from waiting behind the 4 MB pack. Any threshold\n"
                "strictly between the two sizes separates the bins (threshold 0 or huge\n"
                "degenerates to one bin — but ascending volume order inside a bin still\n"
                "sends the small messages first).\n");
    return 0;
}

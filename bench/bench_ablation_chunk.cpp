// Ablation: pipelining granularity (intermediate pack-buffer size).
//
// The baseline's total re-search cost is ~bytes^2 / (2 * chunk * blocklen):
// larger chunks directly shrink the quadratic term (fewer look-ahead events
// lose the context). The dual-context engine is insensitive to chunk size
// beyond per-chunk overhead amortization. Measured on the real engines.
#include <numeric>
#include <vector>

#include "bench/common.hpp"
#include "runtime/comm.hpp"

using namespace nncomm;
using benchutil::Table;

namespace {

double run(std::size_t n, dt::EngineKind kind, std::size_t chunk, int iters) {
    rt::World world(2);
    double out = 0;
    world.run([&](rt::Comm& c) {
        c.set_engine(kind);
        dt::EngineConfig cfg;
        cfg.pipeline_chunk = chunk;
        cfg.enable_plan_fastpath = false;  // the ablation targets the cursor engine
        c.set_engine_config(cfg);
        auto matrix = benchutil::transpose_type(n);
        if (c.rank() == 0) {
            std::vector<double> m(n * n * 3);
            std::iota(m.begin(), m.end(), 0.0);
            benchutil::Stopwatch sw;
            for (int it = 0; it < iters; ++it) {
                c.send(m.data(), 1, matrix, 1, 0);
                c.recv(nullptr, 0, dt::Datatype::byte(), 1, 1);
            }
            out = sw.ms() / iters;
        } else {
            std::vector<double> recv(n * n * 3);
            for (int it = 0; it < iters; ++it) {
                c.recv(recv.data(), recv.size() * 8, dt::Datatype::byte(), 0, 0);
                c.send(nullptr, 0, dt::Datatype::byte(), 0, 1);
            }
        }
    });
    return out;
}

}  // namespace

int main() {
    constexpr std::size_t kMatrix = 512;
    constexpr int kIters = 3;
    std::printf("== Ablation: pipeline chunk size (%zux%zu transpose) ==\n\n", kMatrix,
                kMatrix);
    Table t({"Chunk (KB)", "Single-context (ms)", "Dual-context (ms)", "Baseline penalty"});
    for (std::size_t kb : {4u, 16u, 64u, 256u, 1024u}) {
        const double single = run(kMatrix, dt::EngineKind::SingleContext, kb * 1024, kIters);
        const double dual = run(kMatrix, dt::EngineKind::DualContext, kb * 1024, kIters);
        t.add_row({std::to_string(kb), benchutil::fmt(single), benchutil::fmt(dual),
                   benchutil::fmt(single / dual, 2) + "x"});
    }
    t.print();
    std::printf("\nbaseline penalty shrinks as the chunk grows (fewer context losses) but\n"
                "never reaches parity; huge chunks also defeat pipelining on a real wire.\n");
    return 0;
}

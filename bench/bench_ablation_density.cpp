// Ablation: the sparse/dense density threshold (§3.1's look-ahead decides,
// per pipeline chunk, whether to pack into an intermediate buffer or send
// the regions directly, writev-style).
//
// Sweeps the threshold across layouts of different contiguous-block sizes
// (real engine, dual-context). Small blocks want packing (per-region
// dispatch overhead dominates); large blocks want the direct path (skip
// the extra copy). A threshold around a few hundred bytes separates the
// regimes — matching the engines' 256-byte default.
#include <numeric>
#include <vector>

#include "bench/common.hpp"
#include "runtime/comm.hpp"

using namespace nncomm;
using benchutil::Table;

namespace {

// blocks of `block_doubles` doubles with a one-double gap between them.
dt::Datatype gapped_type(std::size_t nblocks, std::size_t block_doubles) {
    return dt::Datatype::vector(nblocks, block_doubles,
                                static_cast<std::ptrdiff_t>(block_doubles + 1),
                                dt::Datatype::float64());
}

double run(std::size_t nblocks, std::size_t block_doubles, double threshold, int iters) {
    rt::World world(2);
    double out = 0;
    world.run([&](rt::Comm& c) {
        c.set_engine(dt::EngineKind::DualContext);
        dt::EngineConfig cfg;
        cfg.density_threshold = threshold;
        // The gapped layout compiles to the Strided plan kernel; keep the
        // fastpath off so the density decision under ablation still runs.
        cfg.enable_plan_fastpath = false;
        c.set_engine_config(cfg);
        auto t = gapped_type(nblocks, block_doubles);
        const std::size_t total = nblocks * block_doubles;
        if (c.rank() == 0) {
            std::vector<double> data((block_doubles + 1) * nblocks + 8);
            std::iota(data.begin(), data.end(), 0.0);
            benchutil::Stopwatch sw;
            for (int it = 0; it < iters; ++it) {
                c.send(data.data(), 1, t, 1, 0);
                c.recv(nullptr, 0, dt::Datatype::byte(), 1, 1);
            }
            out = sw.ms() / iters;
        } else {
            std::vector<double> recv(total);
            for (int it = 0; it < iters; ++it) {
                c.recv(recv.data(), total * 8, dt::Datatype::byte(), 0, 0);
                c.send(nullptr, 0, dt::Datatype::byte(), 0, 1);
            }
        }
    });
    return out;
}

}  // namespace

int main() {
    std::printf("== Ablation: density threshold (dual-context engine) ==\n");
    std::printf("strided layouts, 8 MB of payload each, varying contiguous-block size\n\n");

    const std::size_t kPayloadDoubles = 1 << 20;  // 8 MB
    Table t({"Block size", "thr=1 (all dense)", "thr=256 (default)", "thr=1e9 (all packed)"});
    for (std::size_t bd : {1u, 4u, 16u, 64u, 256u, 4096u}) {
        const std::size_t nblocks = kPayloadDoubles / bd;
        const int iters = 3;
        const double dense = run(nblocks, bd, 1.0, iters);
        const double def = run(nblocks, bd, 256.0, iters);
        const double packed = run(nblocks, bd, 1e9, iters);
        t.add_row({std::to_string(bd * 8) + " B", benchutil::fmt(dense) + " ms",
                   benchutil::fmt(def) + " ms", benchutil::fmt(packed) + " ms"});
    }
    t.print();
    std::printf("\nthe default threshold tracks the per-block-size winner: below a few\n"
                "hundred bytes the packed path amortizes per-region overhead, above it\n"
                "the direct path avoids the extra copy.\n");
    return 0;
}

// Ablation: dual-context look-ahead window size (the paper uses 15
// signature elements).
//
// Too small a window starves the density decision (it classifies from a
// sample of one block); too large re-parses signature for no benefit. The
// sweep measures real transpose latency plus the engine's look-ahead
// counters at each window size.
#include <numeric>
#include <vector>

#include "bench/common.hpp"
#include "runtime/comm.hpp"

using namespace nncomm;
using benchutil::Table;

namespace {

struct Result {
    double ms = 0;
    std::uint64_t lookahead_blocks = 0;
};

Result run(std::size_t n, std::size_t window, int iters) {
    rt::World world(2);
    Result out;
    world.run([&](rt::Comm& c) {
        c.set_engine(dt::EngineKind::DualContext);
        dt::EngineConfig cfg;
        cfg.lookahead_blocks = window;
        cfg.enable_plan_fastpath = false;  // the ablation targets the cursor engine
        c.set_engine_config(cfg);
        auto matrix = benchutil::transpose_type(n);
        if (c.rank() == 0) {
            std::vector<double> m(n * n * 3);
            std::iota(m.begin(), m.end(), 0.0);
            c.reset_stats();
            benchutil::Stopwatch sw;
            for (int it = 0; it < iters; ++it) {
                c.send(m.data(), 1, matrix, 1, 0);
                c.recv(nullptr, 0, dt::Datatype::byte(), 1, 1);
            }
            out.ms = sw.ms() / iters;
            out.lookahead_blocks = c.counters().lookahead_blocks / iters;
        } else {
            std::vector<double> recv(n * n * 3);
            for (int it = 0; it < iters; ++it) {
                c.recv(recv.data(), recv.size() * 8, dt::Datatype::byte(), 0, 0);
                c.send(nullptr, 0, dt::Datatype::byte(), 0, 1);
            }
        }
    });
    return out;
}

}  // namespace

int main() {
    constexpr std::size_t kMatrix = 512;
    constexpr int kIters = 3;
    std::printf("== Ablation: look-ahead window (dual-context engine, %zux%zu transpose) ==\n\n",
                kMatrix, kMatrix);
    Table t({"Window (blocks)", "Latency (ms)", "Look-ahead blocks/transfer"});
    for (std::size_t w : {1u, 3u, 7u, 15u, 31u, 63u, 255u}) {
        const Result r = run(kMatrix, w, kIters);
        t.add_row({std::to_string(w), benchutil::fmt(r.ms),
                   std::to_string(r.lookahead_blocks)});
    }
    t.print();
    std::printf("\nthe paper's choice of 15 sits on the flat part of the curve: enough\n"
                "signature to classify a chunk, bounded (near-constant) per-chunk cost.\n");
    return 0;
}

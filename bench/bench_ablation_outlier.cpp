// Ablation: sensitivity of the Eq. 1 outlier detector.
//
// Sweeps the planted outlier magnitude against the detector's ratio
// threshold and fraction, reporting (a) whether the Auto allgatherv picks
// the binomial algorithm and (b) the cost of getting it wrong (latency of
// both algorithms at each magnitude), on the simulated 64-process cluster.
#include <string>

#include "bench/common.hpp"
#include "netsim/programs.hpp"

using namespace nncomm;
using namespace nncomm::sim;
using benchutil::Table;

namespace {

constexpr int kProcs = 64;
constexpr int kIterations = 20;

double latency_us(const AllgathervWorkload& wl, GathervSchedule s) {
    auto cluster = make_uniform_cluster(kProcs);
    return Simulator(cluster).run(allgatherv_program(cluster, wl, s)).makespan_us /
           kIterations;
}

}  // namespace

int main() {
    std::printf("== Ablation: outlier detection (Eq. 1) on 64-process Allgatherv ==\n");
    std::printf("bulk volume 256 B per process; one planted outlier of varying magnitude\n\n");

    Table t({"Outlier (x bulk)", "Eq.1 ratio", "Detected (thr=4)", "Ring (us)",
             "RecDbl (us)", "Best"});
    for (std::uint64_t mag : {1u, 2u, 4u, 8u, 32u, 128u, 1024u}) {
        AllgathervWorkload wl;
        wl.volumes.assign(kProcs, 256);
        wl.volumes[0] = 256 * mag;
        wl.iterations = kIterations;
        const auto analysis = analyze_volumes(wl.volumes);
        const double ring = latency_us(wl, GathervSchedule::Ring);
        const double rd = latency_us(wl, GathervSchedule::RecursiveDoubling);
        t.add_row({std::to_string(mag), benchutil::fmt(analysis.ratio, 1),
                   analysis.nonuniform ? "yes" : "no", benchutil::fmt(ring, 1),
                   benchutil::fmt(rd, 1), ring <= rd ? "ring" : "recdbl"});
    }
    t.print();

    std::printf("\nfraction sensitivity: how many planted outliers until the 0.9 quantile\n"
                "stops seeing them as outliers (64 procs, magnitude 32x):\n\n");
    Table f({"Planted outliers", "Detected (fract=0.9)", "Detected (fract=0.75)"});
    for (int k : {1, 3, 6, 9, 15, 20}) {
        std::vector<std::uint64_t> v(kProcs, 256);
        for (int i = 0; i < k; ++i) v[static_cast<std::size_t>(i)] = 256 * 32;
        OutlierConfig c90;
        OutlierConfig c75;
        c75.outlier_fract = 0.75;
        f.add_row({std::to_string(k), volumes_nonuniform(v, c90) ? "yes" : "no",
                   volumes_nonuniform(v, c75) ? "yes" : "no"});
    }
    f.print();

    std::printf("\nthe default threshold (4x) flips to the binomial algorithm close to the\n"
                "true ring/recdbl crossover; the fraction bounds how many heavy ranks still\n"
                "count as outliers rather than as the new bulk.\n");
    return 0;
}

// Ablation: the rendezvous threshold (default 32 KiB).
//
// Two views of the same tradeoff. In the LogGP simulator the protocol
// split is explicit in the cost model: an eager send pays the staging
// copy twice (sender pack, receiver unpack), a rendezvous send pays one
// handshake round trip but moves its bytes once. On the paper testbed
// (copy at 0.00025 us/B, handshake 9.4 us) the copy the protocol saves
// outgrows the handshake at ~37 KB, so any threshold between the 16 KiB
// and 64 KiB workload sizes is optimal and 32 KiB is the power of two in
// that window. Sweeping the threshold over a log-uniform message mix
// traces the U-curve around that point.
//
// The real-runtime sweep replays the pre-posted pingpong from
// bench_rendezvous per message size under "always eager" vs "always
// rendezvous" and reports the measured single-copy benefit: noise-level
// at small sizes (the posted-queue probe is cheap but so is the copy),
// approaching 2x once the payload dwarfs the synchronization.
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench/adaptive_shapes.hpp"
#include "bench/common.hpp"
#include "netsim/sim.hpp"
#include "runtime/comm.hpp"

using namespace nncomm;
using dt::Datatype;

namespace {

// ---- Simulator sweep ------------------------------------------------------

// Log-uniform message mix: many small control messages, few large payloads.
struct MixEntry {
    std::uint64_t bytes;
    int count;
};
constexpr MixEntry kMix[] = {
    {256, 64}, {1024, 64}, {4096, 32}, {16384, 32},
    {65536, 16}, {262144, 8}, {1048576, 4}, {4194304, 2},
};

/// Rank 0 pingpongs every message of the mix off rank 1: each echo puts
/// both protocol copies on the critical path (a one-way stream would hide
/// the receiver's eager unpack behind the sender's serialization).
sim::SimResult run_mix(std::size_t threshold) {
    sim::ClusterConfig cluster = sim::make_paper_testbed(2);
    cluster.rendezvous_threshold = threshold;
    std::vector<sim::RankProgram> progs(2);
    int tag = 0;
    for (const auto& e : kMix) {
        for (int i = 0; i < e.count; ++i, ++tag) {
            progs[0].push_back(sim::Op::send(1, tag, e.bytes));
            progs[0].push_back(sim::Op::recv(1, tag));
            progs[1].push_back(sim::Op::recv(0, tag));
            progs[1].push_back(sim::Op::send(0, tag, e.bytes));
        }
    }
    return sim::Simulator(cluster).run(progs);
}

// ---- Real-runtime sweep ---------------------------------------------------

constexpr int kIters = 200;
constexpr int kDataTag = 7;
constexpr int kTokenTag = 8;

/// Pre-posted pingpong of `bytes` under a fixed threshold; per-iter ms.
double pingpong_ms(std::size_t bytes, std::size_t threshold) {
    double out = 0.0;
    rt::World w(2);
    w.run([&](rt::Comm& c) {
        c.set_rendezvous_threshold(threshold);
        const int peer = 1 - c.rank();
        std::vector<std::uint8_t> sendbuf(bytes, 0x5a);
        std::vector<std::uint8_t> recvbuf(bytes, 0);
        auto exchange = [&] {
            rt::Request r = c.irecv(recvbuf.data(), bytes, Datatype::byte(), peer, kDataTag);
            int token = 1;
            c.send_n(&token, 1, peer, kTokenTag);
            c.recv_n(&token, 1, peer, kTokenTag);
            c.send(sendbuf.data(), bytes, Datatype::byte(), peer, kDataTag);
            c.wait(r);
        };
        for (int it = 0; it < 10; ++it) exchange();
        c.barrier();
        benchutil::Stopwatch sw;
        for (int it = 0; it < kIters; ++it) exchange();
        const double ms = sw.ms() / kIters;
        c.barrier();
        if (c.rank() == 0) out = ms;
    });
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    std::printf("== Ablation: rendezvous threshold ==\n\n");
    std::printf("simulator, paper testbed: rank 0 pingpongs a log-uniform mix\n"
                "(256 B x64 ... 4 MiB x2, %d round trips) off rank 1\n\n",
                [] { int n = 0; for (const auto& e : kMix) n += e.count; return n; }());

    benchutil::Table sweep({"Threshold", "Makespan (us)", "Rendezvous msgs"});
    const std::size_t thresholds[] = {0,       1024,        8192, 32768,
                                      262144,  2097152,     kNever};
    double best = 0.0;
    std::size_t best_thr = 0;
    for (std::size_t thr : thresholds) {
        const sim::SimResult r = run_mix(thr);
        if (best == 0.0 || r.makespan_us < best) {
            best = r.makespan_us;
            best_thr = thr;
        }
        sweep.add_row({thr == kNever ? "never" : std::to_string(thr),
                       benchutil::fmt(r.makespan_us, 1),
                       std::to_string(r.rendezvous_messages)});
    }
    sweep.print();
    std::printf("\nbest threshold in sweep: %s (default %llu)\n",
                best_thr == kNever ? "never" : std::to_string(best_thr).c_str(),
                static_cast<unsigned long long>(rt::kDefaultRendezvousThreshold));

    // Per-shape static optimum over the shared adaptive_shapes sweep —
    // this is the number bench_adaptive gates its learned thresholds
    // against ("converged within one size class of the ablation's
    // optimum"), so it goes into the JSON report rather than only the
    // human-readable table.
    std::printf("\nper-shape optimal static threshold (shared adaptive_shapes sweep)\n\n");
    std::size_t nshapes = 0;
    const adaptive_shapes::Shape* shapes = adaptive_shapes::shapes(&nshapes);
    struct ShapeOpt {
        const char* name;
        std::size_t threshold;
        double makespan_us;
    };
    std::vector<ShapeOpt> shape_opts;
    benchutil::Table shape_tab({"Shape", "Best threshold", "Makespan (us)"});
    for (std::size_t i = 0; i < nshapes; ++i) {
        double mk = 0.0;
        const std::size_t thr = adaptive_shapes::best_static_threshold(shapes[i], &mk);
        shape_opts.push_back({shapes[i].name, thr, mk});
        shape_tab.add_row({shapes[i].name, adaptive_shapes::threshold_name(thr),
                           benchutil::fmt(mk, 1)});
    }
    shape_tab.print();

    if (!smoke) {
        std::printf(
            "\nreal runtime: pre-posted pingpong, always-eager vs always-rendezvous\n\n");
        benchutil::Table rt_tab({"Bytes", "Eager (ms)", "Rendezvous (ms)", "Speedup"});
        for (std::size_t bytes :
             {std::size_t{1} << 10, std::size_t{1} << 13, std::size_t{1} << 15,
              std::size_t{1} << 17, std::size_t{1} << 20, std::size_t{1} << 22}) {
            const double eager = pingpong_ms(bytes, kNever);
            const double rdv = pingpong_ms(bytes, 0);
            rt_tab.add_row({std::to_string(bytes), benchutil::fmt(eager, 4),
                            benchutil::fmt(rdv, 4),
                            benchutil::fmt(rdv > 0.0 ? eager / rdv : 0.0, 2)});
        }
        rt_tab.print();
    }

    FILE* f = std::fopen("BENCH_ablation_rendezvous.json", "w");
    if (f) {
        std::fprintf(f, "{\n  \"bench\": \"ablation_rendezvous\",\n");
        std::fprintf(f, "  \"mix_best_threshold\": %llu,\n",
                     static_cast<unsigned long long>(best_thr == kNever ? 0 : best_thr));
        std::fprintf(f, "  \"mix_best_makespan_us\": %.1f,\n", best);
        std::fprintf(f, "  \"per_shape_optimal\": [\n");
        for (std::size_t i = 0; i < shape_opts.size(); ++i) {
            std::fprintf(
                f, "    { \"shape\": \"%s\", \"threshold\": %llu, \"makespan_us\": %.1f }%s\n",
                shape_opts[i].name,
                static_cast<unsigned long long>(
                    shape_opts[i].threshold == kNever ? 0 : shape_opts[i].threshold),
                shape_opts[i].makespan_us, i + 1 < shape_opts.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("\nwrote BENCH_ablation_rendezvous.json\n");
    }

    std::printf("\nbelow the threshold the saved copy is cheaper than the handshake the\n"
                "simulator charges (and noise-level in the threaded runtime, where the\n"
                "posted-queue probe replaces the handshake); above it the second copy\n"
                "dominates. 32 KiB sits in the optimal window on the paper testbed.\n");
    return 0;
}

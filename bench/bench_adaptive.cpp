// Adaptive protocol selection: self-tuning eager/rendezvous crossover plus
// the chunk-pipelined rendezvous path.
//
// Three gates, written to BENCH_adaptive.json:
//
//  1. Steady state (simulator, paper testbed): on every adaptive_shapes
//     workload the online cost model's makespan must match the best static
//     threshold from the shared sweep grid — no shape may regress more
//     than 5%. The adaptive run starts from the 32 KiB default and pays
//     the warmup inside the measured window, so "within 5% of an oracle
//     that already knows the answer" is the honest steady-state claim.
//
//  2. Convergence (simulator): on a log-uniform 2-rank mix the learned
//     threshold must land within one size class (a factor of four — the
//     benchmark grids step by powers of four) of the paper testbed's
//     analytic crossover, handshake / copy = 37 600 bytes. This is the
//     same optimum bench_ablation_rendezvous reports per shape.
//
//  3. Pipeline (real runtime): a persistent alltoallw moving a large
//     strided payload between two ranks must run >= 1.2x faster with the
//     chunk-pipelined rendezvous (pack chunk k+1 while chunk k copies,
//     cache-hot staging window) than with pack-then-copy, and the
//     rt_rdzv_pipelined_* counters must attest the fused path actually
//     ran.
//
// --smoke runs the simulator gates only (fast, deterministic) and skips
// the JSON write; CI wires it into tier-1.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/adaptive_shapes.hpp"
#include "bench/common.hpp"
#include "coll/persistent.hpp"
#include "netsim/sim.hpp"
#include "runtime/comm.hpp"

using namespace nncomm;
using dt::Datatype;

namespace {

// ---- Gate 2: convergence on a log-uniform mix -----------------------------

struct MixEntry {
    std::uint64_t bytes;
    int count;
};
constexpr MixEntry kMix[] = {
    {256, 64}, {1024, 64}, {4096, 32}, {16384, 32},
    {65536, 16}, {262144, 8}, {1048576, 4}, {4194304, 2},
};

sim::SimResult run_adaptive_mix() {
    sim::ClusterConfig cluster = sim::make_paper_testbed(2, /*skew_us_mean=*/0.0);
    cluster.adaptive_protocol = true;
    std::vector<sim::RankProgram> progs(2);
    int tag = 0;
    // Two passes over the mix: the first feeds the model across the full
    // size range, the second exercises the converged threshold.
    for (int pass = 0; pass < 2; ++pass) {
        for (const auto& e : kMix) {
            for (int i = 0; i < e.count; ++i, ++tag) {
                progs[0].push_back(sim::Op::send(1, tag, e.bytes));
                progs[0].push_back(sim::Op::recv(1, tag));
                progs[1].push_back(sim::Op::recv(0, tag));
                progs[1].push_back(sim::Op::send(0, tag, e.bytes));
            }
        }
    }
    return sim::Simulator(cluster).run(progs);
}

// ---- Gate 3: chunk-pipelined rendezvous on the real runtime ---------------

constexpr int kPipeIters = 60;
constexpr std::size_t kBlocks = 16384;
constexpr std::size_t kBlockElems = 32;  // 256 B blocks, 4 MiB payload

/// Persistent 2-rank alltoallw of one large strided message per direction,
/// rendezvous forced; returns per-execute ms with the pipeline on or off.
double strided_exchange_ms(bool pipelined, std::uint64_t* pipelined_msgs, int iters) {
    double out = 0.0;
    std::uint64_t fused = 0;
    rt::World w(2);
    w.run([&](rt::Comm& c) {
        c.set_rendezvous_threshold(1);  // every nonzero send rides rendezvous
        c.set_rendezvous_pipeline(pipelined);
        const int peer = 1 - c.rank();
        const auto n = static_cast<std::size_t>(c.size());

        // Strided send layout (vector of 32-double blocks, half-dense),
        // contiguous receive — the Fig. 16 halo shape scaled up.
        auto block = Datatype::contiguous(kBlockElems, Datatype::float64());
        auto strided = Datatype::vector(kBlocks, 1, 2, block);
        const std::size_t payload = kBlocks * kBlockElems * sizeof(double);

        std::vector<double> src(kBlocks * kBlockElems * 2, 1.5);
        std::vector<double> dst(kBlocks * kBlockElems, 0.0);

        std::vector<std::size_t> scounts(n, 0), rcounts(n, 0);
        std::vector<std::ptrdiff_t> sdispls(n, 0), rdispls(n, 0);
        std::vector<Datatype> stypes(n, Datatype::byte()), rtypes(n, Datatype::byte());
        scounts[static_cast<std::size_t>(peer)] = 1;
        stypes[static_cast<std::size_t>(peer)] = strided;
        rcounts[static_cast<std::size_t>(peer)] = payload / sizeof(double);
        rtypes[static_cast<std::size_t>(peer)] = Datatype::float64();

        coll::AlltoallwPlan plan(c, scounts, sdispls, stypes, rcounts, rdispls, rtypes);
        for (int it = 0; it < 5; ++it) plan.execute(src.data(), dst.data());
        c.barrier();
        benchutil::Stopwatch sw;
        for (int it = 0; it < iters; ++it) plan.execute(src.data(), dst.data());
        const double ms = sw.ms() / iters;
        c.barrier();
        if (c.rank() == 0) {
            out = ms;
            fused = c.counters().rt_rdzv_pipelined_msgs;
        }
    });
    if (pipelined_msgs != nullptr) *pipelined_msgs = fused;
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    bool pass = true;

    std::printf("== Adaptive protocol selection ==\n\n");

    // ---- Gate 1: adaptive vs best static per shape ------------------------
    std::printf("simulator, paper testbed: adaptive steady state vs best static\n"
                "threshold from the shared sweep grid\n\n");
    std::size_t nshapes = 0;
    const adaptive_shapes::Shape* shapes = adaptive_shapes::shapes(&nshapes);
    struct ShapeRow {
        const char* name;
        std::size_t best_thr;
        double best_us;
        double adaptive_us;
        bool ok;
    };
    std::vector<ShapeRow> rows;
    benchutil::Table tab(
        {"Shape", "Best static", "Static (us)", "Adaptive (us)", "Ratio", "Gate"});
    for (std::size_t i = 0; i < nshapes; ++i) {
        double best_us = 0.0;
        const std::size_t best_thr =
            adaptive_shapes::best_static_threshold(shapes[i], &best_us);
        const sim::SimResult ad = adaptive_shapes::run_adaptive(shapes[i]);
        const double ratio = best_us > 0.0 ? ad.makespan_us / best_us : 0.0;
        const bool ok = ratio <= 1.05;
        pass = pass && ok;
        rows.push_back({shapes[i].name, best_thr, best_us, ad.makespan_us, ok});
        tab.add_row({shapes[i].name, adaptive_shapes::threshold_name(best_thr),
                     benchutil::fmt(best_us, 1), benchutil::fmt(ad.makespan_us, 1),
                     benchutil::fmt(ratio, 3), ok ? "PASS" : "FAIL"});
    }
    tab.print();

    // ---- Gate 2: convergence ----------------------------------------------
    const sim::SimResult mix = run_adaptive_mix();
    const std::uint64_t target =
        adaptive_shapes::analytic_crossover(sim::make_paper_testbed(2, 0.0));
    const bool converged =
        adaptive_shapes::within_one_size_class(mix.threshold_bytes_last, target);
    pass = pass && converged;
    std::printf("\nconvergence: learned threshold %llu (lo %llu, hi %llu) vs analytic\n"
                "crossover %llu after %llu observations — within one size class: %s\n",
                static_cast<unsigned long long>(mix.threshold_bytes_last),
                static_cast<unsigned long long>(mix.threshold_bytes_lo),
                static_cast<unsigned long long>(mix.threshold_bytes_hi),
                static_cast<unsigned long long>(target),
                static_cast<unsigned long long>(mix.adaptive_updates),
                converged ? "PASS" : "FAIL");

    // ---- Gate 3: pipelined rendezvous (skipped in smoke) ------------------
    double serial_ms = 0.0, pipe_ms = 0.0, speedup = 0.0;
    std::uint64_t fused_msgs = 0;
    bool pipe_ok = true;
    if (!smoke) {
        const int iters = kPipeIters;
        serial_ms = strided_exchange_ms(false, nullptr, iters);
        pipe_ms = strided_exchange_ms(true, &fused_msgs, iters);
        speedup = pipe_ms > 0.0 ? serial_ms / pipe_ms : 0.0;
        pipe_ok = speedup >= 1.2 && fused_msgs > 0;
        pass = pass && pipe_ok;
        std::printf("\npipelined rendezvous, 4 MiB strided persistent alltoallw (2 ranks):\n"
                    "serial %.3f ms, pipelined %.3f ms, speedup %.2fx, fused msgs %llu — %s\n",
                    serial_ms, pipe_ms, speedup,
                    static_cast<unsigned long long>(fused_msgs), pipe_ok ? "PASS" : "FAIL");
    }

    std::printf("\nadaptive gates: %s\n", pass ? "PASS" : "FAIL");

    if (!smoke) {
        FILE* f = std::fopen("BENCH_adaptive.json", "w");
        if (f) {
            std::fprintf(f, "{\n  \"bench\": \"adaptive\",\n  \"shapes\": [\n");
            for (std::size_t i = 0; i < rows.size(); ++i) {
                std::fprintf(f,
                             "    { \"shape\": \"%s\", \"best_static_threshold\": %llu, "
                             "\"static_us\": %.1f, \"adaptive_us\": %.1f, \"pass\": %s }%s\n",
                             rows[i].name,
                             static_cast<unsigned long long>(
                                 rows[i].best_thr == adaptive_shapes::kNever ? 0
                                                                             : rows[i].best_thr),
                             rows[i].best_us, rows[i].adaptive_us, rows[i].ok ? "true" : "false",
                             i + 1 < rows.size() ? "," : "");
            }
            std::fprintf(f, "  ],\n  \"convergence\": { \"learned\": %llu, \"target\": %llu, "
                            "\"updates\": %llu, \"pass\": %s },\n",
                         static_cast<unsigned long long>(mix.threshold_bytes_last),
                         static_cast<unsigned long long>(target),
                         static_cast<unsigned long long>(mix.adaptive_updates),
                         converged ? "true" : "false");
            std::fprintf(f, "  \"pipeline\": { \"serial_ms\": %.3f, \"pipelined_ms\": %.3f, "
                            "\"speedup\": %.2f, \"fused_msgs\": %llu, \"pass\": %s },\n",
                         serial_ms, pipe_ms, speedup,
                         static_cast<unsigned long long>(fused_msgs),
                         pipe_ok ? "true" : "false");
            std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
            std::fclose(f);
            std::printf("wrote BENCH_adaptive.json\n");
        }
    }
    return pass ? 0 : 1;
}

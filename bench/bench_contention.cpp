// Transport contention benchmark (real runtime, not the simulator).
//
// Two workloads sized to stress the transport layer itself rather than the
// datatype engines:
//
//   storm — an all-pairs small-message storm: every round, each rank posts
//     a receive from every peer and fires an 8-byte send to every peer,
//     then waits the whole batch. At world sizes {8..128} this is the
//     pattern where the pre-lane transport serialized on one mailbox mutex
//     + condition variable per destination and one global pool mutex; the
//     sharded per-source SPSC lanes keep every (source, dest) pair
//     independent, so the aggregate message rate should be bounded by the
//     cores, not by lock convoys.
//
//   vecscatter — the Figure-16 workload shape (each rank scatters stride-2
//     doubles to one peer) through the DatatypeOptimized persistent
//     backend, confirming the lane transport does not tax the bulk path.
//
// The observability gate: rt_lane_fast_deliveries must be > 0 (the SPSC
// fastpath is actually taken) and transport lock acquisitions per message
// must stay flat as the world grows (no per-delivery locking in steady
// state).
//
// Results go to stdout as a table and to BENCH_contention.json. The
// baseline constants below were measured on this container against the
// pre-lane transport (single Mailbox::mu + cv per rank, global prog_mu,
// single PayloadPool mutex) with this exact workload; the ≥ 2x gate at 64
// ranks only fails the process when --gate is passed, so CI smoke runs
// stay advisory on different hardware.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "petsckit/scatter.hpp"
#include "runtime/comm.hpp"

using namespace nncomm;
using dt::Datatype;
using pk::Index;
using pk::IndexSet;
using pk::ScatterBackend;
using pk::Vec;
using pk::VecScatter;
using rt::Comm;
using rt::Request;
using rt::World;

namespace {

constexpr int kWorldSizes[] = {8, 16, 32, 64, 128};

// Pre-lane transport baseline, messages/second on the all-pairs storm,
// measured on the dev container (1 hardware thread; rates scale with the
// host, the ratio is what the gate reads). Index matches kWorldSizes.
constexpr double kBaselineStormRate[] = {761860.0, 855090.0, 989749.0, 829250.0, 699902.0};

struct StormResult {
    int world = 0;
    std::uint64_t messages = 0;
    double elapsed_ms = 0.0;
    double rate = 0.0;  ///< aggregate messages/second
    // Aggregated transport counters (summed over ranks).
    std::uint64_t fast_deliveries = 0;
    std::uint64_t overflow_deliveries = 0;
    std::uint64_t lock_acquisitions = 0;
    std::uint64_t cv_waits = 0;
    std::uint64_t cv_notifies = 0;
    std::uint64_t pool_local_hits = 0;
    double locks_per_msg = 0.0;
};

/// All-pairs posted-receive storm: `rounds` batches of one 8-byte message
/// per ordered pair. Receives are posted before the barrier that releases
/// the round's sends, so the common case is the posted-receive eager path.
StormResult storm(int nranks, int rounds) {
    StormResult out;
    out.world = nranks;
    out.messages = static_cast<std::uint64_t>(nranks) * (nranks - 1) * rounds;

    std::vector<double> rank_ms(static_cast<std::size_t>(nranks), 0.0);
    std::vector<StatCounters> rank_counters(static_cast<std::size_t>(nranks));

    World w(nranks);
    w.run([&](Comm& c) {
        const int n = c.size();
        const int me = c.rank();
        std::vector<int> sendval(static_cast<std::size_t>(n), 0);
        std::vector<int> recvval(static_cast<std::size_t>(n), 0);
        std::vector<Request> reqs;
        reqs.reserve(2 * static_cast<std::size_t>(n));

        auto round = [&](int r) {
            reqs.clear();
            for (int p = 0; p < n; ++p) {
                if (p == me) continue;
                reqs.push_back(c.irecv(&recvval[static_cast<std::size_t>(p)], sizeof(int),
                                       Datatype::byte(), p, 11));
            }
            for (int p = 0; p < n; ++p) {
                if (p == me) continue;
                sendval[static_cast<std::size_t>(p)] = me * 100000 + r;
                reqs.push_back(c.isend(&sendval[static_cast<std::size_t>(p)], sizeof(int),
                                       Datatype::byte(), p, 11));
            }
            c.waitall(reqs);
        };

        for (int r = 0; r < 2; ++r) round(r);  // warm lanes and pool
        c.barrier();
        c.reset_stats();
        benchutil::Stopwatch sw;
        for (int r = 0; r < rounds; ++r) round(r);
        const double ms = sw.ms();
        c.barrier();
        rank_ms[static_cast<std::size_t>(me)] = ms;
        rank_counters[static_cast<std::size_t>(me)] = c.counters();
    });

    for (double ms : rank_ms) out.elapsed_ms = std::max(out.elapsed_ms, ms);
    for (const StatCounters& s : rank_counters) {
        out.fast_deliveries += s.rt_lane_fast_deliveries;
        out.overflow_deliveries += s.rt_lane_overflow_deliveries;
        out.lock_acquisitions += s.rt_lock_acquisitions;
        out.cv_waits += s.rt_cv_waits;
        out.cv_notifies += s.rt_cv_notifies;
        out.pool_local_hits += s.rt_pool_local_hits;
    }
    out.rate = out.elapsed_ms > 0.0
                   ? static_cast<double>(out.messages) / (out.elapsed_ms * 1e-3)
                   : 0.0;
    out.locks_per_msg = out.messages > 0 ? static_cast<double>(out.lock_acquisitions) /
                                               static_cast<double>(out.messages)
                                         : 0.0;
    return out;
}

/// Figure-16 shape: ring scatter of stride-2 doubles via the persistent
/// DatatypeOptimized backend. Returns steady-state ms per execute.
double vecscatter_steady_ms(int nranks, Index elems, int iters) {
    std::vector<double> rank_ms(static_cast<std::size_t>(nranks), 0.0);
    World w(nranks);
    w.run([&](Comm& c) {
        Vec src(c, 2 * elems * nranks);
        Vec dst(c, elems * nranks);
        for (Index i = 0; i < src.local_size(); ++i) {
            src.data()[i] = static_cast<double>(src.range().begin + i);
        }
        std::vector<Index> from, to;
        for (int r = 0; r < nranks; ++r) {
            for (Index j = 0; j < elems; ++j) {
                from.push_back(r * 2 * elems + 2 * j);
                to.push_back(((r + 1) % nranks) * elems + j);
            }
        }
        VecScatter sc(src, IndexSet::general(from), dst, IndexSet::general(to));
        sc.set_persistent(true);
        sc.execute(src, dst, ScatterBackend::DatatypeOptimized);  // compile plans
        c.barrier();
        benchutil::Stopwatch sw;
        for (int i = 0; i < iters; ++i) sc.execute(src, dst, ScatterBackend::DatatypeOptimized);
        const double ms = sw.ms() / iters;
        c.barrier();
        rank_ms[static_cast<std::size_t>(c.rank())] = ms;
    });
    double worst = 0.0;
    for (double ms : rank_ms) worst = std::max(worst, ms);
    return worst;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    bool gate = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
        if (std::strcmp(argv[i], "--gate") == 0) gate = true;
    }

    std::vector<StormResult> results;
    for (std::size_t i = 0; i < std::size(kWorldSizes); ++i) {
        const int n = kWorldSizes[i];
        if (smoke && n > 8) break;
        const int rounds = std::max(2, 4096 / n);  // ~30-60k messages per size
        results.push_back(storm(n, rounds));
    }

    const int scatter_world = 8;
    const double scatter_ms = vecscatter_steady_ms(scatter_world, smoke ? 4096 : 16384, 20);

    std::printf("== Transport contention: all-pairs 8-byte storm ==\n\n");
    benchutil::Table t({"World", "Messages", "Elapsed (ms)", "Msgs/s", "Fast", "Overflow",
                        "Locks/msg", "cv waits", "cv notifies", "vs baseline"});
    double ratio64 = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const StormResult& r = results[i];
        const double ratio = kBaselineStormRate[i] > 0.0 ? r.rate / kBaselineStormRate[i] : 0.0;
        if (r.world == 64) ratio64 = ratio;
        t.add_row({std::to_string(r.world), std::to_string(r.messages),
                   benchutil::fmt(r.elapsed_ms, 1), benchutil::fmt(r.rate, 0),
                   std::to_string(r.fast_deliveries), std::to_string(r.overflow_deliveries),
                   benchutil::fmt(r.locks_per_msg, 3), std::to_string(r.cv_waits),
                   std::to_string(r.cv_notifies), benchutil::fmt(ratio, 2) + "x"});
    }
    t.print();
    std::printf("\nfig16 vecscatter (world %d, persistent optimized backend): %.3f ms/execute\n",
                scatter_world, scatter_ms);

    const bool pass = smoke || ratio64 >= 2.0;
    if (!smoke) {
        std::printf("storm speedup at 64 ranks vs pre-lane baseline: %.2fx (require >= 2.0x): %s\n",
                    ratio64, ratio64 >= 2.0 ? "PASS" : "FAIL");
    }

    FILE* f = std::fopen("BENCH_contention.json", "w");
    if (f) {
        std::fprintf(f, "{\n  \"bench\": \"contention\",\n  \"smoke\": %s,\n",
                     smoke ? "true" : "false");
        std::fprintf(f, "  \"storm\": [\n");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const StormResult& r = results[i];
            std::fprintf(f,
                         "    { \"world\": %d, \"messages\": %llu, \"elapsed_ms\": %.3f, "
                         "\"rate_msgs_per_s\": %.1f, \"baseline_rate_msgs_per_s\": %.1f, "
                         "\"lane_fast_deliveries\": %llu, \"lane_overflow_deliveries\": %llu, "
                         "\"lock_acquisitions\": %llu, \"locks_per_msg\": %.4f, "
                         "\"cv_waits\": %llu, \"cv_notifies\": %llu, "
                         "\"pool_local_hits\": %llu }%s\n",
                         r.world, static_cast<unsigned long long>(r.messages), r.elapsed_ms,
                         r.rate, kBaselineStormRate[i],
                         static_cast<unsigned long long>(r.fast_deliveries),
                         static_cast<unsigned long long>(r.overflow_deliveries),
                         static_cast<unsigned long long>(r.lock_acquisitions), r.locks_per_msg,
                         static_cast<unsigned long long>(r.cv_waits),
                         static_cast<unsigned long long>(r.cv_notifies),
                         static_cast<unsigned long long>(r.pool_local_hits),
                         i + 1 < results.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"vecscatter_world\": %d,\n", scatter_world);
        std::fprintf(f, "  \"vecscatter_steady_ms\": %.4f,\n", scatter_ms);
        std::fprintf(f, "  \"speedup_at_64\": %.4f,\n", ratio64);
        std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
        std::fclose(f);
        std::printf("wrote BENCH_contention.json\n");
    }
    return (gate && !pass) ? 1 : 0;
}

// Figure 12: matrix-transpose latency vs matrix size.
//
// Rank 0 sends an n x n matrix (element = 3 doubles) column-major through a
// derived datatype; rank 1 receives it row-major (contiguously), i.e. the
// transfer transposes the matrix. The single-context engine is the
// MVAPICH2-0.9.5 baseline (its re-search makes latency grow superlinearly);
// the dual-context engine is MVAPICH2-New. Times are real wall-clock of
// this host's engines — the shape, not the absolute values, is the
// reproduction target.
//
// Both paper columns run with the compiled-plan fastpath off so the
// cursor engines under measurement actually execute (the transpose type
// compiles to the BlockedStrided plan kernel, which would bypass them).
// A third column shows the shipping configuration: the compiled plan
// with its per-length SIMD kernel pair.
#include <numeric>
#include <vector>

#include "bench/common.hpp"
#include "runtime/comm.hpp"

using namespace nncomm;
using benchutil::Table;

namespace {

double transpose_latency_ms(std::size_t n, dt::EngineKind kind, int iters,
                            bool plan_fastpath) {
    rt::World world(2);
    double total_ms = 0.0;
    world.run([&](rt::Comm& c) {
        c.set_engine(kind);
        dt::EngineConfig cfg;
        cfg.enable_plan_fastpath = plan_fastpath;
        c.set_engine_config(cfg);
        auto matrix = benchutil::transpose_type(n);
        if (c.rank() == 0) {
            std::vector<double> m(n * n * 3);
            std::iota(m.begin(), m.end(), 0.0);
            // Warmup.
            c.send(m.data(), 1, matrix, 1, 0);
            c.recv(nullptr, 0, dt::Datatype::byte(), 1, 1);
            benchutil::Stopwatch sw;
            for (int it = 0; it < iters; ++it) {
                c.send(m.data(), 1, matrix, 1, 0);
                c.recv(nullptr, 0, dt::Datatype::byte(), 1, 1);  // completion ack
            }
            total_ms = sw.ms() / iters;
        } else {
            std::vector<double> recv(n * n * 3);
            for (int it = 0; it < iters + 1; ++it) {
                c.recv(recv.data(), recv.size() * 8, dt::Datatype::byte(), 0, 0);
                c.send(nullptr, 0, dt::Datatype::byte(), 0, 1);
            }
        }
    });
    return total_ms;
}

}  // namespace

int main() {
    std::printf("== Figure 12: matrix transpose benchmark ==\n");
    std::printf("sender: column-major derived datatype; receiver: row-major contiguous\n\n");

    Table t({"Matrix size", "MVAPICH2-0.9.5 (ms)", "MVAPICH2-New (ms)", "Improvement",
             "Compiled SIMD plan (ms)"});
    for (std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
        const int iters = n >= 512 ? 2 : 5;
        const double base =
            transpose_latency_ms(n, dt::EngineKind::SingleContext, iters, false);
        const double opt =
            transpose_latency_ms(n, dt::EngineKind::DualContext, iters, false);
        const double plan =
            transpose_latency_ms(n, dt::EngineKind::DualContext, iters, true);
        t.add_row({std::to_string(n) + "x" + std::to_string(n), benchutil::fmt(base),
                   benchutil::fmt(opt),
                   benchutil::fmt_pct(benchutil::improvement_pct(base, opt)),
                   benchutil::fmt(plan)});
    }
    t.print();
    std::printf("\npaper shape: baseline grows superlinearly with matrix size; the\n"
                "dual-context engine removes the quadratic re-search (>85%% at 1024x1024).\n"
                "The compiled BlockedStrided plan (shipping default) removes the cursor\n"
                "walk entirely on top of that.\n");
    return 0;
}

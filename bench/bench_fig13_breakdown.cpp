// Figure 13: datatype-processing time breakdown (Comm / Pack / Search) of
// the transpose benchmark, for the current (single-context) approach and
// the proposed dual-context look-ahead approach. Percentages are measured
// from the engines' phase timers.
#include <numeric>
#include <vector>

#include "bench/common.hpp"
#include "runtime/comm.hpp"

using namespace nncomm;
using benchutil::Table;

namespace {

struct Breakdown {
    double comm_pct = 0, pack_pct = 0, search_pct = 0;
};

Breakdown measure(std::size_t n, dt::EngineKind kind) {
    rt::World world(2);
    Breakdown out;
    world.run([&](rt::Comm& c) {
        c.set_engine(kind);
        // The breakdown measures the cursor engines' Comm/Pack/Search
        // phases; the compiled-plan fastpath would skip them entirely.
        dt::EngineConfig cfg;
        cfg.enable_plan_fastpath = false;
        c.set_engine_config(cfg);
        auto matrix = benchutil::transpose_type(n);
        if (c.rank() == 0) {
            std::vector<double> m(n * n * 3);
            std::iota(m.begin(), m.end(), 0.0);
            c.reset_stats();
            for (int it = 0; it < 3; ++it) {
                c.send(m.data(), 1, matrix, 1, 0);
                c.recv(nullptr, 0, dt::Datatype::byte(), 1, 1);
            }
            const auto& t = c.timers();
            const double comm = t.seconds(Phase::Comm);
            const double pack = t.seconds(Phase::Pack);
            const double search = t.seconds(Phase::Search);
            const double total = comm + pack + search;
            if (total > 0) {
                out.comm_pct = 100.0 * comm / total;
                out.pack_pct = 100.0 * pack / total;
                out.search_pct = 100.0 * search / total;
            }
        } else {
            std::vector<double> recv(n * n * 3);
            for (int it = 0; it < 3; ++it) {
                c.recv(recv.data(), recv.size() * 8, dt::Datatype::byte(), 0, 0);
                c.send(nullptr, 0, dt::Datatype::byte(), 0, 1);
            }
        }
    });
    return out;
}

void print_breakdown(const char* label, dt::EngineKind kind) {
    std::printf("\n(%s)\n", label);
    Table t({"Matrix size", "Comm", "Pack", "Search"});
    for (std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
        const Breakdown b = measure(n, kind);
        t.add_row({std::to_string(n) + "x" + std::to_string(n),
                   benchutil::fmt_pct(b.comm_pct), benchutil::fmt_pct(b.pack_pct),
                   benchutil::fmt_pct(b.search_pct)});
    }
    t.print();
}

}  // namespace

int main() {
    std::printf("== Figure 13: datatype processing breakup (sender-side %%time) ==\n");
    print_breakdown("a: current single-context approach", dt::EngineKind::SingleContext);
    print_breakdown("b: proposed dual-context look-ahead approach", dt::EngineKind::DualContext);
    std::printf("\npaper shape: (a) Search share grows dramatically with matrix size;\n"
                "(b) Search is eliminated entirely and Comm dominates.\n");
    return 0;
}

// Figure 14: MPI_Allgatherv with one outlier volume, on the simulated
// cluster. Process 0 contributes a large block while every other process
// contributes a single double.
//
//   (a) latency vs process-0 volume at 64 processes,
//   (b) latency vs process count with process 0 sending 32 KB.
//
// MVAPICH2-0.9.5 — the uniform-volume policy: the ring algorithm whenever
// the total payload is "large", regardless of how the volume is
// distributed (one large message then snakes around the ring
// sequentially).
// MVAPICH2-New — the paper's outlier-aware selection (Eq. 1 over the
// communication-volume set via Floyd–Rivest k-select): recursive doubling
// or dissemination whenever the set is nonuniform.
#include <string>

#include "bench/common.hpp"
#include "netsim/programs.hpp"

using namespace nncomm;
using namespace nncomm::sim;
using benchutil::Table;

namespace {

constexpr int kIterations = 20;
/// MPICH2-like baseline: switch to the ring once the total payload is at
/// least this many bytes (no outlier analysis).
constexpr std::uint64_t kBaselineRingThreshold = 16 * 1024;

AllgathervWorkload outlier_workload(int nprocs, std::uint64_t p0_bytes) {
    AllgathervWorkload wl;
    wl.volumes.assign(static_cast<std::size_t>(nprocs), 8);
    wl.volumes[0] = p0_bytes;
    wl.iterations = kIterations;
    return wl;
}

double latency_us(int nprocs, std::uint64_t p0_bytes, bool optimized) {
    auto cluster = make_uniform_cluster(nprocs);
    const AllgathervWorkload wl = outlier_workload(nprocs, p0_bytes);

    GathervSchedule schedule;
    if (optimized) {
        schedule = GathervSchedule::Auto;  // Eq. 1 outlier-aware selection
    } else {
        std::uint64_t total = 0;
        for (auto v : wl.volumes) total += v;
        const bool pow2 = (nprocs & (nprocs - 1)) == 0;
        schedule = (total >= kBaselineRingThreshold)
                       ? GathervSchedule::Ring
                       : (pow2 ? GathervSchedule::RecursiveDoubling
                               : GathervSchedule::Dissemination);
    }
    const auto result = Simulator(cluster).run(allgatherv_program(cluster, wl, schedule));
    return result.makespan_us / kIterations;
}

}  // namespace

int main() {
    std::printf("== Figure 14: MPI_Allgatherv performance (simulated cluster) ==\n");
    std::printf("process 0 sends a large block; every other process sends one double\n");

    std::printf("\n(a) 64 processes, varying process-0 message size\n");
    Table a({"Msg size (doubles)", "MVAPICH2-0.9.5 (us)", "MVAPICH2-New (us)", "Improvement"});
    for (std::uint64_t doubles = 1; doubles <= 16384; doubles *= 4) {
        const double base = latency_us(64, doubles * 8, false);
        const double opt = latency_us(64, doubles * 8, true);
        a.add_row({std::to_string(doubles), benchutil::fmt(base, 1), benchutil::fmt(opt, 1),
                   benchutil::fmt_pct(benchutil::improvement_pct(base, opt))});
    }
    a.print();

    std::printf("\n(b) process 0 sends 32 KB, varying process count\n");
    Table b({"Processes", "MVAPICH2-0.9.5 (us)", "MVAPICH2-New (us)", "Improvement"});
    for (int n : {2, 4, 8, 16, 32, 64}) {
        const double base = latency_us(n, 32 * 1024, false);
        const double opt = latency_us(n, 32 * 1024, true);
        b.add_row({std::to_string(n), benchutil::fmt(base, 1), benchutil::fmt(opt, 1),
                   benchutil::fmt_pct(benchutil::improvement_pct(base, opt))});
    }
    b.print();

    std::printf("\npaper shape: the baseline's latency grows much faster in both sweeps\n"
                "once its large-total policy picks the ring; ~20%% at 64 procs / 32 KB.\n");
    return 0;
}

// Figure 15: MPI_Alltoallw nearest-neighbor performance on the simulated
// heterogeneous testbed (32 Intel + 32 Opteron nodes; natural skew between
// the two halves, as observed in the paper's §5.3).
//
// Workload: processes arranged in a logical ring; each exchanges a 10x10
// matrix of doubles (800 B) with its successor and predecessor and nothing
// with anyone else.
//
// MVAPICH2-0.9.5 — round-robin pairwise exchange including zero-byte
// messages (each a synchronization); MVAPICH2-New — the binned design
// (zero-volume peers exempted, small volumes first).
#include <string>

#include "bench/common.hpp"
#include "netsim/programs.hpp"

using namespace nncomm;
using namespace nncomm::sim;
using benchutil::Table;

namespace {

constexpr int kIterations = 50;
constexpr std::uint64_t kMsgBytes = 10 * 10 * 8;  // 10x10 doubles

double latency_us(int nprocs, AlltoallwSchedule schedule) {
    // Up to 32 processes the paper ran entirely on the Opteron cluster
    // (homogeneous but still noisy); beyond that the two clusters mix.
    auto cluster = make_paper_testbed(nprocs, /*skew_us_mean=*/15.0);
    if (nprocs <= 32) {
        for (auto& s : cluster.speed) s = 0.8;  // all-Opteron
    }
    auto wl = make_ring_neighbor_workload(nprocs, kMsgBytes);
    wl.iterations = kIterations;
    const auto result = Simulator(cluster).run(alltoallw_program(cluster, wl, schedule));
    return result.makespan_us / kIterations;
}

}  // namespace

int main() {
    std::printf("== Figure 15: MPI_Alltoallw performance (simulated cluster) ==\n");
    std::printf("logical ring; 10x10 doubles to each of 2 neighbors, zero to all others\n\n");

    Table t({"Processes", "MVAPICH2-0.9.5 (us)", "MVAPICH2-New (us)", "Improvement"});
    for (int n : {2, 4, 8, 16, 32, 64, 128}) {
        const double base = latency_us(n, AlltoallwSchedule::RoundRobin);
        const double opt = latency_us(n, AlltoallwSchedule::Binned);
        t.add_row({std::to_string(n), benchutil::fmt(base, 1), benchutil::fmt(opt, 1),
                   benchutil::fmt_pct(benchutil::improvement_pct(base, opt))});
    }
    t.print();

    std::printf("\npaper shape: the baseline degrades steadily with system size (zero-size\n"
                "round-robin synchronization propagates every rank's skew); the binned\n"
                "design stays flat — ~50%% at 32 procs, >88%% at 128.\n");
    return 0;
}

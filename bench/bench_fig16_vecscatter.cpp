// Figure 16: PETSc vector-scatter benchmark.
//
// Two 1-D grids (one degree of freedom) are laid out in parallel; each
// process scatters the elements of its portion of the first vector to a
// unique portion of the second (§5.4). The source elements are strided
// (every other double — the Figure 5 layout), so each rank sends one large
// noncontiguous message to exactly one peer and nothing to anyone else:
// a maximally nonuniform communication-volume set (one volume, P-2 zeros)
// of noncontiguous data — the paper's combined worst case.
//
// Weak scaling: elements per process constant across the sweep.
//
// The three series are the paper's:
//   hand-tuned       — explicit pack loops + point-to-point (PETSc default),
//   MVAPICH2-0.9.5   — derived datatypes + round-robin Alltoallw (zero-size
//                      messages synchronize) + single-context engine
//                      (quadratic re-search while packing),
//   MVAPICH2-New     — derived datatypes + binned Alltoallw (zero peers
//                      exempt) + dual-context engine.
//
// The traffic matrix driving the simulator is validated against the real
// VecScatter plan built by the library at 8 processes.
#include <string>

#include "bench/common.hpp"
#include "netsim/programs.hpp"
#include "petsckit/scatter.hpp"

using namespace nncomm;
using namespace nncomm::sim;
using benchutil::Table;

namespace {

constexpr std::uint64_t kElemsPerProc = 65536;  // doubles scattered per process
constexpr int kIterations = 20;

/// Analytic traffic: rank r sends all kElemsPerProc doubles to rank
/// (r+1) mod P as isolated 8-byte blocks (stride-2 source).
AlltoallwWorkload scatter_workload(int nprocs, PackModel pack) {
    AlltoallwWorkload wl;
    wl.nprocs = nprocs;
    wl.volume.assign(static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs), 0);
    for (int r = 0; r < nprocs; ++r) {
        wl.vol(r, (r + 1) % nprocs) = kElemsPerProc * 8;
    }
    wl.block_len = 8.0;  // single-double blocks
    wl.pack = pack;
    wl.iterations = kIterations;
    return wl;
}

double scatter_time_us(int nprocs, AlltoallwSchedule schedule, PackModel pack) {
    auto cluster = make_paper_testbed(nprocs, /*skew_us_mean=*/15.0);
    const auto result =
        Simulator(cluster).run(alltoallw_program(cluster, scatter_workload(nprocs, pack),
                                                 schedule));
    return result.makespan_us / kIterations;
}

/// Builds the same pattern with the real library at a small scale and
/// checks its planned traffic against the analytic matrix.
bool validate_against_real_scatter() {
    constexpr int kProcs = 8;
    constexpr pk::Index kElems = 512;  // per process, for the validation only
    bool ok = true;
    rt::World world(kProcs);
    world.run([&](rt::Comm& c) {
        // First vector: 2*kElems doubles per process; each process scatters
        // its even-offset elements to the next process's portion of the
        // second vector (kElems doubles per process).
        pk::Vec src(c, 2 * kElems * kProcs), dst(c, kElems * kProcs);
        std::vector<pk::Index> from, to;
        for (int r = 0; r < kProcs; ++r) {
            for (pk::Index j = 0; j < kElems; ++j) {
                from.push_back(r * 2 * kElems + 2 * j);
                to.push_back(((r + 1) % kProcs) * kElems + j);
            }
        }
        pk::VecScatter sc(src, pk::IndexSet::general(from), dst, pk::IndexSet::general(to));
        const auto& bytes = sc.send_bytes();
        const auto blocks = sc.send_blocks();
        const auto peer = static_cast<std::size_t>((c.rank() + 1) % kProcs);
        for (int d = 0; d < kProcs; ++d) {
            const std::uint64_t expect_bytes =
                (static_cast<std::size_t>(d) == peer) ? kElems * 8 : 0;
            if (bytes[static_cast<std::size_t>(d)] != expect_bytes) ok = false;
        }
        // Stride-2 source offsets: no merging, one block per element.
        if (blocks[peer] != static_cast<std::uint64_t>(kElems)) ok = false;
    });
    return ok;
}

}  // namespace

int main() {
    std::printf("== Figure 16: PETSc vector scatter benchmark (simulated cluster) ==\n");
    std::printf("strided 1-D scatter to one unique peer, %llu doubles per process "
                "(weak scaling)\n",
                static_cast<unsigned long long>(kElemsPerProc));
    std::printf("traffic matrix validated against the real VecScatter plan at 8 procs: %s\n\n",
                validate_against_real_scatter() ? "OK" : "MISMATCH");

    Table a({"Processes", "MVAPICH2-0.9.5 (ms)", "MVAPICH2-New (ms)", "Hand-tuned (ms)"});
    Table b({"Processes", "MVAPICH2-New vs 0.9.5", "Hand-tuned vs 0.9.5"});
    for (int n : {2, 4, 8, 16, 32, 64, 128}) {
        const double orig =
            scatter_time_us(n, AlltoallwSchedule::RoundRobin, PackModel::SingleContext);
        const double opt =
            scatter_time_us(n, AlltoallwSchedule::Binned, PackModel::DualContext);
        const double hand =
            scatter_time_us(n, AlltoallwSchedule::Binned, PackModel::HandTuned);
        a.add_row({std::to_string(n), benchutil::fmt(orig / 1000.0, 3),
                   benchutil::fmt(opt / 1000.0, 3), benchutil::fmt(hand / 1000.0, 3)});
        b.add_row({std::to_string(n), benchutil::fmt_pct(benchutil::improvement_pct(orig, opt)),
                   benchutil::fmt_pct(benchutil::improvement_pct(orig, hand))});
    }
    std::printf("(a) absolute latency\n");
    a.print();
    std::printf("\n(b) improvement over the original implementation\n");
    b.print();

    std::printf("\npaper shape: the optimized implementation's advantage over the original\n"
                "grows with process count (>95%% at 128); the hand-tuned path stays a few\n"
                "percent ahead of the optimized datatype path.\n");
    return 0;
}

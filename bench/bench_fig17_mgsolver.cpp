// Figure 17: 3-D Laplacian multigrid solver application.
//
// The paper's application: a 3-D Laplacian solved with a three-level
// multigrid on a ~100^3 grid with one degree of freedom (we use 101^3 so
// the vertex-centered hierarchy coarsens exactly: 101 -> 51 -> 26).
//
// Per V-cycle the solver performs, on every level, Jacobi smoothing and
// residual evaluations (each one a DMDA star-stencil ghost exchange with
// nonuniform per-neighbor volumes), inter-grid transfer gathers, and — on
// the coarsest level — CG iterations with two allreduces each. The
// communication structure (who talks to whom, how many bytes, how many
// noncontiguous blocks) is computed from the library's own DMDA
// decomposition; the discrete-event simulator then prices it per backend:
//   MVAPICH2-0.9.5 — round-robin Alltoallw + single-context engine,
//   MVAPICH2-New   — binned Alltoallw + dual-context engine,
//   Hand-tuned     — binned schedule + explicit pack loops.
#include <algorithm>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "netsim/programs.hpp"
#include "petsckit/dmda.hpp"

using namespace nncomm;
using namespace nncomm::sim;
using benchutil::Table;
using pk::DMDA;
using pk::GridBox;
using pk::GridSize;
using pk::Index;

namespace {

constexpr Index kFineGrid = 101;
constexpr int kLevels = 3;
constexpr int kPreSmooth = 2, kPostSmooth = 2;
constexpr int kCoarseCgIters = 20;
constexpr int kCycles = 20;
constexpr double kComputeUsPerPoint = 0.004;  // stencil sweep cost per grid point

struct Setup {
    AlltoallwSchedule schedule;
    PackModel pack;
};

AlltoallwWorkload traffic_to_workload(int nprocs,
                                      const std::vector<DMDA::TrafficEntry>& traffic,
                                      const Setup& setup) {
    AlltoallwWorkload wl;
    wl.nprocs = nprocs;
    wl.volume.assign(static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs), 0);
    std::uint64_t bytes = 0, blocks = 0;
    for (const auto& e : traffic) {
        wl.vol(e.src, e.dst) += e.bytes;
        bytes += e.bytes;
        blocks += e.blocks;
    }
    wl.block_len = blocks ? static_cast<double>(bytes) / static_cast<double>(blocks) : 8.0;
    wl.pack = setup.pack;
    return wl;
}

GridBox intersect(const GridBox& a, const GridBox& b) {
    GridBox r;
    r.xs = std::max(a.xs, b.xs);
    r.xm = std::max<Index>(0, std::min(a.xs + a.xm, b.xs + b.xm) - r.xs);
    r.ys = std::max(a.ys, b.ys);
    r.ym = std::max<Index>(0, std::min(a.ys + a.ym, b.ys + b.ym) - r.ys);
    r.zs = std::max(a.zs, b.zs);
    r.zm = std::max<Index>(0, std::min(a.zs + a.zm, b.zs + b.zm) - r.zs);
    if (r.xm == 0 || r.ym == 0 || r.zm == 0) r = GridBox{0, 0, 0, 0, 0, 0};
    return r;
}

/// Traffic of a PatchGather: rank r needs `patches[r]` of the grid
/// decomposed as `owners`; every overlap with a remote owner is a message.
AlltoallwWorkload patch_workload(int nprocs, const std::vector<GridBox>& patches,
                                 const std::vector<GridBox>& owners, const Setup& setup) {
    AlltoallwWorkload wl;
    wl.nprocs = nprocs;
    wl.volume.assign(static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs), 0);
    std::uint64_t bytes = 0, blocks = 0;
    for (int r = 0; r < nprocs; ++r) {
        for (int s = 0; s < nprocs; ++s) {
            if (s == r) continue;
            const GridBox ov = intersect(patches[static_cast<std::size_t>(r)],
                                         owners[static_cast<std::size_t>(s)]);
            const std::uint64_t v = static_cast<std::uint64_t>(ov.volume()) * 8;
            if (v == 0) continue;
            wl.vol(s, r) += v;  // owner s sends to gatherer r
            bytes += v;
            blocks += static_cast<std::uint64_t>(ov.ym) * static_cast<std::uint64_t>(ov.zm);
        }
    }
    wl.block_len = blocks ? static_cast<double>(bytes) / static_cast<double>(blocks) : 8.0;
    wl.pack = setup.pack;
    return wl;
}

double solver_time_s(int nprocs, const Setup& setup) {
    auto cluster = make_paper_testbed(nprocs, /*skew_us_mean=*/15.0);

    // Level geometry: 101 -> 51 -> 26.
    std::vector<GridSize> grids;
    Index m = kFineGrid;
    for (int l = 0; l < kLevels; ++l) {
        grids.push_back(GridSize{m, m, m});
        if (l + 1 < kLevels) m = (m + 1) / 2;
    }
    std::vector<std::vector<GridBox>> boxes;
    std::vector<AlltoallwWorkload> ghost;
    for (const auto& g : grids) {
        boxes.push_back(DMDA::decompose(nprocs, 3, g));
        ghost.push_back(traffic_to_workload(
            nprocs, DMDA::ghost_traffic(nprocs, 3, g, 1, 1, pk::Stencil::Star), setup));
    }

    // Transfer gathers between consecutive levels (same patch math as
    // MGSolver's PatchGather construction).
    std::vector<AlltoallwWorkload> restrict_wl, prolong_wl;
    for (int l = 0; l + 1 < kLevels; ++l) {
        const auto& fine_boxes = boxes[static_cast<std::size_t>(l)];
        const auto& coarse_boxes = boxes[static_cast<std::size_t>(l) + 1];
        const Index fm = grids[static_cast<std::size_t>(l)].m;
        const Index cm = grids[static_cast<std::size_t>(l) + 1].m;
        std::vector<GridBox> fine_patches(static_cast<std::size_t>(nprocs));
        std::vector<GridBox> coarse_patches(static_cast<std::size_t>(nprocs));
        for (int r = 0; r < nprocs; ++r) {
            const GridBox& co = coarse_boxes[static_cast<std::size_t>(r)];
            const GridBox& fo = fine_boxes[static_cast<std::size_t>(r)];
            auto span_f = [&](Index cs, Index cmx) {
                const Index lo = std::max<Index>(0, 2 * cs - 1);
                const Index hi = std::min<Index>(fm - 1, 2 * (cs + cmx - 1) + 1);
                return std::pair<Index, Index>{lo, hi - lo + 1};
            };
            auto span_c = [&](Index fs, Index fmx) {
                const Index lo = fs / 2;
                const Index hi = std::min<Index>(cm - 1, (fs + fmx) / 2);
                return std::pair<Index, Index>{lo, hi - lo + 1};
            };
            GridBox& fp = fine_patches[static_cast<std::size_t>(r)];
            std::tie(fp.xs, fp.xm) = span_f(co.xs, co.xm);
            std::tie(fp.ys, fp.ym) = span_f(co.ys, co.ym);
            std::tie(fp.zs, fp.zm) = span_f(co.zs, co.zm);
            GridBox& cp = coarse_patches[static_cast<std::size_t>(r)];
            std::tie(cp.xs, cp.xm) = span_c(fo.xs, fo.xm);
            std::tie(cp.ys, cp.ym) = span_c(fo.ys, fo.ym);
            std::tie(cp.zs, cp.zm) = span_c(fo.zs, fo.zm);
        }
        restrict_wl.push_back(patch_workload(nprocs, fine_patches, fine_boxes, setup));
        prolong_wl.push_back(patch_workload(nprocs, coarse_patches, coarse_boxes, setup));
    }

    ProgramBuilder pb(cluster);
    for (int cycle = 0; cycle < kCycles; ++cycle) {
        pb.add_skew();
        auto level_points = [&](int l) {
            const Index g = grids[static_cast<std::size_t>(l)].m;
            return static_cast<double>(g) * static_cast<double>(g) * static_cast<double>(g) /
                   nprocs;
        };
        // Downstroke: smoothing + residual on each non-coarsest level, then
        // the restriction gather.
        for (int l = 0; l + 1 < kLevels; ++l) {
            const double sweep_us = level_points(l) * kComputeUsPerPoint;
            for (int s = 0; s < kPreSmooth + 1; ++s) {  // pre-smooth + residual
                pb.add_compute_all(sweep_us);
                pb.add_alltoallw(ghost[static_cast<std::size_t>(l)], setup.schedule);
            }
            pb.add_alltoallw(restrict_wl[static_cast<std::size_t>(l)], setup.schedule);
        }
        // Coarsest level: CG iterations (ghost exchange + 2 allreduces each).
        for (int it = 0; it < kCoarseCgIters; ++it) {
            pb.add_compute_all(level_points(kLevels - 1) * kComputeUsPerPoint);
            pb.add_alltoallw(ghost[kLevels - 1], setup.schedule);
            pb.add_allreduce(8);
            pb.add_allreduce(8);
        }
        // Upstroke: prolongation gather + post-smoothing.
        for (int l = kLevels - 2; l >= 0; --l) {
            pb.add_alltoallw(prolong_wl[static_cast<std::size_t>(l)], setup.schedule);
            const double sweep_us = level_points(l) * kComputeUsPerPoint;
            for (int s = 0; s < kPostSmooth; ++s) {
                pb.add_compute_all(sweep_us);
                pb.add_alltoallw(ghost[static_cast<std::size_t>(l)], setup.schedule);
            }
        }
        // Convergence check: residual norm.
        pb.add_allreduce(8);
    }
    const auto result = Simulator(cluster).run(pb.take());
    return result.makespan_us * 1e-6;
}

}  // namespace

int main() {
    std::printf("== Figure 17: 3-D Laplacian multigrid solver (simulated cluster) ==\n");
    std::printf("grid %lldx%lldx%lld, 1 dof, %d levels, %d V-cycles\n\n",
                static_cast<long long>(kFineGrid), static_cast<long long>(kFineGrid),
                static_cast<long long>(kFineGrid), kLevels, kCycles);

    const Setup orig{AlltoallwSchedule::RoundRobin, PackModel::SingleContext};
    const Setup opt{AlltoallwSchedule::Binned, PackModel::DualContext};
    const Setup hand{AlltoallwSchedule::Binned, PackModel::HandTuned};

    Table a({"Processes", "MVAPICH2-0.9.5 (s)", "MVAPICH2-New (s)", "Hand-tuned (s)"});
    Table b({"Processes", "MVAPICH2-New vs 0.9.5", "Hand-tuned vs New"});
    for (int n : {4, 8, 16, 32, 64, 128}) {
        const double t_orig = solver_time_s(n, orig);
        const double t_opt = solver_time_s(n, opt);
        const double t_hand = solver_time_s(n, hand);
        a.add_row({std::to_string(n), benchutil::fmt(t_orig, 3), benchutil::fmt(t_opt, 3),
                   benchutil::fmt(t_hand, 3)});
        b.add_row({std::to_string(n),
                   benchutil::fmt_pct(benchutil::improvement_pct(t_orig, t_opt)),
                   benchutil::fmt_pct(benchutil::improvement_pct(t_opt, t_hand))});
    }
    std::printf("(a) absolute execution time\n");
    a.print();
    std::printf("\n(b) improvement\n");
    b.print();

    std::printf("\npaper shape: with the original MPI the execution time stops improving\n"
                "past ~32 processes and turns upward; the optimized implementation keeps\n"
                "scaling to 128 (~90%% improvement there). Hand-tuned leads the optimized\n"
                "path by ~10%% at 4 processes, shrinking below ~3%% at 128.\n");
    return 0;
}

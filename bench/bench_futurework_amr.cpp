// Future-work study (paper §7): adaptive-mesh (FLASH-style) workloads.
//
// "Applications using the FLASH software ... typically rely on adaptive
//  meshes where the area of interest is dynamically discovered. ...
//  depending on the granularity of the load-balancing, this could create
//  significant amounts of skew between processes."
//
// Model: every rank carries a base load; ranks 16..31 also carry the
// refined region (imbalance = refined/base compute ratio). Each step ends
// with a neighbor ghost exchange (nonuniform volumes, mostly-zero pairs);
// a global regrid synchronization happens only every 10 steps.
//
// The slow refined ranks bound the overall makespan no matter what — the
// question §3.2 raises is how much of their slowness *leaks onto the light
// ranks* through the collective. The round-robin baseline synchronizes
// every rank pairwise with every other rank each step, so the light ranks
// inherit the refined ranks' delay; the binned design couples only true
// neighbors, so light ranks far from the refined region run at their own
// pace until the regrid sync.
#include <algorithm>
#include <string>

#include "bench/common.hpp"
#include "netsim/programs.hpp"

using namespace nncomm;
using namespace nncomm::sim;
using benchutil::Table;

namespace {

constexpr int kProcs = 64;
constexpr int kSteps = 30;              // AMR iterations simulated
constexpr int kRegridEvery = 10;        // global sync period
constexpr double kBaseComputeUs = 200;  // per-step base load
constexpr std::uint64_t kFaceBytes = 16 * 1024;
constexpr std::uint64_t kRefinedFaceBytes = 64 * 1024;

bool refined(int r) { return r >= kProcs / 4 && r < kProcs / 2; }

struct AmrRun {
    double makespan_us;
    double light_rank_us;  ///< completion of rank 60 (far from the region)
};

AmrRun run_amr(double imbalance, AlltoallwSchedule schedule, PackModel pack,
               int regrid_every = kRegridEvery) {
    auto cluster = make_paper_testbed(kProcs, /*skew_us_mean=*/20.0);

    AlltoallwWorkload comm;
    comm.nprocs = kProcs;
    comm.volume.assign(static_cast<std::size_t>(kProcs) * kProcs, 0);
    comm.block_len = 24.0;
    comm.pack = pack;
    std::vector<double> compute(kProcs, kBaseComputeUs);
    for (int r = 0; r < kProcs; ++r) {
        if (refined(r)) compute[static_cast<std::size_t>(r)] *= imbalance;
        for (int d : {(r + 1) % kProcs, (r + kProcs - 1) % kProcs}) {
            comm.vol(r, d) = (refined(r) && refined(d)) ? kRefinedFaceBytes : kFaceBytes;
        }
    }

    ProgramBuilder pb(cluster);
    for (int s = 0; s < kSteps; ++s) {
        pb.add_skew();
        pb.add_compute_per_rank(compute);
        pb.add_alltoallw(comm, schedule);
        // Periodic regrid decision (not after the last step — we want the
        // state of the ranks mid-window, as an ongoing run would see it).
        if (s > 0 && s % regrid_every == 0) pb.add_allreduce(8);
    }
    const auto result = Simulator(cluster).run(pb.take());
    return AmrRun{result.makespan_us / kSteps,
                  result.finish_us[60] / kSteps};
}

}  // namespace

int main() {
    std::printf("== Future work (paper §7): FLASH-style AMR skew study ==\n");
    std::printf("%d procs; ranks 16..31 carry the refined region; ring ghost exchange\n"
                "%llu B/face (%llu B between refined ranks); regrid sync every %d steps\n\n",
                kProcs, static_cast<unsigned long long>(kFaceBytes),
                static_cast<unsigned long long>(kRefinedFaceBytes), kRegridEvery);

    Table t({"Imbalance", "RR makespan", "Binned makespan", "RR light-rank", "Binned light-rank",
             "Light-rank gain"});
    for (double imb : {1.0, 2.0, 4.0, 8.0, 16.0}) {
        const AmrRun rr = run_amr(imb, AlltoallwSchedule::RoundRobin, PackModel::SingleContext);
        const AmrRun bn = run_amr(imb, AlltoallwSchedule::Binned, PackModel::DualContext);
        char label[32];
        std::snprintf(label, sizeof(label), "%.0fx", imb);
        t.add_row({label, benchutil::fmt(rr.makespan_us, 0) + " us",
                   benchutil::fmt(bn.makespan_us, 0) + " us",
                   benchutil::fmt(rr.light_rank_us, 0) + " us",
                   benchutil::fmt(bn.light_rank_us, 0) + " us",
                   benchutil::fmt_pct(
                       benchutil::improvement_pct(rr.light_rank_us, bn.light_rank_us))});
    }
    t.print();

    std::printf("\nload-balancing granularity sweep (imbalance fixed at 8x): the paper's\n"
                "§7 point — the coarser the regrid/balance interval, the more of the\n"
                "refined ranks' skew the binned design hides from the light ranks:\n\n");
    Table g({"Regrid every", "RR light-rank", "Binned light-rank", "Light-rank gain"});
    for (int period : {1, 3, 10, 30}) {
        const AmrRun rr =
            run_amr(8.0, AlltoallwSchedule::RoundRobin, PackModel::SingleContext, period);
        const AmrRun bn = run_amr(8.0, AlltoallwSchedule::Binned, PackModel::DualContext,
                                  period);
        g.add_row({std::to_string(period) + " steps",
                   benchutil::fmt(rr.light_rank_us, 0) + " us",
                   benchutil::fmt(bn.light_rank_us, 0) + " us",
                   benchutil::fmt_pct(
                       benchutil::improvement_pct(rr.light_rank_us, bn.light_rank_us))});
    }
    g.print();

    std::printf("\nconclusion the paper anticipated: the refined ranks bound the makespan\n"
                "either way, but under round-robin the *light* ranks inherit the refined\n"
                "ranks' delay through 63 pairwise synchronizations per step, while the\n"
                "binned design leaves them free between regrid syncs. The absolute delay\n"
                "removed from light ranks grows with the imbalance factor, and the gain\n"
                "is bounded by the load-balancing granularity — exactly the coupling the\n"
                "paper flags for study.\n");
    return 0;
}

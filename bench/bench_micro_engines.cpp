// Micro-benchmark (google-benchmark): raw pack-engine throughput on dense
// and sparse layouts, single-context vs dual-context, plus the reference
// packer as a lower bound and the compiled SIMD plan as the shipping
// fastpath. The cursor-engine fixtures force the plan fastpath off so
// they measure the cursor walk they are named for. The argument is the
// matrix edge of the transpose type (sparse 24-byte blocks) or the
// double count (dense).
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "bench/common.hpp"
#include "datatype/engine.hpp"
#include "datatype/pack.hpp"
#include "datatype/plan.hpp"

namespace {

using namespace nncomm::dt;

void drain(PackEngine& e) {
    ChunkView chunk;
    while (e.next_chunk(chunk)) benchmark::DoNotOptimize(chunk.bytes);
}

EngineConfig cursor_config() {
    EngineConfig cfg;
    cfg.enable_plan_fastpath = false;
    return cfg;
}

void BM_SparsePackSingleContext(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    auto t = benchutil::transpose_type(n);
    std::vector<double> m(n * n * 3);
    std::iota(m.begin(), m.end(), 0.0);
    for (auto _ : state) {
        SingleContextEngine e(m.data(), t, 1, cursor_config());
        drain(e);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n * n * 24));
}
BENCHMARK(BM_SparsePackSingleContext)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_SparsePackDualContext(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    auto t = benchutil::transpose_type(n);
    std::vector<double> m(n * n * 3);
    std::iota(m.begin(), m.end(), 0.0);
    for (auto _ : state) {
        DualContextEngine e(m.data(), t, 1, cursor_config());
        drain(e);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n * n * 24));
}
BENCHMARK(BM_SparsePackDualContext)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_SparsePackCompiledPlan(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    auto t = benchutil::transpose_type(n);
    std::vector<double> m(n * n * 3);
    std::iota(m.begin(), m.end(), 0.0);
    std::vector<std::byte> out(n * n * 24);
    const PackPlan plan = PackPlan::compile(t.flat());  // BlockedStrided + SIMD pair
    for (auto _ : state) {
        plan.pack(t.flat(), reinterpret_cast<const std::byte*>(m.data()), 1,
                  std::span<std::byte>(out));
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n * n * 24));
}
BENCHMARK(BM_SparsePackCompiledPlan)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_SparsePackReference(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    auto t = benchutil::transpose_type(n);
    std::vector<double> m(n * n * 3);
    std::iota(m.begin(), m.end(), 0.0);
    std::vector<std::byte> out(n * n * 24);
    for (auto _ : state) {
        TypeCursor cur(&t.flat(), 1);
        benchmark::DoNotOptimize(pack_bytes(reinterpret_cast<const std::byte*>(m.data()), cur,
                                            std::span<std::byte>(out)));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n * n * 24));
}
BENCHMARK(BM_SparsePackReference)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_DensePack(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    auto t = Datatype::contiguous(n, Datatype::float64());
    std::vector<double> m(n);
    std::iota(m.begin(), m.end(), 0.0);
    for (auto _ : state) {
        DualContextEngine e(m.data(), t, 1);
        drain(e);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n * 8));
}
BENCHMARK(BM_DensePack)->Range(1 << 10, 1 << 20);

}  // namespace

BENCHMARK_MAIN();

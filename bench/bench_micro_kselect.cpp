// Micro-benchmark (google-benchmark): Floyd–Rivest k-select against
// std::nth_element and full std::sort — the primitive behind the Eq. 1
// outlier analysis, which must stay linear-time since it runs on every
// Auto allgatherv call.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/kselect.hpp"
#include "core/outlier.hpp"
#include "core/rng.hpp"

namespace {

std::vector<std::uint64_t> make_volumes(std::size_t n) {
    // A realistic communication-volume set: mostly small with a few heavy
    // outliers.
    nncomm::Rng rng(42);
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = rng.uniform_u64(8, 4096);
    for (std::size_t i = 0; i < n; i += 97) v[i] = 32 * 1024 * 1024;
    return v;
}

void BM_FloydRivestKselect(benchmark::State& state) {
    const auto base = make_volumes(static_cast<std::size_t>(state.range(0)));
    std::vector<std::uint64_t> scratch;
    for (auto _ : state) {
        scratch = base;
        benchmark::DoNotOptimize(
            nncomm::kselect(std::span<std::uint64_t>(scratch), scratch.size() * 9 / 10));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FloydRivestKselect)->Range(64, 1 << 20);

void BM_NthElement(benchmark::State& state) {
    const auto base = make_volumes(static_cast<std::size_t>(state.range(0)));
    std::vector<std::uint64_t> scratch;
    for (auto _ : state) {
        scratch = base;
        const auto k = scratch.size() * 9 / 10;
        std::nth_element(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(k),
                         scratch.end());
        benchmark::DoNotOptimize(scratch[k]);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NthElement)->Range(64, 1 << 20);

void BM_FullSort(benchmark::State& state) {
    const auto base = make_volumes(static_cast<std::size_t>(state.range(0)));
    std::vector<std::uint64_t> scratch;
    for (auto _ : state) {
        scratch = base;
        std::sort(scratch.begin(), scratch.end());
        benchmark::DoNotOptimize(scratch[scratch.size() * 9 / 10]);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullSort)->Range(64, 1 << 20);

void BM_OutlierAnalysis(benchmark::State& state) {
    const auto base = make_volumes(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(nncomm::analyze_volumes(base));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OutlierAnalysis)->Range(64, 1 << 16);

}  // namespace

BENCHMARK_MAIN();

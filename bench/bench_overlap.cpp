// Split-phase ghost-exchange overlap benchmark (real runtime, not the
// simulator).
//
// A 2-D structured-grid relaxation sweep on a DMDA, A/B-ing the two ways
// to order one iteration's ghost exchange against its stencil compute:
//
//   blocking — global_to_local (wait for every ghost slab), then sweep all
//              owned points;
//   overlap  — global_to_local_begin (owned region is filled when it
//              returns), sweep the strictly-interior points while the
//              ghost slabs are in flight, global_to_local_end, then sweep
//              the owned-box shell. This is exactly the schedule
//              LaplacianOp::apply and MatAIJ::mult run in production.
//
// One rank is artificially skewed: it sleeps before joining each
// exchange, modeling a late neighbor (load imbalance upstream, a slow
// NIC) whose ghost slabs arrive well after everyone else's. In the
// blocking ordering every neighbor inherits that delay as idle wait time;
// in the overlapped ordering the interior phase absorbs it. Per-iteration
// barriers resync the ranks so the skew cannot pipeline away across
// iterations.
//
// Rank threads here share the host's CPUs (the runtime is threads in one
// process), so a real deployment's property "every rank computes at full
// speed on its own processor" does not hold — N compute-bound sweeps
// contend for cores and their wall time inflates with oversubscription.
// The interior phase therefore runs the real interior sweep and then
// sleeps out the remainder of a fixed kComputeMs window: off-CPU time
// models the rest of a dedicated core's compute without stealing cycles
// from other ranks. Both orderings run the identical compute structure
// (interior + pad, then shell); the only difference is where the exchange
// completes, which is exactly what the benchmark isolates. All delays are
// sleeps, not spins, for the same reason.
//
// The reported metric is the slowest non-skewed rank's median in-iteration
// time (barrier excluded; median because a shared CI host's scheduler can
// produce outlier iterations). A short settle sleep follows each barrier
// so every rank has actually left it before the iteration's work begins.
// The run fails (exit 1, "pass": false) if the blocking/overlap ratio
// drops below 1.3x. Results go to stdout and to BENCH_overlap.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "petsckit/dmda.hpp"

using namespace nncomm;
using pk::DMDA;
using pk::GridBox;
using pk::Index;
using pk::Vec;

namespace {

constexpr int kRanks = 4;
constexpr Index kGrid = 512;  // 512 x 512 doubles, 2x2 process grid
constexpr int kWarmup = 3;
constexpr int kIters = 20;
constexpr int kSlowRank = 0;
constexpr double kComputeMs = 25.0;  // interior phase: real sweep + pad to this
constexpr double kSkewMs = 12.5;     // the late rank's extra delay (0.5x compute)
constexpr double kSettleMs = 1.0;    // post-barrier resync pause
constexpr double kGate = 1.3;

void delay_ms(double target_ms) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(target_ms));
}

double median(std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n == 0 ? 0.0 : (n % 2 != 0 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

struct Sweeper {
    const DMDA* da = nullptr;
    const double* loc = nullptr;  // ghosted array
    double* out = nullptr;        // owned-volume output

    void point(Index i, Index j) const {
        const GridBox& o = da->owned();
        const std::size_t at = static_cast<std::size_t>((j - o.ys) * o.xm + (i - o.xs));
        if (i == 0 || i == kGrid - 1 || j == 0 || j == kGrid - 1) {
            // Domain boundary: identity row (no ghost layer beyond the grid).
            out[at] = loc[da->local_index(i, j, 0)];
            return;
        }
        out[at] = 4.0 * loc[da->local_index(i, j, 0)] - loc[da->local_index(i - 1, j, 0)] -
                  loc[da->local_index(i + 1, j, 0)] - loc[da->local_index(i, j - 1, 0)] -
                  loc[da->local_index(i, j + 1, 0)];
    }
    // Strictly-interior points: the stencil touches only owned data, so
    // this sweep is legal while the ghost slabs are still in flight.
    void interior() const {
        const GridBox& o = da->owned();
        for (Index j = o.ys + 1; j < o.ys + o.ym - 1; ++j) {
            for (Index i = o.xs + 1; i < o.xs + o.xm - 1; ++i) point(i, j);
        }
    }
    // The owned-box shell: reads ghost values, must run after _end.
    void shell() const {
        const GridBox& o = da->owned();
        for (Index i = o.xs; i < o.xs + o.xm; ++i) {
            point(i, o.ys);
            if (o.ym > 1) point(i, o.ys + o.ym - 1);
        }
        for (Index j = o.ys + 1; j < o.ys + o.ym - 1; ++j) {
            point(o.xs, j);
            if (o.xm > 1) point(o.xs + o.xm - 1, j);
        }
    }
    void full() const {
        const GridBox& o = da->owned();
        for (Index j = o.ys; j < o.ys + o.ym; ++j) {
            for (Index i = o.xs; i < o.xs + o.xm; ++i) point(i, j);
        }
    }
};

struct Results {
    double interior_ms = 0.0;
    double skew_ms = 0.0;
    double blocking_ms = 0.0;  // slowest non-skewed rank, mean per iteration
    double overlap_ms = 0.0;
    std::uint64_t progress_calls = 0;
    bool identical = false;
};

}  // namespace

int main() {
    Results res;
    double rank_block[kRanks] = {};
    double rank_ovl[kRanks] = {};

    rt::World world(kRanks);
    world.run([&](rt::Comm& comm) {
        DMDA da(comm, 2, {.m = kGrid, .n = kGrid}, 1, 1, pk::Stencil::Star);
        Vec g = da.create_global();
        for (Index i = 0; i < g.local_size(); ++i) {
            g.data()[i] = 0.5 * static_cast<double>(g.range().begin + i);
        }
        std::vector<double> ghosted = da.create_local();
        std::vector<double> out(static_cast<std::size_t>(da.owned().volume()));
        Sweeper sweep{&da, ghosted.data(), out.data()};

        // Correctness: one blocking and one overlapped iteration must
        // produce identical bytes in both the ghosted array and the output.
        da.global_to_local(g, ghosted);
        sweep.full();
        std::vector<double> ghosted_ref = ghosted;
        std::vector<double> out_ref = out;
        std::fill(ghosted.begin(), ghosted.end(), 0.0);
        std::fill(out.begin(), out.end(), 0.0);
        coll::CollRequest check = da.global_to_local_begin(g, ghosted);
        sweep.interior();
        DMDA::global_to_local_end(check);
        sweep.shell();
        const bool same =
            std::memcmp(ghosted.data(), ghosted_ref.data(),
                        ghosted.size() * sizeof(double)) == 0 &&
            std::memcmp(out.data(), out_ref.data(), out.size() * sizeof(double)) == 0;
        if (comm.rank() == 0) res.identical = same;

        // Report the real sweep cost for context (it is part of, not all
        // of, the kComputeMs interior window).
        benchutil::Stopwatch cal;
        sweep.interior();
        double interior_ms = cal.ms();
        coll::allreduce(comm, &interior_ms, 1, coll::ReduceOp::Max);
        if (comm.rank() == 0) {
            res.interior_ms = interior_ms;
            res.skew_ms = kSkewMs;
        }

        // The interior phase: the real interior sweep, then off-CPU for
        // the remainder of the fixed compute window (see header comment).
        auto interior_phase = [&] {
            benchutil::Stopwatch sw;
            sweep.interior();
            const double left = kComputeMs - sw.ms();
            if (left > 0.0) delay_ms(left);
        };
        auto run_mode = [&](bool overlap, double* per_rank) {
            std::vector<double> samples;
            for (int it = -kWarmup; it < kIters; ++it) {
                comm.barrier();
                benchutil::Stopwatch sw;
                // Settle: let every rank leave the barrier before the
                // iteration's work begins (symmetric across modes).
                delay_ms(kSettleMs);
                if (comm.rank() == kSlowRank) delay_ms(kSkewMs);
                if (overlap) {
                    coll::CollRequest req = da.global_to_local_begin(g, ghosted);
                    interior_phase();
                    DMDA::global_to_local_end(req);
                    sweep.shell();
                } else {
                    da.global_to_local(g, ghosted);
                    interior_phase();
                    sweep.shell();
                }
                if (it >= 0) samples.push_back(sw.ms());
            }
            per_rank[comm.rank()] = median(std::move(samples));
        };
        run_mode(/*overlap=*/false, rank_block);
        run_mode(/*overlap=*/true, rank_ovl);
        comm.barrier();
        if (comm.rank() == 0) res.progress_calls = comm.counters().coll_overlap_progress_calls;
    });

    for (int r = 0; r < kRanks; ++r) {
        if (r == kSlowRank) continue;
        res.blocking_ms = std::max(res.blocking_ms, rank_block[r]);
        res.overlap_ms = std::max(res.overlap_ms, rank_ovl[r]);
    }
    const double speedup = res.overlap_ms > 0.0 ? res.blocking_ms / res.overlap_ms : 0.0;
    const bool pass = res.identical && speedup >= kGate;

    std::printf("== Split-phase ghost exchange: compute/communication overlap ==\n");
    std::printf("%d ranks, %lld x %lld grid, star stencil width 1, %d iterations\n",
                kRanks, static_cast<long long>(kGrid), static_cast<long long>(kGrid), kIters);
    std::printf("rank %d skewed by %.3f ms; compute window %.1f ms/iter "
                "(real interior sweep: %.3f ms)\n\n",
                kSlowRank, res.skew_ms, kComputeMs, res.interior_ms);
    benchutil::Table t({"Ordering", "Slowest non-skewed rank (ms/iter)"});
    t.add_row({"blocking exchange, then full sweep", benchutil::fmt(res.blocking_ms, 3)});
    t.add_row({"begin / interior sweep / end / shell", benchutil::fmt(res.overlap_ms, 3)});
    t.print();
    std::printf("\nresults bit-identical across orderings: %s\n",
                res.identical ? "yes" : "NO");
    std::printf("overlap speedup: %.2fx (require >= %.2fx): %s\n", speedup, kGate,
                pass ? "PASS" : "FAIL");

    FILE* f = std::fopen("BENCH_overlap.json", "w");
    if (f) {
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"overlap\",\n");
        std::fprintf(f, "  \"ranks\": %d,\n", kRanks);
        std::fprintf(f, "  \"grid\": %lld,\n", static_cast<long long>(kGrid));
        std::fprintf(f, "  \"iterations\": %d,\n", kIters);
        std::fprintf(f, "  \"slow_rank\": %d,\n", kSlowRank);
        std::fprintf(f, "  \"skew_ms\": %.6f,\n", res.skew_ms);
        std::fprintf(f, "  \"compute_ms\": %.6f,\n", kComputeMs);
        std::fprintf(f, "  \"interior_sweep_ms\": %.6f,\n", res.interior_ms);
        std::fprintf(f, "  \"blocking_ms_per_iter\": %.6f,\n", res.blocking_ms);
        std::fprintf(f, "  \"overlap_ms_per_iter\": %.6f,\n", res.overlap_ms);
        std::fprintf(f, "  \"speedup\": %.4f,\n", speedup);
        std::fprintf(f, "  \"bit_identical\": %s,\n", res.identical ? "true" : "false");
        std::fprintf(f, "  \"pass\": %s\n", pass ? "true" : "false");
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("\nwrote BENCH_overlap.json\n");
    }
    return pass ? 0 : 1;
}

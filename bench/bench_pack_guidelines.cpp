// Datatype performance-guidelines gate (Träff et al.): the compiled
// datatype path must never lose to the loop a user would hand-write
// around memcpy for the same layout.
//
// Every kernel family the plans compile to is measured against its
// strongest manual counterpart:
//
//   contiguous       — one memcpy,
//   strided L=4..64  — a loop of compile-time-constant-length memcpys
//                      (the template is instantiated per L, so the
//                      baseline really is inlined moves, not libc calls),
//   strided general  — a runtime-length memcpy loop (L = 20, 100),
//   strided + tail   — constant-length loop with a shorter last block,
//   blocked-strided  — the paper's transpose shape, a triple nested loop,
//   irregular        — a loop over a precomputed (offset, length) table.
//
// Each family times pack and unpack separately (min over repetitions of
// a multi-iteration inner loop) and FAILS — exit 1, "pass": false — if
// the plan path is slower than manual by more than the noise tolerance.
// A dispatch attestation pass runs each family once with counters and
// verifies the expected kernel class actually fired (and, at vector
// levels, that bytes moved through vector registers).
//
// Results go to stdout and BENCH_pack_simd.json. `--smoke` shrinks the
// buffers and repetitions for CI.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <functional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/counters.hpp"
#include "datatype/datatype.hpp"
#include "datatype/plan.hpp"
#include "datatype/simd.hpp"

using namespace nncomm;
using dt::Datatype;
using dt::PackKernel;
using dt::PackPlan;

namespace {

bool g_smoke = false;

// Manual strided pack/unpack with a compile-time block length: the
// strongest loop a user targeting this exact layout would write.
template <std::size_t L>
void manual_strided_pack(std::byte* out, const std::byte* base, std::ptrdiff_t stride,
                         std::size_t nblocks) {
    for (std::size_t b = 0; b < nblocks; ++b) {
        std::memcpy(out + b * L, base + static_cast<std::ptrdiff_t>(b) * stride, L);
    }
}

template <std::size_t L>
void manual_strided_unpack(std::byte* base, const std::byte* in, std::ptrdiff_t stride,
                           std::size_t nblocks) {
    for (std::size_t b = 0; b < nblocks; ++b) {
        std::memcpy(base + static_cast<std::ptrdiff_t>(b) * stride, in + b * L, L);
    }
}

void manual_strided_pack_rt(std::byte* out, const std::byte* base, std::ptrdiff_t stride,
                            std::size_t len, std::size_t nblocks) {
    for (std::size_t b = 0; b < nblocks; ++b) {
        std::memcpy(out + b * len, base + static_cast<std::ptrdiff_t>(b) * stride, len);
    }
}

void manual_strided_unpack_rt(std::byte* base, const std::byte* in, std::ptrdiff_t stride,
                              std::size_t len, std::size_t nblocks) {
    for (std::size_t b = 0; b < nblocks; ++b) {
        std::memcpy(base + static_cast<std::ptrdiff_t>(b) * stride, in + b * len, len);
    }
}

/// One benchmark case: a datatype, its expected kernel class, and the
/// manual pack/unpack loops it races against.
struct Family {
    std::string name;
    Datatype type;
    std::size_t count = 1;
    PackKernel expect = PackKernel::Irregular;
    std::function<void(std::byte*, const std::byte*)> manual_pack;
    std::function<void(std::byte*, const std::byte*)> manual_unpack;
};

struct Result {
    std::string name;
    const char* kernel = "?";
    bool vectorized = false;
    double manual_pack_ms = 0.0, plan_pack_ms = 0.0;
    double manual_unpack_ms = 0.0, plan_unpack_ms = 0.0;
    double pack_ratio = 0.0, unpack_ratio = 0.0;  ///< plan / manual; <= 1 is a win
    bool pass = false;
};

// Plan-vs-manual must hold up to timing noise. Each rep times manual
// then plan back to back and forms a per-pair ratio; the gate uses the
// MINIMUM pair ratio. Adjacent-in-time pairs see the same machine load,
// so steady background noise cancels inside the pair, and one clean pair
// out of all reps is enough to measure the true ratio — far more robust
// on a shared machine than comparing two independently-taken minima.
constexpr double kTolerance = 1.10;

struct Paired {
    double a_ms = 1e300;   ///< min over reps (reporting)
    double b_ms = 1e300;   ///< min over reps (reporting)
    double ratio = 1e300;  ///< min over reps of the per-pair b/a (the gate)
};

Paired time_paired_min_ms(int reps, int iters, const std::function<void()>& a,
                          const std::function<void()>& b) {
    Paired out;
    for (int r = 0; r < reps; ++r) {
        double a_ms, b_ms;
        {
            benchutil::Stopwatch sw;
            for (int i = 0; i < iters; ++i) a();
            a_ms = sw.ms() / iters;
        }
        {
            benchutil::Stopwatch sw;
            for (int i = 0; i < iters; ++i) b();
            b_ms = sw.ms() / iters;
        }
        out.a_ms = std::min(out.a_ms, a_ms);
        out.b_ms = std::min(out.b_ms, b_ms);
        if (a_ms > 0.0) out.ratio = std::min(out.ratio, b_ms / a_ms);
    }
    return out;
}

Result run_family(const Family& f) {
    const auto& flat = f.type.flat();
    const PackPlan plan = PackPlan::compile(flat);

    Result res;
    res.name = f.name;
    res.kernel = dt::pack_kernel_name(plan.kernel());
    res.vectorized = plan.vectorized();
    if (plan.kernel() != f.expect) {
        std::printf("  %-22s classified %s, expected %s — FAIL\n", f.name.c_str(),
                    res.kernel, dt::pack_kernel_name(f.expect));
        return res;
    }

    const std::size_t packed = flat.size() * f.count;
    const std::size_t span = static_cast<std::size_t>(
        flat.extent() * static_cast<std::ptrdiff_t>(f.count - 1) + flat.data_ub());
    std::vector<std::byte> user(span + 64);
    for (std::size_t i = 0; i < user.size(); ++i) {
        user[i] = static_cast<std::byte>(i * 131 + 7);
    }
    std::vector<std::byte> stream(packed);

    // Attestation: one counted call per direction proves the expected
    // kernel dispatched (and the vector path ran when one was selected).
    StatCounters stats;
    plan.pack(flat, user.data(), f.count, stream, &stats);
    plan.unpack(flat, user.data(), f.count, stream, &stats);
    const auto idx = static_cast<std::size_t>(plan.kernel());
    if (stats.dt_kernel_dispatch[idx] != 2) {
        std::printf("  %-22s dispatch counter %llu != 2 — FAIL\n", f.name.c_str(),
                    static_cast<unsigned long long>(stats.dt_kernel_dispatch[idx]));
        return res;
    }
    if (plan.vectorized() && stats.dt_simd_pack_bytes == 0) {
        std::printf("  %-22s vector kernel selected but no SIMD bytes — FAIL\n",
                    f.name.c_str());
        return res;
    }

    // Correctness cross-check before timing: manual and plan must agree.
    std::vector<std::byte> manual_stream(packed);
    f.manual_pack(manual_stream.data(), user.data());
    if (std::memcmp(manual_stream.data(), stream.data(), packed) != 0) {
        std::printf("  %-22s manual/plan pack mismatch — FAIL\n", f.name.c_str());
        return res;
    }

    // Short reps, many of them: min-of-reps needs preemption-free windows
    // on a shared machine, and short windows are far more likely to be
    // clean. ~2 MB per rep keeps per-call overhead amortized.
    const std::size_t target = g_smoke ? (1u << 19) : (2u << 20);
    const int iters = static_cast<int>(std::max<std::size_t>(1, target / packed));
    const int reps = g_smoke ? 9 : 31;

    const Paired p = time_paired_min_ms(
        reps, iters, [&] { f.manual_pack(stream.data(), user.data()); },
        [&] { plan.pack(flat, user.data(), f.count, stream); });
    res.manual_pack_ms = p.a_ms;
    res.plan_pack_ms = p.b_ms;
    res.pack_ratio = p.ratio;
    const Paired u = time_paired_min_ms(
        reps, iters, [&] { f.manual_unpack(user.data(), stream.data()); },
        [&] { plan.unpack(flat, user.data(), f.count, stream); });
    res.manual_unpack_ms = u.a_ms;
    res.plan_unpack_ms = u.b_ms;
    res.unpack_ratio = u.ratio;

    res.pass = res.pack_ratio <= kTolerance && res.unpack_ratio <= kTolerance;
    return res;
}

Family strided_family(std::size_t L, std::size_t gap, std::size_t nblocks) {
    Family f;
    f.name = "strided-" + std::to_string(L);
    const auto stride = static_cast<std::ptrdiff_t>(L + gap);
    f.type = Datatype::vector(nblocks, L, stride, Datatype::byte());
    f.expect = PackKernel::Strided;
    auto fixed = [&](auto pack_fn, auto unpack_fn) {
        f.manual_pack = [=](std::byte* out, const std::byte* base) {
            pack_fn(out, base, stride, nblocks);
        };
        f.manual_unpack = [=](std::byte* base, const std::byte* in) {
            unpack_fn(base, in, stride, nblocks);
        };
    };
    switch (L) {
        case 4: fixed(manual_strided_pack<4>, manual_strided_unpack<4>); break;
        case 8: fixed(manual_strided_pack<8>, manual_strided_unpack<8>); break;
        case 12: fixed(manual_strided_pack<12>, manual_strided_unpack<12>); break;
        case 16: fixed(manual_strided_pack<16>, manual_strided_unpack<16>); break;
        case 24: fixed(manual_strided_pack<24>, manual_strided_unpack<24>); break;
        case 32: fixed(manual_strided_pack<32>, manual_strided_unpack<32>); break;
        case 48: fixed(manual_strided_pack<48>, manual_strided_unpack<48>); break;
        case 64: fixed(manual_strided_pack<64>, manual_strided_unpack<64>); break;
        default:
            f.manual_pack = [=](std::byte* out, const std::byte* base) {
                manual_strided_pack_rt(out, base, stride, L, nblocks);
            };
            f.manual_unpack = [=](std::byte* base, const std::byte* in) {
                manual_strided_unpack_rt(base, in, stride, L, nblocks);
            };
            break;
    }
    return f;
}

std::vector<Family> make_families() {
    std::vector<Family> fams;
    const std::size_t blocks = g_smoke ? 4096 : 16384;

    {
        Family f;
        f.name = "contiguous";
        const std::size_t n = blocks * 8;
        f.type = Datatype::contiguous(n, Datatype::byte());
        f.expect = PackKernel::Contiguous;
        f.manual_pack = [=](std::byte* out, const std::byte* base) {
            std::memcpy(out, base, n);
        };
        f.manual_unpack = [=](std::byte* base, const std::byte* in) {
            std::memcpy(base, in, n);
        };
        fams.push_back(std::move(f));
    }

    for (std::size_t L : {std::size_t{4}, std::size_t{8}, std::size_t{12}, std::size_t{16},
                          std::size_t{24}, std::size_t{32}, std::size_t{48},
                          std::size_t{64}, std::size_t{20}, std::size_t{100}}) {
        fams.push_back(strided_family(L, /*gap=*/L, blocks));
    }

    {
        // Uniform prefix with a shorter trailing block (odd-count vector).
        Family f;
        f.name = "strided-tail";
        const std::size_t B = blocks, L = 16, tail = 8;
        const std::ptrdiff_t stride = 40;
        std::vector<std::size_t> lens(B, L);
        lens.back() = tail;
        std::vector<std::ptrdiff_t> displs(B);
        for (std::size_t k = 0; k < B; ++k) {
            displs[k] = static_cast<std::ptrdiff_t>(k) * stride;
        }
        f.type = Datatype::hindexed(lens, displs, Datatype::byte());
        f.expect = PackKernel::Strided;
        f.manual_pack = [=](std::byte* out, const std::byte* base) {
            manual_strided_pack<L>(out, base, stride, B - 1);
            std::memcpy(out + (B - 1) * L, base + static_cast<std::ptrdiff_t>(B - 1) * stride,
                        tail);
        };
        f.manual_unpack = [=](std::byte* base, const std::byte* in) {
            manual_strided_unpack<L>(base, in, stride, B - 1);
            std::memcpy(base + static_cast<std::ptrdiff_t>(B - 1) * stride, in + (B - 1) * L,
                        tail);
        };
        fams.push_back(std::move(f));
    }

    {
        // The paper's transpose shape (Figures 4-6): n x n matrix of
        // 24-byte elements walked column-major. Manual = triple loop.
        Family f;
        const std::size_t n = g_smoke ? 64 : 128;
        f.name = "blocked-strided";
        f.type = benchutil::transpose_type(n);
        f.expect = PackKernel::BlockedStrided;
        constexpr std::size_t kElem = 24;
        f.manual_pack = [=](std::byte* out, const std::byte* base) {
            std::size_t o = 0;
            for (std::size_t c = 0; c < n; ++c) {
                for (std::size_t r = 0; r < n; ++r) {
                    std::memcpy(out + o, base + (r * n + c) * kElem, kElem);
                    o += kElem;
                }
            }
        };
        f.manual_unpack = [=](std::byte* base, const std::byte* in) {
            std::size_t o = 0;
            for (std::size_t c = 0; c < n; ++c) {
                for (std::size_t r = 0; r < n; ++r) {
                    std::memcpy(base + (r * n + c) * kElem, in + o, kElem);
                    o += kElem;
                }
            }
        };
        fams.push_back(std::move(f));
    }

    {
        // Aperiodic block table (VecScatter-style); the manual loop gets
        // the same precomputed table the plan walks.
        Family f;
        f.name = "irregular";
        const std::size_t B = blocks;
        auto lens = std::make_shared<std::vector<std::size_t>>(B);
        auto displs = std::make_shared<std::vector<std::ptrdiff_t>>(B);
        std::ptrdiff_t off = 0;
        for (std::size_t k = 0; k < B; ++k) {
            const auto h = static_cast<std::uint64_t>(k) * 2654435761ULL;
            (*lens)[k] = 8 + (h >> 7) % 57;  // 8..64 bytes, aperiodic
            (*displs)[k] = off;
            off += static_cast<std::ptrdiff_t>((*lens)[k] + 1 + (h >> 17) % 25);
        }
        f.type = Datatype::hindexed(*lens, *displs, Datatype::byte());
        f.expect = PackKernel::Irregular;
        f.manual_pack = [=](std::byte* out, const std::byte* base) {
            std::size_t o = 0;
            for (std::size_t k = 0; k < B; ++k) {
                std::memcpy(out + o, base + (*displs)[k], (*lens)[k]);
                o += (*lens)[k];
            }
        };
        f.manual_unpack = [=](std::byte* base, const std::byte* in) {
            std::size_t o = 0;
            for (std::size_t k = 0; k < B; ++k) {
                std::memcpy(base + (*displs)[k], in + o, (*lens)[k]);
                o += (*lens)[k];
            }
        };
        fams.push_back(std::move(f));
    }

    return fams;
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke") g_smoke = true;
    }

    const dt::simd::Level level = dt::simd::active_level();
    std::printf("== Datatype performance-guidelines gate ==\n");
    std::printf("SIMD level: %s (detected %s)%s\n\n", dt::simd::level_name(level),
                dt::simd::level_name(dt::simd::detected_level()),
                g_smoke ? "  [smoke]" : "");

    std::vector<Result> results;
    bool all_pass = true;
    for (const auto& fam : make_families()) {
        Result r = run_family(fam);
        all_pass = all_pass && r.pass;
        results.push_back(std::move(r));
    }

    benchutil::Table t({"Family", "Kernel", "SIMD", "Manual pack (ms)", "Plan pack (ms)",
                        "Ratio", "Manual unpack", "Plan unpack", "Ratio", "Gate"});
    for (const auto& r : results) {
        t.add_row({r.name, r.kernel, r.vectorized ? "yes" : "no",
                   benchutil::fmt(r.manual_pack_ms, 4), benchutil::fmt(r.plan_pack_ms, 4),
                   benchutil::fmt(r.pack_ratio, 3), benchutil::fmt(r.manual_unpack_ms, 4),
                   benchutil::fmt(r.plan_unpack_ms, 4), benchutil::fmt(r.unpack_ratio, 3),
                   r.pass ? "PASS" : "FAIL"});
    }
    t.print();
    std::printf("\nguideline (plan <= %.2fx manual, both directions): %s\n", kTolerance,
                all_pass ? "PASS" : "FAIL");

    FILE* f = std::fopen("BENCH_pack_simd.json", "w");
    if (f) {
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"pack_guidelines\",\n");
        std::fprintf(f, "  \"simd_level\": \"%s\",\n", dt::simd::level_name(level));
        std::fprintf(f, "  \"smoke\": %s,\n", g_smoke ? "true" : "false");
        std::fprintf(f, "  \"tolerance\": %.2f,\n", kTolerance);
        std::fprintf(f, "  \"families\": {\n");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto& r = results[i];
            std::fprintf(f,
                         "    \"%s\": { \"kernel\": \"%s\", \"vectorized\": %s, "
                         "\"manual_pack_ms\": %.6f, \"plan_pack_ms\": %.6f, "
                         "\"pack_ratio\": %.4f, \"manual_unpack_ms\": %.6f, "
                         "\"plan_unpack_ms\": %.6f, \"unpack_ratio\": %.4f, "
                         "\"pass\": %s }%s\n",
                         r.name.c_str(), r.kernel, r.vectorized ? "true" : "false",
                         r.manual_pack_ms, r.plan_pack_ms, r.pack_ratio, r.manual_unpack_ms,
                         r.plan_unpack_ms, r.unpack_ratio, r.pass ? "true" : "false",
                         i + 1 == results.size() ? "" : ",");
        }
        std::fprintf(f, "  },\n");
        std::fprintf(f, "  \"pass\": %s\n", all_pass ? "true" : "false");
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("wrote BENCH_pack_simd.json\n");
    }
    return all_pass ? 0 : 1;
}

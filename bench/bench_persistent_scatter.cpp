// Persistent-plan scatter benchmark (real runtime, not the simulator).
//
// The Figure-16 workload shape — each rank scatters its stride-2 doubles
// to exactly one peer — executed repeatedly through each VecScatter
// backend, separating the FIRST execute (which compiles pack plans, sizes
// persistent buffers and builds any engines) from the AMORTIZED
// steady-state execute the solver loop actually pays for.
//
// For the DatatypeOptimized backend the same loop is also run with
// persistence off and the plan fast-path disabled: that is the path every
// call took before pack plans existed (per-call engine construction,
// scratch allocation and cursor-driven packing), so the ratio against the
// persistent steady state is the benefit of this subsystem. The run fails
// (exit 1, "pass": false) if that ratio drops below 1.5x.
//
// Results go to stdout as a table and to BENCH_persistent.json.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "petsckit/scatter.hpp"

using namespace nncomm;
using pk::Index;
using pk::IndexSet;
using pk::ScatterBackend;
using pk::Vec;
using pk::VecScatter;

namespace {

constexpr int kRanks = 4;
constexpr Index kElems = 65536;  // doubles scattered per process
constexpr int kIters = 30;       // steady-state averaging window

struct Series {
    double first_ms = 0.0;
    double steady_ms = 0.0;
};

struct Results {
    Series backend[3];
    double nonpersistent_ms = 0.0;  // optimized backend, pre-plan path
    std::uint64_t plan_hits = 0;
    std::uint64_t engine_builds = 0;
    std::uint64_t scratch_allocs = 0;
    std::uint64_t steady_payload_allocs = 0;  // must be 0: pool fully recycles
    std::uint64_t zero_copy_msgs = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t bytes_copied = 0;  // once per zero-copy message, twice per buffered
};

}  // namespace

int main() {
    Results res;

    rt::World world(kRanks);
    world.run([&](rt::Comm& comm) {
        Vec src(comm, 2 * kElems * kRanks);
        Vec dst(comm, kElems * kRanks);
        for (Index i = 0; i < src.local_size(); ++i) {
            src.data()[i] = static_cast<double>(src.range().begin + i);
        }
        std::vector<Index> from, to;
        for (int r = 0; r < kRanks; ++r) {
            for (Index j = 0; j < kElems; ++j) {
                from.push_back(r * 2 * kElems + 2 * j);
                to.push_back(((r + 1) % kRanks) * kElems + j);
            }
        }
        const IndexSet is_from = IndexSet::general(from);
        const IndexSet is_to = IndexSet::general(to);

        const ScatterBackend backends[3] = {ScatterBackend::HandTuned,
                                            ScatterBackend::DatatypeBaseline,
                                            ScatterBackend::DatatypeOptimized};
        for (int b = 0; b < 3; ++b) {
            // Fresh scatter per backend so the first execute really is the
            // plan-building one.
            VecScatter sc(src, is_from, dst, is_to);
            comm.reset_stats();
            comm.barrier();

            benchutil::Stopwatch first;
            sc.execute(src, dst, backends[b]);
            comm.barrier();
            const double first_ms = first.ms();

            // The first execute warms the payload pool; after that every
            // buffered envelope must recycle a pooled buffer.
            const std::uint64_t allocs_before_steady = comm.counters().rt_payload_allocs;
            benchutil::Stopwatch steady;
            for (int it = 0; it < kIters; ++it) sc.execute(src, dst, backends[b]);
            const std::uint64_t steady_allocs =
                comm.counters().rt_payload_allocs - allocs_before_steady;
            comm.barrier();
            const double steady_ms = steady.ms() / kIters;

            if (comm.rank() == 0) {
                res.backend[b] = Series{first_ms, steady_ms};
                if (backends[b] == ScatterBackend::DatatypeOptimized) {
                    const auto& c = comm.counters();
                    res.plan_hits = c.plan_hits;
                    res.engine_builds = c.engine_builds;
                    res.scratch_allocs = c.scratch_allocs;
                    res.steady_payload_allocs = steady_allocs;
                    res.zero_copy_msgs = c.rt_zero_copy_msgs;
                    res.pool_hits = c.rt_pool_hits;
                    res.bytes_copied = c.rt_bytes_copied;
                }
            }
        }

        // The pre-plan path: one-shot alltoallw every call, cursor packing.
        {
            VecScatter sc(src, is_from, dst, is_to);
            sc.set_persistent(false);
            dt::EngineConfig cfg = comm.engine_config();
            cfg.enable_plan_fastpath = false;
            comm.set_engine_config(cfg);
            sc.execute(src, dst, ScatterBackend::DatatypeOptimized);  // warm-up
            comm.barrier();
            benchutil::Stopwatch sw;
            for (int it = 0; it < kIters; ++it) {
                sc.execute(src, dst, ScatterBackend::DatatypeOptimized);
            }
            comm.barrier();
            if (comm.rank() == 0) res.nonpersistent_ms = sw.ms() / kIters;
            cfg.enable_plan_fastpath = true;
            comm.set_engine_config(cfg);
        }

        // Sanity: the data actually moved.
        const int prev = (comm.rank() + kRanks - 1) % kRanks;
        for (Index j = 0; j < kElems; ++j) {
            const double expect = static_cast<double>(prev * 2 * kElems + 2 * j);
            if (dst.data()[j] != expect) {
                std::fprintf(stderr, "rank %d: wrong data at %lld\n", comm.rank(),
                             static_cast<long long>(j));
                std::abort();
            }
        }
    });

    const double speedup =
        res.backend[2].steady_ms > 0.0 ? res.nonpersistent_ms / res.backend[2].steady_ms : 0.0;
    const bool pass = speedup >= 1.5 && res.steady_payload_allocs == 0;

    std::printf("== Persistent VecScatter: first call vs amortized steady state ==\n");
    std::printf("%d ranks, %lld stride-2 doubles per process, %d steady iterations\n\n",
                kRanks, static_cast<long long>(kElems), kIters);
    benchutil::Table t({"Backend", "First (ms)", "Steady (ms)", "First/Steady"});
    const char* names[3] = {"hand-tuned", "datatype-baseline", "datatype-optimized"};
    for (int b = 0; b < 3; ++b) {
        t.add_row({names[b], benchutil::fmt(res.backend[b].first_ms, 3),
                   benchutil::fmt(res.backend[b].steady_ms, 3),
                   benchutil::fmt(res.backend[b].first_ms /
                                      (res.backend[b].steady_ms > 0.0
                                           ? res.backend[b].steady_ms
                                           : 1.0),
                                  2)});
    }
    t.print();
    std::printf("\nnon-persistent optimized path (per-call engines, cursor packing): %s ms\n",
                benchutil::fmt(res.nonpersistent_ms, 3).c_str());
    std::printf("persistent steady-state speedup over it: %.2fx (require >= 1.50x): %s\n",
                speedup, pass ? "PASS" : "FAIL");
    std::printf("optimized-backend counters: plan_hits=%llu engine_builds=%llu "
                "scratch_allocs=%llu\n",
                static_cast<unsigned long long>(res.plan_hits),
                static_cast<unsigned long long>(res.engine_builds),
                static_cast<unsigned long long>(res.scratch_allocs));
    std::printf("runtime counters: steady payload_allocs=%llu (require 0) "
                "zero_copy_msgs=%llu pool_hits=%llu bytes_copied=%llu\n",
                static_cast<unsigned long long>(res.steady_payload_allocs),
                static_cast<unsigned long long>(res.zero_copy_msgs),
                static_cast<unsigned long long>(res.pool_hits),
                static_cast<unsigned long long>(res.bytes_copied));

    FILE* f = std::fopen("BENCH_persistent.json", "w");
    if (f) {
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"persistent_scatter\",\n");
        std::fprintf(f, "  \"ranks\": %d,\n", kRanks);
        std::fprintf(f, "  \"elements_per_peer\": %lld,\n", static_cast<long long>(kElems));
        std::fprintf(f, "  \"steady_iterations\": %d,\n", kIters);
        std::fprintf(f, "  \"backends\": {\n");
        for (int b = 0; b < 3; ++b) {
            std::fprintf(f, "    \"%s\": { \"first_ms\": %.6f, \"steady_ms\": %.6f }%s\n",
                         names[b], res.backend[b].first_ms, res.backend[b].steady_ms,
                         b + 1 < 3 ? "," : "");
        }
        std::fprintf(f, "  },\n");
        std::fprintf(f, "  \"nonpersistent_optimized_ms\": %.6f,\n", res.nonpersistent_ms);
        std::fprintf(f, "  \"steady_speedup_vs_nonpersistent\": %.4f,\n", speedup);
        std::fprintf(f, "  \"optimized_counters\": { \"plan_hits\": %llu, "
                        "\"engine_builds\": %llu, \"scratch_allocs\": %llu, "
                        "\"steady_payload_allocs\": %llu, \"zero_copy_msgs\": %llu, "
                        "\"pool_hits\": %llu, \"bytes_copied\": %llu },\n",
                     static_cast<unsigned long long>(res.plan_hits),
                     static_cast<unsigned long long>(res.engine_builds),
                     static_cast<unsigned long long>(res.scratch_allocs),
                     static_cast<unsigned long long>(res.steady_payload_allocs),
                     static_cast<unsigned long long>(res.zero_copy_msgs),
                     static_cast<unsigned long long>(res.pool_hits),
                     static_cast<unsigned long long>(res.bytes_copied));
        std::fprintf(f, "  \"pass\": %s\n", pass ? "true" : "false");
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("\nwrote BENCH_persistent.json\n");
    }
    return pass ? 0 : 1;
}

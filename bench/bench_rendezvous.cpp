// Rendezvous protocol benchmark (real runtime, not the simulator).
//
// A two-rank pingpong where both sides pre-post their receives and release
// each other with a small token before the payload send fires — the
// deterministic posted-receive pattern the zero-copy rendezvous path is
// built for. The same loop runs twice: once with the rendezvous threshold
// forced above every message (the buffered-eager double-copy path through
// the payload pool) and once with the default threshold (single copy
// straight into the posted receive buffer).
//
// A contiguous payload and a stride-2 noncontiguous payload are measured
// separately: the contiguous case drops a memcpy, the strided case drops
// the intermediate staging buffer (gather and scatter still both run).
// The run fails (exit 1, "pass": false) if the contiguous steady-state
// speedup drops below 1.5x.
//
// Results go to stdout as a table and to BENCH_rendezvous.json.
#include <cstdio>
#include <limits>
#include <vector>

#include "bench/common.hpp"
#include "runtime/comm.hpp"

using namespace nncomm;
using dt::Datatype;
using rt::Comm;
using rt::Request;
using rt::World;

namespace {

constexpr std::size_t kDoubles = 512 * 1024;  // 4 MiB payload
constexpr int kWarmup = 5;
constexpr int kIters = 50;
constexpr int kDataTag = 7;
constexpr int kTokenTag = 8;

constexpr std::size_t kEagerAlways = std::numeric_limits<std::size_t>::max();

struct Run {
    double steady_ms = 0.0;          ///< per-iteration (one exchange each way)
    std::uint64_t zero_copy = 0;     ///< rank 0's rt_zero_copy_msgs
    std::uint64_t bytes_copied = 0;  ///< rank 0's rt_bytes_copied
    std::uint64_t payload_allocs = 0;
    std::uint64_t pool_hits = 0;
};

/// Symmetric posted pingpong: both ranks post their receive, trade a token
/// (so each knows the peer's receive is up), then send the payload. The
/// token round trip is identical under both protocols, so it cancels out
/// of the comparison.
Run pingpong(std::size_t threshold, const Datatype& type, std::size_t count) {
    Run out;
    World w(2);
    w.run([&](Comm& c) {
        c.set_rendezvous_threshold(threshold);
        const int peer = 1 - c.rank();
        // Extent covers the strided layout; values only land on the stride.
        std::vector<double> sendbuf(type.extent() / sizeof(double) * count, 1.0);
        std::vector<double> recvbuf(sendbuf.size(), 0.0);

        auto exchange = [&] {
            Request r = c.irecv(recvbuf.data(), count, type, peer, kDataTag);
            int token = 1;
            c.send_n(&token, 1, peer, kTokenTag);
            c.recv_n(&token, 1, peer, kTokenTag);  // peer's receive is posted
            c.send(sendbuf.data(), count, type, peer, kDataTag);
            c.wait(r);
        };

        for (int it = 0; it < kWarmup; ++it) exchange();  // fill pool, warm caches
        c.barrier();
        c.reset_stats();
        benchutil::Stopwatch sw;
        for (int it = 0; it < kIters; ++it) exchange();
        const double ms = sw.ms() / kIters;
        c.barrier();
        if (c.rank() == 0) {
            const auto& s = c.counters();
            out.steady_ms = ms;
            out.zero_copy = s.rt_zero_copy_msgs;
            out.bytes_copied = s.rt_bytes_copied;
            out.payload_allocs = s.rt_payload_allocs;
            out.pool_hits = s.rt_pool_hits;
        }
    });
    return out;
}

}  // namespace

int main() {
    const Datatype contig = Datatype::float64();
    const Datatype strided = Datatype::vector(kDoubles, 1, 2, Datatype::float64());
    const std::size_t bytes = kDoubles * sizeof(double);

    const Run eager_c = pingpong(kEagerAlways, contig, kDoubles);
    const Run rdv_c = pingpong(rt::kDefaultRendezvousThreshold, contig, kDoubles);
    const Run eager_s = pingpong(kEagerAlways, strided, 1);
    const Run rdv_s = pingpong(rt::kDefaultRendezvousThreshold, strided, 1);

    const double speedup_c = rdv_c.steady_ms > 0.0 ? eager_c.steady_ms / rdv_c.steady_ms : 0.0;
    const double speedup_s = rdv_s.steady_ms > 0.0 ? eager_s.steady_ms / rdv_s.steady_ms : 0.0;
    const bool pass = speedup_c >= 1.5;

    std::printf("== Rendezvous vs buffered eager: pre-posted 4 MiB pingpong ==\n");
    std::printf("2 ranks, %d steady iterations after %d warmup\n\n", kIters, kWarmup);
    benchutil::Table t({"Layout", "Protocol", "Per-iter (ms)", "MB/s per direction",
                        "zero-copy msgs", "bytes copied"});
    auto mbps = [&](double ms) {
        return ms > 0.0 ? static_cast<double>(bytes) / (ms * 1e3) : 0.0;  // MB/s
    };
    auto row = [&](const char* layout, const char* proto, const Run& r) {
        t.add_row({layout, proto, benchutil::fmt(r.steady_ms, 3),
                   benchutil::fmt(mbps(r.steady_ms), 0), std::to_string(r.zero_copy),
                   std::to_string(r.bytes_copied)});
    };
    row("contiguous", "buffered eager", eager_c);
    row("contiguous", "rendezvous", rdv_c);
    row("stride-2", "buffered eager", eager_s);
    row("stride-2", "rendezvous", rdv_s);
    t.print();

    std::printf("\ncontiguous speedup: %.2fx (require >= 1.50x): %s\n", speedup_c,
                pass ? "PASS" : "FAIL");
    std::printf("strided speedup:    %.2fx\n", speedup_s);
    std::printf("buffered-eager pool in steady state: payload_allocs=%llu pool_hits=%llu\n",
                static_cast<unsigned long long>(eager_c.payload_allocs),
                static_cast<unsigned long long>(eager_c.pool_hits));

    FILE* f = std::fopen("BENCH_rendezvous.json", "w");
    if (f) {
        auto emit = [&](const char* name, const Run& r, bool last) {
            std::fprintf(f,
                         "    \"%s\": { \"per_iter_ms\": %.6f, \"zero_copy_msgs\": %llu, "
                         "\"bytes_copied\": %llu, \"payload_allocs\": %llu, "
                         "\"pool_hits\": %llu }%s\n",
                         name, r.steady_ms, static_cast<unsigned long long>(r.zero_copy),
                         static_cast<unsigned long long>(r.bytes_copied),
                         static_cast<unsigned long long>(r.payload_allocs),
                         static_cast<unsigned long long>(r.pool_hits), last ? "" : ",");
        };
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"rendezvous\",\n");
        std::fprintf(f, "  \"payload_bytes\": %llu,\n",
                     static_cast<unsigned long long>(bytes));
        std::fprintf(f, "  \"steady_iterations\": %d,\n", kIters);
        std::fprintf(f, "  \"runs\": {\n");
        emit("contiguous_eager", eager_c, false);
        emit("contiguous_rendezvous", rdv_c, false);
        emit("strided_eager", eager_s, false);
        emit("strided_rendezvous", rdv_s, true);
        std::fprintf(f, "  },\n");
        std::fprintf(f, "  \"contiguous_speedup\": %.4f,\n", speedup_c);
        std::fprintf(f, "  \"strided_speedup\": %.4f,\n", speedup_s);
        std::fprintf(f, "  \"pass\": %s\n", pass ? "true" : "false");
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("\nwrote BENCH_rendezvous.json\n");
    }
    return pass ? 0 : 1;
}

// One-sided RMA persistent plans vs the two-sided alltoallw schedules.
//
// The put-based plan (coll/persistent.cpp RMA branch) exchanges window
// offsets once at setup; every steady-state round is then fence, fused
// pack+puts, fence, unpacks — no envelopes, no matching, no CTS. This
// bench quantifies that on the paper's nonuniform shapes and attests the
// structural claim with runtime counters.
//
// Measurements:
//   1. Netsim, quiet uniform cluster with memory copies and the rendezvous
//      handshake priced: per-iteration latency of the RMA schedule vs the
//      best two-sided schedule (binned / round-robin) on
//        - the Fig. 15 ring-neighbor shape (2 real neighbors, zeros
//          elsewhere) across system sizes,
//        - a Fig. 16-like irregular ghost pattern (rank-dependent volumes,
//          near and far neighbors),
//        - a uniform all-to-all sweep (reported, not gated: with every
//          edge equal the two-sided schedules have no zero-size or
//          nonuniformity penalty to pay, so parity is the expectation).
//   2. Real threaded runtime: steady-state executes of an RMA-forced
//      persistent plan, counter-attested — zero lane deliveries, zero
//      zero-copy matches, puts and two fences per execute — plus measured
//      per-execute time against the two-sided persistent plan.
//
// Gate ("pass" in BENCH_rma.json, exit code otherwise): the RMA schedule
// beats the best two-sided schedule at every gated size on both nonuniform
// shapes, and the steady-state counter attestation holds (when the
// NNCOMM_RMA gate is open; gated off, the attestation is skipped).
//
// `--smoke` runs the simulated gates at one size plus the attestation,
// writes no JSON.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "coll/persistent.hpp"
#include "netsim/programs.hpp"
#include "runtime/comm.hpp"
#include "runtime/protocol.hpp"

using namespace nncomm;
using benchutil::Table;

namespace {

constexpr int kIterations = 50;

/// Quiet cluster with the protocol costs that matter priced: memcpy at
/// 10 GB/s and a 20 us CTS round trip above 32 KiB.
sim::ClusterConfig protocol_cluster(int nprocs) {
    sim::ClusterConfig c = sim::make_uniform_cluster(nprocs);
    c.copy_us_per_byte = 0.0001;
    c.rendezvous_handshake_us = 20.0;
    c.rendezvous_threshold = 32 * 1024;
    return c;
}

/// Fig. 16-like irregular ghost exchange: near neighbors carry
/// rank-dependent wide halos, every fourth rank also talks to a far
/// neighbor, everything else is zero.
sim::AlltoallwWorkload make_irregular_workload(int nprocs) {
    sim::AlltoallwWorkload wl;
    wl.nprocs = nprocs;
    wl.volume.assign(static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs), 0);
    for (int r = 0; r < nprocs; ++r) {
        const int succ = (r + 1) % nprocs;
        const int pred = (r + nprocs - 1) % nprocs;
        wl.vol(r, succ) = 48 * 1024 + static_cast<std::uint64_t>(r % 5) * 16 * 1024;
        wl.vol(r, pred) = 40 * 1024 + static_cast<std::uint64_t>(r % 3) * 8 * 1024;
        if (r % 4 == 0 && nprocs > 8) {
            wl.vol(r, (r + nprocs / 2) % nprocs) = 12 * 1024;
        }
    }
    return wl;
}

sim::AlltoallwWorkload make_uniform_workload(int nprocs, std::uint64_t bytes) {
    sim::AlltoallwWorkload wl;
    wl.nprocs = nprocs;
    wl.volume.assign(static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs),
                     bytes);
    for (int r = 0; r < nprocs; ++r) wl.vol(r, r) = 0;
    return wl;
}

struct SimPoint {
    int nprocs = 0;
    double rma_us = 0.0;
    double binned_us = 0.0;
    double rr_us = 0.0;
    double best_two_sided() const { return std::min(binned_us, rr_us); }
};

SimPoint run_sim(const sim::AlltoallwWorkload& base, int nprocs) {
    sim::AlltoallwWorkload wl = base;
    wl.iterations = kIterations;
    const sim::ClusterConfig cluster = protocol_cluster(nprocs);
    SimPoint p;
    p.nprocs = nprocs;
    auto run = [&](sim::AlltoallwSchedule s) {
        return sim::Simulator(cluster)
                   .run(sim::alltoallw_program(cluster, wl, s))
                   .makespan_us /
               kIterations;
    };
    p.rma_us = run(sim::AlltoallwSchedule::Rma);
    p.binned_us = run(sim::AlltoallwSchedule::Binned);
    p.rr_us = run(sim::AlltoallwSchedule::RoundRobin);
    return p;
}

struct RealRun {
    bool rma_selected = false;
    bool counters_ok = false;
    std::uint64_t puts = 0;
    std::uint64_t fences = 0;
    std::uint64_t deliveries = 0;
    double rma_ms_per_exec = 0.0;
    double two_sided_ms_per_exec = 0.0;
};

/// Steady-state executes of an RMA-forced vs a rendezvous-forced persistent
/// plan on the real runtime (ring-neighbor shape, 16 KiB per edge), with
/// the counter attestation on the RMA side.
RealRun run_real(int nprocs) {
    constexpr std::size_t kBytes = 16 * 1024;
    constexpr int kWarm = 2, kTimed = 20;
    RealRun out;
    rt::World w(nprocs);
    w.run([&](rt::Comm& c) {
        const int r = c.rank();
        const auto n = static_cast<std::size_t>(c.size());
        std::vector<std::size_t> scounts(n, 0), rcounts(n, 0);
        std::vector<std::ptrdiff_t> sdispls(n, 0), rdispls(n, 0);
        std::vector<dt::Datatype> types(n, dt::Datatype::byte());
        const auto succ = static_cast<std::size_t>((r + 1) % nprocs);
        const auto pred = static_cast<std::size_t>((r + nprocs - 1) % nprocs);
        scounts[succ] = kBytes;
        scounts[pred] = kBytes;
        sdispls[pred] = static_cast<std::ptrdiff_t>(kBytes);
        rcounts[pred] = kBytes;
        rcounts[succ] = kBytes;
        rdispls[succ] = static_cast<std::ptrdiff_t>(kBytes);
        std::vector<std::uint8_t> src(2 * kBytes), dst(2 * kBytes, 0);
        for (std::size_t i = 0; i < src.size(); ++i) {
            src[i] = static_cast<std::uint8_t>((static_cast<std::size_t>(r) * 131 + i) & 0xff);
        }

        coll::CollConfig rma_cfg;
        rma_cfg.persistent_protocol = rt::Protocol::Rma;
        coll::CollConfig two_cfg;
        two_cfg.persistent_protocol = rt::Protocol::Rendezvous;
        coll::AlltoallwPlan rma_plan(c, scounts, sdispls, types, rcounts, rdispls, types,
                                     rma_cfg);
        coll::AlltoallwPlan two_plan(c, scounts, sdispls, types, rcounts, rdispls, types,
                                     two_cfg);
        if (c.rank() == 0) out.rma_selected = rma_plan.rma();

        for (int i = 0; i < kWarm; ++i) {
            rma_plan.execute(src.data(), dst.data());
            two_plan.execute(src.data(), dst.data());
        }

        // Counter attestation on one steady-state RMA execute.
        c.reset_stats();
        rma_plan.execute(src.data(), dst.data());
        const StatCounters cnt = c.counters();
        if (c.rank() == 0 && rma_plan.rma()) {
            out.puts = cnt.rt_rma_puts;
            out.fences = cnt.rt_rma_fences;
            out.deliveries = cnt.rt_lane_fast_deliveries + cnt.rt_lane_overflow_deliveries;
            out.counters_ok = cnt.rt_rma_puts == 2 && cnt.rt_rma_fences == 2 &&
                              out.deliveries == 0 && cnt.rt_zero_copy_msgs == 0;
        }

        c.barrier();
        benchutil::Stopwatch sw1;
        for (int i = 0; i < kTimed; ++i) rma_plan.execute(src.data(), dst.data());
        c.barrier();
        const double rma_ms = sw1.ms() / kTimed;
        c.barrier();
        benchutil::Stopwatch sw2;
        for (int i = 0; i < kTimed; ++i) two_plan.execute(src.data(), dst.data());
        c.barrier();
        const double two_ms = sw2.ms() / kTimed;
        if (c.rank() == 0) {
            out.rma_ms_per_exec = rma_ms;
            out.two_sided_ms_per_exec = two_ms;
        }
    });
    return out;
}

void print_points(const char* title, const std::vector<SimPoint>& pts, bool gated) {
    std::printf("%s\n", title);
    Table t({"Processes", "RMA (us)", "Binned (us)", "RoundRobin (us)", "RMA/best",
             gated ? "Gate" : "-"});
    for (const SimPoint& p : pts) {
        const bool ok = p.rma_us < p.best_two_sided();
        t.add_row({std::to_string(p.nprocs), benchutil::fmt(p.rma_us, 1),
                   benchutil::fmt(p.binned_us, 1), benchutil::fmt(p.rr_us, 1),
                   benchutil::fmt(p.rma_us / p.best_two_sided(), 3),
                   gated ? (ok ? "PASS" : "FAIL") : "-"});
    }
    t.print();
    std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    bool pass = true;

    std::printf("== One-sided RMA plans vs two-sided alltoallw schedules ==\n");
    std::printf("quiet uniform cluster, memcpy 10 GB/s, 20 us handshake above 32 KiB\n\n");

    // Fig. 15 ring-neighbor shape (nonuniform: two real edges per rank).
    const std::vector<int> fig15_sizes = smoke ? std::vector<int>{32}
                                               : std::vector<int>{8, 16, 32, 64, 128};
    std::vector<SimPoint> fig15;
    for (int n : fig15_sizes) {
        fig15.push_back(run_sim(sim::make_ring_neighbor_workload(n, 64 * 1024), n));
        pass = pass && fig15.back().rma_us < fig15.back().best_two_sided();
    }
    print_points("-- Fig. 15 ring neighbor, 64 KiB per edge (gated) --", fig15, true);

    // Fig. 16-like irregular ghost pattern (gated).
    const std::vector<int> fig16_sizes =
        smoke ? std::vector<int>{32} : std::vector<int>{16, 32, 64};
    std::vector<SimPoint> fig16;
    for (int n : fig16_sizes) {
        fig16.push_back(run_sim(make_irregular_workload(n), n));
        pass = pass && fig16.back().rma_us < fig16.back().best_two_sided();
    }
    print_points("-- Fig. 16-like irregular ghost exchange (gated) --", fig16, true);

    // Uniform all-to-all sweep (reported only).
    std::vector<SimPoint> uniform;
    if (!smoke) {
        for (std::uint64_t bytes : {std::uint64_t{1024}, std::uint64_t{16 * 1024},
                                    std::uint64_t{64 * 1024}}) {
            SimPoint p = run_sim(make_uniform_workload(16, bytes), 16);
            p.nprocs = static_cast<int>(bytes);  // column doubles as bytes here
            uniform.push_back(p);
        }
        print_points("-- uniform all-to-all, 16 procs, column = bytes/edge (ungated) --",
                     uniform, false);
    }

    // Real-runtime attestation + steady-state timing.
    RealRun real;
    if (rt::rma_selection_enabled()) {
        real = run_real(8);
        std::printf("-- real runtime, 8 ranks, ring neighbor 16 KiB per edge --\n");
        std::printf("steady-state execute: RMA %.4f ms, two-sided %.4f ms\n",
                    real.rma_ms_per_exec, real.two_sided_ms_per_exec);
        std::printf("counters: %llu puts, %llu fences, %llu deliveries -> %s\n",
                    static_cast<unsigned long long>(real.puts),
                    static_cast<unsigned long long>(real.fences),
                    static_cast<unsigned long long>(real.deliveries),
                    real.counters_ok ? "ATTESTED" : "FAIL");
        pass = pass && real.rma_selected && real.counters_ok;
    } else {
        std::printf("-- real runtime attestation skipped: NNCOMM_RMA gated off --\n");
    }

    std::printf("\nRMA gate (beats best two-sided on both nonuniform shapes, counters clean): %s\n",
                pass ? "PASS" : "FAIL");

    if (!smoke) {
        FILE* f = std::fopen("BENCH_rma.json", "w");
        if (f) {
            auto dump = [&](const char* key, const std::vector<SimPoint>& pts,
                            const char* col) {
                std::fprintf(f, "  \"%s\": [\n", key);
                for (std::size_t i = 0; i < pts.size(); ++i) {
                    std::fprintf(f,
                                 "    { \"%s\": %d, \"rma_us\": %.3f, \"binned_us\": %.3f, "
                                 "\"roundrobin_us\": %.3f }%s\n",
                                 col, pts[i].nprocs, pts[i].rma_us, pts[i].binned_us,
                                 pts[i].rr_us, i + 1 < pts.size() ? "," : "");
                }
                std::fprintf(f, "  ],\n");
            };
            std::fprintf(f, "{\n  \"bench\": \"rma_alltoallw\",\n");
            dump("fig15_ring_64KiB", fig15, "ranks");
            dump("fig16_irregular", fig16, "ranks");
            dump("uniform_16procs", uniform, "bytes");
            std::fprintf(f, "  \"real_runtime\": { \"ranks\": 8, \"rma_ms\": %.4f, "
                            "\"two_sided_ms\": %.4f, \"puts\": %llu, \"fences\": %llu, "
                            "\"deliveries\": %llu, \"rma_selected\": %s },\n",
                         real.rma_ms_per_exec, real.two_sided_ms_per_exec,
                         static_cast<unsigned long long>(real.puts),
                         static_cast<unsigned long long>(real.fences),
                         static_cast<unsigned long long>(real.deliveries),
                         real.rma_selected ? "true" : "false");
            std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
            std::fclose(f);
            std::printf("wrote BENCH_rma.json\n");
        }
    }
    return pass ? 0 : 1;
}

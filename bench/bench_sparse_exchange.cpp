// Sparse dynamic exchange setup cost: NBX consensus vs dense discovery.
//
// Plan construction for a sparse communication pattern (VecScatter ghost
// maps, off-process matrix assembly) needs every rank to learn who talks to
// it. The dense approach publishes each rank's full per-destination count
// vector — O(nprocs) bytes per rank no matter how sparse the pattern is.
// The NBX approach (rt::sparse_exchange) sends only the real edges and
// detects termination with acks plus a nonblocking dissemination barrier —
// O(degree + log nprocs).
//
// Two measurements:
//   1. Real threaded runtime, 128-1024 ranks: wall time of one discovery
//      round, sparse_exchange vs allgatherv'd dense count vectors followed
//      by the same point-to-point list exchange.
//   2. Netsim, 128-10240 simulated ranks: predicted makespan of the same
//      two programs (netsim/programs.cpp mirrors the NBX op sequence).
//
// The gate asserts the paper's asymptotic claim on the simulated sweep:
// sparse setup must beat dense at every size >= 512 ranks ("pass" in
// BENCH_sparse_exchange.json; exit 1 otherwise).
//
// `--smoke` runs only the simulated sweep at {512, 10240} ranks with the
// crossover gate, writes no JSON, and is fast enough for CI.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "coll/collectives.hpp"
#include "core/rng.hpp"
#include "netsim/programs.hpp"
#include "runtime/sparse.hpp"

using namespace nncomm;

namespace {

constexpr int kDegree = 8;            // out-neighbors per rank
constexpr std::size_t kListLen = 64;  // indices requested per edge
constexpr std::uint64_t kListBytes = kListLen * sizeof(std::uint64_t);
constexpr std::uint64_t kSeed = 0x5eed;

/// The per-rank out-edges of the shared random pattern, as (dest, list).
std::vector<std::pair<int, std::vector<std::uint64_t>>> edges_of(
    const sim::SparseNeighborhood& nbhd, int rank) {
    std::vector<std::pair<int, std::vector<std::uint64_t>>> out;
    for (const auto& [dest, bytes] : nbhd[static_cast<std::size_t>(rank)]) {
        std::vector<std::uint64_t> list(static_cast<std::size_t>(bytes) / 8);
        for (std::size_t i = 0; i < list.size(); ++i) {
            list[i] = static_cast<std::uint64_t>(rank) * 1000003u + i;
        }
        out.emplace_back(dest, std::move(list));
    }
    return out;
}

struct RealRun {
    double sparse_ms = 0.0;
    double dense_ms = 0.0;
};

/// One real-runtime discovery round per protocol, timed end to end
/// (barrier-bracketed, max over ranks by construction). kReps rounds, best
/// round kept: plan construction is a one-shot cost, so the minimum is the
/// fair steady-state estimate once thread wakeup jitter is excluded.
RealRun run_real(int n) {
    constexpr int kReps = 3;
    const sim::SparseNeighborhood nbhd =
        sim::make_random_neighborhood(n, kDegree, kListBytes, kSeed);
    RealRun out;
    rt::World w(n);
    w.run([&](rt::Comm& c) {
        const auto edges = edges_of(nbhd, c.rank());
        const auto un = static_cast<std::size_t>(n);

        // Who sends to me (shared knowledge for the dense receive loop and
        // for validating both protocols discovered the same pattern).
        std::vector<int> in_neighbors;
        for (int r = 0; r < n; ++r) {
            for (const auto& [dest, bytes] : nbhd[static_cast<std::size_t>(r)]) {
                if (dest == c.rank() && r != c.rank()) in_neighbors.push_back(r);
            }
        }

        double best_sparse = 0.0, best_dense = 0.0;
        for (int rep = 0; rep < kReps; ++rep) {
            // -- NBX sparse discovery --------------------------------------
            c.barrier();
            benchutil::Stopwatch sw1;
            const auto got = rt::sparse_exchange_t<std::uint64_t>(c, edges);
            c.barrier();
            const double sparse_ms = sw1.ms();
            NNCOMM_CHECK_MSG(got.size() == in_neighbors.size(),
                             "sparse discovery found the wrong in-neighborhood");

            // -- dense discovery: allgatherv of count vectors --------------
            c.barrier();
            benchutil::Stopwatch sw2;
            std::vector<std::uint64_t> my_counts(un, 0);
            for (const auto& [dest, list] : edges) {
                my_counts[static_cast<std::size_t>(dest)] = list.size() * 8;
            }
            std::vector<std::uint64_t> all_counts(un * un, 0);
            std::vector<std::size_t> counts(un, un * 8);
            std::vector<std::size_t> displs(un);
            for (std::size_t r = 0; r < un; ++r) displs[r] = r * un * 8;
            coll::allgatherv(c, my_counts.data(), un * 8, dt::Datatype::byte(),
                             all_counts.data(), counts, displs, dt::Datatype::byte());
            // Pattern now globally known: post the discovered receives,
            // fire the list sends, no acks, no barrier.
            std::vector<rt::Request> rreqs;
            std::vector<std::vector<std::uint64_t>> rbufs;
            for (std::size_t r = 0; r < un; ++r) {
                const std::uint64_t bytes =
                    all_counts[r * un + static_cast<std::size_t>(c.rank())];
                if (bytes == 0 || static_cast<int>(r) == c.rank()) continue;
                rbufs.emplace_back(static_cast<std::size_t>(bytes) / 8);
                rreqs.push_back(c.irecv(rbufs.back().data(), bytes, dt::Datatype::byte(),
                                        static_cast<int>(r), 3));
            }
            std::vector<rt::Request> sreqs;
            for (const auto& [dest, list] : edges) {
                sreqs.push_back(c.isend(list.data(), list.size() * 8, dt::Datatype::byte(),
                                        dest, 3));
            }
            c.waitall(rreqs);
            c.waitall(sreqs);
            c.barrier();
            const double dense_ms = sw2.ms();
            NNCOMM_CHECK_MSG(rbufs.size() == in_neighbors.size(),
                             "dense discovery found the wrong in-neighborhood");

            if (rep == 0 || sparse_ms < best_sparse) best_sparse = sparse_ms;
            if (rep == 0 || dense_ms < best_dense) best_dense = dense_ms;
        }
        if (c.rank() == 0) {
            out.sparse_ms = best_sparse;
            out.dense_ms = best_dense;
        }
    });
    return out;
}

struct SimRun {
    double sparse_us = 0.0;
    double dense_us = 0.0;
};

SimRun run_sim(int n) {
    const sim::SparseNeighborhood nbhd =
        sim::make_random_neighborhood(n, kDegree, kListBytes, kSeed);
    const sim::ClusterConfig cluster = sim::make_uniform_cluster(n);
    SimRun out;
    {
        sim::ProgramBuilder b(cluster);
        b.add_sparse_exchange(nbhd);
        out.sparse_us = sim::Simulator(cluster).run(b.programs()).makespan_us;
    }
    {
        sim::ProgramBuilder b(cluster);
        b.add_dense_discovery(nbhd);
        out.dense_us = sim::Simulator(cluster).run(b.programs()).makespan_us;
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    const std::vector<int> sim_sizes =
        smoke ? std::vector<int>{512, 10240} : std::vector<int>{128, 512, 1024, 4096, 10240};
    std::vector<SimRun> sim_runs;
    bool pass = true;

    std::printf("== Sparse dynamic exchange setup: NBX consensus vs dense discovery ==\n");
    std::printf("degree %d, %zu-index request lists (%llu bytes per edge)\n\n", kDegree,
                kListLen, static_cast<unsigned long long>(kListBytes));

    benchutil::Table st({"Simulated ranks", "Sparse NBX (us)", "Dense (us)", "Dense/Sparse",
                         "Gate (>=512)"});
    for (int n : sim_sizes) {
        const SimRun r = run_sim(n);
        sim_runs.push_back(r);
        const bool gated = n >= 512;
        const bool ok = !gated || r.sparse_us < r.dense_us;
        pass = pass && ok;
        st.add_row({std::to_string(n), benchutil::fmt(r.sparse_us, 1),
                    benchutil::fmt(r.dense_us, 1),
                    benchutil::fmt(r.sparse_us > 0.0 ? r.dense_us / r.sparse_us : 0.0, 2),
                    gated ? (ok ? "PASS" : "FAIL") : "-"});
    }
    st.print();

    std::vector<RealRun> real_runs;
    const std::vector<int> real_sizes = smoke ? std::vector<int>{} : std::vector<int>{128, 256, 512, 1024};
    if (!smoke) {
        std::printf("\n");
        benchutil::Table rt_table(
            {"Runtime ranks", "Sparse NBX (ms)", "Dense (ms)", "Dense/Sparse"});
        for (int n : real_sizes) {
            const RealRun r = run_real(n);
            real_runs.push_back(r);
            rt_table.add_row({std::to_string(n), benchutil::fmt(r.sparse_ms, 3),
                              benchutil::fmt(r.dense_ms, 3),
                              benchutil::fmt(r.sparse_ms > 0.0 ? r.dense_ms / r.sparse_ms : 0.0,
                                             2)});
        }
        rt_table.print();
    }

    std::printf("\ncrossover gate (simulated, sparse < dense at every size >= 512): %s\n",
                pass ? "PASS" : "FAIL");

    if (!smoke) {
        FILE* f = std::fopen("BENCH_sparse_exchange.json", "w");
        if (f) {
            std::fprintf(f, "{\n  \"bench\": \"sparse_exchange\",\n");
            std::fprintf(f, "  \"degree\": %d,\n  \"list_bytes\": %llu,\n", kDegree,
                         static_cast<unsigned long long>(kListBytes));
            std::fprintf(f, "  \"simulated\": [\n");
            for (std::size_t i = 0; i < sim_sizes.size(); ++i) {
                std::fprintf(f,
                             "    { \"ranks\": %d, \"sparse_us\": %.3f, \"dense_us\": %.3f }%s\n",
                             sim_sizes[i], sim_runs[i].sparse_us, sim_runs[i].dense_us,
                             i + 1 < sim_sizes.size() ? "," : "");
            }
            std::fprintf(f, "  ],\n  \"real_runtime\": [\n");
            for (std::size_t i = 0; i < real_sizes.size(); ++i) {
                std::fprintf(f,
                             "    { \"ranks\": %d, \"sparse_ms\": %.4f, \"dense_ms\": %.4f }%s\n",
                             real_sizes[i], real_runs[i].sparse_ms, real_runs[i].dense_ms,
                             i + 1 < real_sizes.size() ? "," : "");
            }
            std::fprintf(f, "  ],\n  \"pass\": %s\n}\n", pass ? "true" : "false");
            std::fclose(f);
            std::printf("wrote BENCH_sparse_exchange.json\n");
        }
    }
    return pass ? 0 : 1;
}

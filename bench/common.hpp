// Shared helpers for the figure-reproduction benchmarks.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "datatype/datatype.hpp"

namespace benchutil {

/// The paper's transpose datatype (Figures 4-6): an n x n matrix whose
/// elements are 3 contiguous doubles, traversed column-major. One column is
/// a vector of n single elements with stride n; the whole matrix is n
/// columns, each starting one element after the previous.
inline nncomm::dt::Datatype transpose_type(std::size_t n) {
    using nncomm::dt::Datatype;
    auto elem = Datatype::contiguous(3, Datatype::float64());
    auto col = Datatype::vector(n, 1, static_cast<std::ptrdiff_t>(n), elem);
    auto col_resized = Datatype::resized(col, 0, elem.extent());
    return Datatype::contiguous(n, col_resized);
}

inline double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

class Stopwatch {
public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}
    double ms() const {
        return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                         start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

inline double improvement_pct(double baseline, double optimized) {
    return baseline > 0.0 ? 100.0 * (baseline - optimized) / baseline : 0.0;
}

/// Simple fixed-width table printer for paper-style output.
class Table {
public:
    explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

    void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    void print() const {
        std::vector<std::size_t> width(headers_.size());
        for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
        for (const auto& row : rows_) {
            for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
                width[i] = std::max(width[i], row[i].size());
            }
        }
        auto print_row = [&](const std::vector<std::string>& row) {
            for (std::size_t i = 0; i < row.size(); ++i) {
                std::printf("%-*s  ", static_cast<int>(width[i]), row[i].c_str());
            }
            std::printf("\n");
        };
        print_row(headers_);
        std::size_t total = 0;
        for (auto w : width) total += w + 2;
        for (std::size_t i = 0; i < total; ++i) std::printf("-");
        std::printf("\n");
        for (const auto& row : rows_) print_row(row);
    }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

inline std::string fmt_pct(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f%%", v);
    return buf;
}

}  // namespace benchutil

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_transpose.dir/bench_fig12_transpose.cpp.o"
  "CMakeFiles/bench_fig12_transpose.dir/bench_fig12_transpose.cpp.o.d"
  "bench_fig12_transpose"
  "bench_fig12_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

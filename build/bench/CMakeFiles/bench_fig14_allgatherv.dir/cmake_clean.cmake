file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_allgatherv.dir/bench_fig14_allgatherv.cpp.o"
  "CMakeFiles/bench_fig14_allgatherv.dir/bench_fig14_allgatherv.cpp.o.d"
  "bench_fig14_allgatherv"
  "bench_fig14_allgatherv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_allgatherv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

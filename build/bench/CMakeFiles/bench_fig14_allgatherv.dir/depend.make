# Empty dependencies file for bench_fig14_allgatherv.
# This may be replaced when dependencies are built.

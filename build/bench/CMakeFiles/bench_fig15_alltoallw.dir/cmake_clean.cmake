file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_alltoallw.dir/bench_fig15_alltoallw.cpp.o"
  "CMakeFiles/bench_fig15_alltoallw.dir/bench_fig15_alltoallw.cpp.o.d"
  "bench_fig15_alltoallw"
  "bench_fig15_alltoallw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_alltoallw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

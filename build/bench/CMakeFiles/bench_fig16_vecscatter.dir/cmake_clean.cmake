file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_vecscatter.dir/bench_fig16_vecscatter.cpp.o"
  "CMakeFiles/bench_fig16_vecscatter.dir/bench_fig16_vecscatter.cpp.o.d"
  "bench_fig16_vecscatter"
  "bench_fig16_vecscatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_vecscatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

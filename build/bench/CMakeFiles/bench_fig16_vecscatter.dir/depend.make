# Empty dependencies file for bench_fig16_vecscatter.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_mgsolver.dir/bench_fig17_mgsolver.cpp.o"
  "CMakeFiles/bench_fig17_mgsolver.dir/bench_fig17_mgsolver.cpp.o.d"
  "bench_fig17_mgsolver"
  "bench_fig17_mgsolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_mgsolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig17_mgsolver.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_futurework_amr.dir/bench_futurework_amr.cpp.o"
  "CMakeFiles/bench_futurework_amr.dir/bench_futurework_amr.cpp.o.d"
  "bench_futurework_amr"
  "bench_futurework_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_futurework_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_futurework_amr.
# This may be replaced when dependencies are built.

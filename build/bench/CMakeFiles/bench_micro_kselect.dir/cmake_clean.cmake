file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_kselect.dir/bench_micro_kselect.cpp.o"
  "CMakeFiles/bench_micro_kselect.dir/bench_micro_kselect.cpp.o.d"
  "bench_micro_kselect"
  "bench_micro_kselect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_kselect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

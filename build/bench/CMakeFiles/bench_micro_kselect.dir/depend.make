# Empty dependencies file for bench_micro_kselect.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bratu_newton.dir/bratu_newton.cpp.o"
  "CMakeFiles/bratu_newton.dir/bratu_newton.cpp.o.d"
  "bratu_newton"
  "bratu_newton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bratu_newton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

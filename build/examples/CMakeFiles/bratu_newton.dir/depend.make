# Empty dependencies file for bratu_newton.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ghost_exchange.cpp" "examples/CMakeFiles/ghost_exchange.dir/ghost_exchange.cpp.o" "gcc" "examples/CMakeFiles/ghost_exchange.dir/ghost_exchange.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/petsckit/CMakeFiles/nncomm_petsckit.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/nncomm_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/nncomm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/datatype/CMakeFiles/nncomm_datatype.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nncomm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ghost_exchange.dir/ghost_exchange.cpp.o"
  "CMakeFiles/ghost_exchange.dir/ghost_exchange.cpp.o.d"
  "ghost_exchange"
  "ghost_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghost_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

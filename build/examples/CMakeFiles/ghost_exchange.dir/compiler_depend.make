# Empty compiler generated dependencies file for ghost_exchange.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/laplacian_mg.dir/laplacian_mg.cpp.o"
  "CMakeFiles/laplacian_mg.dir/laplacian_mg.cpp.o.d"
  "laplacian_mg"
  "laplacian_mg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laplacian_mg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

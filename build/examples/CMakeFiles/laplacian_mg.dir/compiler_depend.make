# Empty compiler generated dependencies file for laplacian_mg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vector_scatter.dir/vector_scatter.cpp.o"
  "CMakeFiles/vector_scatter.dir/vector_scatter.cpp.o.d"
  "vector_scatter"
  "vector_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for vector_scatter.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ghost_exchange "/root/repo/build/examples/ghost_exchange")
set_tests_properties(example_ghost_exchange PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_laplacian_mg "/root/repo/build/examples/laplacian_mg")
set_tests_properties(example_laplacian_mg PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vector_scatter "/root/repo/build/examples/vector_scatter")
set_tests_properties(example_vector_scatter PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bratu_newton "/root/repo/build/examples/bratu_newton")
set_tests_properties(example_bratu_newton PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_equation "/root/repo/build/examples/heat_equation")
set_tests_properties(example_heat_equation PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll/allgatherv.cpp" "src/coll/CMakeFiles/nncomm_coll.dir/allgatherv.cpp.o" "gcc" "src/coll/CMakeFiles/nncomm_coll.dir/allgatherv.cpp.o.d"
  "/root/repo/src/coll/alltoallw.cpp" "src/coll/CMakeFiles/nncomm_coll.dir/alltoallw.cpp.o" "gcc" "src/coll/CMakeFiles/nncomm_coll.dir/alltoallw.cpp.o.d"
  "/root/repo/src/coll/basic.cpp" "src/coll/CMakeFiles/nncomm_coll.dir/basic.cpp.o" "gcc" "src/coll/CMakeFiles/nncomm_coll.dir/basic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/nncomm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/datatype/CMakeFiles/nncomm_datatype.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nncomm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

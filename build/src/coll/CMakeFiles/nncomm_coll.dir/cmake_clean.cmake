file(REMOVE_RECURSE
  "CMakeFiles/nncomm_coll.dir/allgatherv.cpp.o"
  "CMakeFiles/nncomm_coll.dir/allgatherv.cpp.o.d"
  "CMakeFiles/nncomm_coll.dir/alltoallw.cpp.o"
  "CMakeFiles/nncomm_coll.dir/alltoallw.cpp.o.d"
  "CMakeFiles/nncomm_coll.dir/basic.cpp.o"
  "CMakeFiles/nncomm_coll.dir/basic.cpp.o.d"
  "libnncomm_coll.a"
  "libnncomm_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nncomm_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnncomm_coll.a"
)

# Empty compiler generated dependencies file for nncomm_coll.
# This may be replaced when dependencies are built.

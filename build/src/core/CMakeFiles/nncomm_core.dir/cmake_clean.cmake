file(REMOVE_RECURSE
  "CMakeFiles/nncomm_core.dir/outlier.cpp.o"
  "CMakeFiles/nncomm_core.dir/outlier.cpp.o.d"
  "libnncomm_core.a"
  "libnncomm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nncomm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnncomm_core.a"
)

# Empty dependencies file for nncomm_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/nncomm_datatype.dir/datatype.cpp.o"
  "CMakeFiles/nncomm_datatype.dir/datatype.cpp.o.d"
  "CMakeFiles/nncomm_datatype.dir/engine.cpp.o"
  "CMakeFiles/nncomm_datatype.dir/engine.cpp.o.d"
  "libnncomm_datatype.a"
  "libnncomm_datatype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nncomm_datatype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnncomm_datatype.a"
)

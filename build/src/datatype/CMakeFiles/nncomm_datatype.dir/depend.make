# Empty dependencies file for nncomm_datatype.
# This may be replaced when dependencies are built.

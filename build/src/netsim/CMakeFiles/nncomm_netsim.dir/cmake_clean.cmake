file(REMOVE_RECURSE
  "CMakeFiles/nncomm_netsim.dir/model.cpp.o"
  "CMakeFiles/nncomm_netsim.dir/model.cpp.o.d"
  "CMakeFiles/nncomm_netsim.dir/programs.cpp.o"
  "CMakeFiles/nncomm_netsim.dir/programs.cpp.o.d"
  "CMakeFiles/nncomm_netsim.dir/sim.cpp.o"
  "CMakeFiles/nncomm_netsim.dir/sim.cpp.o.d"
  "libnncomm_netsim.a"
  "libnncomm_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nncomm_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnncomm_netsim.a"
)

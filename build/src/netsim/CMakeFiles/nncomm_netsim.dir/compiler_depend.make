# Empty compiler generated dependencies file for nncomm_netsim.
# This may be replaced when dependencies are built.

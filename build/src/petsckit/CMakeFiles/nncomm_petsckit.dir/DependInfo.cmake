
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/petsckit/advection.cpp" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/advection.cpp.o" "gcc" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/advection.cpp.o.d"
  "/root/repo/src/petsckit/bratu.cpp" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/bratu.cpp.o" "gcc" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/bratu.cpp.o.d"
  "/root/repo/src/petsckit/dmda.cpp" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/dmda.cpp.o" "gcc" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/dmda.cpp.o.d"
  "/root/repo/src/petsckit/ksp.cpp" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/ksp.cpp.o" "gcc" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/ksp.cpp.o.d"
  "/root/repo/src/petsckit/laplacian.cpp" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/laplacian.cpp.o" "gcc" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/laplacian.cpp.o.d"
  "/root/repo/src/petsckit/mat.cpp" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/mat.cpp.o" "gcc" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/mat.cpp.o.d"
  "/root/repo/src/petsckit/mg.cpp" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/mg.cpp.o" "gcc" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/mg.cpp.o.d"
  "/root/repo/src/petsckit/patch.cpp" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/patch.cpp.o" "gcc" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/patch.cpp.o.d"
  "/root/repo/src/petsckit/scatter.cpp" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/scatter.cpp.o" "gcc" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/scatter.cpp.o.d"
  "/root/repo/src/petsckit/snes.cpp" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/snes.cpp.o" "gcc" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/snes.cpp.o.d"
  "/root/repo/src/petsckit/ts.cpp" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/ts.cpp.o" "gcc" "src/petsckit/CMakeFiles/nncomm_petsckit.dir/ts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coll/CMakeFiles/nncomm_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/nncomm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/datatype/CMakeFiles/nncomm_datatype.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nncomm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/nncomm_petsckit.dir/advection.cpp.o"
  "CMakeFiles/nncomm_petsckit.dir/advection.cpp.o.d"
  "CMakeFiles/nncomm_petsckit.dir/bratu.cpp.o"
  "CMakeFiles/nncomm_petsckit.dir/bratu.cpp.o.d"
  "CMakeFiles/nncomm_petsckit.dir/dmda.cpp.o"
  "CMakeFiles/nncomm_petsckit.dir/dmda.cpp.o.d"
  "CMakeFiles/nncomm_petsckit.dir/ksp.cpp.o"
  "CMakeFiles/nncomm_petsckit.dir/ksp.cpp.o.d"
  "CMakeFiles/nncomm_petsckit.dir/laplacian.cpp.o"
  "CMakeFiles/nncomm_petsckit.dir/laplacian.cpp.o.d"
  "CMakeFiles/nncomm_petsckit.dir/mat.cpp.o"
  "CMakeFiles/nncomm_petsckit.dir/mat.cpp.o.d"
  "CMakeFiles/nncomm_petsckit.dir/mg.cpp.o"
  "CMakeFiles/nncomm_petsckit.dir/mg.cpp.o.d"
  "CMakeFiles/nncomm_petsckit.dir/patch.cpp.o"
  "CMakeFiles/nncomm_petsckit.dir/patch.cpp.o.d"
  "CMakeFiles/nncomm_petsckit.dir/scatter.cpp.o"
  "CMakeFiles/nncomm_petsckit.dir/scatter.cpp.o.d"
  "CMakeFiles/nncomm_petsckit.dir/snes.cpp.o"
  "CMakeFiles/nncomm_petsckit.dir/snes.cpp.o.d"
  "CMakeFiles/nncomm_petsckit.dir/ts.cpp.o"
  "CMakeFiles/nncomm_petsckit.dir/ts.cpp.o.d"
  "libnncomm_petsckit.a"
  "libnncomm_petsckit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nncomm_petsckit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

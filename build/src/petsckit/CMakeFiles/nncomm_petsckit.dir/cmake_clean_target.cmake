file(REMOVE_RECURSE
  "libnncomm_petsckit.a"
)

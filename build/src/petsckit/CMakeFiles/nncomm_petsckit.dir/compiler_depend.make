# Empty compiler generated dependencies file for nncomm_petsckit.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/nncomm_runtime.dir/comm.cpp.o"
  "CMakeFiles/nncomm_runtime.dir/comm.cpp.o.d"
  "libnncomm_runtime.a"
  "libnncomm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nncomm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

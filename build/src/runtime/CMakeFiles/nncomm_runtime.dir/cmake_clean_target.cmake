file(REMOVE_RECURSE
  "libnncomm_runtime.a"
)

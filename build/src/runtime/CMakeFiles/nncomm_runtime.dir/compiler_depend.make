# Empty compiler generated dependencies file for nncomm_runtime.
# This may be replaced when dependencies are built.

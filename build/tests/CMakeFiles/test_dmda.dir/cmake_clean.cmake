file(REMOVE_RECURSE
  "CMakeFiles/test_dmda.dir/test_dmda.cpp.o"
  "CMakeFiles/test_dmda.dir/test_dmda.cpp.o.d"
  "test_dmda"
  "test_dmda.pdb"
  "test_dmda[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dmda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_dmda.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_kselect.dir/test_kselect.cpp.o"
  "CMakeFiles/test_kselect.dir/test_kselect.cpp.o.d"
  "test_kselect"
  "test_kselect.pdb"
  "test_kselect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kselect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

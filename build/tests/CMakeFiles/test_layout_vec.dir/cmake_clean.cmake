file(REMOVE_RECURSE
  "CMakeFiles/test_layout_vec.dir/test_layout_vec.cpp.o"
  "CMakeFiles/test_layout_vec.dir/test_layout_vec.cpp.o.d"
  "test_layout_vec"
  "test_layout_vec.pdb"
  "test_layout_vec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_vec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_mat_ksp.dir/test_mat_ksp.cpp.o"
  "CMakeFiles/test_mat_ksp.dir/test_mat_ksp.cpp.o.d"
  "test_mat_ksp"
  "test_mat_ksp.pdb"
  "test_mat_ksp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mat_ksp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_mat_ksp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_outlier.dir/test_outlier.cpp.o"
  "CMakeFiles/test_outlier.dir/test_outlier.cpp.o.d"
  "test_outlier"
  "test_outlier.pdb"
  "test_outlier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_outlier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

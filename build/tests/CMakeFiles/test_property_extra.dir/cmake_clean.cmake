file(REMOVE_RECURSE
  "CMakeFiles/test_property_extra.dir/test_property_extra.cpp.o"
  "CMakeFiles/test_property_extra.dir/test_property_extra.cpp.o.d"
  "test_property_extra"
  "test_property_extra.pdb"
  "test_property_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_property_extra.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_simbridge.dir/test_simbridge.cpp.o"
  "CMakeFiles/test_simbridge.dir/test_simbridge.cpp.o.d"
  "test_simbridge"
  "test_simbridge.pdb"
  "test_simbridge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simbridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_simbridge.
# This may be replaced when dependencies are built.

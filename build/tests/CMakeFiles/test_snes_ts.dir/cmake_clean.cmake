file(REMOVE_RECURSE
  "CMakeFiles/test_snes_ts.dir/test_snes_ts.cpp.o"
  "CMakeFiles/test_snes_ts.dir/test_snes_ts.cpp.o.d"
  "test_snes_ts"
  "test_snes_ts.pdb"
  "test_snes_ts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snes_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

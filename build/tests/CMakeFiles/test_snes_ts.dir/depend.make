# Empty dependencies file for test_snes_ts.
# This may be replaced when dependencies are built.

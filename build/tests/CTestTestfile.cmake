# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_kselect[1]_include.cmake")
include("/root/repo/build/tests/test_outlier[1]_include.cmake")
include("/root/repo/build/tests/test_datatype[1]_include.cmake")
include("/root/repo/build/tests/test_cursor[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_layout_vec[1]_include.cmake")
include("/root/repo/build/tests/test_scatter[1]_include.cmake")
include("/root/repo/build/tests/test_dmda[1]_include.cmake")
include("/root/repo/build/tests/test_mat_ksp[1]_include.cmake")
include("/root/repo/build/tests/test_mg[1]_include.cmake")
include("/root/repo/build/tests/test_simbridge[1]_include.cmake")
include("/root/repo/build/tests/test_snes_ts[1]_include.cmake")
include("/root/repo/build/tests/test_property_extra[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")

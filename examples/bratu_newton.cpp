// Solid-fuel ignition (Bratu): -Δu - λ e^u = 0 on the unit square, solved
// with Newton–Krylov (SNES over KSP over the communication stack) — the
// canonical nonlinear PETSc example, here exercising the paper's scatter
// backends through every Jacobian assembly and matvec.
//
// Sweeps λ toward the critical value (~6.81 in 2-D) and prints the Newton
// convergence history; near the fold the problem stiffens and Newton needs
// more iterations (and eventually fails) — physically, ignition.
#include <cstdio>

#include "petsckit/bratu.hpp"

using namespace nncomm;
using pk::BratuProblem;
using pk::DMDA;
using pk::GridSize;
using pk::SnesConfig;
using pk::Stencil;
using pk::Vec;

int main() {
    constexpr int kRanks = 4;
    std::printf("Bratu problem -Δu = λ e^u on a 33x33 grid, %d ranks\n", kRanks);
    std::printf("%8s  %10s  %8s  %14s  %12s\n", "lambda", "converged", "newton",
                "total CG iters", "max(u)");

    for (double lambda : {0.5, 2.0, 4.0, 6.0, 6.8}) {
        rt::World world(kRanks);
        world.run([&](rt::Comm& comm) {
            auto da =
                std::make_shared<const DMDA>(comm, 2, GridSize{33, 33, 1}, 1, 1, Stencil::Star);
            BratuProblem problem(da, lambda);
            Vec x = da->create_global();  // zero initial guess
            SnesConfig cfg;
            cfg.max_iters = 30;
            cfg.scatter_backend = pk::ScatterBackend::DatatypeOptimized;

            bool converged = false;
            int newton_its = 0, cg_its = 0;
            double umax = 0.0;
            try {
                auto res = pk::newton_solve(problem, x, cfg);
                converged = res.converged;
                newton_its = res.iterations;
                cg_its = res.total_ksp_iterations;
                double local = 0.0;
                for (double v : x.local()) local = std::max(local, v);
                umax = coll::allreduce_one(comm, local, coll::ReduceOp::Max);
            } catch (const nncomm::Error&) {
                // CG detected an indefinite Jacobian: past the fold.
            }
            if (comm.rank() == 0) {
                std::printf("%8.2f  %10s  %8d  %14d  %12.5f\n", lambda,
                            converged ? "yes" : "NO", newton_its, cg_its, umax);
            }
        });
    }
    std::printf("\nthe solution amplitude grows with lambda and Newton slows as the\n"
                "turning point (~6.81) approaches — each iteration running ghost\n"
                "exchanges, scatter-backed Jacobian matvecs and allreduces.\n");
    return 0;
}

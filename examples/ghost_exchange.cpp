// Ghost exchange on a 2-D distributed grid: star vs box stencils.
//
// Demonstrates the paper's §2.1 observation: with a box stencil, the
// per-neighbor communication volumes are strongly nonuniform (faces get
// whole slabs, corners a handful of points), and ranks exchange nothing at
// all with non-neighbors — exactly the pattern the binned Alltoallw is
// built for. The example prints each rank's neighbor volumes and runs the
// exchange under both the round-robin baseline and the binned algorithm,
// verifying they fill identical ghost regions.
#include <cstdio>
#include <mutex>
#include <vector>

#include "petsckit/dmda.hpp"

using namespace nncomm;
using pk::DMDA;
using pk::GridSize;
using pk::Index;
using pk::Stencil;

int main() {
    constexpr int kRanks = 4;
    constexpr Index kGrid = 16;
    std::mutex print_mu;

    for (Stencil stencil : {Stencil::Star, Stencil::Box}) {
        std::printf("=== %s stencil, %lldx%lld grid on %d ranks ===\n",
                    stencil == Stencil::Star ? "star" : "box", static_cast<long long>(kGrid),
                    static_cast<long long>(kGrid), kRanks);
        rt::World world(kRanks);
        world.run([&](rt::Comm& comm) {
            DMDA da(comm, 2, GridSize{kGrid, kGrid, 1}, /*dof=*/1, /*sw=*/1, stencil);

            {
                std::lock_guard<std::mutex> lk(print_mu);
                const auto& o = da.owned();
                std::printf("[rank %d] owns [%lld..%lld) x [%lld..%lld); neighbors:",
                            comm.rank(), static_cast<long long>(o.xs),
                            static_cast<long long>(o.xs + o.xm), static_cast<long long>(o.ys),
                            static_cast<long long>(o.ys + o.ym));
                for (const auto& nb : da.neighbors()) {
                    std::printf(" r%d(%+d,%+d)=%lluB", nb.rank, nb.dx, nb.dy,
                                static_cast<unsigned long long>(nb.send_bytes));
                }
                std::printf("\n");
            }

            // Fill the global vector with each point's global x + 100*y.
            pk::Vec v = da.create_global();
            const auto& o = da.owned();
            std::size_t at = 0;
            for (Index j = o.ys; j < o.ys + o.ym; ++j) {
                for (Index i = o.xs; i < o.xs + o.xm; ++i, ++at) {
                    v.data()[at] = static_cast<double>(i) + 100.0 * static_cast<double>(j);
                }
            }

            // Exchange ghosts with both Alltoallw algorithms and compare.
            auto baseline = da.create_local();
            auto binned = da.create_local();
            coll::CollConfig cfg;
            cfg.alltoallw_algo = coll::AlltoallwAlgo::RoundRobin;
            da.global_to_local(v, baseline, cfg);
            cfg.alltoallw_algo = coll::AlltoallwAlgo::Binned;
            da.global_to_local(v, binned, cfg);

            bool identical = baseline == binned;
            std::lock_guard<std::mutex> lk(print_mu);
            std::printf("[rank %d] round-robin and binned ghost regions identical: %s\n",
                        comm.rank(), identical ? "yes" : "NO");
        });
        std::printf("\n");
    }
    return 0;
}

// Time-dependent heat equation u_t = Δu + f on a distributed 2-D grid —
// the TS layer of the PETSc architecture (paper Figure 1).
//
// Demonstrates (a) the CFL stability cliff of explicit Euler, (b) the
// unconditional stability of backward Euler, and (c) relaxation to the
// steady state -Δu = f, which is verified against a direct CG solve.
#include <cmath>
#include <cstdio>

#include "petsckit/ts.hpp"

using namespace nncomm;
using pk::DMDA;
using pk::GridSize;
using pk::HeatSolver;
using pk::Index;
using pk::Stencil;
using pk::TimeScheme;
using pk::TsConfig;
using pk::Vec;

int main() {
    constexpr int kRanks = 4;
    rt::World world(kRanks);
    world.run([](rt::Comm& comm) {
        auto da = std::make_shared<const DMDA>(comm, 2, GridSize{33, 33, 1}, 1, 1,
                                               Stencil::Star);
        const bool root = comm.rank() == 0;

        // Forcing: a hot spot in the lower-left quadrant.
        Vec f = da->create_global();
        {
            const auto& o = da->owned();
            std::size_t at = 0;
            for (Index k = o.zs; k < o.zs + o.zm; ++k) {
                for (Index j = o.ys; j < o.ys + o.ym; ++j) {
                    for (Index i = o.xs; i < o.xs + o.xm; ++i, ++at) {
                        f.data()[at] = (i >= 6 && i <= 12 && j >= 6 && j <= 12) ? 50.0 : 0.0;
                    }
                }
            }
        }

        // (a) explicit Euler at 1.2x the stability limit: blow-up.
        {
            TsConfig cfg;
            cfg.scheme = TimeScheme::ForwardEuler;
            HeatSolver probe(da, cfg);
            cfg.dt = 1.2 * probe.explicit_stability_limit();
            HeatSolver heat(da, cfg);
            Vec u = da->create_global();
            heat.advance(u, 60, &f);
            const double unorm = u.norm2();  // collective: all ranks call it
            if (root) {
                std::printf("explicit Euler, dt = 1.2x CFL limit: ||u|| = %.3e  (unstable)\n",
                            unorm);
            }
        }

        // (b) backward Euler at 50x the limit: stable, relaxing.
        TsConfig cfg;
        HeatSolver probe(da, cfg);
        cfg.dt = 20.0 * probe.explicit_stability_limit();
        cfg.ksp = pk::KspConfig{1e-8, 1e-50, 2000};
        HeatSolver heat(da, cfg);
        Vec u = da->create_global();
        if (root) std::printf("\nbackward Euler, dt = 20x CFL limit:\n");
        for (int chunk = 0; chunk < 5; ++chunk) {
            const int cg_its = heat.advance(u, 20, &f);
            const double unorm = u.norm2();  // collective: all ranks call it
            if (root) {
                std::printf("  t = %6.3f   ||u|| = %9.4f   (inner CG its: %d)\n", heat.time(),
                            unorm, cg_its);
            }
        }

        // (c) compare against the steady state -Δu = f.
        pk::LaplacianOp A(da);
        Vec steady = da->create_global();
        auto res = pk::cg(A, f, steady, pk::KspConfig{1e-10, 1e-50, 5000});
        Vec diff = u.clone_empty();
        diff.waxpy_diff(u, steady);
        const double err = diff.norm_inf();      // collectives: all ranks
        const double ref = steady.norm_inf();
        if (root) {
            std::printf("\nsteady-state check: CG converged=%s, ||u(T) - u_steady||_inf = "
                        "%.3e (relative %.2e)\n",
                        res.converged ? "yes" : "no", err, err / ref);
        }
    });
    return 0;
}

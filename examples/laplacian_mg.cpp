// The paper's §5.5 application in miniature: a 3-D Laplacian solved with a
// three-level geometric multigrid on a distributed 33^3 grid, run once per
// communication configuration:
//
//   hand-tuned          — explicit pack/send scatters (PETSc's default),
//   datatype-baseline   — derived datatypes + round-robin Alltoallw +
//                         single-context pack engine,
//   datatype-optimized  — derived datatypes + binned Alltoallw +
//                         dual-context pack engine.
//
// All three must converge identically; the point of the example is that an
// entire PDE solver can be re-pointed at a different MPI datatype/collective
// strategy with two configuration fields.
#include <cstdio>

#include "bench/common.hpp"
#include "petsckit/mg.hpp"

using namespace nncomm;
using pk::GridSize;
using pk::MGConfig;
using pk::MGSolver;
using pk::ScatterBackend;
using pk::Vec;

int main() {
    constexpr int kRanks = 4;

    struct Config {
        const char* name;
        ScatterBackend backend;
        coll::AlltoallwAlgo algo;
        dt::EngineKind engine;
    };
    const Config configs[] = {
        {"hand-tuned", ScatterBackend::HandTuned, coll::AlltoallwAlgo::Binned,
         dt::EngineKind::DualContext},
        {"datatype-baseline", ScatterBackend::DatatypeBaseline,
         coll::AlltoallwAlgo::RoundRobin, dt::EngineKind::SingleContext},
        {"datatype-optimized", ScatterBackend::DatatypeOptimized, coll::AlltoallwAlgo::Binned,
         dt::EngineKind::DualContext},
    };

    std::printf("3-D Laplacian multigrid solver, 33^3 grid, 3 levels, %d ranks\n\n", kRanks);
    for (const Config& cfgdef : configs) {
        rt::World world(kRanks);
        double residual = 0.0;
        int iterations = 0;
        double elapsed_ms = 0.0;
        world.run([&](rt::Comm& comm) {
            comm.set_engine(cfgdef.engine);
            MGConfig cfg;
            cfg.levels = 3;
            cfg.scatter_backend = cfgdef.backend;
            cfg.coll.alltoallw_algo = cfgdef.algo;
            MGSolver mg(comm, 3, GridSize{33, 33, 33}, cfg);

            Vec b = mg.fine_dmda().create_global();
            pk::fill_rhs_constant(mg.fine_dmda(), b);
            Vec x = b.clone_empty();

            benchutil::Stopwatch sw;
            auto result = mg.solve(b, x, 1e-8, 40);
            if (comm.rank() == 0) {
                elapsed_ms = sw.ms();
                residual = result.residual_norm;
                iterations = result.iterations;
            }
        });
        std::printf("%-20s  V-cycles: %2d   final residual: %.3e   wall: %7.1f ms\n",
                    cfgdef.name, iterations, residual, elapsed_ms);
    }
    std::printf("\nAll three configurations solve the same system; the paper's Figure 17\n"
                "measures how their communication costs diverge at scale (see\n"
                "bench_fig17_mgsolver for the 4..128-process reproduction).\n");
    return 0;
}

// Quickstart: the three layers of nncomm in ~80 lines.
//
//   1. Describe noncontiguous data with derived datatypes and send it
//      through the threaded runtime (the engine packs it; pick baseline or
//      dual-context).
//   2. Run a nonuniform collective — Allgatherv with one outlier volume —
//      and let the outlier-aware Auto algorithm pick recursive doubling.
//   3. Read the instrumentation that the paper's figures are built from.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "coll/collectives.hpp"
#include "runtime/comm.hpp"

using namespace nncomm;

int main() {
    rt::World world(4);
    world.run([](rt::Comm& comm) {
        // ---- 1. derived datatypes ---------------------------------------
        // A column of an 8x8 matrix of doubles: 8 one-element blocks with
        // stride 8 (Figure 5 of the paper).
        constexpr std::size_t n = 8;
        auto column = dt::Datatype::vector(n, 1, n, dt::Datatype::float64());

        comm.set_engine(dt::EngineKind::DualContext);  // the paper's engine
        if (comm.rank() == 0) {
            std::vector<double> matrix(n * n);
            std::iota(matrix.begin(), matrix.end(), 0.0);
            comm.send(matrix.data(), 1, column, /*dest=*/1, /*tag=*/0);
        } else if (comm.rank() == 1) {
            std::vector<double> col(n);
            comm.recv(col.data(), n * 8, dt::Datatype::byte(), 0, 0);
            std::printf("[rank 1] received column 0: %.0f %.0f %.0f ... %.0f\n", col[0],
                        col[1], col[2], col[7]);
        }
        comm.barrier();

        // ---- 2. nonuniform collective -----------------------------------
        // Rank 0 contributes 1024 doubles; everyone else one double. The
        // Auto algorithm detects the outlier (Eq. 1, Floyd-Rivest k-select)
        // and avoids the ring.
        const std::size_t mine = comm.rank() == 0 ? 1024 : 1;
        std::vector<double> contribution(mine, comm.rank() + 0.5);
        std::vector<std::size_t> counts{1024, 1, 1, 1};
        std::vector<std::size_t> displs{0, 1024, 1025, 1026};
        std::vector<double> gathered(1027);
        coll::allgatherv(comm, contribution.data(), mine, dt::Datatype::float64(),
                         gathered.data(), counts, displs, dt::Datatype::float64());
        if (comm.rank() == 2) {
            std::printf("[rank 2] allgatherv: block0=%.1f block1=%.1f block3=%.1f\n",
                        gathered[0], gathered[1024], gathered[1026]);
        }
        comm.barrier();

        // ---- 3. instrumentation ------------------------------------------
        if (comm.rank() == 0) {
            const auto& ctr = comm.counters();
            std::printf("[rank 0] engine stats: %llu bytes packed, %llu look-ahead blocks, "
                        "%llu re-searches\n",
                        static_cast<unsigned long long>(ctr.bytes_packed),
                        static_cast<unsigned long long>(ctr.lookahead_blocks),
                        static_cast<unsigned long long>(ctr.search_events));
        }
    });
    std::printf("quickstart done.\n");
    return 0;
}

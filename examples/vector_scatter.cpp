// The paper's §5.4 vector-scatter benchmark in miniature, with engine
// instrumentation: each process scatters the strided elements of its
// portion of one distributed vector into another process's portion of a
// second vector, through all three backends, printing the engine counters
// that explain the performance differences (re-search events for the
// baseline, bounded look-ahead for the optimized engine).
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "petsckit/scatter.hpp"

using namespace nncomm;
using pk::Index;
using pk::IndexSet;
using pk::ScatterBackend;
using pk::Vec;
using pk::VecScatter;

int main() {
    constexpr int kRanks = 4;
    constexpr Index kElems = 4096;  // scattered doubles per process

    rt::World world(kRanks);
    world.run([&](rt::Comm& comm) {
        // First grid: 2*kElems doubles per process (we scatter the
        // even-offset half); second grid: kElems per process.
        Vec src(comm, 2 * kElems * kRanks);
        Vec dst(comm, kElems * kRanks);
        for (Index i = 0; i < src.local_size(); ++i) {
            src.data()[i] = static_cast<double>(src.range().begin + i);
        }

        std::vector<Index> from, to;
        for (int r = 0; r < kRanks; ++r) {
            for (Index j = 0; j < kElems; ++j) {
                from.push_back(r * 2 * kElems + 2 * j);               // strided source
                to.push_back(((r + 1) % kRanks) * kElems + j);        // next rank's portion
            }
        }
        VecScatter scatter(src, IndexSet::general(from), dst, IndexSet::general(to));

        if (comm.rank() == 0) {
            std::printf("scatter plan: %llu bytes to rank 1 as %llu noncontiguous blocks\n\n",
                        static_cast<unsigned long long>(scatter.send_bytes()[1]),
                        static_cast<unsigned long long>(scatter.send_blocks()[1]));
        }

        for (auto backend : {ScatterBackend::HandTuned, ScatterBackend::DatatypeBaseline,
                             ScatterBackend::DatatypeOptimized}) {
            // Make the engine pipeline visibly chunk so the baseline's
            // re-search shows up even at this miniature size.
            dt::EngineConfig ecfg;
            ecfg.pipeline_chunk = 4096;
            comm.set_engine_config(ecfg);
            comm.reset_stats();

            benchutil::Stopwatch sw;
            for (int iter = 0; iter < 50; ++iter) scatter.execute(src, dst, backend);
            const double ms = sw.ms();

            // Verify: dst[j] on this rank came from the previous rank.
            const int prev = (comm.rank() + kRanks - 1) % kRanks;
            bool ok = true;
            for (Index j = 0; j < kElems; ++j) {
                const double expect = static_cast<double>(prev * 2 * kElems + 2 * j);
                if (dst.data()[j] != expect) ok = false;
            }

            comm.barrier();
            if (comm.rank() == 0) {
                const auto& ctr = comm.counters();
                std::printf("%-20s  %7.2f ms   correct: %-3s  re-searches: %llu   "
                            "searched blocks: %llu\n",
                            pk::scatter_backend_name(backend), ms, ok ? "yes" : "NO",
                            static_cast<unsigned long long>(ctr.search_events),
                            static_cast<unsigned long long>(ctr.search_blocks_visited));
            }
            comm.barrier();
        }
    });
    return 0;
}

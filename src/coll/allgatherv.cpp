// MPI_Allgatherv with selectable algorithms (paper §4.2.1).
#include <algorithm>
#include <bit>
#include <numeric>

#include "coll/collectives.hpp"
#include "coll/util.hpp"

namespace nncomm::coll {

namespace {

constexpr int kTagBase = rt::kInternalTagBase + 0x100;

struct GathervArgs {
    rt::Comm* comm;
    void* recvbuf;
    std::span<const std::size_t> recvcounts;
    std::span<const std::size_t> displs;
    const dt::Datatype* recvtype;
    int tag_base;  ///< kTagBase shifted into this invocation's epoch lane
};

std::byte* block_ptr(const GathervArgs& a, int b) {
    return static_cast<std::byte*>(a.recvbuf) +
           static_cast<std::ptrdiff_t>(a.displs[static_cast<std::size_t>(b)]) *
               a.recvtype->extent();
}

std::size_t block_count(const GathervArgs& a, int b) {
    return a.recvcounts[static_cast<std::size_t>(b)];
}

// Volume hint for one phase: the algorithm knows exactly how many bytes a
// step moves, so bulk steps ride the zero-copy rendezvous path (the peer's
// sendrecv_i posts its receive before sending) and small latency-bound
// steps stay eager without consulting the size heuristic per message.
rt::Protocol phase_protocol(const rt::Comm& comm, std::size_t bytes) {
    return bytes >= comm.rendezvous_threshold() ? rt::Protocol::Rendezvous
                                                : rt::Protocol::Eager;
}

// Ring algorithm: N-1 steps; at step s each rank forwards the block it
// received in the previous step. One outlier-sized block travels the whole
// ring sequentially — the behaviour of the paper's Figure 8.
void allgatherv_ring(const GathervArgs& a) {
    rt::Comm& comm = *a.comm;
    const int n = comm.size();
    const int rank = comm.rank();
    const int right = (rank + 1) % n;
    const int left = (rank + n - 1) % n;
    for (int s = 0; s < n - 1; ++s) {
        const int send_block = (rank - s + n) % n;
        const int recv_block = (rank - s - 1 + n) % n;
        comm.sendrecv_i(block_ptr(a, send_block), block_count(a, send_block), *a.recvtype,
                        right, a.tag_base + s, block_ptr(a, recv_block),
                        block_count(a, recv_block), *a.recvtype, left, a.tag_base + s,
                        phase_protocol(comm, block_count(a, send_block) * a.recvtype->size()));
    }
}

// Recursive doubling (power-of-two ranks): log2 N phases, each rank
// exchanging its aligned group of blocks with its partner's group. An
// outlier block propagates along a binomial tree instead of a ring.
void allgatherv_recursive_doubling(const GathervArgs& a) {
    rt::Comm& comm = *a.comm;
    const int n = comm.size();
    const int rank = comm.rank();
    NNCOMM_CHECK_MSG((n & (n - 1)) == 0, "recursive doubling needs power-of-two ranks");
    int phase = 0;
    for (int mask = 1; mask < n; mask <<= 1, ++phase) {
        const int partner = rank ^ mask;
        const int my_first = rank & ~(mask - 1);
        const int peer_first = partner & ~(mask - 1);
        auto send_type =
            detail::block_range_type(a.recvcounts, a.displs, *a.recvtype, my_first, mask);
        auto recv_type =
            detail::block_range_type(a.recvcounts, a.displs, *a.recvtype, peer_first, mask);
        comm.sendrecv_i(a.recvbuf, 1, send_type, partner, a.tag_base + 0x40 + phase,
                        a.recvbuf, 1, recv_type, partner, a.tag_base + 0x40 + phase,
                        phase_protocol(comm, send_type.size()));
    }
}

// Dissemination (any rank count): ceil(log2 N) phases; in phase p rank i
// sends its newest min(2^p, N - 2^p) blocks to (i + 2^p) mod N and receives
// the matching range from (i - 2^p) mod N.
void allgatherv_dissemination(const GathervArgs& a) {
    rt::Comm& comm = *a.comm;
    const int n = comm.size();
    const int rank = comm.rank();
    int phase = 0;
    for (int step = 1; step < n; step <<= 1, ++phase) {
        const int cnt = std::min(step, n - step);
        const int to = (rank + step) % n;
        const int from = (rank - step + n) % n;
        auto send_type =
            detail::block_range_type(a.recvcounts, a.displs, *a.recvtype, rank - cnt + 1, cnt);
        auto recv_type = detail::block_range_type(a.recvcounts, a.displs, *a.recvtype,
                                                  rank - step - cnt + 1, cnt);
        comm.sendrecv_i(a.recvbuf, 1, send_type, to, a.tag_base + 0x80 + phase, a.recvbuf, 1,
                        recv_type, from, a.tag_base + 0x80 + phase,
                        phase_protocol(comm, send_type.size()));
    }
}

}  // namespace

void allgatherv(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
                const dt::Datatype& sendtype, void* recvbuf,
                std::span<const std::size_t> recvcounts, std::span<const std::size_t> displs,
                const dt::Datatype& recvtype, const CollConfig& config) {
    const int n = comm.size();
    const int rank = comm.rank();
    NNCOMM_CHECK_MSG(recvcounts.size() == static_cast<std::size_t>(n) &&
                         displs.size() == static_cast<std::size_t>(n),
                     "allgatherv: recvcounts/displs must have one entry per rank");
    NNCOMM_CHECK_MSG(sendcount * sendtype.size() ==
                         recvcounts[static_cast<std::size_t>(rank)] * recvtype.size(),
                     "allgatherv: send size differs from this rank's recv block");

    // Phase tags are folded into this invocation's epoch lane so that
    // back-to-back allgatherv calls can never alias under asynchronous or
    // reordered delivery.
    GathervArgs a{&comm,    recvbuf,
                  recvcounts, displs,
                  &recvtype, rt::epoch_tag(kTagBase, comm.next_collective_epoch())};

    // Place the local contribution first; every algorithm forwards out of
    // recvbuf.
    detail::copy_typed(sendbuf, sendcount, sendtype, block_ptr(a, rank), block_count(a, rank),
                       recvtype);
    if (n == 1) return;

    AllgathervAlgo algo = config.allgatherv_algo;
    if (algo == AllgathervAlgo::Auto) {
        // The paper's selection: compute the communication-volume set
        // (available at every rank by definition of the operation), run the
        // Eq. 1 outlier analysis, and avoid the ring when the set is
        // nonuniform.
        std::vector<std::uint64_t> volumes(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            volumes[static_cast<std::size_t>(i)] =
                static_cast<std::uint64_t>(recvcounts[static_cast<std::size_t>(i)]) *
                recvtype.size();
        }
        const AllgathervPolicy policy{config.outlier, config.long_msg_total};
        const bool pow2 = (n & (n - 1)) == 0;
        if (allgatherv_use_ring(volumes, policy)) {
            algo = AllgathervAlgo::Ring;
        } else {
            algo = pow2 ? AllgathervAlgo::RecursiveDoubling : AllgathervAlgo::Dissemination;
        }
    }

    switch (algo) {
        case AllgathervAlgo::Ring:
            allgatherv_ring(a);
            break;
        case AllgathervAlgo::RecursiveDoubling:
            allgatherv_recursive_doubling(a);
            break;
        case AllgathervAlgo::Dissemination:
            allgatherv_dissemination(a);
            break;
        case AllgathervAlgo::Auto:
            break;  // unreachable
    }
}

void allgather(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
               const dt::Datatype& sendtype, void* recvbuf, std::size_t recvcount,
               const dt::Datatype& recvtype, const CollConfig& config) {
    const auto n = static_cast<std::size_t>(comm.size());
    std::vector<std::size_t> counts(n, recvcount);
    std::vector<std::size_t> displs(n);
    for (std::size_t i = 0; i < n; ++i) displs[i] = i * recvcount;
    allgatherv(comm, sendbuf, sendcount, sendtype, recvbuf, counts, displs, recvtype, config);
}

}  // namespace nncomm::coll

// MPI_Allgatherv with selectable algorithms (paper §4.2.1).
//
// The algorithms themselves (ring, recursive doubling, dissemination and
// the Eq. 1 Auto selection) live in schedule.cpp as Schedule builders; the
// blocking entry point here is a build + start + wait wrapper around
// iallgatherv and produces byte-identical results.
#include <vector>

#include "coll/collectives.hpp"
#include "coll/schedule.hpp"

namespace nncomm::coll {

void allgatherv(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
                const dt::Datatype& sendtype, void* recvbuf,
                std::span<const std::size_t> recvcounts, std::span<const std::size_t> displs,
                const dt::Datatype& recvtype, const CollConfig& config) {
    iallgatherv(comm, sendbuf, sendcount, sendtype, recvbuf, recvcounts, displs, recvtype,
                config)
        .wait();
}

void allgather(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
               const dt::Datatype& sendtype, void* recvbuf, std::size_t recvcount,
               const dt::Datatype& recvtype, const CollConfig& config) {
    const auto n = static_cast<std::size_t>(comm.size());
    std::vector<std::size_t> counts(n, recvcount);
    std::vector<std::size_t> displs(n);
    for (std::size_t i = 0; i < n; ++i) displs[i] = i * recvcount;
    allgatherv(comm, sendbuf, sendcount, sendtype, recvbuf, counts, displs, recvtype, config);
}

}  // namespace nncomm::coll

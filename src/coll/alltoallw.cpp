// MPI_Alltoallw with selectable algorithms (paper §4.2.2).
//
// The round-robin baseline and the paper's binned design live in
// schedule.cpp as Schedule builders; the blocking entry point here is a
// build + start + wait wrapper around ialltoallw and produces
// byte-identical results.
#include <vector>

#include "coll/collectives.hpp"
#include "coll/schedule.hpp"

namespace nncomm::coll {

void alltoallw(rt::Comm& comm, const void* sendbuf, std::span<const std::size_t> sendcounts,
               std::span<const std::ptrdiff_t> sdispls, std::span<const dt::Datatype> sendtypes,
               void* recvbuf, std::span<const std::size_t> recvcounts,
               std::span<const std::ptrdiff_t> rdispls, std::span<const dt::Datatype> recvtypes,
               const CollConfig& config) {
    ialltoallw(comm, sendbuf, sendcounts, sdispls, sendtypes, recvbuf, recvcounts, rdispls,
               recvtypes, config)
        .wait();
}

void alltoall(rt::Comm& comm, const void* sendbuf, std::size_t count, const dt::Datatype& type,
              void* recvbuf, const CollConfig& config) {
    const auto n = static_cast<std::size_t>(comm.size());
    const std::ptrdiff_t slot = static_cast<std::ptrdiff_t>(count) * type.extent();
    std::vector<std::size_t> counts(n, count);
    std::vector<std::ptrdiff_t> displs(n);
    std::vector<dt::Datatype> types(n, type);
    for (std::size_t i = 0; i < n; ++i) displs[i] = static_cast<std::ptrdiff_t>(i) * slot;
    alltoallw(comm, sendbuf, counts, displs, types, recvbuf, counts, displs, types, config);
}

}  // namespace nncomm::coll

// MPI_Alltoallw with selectable algorithms (paper §4.2.2).
#include <algorithm>
#include <numeric>
#include <vector>

#include "coll/collectives.hpp"
#include "coll/util.hpp"

namespace nncomm::coll {

namespace {

constexpr int kTagBase = rt::kInternalTagBase + 0x200;

// Baseline: blocking pairwise exchange with EVERY rank in round-robin
// order, including zero-byte messages. Each step synchronizes the pair, so
// zero-volume peers still cost a round trip, and a large noncontiguous
// message to an early peer delays the packing for every later peer.
void alltoallw_round_robin(rt::Comm& comm, const void* sendbuf,
                           std::span<const std::size_t> sendcounts,
                           std::span<const std::ptrdiff_t> sdispls,
                           std::span<const dt::Datatype> sendtypes, void* recvbuf,
                           std::span<const std::size_t> recvcounts,
                           std::span<const std::ptrdiff_t> rdispls,
                           std::span<const dt::Datatype> recvtypes, int epoch) {
    const int n = comm.size();
    const int rank = comm.rank();
    const int tag_base = rt::epoch_tag(kTagBase, epoch);
    for (int i = 0; i < n; ++i) {
        const int dst = (rank + i) % n;
        const int src = (rank - i + n) % n;
        const auto d = static_cast<std::size_t>(dst);
        const auto s = static_cast<std::size_t>(src);
        const std::byte* sp = static_cast<const std::byte*>(sendbuf) + sdispls[d];
        std::byte* rp = static_cast<std::byte*>(recvbuf) + rdispls[s];
        if (i == 0) {
            detail::copy_typed(sp, sendcounts[d], sendtypes[d], rp, recvcounts[s],
                               recvtypes[s]);
            continue;
        }
        comm.sendrecv_i(sp, sendcounts[d], sendtypes[d], dst, tag_base + i, rp, recvcounts[s],
                        recvtypes[s], src, tag_base + i);
    }
}

// The paper's binned design: peers are divided into zero / small / large
// volume bins. Zero-volume peers are exempted entirely (no synchronizing
// empty message); small-volume sends are processed (packed) before large
// ones so cheap peers are not delayed behind expensive noncontiguous
// packing.
void alltoallw_binned(rt::Comm& comm, const void* sendbuf,
                      std::span<const std::size_t> sendcounts,
                      std::span<const std::ptrdiff_t> sdispls,
                      std::span<const dt::Datatype> sendtypes, void* recvbuf,
                      std::span<const std::size_t> recvcounts,
                      std::span<const std::ptrdiff_t> rdispls,
                      std::span<const dt::Datatype> recvtypes, const CollConfig& config,
                      int epoch) {
    const int n = comm.size();
    const int rank = comm.rank();
    // One tag per invocation: sends are fire-and-forget nonblocking, so a
    // straggler from a previous binned call can still be in flight when the
    // next call posts its receives — the epoch keeps them from aliasing.
    const int tag = rt::epoch_tag(kTagBase + 0x80, epoch);

    // Post all nonzero receives up front.
    std::vector<rt::Request> recv_reqs;
    recv_reqs.reserve(static_cast<std::size_t>(n));
    for (int src = 0; src < n; ++src) {
        if (src == rank) continue;
        const auto s = static_cast<std::size_t>(src);
        if (recvcounts[s] * recvtypes[s].size() == 0) continue;
        std::byte* rp = static_cast<std::byte*>(recvbuf) + rdispls[s];
        recv_reqs.push_back(comm.irecv_i(rp, recvcounts[s], recvtypes[s], src, tag));
    }

    // Local exchange.
    {
        const auto r = static_cast<std::size_t>(rank);
        if (sendcounts[r] * sendtypes[r].size() > 0) {
            detail::copy_typed(static_cast<const std::byte*>(sendbuf) + sdispls[r],
                               sendcounts[r], sendtypes[r],
                               static_cast<std::byte*>(recvbuf) + rdispls[r], recvcounts[r],
                               recvtypes[r]);
        }
    }

    // Bin peers by send volume: zero (exempt), small, large. Within each
    // bin, smallest volume first, so the cheapest peers unblock earliest.
    struct Peer {
        int rank;
        std::uint64_t volume;
    };
    std::vector<Peer> small_bin, large_bin;
    for (int dst = 0; dst < n; ++dst) {
        if (dst == rank) continue;
        const auto d = static_cast<std::size_t>(dst);
        const std::uint64_t vol =
            static_cast<std::uint64_t>(sendcounts[d]) * sendtypes[d].size();
        if (vol == 0) continue;  // the zero bin: completely exempted
        if (vol < config.small_msg_threshold) small_bin.push_back({dst, vol});
        else large_bin.push_back({dst, vol});
    }
    auto by_volume = [](const Peer& a, const Peer& b) {
        return a.volume < b.volume || (a.volume == b.volume && a.rank < b.rank);
    };
    std::sort(small_bin.begin(), small_bin.end(), by_volume);
    std::sort(large_bin.begin(), large_bin.end(), by_volume);

    // The binning already separates latency-bound from bandwidth-bound
    // peers, so it doubles as the protocol decision: the small bin stays on
    // buffered eager, the large bin is hinted onto the zero-copy rendezvous
    // path (every peer posted its receives up front, so the posted-receive
    // precondition usually holds by the time the large sends fire).
    for (const Peer& p : small_bin) {
        const auto d = static_cast<std::size_t>(p.rank);
        comm.isend_i(static_cast<const std::byte*>(sendbuf) + sdispls[d], sendcounts[d],
                     sendtypes[d], p.rank, tag, rt::Protocol::Eager);
    }
    for (const Peer& p : large_bin) {
        const auto d = static_cast<std::size_t>(p.rank);
        comm.isend_i(static_cast<const std::byte*>(sendbuf) + sdispls[d], sendcounts[d],
                     sendtypes[d], p.rank, tag, rt::Protocol::Rendezvous);
    }

    comm.waitall(recv_reqs);
}

}  // namespace

void alltoallw(rt::Comm& comm, const void* sendbuf, std::span<const std::size_t> sendcounts,
               std::span<const std::ptrdiff_t> sdispls, std::span<const dt::Datatype> sendtypes,
               void* recvbuf, std::span<const std::size_t> recvcounts,
               std::span<const std::ptrdiff_t> rdispls, std::span<const dt::Datatype> recvtypes,
               const CollConfig& config) {
    const auto n = static_cast<std::size_t>(comm.size());
    NNCOMM_CHECK_MSG(sendcounts.size() == n && sdispls.size() == n && sendtypes.size() == n &&
                         recvcounts.size() == n && rdispls.size() == n && recvtypes.size() == n,
                     "alltoallw: all argument arrays must have one entry per rank");

    const int epoch = comm.next_collective_epoch();
    const AlltoallwAlgo algo = (config.alltoallw_algo == AlltoallwAlgo::Auto)
                                   ? AlltoallwAlgo::Binned
                                   : config.alltoallw_algo;
    if (algo == AlltoallwAlgo::RoundRobin) {
        alltoallw_round_robin(comm, sendbuf, sendcounts, sdispls, sendtypes, recvbuf,
                              recvcounts, rdispls, recvtypes, epoch);
    } else {
        alltoallw_binned(comm, sendbuf, sendcounts, sdispls, sendtypes, recvbuf, recvcounts,
                         rdispls, recvtypes, config, epoch);
    }
}

void alltoall(rt::Comm& comm, const void* sendbuf, std::size_t count, const dt::Datatype& type,
              void* recvbuf, const CollConfig& config) {
    const auto n = static_cast<std::size_t>(comm.size());
    const std::ptrdiff_t slot = static_cast<std::ptrdiff_t>(count) * type.extent();
    std::vector<std::size_t> counts(n, count);
    std::vector<std::ptrdiff_t> displs(n);
    std::vector<dt::Datatype> types(n, type);
    for (std::size_t i = 0; i < n; ++i) displs[i] = static_cast<std::ptrdiff_t>(i) * slot;
    alltoallw(comm, sendbuf, counts, displs, types, recvbuf, counts, displs, types, config);
}

}  // namespace nncomm::coll

// Rooted collectives: binomial broadcast, gather(v), scatter(v).
//
// The tree/fan patterns live in schedule.cpp as Schedule builders; the
// blocking entry points here are build + start + wait wrappers around the
// icoll functions and produce byte-identical results.
#include <vector>

#include "coll/collectives.hpp"
#include "coll/schedule.hpp"

namespace nncomm::coll {

void bcast(rt::Comm& comm, void* buf, std::size_t count, const dt::Datatype& type, int root) {
    ibcast(comm, buf, count, type, root).wait();
}

void gatherv(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
             const dt::Datatype& sendtype, void* recvbuf,
             std::span<const std::size_t> recvcounts, std::span<const std::size_t> displs,
             const dt::Datatype& recvtype, int root) {
    igatherv(comm, sendbuf, sendcount, sendtype, recvbuf, recvcounts, displs, recvtype, root)
        .wait();
}

void gather(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
            const dt::Datatype& sendtype, void* recvbuf, std::size_t recvcount,
            const dt::Datatype& recvtype, int root) {
    const auto n = static_cast<std::size_t>(comm.size());
    std::vector<std::size_t> counts;
    std::vector<std::size_t> displs;
    if (comm.rank() == root) {
        counts.assign(n, recvcount);
        displs.resize(n);
        for (std::size_t i = 0; i < n; ++i) displs[i] = i * recvcount;
    }
    gatherv(comm, sendbuf, sendcount, sendtype, recvbuf, counts, displs, recvtype, root);
}

void scatterv(rt::Comm& comm, const void* sendbuf, std::span<const std::size_t> sendcounts,
              std::span<const std::size_t> displs, const dt::Datatype& sendtype, void* recvbuf,
              std::size_t recvcount, const dt::Datatype& recvtype, int root) {
    iscatterv(comm, sendbuf, sendcounts, displs, sendtype, recvbuf, recvcount, recvtype, root)
        .wait();
}

}  // namespace nncomm::coll

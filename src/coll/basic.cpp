// Rooted collectives: binomial broadcast, gather(v), scatter(v).
#include "coll/collectives.hpp"
#include "coll/util.hpp"

namespace nncomm::coll {

namespace {
constexpr int kTagBcast = rt::kInternalTagBase + 0x300;
constexpr int kTagGather = rt::kInternalTagBase + 0x301;
constexpr int kTagScatter = rt::kInternalTagBase + 0x302;
}  // namespace

void bcast(rt::Comm& comm, void* buf, std::size_t count, const dt::Datatype& type, int root) {
    const int tag = rt::epoch_tag(kTagBcast, comm.next_collective_epoch());
    const int n = comm.size();
    const int rank = comm.rank();
    NNCOMM_CHECK_MSG(root >= 0 && root < n, "bcast: invalid root");
    if (n == 1) return;
    const int vrank = (rank - root + n) % n;

    // Receive once from the parent (the rank that differs in the lowest set
    // bit), then forward down the binomial tree.
    int mask = 1;
    while (mask < n) {
        if ((vrank & mask) != 0) {
            const int src = ((vrank - mask) + root) % n;
            comm.recv_i(buf, count, type, src, tag);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        if (vrank + mask < n) {
            const int dst = ((vrank + mask) + root) % n;
            comm.send_i(buf, count, type, dst, tag);
        }
        mask >>= 1;
    }
}

void gatherv(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
             const dt::Datatype& sendtype, void* recvbuf,
             std::span<const std::size_t> recvcounts, std::span<const std::size_t> displs,
             const dt::Datatype& recvtype, int root) {
    const int tag = rt::epoch_tag(kTagGather, comm.next_collective_epoch());
    const int n = comm.size();
    const int rank = comm.rank();
    NNCOMM_CHECK_MSG(root >= 0 && root < n, "gatherv: invalid root");
    if (rank != root) {
        comm.send_i(sendbuf, sendcount, sendtype, root, tag);
        return;
    }
    NNCOMM_CHECK_MSG(recvcounts.size() == static_cast<std::size_t>(n) &&
                         displs.size() == static_cast<std::size_t>(n),
                     "gatherv: root needs one count/displacement per rank");
    std::vector<rt::Request> reqs;
    reqs.reserve(static_cast<std::size_t>(n - 1));
    for (int i = 0; i < n; ++i) {
        const auto s = static_cast<std::size_t>(i);
        std::byte* dst = static_cast<std::byte*>(recvbuf) +
                         static_cast<std::ptrdiff_t>(displs[s]) * recvtype.extent();
        if (i == rank) {
            detail::copy_typed(sendbuf, sendcount, sendtype, dst, recvcounts[s], recvtype);
        } else {
            reqs.push_back(comm.irecv_i(dst, recvcounts[s], recvtype, i, tag));
        }
    }
    comm.waitall(reqs);
}

void gather(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
            const dt::Datatype& sendtype, void* recvbuf, std::size_t recvcount,
            const dt::Datatype& recvtype, int root) {
    const auto n = static_cast<std::size_t>(comm.size());
    std::vector<std::size_t> counts;
    std::vector<std::size_t> displs;
    if (comm.rank() == root) {
        counts.assign(n, recvcount);
        displs.resize(n);
        for (std::size_t i = 0; i < n; ++i) displs[i] = i * recvcount;
    }
    gatherv(comm, sendbuf, sendcount, sendtype, recvbuf, counts, displs, recvtype, root);
}

void scatterv(rt::Comm& comm, const void* sendbuf, std::span<const std::size_t> sendcounts,
              std::span<const std::size_t> displs, const dt::Datatype& sendtype, void* recvbuf,
              std::size_t recvcount, const dt::Datatype& recvtype, int root) {
    const int tag = rt::epoch_tag(kTagScatter, comm.next_collective_epoch());
    const int n = comm.size();
    const int rank = comm.rank();
    NNCOMM_CHECK_MSG(root >= 0 && root < n, "scatterv: invalid root");
    if (rank != root) {
        comm.recv_i(recvbuf, recvcount, recvtype, root, tag);
        return;
    }
    NNCOMM_CHECK_MSG(sendcounts.size() == static_cast<std::size_t>(n) &&
                         displs.size() == static_cast<std::size_t>(n),
                     "scatterv: root needs one count/displacement per rank");
    for (int i = 0; i < n; ++i) {
        const auto s = static_cast<std::size_t>(i);
        const std::byte* src = static_cast<const std::byte*>(sendbuf) +
                               static_cast<std::ptrdiff_t>(displs[s]) * sendtype.extent();
        if (i == rank) {
            detail::copy_typed(src, sendcounts[s], sendtype, recvbuf, recvcount, recvtype);
        } else {
            comm.send_i(src, sendcounts[s], sendtype, i, tag);
        }
    }
}

}  // namespace nncomm::coll

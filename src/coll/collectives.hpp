// Collective communication operations over the threaded runtime.
//
// The two operations the paper redesigns for nonuniform communication
// volumes are here with selectable algorithms:
//
//   allgatherv — Ring (MPICH2's large-message choice; sequentializes one
//     outlier message, Fig. 8), RecursiveDoubling (power-of-two ranks,
//     Fig. 10), Dissemination (any rank count, Fig. 11), and Auto, which
//     applies the paper's Eq. 1 outlier analysis over the communication-
//     volume set (Floyd–Rivest k-select) and picks a binomial-pattern
//     algorithm when the set is nonuniform.
//
//   alltoallw — RoundRobin (the MPICH2 baseline: a blocking pairwise
//     exchange with every rank, including zero-byte messages, adding a
//     synchronization step per peer), Binned (the paper's §4.2.2 design:
//     zero-volume peers are exempted entirely, small-message bins are
//     packed/sent before large ones), and Auto (Binned).
//
// The remaining operations (bcast, reduce, allreduce, gather(v),
// scatter(v), allgather, alltoall) complete the substrate the PETSc layer
// needs.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "core/outlier.hpp"
#include "runtime/comm.hpp"

namespace nncomm::coll {

enum class AllgathervAlgo {
    Auto,               ///< outlier-aware selection (the paper's design)
    Ring,               ///< MPICH2 large-message baseline
    RecursiveDoubling,  ///< power-of-two ranks only
    Dissemination,      ///< Bruck-style, any rank count
};

enum class AlltoallwAlgo {
    Auto,        ///< Binned
    RoundRobin,  ///< MPICH2 baseline incl. zero-size synchronization
    Binned,      ///< zero/small/large bins, small processed first
};

/// Tunables shared by the nonuniform-aware collectives.
struct CollConfig {
    AllgathervAlgo allgatherv_algo = AllgathervAlgo::Auto;
    AlltoallwAlgo alltoallw_algo = AlltoallwAlgo::Auto;
    /// Eq. 1 parameters for Auto allgatherv.
    OutlierConfig outlier{};
    /// Uniform-volume heuristic (mirrors MPICH2): total payload at or above
    /// this uses Ring, below it RecursiveDoubling/Dissemination.
    std::size_t long_msg_total = 512 * 1024;
    /// Alltoallw Binned: send volumes strictly below this are "small".
    std::size_t small_msg_threshold = 4 * 1024;
    /// Persistent-plan transport (AlltoallwPlan / VecScatter). Auto lowers
    /// onto one-sided RMA windows whenever rt::rma_selection_enabled();
    /// Rma forces windows (degrading to two-sided if selection is compiled
    /// out); Eager/Rendezvous force the two-sided schedule graph. The
    /// choice must be uniform across ranks — it is a pure function of this
    /// config and the build/env gates, never of local traffic.
    rt::Protocol persistent_protocol = rt::Protocol::Auto;
};

// ---------------------------------------------------------------------------
// allgatherv

/// Every rank contributes `sendcount` elements of `sendtype`; rank i's
/// contribution lands at element offset `displs[i]` (in units of recvtype
/// extent) of every rank's `recvbuf`; `recvcounts[i]` gives its length in
/// recvtype elements. All ranks must pass identical recvcounts/displs.
void allgatherv(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
                const dt::Datatype& sendtype, void* recvbuf,
                std::span<const std::size_t> recvcounts, std::span<const std::size_t> displs,
                const dt::Datatype& recvtype, const CollConfig& config = {});

/// Uniform-count variant.
void allgather(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
               const dt::Datatype& sendtype, void* recvbuf, std::size_t recvcount,
               const dt::Datatype& recvtype, const CollConfig& config = {});

// ---------------------------------------------------------------------------
// alltoallw

/// Fully general all-to-all: rank r sends `sendcounts[i]` instances of
/// `sendtypes[i]` starting at byte `sdispls[i]` of sendbuf to rank i, and
/// receives `recvcounts[i]` instances of `recvtypes[i]` into byte
/// `rdispls[i]` of recvbuf. Zero counts mean no transfer (the baseline
/// still synchronizes on them; Binned exempts them).
void alltoallw(rt::Comm& comm, const void* sendbuf, std::span<const std::size_t> sendcounts,
               std::span<const std::ptrdiff_t> sdispls, std::span<const dt::Datatype> sendtypes,
               void* recvbuf, std::span<const std::size_t> recvcounts,
               std::span<const std::ptrdiff_t> rdispls, std::span<const dt::Datatype> recvtypes,
               const CollConfig& config = {});

/// Uniform all-to-all of contiguous blocks (`count` elements of `type` per
/// peer in rank order).
void alltoall(rt::Comm& comm, const void* sendbuf, std::size_t count, const dt::Datatype& type,
              void* recvbuf, const CollConfig& config = {});

// ---------------------------------------------------------------------------
// rooted collectives and reductions

/// Binomial-tree broadcast of `count` instances of `type`.
void bcast(rt::Comm& comm, void* buf, std::size_t count, const dt::Datatype& type, int root);

/// Rank i's `sendcount` elements land at recvbuf + displs[i] * extent on
/// the root. recvcounts/displs may be empty on non-root ranks.
void gatherv(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
             const dt::Datatype& sendtype, void* recvbuf,
             std::span<const std::size_t> recvcounts, std::span<const std::size_t> displs,
             const dt::Datatype& recvtype, int root);

void gather(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
            const dt::Datatype& sendtype, void* recvbuf, std::size_t recvcount,
            const dt::Datatype& recvtype, int root);

/// Root scatters sendcounts[i] elements from sendbuf + displs[i] * extent
/// to rank i.
void scatterv(rt::Comm& comm, const void* sendbuf, std::span<const std::size_t> sendcounts,
              std::span<const std::size_t> displs, const dt::Datatype& sendtype, void* recvbuf,
              std::size_t recvcount, const dt::Datatype& recvtype, int root);

enum class ReduceOp { Sum, Max, Min };

namespace detail {
template <typename T>
void apply_op(ReduceOp op, T* acc, const T* in, std::size_t n) {
    switch (op) {
        case ReduceOp::Sum:
            for (std::size_t i = 0; i < n; ++i) acc[i] += in[i];
            break;
        case ReduceOp::Max:
            for (std::size_t i = 0; i < n; ++i) acc[i] = acc[i] < in[i] ? in[i] : acc[i];
            break;
        case ReduceOp::Min:
            for (std::size_t i = 0; i < n; ++i) acc[i] = in[i] < acc[i] ? in[i] : acc[i];
            break;
    }
}
}  // namespace detail

/// Binomial-tree reduction of `n` values to the root's buffer (in place on
/// every rank; non-root buffers are used as scratch and keep their local
/// contribution semantics undefined afterwards on non-roots).
template <typename T>
void reduce(rt::Comm& comm, T* data, std::size_t n, ReduceOp op, int root) {
    static_assert(std::is_arithmetic_v<T>);
    const int tag = rt::epoch_tag(rt::kInternalTagBase + 1, comm.next_collective_epoch());
    const int size = comm.size();
    // Rotate ranks so the tree is rooted at `root`.
    const int vrank = (comm.rank() - root + size) % size;
    std::vector<T> incoming(n);
    int mask = 1;
    while (mask < size) {
        if ((vrank & mask) != 0) {
            const int dst = ((vrank & ~mask) + root) % size;
            comm.send_i(data, n * sizeof(T), dt::Datatype::byte(), dst, tag);
            return;  // this rank's subtree is folded in; done
        }
        const int vsrc = vrank | mask;
        if (vsrc < size) {
            const int src = (vsrc + root) % size;
            comm.recv_i(incoming.data(), n * sizeof(T), dt::Datatype::byte(), src, tag);
            detail::apply_op(op, data, incoming.data(), n);
        }
        mask <<= 1;
    }
}

/// Reduce-to-zero followed by broadcast; result identical on all ranks.
template <typename T>
void allreduce(rt::Comm& comm, T* data, std::size_t n, ReduceOp op) {
    reduce(comm, data, n, op, 0);
    bcast(comm, data, n * sizeof(T), dt::Datatype::byte(), 0);
}

template <typename T>
T allreduce_one(rt::Comm& comm, T value, ReduceOp op) {
    allreduce(comm, &value, 1, op);
    return value;
}

/// Inclusive prefix reduction (MPI_Scan): on return, rank r holds
/// op(data_0, ..., data_r). Hillis–Steele recursive doubling, log2 N
/// rounds.
template <typename T>
void scan(rt::Comm& comm, T* data, std::size_t n, ReduceOp op) {
    static_assert(std::is_arithmetic_v<T>);
    const int tag_base = rt::epoch_tag(rt::kInternalTagBase + 0x400, comm.next_collective_epoch());
    const int size = comm.size();
    const int rank = comm.rank();
    std::vector<T> incoming(n);
    int round = 0;
    for (int dist = 1; dist < size; dist <<= 1, ++round) {
        // Send the current running value before folding this round's input.
        if (rank + dist < size) {
            comm.send_i(data, n * sizeof(T), dt::Datatype::byte(), rank + dist,
                        tag_base + round);
        }
        if (rank >= dist) {
            comm.recv_i(incoming.data(), n * sizeof(T), dt::Datatype::byte(), rank - dist,
                        tag_base + round);
            detail::apply_op(op, data, incoming.data(), n);
        }
    }
}

/// Exclusive prefix reduction (MPI_Exscan): rank r holds
/// op(data_0, ..., data_{r-1}); rank 0's buffer is set to `identity`.
template <typename T>
void exscan(rt::Comm& comm, T* data, std::size_t n, ReduceOp op, T identity = T{}) {
    scan(comm, data, n, op);
    // Shift the inclusive results one rank to the right.
    const int tag = rt::epoch_tag(rt::kInternalTagBase + 0x420, comm.next_collective_epoch());
    const int rank = comm.rank();
    const int size = comm.size();
    std::vector<T> mine(data, data + n);
    if (rank + 1 < size) {
        comm.send_i(mine.data(), n * sizeof(T), dt::Datatype::byte(), rank + 1, tag);
    }
    if (rank > 0) {
        comm.recv_i(data, n * sizeof(T), dt::Datatype::byte(), rank - 1, tag);
    } else {
        for (std::size_t i = 0; i < n; ++i) data[i] = identity;
    }
}

}  // namespace nncomm::coll

#include "coll/persistent.hpp"

#include <algorithm>
#include <cstring>

#include "datatype/pack.hpp"

namespace nncomm::coll {

namespace {
/// Own tag space so persistent traffic can never match one-shot alltoallw
/// messages in flight on the same communicator. (0x500: the previous 0x300
/// base collided with bcast's tag.)
constexpr int kPersistentTagBase = rt::kInternalTagBase + 0x500;
/// Clear-to-send lane: zero-byte tokens receivers send once their large
/// (rendezvous-bound) receives are posted. Zero-byte messages bypass the
/// payload pool entirely, so the handshake itself allocates nothing.
constexpr int kPersistentCtsBase = rt::kInternalTagBase + 0x580;
}  // namespace

AlltoallwPlan::AlltoallwPlan(rt::Comm& comm, std::span<const std::size_t> sendcounts,
                             std::span<const std::ptrdiff_t> sdispls,
                             std::span<const dt::Datatype> sendtypes,
                             std::span<const std::size_t> recvcounts,
                             std::span<const std::ptrdiff_t> rdispls,
                             std::span<const dt::Datatype> recvtypes, const CollConfig& config,
                             dt::EngineKind engine)
    : comm_(&comm), engine_kind_(engine), engine_config_(comm.engine_config()) {
    const auto n = static_cast<std::size_t>(comm.size());
    NNCOMM_CHECK_MSG(sendcounts.size() == n && sdispls.size() == n && sendtypes.size() == n &&
                         recvcounts.size() == n && rdispls.size() == n && recvtypes.size() == n,
                     "AlltoallwPlan: all argument arrays must have one entry per rank");
    const int rank = comm.rank();

    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t svol =
            static_cast<std::uint64_t>(sendcounts[i]) * sendtypes[i].size();
        const std::uint64_t rvol =
            static_cast<std::uint64_t>(recvcounts[i]) * recvtypes[i].size();
        if (static_cast<int>(i) == rank) {
            NNCOMM_CHECK_MSG(svol == rvol, "AlltoallwPlan: self send/recv volume mismatch");
            if (svol > 0) {
                has_self_ = true;
                self_scount_ = sendcounts[i];
                self_rcount_ = recvcounts[i];
                self_sdispl_ = sdispls[i];
                self_rdispl_ = rdispls[i];
                self_stype_ = sendtypes[i];
                self_rtype_ = recvtypes[i];
                self_buf_.resize(static_cast<std::size_t>(svol));
                ++pending_setup_.scratch_allocs;
            }
            continue;
        }
        if (svol > 0) {
            SendPeer p;
            p.rank = static_cast<int>(i);
            p.count = sendcounts[i];
            p.displ = sdispls[i];
            p.type = sendtypes[i];
            p.bytes = svol;
            p.proto = svol >= comm.rendezvous_threshold() ? rt::Protocol::Rendezvous
                                                          : rt::Protocol::Eager;
            p.packbuf.resize(static_cast<std::size_t>(svol));
            ++pending_setup_.scratch_allocs;
            sends_.push_back(std::move(p));
        }
        if (rvol > 0) {
            // Matching type signatures make rvol here equal svol on the
            // source, so both ends freeze the same protocol decision —
            // provided every rank runs the same rendezvous threshold (the
            // same uniformity every collective already demands of its
            // arguments).
            recvs_.push_back(RecvPeer{static_cast<int>(i), recvcounts[i], rdispls[i],
                                      recvtypes[i],
                                      rvol >= comm.rendezvous_threshold()});
        }
    }

    // The binned schedule, frozen at plan time: zero-volume peers never
    // made it into sends_; the rest go smallest volume first so cheap
    // peers are not delayed behind expensive noncontiguous packing, with
    // the small/large boundary ordered exactly as the one-shot binned
    // algorithm orders it.
    const std::uint64_t small = config.small_msg_threshold;
    std::sort(sends_.begin(), sends_.end(), [small](const SendPeer& a, const SendPeer& b) {
        const bool as = a.bytes < small, bs = b.bytes < small;
        if (as != bs) return as;
        return a.bytes < b.bytes || (a.bytes == b.bytes && a.rank < b.rank);
    });

    recv_reqs_.reserve(recvs_.size());
}

AlltoallwPlan::~AlltoallwPlan() = default;

void AlltoallwPlan::pack_peer(SendPeer& p, const std::byte* base, StatCounters& step,
                              PhaseTimers& step_timers) {
    const dt::PackPlan& plan = p.type.plan();
    if (plan.specialized()) {
        // Contiguous / constant-stride layouts: the compiled kernel writes
        // the persistent buffer directly — no engine, no scratch.
        PhaseScope scope(step_timers, Phase::Pack);
        plan.pack(p.type.flat(), base + p.displ, p.count, std::span<std::byte>(p.packbuf));
        ++step.plan_hits;
        step.bytes_packed += p.bytes;
        return;
    }

    // Irregular layout: a persistent engine, constructed on the first
    // execute and reset (not rebuilt) afterwards.
    if (!p.engine) {
        p.engine = dt::make_engine(engine_kind_, base + p.displ, p.type, p.count,
                                   engine_config_);
    } else {
        p.engine->reset(base + p.displ);
    }
    std::size_t off = 0;
    dt::ChunkView chunk;
    while (p.engine->next_chunk(chunk)) {
        if (chunk.dense) {
            PhaseScope scope(step_timers, Phase::Pack);
            for (const auto& [ptr, len] : chunk.iov) {
                std::memcpy(p.packbuf.data() + off, ptr, len);
                off += len;
            }
        } else {
            std::memcpy(p.packbuf.data() + off, chunk.packed.data(), chunk.packed.size());
            off += chunk.packed.size();
        }
    }
    NNCOMM_CHECK(off == p.packbuf.size());
    step += p.engine->counters();
    step_timers += p.engine->timers();
    p.engine->reset_stats();
}

void AlltoallwPlan::execute(const void* sendbuf, void* recvbuf) {
    // One epoch lane per execute: sends below are fire-and-forget
    // nonblocking, so a straggler from execute k can still be in flight
    // when execute k+1 posts its receives.
    const int epoch = comm_->next_collective_epoch();
    const int tag = rt::epoch_tag(kPersistentTagBase, epoch);
    const int cts_tag = rt::epoch_tag(kPersistentCtsBase, epoch);

    // Engine-config changes between executes invalidate the persistent
    // engines (their scratch sizing depends on the pipeline chunk); treat
    // it as a re-plan of the engines only.
    if (!(comm_->engine_config() == engine_config_)) {
        engine_config_ = comm_->engine_config();
        for (SendPeer& p : sends_) p.engine.reset();
    }

    StatCounters step = pending_setup_;
    pending_setup_ = StatCounters{};
    PhaseTimers step_timers;
    ++step.persistent_executes;

    // Post all receives up front. Messages arrive as packed bytes; the
    // typed receive unpacks them through the layout's compiled plan (or
    // the cursor for irregular layouts) in Comm::wait.
    recv_reqs_.clear();
    for (const RecvPeer& p : recvs_) {
        recv_reqs_.push_back(comm_->irecv_i(static_cast<std::byte*>(recvbuf) + p.displ,
                                            p.count, p.type, p.rank, tag));
    }

    // Release the rendezvous-bound sources: this rank's receives are all
    // posted now, and the zero-byte clear-to-send proves it to the peer,
    // so the matching payload send always takes the single-copy path —
    // deterministically, not just when it wins the posting race.
    std::byte cts_token{};
    for (const RecvPeer& p : recvs_) {
        if (p.cts) {
            comm_->send_i(&cts_token, 0, dt::Datatype::byte(), p.rank, cts_tag);
        }
    }

    // Self exchange through the persistent staging buffer.
    if (has_self_) {
        PhaseScope scope(step_timers, Phase::Pack);
        dt::pack_into(static_cast<const std::byte*>(sendbuf) + self_sdispl_, self_stype_,
                      self_scount_, std::span<std::byte>(self_buf_));
        dt::unpack_from(static_cast<std::byte*>(recvbuf) + self_rdispl_, self_rtype_,
                        self_rcount_, std::span<const std::byte>(self_buf_));
    }

    // Sends in the precomputed binned order. The wire sees contiguous
    // bytes, so the runtime's send path is a single copy — every per-send
    // engine construction the one-shot path would perform is gone. The
    // sends are nonblocking fire-and-forget (the payload is captured at
    // enqueue, so the persistent packbuf is immediately reusable); only the
    // receives gate completion. Eager peers go first: they never wait, and
    // every rank has already broadcast its clear-to-sends above, so the
    // blocking token receives in the second pass cannot deadlock.
    for (SendPeer& p : sends_) {
        if (p.proto == rt::Protocol::Rendezvous) continue;
        pack_peer(p, static_cast<const std::byte*>(sendbuf), step, step_timers);
        comm_->isend_i(p.packbuf.data(), static_cast<std::size_t>(p.bytes),
                       dt::Datatype::byte(), p.rank, tag, p.proto);
    }
    for (SendPeer& p : sends_) {
        if (p.proto != rt::Protocol::Rendezvous) continue;
        comm_->recv_i(&cts_token, 0, dt::Datatype::byte(), p.rank, cts_tag);
        pack_peer(p, static_cast<const std::byte*>(sendbuf), step, step_timers);
        comm_->isend_i(p.packbuf.data(), static_cast<std::size_t>(p.bytes),
                       dt::Datatype::byte(), p.rank, tag, p.proto);
    }

    comm_->waitall(recv_reqs_);

    counters_ += step;
    comm_->merge_stats(step, step_timers);
    ++executes_;
}

}  // namespace nncomm::coll

#include "coll/persistent.hpp"

#include <algorithm>
#include <vector>

#include "runtime/protocol.hpp"

namespace nncomm::coll {

namespace {
/// Own tag space so persistent traffic can never match one-shot alltoallw
/// messages in flight on the same communicator. (0x500: the previous 0x300
/// base collided with bcast's tag.)
constexpr int kPersistentTagBase = rt::kInternalTagBase + 0x500;
/// Clear-to-send lane: zero-byte tokens receivers send once their large
/// (rendezvous-bound) receives are posted. Zero-byte messages bypass the
/// payload pool entirely, so the handshake itself allocates nothing. The
/// lane is an offset within the persistent tag space (0x500 + 0x80 keeps
/// the old wire tags bit-for-bit).
constexpr int kCtsOffset = 0x80;
/// One-sided plans exchange window offsets exactly once, at plan time, on
/// this lane (disjoint from the CTS lane; steady state then moves zero
/// control messages).
constexpr int kRmaOffsetExchange = 0x100;
/// Tune-cache marker distinguishing an RMA-available pattern from the same
/// pattern with RMA gated off ("RMA" in ASCII).
constexpr std::uint64_t kRmaSigSalt = 0x524d41;
}  // namespace

AlltoallwPlan::AlltoallwPlan(rt::Comm& comm, std::span<const std::size_t> sendcounts,
                             std::span<const std::ptrdiff_t> sdispls,
                             std::span<const dt::Datatype> sendtypes,
                             std::span<const std::size_t> recvcounts,
                             std::span<const std::ptrdiff_t> rdispls,
                             std::span<const dt::Datatype> recvtypes, const CollConfig& config,
                             dt::EngineKind engine)
    : comm_(&comm), engine_kind_(engine), engine_config_(comm.engine_config()) {
    const auto n = static_cast<std::size_t>(comm.size());
    NNCOMM_CHECK_MSG(sendcounts.size() == n && sdispls.size() == n && sendtypes.size() == n &&
                         recvcounts.size() == n && rdispls.size() == n && recvtypes.size() == n,
                     "AlltoallwPlan: all argument arrays must have one entry per rank");
    const int rank = comm.rank();

    struct SendPeer {
        int rank;
        std::size_t count;
        std::ptrdiff_t displ;
        dt::Datatype type;
        std::uint64_t bytes;
        rt::Protocol proto;  ///< volume-derived, frozen at plan time
    };
    struct RecvPeer {
        int rank;
        std::size_t count;
        std::ptrdiff_t displ;
        dt::Datatype type;
        std::uint64_t bytes;
        /// Mirror of the sender's frozen Rendezvous decision (same volume,
        /// same threshold): after posting this receive, the schedule sends
        /// the source a zero-byte clear-to-send so the payload send always
        /// finds the receive posted and the single-copy path never races.
        /// Under adaptive protocol selection the sender's learned threshold
        /// is private to its pair state, so the mirror is unavailable —
        /// every nonzero receive emits a clear-to-send instead, and eager
        /// senders consume the token without depending on it.
        bool cts;
    };
    std::vector<SendPeer> sends;
    std::vector<RecvPeer> recvs;

    bool has_self = false;
    std::size_t self_i = 0;
    std::uint64_t self_vol = 0;

    // Adaptive plans freeze their per-peer protocol choices in the
    // process-wide tune cache, keyed by the pattern signature: same
    // communicator shape, same volumes, same layouts => same frozen
    // choices for the lifetime of the process, no matter how the online
    // estimates drift between plan constructions.
    const bool adaptive = comm.adaptive_protocol_engaged();
    std::uint64_t sig = rt::proto_sig_mix(0, static_cast<std::uint64_t>(comm.context_id()));
    sig = rt::proto_sig_mix(sig, static_cast<std::uint64_t>(rank));
    sig = rt::proto_sig_mix(sig, n);
    sig = rt::proto_sig_mix(sig, comm.rendezvous_threshold());
    sig = rt::proto_sig_mix(sig, config.small_msg_threshold);

    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t svol =
            static_cast<std::uint64_t>(sendcounts[i]) * sendtypes[i].size();
        const std::uint64_t rvol =
            static_cast<std::uint64_t>(recvcounts[i]) * recvtypes[i].size();
        if (adaptive) {
            sig = rt::proto_sig_mix(sig, svol);
            sig = rt::proto_sig_mix(sig, rvol);
            if (svol > 0) sig = rt::proto_sig_mix(sig, sendtypes[i].plan().signature());
            if (rvol > 0) sig = rt::proto_sig_mix(sig, recvtypes[i].plan().signature());
        }
        if (static_cast<int>(i) == rank) {
            NNCOMM_CHECK_MSG(svol == rvol, "AlltoallwPlan: self send/recv volume mismatch");
            if (svol > 0) {
                has_self = true;
                self_i = i;
                self_vol = svol;
            }
            continue;
        }
        if (svol > 0) {
            // Boundary contract shared with try_rendezvous / phase_protocol
            // / netsim: rendezvous iff nonempty AND svol >= threshold. The
            // svol > 0 guard above supplies the nonempty half; exactly-at-
            // threshold volumes go rendezvous on every layer. Adaptive
            // plans overwrite the proto after the binned sort, from the
            // tune cache (the sort keys — bytes, rank — never depend on
            // it).
            sends.push_back({static_cast<int>(i), sendcounts[i], sdispls[i], sendtypes[i],
                             svol,
                             svol >= comm.rendezvous_threshold() ? rt::Protocol::Rendezvous
                                                                 : rt::Protocol::Eager});
        }
        if (rvol > 0) {
            // Matching type signatures make rvol here equal svol on the
            // source, so both ends freeze the same protocol decision —
            // provided every rank runs the same rendezvous threshold (the
            // same uniformity every collective already demands of its
            // arguments).
            recvs.push_back({static_cast<int>(i), recvcounts[i], rdispls[i], recvtypes[i],
                             rvol, adaptive || rvol >= comm.rendezvous_threshold()});
        }
    }

    // The binned send order, frozen at plan time: zero-volume peers never
    // made it into sends; the rest go smallest volume first so cheap peers
    // are not delayed behind expensive noncontiguous packing, with the
    // small/large boundary ordered exactly as the one-shot binned
    // algorithm orders it.
    const std::uint64_t small = config.small_msg_threshold;
    std::sort(sends.begin(), sends.end(), [small](const SendPeer& a, const SendPeer& b) {
        const bool as = a.bytes < small, bs = b.bytes < small;
        if (as != bs) return as;
        return a.bytes < b.bytes || (a.bytes == b.bytes && a.rank < b.rank);
    });
    send_peers_ = sends.size();
    recv_peers_ = recvs.size();

    // One-sided lowering decision. It MUST be uniform across ranks — the
    // closing fence is collective, and a rank with zero local traffic
    // cannot see its peers' volumes — so it is a pure function of the
    // config and the build/env gates, never of the traffic matrix.
    // Protocol::Eager / Rendezvous in the config force the two-sided graph.
    bool use_rma = rt::rma_selection_enabled() &&
                   (config.persistent_protocol == rt::Protocol::Auto ||
                    config.persistent_protocol == rt::Protocol::Rma);

    // Adaptive protocol resolution, after the sort so frozen entries map
    // positionally onto the binned send order. First plan with this
    // signature consults the learned per-pair thresholds and freezes the
    // outcome (first-wins); every later plan — and every re-execution —
    // adopts the frozen entry bit-for-bit, so protocol choices never change
    // under an executing pattern. An RMA-lowered pattern freezes the value
    // 2 for every peer (the salt keeps its signature disjoint from the same
    // pattern with RMA gated off), and the frozen entry governs reruns.
    if (adaptive) {
        sig = rt::proto_sig_mix(sig, use_rma ? kRmaSigSalt : 0u);
        auto& cache = rt::ProtoTuneCache::instance();
        auto frozen = cache.lookup(sig);
        if (!frozen) {
            rt::ProtoTuneCache::Entry entry;
            entry.send_rdzv.reserve(sends.size());
            entry.thresholds.reserve(sends.size());
            for (const SendPeer& p : sends) {
                const std::size_t thr = comm.effective_rendezvous_threshold(p.rank, p.type);
                entry.thresholds.push_back(thr);
                entry.send_rdzv.push_back(use_rma ? 2 : (p.bytes >= thr ? 1 : 0));
            }
            frozen = cache.freeze(sig, std::move(entry));
        }
        NNCOMM_CHECK_MSG(frozen->send_rdzv.size() == sends.size(),
                         "AlltoallwPlan: tune-cache signature collision");
        bool frozen_rma = !sends.empty();
        for (std::size_t k = 0; k < sends.size(); ++k) {
            const std::uint8_t v = frozen->send_rdzv[k];
            frozen_rma = frozen_rma && v == 2;
            sends[k].proto = v == 2   ? rt::Protocol::Rma
                             : v != 0 ? rt::Protocol::Rendezvous
                                      : rt::Protocol::Eager;
        }
        if (!sends.empty()) use_rma = frozen_rma;
    }
    rma_ = use_rma;

    if (use_rma) {
        // Window layout: one block per source peer, prefix sums of receive
        // volumes in rank order. Each source learns its offset into this
        // rank's region (and we learn ours into each destination's) in a
        // single setup-time exchange; steady state then fuses pack+put into
        // the peer region with no envelopes, no CTS, and no staging beyond
        // the self slot.
        std::vector<std::uint64_t> my_offsets(n, 0);
        std::uint64_t win_bytes = 0;
        for (const RecvPeer& p : recvs) {
            my_offsets[static_cast<std::size_t>(p.rank)] = win_bytes;
            win_bytes += p.bytes;
        }
        win_buf_.resize(static_cast<std::size_t>(win_bytes));
        win_ = rt::Win::create(comm, win_buf_.data(), win_buf_.size());

        TagSpace xspace(comm, kPersistentTagBase);
        const int xtag = xspace.tag(kRmaOffsetExchange);
        const dt::Datatype byte = dt::Datatype::byte();
        std::vector<std::uint64_t> target_offsets(n, 0);
        std::vector<rt::Request> xreqs;
        xreqs.reserve(sends.size() + recvs.size());
        for (const SendPeer& p : sends) {
            xreqs.push_back(comm.irecv_i(&target_offsets[static_cast<std::size_t>(p.rank)],
                                         sizeof(std::uint64_t), byte, p.rank, xtag));
        }
        for (const RecvPeer& p : recvs) {
            xreqs.push_back(comm.isend_i(&my_offsets[static_cast<std::size_t>(p.rank)],
                                         sizeof(std::uint64_t), byte, p.rank, xtag,
                                         rt::Protocol::Eager));
        }
        for (rt::Request& rq : xreqs) comm.wait(rq);

        request_ = CollRequest(
            *comm_, build_alltoallw_rma_schedule(rank, static_cast<int>(n), sendcounts,
                                                 sdispls, sendtypes, recvcounts, rdispls,
                                                 recvtypes, target_offsets, my_offsets,
                                                 config.small_msg_threshold));
        request_.set_window(&win_);
        request_.set_pack_engine(engine_kind_);
        return;
    }

    // Compile the schedule. Emission order is execution order for the
    // dep-free prefix: typed receives post first, then the clear-to-sends
    // fire (proving to each rendezvous-bound source that this rank's
    // receives are posted), then the self copy, then the eager pack+send
    // pairs in binned order. Rendezvous sends occupy round 1: their packs
    // are released by the matching clear-to-send token.
    Schedule s;
    s.tag_base = kPersistentTagBase;
    bool any_rdv = false;

    for (const RecvPeer& p : recvs) {
        ScheduleOp rcv;
        rcv.kind = ScheduleOpKind::Recv;
        rcv.peer = p.rank;
        rcv.a = {BufRef::Space::Recv, p.displ};
        rcv.count = p.count;
        rcv.type = p.type;
        rcv.bytes = p.bytes;
        s.ops.push_back(std::move(rcv));
    }
    for (const RecvPeer& p : recvs) {
        if (!p.cts) continue;
        ScheduleOp cts;
        cts.kind = ScheduleOpKind::Send;
        cts.peer = p.rank;
        cts.tag_offset = kCtsOffset;
        cts.proto = rt::Protocol::Eager;
        s.ops.push_back(std::move(cts));  // zero-byte: a.space == None
    }
    if (has_self) {
        // Self exchange staged through a persistent slot (slot >= 0 routes
        // the Copy through pack_into/unpack_from instead of copy_typed).
        ScheduleOp cp;
        cp.kind = ScheduleOpKind::Copy;
        cp.a = {BufRef::Space::Send, sdispls[self_i]};
        cp.count = sendcounts[self_i];
        cp.type = sendtypes[self_i];
        cp.b = {BufRef::Space::Recv, rdispls[self_i]};
        cp.bcount = recvcounts[self_i];
        cp.btype = recvtypes[self_i];
        cp.slot = static_cast<int>(sends.size());
        cp.bytes = self_vol;
        s.ops.push_back(std::move(cp));
    }
    for (std::size_t k = 0; k < sends.size(); ++k) {
        const SendPeer& p = sends[k];
        const bool rdv = p.proto == rt::Protocol::Rendezvous;
        const int round = rdv ? 1 : 0;
        any_rdv = any_rdv || rdv;

        int cts_idx = -1;
        if (rdv || adaptive) {
            // Rendezvous packs wait for the token; under adaptive
            // selection the receiver sends one for *every* nonzero peer
            // (it cannot see this rank's learned threshold), so eager
            // sends post a matching receive purely to consume it — no
            // dependency, no orphaned token aliasing a later execution.
            ScheduleOp cts;
            cts.kind = ScheduleOpKind::Recv;
            cts.peer = p.rank;
            cts.tag_offset = kCtsOffset;
            cts.round = round;
            s.ops.push_back(std::move(cts));  // zero-byte token
            cts_idx = static_cast<int>(s.ops.size()) - 1;
        }

        ScheduleOp pk;
        pk.kind = ScheduleOpKind::Pack;
        pk.round = round;
        pk.a = {BufRef::Space::Send, p.displ};
        pk.count = p.count;
        pk.type = p.type;
        pk.slot = static_cast<int>(k);
        pk.bytes = p.bytes;
        if (rdv && cts_idx >= 0) pk.deps = {cts_idx};
        s.ops.push_back(std::move(pk));
        const int pack_idx = static_cast<int>(s.ops.size()) - 1;

        ScheduleOp snd;
        snd.kind = ScheduleOpKind::Send;
        snd.round = round;
        snd.peer = p.rank;
        snd.a = {BufRef::Space::Send, p.displ};  // informational; wire uses the slot
        snd.count = p.count;
        snd.type = p.type;
        snd.slot = static_cast<int>(k);
        snd.bytes = p.bytes;
        snd.proto = p.proto;
        snd.deps = {pack_idx};
        s.ops.push_back(std::move(snd));
    }

    s.rounds = any_rdv ? 2 : 1;
    s.staging.reserve(sends.size() + (has_self ? 1u : 0u));
    for (const SendPeer& p : sends) s.staging.push_back(static_cast<std::size_t>(p.bytes));
    if (has_self) s.staging.push_back(static_cast<std::size_t>(self_vol));

    request_ = CollRequest(*comm_, std::move(s));
    request_.set_pack_engine(engine_kind_);
}

AlltoallwPlan::~AlltoallwPlan() = default;

void AlltoallwPlan::begin(const void* sendbuf, void* recvbuf) {
    NNCOMM_CHECK_MSG(!request_.active(),
                     "AlltoallwPlan::begin while a previous execution is in flight");
    // Engine-config changes between executes invalidate the persistent
    // engines (their scratch sizing depends on the pipeline chunk); treat
    // it as a re-plan of the engines only.
    if (!(comm_->engine_config() == engine_config_)) {
        engine_config_ = comm_->engine_config();
        request_.invalidate_engines();
    }
    request_.reset();
    StatCounters extra;
    ++extra.persistent_executes;
    if (rma_) ++extra.coll_rma_plan_executes;
    if (executes_ > 0) ++extra.coll_schedule_cache_hits;
    request_.inject(extra);
    request_.start(sendbuf, recvbuf);
}

void AlltoallwPlan::end() {
    request_.wait();
    counters_ += request_.last_step();
    ++executes_;
}

void AlltoallwPlan::execute(const void* sendbuf, void* recvbuf) {
    begin(sendbuf, recvbuf);
    end();
}

}  // namespace nncomm::coll

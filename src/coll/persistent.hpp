// Persistent Alltoallw plans (MPI_Alltoallw_init in spirit).
//
// The one-shot coll::alltoallw rebuilds everything on every call: a fresh
// pack engine (and its scratch buffer) per noncontiguous peer, the binning
// of peers by volume, the receive-request vector. For the repeated-scatter
// pattern the paper measures (§5.4 — the same VecScatter executed every
// solver iteration), all of that is loop-invariant. An AlltoallwPlan hoists
// it out of the loop:
//
//   - the binned send schedule (zero-volume peers exempted, small volumes
//     before large) is computed once at plan time,
//   - each send peer owns a persistent pack buffer and — for layouts whose
//     compiled PackPlan is not specialized — a persistent pack engine that
//     is reset(), never reconstructed, on each execute,
//   - specialized layouts (contiguous / constant-stride) pack straight into
//     the persistent buffer through the plan kernels, no engine at all,
//   - packed messages go on the wire as plain bytes, so the runtime's send
//     path never builds a per-send engine either,
//   - the receive-request vector and the self-copy staging buffer are
//     reused across executes.
//
// Steady state (every execute after the first) therefore performs no
// engine constructions and no scratch allocations — which is exactly what
// the engine_builds / scratch_allocs counters folded into the Comm prove.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "coll/collectives.hpp"
#include "datatype/engine.hpp"

namespace nncomm::coll {

/// Persistent plan for one fixed Alltoallw shape (counts, displacements and
/// types per peer). Buffers may differ between execute() calls; the shape
/// may not. Owned and used by a single rank thread (like Comm itself).
class AlltoallwPlan {
public:
    /// Captures the shape, bins the peers and sizes all persistent
    /// buffers. `engine` selects the pack engine used for peers whose
    /// layout does not compile to a specialized plan kernel. The engine
    /// configuration is taken from `comm` at every execute, so config
    /// changes between executes rebuild the engines (and are counted).
    AlltoallwPlan(rt::Comm& comm, std::span<const std::size_t> sendcounts,
                  std::span<const std::ptrdiff_t> sdispls,
                  std::span<const dt::Datatype> sendtypes,
                  std::span<const std::size_t> recvcounts,
                  std::span<const std::ptrdiff_t> rdispls,
                  std::span<const dt::Datatype> recvtypes, const CollConfig& config = {},
                  dt::EngineKind engine = dt::EngineKind::DualContext);

    ~AlltoallwPlan();

    AlltoallwPlan(const AlltoallwPlan&) = delete;
    AlltoallwPlan& operator=(const AlltoallwPlan&) = delete;

    /// Runs the planned exchange with this call's buffers. Collective:
    /// every rank of the communicator must execute its plan. Statistics
    /// for the work done are folded into the Comm's counters/timers.
    void execute(const void* sendbuf, void* recvbuf);

    /// Cumulative statistics over all executes of this plan (the same
    /// numbers folded into the Comm, but isolated from other traffic).
    const StatCounters& counters() const { return counters_; }

    std::size_t executes() const { return executes_; }
    /// Peers this rank sends to / receives from (self excluded).
    std::size_t send_peers() const { return sends_.size(); }
    std::size_t recv_peers() const { return recvs_.size(); }

private:
    struct SendPeer {
        int rank = -1;
        std::size_t count = 0;
        std::ptrdiff_t displ = 0;
        dt::Datatype type;
        std::uint64_t bytes = 0;
        /// Volume-derived protocol hint, frozen at plan time: large peers
        /// ride the zero-copy rendezvous path (the receives are posted up
        /// front), small peers stay buffered eager.
        rt::Protocol proto = rt::Protocol::Auto;
        std::vector<std::byte> packbuf;          ///< persistent, sized once
        std::unique_ptr<dt::PackEngine> engine;  ///< irregular layouts only
    };
    struct RecvPeer {
        int rank = -1;
        std::size_t count = 0;
        std::ptrdiff_t displ = 0;
        dt::Datatype type;
        /// Mirror of the sender's frozen Rendezvous decision (same volume,
        /// same threshold): after posting this receive, execute() sends the
        /// source a zero-byte clear-to-send so the payload send always
        /// finds the receive posted and the single-copy path never races.
        bool cts = false;
    };

    void pack_peer(SendPeer& p, const std::byte* base, StatCounters& step,
                   PhaseTimers& step_timers);

    rt::Comm* comm_ = nullptr;
    dt::EngineKind engine_kind_;
    dt::EngineConfig engine_config_;  ///< config the engines were built with

    std::vector<SendPeer> sends_;  ///< binned order: small volumes first
    std::vector<RecvPeer> recvs_;  ///< ascending rank

    // Self exchange (rank -> itself), staged through a persistent buffer.
    bool has_self_ = false;
    std::size_t self_scount_ = 0, self_rcount_ = 0;
    std::ptrdiff_t self_sdispl_ = 0, self_rdispl_ = 0;
    dt::Datatype self_stype_, self_rtype_;
    std::vector<std::byte> self_buf_;

    std::vector<rt::Request> recv_reqs_;  ///< reused, capacity persists

    StatCounters counters_;
    StatCounters pending_setup_;  ///< plan-time allocs, folded into execute #1
    std::size_t executes_ = 0;
};

}  // namespace nncomm::coll

// Persistent Alltoallw plans (MPI_Alltoallw_init in spirit).
//
// The one-shot coll::alltoallw rebuilds everything on every call: a fresh
// pack engine (and its scratch buffer) per noncontiguous peer, the binning
// of peers by volume, the receive-request vector. For the repeated-scatter
// pattern the paper measures (§5.4 — the same VecScatter executed every
// solver iteration), all of that is loop-invariant. An AlltoallwPlan hoists
// it out of the loop: the plan is a cached compiled coll::Schedule — the
// binned send order, the frozen per-peer protocol decisions and the
// clear-to-send handshake are ops of the graph — plus one persistent
// CollRequest whose staging buffers and pack engines survive across
// executes.
//
//   - the binned send schedule (zero-volume peers exempted, small volumes
//     before large) is compiled once at plan time,
//   - each send peer owns a persistent staging slot and — for layouts whose
//     compiled PackPlan is not specialized — a persistent pack engine that
//     is reset(), never reconstructed, on each execute,
//   - specialized layouts (contiguous / constant-stride) pack straight into
//     the persistent slot through the plan kernels, no engine at all,
//   - packed messages go on the wire as plain bytes, so the runtime's send
//     path never builds a per-send engine either.
//
// Steady state (every execute after the first) therefore performs no
// engine constructions and no scratch allocations — which is exactly what
// the engine_builds / scratch_allocs counters folded into the Comm prove —
// and every reuse of the compiled graph is counted as a
// coll_schedule_cache_hits event.
//
// Because the executor is progress-driven, the plan is split-phase for
// free: begin() fires the schedule (receives posted, self copy done, eager
// sends gone), test() makes overlap progress, end() completes. execute()
// is begin() + end().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "coll/collectives.hpp"
#include "coll/schedule.hpp"
#include "datatype/engine.hpp"
#include "runtime/win.hpp"

namespace nncomm::coll {

/// Persistent plan for one fixed Alltoallw shape (counts, displacements and
/// types per peer). Buffers may differ between execute() calls; the shape
/// may not. Owned and used by a single rank thread (like Comm itself).
class AlltoallwPlan {
public:
    /// Captures the shape, bins the peers and compiles the schedule.
    /// `engine` selects the pack engine used for peers whose layout does
    /// not compile to a specialized plan kernel. The engine configuration
    /// is taken from `comm` at every execute, so config changes between
    /// executes rebuild the engines (and are counted).
    AlltoallwPlan(rt::Comm& comm, std::span<const std::size_t> sendcounts,
                  std::span<const std::ptrdiff_t> sdispls,
                  std::span<const dt::Datatype> sendtypes,
                  std::span<const std::size_t> recvcounts,
                  std::span<const std::ptrdiff_t> rdispls,
                  std::span<const dt::Datatype> recvtypes, const CollConfig& config = {},
                  dt::EngineKind engine = dt::EngineKind::DualContext);

    ~AlltoallwPlan();

    AlltoallwPlan(const AlltoallwPlan&) = delete;
    AlltoallwPlan& operator=(const AlltoallwPlan&) = delete;

    /// Runs the planned exchange with this call's buffers. Collective:
    /// every rank of the communicator must execute its plan. Statistics
    /// for the work done are folded into the Comm's counters/timers.
    void execute(const void* sendbuf, void* recvbuf);

    /// Split-phase execute: fires the schedule (receives posted, self copy
    /// done, eligible sends gone) and returns. Overlap compute, optionally
    /// poking test(), then end(). Buffer contracts as execute().
    void begin(const void* sendbuf, void* recvbuf);
    /// One nonblocking progress pass; true once the exchange completed.
    bool test() { return request_.test(); }
    /// Completes the exchange begun by begin().
    void end();

    /// Cumulative statistics over all executes of this plan (the same
    /// numbers folded into the Comm, but isolated from other traffic).
    const StatCounters& counters() const { return counters_; }

    std::size_t executes() const { return executes_; }
    /// Peers this rank sends to / receives from (self excluded).
    std::size_t send_peers() const { return send_peers_; }
    std::size_t recv_peers() const { return recv_peers_; }

    /// The compiled schedule (inspection / netsim lowering).
    const Schedule& schedule() const { return request_.schedule(); }

    /// True when the plan lowered onto one-sided RMA windows (fused
    /// pack+Put into the peers' regions, fences for completion) instead of
    /// the two-sided send/recv graph. Uniform across ranks by construction.
    bool rma() const { return rma_; }

private:
    rt::Comm* comm_ = nullptr;
    dt::EngineKind engine_kind_;
    dt::EngineConfig engine_config_;  ///< config the engines were built with

    CollRequest request_;  ///< cached compiled schedule + persistent state
    std::size_t send_peers_ = 0;
    std::size_t recv_peers_ = 0;

    /// RMA lowering only: the exposed receive region (one block per source
    /// peer, rank order) and its window. Peers pack straight into it; the
    /// round-3 Unpacks scatter it into the user layout.
    std::vector<std::byte> win_buf_;
    rt::Win win_;
    bool rma_ = false;

    StatCounters counters_;
    std::size_t executes_ = 0;
};

}  // namespace nncomm::coll

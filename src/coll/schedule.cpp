// Schedule builders and the CollRequest executor.
//
// The builders are the former straight-line collective implementations
// (allgatherv.cpp / alltoallw.cpp / basic.cpp) re-expressed as op-graph
// emission: same peers, same tags, same protocols, same local-copy and
// apply orders — they just *describe* the communication instead of
// performing it. src/netsim lowers the identical Schedule objects into
// LogGP simulator programs.
#include "coll/schedule.hpp"

#include <algorithm>
#include <cstring>

#include "coll/util.hpp"
#include "datatype/pack.hpp"
#include "runtime/win.hpp"

namespace nncomm::coll {

namespace {

constexpr int kTagAllgatherv = rt::kInternalTagBase + 0x100;
constexpr int kTagAlltoallw = rt::kInternalTagBase + 0x200;
constexpr int kTagBcast = rt::kInternalTagBase + 0x300;
constexpr int kTagGather = rt::kInternalTagBase + 0x301;
constexpr int kTagScatter = rt::kInternalTagBase + 0x302;
constexpr int kTagReduce = rt::kInternalTagBase + 1;

// Volume hint for one phase: the algorithm knows exactly how many bytes a
// step moves, so bulk steps ride the zero-copy rendezvous path (their
// receives are preposted by the executor) and small latency-bound steps
// stay eager without consulting the size heuristic per message.
rt::Protocol phase_protocol(std::size_t bytes, std::size_t threshold) {
    // Shared boundary contract (runtime/comm.cpp try_rendezvous,
    // coll/persistent.cpp, netsim/sim.cpp): rendezvous iff the message is
    // nonempty and bytes >= threshold. Without the bytes > 0 guard a
    // threshold of 0 would hand zero-byte steps a Rendezvous hint the
    // runtime then has to walk back.
    return (bytes > 0 && bytes >= threshold) ? rt::Protocol::Rendezvous : rt::Protocol::Eager;
}

std::ptrdiff_t block_offset(std::span<const std::size_t> displs, const dt::Datatype& elem,
                            int b) {
    return static_cast<std::ptrdiff_t>(displs[static_cast<std::size_t>(b)]) * elem.extent();
}

}  // namespace

// ---------------------------------------------------------------------------
// allgatherv builders

AllgathervAlgo resolve_allgatherv_algo(std::span<const std::uint64_t> volumes,
                                       const CollConfig& config) {
    if (config.allgatherv_algo != AllgathervAlgo::Auto) return config.allgatherv_algo;
    // The paper's selection: run the Eq. 1 outlier analysis over the
    // communication-volume set (available at every rank by definition of
    // the operation) and avoid the ring when the set is nonuniform.
    const int n = static_cast<int>(volumes.size());
    const AllgathervPolicy policy{config.outlier, config.long_msg_total};
    const bool pow2 = (n & (n - 1)) == 0;
    if (allgatherv_use_ring(volumes, policy)) return AllgathervAlgo::Ring;
    return pow2 ? AllgathervAlgo::RecursiveDoubling : AllgathervAlgo::Dissemination;
}

Schedule build_allgatherv_schedule(int rank, int nranks, AllgathervAlgo algo,
                                   std::size_t sendcount, const dt::Datatype& sendtype,
                                   std::span<const std::size_t> recvcounts,
                                   std::span<const std::size_t> displs,
                                   const dt::Datatype& recvtype,
                                   std::size_t rendezvous_threshold) {
    Schedule s;
    s.tag_base = kTagAllgatherv;
    const int n = nranks;

    // Place the local contribution first; every algorithm forwards out of
    // recvbuf.
    ScheduleOp copy;
    copy.kind = ScheduleOpKind::Copy;
    copy.a = {BufRef::Space::Send, 0};
    copy.count = sendcount;
    copy.type = sendtype;
    copy.b = {BufRef::Space::Recv, block_offset(displs, recvtype, rank)};
    copy.bcount = recvcounts[static_cast<std::size_t>(rank)];
    copy.btype = recvtype;
    const int copy_idx = 0;
    s.ops.push_back(std::move(copy));
    if (n == 1) return s;

    auto push_recv = [&](int src, int tag_offset, int round, std::ptrdiff_t off,
                         std::size_t count, const dt::Datatype& type) {
        ScheduleOp op;
        op.kind = ScheduleOpKind::Recv;
        op.round = round;
        op.peer = src;
        op.tag_offset = tag_offset;
        op.a = {BufRef::Space::Recv, off};
        op.count = count;
        op.type = type;
        op.bytes = static_cast<std::uint64_t>(count) * type.size();
        s.ops.push_back(std::move(op));
        return static_cast<int>(s.ops.size()) - 1;
    };
    auto push_send = [&](int dst, int tag_offset, int round, std::ptrdiff_t off,
                         std::size_t count, const dt::Datatype& type, std::vector<int> deps) {
        ScheduleOp op;
        op.kind = ScheduleOpKind::Send;
        op.round = round;
        op.peer = dst;
        op.tag_offset = tag_offset;
        op.a = {BufRef::Space::Recv, off};
        op.count = count;
        op.type = type;
        op.bytes = static_cast<std::uint64_t>(count) * type.size();
        op.proto = phase_protocol(static_cast<std::size_t>(op.bytes), rendezvous_threshold);
        op.deps = std::move(deps);
        s.ops.push_back(std::move(op));
        return static_cast<int>(s.ops.size()) - 1;
    };

    switch (algo) {
        case AllgathervAlgo::Ring: {
            // N-1 steps; at step s each rank forwards the block it received
            // in the previous step (one outlier-sized block travels the
            // whole ring sequentially — Figure 8's behaviour). Send_s
            // therefore depends on Recv_{s-1}; receives are independent
            // (disjoint blocks, per-step tags) and prepost.
            const int right = (rank + 1) % n;
            const int left = (rank + n - 1) % n;
            int prev_recv = -1;
            for (int st = 0; st < n - 1; ++st) {
                const int send_block = (rank - st + n) % n;
                const int recv_block = (rank - st - 1 + n) % n;
                push_send(right, st, st, block_offset(displs, recvtype, send_block),
                          recvcounts[static_cast<std::size_t>(send_block)], recvtype,
                          {st == 0 ? copy_idx : prev_recv});
                prev_recv = push_recv(left, st, st, block_offset(displs, recvtype, recv_block),
                                      recvcounts[static_cast<std::size_t>(recv_block)],
                                      recvtype);
            }
            s.rounds = n - 1;
            break;
        }
        case AllgathervAlgo::RecursiveDoubling: {
            // log2 N phases, each rank exchanging its aligned group of
            // blocks with its partner's group. Phase p sends every block
            // gathered so far, so Send_p depends on the local copy and all
            // earlier receives.
            NNCOMM_CHECK_MSG((n & (n - 1)) == 0,
                             "recursive doubling needs power-of-two ranks");
            std::vector<int> gathered{copy_idx};
            int phase = 0;
            for (int mask = 1; mask < n; mask <<= 1, ++phase) {
                const int partner = rank ^ mask;
                const int my_first = rank & ~(mask - 1);
                const int peer_first = partner & ~(mask - 1);
                auto send_type = detail::block_range_type(recvcounts, displs, recvtype,
                                                          my_first, mask);
                auto recv_type = detail::block_range_type(recvcounts, displs, recvtype,
                                                          peer_first, mask);
                push_send(partner, 0x40 + phase, phase, 0, 1, send_type, gathered);
                gathered.push_back(push_recv(partner, 0x40 + phase, phase, 0, 1, recv_type));
            }
            s.rounds = phase;
            break;
        }
        case AllgathervAlgo::Dissemination: {
            // ceil(log2 N) phases; in phase p rank i sends its newest
            // min(2^p, N - 2^p) blocks to (i + 2^p) mod N and receives the
            // matching range from (i - 2^p) mod N.
            std::vector<int> gathered{copy_idx};
            int phase = 0;
            for (int step = 1; step < n; step <<= 1, ++phase) {
                const int cnt = std::min(step, n - step);
                const int to = (rank + step) % n;
                const int from = (rank - step + n) % n;
                auto send_type = detail::block_range_type(recvcounts, displs, recvtype,
                                                          rank - cnt + 1, cnt);
                auto recv_type = detail::block_range_type(recvcounts, displs, recvtype,
                                                          rank - step - cnt + 1, cnt);
                push_send(to, 0x80 + phase, phase, 0, 1, send_type, gathered);
                gathered.push_back(push_recv(from, 0x80 + phase, phase, 0, 1, recv_type));
            }
            s.rounds = phase;
            break;
        }
        case AllgathervAlgo::Auto:
            NNCOMM_CHECK_MSG(false, "build_allgatherv_schedule: algo must be resolved");
    }
    return s;
}

// ---------------------------------------------------------------------------
// alltoallw builders

Schedule build_alltoallw_schedule(int rank, int nranks, AlltoallwAlgo algo,
                                  std::span<const std::size_t> sendcounts,
                                  std::span<const std::ptrdiff_t> sdispls,
                                  std::span<const dt::Datatype> sendtypes,
                                  std::span<const std::size_t> recvcounts,
                                  std::span<const std::ptrdiff_t> rdispls,
                                  std::span<const dt::Datatype> recvtypes,
                                  std::size_t small_msg_threshold) {
    Schedule s;
    s.tag_base = kTagAlltoallw;
    const int n = nranks;
    const auto r = static_cast<std::size_t>(rank);

    auto self_copy = [&] {
        ScheduleOp op;
        op.kind = ScheduleOpKind::Copy;
        op.a = {BufRef::Space::Send, sdispls[r]};
        op.count = sendcounts[r];
        op.type = sendtypes[r];
        op.b = {BufRef::Space::Recv, rdispls[r]};
        op.bcount = recvcounts[r];
        op.btype = recvtypes[r];
        s.ops.push_back(std::move(op));
    };

    if (algo == AlltoallwAlgo::RoundRobin) {
        // Baseline: blocking pairwise exchange with EVERY rank in
        // round-robin order, including zero-byte messages. Each step
        // synchronizes the pair (step i's ops wait on step i-1's receive),
        // so zero-volume peers still cost a round trip, and a large
        // noncontiguous message to an early peer delays every later peer.
        self_copy();
        int prev_recv = -1;
        for (int i = 1; i < n; ++i) {
            const int dst = (rank + i) % n;
            const int src = (rank - i + n) % n;
            const auto d = static_cast<std::size_t>(dst);
            const auto sr = static_cast<std::size_t>(src);
            ScheduleOp snd;
            snd.kind = ScheduleOpKind::Send;
            snd.round = i - 1;
            snd.peer = dst;
            snd.tag_offset = i;
            snd.a = {BufRef::Space::Send, sdispls[d]};
            snd.count = sendcounts[d];
            snd.type = sendtypes[d];
            snd.bytes = static_cast<std::uint64_t>(sendcounts[d]) * sendtypes[d].size();
            if (prev_recv >= 0) snd.deps = {prev_recv};
            s.ops.push_back(std::move(snd));

            ScheduleOp rcv;
            rcv.kind = ScheduleOpKind::Recv;
            rcv.round = i - 1;
            rcv.peer = src;
            rcv.tag_offset = i;
            rcv.a = {BufRef::Space::Recv, rdispls[sr]};
            rcv.count = recvcounts[sr];
            rcv.type = recvtypes[sr];
            rcv.bytes = static_cast<std::uint64_t>(recvcounts[sr]) * recvtypes[sr].size();
            if (prev_recv >= 0) rcv.deps = {prev_recv};
            s.ops.push_back(std::move(rcv));
            prev_recv = static_cast<int>(s.ops.size()) - 1;
        }
        s.rounds = n > 1 ? n - 1 : 1;
        return s;
    }

    NNCOMM_CHECK_MSG(algo == AlltoallwAlgo::Binned,
                     "build_alltoallw_schedule: algo must be resolved");
    // The paper's binned design: peers are divided into zero / small /
    // large volume bins. Zero-volume peers are exempted entirely (no
    // synchronizing empty message); small-volume sends are processed before
    // large ones so cheap peers are not delayed behind expensive
    // noncontiguous packing. One tag per invocation (the epoch lane keeps
    // back-to-back calls from aliasing); receives prepost, the large bin is
    // hinted onto the zero-copy rendezvous path.
    constexpr int kBinnedTag = 0x80;
    for (int src = 0; src < n; ++src) {
        if (src == rank) continue;
        const auto sr = static_cast<std::size_t>(src);
        const std::uint64_t vol =
            static_cast<std::uint64_t>(recvcounts[sr]) * recvtypes[sr].size();
        if (vol == 0) continue;
        ScheduleOp rcv;
        rcv.kind = ScheduleOpKind::Recv;
        rcv.peer = src;
        rcv.tag_offset = kBinnedTag;
        rcv.a = {BufRef::Space::Recv, rdispls[sr]};
        rcv.count = recvcounts[sr];
        rcv.type = recvtypes[sr];
        rcv.bytes = vol;
        s.ops.push_back(std::move(rcv));
    }
    if (static_cast<std::uint64_t>(sendcounts[r]) * sendtypes[r].size() > 0) self_copy();

    struct Peer {
        int rank;
        std::uint64_t volume;
    };
    std::vector<Peer> small_bin, large_bin;
    for (int dst = 0; dst < n; ++dst) {
        if (dst == rank) continue;
        const auto d = static_cast<std::size_t>(dst);
        const std::uint64_t vol =
            static_cast<std::uint64_t>(sendcounts[d]) * sendtypes[d].size();
        if (vol == 0) continue;  // the zero bin: completely exempted
        (vol < small_msg_threshold ? small_bin : large_bin).push_back({dst, vol});
    }
    auto by_volume = [](const Peer& a, const Peer& b) {
        return a.volume < b.volume || (a.volume == b.volume && a.rank < b.rank);
    };
    std::sort(small_bin.begin(), small_bin.end(), by_volume);
    std::sort(large_bin.begin(), large_bin.end(), by_volume);

    auto push_peer_send = [&](const Peer& p, rt::Protocol proto) {
        const auto d = static_cast<std::size_t>(p.rank);
        ScheduleOp snd;
        snd.kind = ScheduleOpKind::Send;
        snd.peer = p.rank;
        snd.tag_offset = kBinnedTag;
        snd.proto = proto;
        snd.a = {BufRef::Space::Send, sdispls[d]};
        snd.count = sendcounts[d];
        snd.type = sendtypes[d];
        snd.bytes = p.volume;
        s.ops.push_back(std::move(snd));
    };
    for (const Peer& p : small_bin) push_peer_send(p, rt::Protocol::Eager);
    for (const Peer& p : large_bin) push_peer_send(p, rt::Protocol::Rendezvous);
    return s;
}

Schedule build_alltoallw_rma_schedule(int rank, int nranks,
                                      std::span<const std::size_t> sendcounts,
                                      std::span<const std::ptrdiff_t> sdispls,
                                      std::span<const dt::Datatype> sendtypes,
                                      std::span<const std::size_t> recvcounts,
                                      std::span<const std::ptrdiff_t> rdispls,
                                      std::span<const dt::Datatype> recvtypes,
                                      std::span<const std::uint64_t> target_offsets,
                                      std::span<const std::uint64_t> my_offsets,
                                      std::size_t small_msg_threshold) {
    Schedule s;
    s.tag_base = kTagAlltoallw;  // no wire tags; kept for lane bookkeeping
    const int n = nranks;
    const auto r = static_cast<std::size_t>(rank);

    // Round 0: open the access+exposure epoch. The open fence of execute
    // k+1 doubles as the consumption barrier for execute k — a rank only
    // re-enters it after its own round-3 Unpacks retired, so no peer can
    // overwrite window bytes that are still unread.
    ScheduleOp open;
    open.kind = ScheduleOpKind::Fence;
    open.round = 0;
    s.ops.push_back(std::move(open));
    const int open_idx = 0;

    // Round 1: the self block never touches the window (staged through the
    // one persistent slot, like the two-sided plan), and the remote blocks
    // keep the binned small-before-large ordering of the two-sided
    // schedule — each Put is a fused pack straight into the target region.
    const std::uint64_t self_vol =
        static_cast<std::uint64_t>(sendcounts[r]) * sendtypes[r].size();
    if (self_vol > 0) {
        ScheduleOp cp;
        cp.kind = ScheduleOpKind::Copy;
        cp.round = 1;
        cp.a = {BufRef::Space::Send, sdispls[r]};
        cp.count = sendcounts[r];
        cp.type = sendtypes[r];
        cp.b = {BufRef::Space::Recv, rdispls[r]};
        cp.bcount = recvcounts[r];
        cp.btype = recvtypes[r];
        cp.slot = 0;
        cp.bytes = self_vol;
        s.staging.push_back(static_cast<std::size_t>(self_vol));
        s.ops.push_back(std::move(cp));
    }

    struct Peer {
        int rank;
        std::uint64_t volume;
    };
    std::vector<Peer> small_bin, large_bin;
    for (int dst = 0; dst < n; ++dst) {
        if (dst == rank) continue;
        const auto d = static_cast<std::size_t>(dst);
        const std::uint64_t vol =
            static_cast<std::uint64_t>(sendcounts[d]) * sendtypes[d].size();
        if (vol == 0) continue;  // the zero bin: completely exempted
        (vol < small_msg_threshold ? small_bin : large_bin).push_back({dst, vol});
    }
    auto by_volume = [](const Peer& a, const Peer& b) {
        return a.volume < b.volume || (a.volume == b.volume && a.rank < b.rank);
    };
    std::sort(small_bin.begin(), small_bin.end(), by_volume);
    std::sort(large_bin.begin(), large_bin.end(), by_volume);

    std::vector<int> put_idx;
    auto push_put = [&](const Peer& p) {
        const auto d = static_cast<std::size_t>(p.rank);
        ScheduleOp put;
        put.kind = ScheduleOpKind::Put;
        put.round = 1;
        put.peer = p.rank;
        put.proto = rt::Protocol::Rma;
        put.a = {BufRef::Space::Send, sdispls[d]};
        put.count = sendcounts[d];
        put.type = sendtypes[d];
        put.b = {BufRef::Space::Win,
                 static_cast<std::ptrdiff_t>(target_offsets[d])};
        put.bytes = p.volume;
        put.deps = {open_idx};
        s.ops.push_back(std::move(put));
        put_idx.push_back(static_cast<int>(s.ops.size()) - 1);
    };
    for (const Peer& p : small_bin) push_put(p);
    for (const Peer& p : large_bin) push_put(p);

    // Round 2: close the epoch. After this fence retires, every peer's
    // puts into this rank's region are complete and visible.
    ScheduleOp close;
    close.kind = ScheduleOpKind::Fence;
    close.round = 2;
    close.deps = put_idx;
    close.deps.push_back(open_idx);
    s.ops.push_back(std::move(close));
    const int close_idx = static_cast<int>(s.ops.size()) - 1;

    // Round 3: scatter each source's packed bytes out of this rank's own
    // window region into the typed receive layout.
    for (int src = 0; src < n; ++src) {
        if (src == rank) continue;
        const auto sr = static_cast<std::size_t>(src);
        const std::uint64_t vol =
            static_cast<std::uint64_t>(recvcounts[sr]) * recvtypes[sr].size();
        if (vol == 0) continue;
        ScheduleOp up;
        up.kind = ScheduleOpKind::Unpack;
        up.round = 3;
        up.peer = src;
        up.a = {BufRef::Space::Recv, rdispls[sr]};
        up.count = recvcounts[sr];
        up.type = recvtypes[sr];
        up.b = {BufRef::Space::Win, static_cast<std::ptrdiff_t>(my_offsets[sr])};
        up.bytes = vol;
        up.deps = {close_idx};
        s.ops.push_back(std::move(up));
    }
    s.rounds = 4;
    return s;
}

// ---------------------------------------------------------------------------
// rooted builders

Schedule build_bcast_schedule(int rank, int nranks, int root, std::size_t count,
                              const dt::Datatype& type) {
    Schedule s;
    s.tag_base = kTagBcast;
    const int n = nranks;
    if (n == 1) return s;
    const int vrank = (rank - root + n) % n;
    const std::uint64_t bytes = static_cast<std::uint64_t>(count) * type.size();

    // Receive once from the parent (the rank that differs in the lowest set
    // bit), then forward down the binomial tree.
    int recv_idx = -1;
    int mask = 1;
    while (mask < n) {
        if ((vrank & mask) != 0) {
            const int src = ((vrank - mask) + root) % n;
            ScheduleOp rcv;
            rcv.kind = ScheduleOpKind::Recv;
            rcv.peer = src;
            rcv.a = {BufRef::Space::Recv, 0};
            rcv.count = count;
            rcv.type = type;
            rcv.bytes = bytes;
            s.ops.push_back(std::move(rcv));
            recv_idx = static_cast<int>(s.ops.size()) - 1;
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        if (vrank + mask < n) {
            const int dst = ((vrank + mask) + root) % n;
            ScheduleOp snd;
            snd.kind = ScheduleOpKind::Send;
            snd.peer = dst;
            snd.a = {BufRef::Space::Recv, 0};
            snd.count = count;
            snd.type = type;
            snd.bytes = bytes;
            if (recv_idx >= 0) snd.deps = {recv_idx};
            s.ops.push_back(std::move(snd));
        }
        mask >>= 1;
    }
    return s;
}

Schedule build_gatherv_schedule(int rank, int nranks, int root, std::size_t sendcount,
                                const dt::Datatype& sendtype,
                                std::span<const std::size_t> recvcounts,
                                std::span<const std::size_t> displs,
                                const dt::Datatype& recvtype) {
    Schedule s;
    s.tag_base = kTagGather;
    if (rank != root) {
        ScheduleOp snd;
        snd.kind = ScheduleOpKind::Send;
        snd.peer = root;
        snd.a = {BufRef::Space::Send, 0};
        snd.count = sendcount;
        snd.type = sendtype;
        snd.bytes = static_cast<std::uint64_t>(sendcount) * sendtype.size();
        s.ops.push_back(std::move(snd));
        return s;
    }
    for (int i = 0; i < nranks; ++i) {
        const auto si = static_cast<std::size_t>(i);
        const std::ptrdiff_t off = block_offset(displs, recvtype, i);
        if (i == rank) {
            ScheduleOp cp;
            cp.kind = ScheduleOpKind::Copy;
            cp.a = {BufRef::Space::Send, 0};
            cp.count = sendcount;
            cp.type = sendtype;
            cp.b = {BufRef::Space::Recv, off};
            cp.bcount = recvcounts[si];
            cp.btype = recvtype;
            s.ops.push_back(std::move(cp));
        } else {
            ScheduleOp rcv;
            rcv.kind = ScheduleOpKind::Recv;
            rcv.peer = i;
            rcv.a = {BufRef::Space::Recv, off};
            rcv.count = recvcounts[si];
            rcv.type = recvtype;
            rcv.bytes = static_cast<std::uint64_t>(recvcounts[si]) * recvtype.size();
            s.ops.push_back(std::move(rcv));
        }
    }
    return s;
}

Schedule build_scatterv_schedule(int rank, int nranks, int root,
                                 std::span<const std::size_t> sendcounts,
                                 std::span<const std::size_t> displs,
                                 const dt::Datatype& sendtype, std::size_t recvcount,
                                 const dt::Datatype& recvtype) {
    Schedule s;
    s.tag_base = kTagScatter;
    if (rank != root) {
        ScheduleOp rcv;
        rcv.kind = ScheduleOpKind::Recv;
        rcv.peer = root;
        rcv.a = {BufRef::Space::Recv, 0};
        rcv.count = recvcount;
        rcv.type = recvtype;
        rcv.bytes = static_cast<std::uint64_t>(recvcount) * recvtype.size();
        s.ops.push_back(std::move(rcv));
        return s;
    }
    for (int i = 0; i < nranks; ++i) {
        const auto si = static_cast<std::size_t>(i);
        const std::ptrdiff_t off = block_offset(displs, sendtype, i);
        if (i == rank) {
            ScheduleOp cp;
            cp.kind = ScheduleOpKind::Copy;
            cp.a = {BufRef::Space::Send, off};
            cp.count = sendcounts[si];
            cp.type = sendtype;
            cp.b = {BufRef::Space::Recv, 0};
            cp.bcount = recvcount;
            cp.btype = recvtype;
            s.ops.push_back(std::move(cp));
        } else {
            ScheduleOp snd;
            snd.kind = ScheduleOpKind::Send;
            snd.peer = i;
            snd.a = {BufRef::Space::Send, off};
            snd.count = sendcounts[si];
            snd.type = sendtype;
            snd.bytes = static_cast<std::uint64_t>(sendcounts[si]) * sendtype.size();
            s.ops.push_back(std::move(snd));
        }
    }
    return s;
}

Schedule build_reduce_schedule(int rank, int nranks, int root, std::size_t nbytes,
                               ReduceOp op, ReduceFn fn, std::size_t elems) {
    Schedule s;
    s.tag_base = kTagReduce;
    const int n = nranks;
    // Rotate ranks so the tree is rooted at `root`. Receives prepost into
    // per-phase staging slots (distinct sources, one tag); the Reduce ops
    // chain on each other so the elementwise applications run in exactly
    // the ascending-mask order of the blocking template.
    const int vrank = (rank - root + n) % n;
    int prev_reduce = -1;
    int mask = 1;
    while (mask < n) {
        if ((vrank & mask) != 0) {
            const int dst = ((vrank & ~mask) + root) % n;
            ScheduleOp snd;
            snd.kind = ScheduleOpKind::Send;
            snd.peer = dst;
            snd.a = {BufRef::Space::Recv, 0};
            snd.count = nbytes;
            snd.type = dt::Datatype::byte();
            snd.bytes = nbytes;
            if (prev_reduce >= 0) snd.deps = {prev_reduce};
            s.ops.push_back(std::move(snd));
            return s;  // this rank's subtree is folded in; done
        }
        const int vsrc = vrank | mask;
        if (vsrc < n) {
            const int src = (vsrc + root) % n;
            const int slot = static_cast<int>(s.staging.size());
            s.staging.push_back(nbytes);
            ScheduleOp rcv;
            rcv.kind = ScheduleOpKind::Recv;
            rcv.peer = src;
            rcv.slot = slot;
            rcv.count = nbytes;
            rcv.type = dt::Datatype::byte();
            rcv.bytes = nbytes;
            s.ops.push_back(std::move(rcv));
            const int recv_idx = static_cast<int>(s.ops.size()) - 1;

            ScheduleOp red;
            red.kind = ScheduleOpKind::Reduce;
            red.a = {BufRef::Space::Recv, 0};
            red.slot = slot;
            red.count = elems;
            red.rop = op;
            red.rfn = fn;
            red.deps = prev_reduce >= 0 ? std::vector<int>{recv_idx, prev_reduce}
                                        : std::vector<int>{recv_idx};
            s.ops.push_back(std::move(red));
            prev_reduce = static_cast<int>(s.ops.size()) - 1;
        }
        mask <<= 1;
    }
    return s;
}

// ---------------------------------------------------------------------------
// CollRequest

CollRequest::CollRequest(rt::Comm& comm, Schedule schedule)
    : comm_(&comm), sched_(std::move(schedule)) {
    for (const ScheduleOp& op : sched_.ops) {
        NNCOMM_CHECK_MSG(op.tag_offset < rt::kEpochTagStride,
                         "schedule tag offset outside the epoch lane");
        for ([[maybe_unused]] int d : op.deps) {
            NNCOMM_CHECK_MSG(d >= 0, "schedule dependency must be an earlier op");
        }
    }

    // Fusion precompute: a Pack i feeding exactly one Rendezvous Send j
    // through a staging slot no other op touches can stream chunk-by-chunk
    // into the receiver (try_fused) instead of pack-then-send. The staging
    // slot doubles as the pipeline window, so the pair must be its only
    // users (slot_refs == 2) and the Pack must have no other dependants
    // (the fused path leaves only the final chunk in the slot).
    const std::size_t nops = sched_.ops.size();
    fused_send_.assign(nops, -1);
    std::vector<int> slot_refs(sched_.staging.size(), 0);
    std::vector<int> dep_count(nops, 0);
    for (const ScheduleOp& op : sched_.ops) {
        if (op.slot >= 0) ++slot_refs[static_cast<std::size_t>(op.slot)];
        for (int d : op.deps) ++dep_count[static_cast<std::size_t>(d)];
    }
    for (std::size_t j = 0; j < nops; ++j) {
        const ScheduleOp& snd = sched_.ops[j];
        if (snd.kind != ScheduleOpKind::Send || snd.slot < 0) continue;
        if (snd.proto != rt::Protocol::Rendezvous) continue;
        if (snd.deps.size() != 1) continue;
        const auto p = static_cast<std::size_t>(snd.deps[0]);
        const ScheduleOp& pk = sched_.ops[p];
        if (pk.kind != ScheduleOpKind::Pack || pk.slot != snd.slot) continue;
        if (dep_count[p] != 1) continue;
        if (slot_refs[static_cast<std::size_t>(snd.slot)] != 2) continue;
        fused_send_[p] = static_cast<int>(j);
    }

    ++pending_setup_.coll_schedules_built;
}

std::byte* CollRequest::resolve(const BufRef& ref) const {
    switch (ref.space) {
        case BufRef::Space::Send:
            return const_cast<std::byte*>(static_cast<const std::byte*>(sendbuf_)) +
                   ref.offset;
        case BufRef::Space::Recv:
            return static_cast<std::byte*>(recvbuf_) + ref.offset;
        case BufRef::Space::Win:  // resolved through win_->translate, not here
        case BufRef::Space::None:
            break;
    }
    return nullptr;
}

void CollRequest::start(const void* sendbuf, void* recvbuf) {
    NNCOMM_CHECK_MSG(valid(), "start on an empty CollRequest");
    NNCOMM_CHECK_MSG(!active(), "start while a previous execution is in flight");
    started_ = true;
    done_ = false;
    sendbuf_ = sendbuf;
    recvbuf_ = recvbuf;

    step_ = pending_setup_;
    pending_setup_ = StatCounters{};
    step_timers_ = PhaseTimers{};

    // One fresh tag epoch per execution: sends are fire-and-forget
    // nonblocking, so a straggler from execution k can still be in flight
    // when execution k+1 posts its receives.
    tags_ = TagSpace(*comm_, sched_.tag_base);

    if (!engine_kind_set_) engine_kind_ = comm_->engine_kind();

    const std::size_t nops = sched_.ops.size();
    state_.assign(nops, kPending);
    reqs_.clear();
    reqs_.resize(nops);
    engines_.resize(nops);
    if (staging_.size() < sched_.staging.size()) staging_.resize(sched_.staging.size());
    for (std::size_t i = 0; i < sched_.staging.size(); ++i) {
        if (staging_[i].size() < sched_.staging[i]) {
            staging_[i].resize(sched_.staging[i]);
            ++step_.scratch_allocs;
        }
    }
    round_left_.assign(static_cast<std::size_t>(sched_.rounds), 0);
    for (const ScheduleOp& op : sched_.ops) {
        ++round_left_[static_cast<std::size_t>(op.round)];
    }
    remaining_ = nops;
    if (remaining_ == 0) {  // e.g. bcast/reduce on a single rank
        finalize();
        return;
    }

    // Fire round-zero work immediately, exactly like the blocking entry
    // points did: receives post first, then local copies/packs, then the
    // eligible sends. Split-phase callers (VecScatter::begin, DMDA
    // global_to_local_begin) rely on the self-copy having run by the time
    // start() returns.
    pass();
}

bool CollRequest::deps_done(const ScheduleOp& op) const {
    for (int d : op.deps) {
        if (state_[static_cast<std::size_t>(d)] != kDone) return false;
    }
    return true;
}

void CollRequest::mark_done(std::size_t i) {
    if (state_[i] == kDone) return;
    state_[i] = kDone;
    --remaining_;
    auto& left = round_left_[static_cast<std::size_t>(sched_.ops[i].round)];
    if (--left == 0) ++step_.coll_rounds_executed;
    if (remaining_ == 0) finalize();
}

void CollRequest::finalize() {
    done_ = true;
    comm_->merge_stats(step_, step_timers_);
}

void CollRequest::post_recv(std::size_t i) {
    const ScheduleOp& op = sched_.ops[i];
    const bool token = op.slot < 0 && op.a.space == BufRef::Space::None;
    void* dst = op.slot >= 0 ? static_cast<void*>(staging_[static_cast<std::size_t>(op.slot)].data())
                             : (token ? &token_ : resolve(op.a));
    const dt::Datatype& type = (op.slot >= 0 || token) ? dt::Datatype::byte() : op.type;
    reqs_[i] = comm_->irecv_i(dst, op.count, type, op.peer, tags_.tag(op.tag_offset));
    state_[i] = kPosted;
}

void CollRequest::post_send(std::size_t i) {
    const ScheduleOp& op = sched_.ops[i];
    const int tag = tags_.tag(op.tag_offset);
    if (op.slot >= 0) {
        // Staged send: the Pack dependency filled the persistent staging
        // slot; the wire sees contiguous bytes, so the runtime's send path
        // is a single copy (or the zero-copy rendezvous move).
        reqs_[i] = comm_->isend_i(staging_[static_cast<std::size_t>(op.slot)].data(),
                                  static_cast<std::size_t>(op.bytes), dt::Datatype::byte(),
                                  op.peer, tag, op.proto);
    } else if (op.a.space == BufRef::Space::None) {
        reqs_[i] = comm_->isend_i(&token_, 0, dt::Datatype::byte(), op.peer, tag, op.proto);
    } else {
        reqs_[i] = comm_->isend_i(resolve(op.a), op.count, op.type, op.peer, tag, op.proto);
    }
    state_[i] = kPosted;
}

void CollRequest::run_local(std::size_t i) {
    const ScheduleOp& op = sched_.ops[i];
    switch (op.kind) {
        case ScheduleOpKind::Copy: {
            std::byte* dst = resolve(op.b);
            const std::byte* src = resolve(op.a);
            if (op.slot >= 0) {
                // Self exchange staged through the persistent buffer
                // (persistent plans): pack the send layout, unpack into the
                // receive layout — no per-call scratch.
                PhaseScope scope(step_timers_, Phase::Pack);
                auto& buf = staging_[static_cast<std::size_t>(op.slot)];
                dt::pack_into(src, op.type, op.count, std::span<std::byte>(buf), &step_);
                dt::unpack_from(dst, op.btype, op.bcount, std::span<const std::byte>(buf),
                                &step_);
            } else {
                detail::copy_typed(src, op.count, op.type, dst, op.bcount, op.btype);
            }
            break;
        }
        case ScheduleOpKind::Pack: {
            const std::byte* src = resolve(op.a);
            auto& buf = staging_[static_cast<std::size_t>(op.slot)];
            const dt::PackPlan& plan = op.type.plan();
            if (plan.specialized()) {
                // Contiguous / constant-stride layouts: the compiled kernel
                // writes the persistent buffer directly — no engine, no
                // scratch.
                PhaseScope scope(step_timers_, Phase::Pack);
                plan.pack(op.type.flat(), src, op.count, std::span<std::byte>(buf), &step_);
                ++step_.plan_hits;
                step_.bytes_packed += op.bytes;
                break;
            }
            // Irregular layout: a persistent engine, constructed on the
            // first execution and reset (not rebuilt) afterwards.
            auto& eng = engines_[i];
            if (!eng) {
                eng = dt::make_engine(engine_kind_, src, op.type, op.count,
                                      comm_->engine_config());
            } else {
                eng->reset(src);
            }
            std::size_t off = 0;
            dt::ChunkView chunk;
            while (eng->next_chunk(chunk)) {
                if (chunk.dense) {
                    PhaseScope scope(step_timers_, Phase::Pack);
                    for (const auto& [ptr, len] : chunk.iov) {
                        std::memcpy(buf.data() + off, ptr, len);
                        off += len;
                    }
                } else {
                    std::memcpy(buf.data() + off, chunk.packed.data(), chunk.packed.size());
                    off += chunk.packed.size();
                }
            }
            NNCOMM_CHECK(off == buf.size());
            step_ += eng->counters();
            step_timers_ += eng->timers();
            eng->reset_stats();
            break;
        }
        case ScheduleOpKind::Unpack: {
            PhaseScope scope(step_timers_, Phase::Pack);
            if (op.b.space == BufRef::Space::Win) {
                // One-sided plans: the source bytes live in this rank's own
                // window region, where the peer's fused pack+Put left them.
                NNCOMM_CHECK(win_ != nullptr);
                const auto* src = static_cast<const std::byte*>(
                    win_->translate(comm_->rank(), static_cast<std::size_t>(op.b.offset),
                                    static_cast<std::size_t>(op.bytes)));
                dt::unpack_from(resolve(op.a), op.type, op.count,
                                std::span<const std::byte>(
                                    src, static_cast<std::size_t>(op.bytes)),
                                &step_);
                break;
            }
            auto& buf = staging_[static_cast<std::size_t>(op.slot)];
            dt::unpack_from(resolve(op.a), op.type, op.count,
                            std::span<const std::byte>(buf), &step_);
            break;
        }
        case ScheduleOpKind::Put: {
            // Fused pack+put: the frozen plan kernels (or the persistent
            // engine for irregular layouts) write straight into the target
            // rank's window region — no staging slot, no envelope, no CTS.
            NNCOMM_CHECK(win_ != nullptr);
            const std::byte* src = resolve(op.a);
            const auto total = static_cast<std::size_t>(op.bytes);
            auto* dst = static_cast<std::byte*>(
                win_->translate(op.peer, static_cast<std::size_t>(op.b.offset), total));
            const dt::PackPlan& plan = op.type.plan();
            if (plan.specialized()) {
                PhaseScope scope(step_timers_, Phase::Pack);
                plan.pack(op.type.flat(), src, op.count, std::span<std::byte>(dst, total),
                          &step_);
                ++step_.plan_hits;
                step_.bytes_packed += op.bytes;
            } else {
                auto& eng = engines_[i];
                if (!eng) {
                    eng = dt::make_engine(engine_kind_, src, op.type, op.count,
                                          comm_->engine_config());
                } else {
                    eng->reset(src);
                }
                std::size_t off = 0;
                dt::ChunkView chunk;
                while (eng->next_chunk(chunk)) {
                    if (chunk.dense) {
                        PhaseScope scope(step_timers_, Phase::Pack);
                        for (const auto& [ptr, len] : chunk.iov) {
                            std::memcpy(dst + off, ptr, len);
                            off += len;
                        }
                    } else {
                        std::memcpy(dst + off, chunk.packed.data(), chunk.packed.size());
                        off += chunk.packed.size();
                    }
                }
                NNCOMM_CHECK(off == total);
                step_ += eng->counters();
                step_timers_ += eng->timers();
                eng->reset_stats();
            }
            win_->record_put(total);
            break;
        }
        case ScheduleOpKind::Reduce: {
            NNCOMM_CHECK(op.rfn != nullptr && op.slot >= 0);
            op.rfn(op.rop, resolve(op.a),
                   staging_[static_cast<std::size_t>(op.slot)].data(), op.count);
            break;
        }
        case ScheduleOpKind::Send:
        case ScheduleOpKind::Recv:
        case ScheduleOpKind::Fence:
            NNCOMM_CHECK(false);
    }
}

bool CollRequest::try_fused(std::size_t i) {
    const int j = fused_send_[i];
    if (j < 0) return false;
    const auto sj = static_cast<std::size_t>(j);
    if (state_[sj] != kPending) return false;
    if (!comm_->rendezvous_pipeline()) return false;
    const ScheduleOp& pk = sched_.ops[i];
    const ScheduleOp& snd = sched_.ops[sj];
    const std::size_t total = static_cast<std::size_t>(snd.bytes);
    const std::size_t chunk = comm_->engine_config().pipeline_chunk;
    if (chunk == 0 || total <= chunk) return false;
    const dt::PackPlan& plan = pk.type.plan();
    // Irregular pack_range re-walks the layout to seek, which would make a
    // k-chunk pipeline quadratic; only constant-stride kernels seek in O(1).
    if (!plan.specialized()) return false;

    const std::byte* src = resolve(pk.a);
    auto& buf = staging_[static_cast<std::size_t>(pk.slot)];
    // No PhaseScope here: try_rendezvous_staged_i charges the whole
    // pack+copy loop to Phase::Comm, same as the zero-copy staged path.
    auto produce = [&](std::uint64_t pos, std::span<std::byte> out) {
        plan.pack_range(pk.type.flat(), src, pk.count, pos, out, &step_);
    };
    if (!comm_->try_rendezvous_staged_i(snd.peer, tags_.tag(snd.tag_offset), total,
                                        rt::family_of(pk.type),
                                        std::span<std::byte>(buf), produce)) {
        return false;
    }
    ++step_.plan_hits;
    step_.bytes_packed += total;
    mark_done(i);
    mark_done(sj);
    return true;
}

bool CollRequest::pass() {
    if (done_) return true;
    bool moved = false;
    const std::size_t nops = sched_.ops.size();

    // 1. Post every eligible receive first: the zero-copy rendezvous path
    //    and the persistent plans' clear-to-send handshake both rely on
    //    receives being posted before any send of the same pass fires.
    for (std::size_t i = 0; i < nops; ++i) {
        if (state_[i] != kPending || sched_.ops[i].kind != ScheduleOpKind::Recv) continue;
        if (!deps_done(sched_.ops[i])) continue;
        post_recv(i);
        moved = true;
    }

    // 2. Ordered sweep: run eligible local ops and fire eligible sends in
    //    emission order. Dependencies always point backwards, so a pack
    //    retiring here immediately releases its send later in the same
    //    sweep — preserving the binned small-before-large pack/send
    //    interleaving.
    for (std::size_t i = 0; i < nops; ++i) {
        if (state_[i] != kPending) continue;
        const ScheduleOp& op = sched_.ops[i];
        if (op.kind == ScheduleOpKind::Recv) continue;
        if (!deps_done(op)) continue;
        if (op.kind == ScheduleOpKind::Send) {
            post_send(i);
        } else if (op.kind == ScheduleOpKind::Fence) {
            // Announce arrival (nonblocking) and let step 3 poll the
            // epoch's completion alongside the posted point-to-point ops.
            NNCOMM_CHECK(win_ != nullptr);
            win_->fence_begin();
            state_[i] = kPosted;
        } else if (op.kind == ScheduleOpKind::Pack && try_fused(i)) {
            // Pack and its Send retired together through the chunk-pipelined
            // rendezvous path.
        } else {
            run_local(i);
            mark_done(i);
        }
        moved = true;
    }
    if (done_) return true;

    // 3. Test posted operations (drives the delivery engine). A posted
    //    Fence completes through the window's epoch counters, not a
    //    Request.
    for (std::size_t i = 0; i < nops; ++i) {
        if (state_[i] != kPosted) continue;
        const bool fired = sched_.ops[i].kind == ScheduleOpKind::Fence
                               ? win_->fence_test()
                               : comm_->test(reqs_[i]);
        if (fired) {
            mark_done(i);
            moved = true;
            if (done_) return true;
        }
    }
    moved_ = moved;
    return done_;
}

bool CollRequest::test() {
    NNCOMM_CHECK_MSG(started_, "test on an unstarted CollRequest");
    if (done_) return true;
    ++step_.coll_overlap_progress_calls;
    return pass();
}

void CollRequest::wait() {
    NNCOMM_CHECK_MSG(started_, "wait on an unstarted CollRequest");
    while (!pass()) {
        if (moved_) continue;
        // Nothing runnable moved: park on a posted operation instead of
        // spinning. Blocking on any posted op is safe — its peer's side
        // eventually fires because every rank executes its schedule.
        const std::size_t none = sched_.ops.size();
        std::size_t idx = none;
        for (std::size_t i = 0; i < sched_.ops.size(); ++i) {
            if (state_[i] == kPosted) {
                idx = i;
                if (sched_.ops[i].kind == ScheduleOpKind::Recv) break;
            }
        }
        NNCOMM_CHECK_MSG(idx != none,
                         "schedule stuck: no runnable and no posted operations");
        if (sched_.ops[idx].kind == ScheduleOpKind::Fence) {
            comm_->wait_until([this] { return win_->fence_test(); });
        } else {
            comm_->wait(reqs_[idx]);
        }
        mark_done(idx);
        if (done_) return;
    }
}

void CollRequest::reset() {
    NNCOMM_CHECK_MSG(!active(), "reset of an in-flight CollRequest");
    started_ = false;
    done_ = false;
}

// ---------------------------------------------------------------------------
// icoll entry points

CollRequest iallgatherv(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
                        const dt::Datatype& sendtype, void* recvbuf,
                        std::span<const std::size_t> recvcounts,
                        std::span<const std::size_t> displs, const dt::Datatype& recvtype,
                        const CollConfig& config) {
    const int n = comm.size();
    const int rank = comm.rank();
    NNCOMM_CHECK_MSG(recvcounts.size() == static_cast<std::size_t>(n) &&
                         displs.size() == static_cast<std::size_t>(n),
                     "allgatherv: recvcounts/displs must have one entry per rank");
    NNCOMM_CHECK_MSG(sendcount * sendtype.size() ==
                         recvcounts[static_cast<std::size_t>(rank)] * recvtype.size(),
                     "allgatherv: send size differs from this rank's recv block");

    AllgathervAlgo algo = config.allgatherv_algo;
    if (algo == AllgathervAlgo::Auto) {
        std::vector<std::uint64_t> volumes(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            volumes[static_cast<std::size_t>(i)] =
                static_cast<std::uint64_t>(recvcounts[static_cast<std::size_t>(i)]) *
                recvtype.size();
        }
        algo = resolve_allgatherv_algo(volumes, config);
    }

    CollRequest req(comm,
                    build_allgatherv_schedule(rank, n, algo, sendcount, sendtype, recvcounts,
                                              displs, recvtype, comm.rendezvous_threshold()));
    req.start(sendbuf, recvbuf);
    return req;
}

CollRequest ialltoallw(rt::Comm& comm, const void* sendbuf,
                       std::span<const std::size_t> sendcounts,
                       std::span<const std::ptrdiff_t> sdispls,
                       std::span<const dt::Datatype> sendtypes, void* recvbuf,
                       std::span<const std::size_t> recvcounts,
                       std::span<const std::ptrdiff_t> rdispls,
                       std::span<const dt::Datatype> recvtypes, const CollConfig& config) {
    const auto n = static_cast<std::size_t>(comm.size());
    NNCOMM_CHECK_MSG(sendcounts.size() == n && sdispls.size() == n && sendtypes.size() == n &&
                         recvcounts.size() == n && rdispls.size() == n && recvtypes.size() == n,
                     "alltoallw: all argument arrays must have one entry per rank");
    const AlltoallwAlgo algo = (config.alltoallw_algo == AlltoallwAlgo::Auto)
                                   ? AlltoallwAlgo::Binned
                                   : config.alltoallw_algo;
    CollRequest req(comm, build_alltoallw_schedule(comm.rank(), comm.size(), algo, sendcounts,
                                                   sdispls, sendtypes, recvcounts, rdispls,
                                                   recvtypes, config.small_msg_threshold));
    req.start(sendbuf, recvbuf);
    return req;
}

CollRequest ibcast(rt::Comm& comm, void* buf, std::size_t count, const dt::Datatype& type,
                   int root) {
    NNCOMM_CHECK_MSG(root >= 0 && root < comm.size(), "bcast: invalid root");
    CollRequest req(comm, build_bcast_schedule(comm.rank(), comm.size(), root, count, type));
    req.start(nullptr, buf);
    return req;
}

CollRequest igatherv(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
                     const dt::Datatype& sendtype, void* recvbuf,
                     std::span<const std::size_t> recvcounts,
                     std::span<const std::size_t> displs, const dt::Datatype& recvtype,
                     int root) {
    const int n = comm.size();
    NNCOMM_CHECK_MSG(root >= 0 && root < n, "gatherv: invalid root");
    if (comm.rank() == root) {
        NNCOMM_CHECK_MSG(recvcounts.size() == static_cast<std::size_t>(n) &&
                             displs.size() == static_cast<std::size_t>(n),
                         "gatherv: root needs one count/displacement per rank");
    }
    CollRequest req(comm, build_gatherv_schedule(comm.rank(), n, root, sendcount, sendtype,
                                                 recvcounts, displs, recvtype));
    req.start(sendbuf, recvbuf);
    return req;
}

CollRequest iscatterv(rt::Comm& comm, const void* sendbuf,
                      std::span<const std::size_t> sendcounts,
                      std::span<const std::size_t> displs, const dt::Datatype& sendtype,
                      void* recvbuf, std::size_t recvcount, const dt::Datatype& recvtype,
                      int root) {
    const int n = comm.size();
    NNCOMM_CHECK_MSG(root >= 0 && root < n, "scatterv: invalid root");
    if (comm.rank() == root) {
        NNCOMM_CHECK_MSG(sendcounts.size() == static_cast<std::size_t>(n) &&
                             displs.size() == static_cast<std::size_t>(n),
                         "scatterv: root needs one count/displacement per rank");
    }
    CollRequest req(comm, build_scatterv_schedule(comm.rank(), n, root, sendcounts, displs,
                                                  sendtype, recvcount, recvtype));
    req.start(sendbuf, recvbuf);
    return req;
}

}  // namespace nncomm::coll

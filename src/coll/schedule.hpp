// Compiled schedule graphs for collective operations.
//
// Every collective in src/coll is split into two halves:
//
//   build — a pure function of (rank, size, shape) that emits a Schedule:
//     a DAG of rounds whose ops are Send / Recv / Pack / Unpack / Reduce /
//     Copy, each with explicit dependencies and a per-op rt::Protocol hint.
//     Builders perform no communication, so the netsim LogGP model lowers
//     the *same* Schedule objects into simulator programs — the predicted
//     Fig. 14/15 curves and the executable collectives can no longer drift.
//
//   execute — a progress-driven CollRequest state machine that runs the
//     schedule on the runtime's delivery engine. Receives are posted as
//     soon as their dependencies retire (so the zero-copy rendezvous path
//     keeps its posted-receive precondition), local ops and sends fire in
//     emission order, and completion is detected with the nonblocking
//     Comm::test. wait() drives the request to completion; test() performs
//     exactly one progress pass, which is what the split-phase VecScatter
//     and the overlap benches interleave with interior compute.
//
// Blocking entry points (coll::allgatherv, coll::alltoallw, coll::bcast,
// ...) are build + start + wait wrappers around the nonblocking icoll
// functions declared at the bottom, and produce byte-identical results to
// the pre-schedule implementations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "coll/collectives.hpp"
#include "datatype/engine.hpp"

namespace nncomm::rt {
class Win;
}  // namespace nncomm::rt

namespace nncomm::coll {

// ---------------------------------------------------------------------------
// TagSpace

/// One collective invocation's tag lane. Construction draws the next
/// collective epoch from the communicator and folds it into the base via
/// rt::epoch_tag, so two schedules concurrently in flight on the same
/// communicator (e.g. an icoll overlapped with another collective) occupy
/// disjoint lanes and can never match each other's traffic. This hoists
/// the epoch_tag boilerplate previously repeated across allgatherv.cpp /
/// alltoallw.cpp / basic.cpp / persistent.cpp.
class TagSpace {
public:
    TagSpace() = default;
    TagSpace(rt::Comm& comm, int base)
        : lane_(rt::epoch_tag(base, comm.next_collective_epoch())) {}

    /// Tag for `offset` within the lane. Offsets must stay below
    /// rt::kEpochTagStride or they would bleed into the next lane.
    int tag(int offset = 0) const {
        NNCOMM_CHECK_MSG(offset >= 0 && offset < rt::kEpochTagStride,
                         "TagSpace: offset outside the epoch lane");
        return lane_ + offset;
    }
    /// Epoch-folded lane base (tag(0)).
    int lane() const { return lane_; }

private:
    int lane_ = 0;
};

// ---------------------------------------------------------------------------
// Schedule

/// Put and Fence are the one-sided ops (persistent RMA plans): a Put packs
/// its typed source with the frozen plan kernels straight into the target
/// rank's window region (fused pack+put — no staging slot, no envelope, no
/// matching), a Fence is the collective epoch boundary that rides the
/// rt::Win seq-counter completion path. Neither touches the delivery
/// engine.
enum class ScheduleOpKind : std::uint8_t { Send, Recv, Copy, Pack, Unpack, Reduce, Put, Fence };

/// Position-independent buffer reference, bound to concrete pointers at
/// CollRequest::start(sendbuf, recvbuf). `None` means "no user buffer"
/// (zero-byte synchronization tokens). `Win` offsets into an rt::Win
/// region: the *target* rank's region for a Put's `b`, this rank's own
/// region for an Unpack's `b` (the executor resolves which through the
/// op's peer).
struct BufRef {
    enum class Space : std::uint8_t { None, Send, Recv, Win };
    Space space = Space::None;
    std::ptrdiff_t offset = 0;  ///< byte offset from the space base
};

/// Type-erased reduction kernel (captured from the ireduce<T> template so
/// the executor stays non-template): applies `op` elementwise,
/// acc[i] = op(acc[i], in[i]) for i < n, in the exact order apply_op uses.
using ReduceFn = void (*)(ReduceOp, void* acc, const void* in, std::size_t n);

/// One node of the schedule DAG. `deps` lists indices of ops (always
/// earlier in the vector) that must retire before this op may run;
/// receives additionally post as early as their deps allow so rendezvous
/// senders find them. `slot` stages Pack/Unpack/Reduce/staged-Copy traffic
/// through the request's persistent staging buffers; a Send with a slot
/// puts the packed staging bytes on the wire instead of the typed `a`.
struct ScheduleOp {
    ScheduleOpKind kind = ScheduleOpKind::Send;
    int round = 0;       ///< progress-group; also the netsim lowering round
    int peer = -1;       ///< Send/Recv partner rank
    int tag_offset = 0;  ///< tag = TagSpace::tag(tag_offset)
    rt::Protocol proto = rt::Protocol::Auto;  ///< Send volume hint

    BufRef a;  ///< Send src / Recv dst / Copy src / Pack src / Unpack dst / Reduce acc
    std::size_t count = 0;
    dt::Datatype type;

    BufRef b;  ///< Copy dst
    std::size_t bcount = 0;
    dt::Datatype btype;

    int slot = -1;            ///< staging slot (-1: none)
    std::uint64_t bytes = 0;  ///< wire/staging volume in bytes

    ReduceOp rop = ReduceOp::Sum;  ///< Reduce only
    ReduceFn rfn = nullptr;
    std::vector<int> deps;
};

/// A compiled collective: the full op DAG for ONE rank, plus the sizes of
/// the persistent staging slots the ops reference. tag_base is the
/// pre-epoch tag base (kInternalTagBase + collective offset); the executor
/// folds it into a fresh epoch lane per execution.
struct Schedule {
    int tag_base = rt::kInternalTagBase;
    int rounds = 1;
    std::vector<ScheduleOp> ops;
    std::vector<std::size_t> staging;  ///< bytes per staging slot
};

// ---------------------------------------------------------------------------
// Builders (communication-free; shared with src/netsim)

/// `algo` must be resolved (not Auto) — use resolve_allgatherv_algo.
Schedule build_allgatherv_schedule(int rank, int nranks, AllgathervAlgo algo,
                                   std::size_t sendcount, const dt::Datatype& sendtype,
                                   std::span<const std::size_t> recvcounts,
                                   std::span<const std::size_t> displs,
                                   const dt::Datatype& recvtype,
                                   std::size_t rendezvous_threshold);

/// The paper's Eq. 1 outlier selection over the volume set.
AllgathervAlgo resolve_allgatherv_algo(std::span<const std::uint64_t> volumes,
                                       const CollConfig& config);

/// `algo` must be RoundRobin or Binned (Auto resolves to Binned upstream).
Schedule build_alltoallw_schedule(int rank, int nranks, AlltoallwAlgo algo,
                                  std::span<const std::size_t> sendcounts,
                                  std::span<const std::ptrdiff_t> sdispls,
                                  std::span<const dt::Datatype> sendtypes,
                                  std::span<const std::size_t> recvcounts,
                                  std::span<const std::ptrdiff_t> rdispls,
                                  std::span<const dt::Datatype> recvtypes,
                                  std::size_t small_msg_threshold);

Schedule build_bcast_schedule(int rank, int nranks, int root, std::size_t count,
                              const dt::Datatype& type);

Schedule build_gatherv_schedule(int rank, int nranks, int root, std::size_t sendcount,
                                const dt::Datatype& sendtype,
                                std::span<const std::size_t> recvcounts,
                                std::span<const std::size_t> displs,
                                const dt::Datatype& recvtype);

Schedule build_scatterv_schedule(int rank, int nranks, int root,
                                 std::span<const std::size_t> sendcounts,
                                 std::span<const std::size_t> displs,
                                 const dt::Datatype& sendtype, std::size_t recvcount,
                                 const dt::Datatype& recvtype);

/// Binomial-tree reduce over `nbytes` of raw data (elems elements for the
/// reduction kernel). The mask-ascending apply order of the blocking
/// template is preserved exactly (Reduce ops chain on each other), so
/// floating-point results are bit-identical.
Schedule build_reduce_schedule(int rank, int nranks, int root, std::size_t nbytes,
                               ReduceOp op, ReduceFn fn, std::size_t elems);

/// One-sided alltoallw over a pre-negotiated rt::Win: round 0 opens the
/// access epoch (Fence), round 1 fires one fused pack+Put per nonzero
/// destination (binned small-first like the two-sided Binned schedule) plus
/// the self Copy, round 2 closes the epoch (Fence, depending on every Put),
/// round 3 Unpacks each source's bytes out of this rank's own window
/// region. No Send/Recv, no CTS, no staging slots. `target_offsets[d]` is
/// this rank's byte offset inside destination d's window; `my_offsets[s]`
/// is source s's byte offset inside this rank's window (both n-sized,
/// unused entries ignored). The offsets are exchanged once at plan setup —
/// steady state moves zero control messages.
Schedule build_alltoallw_rma_schedule(int rank, int nranks,
                                      std::span<const std::size_t> sendcounts,
                                      std::span<const std::ptrdiff_t> sdispls,
                                      std::span<const dt::Datatype> sendtypes,
                                      std::span<const std::size_t> recvcounts,
                                      std::span<const std::ptrdiff_t> rdispls,
                                      std::span<const dt::Datatype> recvtypes,
                                      std::span<const std::uint64_t> target_offsets,
                                      std::span<const std::uint64_t> my_offsets,
                                      std::size_t small_msg_threshold);

// ---------------------------------------------------------------------------
// CollRequest — the schedule executor

/// Progress-driven executor for one Schedule. One execution:
///
///   start(sendbuf, recvbuf)  — binds buffers, draws a fresh tag epoch,
///                              runs one progress pass (posting round-zero
///                              receives and firing eligible work, exactly
///                              like the blocking entry points did).
///   test()                   — one nonblocking progress pass; true once
///                              every op retired. This is the overlap hook.
///   wait()                   — drives passes to completion, parking on
///                              the runtime's blocking wait when a pass
///                              makes no progress (no spinning).
///
/// Persistent plans reuse one CollRequest across executes via reset():
/// staging buffers and pack engines survive, so the steady state performs
/// no allocations (bench_persistent_scatter's rt_payload_allocs == 0 and
/// scratch_allocs invariants hold on this path).
///
/// Statistics (pack counters, the coll_* schedule counters, phase timers)
/// accumulate per execution and fold into the Comm when the last op
/// retires.
class CollRequest {
public:
    CollRequest() = default;
    CollRequest(rt::Comm& comm, Schedule schedule);

    CollRequest(CollRequest&&) = default;
    CollRequest& operator=(CollRequest&&) = default;
    CollRequest(const CollRequest&) = delete;
    CollRequest& operator=(const CollRequest&) = delete;

    /// True once bound to a communicator and schedule.
    bool valid() const { return comm_ != nullptr; }
    /// True between start() and completion.
    bool active() const { return started_ && !done_; }
    bool done() const { return done_; }

    /// Begins one execution. sendbuf may be null when no op reads the Send
    /// space (e.g. bcast/reduce operate in place through the Recv space).
    /// Buffers must stay valid and unmodified (sendbuf) / untouched
    /// (recvbuf) until completion.
    void start(const void* sendbuf, void* recvbuf);

    /// One nonblocking progress pass; returns completion. Counted in
    /// coll_overlap_progress_calls.
    bool test();

    /// Blocks until every op has retired. Returns immediately if done.
    void wait();

    /// Prepares for the next execution (persistent plans). Must not be
    /// called while active. Staging buffers and pack engines are kept.
    void reset();
    /// Drops the persistent pack engines (engine-config change).
    void invalidate_engines() { engines_.clear(); }
    /// Selects the pack-engine kind for Pack ops (default: the Comm's
    /// engine at start()).
    void set_pack_engine(dt::EngineKind kind) {
        engine_kind_ = kind;
        engine_kind_set_ = true;
    }

    /// Binds the rt::Win that Put/Fence/window-Unpack ops operate on.
    /// Required before start() when the schedule contains one-sided ops;
    /// the window must outlive the request. Not owned.
    void set_window(rt::Win* win) { win_ = win; }

    /// Folds extra statistics into the next execution's step (persistent
    /// plans inject persistent_executes / cache hits / setup costs).
    void inject(const StatCounters& extra) { pending_setup_ += extra; }
    /// Statistics of the last completed execution (what was folded into
    /// the Comm).
    const StatCounters& last_step() const { return step_; }

    const Schedule& schedule() const { return sched_; }

private:
    enum : std::uint8_t { kPending = 0, kPosted = 1, kDone = 2 };

    bool deps_done(const ScheduleOp& op) const;
    bool pass();          ///< one progress pass; true when complete
    void post_recv(std::size_t i);
    void post_send(std::size_t i);
    void run_local(std::size_t i);
    /// Chunk-pipelined rendezvous for a fusable Pack op: when Pack i feeds
    /// exactly one Rendezvous Send through a private staging slot and the
    /// matching receive is already posted, the pack streams straight into
    /// the receiver through a pipeline_chunk-sized window of the slot
    /// (rt::Comm::try_rendezvous_staged_i) and both ops retire at once.
    /// Returns false — caller packs and sends serially — whenever the fused
    /// transfer cannot run (pipeline disabled, small payload, unposted
    /// receive, active SchedulePolicy, FIFO guard).
    bool try_fused(std::size_t i);
    void mark_done(std::size_t i);
    void finalize();
    std::byte* resolve(const BufRef& ref) const;

    rt::Comm* comm_ = nullptr;
    rt::Win* win_ = nullptr;  ///< one-sided ops only; not owned
    Schedule sched_;
    TagSpace tags_;
    const void* sendbuf_ = nullptr;
    void* recvbuf_ = nullptr;

    std::vector<std::uint8_t> state_;
    std::vector<rt::Request> reqs_;
    /// fused_send_[i] = index of the lone Rendezvous Send fed by Pack op i
    /// through a staging slot referenced by no other op (-1: not fusable).
    /// Computed once at construction from the schedule's static shape.
    std::vector<int> fused_send_;
    std::vector<std::vector<std::byte>> staging_;              ///< persistent
    std::vector<std::unique_ptr<dt::PackEngine>> engines_;     ///< persistent
    std::vector<int> round_left_;
    std::size_t remaining_ = 0;
    bool started_ = false;
    bool done_ = false;
    bool moved_ = false;  ///< last pass made progress

    dt::EngineKind engine_kind_ = dt::EngineKind::DualContext;
    bool engine_kind_set_ = false;
    std::byte token_{};  ///< zero-byte send/recv landing pad

    StatCounters step_;
    StatCounters pending_setup_;
    PhaseTimers step_timers_;
};

// ---------------------------------------------------------------------------
// Nonblocking collectives (icoll)

/// Nonblocking allgatherv: returns a started CollRequest; drive it with
/// test()/wait(). Argument contract matches coll::allgatherv.
CollRequest iallgatherv(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
                        const dt::Datatype& sendtype, void* recvbuf,
                        std::span<const std::size_t> recvcounts,
                        std::span<const std::size_t> displs, const dt::Datatype& recvtype,
                        const CollConfig& config = {});

CollRequest ialltoallw(rt::Comm& comm, const void* sendbuf,
                       std::span<const std::size_t> sendcounts,
                       std::span<const std::ptrdiff_t> sdispls,
                       std::span<const dt::Datatype> sendtypes, void* recvbuf,
                       std::span<const std::size_t> recvcounts,
                       std::span<const std::ptrdiff_t> rdispls,
                       std::span<const dt::Datatype> recvtypes, const CollConfig& config = {});

CollRequest ibcast(rt::Comm& comm, void* buf, std::size_t count, const dt::Datatype& type,
                   int root);

CollRequest igatherv(rt::Comm& comm, const void* sendbuf, std::size_t sendcount,
                     const dt::Datatype& sendtype, void* recvbuf,
                     std::span<const std::size_t> recvcounts,
                     std::span<const std::size_t> displs, const dt::Datatype& recvtype,
                     int root);

CollRequest iscatterv(rt::Comm& comm, const void* sendbuf,
                      std::span<const std::size_t> sendcounts,
                      std::span<const std::size_t> displs, const dt::Datatype& sendtype,
                      void* recvbuf, std::size_t recvcount, const dt::Datatype& recvtype,
                      int root);

/// Nonblocking binomial reduce; same in-place contract as coll::reduce.
/// `data` must stay untouched until completion.
template <typename T>
CollRequest ireduce(rt::Comm& comm, T* data, std::size_t n, ReduceOp op, int root) {
    static_assert(std::is_arithmetic_v<T>);
    const ReduceFn fn = [](ReduceOp o, void* acc, const void* in, std::size_t cnt) {
        detail::apply_op(o, static_cast<T*>(acc), static_cast<const T*>(in), cnt);
    };
    CollRequest req(comm, build_reduce_schedule(comm.rank(), comm.size(), root, n * sizeof(T),
                                                op, fn, n));
    req.start(nullptr, data);
    return req;
}

}  // namespace nncomm::coll

// Shared helpers for the collective implementations.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "datatype/pack.hpp"
#include "runtime/comm.hpp"

namespace nncomm::coll::detail {

/// Datatype-converting local copy (the MPI "self send"): packs the send
/// layout and unpacks it into the receive layout. Sizes must agree.
/// Src and dst may alias: the identical in-place case is a no-op, partially
/// overlapping contiguous ranges go through memmove, and the noncontiguous
/// path always stages through a pack buffer.
inline void copy_typed(const void* src, std::size_t scount, const dt::Datatype& stype,
                       void* dst, std::size_t rcount, const dt::Datatype& rtype) {
    const std::size_t bytes = scount * stype.size();
    NNCOMM_CHECK_MSG(bytes == rcount * rtype.size(), "typed copy: size mismatch");
    if (bytes == 0) return;
    if (stype.flat().contiguous() && rtype.flat().contiguous()) {
        if (src == dst) return;
        std::memmove(dst, src, bytes);
        return;
    }
    auto packed = dt::pack_all(src, stype, scount);
    dt::unpack_all(dst, rtype, rcount, packed);
}

/// Builds an hindexed datatype addressing recvbuf blocks `first..first+n-1`
/// (indices taken modulo nblocks, enumerated oldest-first) of an
/// allgatherv result layout: block b = recvcounts[b] elements of `elem` at
/// element offset displs[b]. Used to send/receive several blocks of the
/// result buffer as one noncontiguous message.
inline dt::Datatype block_range_type(std::span<const std::size_t> recvcounts,
                                     std::span<const std::size_t> displs,
                                     const dt::Datatype& elem, int first, int n) {
    const int nblocks = static_cast<int>(recvcounts.size());
    std::vector<std::size_t> lens;
    std::vector<std::ptrdiff_t> offs;
    lens.reserve(static_cast<std::size_t>(n));
    offs.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) {
        const int b = ((first + t) % nblocks + nblocks) % nblocks;
        lens.push_back(recvcounts[static_cast<std::size_t>(b)]);
        offs.push_back(static_cast<std::ptrdiff_t>(displs[static_cast<std::size_t>(b)]) *
                       elem.extent());
    }
    return dt::Datatype::hindexed(lens, offs, elem);
}

}  // namespace nncomm::coll::detail

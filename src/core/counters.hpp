// Lightweight statistics counters and phase timers.
//
// Figure 13 of the paper breaks datatype-processing time into Comm, Pack
// and Search phases. PhaseTimers accumulates wall-clock per named phase;
// StatCounters accumulates event counts (blocks searched, bytes packed,
// look-ahead elements parsed, ...). Both are plain value types — each rank
// or engine owns its own instance, so no synchronization is needed.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace nncomm {

/// Phases instrumented by the datatype engines and the runtime send path.
enum class Phase : int {
    Comm = 0,    ///< time spent moving bytes between ranks
    Pack = 1,    ///< time spent copying noncontiguous data into pack buffers
    Search = 2,  ///< time spent re-locating the pack position in the datatype
    Other = 3,
};

inline const char* phase_name(Phase p) {
    switch (p) {
        case Phase::Comm: return "Comm";
        case Phase::Pack: return "Pack";
        case Phase::Search: return "Search";
        case Phase::Other: return "Other";
    }
    return "?";
}

/// Accumulates nanoseconds per phase. Scoped measurement via PhaseScope.
class PhaseTimers {
public:
    static constexpr int kNumPhases = 4;

    void add(Phase p, std::chrono::nanoseconds dt) {
        ns_[static_cast<int>(p)] += static_cast<std::uint64_t>(dt.count());
    }
    void add_ns(Phase p, std::uint64_t ns) { ns_[static_cast<int>(p)] += ns; }

    std::uint64_t ns(Phase p) const { return ns_[static_cast<int>(p)]; }
    double seconds(Phase p) const { return static_cast<double>(ns(p)) * 1e-9; }

    std::uint64_t total_ns() const {
        std::uint64_t t = 0;
        for (auto v : ns_) t += v;
        return t;
    }

    void reset() { ns_.fill(0); }

    PhaseTimers& operator+=(const PhaseTimers& other) {
        for (int i = 0; i < kNumPhases; ++i) ns_[static_cast<std::size_t>(i)] += other.ns_[static_cast<std::size_t>(i)];
        return *this;
    }

private:
    std::array<std::uint64_t, kNumPhases> ns_{};
};

/// RAII scope that charges its lifetime to one phase of a PhaseTimers.
class PhaseScope {
public:
    PhaseScope(PhaseTimers& timers, Phase phase)
        : timers_(timers), phase_(phase), start_(std::chrono::steady_clock::now()) {}
    ~PhaseScope() { timers_.add(phase_, std::chrono::steady_clock::now() - start_); }

    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

private:
    PhaseTimers& timers_;
    Phase phase_;
    std::chrono::steady_clock::time_point start_;
};

/// Event counters for datatype-engine behaviour. These are what the
/// quadratic-search analysis is stated in terms of: the baseline engine's
/// `search_blocks_visited` grows quadratically with datatype size, the
/// dual-context engine's stays zero while `lookahead_blocks` stays ~linear.
struct StatCounters {
    std::uint64_t bytes_packed = 0;
    std::uint64_t blocks_packed = 0;
    std::uint64_t search_events = 0;          ///< how many times a re-search ran
    std::uint64_t search_blocks_visited = 0;  ///< blocks walked during re-searches
    std::uint64_t lookahead_events = 0;
    std::uint64_t lookahead_blocks = 0;       ///< signature elements parsed ahead
    std::uint64_t dense_chunks = 0;
    std::uint64_t sparse_chunks = 0;

    // Pack-plan / persistence counters (plan.hpp, coll/persistent.hpp).
    std::uint64_t plan_hits = 0;       ///< reuses of an already-compiled pack plan
    std::uint64_t plan_compiles = 0;   ///< pack-plan compilations (cache misses)
    std::uint64_t engine_builds = 0;   ///< PackEngine constructions
    std::uint64_t scratch_allocs = 0;  ///< scratch/staging buffer (re)allocations
    std::uint64_t persistent_executes = 0;  ///< persistent-plan execute() calls

    // Delivery-engine perturbation / fault-injection counters
    // (runtime/schedule.hpp). Enqueue-side events are charged to the
    // sending rank; delivery-side events to the rank driving progress.
    std::uint64_t sched_pending_sends = 0;  ///< envelopes routed through the in-flight queue
    std::uint64_t sched_deferrals = 0;      ///< envelopes assigned a nonzero defer budget
    std::uint64_t sched_reorders = 0;       ///< injected same-pair FIFO violations
    std::uint64_t sched_stalls = 0;         ///< injected sender stalls
    std::uint64_t sched_wakeup_delays = 0;  ///< suppressed waiter notifications

    // Runtime transfer-protocol counters (runtime/comm.cpp). The eager path
    // stages every payload in an envelope buffer (drawn from the per-world
    // pool) and copies twice; the rendezvous path moves messages with an
    // already-posted receive straight into the receiver's buffer in one
    // pass. Sender-side events are charged to the sending rank; the
    // receive-side unpack copy to the receiving rank.
    std::uint64_t rt_zero_copy_msgs = 0;  ///< messages transferred rendezvous (no envelope)
    std::uint64_t rt_bytes_copied = 0;    ///< payload bytes moved by runtime copy passes
    std::uint64_t rt_pool_hits = 0;       ///< payload buffers recycled from the world pool
    std::uint64_t rt_pool_misses = 0;     ///< pool-eligible acquires that found no free buffer
    std::uint64_t rt_payload_allocs = 0;  ///< payload heap allocations (misses + oversize)

    // Contention-free transport counters (runtime/comm.cpp). The sharded
    // mailbox delivers along per-(source, dest) lanes: an SPSC lock-free
    // ring is the fastpath, a mutex-guarded overflow list absorbs ring-full
    // spill and all SchedulePolicy-routed traffic. rt_lock_acquisitions
    // counts transport-layer mutex acquisitions (overflow, posted-receive
    // registry, shared payload pool, in-flight queues) so a workload can
    // assert its steady state stays off the locks; rt_cv_waits/rt_cv_notifies
    // count actual condition-variable blocks and wakeups after the bounded
    // spin-then-sleep and notify-only-when-a-sleeper-is-registered gates.
    std::uint64_t rt_lane_fast_deliveries = 0;      ///< envelopes delivered via an SPSC lane ring
    std::uint64_t rt_lane_overflow_deliveries = 0;  ///< envelopes routed via the overflow list
    std::uint64_t rt_lock_acquisitions = 0;         ///< transport mutex acquisitions
    std::uint64_t rt_cv_waits = 0;                  ///< condition-variable blocks (post-spin)
    std::uint64_t rt_cv_notifies = 0;               ///< condition-variable notify calls issued
    std::uint64_t rt_pool_local_hits = 0;           ///< acquires served by the per-rank pool cache
    /// High-water mark of bytes resident in the shared payload pool as
    /// observed by this rank's acquire/release calls. Composes by max, not
    /// sum: merging counters keeps the largest observed value.
    std::uint64_t rt_pool_resident_bytes = 0;

    // Schedule-graph collective counters (coll/schedule.hpp). Every
    // collective — blocking or icoll — compiles a Schedule and executes it
    // through a CollRequest; these make that path observable like the
    // rt_*/sched_* families.
    std::uint64_t coll_schedules_built = 0;      ///< Schedule compilations
    std::uint64_t coll_schedule_cache_hits = 0;  ///< reuses of a cached compiled Schedule
    std::uint64_t coll_rounds_executed = 0;      ///< schedule rounds fully retired
    std::uint64_t coll_overlap_progress_calls = 0;  ///< CollRequest::test() progress pokes

    // Sparse dynamic data exchange counters (runtime/sparse.cpp). One NBX
    // exchange per collective call; messages count only true remote
    // payloads (self-delivery is a local copy and acks are zero-byte
    // control traffic tallied separately).
    std::uint64_t rt_sparse_exchanges = 0;   ///< sparse_exchange invocations completed
    std::uint64_t rt_sparse_msgs_sent = 0;   ///< remote payload messages sent
    std::uint64_t rt_sparse_msgs_recvd = 0;  ///< remote payload messages received
    std::uint64_t rt_sparse_probe_polls = 0; ///< consensus-loop iprobe passes

    // Adaptive protocol-selection counters (runtime/protocol.hpp +
    // runtime/comm.cpp). Every Protocol::Auto resolution against a learned
    // (or fallback static) threshold tallies which path it chose; the
    // threshold water marks record the range of effective thresholds the
    // resolver actually used, so a bench can attest adaptation moved the
    // crossover rather than sitting on the default. The rt_rdzv_pipelined_*
    // counters cover the chunk-pipelined rendezvous path where packing
    // chunk k+1 overlaps the copy of chunk k.
    std::uint64_t rt_proto_adapt_updates = 0;  ///< cost-model observations recorded
    std::uint64_t rt_proto_eager_chosen = 0;   ///< Auto resolutions that picked eager
    std::uint64_t rt_proto_rdzv_chosen = 0;    ///< Auto resolutions that picked rendezvous
    /// High/low water marks of the effective rendezvous threshold (bytes)
    /// used by Auto resolutions. _hi composes by max, _lo by min over
    /// nonzero values (0 = never observed).
    std::uint64_t rt_proto_threshold_bytes_hi = 0;
    std::uint64_t rt_proto_threshold_bytes_lo = 0;
    std::uint64_t rt_rdzv_pipelined_msgs = 0;    ///< fused pack+copy rendezvous sends
    std::uint64_t rt_rdzv_pipelined_chunks = 0;  ///< chunks moved through the fused path

    // One-sided RMA counters (runtime/win.cpp + coll/persistent.cpp). Puts
    // and gets are window transfers (a fused pack straight into the target
    // region counts as one put); fences tally epoch closes, flushes the
    // per-target completion calls, pscw epochs the start/complete pairs. A
    // steady-state RMA plan execute shows puts and fences but zero
    // deliveries and zero matching traffic — that absence is the point, and
    // benches attest it through these counters.
    std::uint64_t rt_rma_puts = 0;         ///< window puts issued
    std::uint64_t rt_rma_put_bytes = 0;    ///< bytes written by puts
    std::uint64_t rt_rma_gets = 0;         ///< window gets issued
    std::uint64_t rt_rma_get_bytes = 0;    ///< bytes read by gets
    std::uint64_t rt_rma_fences = 0;       ///< fence epochs closed
    std::uint64_t rt_rma_flushes = 0;      ///< per-target / all-target flushes
    std::uint64_t rt_rma_pscw_epochs = 0;  ///< pscw access epochs completed
    std::uint64_t coll_rma_plan_executes = 0;  ///< persistent-plan executes on the RMA path

    // Datatype kernel-dispatch counters (datatype/plan.cpp + simd.cpp).
    // Every PackPlan::pack_range/unpack_range call is tallied per compiled
    // kernel class (indexed by PackKernel: Contiguous=0, Strided=1,
    // BlockedStrided=2, Irregular=3); the dt_simd_* byte counts cover only
    // bytes moved through vector-register kernels, so benches can attest
    // the SIMD path actually ran rather than the scalar floor.
    std::uint64_t dt_simd_pack_bytes = 0;    ///< pack bytes moved by vector kernels
    std::uint64_t dt_simd_unpack_bytes = 0;  ///< unpack bytes moved by vector kernels
    std::array<std::uint64_t, 4> dt_kernel_dispatch{};  ///< calls per PackKernel class

    void reset() { *this = StatCounters{}; }

    StatCounters& operator+=(const StatCounters& o) {
        bytes_packed += o.bytes_packed;
        blocks_packed += o.blocks_packed;
        search_events += o.search_events;
        search_blocks_visited += o.search_blocks_visited;
        lookahead_events += o.lookahead_events;
        lookahead_blocks += o.lookahead_blocks;
        dense_chunks += o.dense_chunks;
        sparse_chunks += o.sparse_chunks;
        plan_hits += o.plan_hits;
        plan_compiles += o.plan_compiles;
        engine_builds += o.engine_builds;
        scratch_allocs += o.scratch_allocs;
        persistent_executes += o.persistent_executes;
        sched_pending_sends += o.sched_pending_sends;
        sched_deferrals += o.sched_deferrals;
        sched_reorders += o.sched_reorders;
        sched_stalls += o.sched_stalls;
        sched_wakeup_delays += o.sched_wakeup_delays;
        rt_zero_copy_msgs += o.rt_zero_copy_msgs;
        rt_bytes_copied += o.rt_bytes_copied;
        rt_pool_hits += o.rt_pool_hits;
        rt_pool_misses += o.rt_pool_misses;
        rt_payload_allocs += o.rt_payload_allocs;
        rt_lane_fast_deliveries += o.rt_lane_fast_deliveries;
        rt_lane_overflow_deliveries += o.rt_lane_overflow_deliveries;
        rt_lock_acquisitions += o.rt_lock_acquisitions;
        rt_cv_waits += o.rt_cv_waits;
        rt_cv_notifies += o.rt_cv_notifies;
        rt_pool_local_hits += o.rt_pool_local_hits;
        if (o.rt_pool_resident_bytes > rt_pool_resident_bytes) {
            rt_pool_resident_bytes = o.rt_pool_resident_bytes;
        }
        rt_proto_adapt_updates += o.rt_proto_adapt_updates;
        rt_proto_eager_chosen += o.rt_proto_eager_chosen;
        rt_proto_rdzv_chosen += o.rt_proto_rdzv_chosen;
        if (o.rt_proto_threshold_bytes_hi > rt_proto_threshold_bytes_hi) {
            rt_proto_threshold_bytes_hi = o.rt_proto_threshold_bytes_hi;
        }
        if (o.rt_proto_threshold_bytes_lo != 0 &&
            (rt_proto_threshold_bytes_lo == 0 ||
             o.rt_proto_threshold_bytes_lo < rt_proto_threshold_bytes_lo)) {
            rt_proto_threshold_bytes_lo = o.rt_proto_threshold_bytes_lo;
        }
        rt_rdzv_pipelined_msgs += o.rt_rdzv_pipelined_msgs;
        rt_rdzv_pipelined_chunks += o.rt_rdzv_pipelined_chunks;
        rt_rma_puts += o.rt_rma_puts;
        rt_rma_put_bytes += o.rt_rma_put_bytes;
        rt_rma_gets += o.rt_rma_gets;
        rt_rma_get_bytes += o.rt_rma_get_bytes;
        rt_rma_fences += o.rt_rma_fences;
        rt_rma_flushes += o.rt_rma_flushes;
        rt_rma_pscw_epochs += o.rt_rma_pscw_epochs;
        coll_rma_plan_executes += o.coll_rma_plan_executes;
        rt_sparse_exchanges += o.rt_sparse_exchanges;
        rt_sparse_msgs_sent += o.rt_sparse_msgs_sent;
        rt_sparse_msgs_recvd += o.rt_sparse_msgs_recvd;
        rt_sparse_probe_polls += o.rt_sparse_probe_polls;
        coll_schedules_built += o.coll_schedules_built;
        coll_schedule_cache_hits += o.coll_schedule_cache_hits;
        coll_rounds_executed += o.coll_rounds_executed;
        coll_overlap_progress_calls += o.coll_overlap_progress_calls;
        dt_simd_pack_bytes += o.dt_simd_pack_bytes;
        dt_simd_unpack_bytes += o.dt_simd_unpack_bytes;
        for (std::size_t i = 0; i < dt_kernel_dispatch.size(); ++i) {
            dt_kernel_dispatch[i] += o.dt_kernel_dispatch[i];
        }
        return *this;
    }
};

}  // namespace nncomm

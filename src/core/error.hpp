// Error handling primitives shared by every nncomm module.
//
// The library throws nncomm::Error for precondition violations and
// unrecoverable runtime failures. NNCOMM_CHECK is used at public API
// boundaries (always on); NNCOMM_ASSERT guards internal invariants and
// compiles to nothing in NDEBUG builds.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>

namespace nncomm {

/// Exception type thrown on contract violations and runtime failures.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* cond, const char* file, int line,
                              const std::string& msg) {
    std::string full = std::string(kind) + " failed: " + cond + " at " + file + ":" +
                       std::to_string(line);
    if (!msg.empty()) full += " — " + msg;
    throw Error(full);
}
}  // namespace detail

}  // namespace nncomm

#define NNCOMM_CHECK(cond)                                                            \
    do {                                                                              \
        if (!(cond)) ::nncomm::detail::fail("check", #cond, __FILE__, __LINE__, ""); \
    } while (0)

#define NNCOMM_CHECK_MSG(cond, msg)                                                     \
    do {                                                                                \
        if (!(cond)) ::nncomm::detail::fail("check", #cond, __FILE__, __LINE__, (msg)); \
    } while (0)

#ifdef NDEBUG
#define NNCOMM_ASSERT(cond) ((void)0)
#else
#define NNCOMM_ASSERT(cond)                                                            \
    do {                                                                               \
        if (!(cond)) ::nncomm::detail::fail("assert", #cond, __FILE__, __LINE__, ""); \
    } while (0)
#endif

// Floyd–Rivest SELECT: expected-linear-time k-th smallest element.
//
// The paper (§4.2.1) identifies nonuniformities in the communication-volume
// set by comparing order statistics obtained with "the algorithm by Floyd
// and Rivest to evaluate k_select() in linear time". This header implements
// that algorithm (Floyd & Rivest, CACM 1975, algorithm SELECT with the
// sampling refinement) for arbitrary random-access ranges.
//
// kselect(values, k) returns the k-th smallest element with k in [1, n]
// (1-based, matching the paper's notation where k_select(S, N) is the
// maximum of an N-element set). The input span is permuted in place, as
// with std::nth_element.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/error.hpp"

namespace nncomm {

namespace detail {

// Floyd–Rivest SELECT on v[left..right] (inclusive), positioning the element
// of rank `k` (0-based absolute index into v) at v[k].
template <typename T>
void floyd_rivest_select(std::span<T> v, std::ptrdiff_t left, std::ptrdiff_t right,
                         std::ptrdiff_t k) {
    using std::swap;
    while (right > left) {
        // For large ranges, recursively select a pivot from a sample so the
        // expected number of comparisons approaches n + min(k, n-k).
        if (right - left > 600) {
            const double n = static_cast<double>(right - left + 1);
            const double i = static_cast<double>(k - left + 1);
            const double z = std::log(n);
            const double s = 0.5 * std::exp(2.0 * z / 3.0);
            const double sign = (i - n / 2.0 < 0) ? -1.0 : 1.0;
            const double sd = 0.5 * std::sqrt(z * s * (n - s) / n) * sign;
            const auto new_left = std::max(
                left, static_cast<std::ptrdiff_t>(static_cast<double>(k) - i * s / n + sd));
            const auto new_right = std::min(
                right,
                static_cast<std::ptrdiff_t>(static_cast<double>(k) + (n - i) * s / n + sd));
            floyd_rivest_select(v, new_left, new_right, k);
        }
        // Partition around v[k] (three-way-ish Hoare partition from the
        // original algorithm).
        const T t = v[static_cast<std::size_t>(k)];
        std::ptrdiff_t i = left;
        std::ptrdiff_t j = right;
        swap(v[static_cast<std::size_t>(left)], v[static_cast<std::size_t>(k)]);
        if (v[static_cast<std::size_t>(right)] > t) {
            swap(v[static_cast<std::size_t>(right)], v[static_cast<std::size_t>(left)]);
        }
        while (i < j) {
            swap(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(j)]);
            ++i;
            --j;
            while (v[static_cast<std::size_t>(i)] < t) ++i;
            while (v[static_cast<std::size_t>(j)] > t) --j;
        }
        if (v[static_cast<std::size_t>(left)] == t) {
            swap(v[static_cast<std::size_t>(left)], v[static_cast<std::size_t>(j)]);
        } else {
            ++j;
            swap(v[static_cast<std::size_t>(j)], v[static_cast<std::size_t>(right)]);
        }
        // Narrow the range to the side containing rank k.
        if (j <= k) left = j + 1;
        if (k <= j) right = j - 1;
    }
}

}  // namespace detail

/// Returns the k-th smallest element (1-based rank) of `values`, permuting
/// the span in place. kselect(v, 1) is the minimum; kselect(v, v.size())
/// is the maximum.
template <typename T>
T kselect(std::span<T> values, std::size_t k) {
    NNCOMM_CHECK_MSG(!values.empty(), "kselect of empty set");
    NNCOMM_CHECK_MSG(k >= 1 && k <= values.size(), "kselect rank out of range");
    detail::floyd_rivest_select(values, 0, static_cast<std::ptrdiff_t>(values.size()) - 1,
                                static_cast<std::ptrdiff_t>(k - 1));
    return values[k - 1];
}

/// Non-destructive convenience overload: copies, then selects.
template <typename T>
T kselect_copy(std::span<const T> values, std::size_t k) {
    std::vector<T> tmp(values.begin(), values.end());
    return kselect(std::span<T>(tmp), k);
}

}  // namespace nncomm

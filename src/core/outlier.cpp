#include "core/outlier.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/error.hpp"
#include "core/kselect.hpp"

namespace nncomm {

OutlierAnalysis analyze_volumes(std::span<const std::uint64_t> volumes,
                                const OutlierConfig& config) {
    NNCOMM_CHECK_MSG(!volumes.empty(), "analyze_volumes: empty volume set");
    NNCOMM_CHECK_MSG(config.outlier_fract > 0.0 && config.outlier_fract <= 1.0,
                     "analyze_volumes: outlier_fract must be in (0, 1]");

    OutlierAnalysis out;
    const std::size_t n = volumes.size();
    std::vector<std::uint64_t> scratch(volumes.begin(), volumes.end());

    // Rank of the bulk quantile, clamped to [1, n]. With outlier_fract = 0.9
    // and n = 64 this is the 57th smallest volume.
    const auto bulk_rank = std::clamp<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(n) * config.outlier_fract), 1, n);

    out.bulk_volume = kselect(std::span<std::uint64_t>(scratch), bulk_rank);
    out.max_volume = kselect(std::span<std::uint64_t>(scratch), n);

    if (out.bulk_volume == 0) {
        // All-bulk-zero sets: any nonzero max means pure outliers.
        out.ratio = (out.max_volume == 0) ? 1.0 : std::numeric_limits<double>::infinity();
    } else {
        out.ratio = static_cast<double>(out.max_volume) / static_cast<double>(out.bulk_volume);
    }
    out.nonuniform = out.ratio > config.ratio_threshold;
    return out;
}

bool volumes_nonuniform(std::span<const std::uint64_t> volumes, const OutlierConfig& config) {
    return analyze_volumes(volumes, config).nonuniform;
}

bool allgatherv_use_ring(std::span<const std::uint64_t> volumes,
                         const AllgathervPolicy& policy) {
    if (analyze_volumes(volumes, policy.outlier).nonuniform) return false;
    std::uint64_t total = 0;
    for (auto v : volumes) total += v;
    return total >= policy.long_msg_total;
}

}  // namespace nncomm

// Outlier detection over communication-volume sets (paper §4.2.1, Eq. 1).
//
//                    k_select(COMM_VOL_SET, N)
//   outlier_ratio = ---------------------------------------------
//                    k_select(COMM_VOL_SET, N * OUTLIER_FRACT)
//
// i.e. the ratio between the largest volume and the volume at the
// OUTLIER_FRACT quantile. If a small subset of the volumes falls far
// outside the range covering the bulk of the messages, the ratio is large
// and the volume set is declared nonuniform — which drives the collective
// algorithm selection (ring vs recursive doubling / dissemination).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace nncomm {

/// Tunables for Eq. 1. The defaults mirror the paper's framing: volumes are
/// "outliers" when the top (1 - fraction) of the set is at least
/// `ratio_threshold` times the bulk.
struct OutlierConfig {
    /// Fraction of processes whose volumes are considered "the bulk".
    double outlier_fract = 0.9;
    /// Ratio above which the volume set is declared nonuniform.
    double ratio_threshold = 4.0;
};

/// Result of analyzing one communication-volume set.
struct OutlierAnalysis {
    double ratio = 1.0;        ///< Eq. 1 value (>= 1 when bulk volume > 0).
    std::uint64_t max_volume = 0;   ///< k_select(S, N)
    std::uint64_t bulk_volume = 0;  ///< k_select(S, N * OUTLIER_FRACT)
    bool nonuniform = false;   ///< ratio > config.ratio_threshold
};

/// Computes Eq. 1 over `volumes` (bytes per process) in expected linear
/// time via Floyd–Rivest k-select. Zero-volume bulk with a nonzero max is
/// treated as infinitely nonuniform.
OutlierAnalysis analyze_volumes(std::span<const std::uint64_t> volumes,
                                const OutlierConfig& config = {});

/// Convenience: true when the volume set should be treated as nonuniform.
bool volumes_nonuniform(std::span<const std::uint64_t> volumes,
                        const OutlierConfig& config = {});

/// Allgatherv algorithm-selection policy (shared by the executable
/// collectives in src/coll and the simulated schedules in src/netsim so
/// the two can never disagree): the ring is used only for uniform volume
/// sets whose total is large; nonuniform or small sets use a
/// binomial-pattern algorithm (recursive doubling / dissemination).
struct AllgathervPolicy {
    OutlierConfig outlier{};
    std::uint64_t long_msg_total = 512 * 1024;
};

bool allgatherv_use_ring(std::span<const std::uint64_t> volumes,
                         const AllgathervPolicy& policy = {});

}  // namespace nncomm

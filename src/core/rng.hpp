// Deterministic pseudo-random number generation for tests, workload
// generators and the cluster skew model.
//
// xoshiro256** seeded by splitmix64 — fast, reproducible across platforms,
// and independent of libstdc++'s distribution implementations (we provide
// our own uniform/exponential helpers so simulated results are bit-stable).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace nncomm {

class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        // splitmix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto& s : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            s = z ^ (z >> 31);
        }
    }

    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
        const std::uint64_t span = hi - lo + 1;
        // Rejection-free modulo bias is negligible for our span sizes, but
        // use Lemire's multiply-shift reduction anyway for uniformity.
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next_u64()) * static_cast<unsigned __int128>(span);
        return lo + static_cast<std::uint64_t>(m >> 64);
    }

    std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) {
        return lo + static_cast<std::int64_t>(
                        uniform_u64(0, static_cast<std::uint64_t>(hi - lo)));
    }

    /// Uniform double in [0, 1).
    double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Exponential with the given mean (for skew / noise models).
    double exponential(double mean) {
        double u = uniform();
        if (u <= 0.0) u = 0x1.0p-53;
        return -mean * std::log(u);
    }

    bool bernoulli(double p) { return uniform() < p; }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
    std::array<std::uint64_t, 4> state_{};
};

}  // namespace nncomm

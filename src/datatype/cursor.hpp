// TypeCursor: a position within the packed-byte stream of (datatype, count).
//
// A cursor is the "context" of the paper's §3.1/§4.1 discussion: a snapshot
// of how far datatype processing has progressed. It supports
//   - advance(n): move forward n packed bytes, crossing block and instance
//     boundaries (O(blocks crossed)),
//   - block-granular signature walking (peek / skip_block) used by the
//     look-ahead pass, which touches only the type signature, never data,
//   - seek_linear(target): the *baseline* recovery operation — rewind to the
//     type head and walk block-by-block until `target` packed bytes have
//     been skipped, charging every visited block to
//     StatCounters::search_blocks_visited. This is deliberately O(position):
//     it reproduces MPICH2's behaviour of re-searching the entire derived
//     datatype after the look-ahead has clobbered the single context, which
//     is what makes the baseline's total search cost quadratic.
//
// Copying a cursor is O(1); the dual-context engine exploits exactly that.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/counters.hpp"
#include "core/error.hpp"
#include "datatype/datatype.hpp"
#include "datatype/flatten.hpp"

namespace nncomm::dt {

class TypeCursor {
public:
    TypeCursor() = default;

    /// Cursor over `count` consecutive instances of `type` (instance i is
    /// displaced by i * extent, as in an MPI send with count > 1).
    TypeCursor(const FlatType* flat, std::size_t count) : flat_(flat), count_(count) {
        NNCOMM_CHECK(flat != nullptr);
        total_ = static_cast<std::uint64_t>(flat->size()) * count;
    }

    std::uint64_t position() const { return bytes_; }
    std::uint64_t total_bytes() const { return total_; }
    bool at_end() const { return bytes_ == total_; }

    /// Absolute byte offset (from the user buffer base) of the next unread
    /// byte. Only valid when !at_end().
    std::ptrdiff_t current_offset() const {
        const FlatBlock& b = flat_->blocks()[blk_];
        return instance_base() + b.offset + static_cast<std::ptrdiff_t>(blkoff_);
    }

    /// Bytes remaining in the current (possibly partially consumed) block.
    std::size_t current_block_remaining() const {
        return flat_->blocks()[blk_].length - blkoff_;
    }

    /// Signature step: consume the rest of the current block without
    /// touching data. Returns the number of bytes skipped.
    std::size_t skip_block() {
        const std::size_t n = current_block_remaining();
        advance_within_and_roll(n);
        return n;
    }

    /// Move forward `n` packed bytes (n <= total - position).
    void advance(std::uint64_t n) {
        NNCOMM_ASSERT(bytes_ + n <= total_);
        while (n > 0) {
            const std::size_t rem = current_block_remaining();
            const std::uint64_t step = (n < rem) ? n : rem;
            advance_within_and_roll(static_cast<std::size_t>(step));
            n -= step;
        }
    }

    void rewind() {
        rep_ = 0;
        blk_ = 0;
        blkoff_ = 0;
        bytes_ = 0;
    }

    /// Baseline re-search: walk from the head of the type to packed-byte
    /// position `target`, counting every block visited. This is the
    /// quadratic-cost operation the dual-context design eliminates.
    void seek_linear(std::uint64_t target, StatCounters& counters) {
        NNCOMM_CHECK_MSG(target <= total_, "seek beyond end of datatype");
        rewind();
        ++counters.search_events;
        while (bytes_ < target) {
            const std::size_t rem = current_block_remaining();
            ++counters.search_blocks_visited;
            if (bytes_ + rem <= target) {
                advance_within_and_roll(rem);
            } else {
                advance_within_and_roll(static_cast<std::size_t>(target - bytes_));
            }
        }
    }

    /// O(1) repositioning using the flattened prefix sums. The optimized
    /// engine never needs this (its pack context is never lost); it exists
    /// for unpack paths and tests.
    void seek_indexed(std::uint64_t target) {
        NNCOMM_CHECK_MSG(target <= total_, "seek beyond end of datatype");
        if (target == total_) {
            bytes_ = total_;
            rep_ = count_;
            blk_ = 0;
            blkoff_ = 0;
            return;
        }
        const std::uint64_t per = flat_->size();
        rep_ = static_cast<std::size_t>(target / per);
        const std::uint64_t within = target % per;
        // Binary search in prefix sums for the block containing `within`.
        const auto& pre = flat_->prefix_bytes();
        std::size_t lo = 0, hi = flat_->block_count();
        while (lo + 1 < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (pre[mid] <= within) lo = mid;
            else hi = mid;
        }
        blk_ = lo;
        blkoff_ = static_cast<std::size_t>(within - pre[lo]);
        bytes_ = target;
    }

private:
    std::ptrdiff_t instance_base() const {
        return static_cast<std::ptrdiff_t>(rep_) * flat_->extent();
    }

    // Advance `n` bytes where n <= current_block_remaining(), rolling to the
    // next block / instance when the block is exhausted.
    void advance_within_and_roll(std::size_t n) {
        blkoff_ += n;
        bytes_ += n;
        if (blkoff_ == flat_->blocks()[blk_].length) {
            blkoff_ = 0;
            if (++blk_ == flat_->block_count()) {
                blk_ = 0;
                ++rep_;
            }
        }
    }

    const FlatType* flat_ = nullptr;
    std::size_t count_ = 0;
    std::size_t rep_ = 0;      ///< which type instance
    std::size_t blk_ = 0;      ///< block within instance
    std::size_t blkoff_ = 0;   ///< bytes consumed within block
    std::uint64_t bytes_ = 0;  ///< absolute packed-stream position
    std::uint64_t total_ = 0;
};

}  // namespace nncomm::dt

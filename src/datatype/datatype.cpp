#include "datatype/datatype.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <sstream>

#include "datatype/flatten.hpp"
#include "datatype/plan.hpp"

namespace nncomm::dt {

namespace detail {

struct TypeNode {
    TypeClass cls = TypeClass::Builtin;
    std::string name;  // builtins only

    // Recursive structure. Struct uses `children`; everything else `child`.
    Datatype child;
    std::vector<Datatype> children;

    std::size_t count = 0;
    std::size_t blocklength = 0;        // Vector/Hvector/IndexedBlock
    std::ptrdiff_t stride_bytes = 0;    // Hvector (Vector lowered to bytes)
    std::vector<std::size_t> blocklengths;      // Indexed/Hindexed/Struct
    std::vector<std::ptrdiff_t> displs_bytes;   // byte displacements

    // Cached layout properties (computed at construction).
    std::size_t size = 0;
    std::ptrdiff_t lb = 0;
    std::ptrdiff_t ub = 0;  // extent = ub - lb
    bool contiguous = false;

    // Flattened form, computed on demand exactly once.
    mutable std::once_flag flat_once;
    mutable std::unique_ptr<FlatType> flat;

    // Compiled pack plan, resolved through the global PlanCache once.
    mutable std::once_flag plan_once;
    mutable std::shared_ptr<const PackPlan> plan;

    std::ptrdiff_t extent() const { return ub - lb; }
};

namespace {

using NodePtr = std::shared_ptr<TypeNode>;

NodePtr new_node(TypeClass cls) {
    auto n = std::make_shared<TypeNode>();
    n->cls = cls;
    return n;
}

const TypeNode& node_of(const Datatype& t);

// Emits the blocks of one instance of `t` displaced by `base` into `b`.
void emit_blocks(const Datatype& t, std::ptrdiff_t base, FlatBuilder& b);

void emit_child_instances(const Datatype& child, std::ptrdiff_t base, std::size_t n,
                          FlatBuilder& b) {
    const std::ptrdiff_t ext = child.extent();
    for (std::size_t i = 0; i < n; ++i) {
        emit_blocks(child, base + static_cast<std::ptrdiff_t>(i) * ext, b);
    }
}

void emit_blocks(const Datatype& t, std::ptrdiff_t base, FlatBuilder& b) {
    const TypeNode& n = node_of(t);
    switch (n.cls) {
        case TypeClass::Builtin:
            b.add(base, n.size);
            break;
        case TypeClass::Contiguous:
            if (n.child.is_contiguous()) {
                // One dense run: count * child extent.
                b.add(base + n.child.lb(), n.count * n.child.size());
            } else {
                emit_child_instances(n.child, base, n.count, b);
            }
            break;
        case TypeClass::Vector:  // lowered to byte stride at construction
        case TypeClass::Hvector: {
            const std::ptrdiff_t ext = n.child.extent();
            for (std::size_t i = 0; i < n.count; ++i) {
                const std::ptrdiff_t start =
                    base + static_cast<std::ptrdiff_t>(i) * n.stride_bytes;
                if (n.child.is_contiguous()) {
                    b.add(start + n.child.lb(), n.blocklength * n.child.size());
                } else {
                    emit_child_instances(n.child, start, n.blocklength, b);
                }
                (void)ext;
            }
            break;
        }
        case TypeClass::Indexed:
        case TypeClass::Hindexed:
        case TypeClass::IndexedBlock:
            for (std::size_t i = 0; i < n.blocklengths.size(); ++i) {
                const std::ptrdiff_t start = base + n.displs_bytes[i];
                if (n.child.is_contiguous()) {
                    b.add(start + n.child.lb(), n.blocklengths[i] * n.child.size());
                } else {
                    emit_child_instances(n.child, start, n.blocklengths[i], b);
                }
            }
            break;
        case TypeClass::Struct:
            for (std::size_t i = 0; i < n.children.size(); ++i) {
                emit_child_instances(n.children[i], base + n.displs_bytes[i], n.blocklengths[i],
                                     b);
            }
            break;
        case TypeClass::Subarray:
            // Subarray is lowered to an Hvector nest wrapped in Resized at
            // construction; the node keeps the nest as its child.
            emit_blocks(n.child, base, b);
            break;
        case TypeClass::Resized:
            emit_blocks(n.child, base, b);
            break;
    }
}

void finish_layout(TypeNode& n) {
    // size, lb, ub and contiguity derived from the emitted structure. We
    // compute lb/ub analytically per class below; callers have already set
    // size/lb/ub. Here we only derive the contiguity flag.
    n.contiguous = (n.lb == 0) && (static_cast<std::ptrdiff_t>(n.size) == n.extent());
    if (n.contiguous) {
        // Sizes match, but the data must also be one dense run. Cheap
        // structural checks cover the common cases; anything uncertain is
        // resolved precisely via flatten at first use.
        switch (n.cls) {
            case TypeClass::Builtin:
                break;
            case TypeClass::Contiguous:
                n.contiguous = n.child.is_contiguous();
                break;
            default:
                // Conservative: size==extent composite types are almost
                // always dense, and FlatType::contiguous() is the precise
                // answer where it matters (the engines use flat()).
                break;
        }
    }
}

}  // namespace

}  // namespace detail

using detail::TypeNode;

// ---------------------------------------------------------------------------
// accessors

struct DatatypeAccess {
    static const TypeNode& node(const Datatype& t) {
        NNCOMM_CHECK_MSG(t.valid(), "null Datatype");
        return *t.node_;
    }
    static Datatype wrap(std::shared_ptr<const TypeNode> n) { return Datatype(std::move(n)); }
};

namespace detail {
namespace {
const TypeNode& node_of(const Datatype& t) { return DatatypeAccess::node(t); }
}  // namespace
}  // namespace detail

namespace {
const TypeNode* raw(const Datatype& t) { return &DatatypeAccess::node(t); }
}  // namespace

TypeClass Datatype::type_class() const { return raw(*this)->cls; }
std::size_t Datatype::size() const { return raw(*this)->size; }
std::ptrdiff_t Datatype::extent() const { return raw(*this)->extent(); }
std::ptrdiff_t Datatype::lb() const { return raw(*this)->lb; }
bool Datatype::is_contiguous() const { return raw(*this)->contiguous; }
std::size_t Datatype::block_count() const { return flat().block_count(); }

const FlatType& Datatype::flat() const {
    const TypeNode& n = *raw(*this);
    std::call_once(n.flat_once, [&] {
        FlatBuilder b;
        detail::emit_blocks(*this, 0, b);
        n.flat = std::make_unique<FlatType>(b.take(), n.extent(), n.lb);
    });
    return *n.flat;
}

const PackPlan& Datatype::plan() const {
    const TypeNode& n = *raw(*this);
    std::call_once(n.plan_once, [&] { n.plan = PlanCache::instance().get(*this); });
    return *n.plan;
}

// ---------------------------------------------------------------------------
// constructors

Datatype Datatype::builtin(std::size_t size, std::string name) {
    NNCOMM_CHECK_MSG(size > 0, "builtin type must have nonzero size");
    auto n = detail::new_node(TypeClass::Builtin);
    n->name = std::move(name);
    n->size = size;
    n->lb = 0;
    n->ub = static_cast<std::ptrdiff_t>(size);
    n->contiguous = true;
    return DatatypeAccess::wrap(std::move(n));
}

Datatype Datatype::byte() {
    static const Datatype t = builtin(1, "byte");
    return t;
}
Datatype Datatype::chars() {
    static const Datatype t = builtin(1, "char");
    return t;
}
Datatype Datatype::int32() {
    static const Datatype t = builtin(4, "int32");
    return t;
}
Datatype Datatype::int64() {
    static const Datatype t = builtin(8, "int64");
    return t;
}
Datatype Datatype::float32() {
    static const Datatype t = builtin(4, "float32");
    return t;
}
Datatype Datatype::float64() {
    static const Datatype t = builtin(8, "float64");
    return t;
}

Datatype Datatype::contiguous(std::size_t count, const Datatype& oldtype) {
    NNCOMM_CHECK(oldtype.valid());
    auto n = detail::new_node(TypeClass::Contiguous);
    n->child = oldtype;
    n->count = count;
    n->size = count * oldtype.size();
    n->lb = (count == 0) ? 0 : oldtype.lb();
    n->ub = n->lb + static_cast<std::ptrdiff_t>(count) * oldtype.extent();
    detail::finish_layout(*n);
    return DatatypeAccess::wrap(std::move(n));
}

Datatype Datatype::vector(std::size_t count, std::size_t blocklength, std::ptrdiff_t stride,
                          const Datatype& oldtype) {
    return hvector(count, blocklength, stride * oldtype.extent(), oldtype);
}

Datatype Datatype::hvector(std::size_t count, std::size_t blocklength,
                           std::ptrdiff_t stride_bytes, const Datatype& oldtype) {
    NNCOMM_CHECK(oldtype.valid());
    auto n = detail::new_node(TypeClass::Hvector);
    n->child = oldtype;
    n->count = count;
    n->blocklength = blocklength;
    n->stride_bytes = stride_bytes;
    n->size = count * blocklength * oldtype.size();
    if (count == 0 || blocklength == 0) {
        n->lb = 0;
        n->ub = 0;
    } else {
        const std::ptrdiff_t block_extent =
            static_cast<std::ptrdiff_t>(blocklength) * oldtype.extent();
        std::ptrdiff_t lo = 0, hi = 0;
        for (std::size_t i : {std::size_t{0}, count - 1}) {
            const std::ptrdiff_t s = static_cast<std::ptrdiff_t>(i) * stride_bytes;
            lo = std::min(lo, s + oldtype.lb());
            hi = std::max(hi, s + oldtype.lb() + block_extent);
        }
        n->lb = lo;
        n->ub = hi;
    }
    detail::finish_layout(*n);
    return DatatypeAccess::wrap(std::move(n));
}

namespace {
Datatype make_indexed_bytes(TypeClass cls, std::vector<std::size_t> blocklengths,
                            std::vector<std::ptrdiff_t> displs_bytes, const Datatype& oldtype) {
    NNCOMM_CHECK(oldtype.valid());
    NNCOMM_CHECK_MSG(blocklengths.size() == displs_bytes.size(),
                     "indexed: blocklengths/displacements length mismatch");
    auto n = detail::new_node(cls);
    n->child = oldtype;
    n->blocklengths = std::move(blocklengths);
    n->displs_bytes = std::move(displs_bytes);
    n->count = n->blocklengths.size();
    std::size_t total = 0;
    std::ptrdiff_t lo = 0, hi = 0;
    bool first = true;
    for (std::size_t i = 0; i < n->count; ++i) {
        total += n->blocklengths[i] * oldtype.size();
        if (n->blocklengths[i] == 0) continue;
        const std::ptrdiff_t b0 = n->displs_bytes[i] + oldtype.lb();
        const std::ptrdiff_t b1 =
            b0 + static_cast<std::ptrdiff_t>(n->blocklengths[i]) * oldtype.extent();
        if (first) {
            lo = b0;
            hi = b1;
            first = false;
        } else {
            lo = std::min(lo, b0);
            hi = std::max(hi, b1);
        }
    }
    n->size = total;
    n->lb = first ? 0 : lo;
    n->ub = first ? 0 : hi;
    detail::finish_layout(*n);
    return DatatypeAccess::wrap(std::move(n));
}
}  // namespace

Datatype Datatype::indexed(std::span<const std::size_t> blocklengths,
                           std::span<const std::ptrdiff_t> displacements,
                           const Datatype& oldtype) {
    std::vector<std::ptrdiff_t> displs_bytes(displacements.size());
    for (std::size_t i = 0; i < displacements.size(); ++i) {
        displs_bytes[i] = displacements[i] * oldtype.extent();
    }
    return make_indexed_bytes(TypeClass::Indexed,
                              std::vector<std::size_t>(blocklengths.begin(), blocklengths.end()),
                              std::move(displs_bytes), oldtype);
}

Datatype Datatype::hindexed(std::span<const std::size_t> blocklengths,
                            std::span<const std::ptrdiff_t> displacements_bytes,
                            const Datatype& oldtype) {
    return make_indexed_bytes(
        TypeClass::Hindexed, std::vector<std::size_t>(blocklengths.begin(), blocklengths.end()),
        std::vector<std::ptrdiff_t>(displacements_bytes.begin(), displacements_bytes.end()),
        oldtype);
}

Datatype Datatype::indexed_block(std::size_t blocklength,
                                 std::span<const std::ptrdiff_t> displacements,
                                 const Datatype& oldtype) {
    std::vector<std::size_t> lens(displacements.size(), blocklength);
    std::vector<std::ptrdiff_t> displs_bytes(displacements.size());
    for (std::size_t i = 0; i < displacements.size(); ++i) {
        displs_bytes[i] = displacements[i] * oldtype.extent();
    }
    return make_indexed_bytes(TypeClass::IndexedBlock, std::move(lens), std::move(displs_bytes),
                              oldtype);
}

Datatype Datatype::struct_type(std::span<const std::size_t> blocklengths,
                               std::span<const std::ptrdiff_t> displacements_bytes,
                               std::span<const Datatype> types) {
    NNCOMM_CHECK_MSG(blocklengths.size() == displacements_bytes.size() &&
                         blocklengths.size() == types.size(),
                     "struct_type: argument length mismatch");
    auto n = detail::new_node(TypeClass::Struct);
    n->children.assign(types.begin(), types.end());
    n->blocklengths.assign(blocklengths.begin(), blocklengths.end());
    n->displs_bytes.assign(displacements_bytes.begin(), displacements_bytes.end());
    n->count = n->children.size();
    std::size_t total = 0;
    std::ptrdiff_t lo = 0, hi = 0;
    bool first = true;
    for (std::size_t i = 0; i < n->count; ++i) {
        NNCOMM_CHECK(n->children[i].valid());
        total += n->blocklengths[i] * n->children[i].size();
        if (n->blocklengths[i] == 0) continue;
        const std::ptrdiff_t b0 = n->displs_bytes[i] + n->children[i].lb();
        const std::ptrdiff_t b1 =
            b0 + static_cast<std::ptrdiff_t>(n->blocklengths[i]) * n->children[i].extent();
        if (first) {
            lo = b0;
            hi = b1;
            first = false;
        } else {
            lo = std::min(lo, b0);
            hi = std::max(hi, b1);
        }
    }
    n->size = total;
    n->lb = first ? 0 : lo;
    n->ub = first ? 0 : hi;
    detail::finish_layout(*n);
    return DatatypeAccess::wrap(std::move(n));
}

Datatype Datatype::subarray(std::span<const std::size_t> sizes,
                            std::span<const std::size_t> subsizes,
                            std::span<const std::size_t> starts, const Datatype& oldtype) {
    const std::size_t nd = sizes.size();
    NNCOMM_CHECK_MSG(nd > 0 && subsizes.size() == nd && starts.size() == nd,
                     "subarray: dimension mismatch");
    for (std::size_t d = 0; d < nd; ++d) {
        NNCOMM_CHECK_MSG(subsizes[d] >= 1 && starts[d] + subsizes[d] <= sizes[d],
                         "subarray: region out of bounds");
    }
    // Row-major (C order): dimension nd-1 is fastest varying. Build the
    // nest from the innermost dimension outward, then displace by the
    // start offsets and resize to the full array extent.
    const std::ptrdiff_t elem_ext = oldtype.extent();
    Datatype t = contiguous(subsizes[nd - 1], oldtype);
    std::ptrdiff_t row_bytes = elem_ext;  // bytes per step in dim d
    for (std::size_t d = nd - 1; d-- > 0;) {
        row_bytes *= static_cast<std::ptrdiff_t>(sizes[d + 1]);
        t = hvector(subsizes[d], 1, row_bytes, t);
    }
    // Offset of the region's first element.
    std::ptrdiff_t offset = 0;
    std::ptrdiff_t dim_stride = elem_ext;
    for (std::size_t d = nd; d-- > 0;) {
        offset += static_cast<std::ptrdiff_t>(starts[d]) * dim_stride;
        dim_stride *= static_cast<std::ptrdiff_t>(sizes[d]);
    }
    const std::size_t one = 1;
    Datatype displaced = hindexed(std::span<const std::size_t>(&one, 1),
                                  std::span<const std::ptrdiff_t>(&offset, 1), t);
    std::ptrdiff_t full_extent = elem_ext;
    for (std::size_t d = 0; d < nd; ++d) full_extent *= static_cast<std::ptrdiff_t>(sizes[d]);
    Datatype lowered = resized(displaced, 0, full_extent);

    auto n = detail::new_node(TypeClass::Subarray);
    n->child = lowered;
    n->size = lowered.size();
    n->lb = lowered.lb();
    n->ub = n->lb + lowered.extent();
    detail::finish_layout(*n);
    return DatatypeAccess::wrap(std::move(n));
}

Datatype Datatype::resized(const Datatype& oldtype, std::ptrdiff_t lb, std::ptrdiff_t extent) {
    NNCOMM_CHECK(oldtype.valid());
    auto n = detail::new_node(TypeClass::Resized);
    n->child = oldtype;
    n->size = oldtype.size();
    n->lb = lb;
    n->ub = lb + extent;
    detail::finish_layout(*n);
    return DatatypeAccess::wrap(std::move(n));
}

std::string Datatype::describe() const {
    const TypeNode& n = *raw(*this);
    std::ostringstream os;
    switch (n.cls) {
        case TypeClass::Builtin:
            os << n.name;
            break;
        case TypeClass::Contiguous:
            os << "contig(" << n.count << ", " << n.child.describe() << ")";
            break;
        case TypeClass::Vector:
        case TypeClass::Hvector:
            os << "hvector(" << n.count << ", bl=" << n.blocklength << ", stride="
               << n.stride_bytes << "B, " << n.child.describe() << ")";
            break;
        case TypeClass::Indexed:
        case TypeClass::Hindexed:
        case TypeClass::IndexedBlock:
            os << "indexed(" << n.count << " blocks, " << n.child.describe() << ")";
            break;
        case TypeClass::Struct: {
            os << "struct(" << n.count << " fields)";
            break;
        }
        case TypeClass::Subarray:
            os << "subarray[" << n.child.describe() << "]";
            break;
        case TypeClass::Resized:
            os << "resized(lb=" << n.lb << ", extent=" << n.extent() << ", "
               << n.child.describe() << ")";
            break;
    }
    return os.str();
}

// ---------------------------------------------------------------------------
// FlatType

FlatType::FlatType(std::vector<FlatBlock> blocks, std::ptrdiff_t extent, std::ptrdiff_t lb)
    : blocks_(std::move(blocks)), extent_(extent), lb_(lb) {
    prefix_.reserve(blocks_.size() + 1);
    prefix_.push_back(0);
    max_block_ = 0;
    min_block_ = blocks_.empty() ? 0 : blocks_.front().length;
    bool first = true;
    for (const FlatBlock& b : blocks_) {
        size_ += b.length;
        prefix_.push_back(prefix_.back() + b.length);
        max_block_ = std::max(max_block_, b.length);
        min_block_ = std::min(min_block_, b.length);
        const std::ptrdiff_t end = b.offset + static_cast<std::ptrdiff_t>(b.length);
        if (first) {
            data_lb_ = b.offset;
            data_ub_ = end;
            first = false;
        } else {
            data_lb_ = std::min(data_lb_, b.offset);
            data_ub_ = std::max(data_ub_, end);
        }
    }
}

}  // namespace nncomm::dt

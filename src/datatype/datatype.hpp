// MPI-style derived datatypes.
//
// A Datatype is an immutable description of a (possibly noncontiguous)
// memory layout, built recursively from builtin types with the standard MPI
// constructors: contiguous, vector, hvector, indexed, hindexed,
// create_indexed_block, struct, create_subarray and create_resized.
//
// Every type exposes
//   size()   — number of bytes of actual data it describes,
//   extent() — the span of memory from lower bound to upper bound that one
//              instance occupies (used as the stride between consecutive
//              elements in count>1 sends),
// and can be flattened to a stream of contiguous (offset, length) blocks
// (see flatten.hpp) which is what the pack engines operate on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace nncomm::dt {

class FlatType;  // flatten.hpp
class PackPlan;  // plan.hpp

enum class TypeClass {
    Builtin,
    Contiguous,
    Vector,    // element-strided; stored internally in bytes (as hvector)
    Hvector,   // byte-strided
    Indexed,   // element displacements
    Hindexed,  // byte displacements
    IndexedBlock,
    Struct,
    Subarray,  // lowered to hvector nest at construction; kept for printing
    Resized,
};

namespace detail {
struct TypeNode;
}
struct DatatypeAccess;

/// Value-semantic handle to an immutable datatype node. Cheap to copy.
class Datatype {
public:
    Datatype() = default;  // null type; only valid after assignment

    // -- builtins ----------------------------------------------------------
    static Datatype builtin(std::size_t size, std::string name);
    static Datatype byte();     ///< 1 byte
    static Datatype chars();    ///< 1 byte (MPI_CHAR)
    static Datatype int32();    ///< 4 bytes (MPI_INT)
    static Datatype int64();    ///< 8 bytes (MPI_LONG_LONG)
    static Datatype float32();  ///< 4 bytes (MPI_FLOAT)
    static Datatype float64();  ///< 8 bytes (MPI_DOUBLE)

    // -- constructors (mirroring MPI_Type_*) --------------------------------
    static Datatype contiguous(std::size_t count, const Datatype& oldtype);
    /// stride in *elements of oldtype* (MPI_Type_vector).
    static Datatype vector(std::size_t count, std::size_t blocklength, std::ptrdiff_t stride,
                           const Datatype& oldtype);
    /// stride in *bytes* (MPI_Type_create_hvector).
    static Datatype hvector(std::size_t count, std::size_t blocklength,
                            std::ptrdiff_t stride_bytes, const Datatype& oldtype);
    /// displacements in elements of oldtype (MPI_Type_indexed).
    static Datatype indexed(std::span<const std::size_t> blocklengths,
                            std::span<const std::ptrdiff_t> displacements,
                            const Datatype& oldtype);
    /// displacements in bytes (MPI_Type_create_hindexed).
    static Datatype hindexed(std::span<const std::size_t> blocklengths,
                             std::span<const std::ptrdiff_t> displacements_bytes,
                             const Datatype& oldtype);
    /// uniform blocklength, element displacements (MPI_Type_create_indexed_block).
    static Datatype indexed_block(std::size_t blocklength,
                                  std::span<const std::ptrdiff_t> displacements,
                                  const Datatype& oldtype);
    /// heterogeneous struct (MPI_Type_create_struct); displacements in bytes.
    static Datatype struct_type(std::span<const std::size_t> blocklengths,
                                std::span<const std::ptrdiff_t> displacements_bytes,
                                std::span<const Datatype> types);
    /// n-dimensional subarray (MPI_Type_create_subarray), row-major (C order).
    static Datatype subarray(std::span<const std::size_t> sizes,
                             std::span<const std::size_t> subsizes,
                             std::span<const std::size_t> starts, const Datatype& oldtype);
    /// override lower bound / extent (MPI_Type_create_resized); bytes.
    static Datatype resized(const Datatype& oldtype, std::ptrdiff_t lb, std::ptrdiff_t extent);

    // -- queries -------------------------------------------------------------
    bool valid() const { return node_ != nullptr; }
    TypeClass type_class() const;
    /// Bytes of data described by one instance.
    std::size_t size() const;
    /// Memory span (ub - lb) of one instance; the stride for count>1.
    std::ptrdiff_t extent() const;
    /// Lower bound in bytes (normally 0; Resized can move it).
    std::ptrdiff_t lb() const;
    /// True when one instance is a single dense block starting at lb with
    /// length == size == extent.
    bool is_contiguous() const;
    /// Number of maximal contiguous blocks in one flattened instance.
    std::size_t block_count() const;
    /// Human-readable structure (for logging/tests).
    std::string describe() const;

    /// Flattened block-stream form; computed once and cached on the node.
    const FlatType& flat() const;

    /// Compiled pack plan (plan.hpp): kernel classification + specialized
    /// copy parameters. Resolved through the process-wide PlanCache on
    /// first use and memoized on the node, so repeated sends of the same
    /// type pay no lookup and structurally equal types share one plan.
    const PackPlan& plan() const;

    friend bool operator==(const Datatype& a, const Datatype& b) { return a.node_ == b.node_; }

private:
    friend struct DatatypeAccess;
    explicit Datatype(std::shared_ptr<const detail::TypeNode> node) : node_(std::move(node)) {}
    std::shared_ptr<const detail::TypeNode> node_;
};

}  // namespace nncomm::dt

#include "datatype/engine.hpp"

#include <cstring>

#include "datatype/pack.hpp"

namespace nncomm::dt {

PackEngine::PackEngine(const void* base, const Datatype& type, std::size_t count,
                       const EngineConfig& config)
    : base_(static_cast<const std::byte*>(base)), type_(type), count_(count), config_(config) {
    NNCOMM_CHECK(type.valid());
    NNCOMM_CHECK_MSG(config.pipeline_chunk > 0, "pipeline chunk must be > 0");
    NNCOMM_CHECK_MSG(config.lookahead_blocks > 0, "look-ahead window must be > 0");
    total_bytes_ = static_cast<std::uint64_t>(type.size()) * count;
    plan_ = &type_.plan();  // commit-time compile / cache lookup
    ++counters_.engine_builds;
    ++counters_.scratch_allocs;
    scratch_.resize(config.pipeline_chunk);
}

void PackEngine::reset(const void* base) {
    base_ = static_cast<const std::byte*>(base);
    bytes_done_ = 0;
}

bool PackEngine::plan_chunk(ChunkView& out) {
    if (!config_.enable_plan_fastpath || !plan_->specialized()) return false;

    const std::uint64_t budget64 =
        std::min<std::uint64_t>(config_.pipeline_chunk, total_bytes_ - bytes_done_);
    const std::size_t budget = static_cast<std::size_t>(budget64);

    if (plan_->kernel() == PackKernel::Contiguous) {
        // Adjacent instances tile memory densely: each chunk is one direct
        // region, no look-ahead or classification needed.
        ++counters_.dense_chunks;
        ++counters_.plan_hits;
        ++counters_.blocks_packed;
        iov_.clear();
        iov_.emplace_back(base_ + plan_->first_offset() +
                              static_cast<std::ptrdiff_t>(bytes_done_),
                          budget);
        out.dense = true;
        out.iov = std::span<const std::pair<const std::byte*, std::size_t>>(iov_.data(),
                                                                            iov_.size());
        out.packed = {};
        out.bytes = budget;
        bytes_done_ += budget;
        return true;
    }

    // Strided / BlockedStrided: the dense/sparse decision is a property of
    // the (fixed) block length, not of any particular chunk. Dense strided
    // chunks still go through the engine's iov walk (the transport reads
    // the regions either way); sparse ones dispatch to the plan's frozen
    // SIMD gather kernel with O(1) positioning — no cursor, no look-ahead.
    const std::size_t block_len = plan_->block_length();
    if (static_cast<double>(block_len) >= config_.density_threshold) return false;

    ++counters_.sparse_chunks;
    ++counters_.plan_hits;
    {
        PhaseScope scope(timers_, Phase::Pack);
        plan_->pack_range(type_.flat(), base_, count_, bytes_done_,
                          std::span<std::byte>(scratch_.data(), budget), &counters_);
    }
    counters_.bytes_packed += budget;
    counters_.blocks_packed +=
        (bytes_done_ % block_len + budget + block_len - 1) / block_len;
    out.dense = false;
    out.iov = {};
    out.packed = std::span<const std::byte>(scratch_.data(), budget);
    out.bytes = budget;
    bytes_done_ += budget;
    return true;
}

SingleContextEngine::SingleContextEngine(const void* base, const Datatype& type,
                                         std::size_t count, const EngineConfig& config)
    : PackEngine(base, type, count, config), cursor_(&type_.flat(), count_) {}

void SingleContextEngine::reset(const void* base) {
    PackEngine::reset(base);
    cursor_.rewind();
}

bool SingleContextEngine::next_chunk(ChunkView& out) {
    if (finished()) return false;
    // Specialized plans bypass the single-context machinery entirely —
    // there is no context to lose when the position is O(1)-computable.
    // The quadratic re-search below is only reachable (and measured) on
    // irregular types, which is what the paper's workloads flatten to.
    if (plan_chunk(out)) return true;

    const std::uint64_t chunk_start = bytes_done_;
    const std::uint64_t budget64 = std::min<std::uint64_t>(config_.pipeline_chunk,
                                                           total_bytes_ - bytes_done_);
    const std::size_t budget = static_cast<std::size_t>(budget64);

    // Look-ahead: walk the (only) context forward over the signature of the
    // upcoming chunk to decide dense vs sparse, recording the regions as we
    // go (the dense path sends straight from them). This ADVANCES the
    // context past the chunk.
    iov_.clear();
    std::size_t la_bytes = 0;
    std::size_t la_blocks = 0;
    ++counters_.lookahead_events;
    while (la_bytes < budget && !cursor_.at_end()) {
        const std::size_t rem = cursor_.current_block_remaining();
        const std::size_t take = std::min(rem, budget - la_bytes);
        iov_.emplace_back(base_ + cursor_.current_offset(), take);
        cursor_.advance(take);
        la_bytes += take;
        ++la_blocks;
    }
    counters_.lookahead_blocks += la_blocks;

    const double avg = static_cast<double>(la_bytes) / static_cast<double>(la_blocks);
    const bool dense = avg >= config_.density_threshold;

    if (dense) {
        // Direct send from the look-ahead regions; the context conveniently
        // already sits at the chunk end.
        ++counters_.dense_chunks;
        counters_.blocks_packed += la_blocks;
        out.dense = true;
        out.iov = std::span<const std::pair<const std::byte*, std::size_t>>(iov_.data(),
                                                                            iov_.size());
        out.packed = {};
        out.bytes = la_bytes;
    } else {
        // Sparse: packing must start from the pre-look-ahead position, but
        // this context has moved past it. Recover by re-searching the whole
        // datatype from its head — the paper's quadratic-cost flaw.
        {
            PhaseScope scope(timers_, Phase::Search);
            cursor_.seek_linear(chunk_start, counters_);
        }
        {
            PhaseScope scope(timers_, Phase::Pack);
            const std::size_t produced =
                pack_bytes(base_, cursor_, std::span<std::byte>(scratch_.data(), la_bytes));
            NNCOMM_CHECK(produced == la_bytes);
        }
        ++counters_.sparse_chunks;
        counters_.blocks_packed += la_blocks;
        counters_.bytes_packed += la_bytes;
        out.dense = false;
        out.iov = {};
        out.packed = std::span<const std::byte>(scratch_.data(), la_bytes);
        out.bytes = la_bytes;
    }
    bytes_done_ += la_bytes;
    return true;
}

DualContextEngine::DualContextEngine(const void* base, const Datatype& type, std::size_t count,
                                     const EngineConfig& config)
    : PackEngine(base, type, count, config),
      pack_ctx_(&type_.flat(), count_),
      lookahead_ctx_(&type_.flat(), count_) {}

void DualContextEngine::reset(const void* base) {
    PackEngine::reset(base);
    pack_ctx_.rewind();
    lookahead_ctx_.rewind();
}

bool DualContextEngine::next_chunk(ChunkView& out) {
    if (finished()) return false;
    if (plan_chunk(out)) return true;

    const std::uint64_t budget64 = std::min<std::uint64_t>(config_.pipeline_chunk,
                                                           total_bytes_ - bytes_done_);
    const std::size_t budget = static_cast<std::size_t>(budget64);

    // Context 1 (look-ahead): resync to the pack position — an O(1) cursor
    // copy, the whole point of keeping two contexts — then roll forward
    // over at most `lookahead_blocks` signature elements. Only signatures
    // (block lengths) are read; no data is touched.
    lookahead_ctx_ = pack_ctx_;
    std::size_t la_bytes = 0;
    std::size_t la_blocks = 0;
    ++counters_.lookahead_events;
    while (la_bytes < budget && la_blocks < config_.lookahead_blocks &&
           !lookahead_ctx_.at_end()) {
        const std::size_t rem = lookahead_ctx_.current_block_remaining();
        const std::size_t take = std::min(rem, budget - la_bytes);
        lookahead_ctx_.advance(take);
        la_bytes += take;
        ++la_blocks;
    }
    counters_.lookahead_blocks += la_blocks;

    const double avg = static_cast<double>(la_bytes) / static_cast<double>(la_blocks);
    const bool dense = avg >= config_.density_threshold;

    std::size_t chunk_bytes = 0;
    if (dense) {
        // Direct send: walk context 2 across the chunk recording regions
        // (signature-only; the transport reads the data).
        ++counters_.dense_chunks;
        iov_.clear();
        while (chunk_bytes < budget && !pack_ctx_.at_end()) {
            const std::size_t rem = pack_ctx_.current_block_remaining();
            const std::size_t take = std::min(rem, budget - chunk_bytes);
            iov_.emplace_back(base_ + pack_ctx_.current_offset(), take);
            pack_ctx_.advance(take);
            chunk_bytes += take;
        }
        counters_.blocks_packed += iov_.size();
        out.dense = true;
        out.iov = std::span<const std::pair<const std::byte*, std::size_t>>(iov_.data(),
                                                                            iov_.size());
        out.packed = {};
        out.bytes = chunk_bytes;
    } else {
        // Sparse: context 2 packs from exactly where it stands — it was
        // never advanced by the look-ahead, so there is nothing to search
        // for. (The redundant work is context 2 re-parsing the <= 15
        // signature elements context 1 already saw.)
        PhaseScope scope(timers_, Phase::Pack);
        ++counters_.sparse_chunks;
        chunk_bytes =
            pack_bytes(base_, pack_ctx_, std::span<std::byte>(scratch_.data(), budget));
        counters_.bytes_packed += chunk_bytes;
        out.dense = false;
        out.iov = {};
        out.packed = std::span<const std::byte>(scratch_.data(), chunk_bytes);
        out.bytes = chunk_bytes;
    }
    bytes_done_ += chunk_bytes;
    return true;
}

std::unique_ptr<PackEngine> make_engine(EngineKind kind, const void* base, const Datatype& type,
                                        std::size_t count, const EngineConfig& config) {
    if (kind == EngineKind::SingleContext) {
        return std::make_unique<SingleContextEngine>(base, type, count, config);
    }
    return std::make_unique<DualContextEngine>(base, type, count, config);
}

}  // namespace nncomm::dt

// Pipelined datatype pack engines.
//
// An engine turns (user buffer, datatype, count) into a sequence of
// pipeline chunks, each either
//   - DENSE: a list of (pointer, length) regions to be transmitted directly
//     (the writev-style path used when contiguous runs are large), or
//   - SPARSE: bytes packed into the engine's intermediate buffer.
//
// Before each chunk both engines perform a look-ahead over the upcoming
// type signature to classify the chunk as dense or sparse (§3.1). The two
// engines differ in what the look-ahead costs them afterwards:
//
// SingleContextEngine (MPICH2-as-described baseline, §3.1): one context.
//   The look-ahead advances it; if the chunk is classified sparse the pack
//   position has been lost and is recovered by re-searching the datatype
//   from its head (TypeCursor::seek_linear) — O(position) per chunk,
//   O(total²) overall. This is the measured flaw of Figures 12/13a.
//
// DualContextEngine (the paper's §4.1 design): two contexts. The look-ahead
//   context rolls forward over at most `lookahead_blocks` signature
//   elements (15 in the paper) while the pack context never moves except to
//   pack, so no search is ever needed. The redundant cost is bounded by the
//   look-ahead window and therefore near-constant per chunk.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/counters.hpp"
#include "datatype/cursor.hpp"
#include "datatype/plan.hpp"

namespace nncomm::dt {

enum class EngineKind {
    SingleContext,  ///< baseline: loses context on sparse chunks, re-searches
    DualContext,    ///< optimized: separate look-ahead and pack contexts
};

inline const char* engine_kind_name(EngineKind k) {
    return k == EngineKind::SingleContext ? "single-context" : "dual-context";
}

struct EngineConfig {
    /// Pipelining granularity: maximum bytes handed to the transport per
    /// chunk (pack-buffer size in the sparse path).
    std::size_t pipeline_chunk = 64 * 1024;
    /// Look-ahead window, in signature elements (contiguous blocks). The
    /// paper uses 15.
    std::size_t lookahead_blocks = 15;
    /// A chunk whose average contiguous-block length (bytes) is at least
    /// this is dense and is sent directly without packing.
    double density_threshold = 256.0;
    /// When true (default) the engines dispatch chunks of types whose
    /// compiled PackPlan is specialized (contiguous / constant-stride)
    /// through the plan kernels instead of walking the cursor. Irregular
    /// types always take the engine's own path — which is where the
    /// baseline's quadratic re-search and the dual-context look-ahead
    /// live, so the paper's measured behaviours are unaffected.
    bool enable_plan_fastpath = true;

    bool operator==(const EngineConfig&) const = default;
};

/// One pipeline chunk produced by an engine.
struct ChunkView {
    bool dense = false;
    /// Valid when !dense: packed bytes, owned by the engine, stable until
    /// the next next_chunk() call.
    std::span<const std::byte> packed;
    /// Valid when dense: direct regions of the user buffer.
    std::span<const std::pair<const std::byte*, std::size_t>> iov;
    std::size_t bytes = 0;
};

class PackEngine {
public:
    PackEngine(const void* base, const Datatype& type, std::size_t count,
               const EngineConfig& config);
    virtual ~PackEngine() = default;

    PackEngine(const PackEngine&) = delete;
    PackEngine& operator=(const PackEngine&) = delete;

    /// Produces the next chunk; returns false when all data has been
    /// emitted. The returned views are invalidated by the next call.
    virtual bool next_chunk(ChunkView& out) = 0;

    /// Rearms the engine for a fresh pass over `base` (same type, count and
    /// config) without reallocating scratch or iov storage. Persistent
    /// communication plans build their per-peer engines once and reset them
    /// on every execute.
    virtual void reset(const void* base);

    std::uint64_t total_bytes() const { return total_bytes_; }
    std::uint64_t bytes_done() const { return bytes_done_; }
    bool finished() const { return bytes_done_ == total_bytes_; }

    const StatCounters& counters() const { return counters_; }
    const PhaseTimers& timers() const { return timers_; }
    PhaseTimers& timers() { return timers_; }

    /// Zeroes the engine's counters and timers. Persistent plans harvest
    /// the statistics after each drain and clear them so nothing is counted
    /// twice across execute() calls.
    void reset_stats() {
        counters_.reset();
        timers_.reset();
    }

protected:
    /// Plan-kernel chunk dispatch shared by both engines. Returns true and
    /// fills `out` when the type's compiled plan is specialized (and the
    /// fast path is enabled); the caller then skips its cursor machinery.
    bool plan_chunk(ChunkView& out);

    const std::byte* base_;
    Datatype type_;
    std::size_t count_;
    EngineConfig config_;
    const PackPlan* plan_ = nullptr;  ///< owned by the type's node / PlanCache
    std::uint64_t total_bytes_ = 0;
    std::uint64_t bytes_done_ = 0;
    std::vector<std::byte> scratch_;  // intermediate pack buffer
    std::vector<std::pair<const std::byte*, std::size_t>> iov_;
    StatCounters counters_;
    PhaseTimers timers_;
};

/// Baseline engine reproducing the single-context + re-search behaviour.
class SingleContextEngine final : public PackEngine {
public:
    SingleContextEngine(const void* base, const Datatype& type, std::size_t count,
                        const EngineConfig& config = {});
    bool next_chunk(ChunkView& out) override;
    void reset(const void* base) override;

private:
    TypeCursor cursor_;  ///< the single context
};

/// The paper's dual-context look-ahead engine.
class DualContextEngine final : public PackEngine {
public:
    DualContextEngine(const void* base, const Datatype& type, std::size_t count,
                      const EngineConfig& config = {});
    bool next_chunk(ChunkView& out) override;
    void reset(const void* base) override;

private:
    TypeCursor pack_ctx_;       ///< context 2: actual packing, never lost
    TypeCursor lookahead_ctx_;  ///< context 1: signature-only roll-forward
};

/// Factory keyed on EngineKind (used by the runtime's send path).
std::unique_ptr<PackEngine> make_engine(EngineKind kind, const void* base, const Datatype& type,
                                        std::size_t count, const EngineConfig& config = {});

}  // namespace nncomm::dt

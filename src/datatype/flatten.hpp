// Flattened datatype representation: a stream of maximal contiguous blocks.
//
// The pack engines (engine.hpp) do not walk the recursive type tree during
// data movement; at type-commit time the tree is flattened once into an
// ordered array of (offset, length) blocks for a single type instance.
// Adjacent blocks are merged, so a "contiguous of 3 doubles" leaf becomes
// one 24-byte block and a fully dense type becomes exactly one block.
//
// This mirrors what production MPI implementations do (MPICH dataloops /
// Open MPI's opal_convertor flattened descriptions) and gives the engines a
// well-defined notion of "signature element" — one block — which is the
// unit both the paper's look-ahead window (~15 elements) and the baseline's
// quadratic re-search are counted in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/error.hpp"

namespace nncomm::dt {

/// One maximal contiguous region, relative to the type's origin.
struct FlatBlock {
    std::ptrdiff_t offset = 0;  ///< bytes from the buffer base
    std::size_t length = 0;     ///< bytes, > 0
};

/// Immutable flattened form of one datatype instance.
class FlatType {
public:
    FlatType(std::vector<FlatBlock> blocks, std::ptrdiff_t extent, std::ptrdiff_t lb);

    const std::vector<FlatBlock>& blocks() const { return blocks_; }
    std::size_t block_count() const { return blocks_.size(); }
    std::size_t size() const { return size_; }          ///< total data bytes
    std::ptrdiff_t extent() const { return extent_; }   ///< instance stride
    std::ptrdiff_t lb() const { return lb_; }
    std::size_t max_block_length() const { return max_block_; }
    std::size_t min_block_length() const { return min_block_; }
    /// Average contiguous-block length — the density measure the engines'
    /// sparse/dense decision is based on.
    double avg_block_length() const {
        return blocks_.empty() ? 0.0
                               : static_cast<double>(size_) / static_cast<double>(blocks_.size());
    }
    bool contiguous() const {
        return blocks_.size() <= 1 && static_cast<std::ptrdiff_t>(size_) == extent_ && lb_ == 0;
    }

    /// Lowest byte offset actually touched by one instance (<= 0 possible).
    std::ptrdiff_t data_lb() const { return data_lb_; }
    /// One past the highest byte offset actually touched by one instance.
    /// Can exceed extent() for resized types — buffers must be sized by
    /// (count - 1) * extent() + data_ub(), not count * extent().
    std::ptrdiff_t data_ub() const { return data_ub_; }

    /// Cumulative data bytes before block i (prefix_bytes()[block_count()] ==
    /// size()). Used by tests and by O(1) cursor re-positioning in the
    /// *optimized* engine's bookkeeping (the baseline deliberately walks).
    const std::vector<std::uint64_t>& prefix_bytes() const { return prefix_; }

private:
    std::vector<FlatBlock> blocks_;
    std::vector<std::uint64_t> prefix_;
    std::size_t size_ = 0;
    std::ptrdiff_t extent_ = 0;
    std::ptrdiff_t lb_ = 0;
    std::size_t max_block_ = 0;
    std::size_t min_block_ = 0;
    std::ptrdiff_t data_lb_ = 0;
    std::ptrdiff_t data_ub_ = 0;
};

/// Builder used by Datatype::flat(): appends blocks, merging adjacencies.
class FlatBuilder {
public:
    void add(std::ptrdiff_t offset, std::size_t length) {
        if (length == 0) return;
        if (!blocks_.empty()) {
            FlatBlock& last = blocks_.back();
            if (last.offset + static_cast<std::ptrdiff_t>(last.length) == offset) {
                last.length += length;
                return;
            }
        }
        blocks_.push_back(FlatBlock{offset, length});
        NNCOMM_CHECK_MSG(blocks_.size() <= kMaxBlocks, "datatype too fragmented to flatten");
    }

    std::vector<FlatBlock> take() { return std::move(blocks_); }

    static constexpr std::size_t kMaxBlocks = std::size_t{1} << 27;  // 128M blocks

private:
    std::vector<FlatBlock> blocks_;
};

}  // namespace nncomm::dt

// Reference pack/unpack between user buffers (described by datatypes) and
// contiguous byte streams.
//
// pack_bytes/unpack_bytes are straightforward cursor-driven copies with no
// look-ahead or density decision; the test suite uses them as the ground
// truth the engines AND the compiled plan kernels are validated against —
// they deliberately never dispatch through a PackPlan.
//
// The whole-message entry points pack_all/unpack_all (used by the
// collectives' typed self-copies and the runtime's receive side) dispatch
// through the type's compiled plan unconditionally — every kernel class,
// including Irregular, is plan-driven (plan.hpp); only the cursor walks
// here stay plan-free so tests have an independent reference.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "datatype/cursor.hpp"
#include "datatype/plan.hpp"

namespace nncomm::dt {

/// Copies the next `out.size()` packed bytes of the layout starting at
/// `base` into `out`, advancing `cur`. Returns bytes actually produced
/// (less than out.size() only when the cursor hits the end).
inline std::size_t pack_bytes(const std::byte* base, TypeCursor& cur, std::span<std::byte> out) {
    std::size_t produced = 0;
    while (produced < out.size() && !cur.at_end()) {
        const std::size_t rem = cur.current_block_remaining();
        const std::size_t want = out.size() - produced;
        const std::size_t n = rem < want ? rem : want;
        std::memcpy(out.data() + produced, base + cur.current_offset(), n);
        cur.advance(n);
        produced += n;
    }
    return produced;
}

/// Scatters `in` into the layout starting at `base`, advancing `cur`.
/// Returns bytes consumed (< in.size() only when the cursor hits the end).
inline std::size_t unpack_bytes(std::byte* base, TypeCursor& cur, std::span<const std::byte> in) {
    std::size_t consumed = 0;
    while (consumed < in.size() && !cur.at_end()) {
        const std::size_t rem = cur.current_block_remaining();
        const std::size_t want = in.size() - consumed;
        const std::size_t n = rem < want ? rem : want;
        std::memcpy(base + cur.current_offset(), in.data() + consumed, n);
        cur.advance(n);
        consumed += n;
    }
    return consumed;
}

/// Packs `count` instances of `type` at `base` into caller-owned storage
/// (`out.size()` must be the full packed size), dispatching through the
/// compiled plan kernel when one applies. Persistent communication plans
/// use this to fill their reusable pack buffers without allocating.
inline void pack_into(const void* base, const Datatype& type, std::size_t count,
                      std::span<std::byte> out, StatCounters* stats = nullptr) {
    NNCOMM_CHECK_MSG(out.size() == type.size() * count, "pack_into: size mismatch");
    type.plan().pack(type.flat(), static_cast<const std::byte*>(base), count, out, stats);
}

/// Unpacks a full packed stream into `count` instances of `type` at `base`,
/// dispatching through the compiled plan kernel.
inline void unpack_from(void* base, const Datatype& type, std::size_t count,
                        std::span<const std::byte> in, StatCounters* stats = nullptr) {
    NNCOMM_CHECK_MSG(in.size() == type.size() * count, "unpack_from: size mismatch");
    type.plan().unpack(type.flat(), static_cast<std::byte*>(base), count, in, stats);
}

/// Packs `count` instances of `type` at `base` into a fresh vector.
inline std::vector<std::byte> pack_all(const void* base, const Datatype& type,
                                       std::size_t count) {
    std::vector<std::byte> out(type.size() * count);
    pack_into(base, type, count, std::span<std::byte>(out));
    return out;
}

/// Vector-returning spelling kept for existing callers.
inline void unpack_all(void* base, const Datatype& type, std::size_t count,
                       std::span<const std::byte> in) {
    unpack_from(base, type, count, in);
}

}  // namespace nncomm::dt

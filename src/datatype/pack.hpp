// Reference pack/unpack between user buffers (described by datatypes) and
// contiguous byte streams.
//
// These are straightforward cursor-driven copies with no look-ahead or
// density decision; the runtime uses them on the receive side and the test
// suite uses them as the ground truth the engines are validated against.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "datatype/cursor.hpp"

namespace nncomm::dt {

/// Copies the next `out.size()` packed bytes of the layout starting at
/// `base` into `out`, advancing `cur`. Returns bytes actually produced
/// (less than out.size() only when the cursor hits the end).
inline std::size_t pack_bytes(const std::byte* base, TypeCursor& cur, std::span<std::byte> out) {
    std::size_t produced = 0;
    while (produced < out.size() && !cur.at_end()) {
        const std::size_t rem = cur.current_block_remaining();
        const std::size_t want = out.size() - produced;
        const std::size_t n = rem < want ? rem : want;
        std::memcpy(out.data() + produced, base + cur.current_offset(), n);
        cur.advance(n);
        produced += n;
    }
    return produced;
}

/// Scatters `in` into the layout starting at `base`, advancing `cur`.
/// Returns bytes consumed (< in.size() only when the cursor hits the end).
inline std::size_t unpack_bytes(std::byte* base, TypeCursor& cur, std::span<const std::byte> in) {
    std::size_t consumed = 0;
    while (consumed < in.size() && !cur.at_end()) {
        const std::size_t rem = cur.current_block_remaining();
        const std::size_t want = in.size() - consumed;
        const std::size_t n = rem < want ? rem : want;
        std::memcpy(base + cur.current_offset(), in.data() + consumed, n);
        cur.advance(n);
        consumed += n;
    }
    return consumed;
}

/// Packs `count` instances of `type` at `base` into a fresh vector.
inline std::vector<std::byte> pack_all(const void* base, const Datatype& type,
                                       std::size_t count) {
    TypeCursor cur(&type.flat(), count);
    std::vector<std::byte> out(cur.total_bytes());
    const std::size_t n = pack_bytes(static_cast<const std::byte*>(base), cur,
                                     std::span<std::byte>(out));
    NNCOMM_CHECK(n == out.size());
    return out;
}

/// Unpacks a full packed stream into `count` instances of `type` at `base`.
inline void unpack_all(void* base, const Datatype& type, std::size_t count,
                       std::span<const std::byte> in) {
    TypeCursor cur(&type.flat(), count);
    NNCOMM_CHECK_MSG(in.size() == cur.total_bytes(), "unpack_all: size mismatch");
    const std::size_t n = unpack_bytes(static_cast<std::byte*>(base), cur, in);
    NNCOMM_CHECK(n == in.size());
}

}  // namespace nncomm::dt

#include "datatype/plan.hpp"

#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>

#include "datatype/datatype.hpp"

namespace nncomm::dt {

namespace {

// ---------------------------------------------------------------------------
// fixed-size strided copy loops
//
// One memcpy call per block with a length known at compile time compiles to
// a couple of mov instructions; the generic variable-length fallback keeps
// the call. 4/8/16/32/64 cover the element sizes solver layouts produce
// (float, double, 2-4 doubles per node).

template <std::size_t N>
void gather_fixed(std::byte* dst, const std::byte* src, std::ptrdiff_t stride,
                  std::size_t nblocks) {
    for (std::size_t i = 0; i < nblocks; ++i) {
        std::memcpy(dst, src, N);
        dst += N;
        src += stride;
    }
}

void gather_generic(std::byte* dst, const std::byte* src, std::ptrdiff_t stride,
                    std::size_t len, std::size_t nblocks) {
    for (std::size_t i = 0; i < nblocks; ++i) {
        std::memcpy(dst, src, len);
        dst += len;
        src += stride;
    }
}

void gather_blocks(std::byte* dst, const std::byte* src, std::ptrdiff_t stride,
                   std::size_t len, std::size_t nblocks) {
    switch (len) {
        case 4: gather_fixed<4>(dst, src, stride, nblocks); break;
        case 8: gather_fixed<8>(dst, src, stride, nblocks); break;
        case 16: gather_fixed<16>(dst, src, stride, nblocks); break;
        case 32: gather_fixed<32>(dst, src, stride, nblocks); break;
        case 64: gather_fixed<64>(dst, src, stride, nblocks); break;
        default: gather_generic(dst, src, stride, len, nblocks); break;
    }
}

template <std::size_t N>
void scatter_fixed(std::byte* dst, const std::byte* src, std::ptrdiff_t stride,
                   std::size_t nblocks) {
    for (std::size_t i = 0; i < nblocks; ++i) {
        std::memcpy(dst, src, N);
        dst += stride;
        src += N;
    }
}

void scatter_generic(std::byte* dst, const std::byte* src, std::ptrdiff_t stride,
                     std::size_t len, std::size_t nblocks) {
    for (std::size_t i = 0; i < nblocks; ++i) {
        std::memcpy(dst, src, len);
        dst += stride;
        src += len;
    }
}

void scatter_blocks(std::byte* dst, const std::byte* src, std::ptrdiff_t stride,
                    std::size_t len, std::size_t nblocks) {
    switch (len) {
        case 4: scatter_fixed<4>(dst, src, stride, nblocks); break;
        case 8: scatter_fixed<8>(dst, src, stride, nblocks); break;
        case 16: scatter_fixed<16>(dst, src, stride, nblocks); break;
        case 32: scatter_fixed<32>(dst, src, stride, nblocks); break;
        case 64: scatter_fixed<64>(dst, src, stride, nblocks); break;
        default: scatter_generic(dst, src, stride, len, nblocks); break;
    }
}

std::uint64_t structural_signature(const FlatType& flat) {
    // FNV-1a over the full flattened structure plus extent/lb. Two types
    // with equal signatures and equal scalar summaries are treated as
    // structurally identical by the cache.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    mix(static_cast<std::uint64_t>(flat.extent()));
    mix(static_cast<std::uint64_t>(flat.lb()));
    mix(flat.block_count());
    for (const FlatBlock& b : flat.blocks()) {
        mix(static_cast<std::uint64_t>(b.offset));
        mix(b.length);
    }
    return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// compilation

PackPlan PackPlan::compile(const FlatType& flat) {
    PackPlan p;
    p.instance_size_ = flat.size();
    p.extent_ = flat.extent();
    p.signature_ = structural_signature(flat);

    const auto& blocks = flat.blocks();
    if (blocks.empty()) {
        p.kernel_ = PackKernel::Contiguous;  // zero-size type: nothing to move
        return p;
    }
    p.first_offset_ = blocks.front().offset;
    p.blocks_per_instance_ = blocks.size();
    p.block_len_ = blocks.front().length;

    if (blocks.size() == 1 &&
        static_cast<std::ptrdiff_t>(flat.size()) == flat.extent()) {
        // Consecutive instances tile memory densely: the whole message is
        // one run starting at first_offset_.
        p.kernel_ = PackKernel::Contiguous;
        return p;
    }

    // Vector pattern: every block the same length, block starts in
    // arithmetic progression. (A single block per instance with
    // size != extent is the degenerate count-strided case, stride unused.)
    bool uniform = true;
    for (const FlatBlock& b : blocks) {
        if (b.length != p.block_len_) {
            uniform = false;
            break;
        }
    }
    if (uniform) {
        std::ptrdiff_t stride = 0;
        bool arithmetic = true;
        if (blocks.size() >= 2) {
            stride = blocks[1].offset - blocks[0].offset;
            for (std::size_t i = 2; i < blocks.size(); ++i) {
                if (blocks[i].offset - blocks[i - 1].offset != stride) {
                    arithmetic = false;
                    break;
                }
            }
        }
        if (arithmetic) {
            p.kernel_ = PackKernel::Strided;
            p.stride_ = stride;
            return p;
        }
    }

    p.kernel_ = PackKernel::Irregular;
    return p;
}

// ---------------------------------------------------------------------------
// kernels

void PackPlan::pack_range(const FlatType& flat, const std::byte* base, std::size_t count,
                          std::uint64_t pos, std::span<std::byte> out) const {
    std::size_t n = out.size();
    if (n == 0) return;
    NNCOMM_ASSERT(pos + n <= static_cast<std::uint64_t>(instance_size_) * count);
    std::byte* dst = out.data();

    switch (kernel_) {
        case PackKernel::Contiguous:
            std::memcpy(dst, base + first_offset_ + static_cast<std::ptrdiff_t>(pos), n);
            return;
        case PackKernel::Strided: {
            const std::size_t L = block_len_;
            const std::size_t B = blocks_per_instance_;
            std::uint64_t blk = pos / L;
            std::size_t r = static_cast<std::size_t>(pos % L);
            std::uint64_t q = blk / B;
            std::size_t j = static_cast<std::size_t>(blk % B);
            while (n > 0) {
                const std::byte* src = base + static_cast<std::ptrdiff_t>(q) * extent_ +
                                       first_offset_ +
                                       static_cast<std::ptrdiff_t>(j) * stride_;
                if (r == 0 && n >= L) {
                    const std::size_t run = std::min<std::size_t>(B - j, n / L);
                    gather_blocks(dst, src, stride_, L, run);
                    dst += run * L;
                    n -= run * L;
                    j += run;
                } else {
                    const std::size_t take = std::min(L - r, n);
                    std::memcpy(dst, src + r, take);
                    dst += take;
                    n -= take;
                    r += take;
                    if (r < L) return;  // ended mid-block
                    r = 0;
                    ++j;
                }
                if (j == B) {
                    j = 0;
                    ++q;
                }
            }
            return;
        }
        case PackKernel::Irregular: {
            TypeCursor cur(&flat, count);
            if (pos != 0) cur.seek_indexed(pos);
            while (n > 0) {
                const std::size_t rem = cur.current_block_remaining();
                const std::size_t take = rem < n ? rem : n;
                std::memcpy(dst, base + cur.current_offset(), take);
                cur.advance(take);
                dst += take;
                n -= take;
            }
            return;
        }
    }
}

void PackPlan::unpack_range(const FlatType& flat, std::byte* base, std::size_t count,
                            std::uint64_t pos, std::span<const std::byte> in) const {
    std::size_t n = in.size();
    if (n == 0) return;
    NNCOMM_ASSERT(pos + n <= static_cast<std::uint64_t>(instance_size_) * count);
    const std::byte* src = in.data();

    switch (kernel_) {
        case PackKernel::Contiguous:
            std::memcpy(base + first_offset_ + static_cast<std::ptrdiff_t>(pos), src, n);
            return;
        case PackKernel::Strided: {
            const std::size_t L = block_len_;
            const std::size_t B = blocks_per_instance_;
            std::uint64_t blk = pos / L;
            std::size_t r = static_cast<std::size_t>(pos % L);
            std::uint64_t q = blk / B;
            std::size_t j = static_cast<std::size_t>(blk % B);
            while (n > 0) {
                std::byte* dst = base + static_cast<std::ptrdiff_t>(q) * extent_ +
                                 first_offset_ + static_cast<std::ptrdiff_t>(j) * stride_;
                if (r == 0 && n >= L) {
                    const std::size_t run = std::min<std::size_t>(B - j, n / L);
                    scatter_blocks(dst, src, stride_, L, run);
                    src += run * L;
                    n -= run * L;
                    j += run;
                } else {
                    const std::size_t take = std::min(L - r, n);
                    std::memcpy(dst + r, src, take);
                    src += take;
                    n -= take;
                    r += take;
                    if (r < L) return;
                    r = 0;
                    ++j;
                }
                if (j == B) {
                    j = 0;
                    ++q;
                }
            }
            return;
        }
        case PackKernel::Irregular: {
            TypeCursor cur(&flat, count);
            if (pos != 0) cur.seek_indexed(pos);
            while (n > 0) {
                const std::size_t rem = cur.current_block_remaining();
                const std::size_t take = rem < n ? rem : n;
                std::memcpy(base + cur.current_offset(), src, take);
                cur.advance(take);
                src += take;
                n -= take;
            }
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// PlanCache

struct PlanCache::Impl {
    struct Key {
        std::uint64_t sig = 0;
        std::size_t size = 0;
        std::ptrdiff_t extent = 0;
        std::size_t nblocks = 0;
        bool operator==(const Key&) const = default;
    };
    struct Entry {
        Key key;
        std::shared_ptr<const PackPlan> plan;
    };

    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::size_t capacity = kDefaultCapacity;
    Stats st;

    void evict_over_capacity() {
        while (lru.size() > capacity) {
            index.erase(lru.back().key.sig);
            lru.pop_back();
            ++st.evictions;
        }
    }
};

PlanCache& PlanCache::instance() {
    static PlanCache cache;
    return cache;
}

PlanCache::Impl& PlanCache::impl() const {
    static Impl i;
    return i;
}

std::shared_ptr<const PackPlan> PlanCache::get(const Datatype& type) {
    const FlatType& flat = type.flat();
    // Compile outside the lock; on a race the loser's compile is discarded.
    auto plan = std::make_shared<const PackPlan>(PackPlan::compile(flat));
    const Impl::Key key{plan->signature(), flat.size(), flat.extent(), flat.block_count()};

    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    auto it = im.index.find(key.sig);
    if (it != im.index.end() && it->second->key == key) {
        ++im.st.hits;
        im.lru.splice(im.lru.begin(), im.lru, it->second);
        return im.lru.front().plan;
    }
    ++im.st.misses;
    if (it != im.index.end()) {
        // Signature collision with a structurally different type: replace.
        im.lru.erase(it->second);
        im.index.erase(it);
    }
    im.lru.push_front(Impl::Entry{key, plan});
    im.index[key.sig] = im.lru.begin();
    im.evict_over_capacity();
    return plan;
}

PlanCache::Stats PlanCache::stats() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    Stats s = im.st;
    s.entries = im.lru.size();
    return s;
}

void PlanCache::reset() {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    im.lru.clear();
    im.index.clear();
    im.st = Stats{};
}

void PlanCache::set_capacity(std::size_t cap) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    im.capacity = cap == 0 ? 1 : cap;
    im.evict_over_capacity();
}

}  // namespace nncomm::dt

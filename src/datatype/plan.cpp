#include "datatype/plan.hpp"

#include <algorithm>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>

#include "core/counters.hpp"
#include "datatype/datatype.hpp"

namespace nncomm::dt {

namespace {

std::uint64_t structural_signature(const FlatType& flat) {
    // FNV-1a over the full flattened structure plus extent/lb. Two types
    // with equal signatures and equal scalar summaries are treated as
    // structurally identical by the cache.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    mix(static_cast<std::uint64_t>(flat.extent()));
    mix(static_cast<std::uint64_t>(flat.lb()));
    mix(flat.block_count());
    for (const FlatBlock& b : flat.blocks()) {
        mix(static_cast<std::uint64_t>(b.offset));
        mix(b.length);
    }
    return h;
}

// 2-D nested pattern: a run of `inner` blocks at constant stride `si`,
// repeated at constant outer stride `so` (the DMDA face-exchange and
// transpose-column shape). Requires at least two groups of at least two
// blocks; a full-length single run is plain Strided and never reaches here.
bool detect_blocked(const std::vector<FlatBlock>& blocks, std::size_t& inner,
                    std::ptrdiff_t& si, std::ptrdiff_t& so) {
    const std::size_t B = blocks.size();
    if (B < 4) return false;
    si = blocks[1].offset - blocks[0].offset;
    std::size_t I = 2;
    while (I < B && blocks[I].offset - blocks[I - 1].offset == si) ++I;
    if (I == B || B % I != 0) return false;
    so = blocks[I].offset - blocks[0].offset;
    const std::size_t G = B / I;
    if (G < 2) return false;
    for (std::size_t g = 0; g < G; ++g) {
        const std::ptrdiff_t start =
            blocks[0].offset + static_cast<std::ptrdiff_t>(g) * so;
        for (std::size_t k = 0; k < I; ++k) {
            if (blocks[g * I + k].offset != start + static_cast<std::ptrdiff_t>(k) * si) {
                return false;
            }
        }
    }
    inner = I;
    return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// compilation

PackPlan PackPlan::compile(const FlatType& flat) {
    PackPlan p;
    p.instance_size_ = flat.size();
    p.extent_ = flat.extent();
    p.signature_ = structural_signature(flat);

    const auto& blocks = flat.blocks();
    if (blocks.empty()) {
        p.kernel_ = PackKernel::Contiguous;  // zero-size type: nothing to move
        return p;
    }
    p.first_offset_ = blocks.front().offset;
    p.blocks_per_instance_ = blocks.size();
    p.block_len_ = blocks.front().length;
    p.tail_len_ = blocks.back().length;

    if (blocks.size() == 1 &&
        static_cast<std::ptrdiff_t>(flat.size()) == flat.extent()) {
        // Consecutive instances tile memory densely: the whole message is
        // one run starting at first_offset_.
        p.kernel_ = PackKernel::Contiguous;
        return p;
    }

    const std::size_t B = blocks.size();
    // Uniform prefix: every block but possibly the last has the leading
    // length. A shorter trailing block (odd-count vector types) stays
    // Strided; a longer one cannot (the vector run math assumes tail <= L).
    bool prefix_uniform = true;
    for (std::size_t i = 1; i + 1 < B; ++i) {
        if (blocks[i].length != p.block_len_) {
            prefix_uniform = false;
            break;
        }
    }
    const bool uniform = prefix_uniform && p.tail_len_ == p.block_len_;
    const bool uniform_with_tail =
        prefix_uniform && B >= 2 && p.tail_len_ < p.block_len_;

    if (uniform || uniform_with_tail) {
        std::ptrdiff_t stride = 0;
        bool arithmetic = true;
        if (B >= 2) {
            stride = blocks[1].offset - blocks[0].offset;
            for (std::size_t i = 2; i < B; ++i) {
                if (blocks[i].offset - blocks[i - 1].offset != stride) {
                    arithmetic = false;
                    break;
                }
            }
        }
        if (arithmetic) {
            p.kernel_ = PackKernel::Strided;
            p.stride_ = stride;
            p.kernels_ = simd::select(p.block_len_);
            return p;
        }
        if (uniform) {
            std::size_t inner = 0;
            std::ptrdiff_t si = 0, so = 0;
            if (detect_blocked(blocks, inner, si, so)) {
                p.kernel_ = PackKernel::BlockedStrided;
                p.inner_blocks_ = inner;
                p.stride_ = si;
                p.outer_stride_ = so;
                p.kernels_ = simd::select(p.block_len_);
                return p;
            }
        }
    }

    p.kernel_ = PackKernel::Irregular;
    return p;
}

// ---------------------------------------------------------------------------
// kernels

void PackPlan::pack_range(const FlatType& flat, const std::byte* base, std::size_t count,
                          std::uint64_t pos, std::span<std::byte> out,
                          StatCounters* stats) const {
    std::size_t n = out.size();
    if (n == 0) return;
    NNCOMM_ASSERT(pos + n <= static_cast<std::uint64_t>(instance_size_) * count);
    if (stats) ++stats->dt_kernel_dispatch[static_cast<std::size_t>(kernel_)];
    std::byte* dst = out.data();

    switch (kernel_) {
        case PackKernel::Contiguous:
            std::memcpy(dst, base + first_offset_ + static_cast<std::ptrdiff_t>(pos), n);
            return;
        case PackKernel::Strided: {
            const std::size_t L = block_len_;
            const std::size_t T = tail_len_;
            const std::size_t B = blocks_per_instance_;
            const std::size_t U = (T == L) ? B : B - 1;  // uniform-run blocks
            std::uint64_t q = pos / instance_size_;
            const std::uint64_t rem = pos % instance_size_;
            std::size_t j = static_cast<std::size_t>(rem / L);
            std::size_t r = static_cast<std::size_t>(rem % L);
            std::uint64_t vec = 0;
            while (n > 0) {
                const std::byte* src = base + static_cast<std::ptrdiff_t>(q) * extent_ +
                                       first_offset_ +
                                       static_cast<std::ptrdiff_t>(j) * stride_;
                if (r == 0 && j < U && n >= L) {
                    const std::size_t run = std::min<std::size_t>(U - j, n / L);
                    kernels_.gather(dst, src, stride_, L, run);
                    vec += run * L;
                    dst += run * L;
                    n -= run * L;
                    j += run;
                } else {
                    const std::size_t blen = (j == B - 1) ? T : L;
                    const std::size_t take = std::min(blen - r, n);
                    std::memcpy(dst, src + r, take);
                    dst += take;
                    n -= take;
                    r += take;
                    if (r < blen) break;  // ended mid-block
                    r = 0;
                    ++j;
                }
                if (j == B) {
                    j = 0;
                    ++q;
                }
            }
            if (stats && kernels_.vector) stats->dt_simd_pack_bytes += vec;
            return;
        }
        case PackKernel::BlockedStrided: {
            const std::size_t L = block_len_;
            const std::size_t B = blocks_per_instance_;
            const std::size_t I = inner_blocks_;
            const std::size_t G = B / I;
            const std::uint64_t blk = pos / L;
            std::size_t r = static_cast<std::size_t>(pos % L);
            std::uint64_t q = blk / B;
            std::size_t g = static_cast<std::size_t>((blk % B) / I);
            std::size_t k = static_cast<std::size_t>((blk % B) % I);
            std::uint64_t vec = 0;
            while (n > 0) {
                const std::byte* src = base + static_cast<std::ptrdiff_t>(q) * extent_ +
                                       first_offset_ +
                                       static_cast<std::ptrdiff_t>(g) * outer_stride_ +
                                       static_cast<std::ptrdiff_t>(k) * stride_;
                if (r == 0 && n >= L) {
                    const std::size_t run = std::min<std::size_t>(I - k, n / L);
                    kernels_.gather(dst, src, stride_, L, run);
                    vec += run * L;
                    dst += run * L;
                    n -= run * L;
                    k += run;
                } else {
                    const std::size_t take = std::min(L - r, n);
                    std::memcpy(dst, src + r, take);
                    dst += take;
                    n -= take;
                    r += take;
                    if (r < L) break;
                    r = 0;
                    ++k;
                }
                if (k == I) {
                    k = 0;
                    if (++g == G) {
                        g = 0;
                        ++q;
                    }
                }
            }
            if (stats && kernels_.vector) stats->dt_simd_pack_bytes += vec;
            return;
        }
        case PackKernel::Irregular: {
            // Tight block-table walk: one binary search to enter, then a
            // straight-line loop of memcpys (with aperiodic block lengths
            // any fixed-size dispatch is a mispredicted branch per block —
            // measured slower than letting memcpy take the runtime length).
            // The TypeCursor stays the *reference* implementation
            // (pack.hpp); this is the compiled form of the same walk.
            const auto& blocks = flat.blocks();
            const auto& prefix = flat.prefix_bytes();
            std::uint64_t q = pos / instance_size_;
            const std::uint64_t rem = pos % instance_size_;
            std::size_t bi = static_cast<std::size_t>(
                std::upper_bound(prefix.begin(), prefix.end(), rem) - prefix.begin() - 1);
            const std::size_t r = static_cast<std::size_t>(rem - prefix[bi]);
            const std::byte* ibase = base + static_cast<std::ptrdiff_t>(q) * extent_;
            if (r != 0) {  // partial head block, peeled off the hot loop
                const FlatBlock& b = blocks[bi];
                const std::size_t take = std::min(b.length - r, n);
                std::memcpy(dst, ibase + b.offset + static_cast<std::ptrdiff_t>(r), take);
                dst += take;
                n -= take;
                if (r + take < b.length) return;
                if (++bi == blocks.size()) {
                    bi = 0;
                    ibase += extent_;
                }
            }
            while (n > 0) {
                for (; bi < blocks.size(); ++bi) {
                    const FlatBlock& b = blocks[bi];
                    if (n < b.length) {
                        std::memcpy(dst, ibase + b.offset, n);
                        return;
                    }
                    std::memcpy(dst, ibase + b.offset, b.length);
                    dst += b.length;
                    n -= b.length;
                }
                bi = 0;
                ibase += extent_;
            }
            return;
        }
    }
}

void PackPlan::unpack_range(const FlatType& flat, std::byte* base, std::size_t count,
                            std::uint64_t pos, std::span<const std::byte> in,
                            StatCounters* stats) const {
    std::size_t n = in.size();
    if (n == 0) return;
    NNCOMM_ASSERT(pos + n <= static_cast<std::uint64_t>(instance_size_) * count);
    if (stats) ++stats->dt_kernel_dispatch[static_cast<std::size_t>(kernel_)];
    const std::byte* src = in.data();

    switch (kernel_) {
        case PackKernel::Contiguous:
            std::memcpy(base + first_offset_ + static_cast<std::ptrdiff_t>(pos), src, n);
            return;
        case PackKernel::Strided: {
            const std::size_t L = block_len_;
            const std::size_t T = tail_len_;
            const std::size_t B = blocks_per_instance_;
            const std::size_t U = (T == L) ? B : B - 1;
            std::uint64_t q = pos / instance_size_;
            const std::uint64_t rem = pos % instance_size_;
            std::size_t j = static_cast<std::size_t>(rem / L);
            std::size_t r = static_cast<std::size_t>(rem % L);
            std::uint64_t vec = 0;
            while (n > 0) {
                std::byte* dst = base + static_cast<std::ptrdiff_t>(q) * extent_ +
                                 first_offset_ + static_cast<std::ptrdiff_t>(j) * stride_;
                if (r == 0 && j < U && n >= L) {
                    const std::size_t run = std::min<std::size_t>(U - j, n / L);
                    kernels_.scatter(dst, src, stride_, L, run);
                    vec += run * L;
                    src += run * L;
                    n -= run * L;
                    j += run;
                } else {
                    const std::size_t blen = (j == B - 1) ? T : L;
                    const std::size_t take = std::min(blen - r, n);
                    std::memcpy(dst + r, src, take);
                    src += take;
                    n -= take;
                    r += take;
                    if (r < blen) break;
                    r = 0;
                    ++j;
                }
                if (j == B) {
                    j = 0;
                    ++q;
                }
            }
            if (stats && kernels_.vector_scatter) stats->dt_simd_unpack_bytes += vec;
            return;
        }
        case PackKernel::BlockedStrided: {
            const std::size_t L = block_len_;
            const std::size_t B = blocks_per_instance_;
            const std::size_t I = inner_blocks_;
            const std::size_t G = B / I;
            const std::uint64_t blk = pos / L;
            std::size_t r = static_cast<std::size_t>(pos % L);
            std::uint64_t q = blk / B;
            std::size_t g = static_cast<std::size_t>((blk % B) / I);
            std::size_t k = static_cast<std::size_t>((blk % B) % I);
            std::uint64_t vec = 0;
            while (n > 0) {
                std::byte* dst = base + static_cast<std::ptrdiff_t>(q) * extent_ +
                                 first_offset_ +
                                 static_cast<std::ptrdiff_t>(g) * outer_stride_ +
                                 static_cast<std::ptrdiff_t>(k) * stride_;
                if (r == 0 && n >= L) {
                    const std::size_t run = std::min<std::size_t>(I - k, n / L);
                    kernels_.scatter(dst, src, stride_, L, run);
                    vec += run * L;
                    src += run * L;
                    n -= run * L;
                    k += run;
                } else {
                    const std::size_t take = std::min(L - r, n);
                    std::memcpy(dst + r, src, take);
                    src += take;
                    n -= take;
                    r += take;
                    if (r < L) break;
                    r = 0;
                    ++k;
                }
                if (k == I) {
                    k = 0;
                    if (++g == G) {
                        g = 0;
                        ++q;
                    }
                }
            }
            if (stats && kernels_.vector_scatter) stats->dt_simd_unpack_bytes += vec;
            return;
        }
        case PackKernel::Irregular: {
            const auto& blocks = flat.blocks();
            const auto& prefix = flat.prefix_bytes();
            std::uint64_t q = pos / instance_size_;
            const std::uint64_t rem = pos % instance_size_;
            std::size_t bi = static_cast<std::size_t>(
                std::upper_bound(prefix.begin(), prefix.end(), rem) - prefix.begin() - 1);
            const std::size_t r = static_cast<std::size_t>(rem - prefix[bi]);
            std::byte* ibase = base + static_cast<std::ptrdiff_t>(q) * extent_;
            if (r != 0) {
                const FlatBlock& b = blocks[bi];
                const std::size_t take = std::min(b.length - r, n);
                std::memcpy(ibase + b.offset + static_cast<std::ptrdiff_t>(r), src, take);
                src += take;
                n -= take;
                if (r + take < b.length) return;
                if (++bi == blocks.size()) {
                    bi = 0;
                    ibase += extent_;
                }
            }
            while (n > 0) {
                for (; bi < blocks.size(); ++bi) {
                    const FlatBlock& b = blocks[bi];
                    if (n < b.length) {
                        std::memcpy(ibase + b.offset, src, n);
                        return;
                    }
                    std::memcpy(ibase + b.offset, src, b.length);
                    src += b.length;
                    n -= b.length;
                }
                bi = 0;
                ibase += extent_;
            }
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// PlanCache

struct PlanCache::Impl {
    struct Key {
        std::uint64_t sig = 0;
        std::size_t size = 0;
        std::ptrdiff_t extent = 0;
        std::size_t nblocks = 0;
        bool operator==(const Key&) const = default;
    };
    struct Entry {
        Key key;
        std::shared_ptr<const PackPlan> plan;
    };

    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::size_t capacity = kDefaultCapacity;
    Stats st;

    void evict_over_capacity() {
        while (lru.size() > capacity) {
            index.erase(lru.back().key.sig);
            lru.pop_back();
            ++st.evictions;
        }
    }
};

PlanCache& PlanCache::instance() {
    static PlanCache cache;
    return cache;
}

PlanCache::Impl& PlanCache::impl() const {
    static Impl i;
    return i;
}

std::shared_ptr<const PackPlan> PlanCache::get(const Datatype& type) {
    const FlatType& flat = type.flat();
    // Compile outside the lock; on a race the loser's compile is discarded.
    auto plan = std::make_shared<const PackPlan>(PackPlan::compile(flat));
    const Impl::Key key{plan->signature(), flat.size(), flat.extent(), flat.block_count()};

    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    auto it = im.index.find(key.sig);
    if (it != im.index.end() && it->second->key == key) {
        ++im.st.hits;
        im.lru.splice(im.lru.begin(), im.lru, it->second);
        return im.lru.front().plan;
    }
    ++im.st.misses;
    if (it != im.index.end()) {
        // Signature collision with a structurally different type: replace.
        im.lru.erase(it->second);
        im.index.erase(it);
    }
    im.lru.push_front(Impl::Entry{key, plan});
    im.index[key.sig] = im.lru.begin();
    im.evict_over_capacity();
    return plan;
}

PlanCache::Stats PlanCache::stats() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    Stats s = im.st;
    s.entries = im.lru.size();
    return s;
}

void PlanCache::reset() {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    im.lru.clear();
    im.index.clear();
    im.st = Stats{};
}

void PlanCache::set_capacity(std::size_t cap) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    im.capacity = cap == 0 ? 1 : cap;
    im.evict_over_capacity();
}

}  // namespace nncomm::dt

// Pack plans: commit-time compilation of flattened datatypes into
// specialized copy kernels, plus a process-wide LRU plan cache.
//
// The paper's measurements (§4.1, Figures 12/13) show that datatype
// *processing* — not bytes moved — dominates nonuniform noncontiguous
// communication, and follow-up studies (Carpen-Amarie/Hunold/Träff;
// Eijkhout) show that generic interpretive packing loses to
// pattern-specialized copy loops. A PackPlan is the compiled form: at
// commit time (first use of a type) the flattened block stream is
// classified once into a kernel class,
//
//   Contiguous     — one dense run per message: a single memcpy,
//   Strided        — constant stride, uniform block length with an optional
//                    shorter trailing block (odd-count vector types): a
//                    two-level strided loop over a SIMD gather/scatter
//                    kernel pair selected per block length (simd.hpp),
//   BlockedStrided — constant inner blocklen/stride nested inside a
//                    constant outer stride (the DMDA face-exchange and
//                    transpose-column shape): a three-level loop whose
//                    inner runs use the same SIMD kernel pair,
//   Irregular      — anything else: a tight walk of the flattened block
//                    table (binary-search entry, fixed-size-dispatched
//                    copies) — still plan-driven, no per-block cursor
//                    bookkeeping,
//
// and every later pack/unpack of a structurally equal type dispatches
// straight to the kernel with O(1) positioning — no per-block cursor
// bookkeeping and no re-classification. The SIMD kernel pair is frozen
// into the plan at compile time (per-plan dispatch, not per-call), so the
// hot loop carries zero CPU-feature branching. Plans are cached two ways:
// each Datatype node memoizes its plan (Datatype::plan()), and a
// process-wide LRU cache keyed by the flattened structural signature
// shares one compiled plan between structurally equal types built
// independently (e.g. the per-peer hindexed types two VecScatters plan
// over the same index pattern).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "datatype/cursor.hpp"
#include "datatype/flatten.hpp"
#include "datatype/simd.hpp"

namespace nncomm {
struct StatCounters;
}

namespace nncomm::dt {

enum class PackKernel {
    Contiguous,      ///< one dense run; pack == memcpy
    Strided,         ///< constant-stride vector pattern (uniform + optional tail)
    BlockedStrided,  ///< 2-D nested constant-stride pattern
    Irregular,       ///< flattened block-table walk
};

inline const char* pack_kernel_name(PackKernel k) {
    switch (k) {
        case PackKernel::Contiguous: return "contiguous";
        case PackKernel::Strided: return "strided";
        case PackKernel::BlockedStrided: return "blocked-strided";
        case PackKernel::Irregular: return "irregular";
    }
    return "?";
}

/// Immutable compiled pack plan for one datatype layout. The specialized
/// kernels (Contiguous/Strided/BlockedStrided) carry every parameter they
/// need as scalars plus a frozen SIMD kernel pair; the Irregular kernel
/// walks the caller-supplied FlatType's block table, which must be the
/// layout the plan was compiled from (or a structurally equal one).
class PackPlan {
public:
    /// Classifies `flat` and compiles the matching kernel.
    static PackPlan compile(const FlatType& flat);

    PackKernel kernel() const { return kernel_; }
    /// True when pack/unpack uses closed-form scalar parameters (no block
    /// table). The Irregular class is also plan-driven (tight table walk),
    /// but callers that keep separate machinery for the general case key
    /// off this.
    bool specialized() const { return kernel_ != PackKernel::Irregular; }

    std::size_t instance_size() const { return instance_size_; }
    /// Byte offset of the first data byte (block 0 / the dense run).
    std::ptrdiff_t first_offset() const { return first_offset_; }
    /// Strided kernel parameters (meaningful when kernel() == Strided or
    /// BlockedStrided).
    std::size_t block_length() const { return block_len_; }
    std::ptrdiff_t block_stride() const { return stride_; }
    std::size_t blocks_per_instance() const { return blocks_per_instance_; }
    /// Length of the trailing block (== block_length() when uniform).
    std::size_t tail_length() const { return tail_len_; }
    /// BlockedStrided shape: blocks per inner run / distance between runs.
    std::size_t inner_blocks() const { return inner_blocks_; }
    std::ptrdiff_t outer_stride() const { return outer_stride_; }
    /// True when the frozen kernel pair moves bytes through vector
    /// registers (feeds the dt_simd_* counters).
    bool vectorized() const { return kernels_.vector; }

    /// 64-bit structural signature of the flattened layout (cache key).
    std::uint64_t signature() const { return signature_; }

    /// Gathers `out.size()` packed-stream bytes starting at stream byte
    /// `pos` of `count` instances of the layout at `base` into `out`.
    /// `flat` must describe the layout the plan was compiled from (used
    /// only by the Irregular kernel). When `stats` is non-null the call is
    /// tallied into the dt_* dispatch counters.
    void pack_range(const FlatType& flat, const std::byte* base, std::size_t count,
                    std::uint64_t pos, std::span<std::byte> out,
                    StatCounters* stats = nullptr) const;

    /// Scatters `in` into the layout at `base` starting at packed-stream
    /// byte `pos` (the inverse of pack_range).
    void unpack_range(const FlatType& flat, std::byte* base, std::size_t count,
                      std::uint64_t pos, std::span<const std::byte> in,
                      StatCounters* stats = nullptr) const;

    /// Full-message helpers (pos = 0, whole stream).
    void pack(const FlatType& flat, const std::byte* base, std::size_t count,
              std::span<std::byte> out, StatCounters* stats = nullptr) const {
        pack_range(flat, base, count, 0, out, stats);
    }
    void unpack(const FlatType& flat, std::byte* base, std::size_t count,
                std::span<const std::byte> in, StatCounters* stats = nullptr) const {
        unpack_range(flat, base, count, 0, in, stats);
    }

private:
    PackKernel kernel_ = PackKernel::Irregular;
    std::size_t instance_size_ = 0;      ///< data bytes per instance
    std::ptrdiff_t extent_ = 0;          ///< instance stride in memory
    std::ptrdiff_t first_offset_ = 0;    ///< offset of block 0 (or the dense run)
    std::size_t block_len_ = 0;          ///< uniform block length
    std::size_t tail_len_ = 0;           ///< trailing-block length (<= block_len_)
    std::ptrdiff_t stride_ = 0;          ///< byte distance between block starts
    std::size_t blocks_per_instance_ = 1;
    std::size_t inner_blocks_ = 1;       ///< blocks per inner run (BlockedStrided)
    std::ptrdiff_t outer_stride_ = 0;    ///< distance between inner-run starts
    simd::Kernels kernels_{};            ///< frozen at compile time
    std::uint64_t signature_ = 0;
};

/// Process-wide LRU cache of compiled plans keyed by structural signature.
/// Shared by all ranks (threads); all operations are mutex-protected.
class PlanCache {
public:
    static PlanCache& instance();

    /// Returns the cached plan for `type`'s flattened layout, compiling on
    /// miss. The returned plan is shared and immutable.
    std::shared_ptr<const PackPlan> get(const Datatype& type);

    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;  ///< compiles
        std::uint64_t evictions = 0;
        std::size_t entries = 0;
    };
    Stats stats() const;

    /// Drops all entries and zeroes the statistics (tests).
    void reset();
    /// Caps the number of retained plans (least recently used evicted).
    void set_capacity(std::size_t cap);

    static constexpr std::size_t kDefaultCapacity = 256;

private:
    PlanCache() = default;
    struct Impl;
    Impl& impl() const;
};

}  // namespace nncomm::dt

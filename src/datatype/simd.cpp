#include "datatype/simd.hpp"

#include <cstring>
#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define NNCOMM_SIMD_X86 1
#if !defined(NNCOMM_SIMD_DISABLED)
#include <immintrin.h>
#endif
#endif
#if defined(__aarch64__) && defined(__ARM_NEON) && !defined(NNCOMM_SIMD_DISABLED)
#define NNCOMM_SIMD_NEON_IMPL 1
#include <arm_neon.h>
#endif

namespace nncomm::dt::simd {

namespace {

// ---------------------------------------------------------------------------
// scalar floor: fixed-size dispatched copy loops
//
// memcpy with a compile-time length compiles to plain moves, so each of
// these IS the loop a user hand-packs around a known element size. The
// fixed table covers 4/8/16/32/64 (float, double, 2-8 doubles per node)
// plus 12/24/48 (3-component nodes — the paper's transpose element is 3
// doubles = 24 bytes). This is the whole engine when the build or the
// environment turns SIMD off, and the remainder/tail path of every vector
// kernel below.

template <std::size_t N>
void gather_fixed(std::byte* dst, const std::byte* src, std::ptrdiff_t stride, std::size_t,
                  std::size_t nblocks) {
    for (std::size_t i = 0; i < nblocks; ++i) {
        std::memcpy(dst, src, N);
        dst += N;
        src += stride;
    }
}

template <std::size_t N>
void scatter_fixed(std::byte* dst, const std::byte* src, std::ptrdiff_t stride, std::size_t,
                   std::size_t nblocks) {
    for (std::size_t i = 0; i < nblocks; ++i) {
        std::memcpy(dst, src, N);
        dst += stride;
        src += N;
    }
}

void gather_generic(std::byte* dst, const std::byte* src, std::ptrdiff_t stride,
                    std::size_t len, std::size_t nblocks) {
    for (std::size_t i = 0; i < nblocks; ++i) {
        std::memcpy(dst, src, len);
        dst += len;
        src += stride;
    }
}

void scatter_generic(std::byte* dst, const std::byte* src, std::ptrdiff_t stride,
                     std::size_t len, std::size_t nblocks) {
    for (std::size_t i = 0; i < nblocks; ++i) {
        std::memcpy(dst, src, len);
        dst += stride;
        src += len;
    }
}

Kernels scalar_select(std::size_t len) {
    switch (len) {
        case 4: return {gather_fixed<4>, scatter_fixed<4>, false};
        case 8: return {gather_fixed<8>, scatter_fixed<8>, false};
        case 12: return {gather_fixed<12>, scatter_fixed<12>, false};
        case 16: return {gather_fixed<16>, scatter_fixed<16>, false};
        case 24: return {gather_fixed<24>, scatter_fixed<24>, false};
        case 32: return {gather_fixed<32>, scatter_fixed<32>, false};
        case 48: return {gather_fixed<48>, scatter_fixed<48>, false};
        case 64: return {gather_fixed<64>, scatter_fixed<64>, false};
        default: return {gather_generic, scatter_generic, false};
    }
}

#if defined(NNCOMM_SIMD_X86) && !defined(NNCOMM_SIMD_DISABLED)

// ---------------------------------------------------------------------------
// x86: AVX2 / AVX-512 kernels (function-level target attributes, so the
// translation unit builds with the portable baseline and only these bodies
// carry vector encodings — runtime dispatch stays safe on any host).
//
// Exact-width loads/stores only: a kernel for len-byte blocks touches
// exactly len bytes per block on both sides.

inline std::int32_t ld32(const std::byte* p) {
    std::int32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

inline std::int64_t ld64(const std::byte* p) {
    std::int64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

// 4-byte blocks: compact 8 blocks into one 256-bit store.
__attribute__((target("avx2"))) void gather4_avx2(std::byte* dst, const std::byte* src,
                                                  std::ptrdiff_t stride, std::size_t,
                                                  std::size_t n) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const std::byte* s = src + static_cast<std::ptrdiff_t>(i) * stride;
        const __m256i v = _mm256_set_epi32(ld32(s + 7 * stride), ld32(s + 6 * stride),
                                           ld32(s + 5 * stride), ld32(s + 4 * stride),
                                           ld32(s + 3 * stride), ld32(s + 2 * stride),
                                           ld32(s + stride), ld32(s));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i * 4), v);
    }
    for (; i < n; ++i) {
        std::memcpy(dst + i * 4, src + static_cast<std::ptrdiff_t>(i) * stride, 4);
    }
}

// 8-byte blocks: compact 4 blocks into one 256-bit store.
__attribute__((target("avx2"))) void gather8_avx2(std::byte* dst, const std::byte* src,
                                                  std::ptrdiff_t stride, std::size_t,
                                                  std::size_t n) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const std::byte* s = src + static_cast<std::ptrdiff_t>(i) * stride;
        const __m256i v = _mm256_set_epi64x(ld64(s + 3 * stride), ld64(s + 2 * stride),
                                            ld64(s + stride), ld64(s));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i * 8), v);
    }
    for (; i < n; ++i) {
        std::memcpy(dst + i * 8, src + static_cast<std::ptrdiff_t>(i) * stride, 8);
    }
}

// 16/32/64-byte blocks: one-or-more full vector moves per block. The
// scatter direction is the same body with the walks swapped: the dense
// side advances by len, the strided side by stride.

__attribute__((target("avx2"))) void gather16_sse(std::byte* dst, const std::byte* src,
                                                  std::ptrdiff_t stride, std::size_t,
                                                  std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), v);
        dst += 16;
        src += stride;
    }
}

__attribute__((target("avx2"))) void scatter16_sse(std::byte* dst, const std::byte* src,
                                                   std::ptrdiff_t stride, std::size_t,
                                                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), v);
        dst += stride;
        src += 16;
    }
}

__attribute__((target("avx2"))) void gather24_avx2(std::byte* dst, const std::byte* src,
                                                   std::ptrdiff_t stride, std::size_t,
                                                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src));
        const std::int64_t t = ld64(src + 16);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), v);
        std::memcpy(dst + 16, &t, 8);
        dst += 24;
        src += stride;
    }
}

__attribute__((target("avx2"))) void gather32_avx2(std::byte* dst, const std::byte* src,
                                                   std::ptrdiff_t stride, std::size_t,
                                                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
        dst += 32;
        src += stride;
    }
}

__attribute__((target("avx2"))) void scatter32_avx2(std::byte* dst, const std::byte* src,
                                                    std::ptrdiff_t stride, std::size_t,
                                                    std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
        dst += stride;
        src += 32;
    }
}

__attribute__((target("avx2"))) void gather48_avx2(std::byte* dst, const std::byte* src,
                                                   std::ptrdiff_t stride, std::size_t,
                                                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
        const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 32));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), a);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 32), b);
        dst += 48;
        src += stride;
    }
}

__attribute__((target("avx2"))) void scatter48_avx2(std::byte* dst, const std::byte* src,
                                                    std::ptrdiff_t stride, std::size_t,
                                                    std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
        const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 32));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), a);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 32), b);
        dst += stride;
        src += 48;
    }
}

__attribute__((target("avx2"))) void gather64_avx2(std::byte* dst, const std::byte* src,
                                                   std::ptrdiff_t stride, std::size_t,
                                                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
        const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 32));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), a);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 32), b);
        dst += 64;
        src += stride;
    }
}

__attribute__((target("avx2"))) void scatter64_avx2(std::byte* dst, const std::byte* src,
                                                    std::ptrdiff_t stride, std::size_t,
                                                    std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
        const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 32));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), a);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 32), b);
        dst += stride;
        src += 64;
    }
}

// General constant-stride runs (any block length >= 16): full 32-byte
// chunks, then exact 16/8/4/2/1 tail pieces — never a byte outside the
// block.
__attribute__((target("avx2"))) inline void copy_exact_avx2(std::byte* d, const std::byte* s,
                                                            std::size_t len) {
    while (len >= 32) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d),
                            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s)));
        d += 32;
        s += 32;
        len -= 32;
    }
    if (len >= 16) {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(d),
                         _mm_loadu_si128(reinterpret_cast<const __m128i*>(s)));
        d += 16;
        s += 16;
        len -= 16;
    }
    if (len >= 8) {
        std::memcpy(d, s, 8);
        d += 8;
        s += 8;
        len -= 8;
    }
    if (len >= 4) {
        std::memcpy(d, s, 4);
        d += 4;
        s += 4;
        len -= 4;
    }
    if (len >= 2) {
        std::memcpy(d, s, 2);
        d += 2;
        s += 2;
        len -= 2;
    }
    if (len) std::memcpy(d, s, 1);
}

__attribute__((target("avx2"))) void gather_run_avx2(std::byte* dst, const std::byte* src,
                                                     std::ptrdiff_t stride, std::size_t len,
                                                     std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        copy_exact_avx2(dst, src, len);
        dst += len;
        src += stride;
    }
}

__attribute__((target("avx2"))) void scatter_run_avx2(std::byte* dst, const std::byte* src,
                                                      std::ptrdiff_t stride, std::size_t len,
                                                      std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        copy_exact_avx2(dst, src, len);
        dst += stride;
        src += len;
    }
}

// ---------------------------------------------------------------------------
// AVX-512: hardware gather/scatter for the 4/8-byte families (the stride
// families a hand loop cannot compact), full 512-bit moves for 64-byte
// blocks and long runs.

__attribute__((target("avx512f,avx512dq"))) void gather8_avx512(std::byte* dst,
                                                                const std::byte* src,
                                                                std::ptrdiff_t stride,
                                                                std::size_t, std::size_t n) {
    const __m512i vindex = _mm512_mullo_epi64(_mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0),
                                              _mm512_set1_epi64(stride));
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i v =
            _mm512_i64gather_epi64(vindex, src + static_cast<std::ptrdiff_t>(i) * stride, 1);
        _mm512_storeu_si512(dst + i * 8, v);
    }
    for (; i < n; ++i) {
        std::memcpy(dst + i * 8, src + static_cast<std::ptrdiff_t>(i) * stride, 8);
    }
}

// 4-byte blocks: 16 per 512-bit store when the whole index window fits an
// i32 (guarded per call; the AVX2 compaction is the fallback).
__attribute__((target("avx512f"))) void gather4_avx512(std::byte* dst, const std::byte* src,
                                                       std::ptrdiff_t stride, std::size_t len,
                                                       std::size_t n) {
    if (stride > (INT32_MAX / 16) || stride < (INT32_MIN / 16)) {
        gather4_avx2(dst, src, stride, len, n);
        return;
    }
    const __m512i vindex = _mm512_mullo_epi32(
        _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0),
        _mm512_set1_epi32(static_cast<int>(stride)));
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512i v =
            _mm512_i32gather_epi32(vindex, src + static_cast<std::ptrdiff_t>(i) * stride, 1);
        _mm512_storeu_si512(dst + i * 4, v);
    }
    for (; i < n; ++i) {
        std::memcpy(dst + i * 4, src + static_cast<std::ptrdiff_t>(i) * stride, 4);
    }
}

__attribute__((target("avx512f"))) void scatter4_avx512(std::byte* dst, const std::byte* src,
                                                        std::ptrdiff_t stride, std::size_t len,
                                                        std::size_t n) {
    if (stride > (INT32_MAX / 16) || stride < (INT32_MIN / 16)) {
        scatter_fixed<4>(dst, src, stride, len, n);
        return;
    }
    const __m512i vindex = _mm512_mullo_epi32(
        _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0),
        _mm512_set1_epi32(static_cast<int>(stride)));
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512i v = _mm512_loadu_si512(src + i * 4);
        _mm512_i32scatter_epi32(dst + static_cast<std::ptrdiff_t>(i) * stride, vindex, v, 1);
    }
    for (; i < n; ++i) {
        std::memcpy(dst + static_cast<std::ptrdiff_t>(i) * stride, src + i * 4, 4);
    }
}

__attribute__((target("avx512f"))) void gather64_avx512(std::byte* dst, const std::byte* src,
                                                        std::ptrdiff_t stride, std::size_t,
                                                        std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        _mm512_storeu_si512(dst, _mm512_loadu_si512(src));
        dst += 64;
        src += stride;
    }
}

__attribute__((target("avx512f"))) void scatter64_avx512(std::byte* dst, const std::byte* src,
                                                         std::ptrdiff_t stride, std::size_t,
                                                         std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        _mm512_storeu_si512(dst, _mm512_loadu_si512(src));
        dst += stride;
        src += 64;
    }
}

__attribute__((target("avx512f"))) inline void copy_exact_avx512(std::byte* d,
                                                                 const std::byte* s,
                                                                 std::size_t len) {
    while (len >= 64) {
        _mm512_storeu_si512(d, _mm512_loadu_si512(s));
        d += 64;
        s += 64;
        len -= 64;
    }
    if (len) copy_exact_avx2(d, s, len);
}

__attribute__((target("avx512f"))) void gather_run_avx512(std::byte* dst, const std::byte* src,
                                                          std::ptrdiff_t stride,
                                                          std::size_t len, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        copy_exact_avx512(dst, src, len);
        dst += len;
        src += stride;
    }
}

__attribute__((target("avx512f"))) void scatter_run_avx512(std::byte* dst,
                                                           const std::byte* src,
                                                           std::ptrdiff_t stride,
                                                           std::size_t len, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        copy_exact_avx512(dst, src, len);
        dst += stride;
        src += len;
    }
}

// Scatter-side choices follow the guidelines bench (bench_pack_guidelines),
// not instruction width: a constant-length scalar store loop beats the
// 24-byte xmm pair and the sub-64-byte vector run scatter, so those
// lengths keep a vector gather but take the scalar scatter.
Kernels avx2_select(std::size_t len) {
    switch (len) {
        case 4: return {gather4_avx2, scatter_fixed<4>, true, false};
        case 8: return {gather8_avx2, scatter_fixed<8>, true, false};
        case 16: return {gather16_sse, scatter16_sse, true, true};
        case 24: return {gather24_avx2, scatter_fixed<24>, true, false};
        case 32: return {gather32_avx2, scatter32_avx2, true, true};
        case 48: return {gather48_avx2, scatter48_avx2, true, true};
        case 64: return {gather64_avx2, scatter64_avx2, true, true};
        default:
            // General lengths: the piecewise vector run only pays for
            // itself from 32 bytes up (gather) / 64 up (scatter); below
            // that the runtime-length memcpy loop wins.
            if (len >= 64) return {gather_run_avx2, scatter_run_avx2, true, true};
            if (len >= 32) return {gather_run_avx2, scatter_generic, true, false};
            return scalar_select(len);
    }
}

Kernels avx512_select(std::size_t len) {
    switch (len) {
        case 4: return {gather4_avx512, scatter4_avx512, true, true};
        // The 8-lane hardware scatter loses to eight scalar stores
        // (scatter is microcoded on every current core); the hardware
        // gather still wins, so the pair splits.
        case 8: return {gather8_avx512, scatter_fixed<8>, true, false};
        case 16: return {gather16_sse, scatter16_sse, true, true};
        case 24: return {gather24_avx2, scatter_fixed<24>, true, false};
        case 32: return {gather32_avx2, scatter32_avx2, true, true};
        case 48: return {gather48_avx2, scatter48_avx2, true, true};
        case 64: return {gather64_avx512, scatter64_avx512, true, true};
        default:
            if (len >= 64) return {gather_run_avx512, scatter_run_avx512, true, true};
            if (len >= 32) return {gather_run_avx2, scatter_generic, true, false};
            return scalar_select(len);
    }
}

#endif  // NNCOMM_SIMD_X86 && !NNCOMM_SIMD_DISABLED

#if defined(NNCOMM_SIMD_NEON_IMPL)

// ---------------------------------------------------------------------------
// aarch64 NEON: 128-bit q-register moves; 8-byte blocks compact two per
// store. All loads/stores are the unaligned u8 forms.

void gather8_neon(std::byte* dst, const std::byte* src, std::ptrdiff_t stride, std::size_t,
                  std::size_t n) {
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint8x8_t a =
            vld1_u8(reinterpret_cast<const std::uint8_t*>(src + static_cast<std::ptrdiff_t>(i) * stride));
        const uint8x8_t b = vld1_u8(
            reinterpret_cast<const std::uint8_t*>(src + static_cast<std::ptrdiff_t>(i + 1) * stride));
        vst1q_u8(reinterpret_cast<std::uint8_t*>(dst + i * 8), vcombine_u8(a, b));
    }
    for (; i < n; ++i) {
        std::memcpy(dst + i * 8, src + static_cast<std::ptrdiff_t>(i) * stride, 8);
    }
}

void gather16_neon(std::byte* dst, const std::byte* src, std::ptrdiff_t stride, std::size_t,
                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        vst1q_u8(reinterpret_cast<std::uint8_t*>(dst),
                 vld1q_u8(reinterpret_cast<const std::uint8_t*>(src)));
        dst += 16;
        src += stride;
    }
}

void scatter16_neon(std::byte* dst, const std::byte* src, std::ptrdiff_t stride, std::size_t,
                    std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        vst1q_u8(reinterpret_cast<std::uint8_t*>(dst),
                 vld1q_u8(reinterpret_cast<const std::uint8_t*>(src)));
        dst += stride;
        src += 16;
    }
}

inline void copy_exact_neon(std::byte* d, const std::byte* s, std::size_t len) {
    while (len >= 16) {
        vst1q_u8(reinterpret_cast<std::uint8_t*>(d),
                 vld1q_u8(reinterpret_cast<const std::uint8_t*>(s)));
        d += 16;
        s += 16;
        len -= 16;
    }
    if (len >= 8) {
        std::memcpy(d, s, 8);
        d += 8;
        s += 8;
        len -= 8;
    }
    if (len) std::memcpy(d, s, len);
}

void gather_run_neon(std::byte* dst, const std::byte* src, std::ptrdiff_t stride,
                     std::size_t len, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        copy_exact_neon(dst, src, len);
        dst += len;
        src += stride;
    }
}

void scatter_run_neon(std::byte* dst, const std::byte* src, std::ptrdiff_t stride,
                      std::size_t len, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        copy_exact_neon(dst, src, len);
        dst += stride;
        src += len;
    }
}

Kernels neon_select(std::size_t len) {
    switch (len) {
        case 8: return {gather8_neon, scatter_fixed<8>, true, false};
        case 16: return {gather16_neon, scatter16_neon, true, true};
        default:
            // Mirror the x86 thresholds: piecewise vector runs from 32
            // bytes (gather) / 64 bytes (scatter).
            if (len >= 64) return {gather_run_neon, scatter_run_neon, true, true};
            if (len >= 32) return {gather_run_neon, scatter_generic, true, false};
            return scalar_select(len);
    }
}

#endif  // NNCOMM_SIMD_NEON_IMPL

// ---------------------------------------------------------------------------
// detection and the environment cap

Level detect() {
#if defined(NNCOMM_SIMD_DISABLED)
    return Level::Scalar;
#elif defined(NNCOMM_SIMD_X86)
    if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512bw") && __builtin_cpu_supports("avx512vl")) {
        return Level::AVX512;
    }
    if (__builtin_cpu_supports("avx2")) return Level::AVX2;
    return Level::Scalar;
#elif defined(NNCOMM_SIMD_NEON_IMPL)
    return Level::NEON;  // baseline on aarch64
#else
    return Level::Scalar;
#endif
}

bool env_matches(const char* e, const char* token) {
    for (; *e && *token; ++e, ++token) {
        const char a = (*e >= 'a' && *e <= 'z') ? static_cast<char>(*e - 'a' + 'A') : *e;
        if (a != *token) return false;
    }
    return *e == '\0' && *token == '\0';
}

Level env_cap(Level detected) {
    const char* e = std::getenv("NNCOMM_SIMD");
    if (!e || !*e) return detected;
    Level want = detected;
    if (env_matches(e, "OFF") || env_matches(e, "0") || env_matches(e, "SCALAR")) {
        want = Level::Scalar;
    } else if (env_matches(e, "NEON")) {
        want = Level::NEON;
    } else if (env_matches(e, "AVX2")) {
        want = Level::AVX2;
    } else if (env_matches(e, "AVX512")) {
        want = Level::AVX512;
    } else {
        return detected;  // unrecognized: ignore
    }
    return static_cast<int>(want) < static_cast<int>(detected) ? want : detected;
}

std::atomic<int> g_forced{-1};

}  // namespace

Level detected_level() {
    static const Level l = detect();
    return l;
}

Level active_level() {
    const int f = g_forced.load(std::memory_order_relaxed);
    if (f >= 0) return static_cast<Level>(f);
    static const Level l = env_cap(detected_level());
    return l;
}

Level force_level_for_test(Level level) {
    Level eff = level;
    if (static_cast<int>(eff) > static_cast<int>(detected_level())) eff = detected_level();
    g_forced.store(static_cast<int>(eff), std::memory_order_relaxed);
    return eff;
}

Kernels select(std::size_t block_len) {
    switch (active_level()) {
#if defined(NNCOMM_SIMD_X86) && !defined(NNCOMM_SIMD_DISABLED)
        case Level::AVX512: return avx512_select(block_len);
        case Level::AVX2: return avx2_select(block_len);
#endif
#if defined(NNCOMM_SIMD_NEON_IMPL)
        case Level::NEON: return neon_select(block_len);
#endif
        default: return scalar_select(block_len);
    }
}

}  // namespace nncomm::dt::simd

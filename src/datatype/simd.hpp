// Runtime-dispatched SIMD gather/scatter kernels for the dense stride
// families the pack plans compile to (plan.hpp).
//
// The DDT performance-guidelines literature (Träff et al., "MPI Datatype
// Performance Guidelines"; Eijkhout) sets the yardstick this module exists
// to meet: the datatype path must never lose to the loop a user would
// hand-write around memcpy. The compiled plans (plan.cpp) removed the
// interpretive overhead; this layer removes the per-block copy overhead by
// moving whole blocks — and, for 4/8-byte blocks, several blocks per
// instruction — through vector registers.
//
// Dispatch is resolved ONCE, not per call: the host's capability is probed
// at first use (cpuid on x86, unconditionally NEON on aarch64) and each
// PackPlan selects its kernel pair (gather + scatter) for its block length
// at compile time, so the hot path is a single indirect call with zero
// branching on CPU features. The selection can be capped or disabled with
// the NNCOMM_SIMD environment variable (OFF/SCALAR, AVX2, AVX512, NEON)
// and compiled out entirely by configuring with -DNNCOMM_SIMD=OFF, which
// leaves the fixed-size scalar dispatch (4/8/12/16/24/32/48/64-byte
// blocks) as the only layer — still never slower than a hand-packed loop,
// since it IS the hand-packed loop.
//
// Every kernel moves `nblocks` blocks of `len` bytes between a dense
// stream and a constant-stride layout using exact-width loads and stores
// only: no kernel reads or writes a single byte outside the blocks it was
// asked to move, so the kernels are safe under ASan and on unpack paths
// where the gaps between blocks hold live user data.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nncomm::dt::simd {

/// Instruction-set level of the selected kernels, ordered by width so
/// levels can be capped (env var) by numeric comparison.
enum class Level : int {
    Scalar = 0,  ///< fixed-size dispatched scalar loops (the portable floor)
    NEON = 1,    ///< aarch64 Advanced SIMD, 128-bit
    AVX2 = 2,    ///< x86-64 AVX2, 256-bit
    AVX512 = 3,  ///< x86-64 AVX-512 F+BW+DQ+VL, 512-bit + gather/scatter
};

inline const char* level_name(Level l) {
    switch (l) {
        case Level::Scalar: return "scalar";
        case Level::NEON: return "neon";
        case Level::AVX2: return "avx2";
        case Level::AVX512: return "avx512";
    }
    return "?";
}

/// The level kernels are selected at: detected once from cpuid/HWCAP,
/// capped by NNCOMM_SIMD in the environment, Scalar when the build was
/// configured with NNCOMM_SIMD=OFF.
Level active_level();

/// Test hook: force the level used by subsequent select() calls (pass the
/// detected level to restore). Plans compiled earlier keep their kernels;
/// tests reset the PlanCache and rebuild types after forcing. Returns the
/// level actually installed (forcing above the detected capability caps at
/// the detected level, so a test can ask for AVX512 on any host safely).
Level force_level_for_test(Level level);
/// The capability ceiling the host supports (ignores the env cap).
Level detected_level();

/// Gather: dst is a dense stream, src walks the strided layout.
/// Scatter: dst walks the strided layout, src is a dense stream.
/// `len` is passed even to fixed-size kernels so all selections share one
/// signature and the plan stores a single pair of pointers.
using GatherFn = void (*)(std::byte* dst, const std::byte* src, std::ptrdiff_t stride,
                          std::size_t len, std::size_t nblocks);
using ScatterFn = void (*)(std::byte* dst, const std::byte* src, std::ptrdiff_t stride,
                           std::size_t len, std::size_t nblocks);

struct Kernels {
    GatherFn gather = nullptr;
    ScatterFn scatter = nullptr;
    /// True when the gather moves bytes through vector registers (feeds
    /// dt_simd_pack_bytes so benches can attest the vector path ran).
    bool vector = false;
    /// Same for the scatter / dt_simd_unpack_bytes. Selection picks the
    /// faster implementation per direction, and hardware scatters lose to
    /// a constant-length store loop at several block lengths, so a pair
    /// with a vector gather and a scalar scatter is common.
    bool vector_scatter = false;
};

/// Selects the fastest kernel pair for `block_len` at the active level
/// (widest is not always fastest — see Kernels::vector_scatter). Always
/// returns callable pointers (the scalar pair is the floor).
Kernels select(std::size_t block_len);

}  // namespace nncomm::dt::simd

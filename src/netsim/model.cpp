#include "netsim/model.hpp"

#include <algorithm>
#include <cmath>

namespace nncomm::sim {

ClusterConfig make_paper_testbed(int nprocs, double skew_us_mean) {
    ClusterConfig c;
    c.nprocs = nprocs;
    c.speed.resize(static_cast<std::size_t>(nprocs));
    for (int r = 0; r < nprocs; ++r) {
        // First half: Intel EM64T 3.6 GHz; second half: Opteron 2.8 GHz.
        // The ratio only matters relatively; 1.0 vs 0.8 tracks the clock gap.
        c.speed[static_cast<std::size_t>(r)] = (r < nprocs / 2 || nprocs == 1) ? 1.0 : 0.8;
    }
    c.skew_us_mean = skew_us_mean;
    // Protocol split on: staging copies run at host-memory speed (~4 GB/s
    // effective, slower than the wire's 1.3 GB/s would suggest because the
    // copy shares the memory bus with the NIC), and a rendezvous handshake
    // costs one extra round trip.
    c.copy_us_per_byte = 0.00025;
    c.rendezvous_handshake_us = 2.0 * (c.latency_us + c.overhead_us);
    return c;
}

ClusterConfig make_uniform_cluster(int nprocs) {
    ClusterConfig c;
    c.nprocs = nprocs;
    c.skew_us_mean = 0.0;
    return c;
}

double pack_cost_dual_us(const ClusterConfig& c, std::uint64_t bytes, double block_len) {
    if (bytes == 0) return 0.0;
    const double blocks = static_cast<double>(bytes) / std::max(block_len, 1.0);
    return static_cast<double>(bytes) * c.pack_us_per_byte +
           blocks * c.lookahead_us_per_block;
}

double pack_cost_single_us(const ClusterConfig& c, std::uint64_t bytes, double block_len) {
    if (bytes == 0) return 0.0;
    const double bl = std::max(block_len, 1.0);
    const double linear = pack_cost_dual_us(c, bytes, block_len);
    // One re-search per pipeline chunk; re-search i walks the i·chunk bytes
    // already packed, block by block:
    //   sum_i (i * chunk / bl) = chunks * (chunks - 1) / 2 * chunk / bl
    // ~ bytes^2 / (2 * chunk * bl) blocks in total.
    const double chunk = static_cast<double>(c.pipeline_chunk);
    const double nchunks = std::ceil(static_cast<double>(bytes) / chunk);
    const double searched_blocks = nchunks * (nchunks - 1.0) / 2.0 * chunk / bl;
    return linear + searched_blocks * c.search_us_per_block;
}

rt::SchedulePolicy make_schedule(const ClusterConfig& c, std::uint64_t seed, int level) {
    rt::SchedulePolicy p = rt::SchedulePolicy::perturb(seed, level);
    p.use_latency_model = true;
    p.latency_us = c.latency_us + c.overhead_us;
    p.us_per_byte = c.us_per_byte;
    // One defer pass per modeled wire latency: a full-latency message sits
    // out one extra drain pass, a bandwidth-bound one proportionally more.
    p.defer_quantum_us = c.latency_us > 0.0 ? c.latency_us : 1.0;
    return p;
}

}  // namespace nncomm::sim

// Cluster cost model for the discrete-event simulator.
//
// The paper's testbed was 32 Intel EM64T nodes + 32 AMD Opteron nodes (two
// processes per node -> 128 processes) on InfiniBand DDR. We model it as a
// latency/bandwidth network (LogGP-style: per-message overhead o, latency
// L, per-byte time G) plus per-rank compute-speed classes and a random
// per-operation skew term — the paper observes that combining the two
// clusters introduces natural skew (§5.3).
//
// Datatype-processing costs are modeled with the same structure the real
// engines have: per-byte packing, per-block look-ahead, and — for the
// single-context baseline — per-block re-search time whose total grows
// quadratically with message size (bytes²/(2·chunk·blocklen) blocks).
#pragma once

#include <cstdint>
#include <vector>

#include "core/error.hpp"
#include "runtime/schedule.hpp"

namespace nncomm::sim {

struct ClusterConfig {
    int nprocs = 1;

    // Network (InfiniBand-DDR-like defaults).
    double latency_us = 4.0;        ///< wire latency per message
    double overhead_us = 0.7;       ///< CPU overhead per send/recv
    double us_per_byte = 0.00075;   ///< ~1.3 GB/s effective bandwidth

    // Transfer-protocol split, mirroring the runtime's eager/rendezvous
    // design. Messages below the threshold are buffered eager: one staging
    // copy on the sender and one unpack copy on the receiver, each at
    // copy_us_per_byte. Messages at or above it pay a fixed handshake
    // (ready-to-send / clear-to-send round trip) but move their bytes in a
    // single copy. copy_us_per_byte defaults to 0 so raw configs cost
    // exactly what they always did; make_paper_testbed opts in.
    std::size_t rendezvous_threshold = 32 * 1024;
    double copy_us_per_byte = 0.0;        ///< memory-copy cost per staged byte
    double rendezvous_handshake_us = 0.0; ///< RTS/CTS round trip per rendezvous message

    // Datatype-engine costs (calibrated against the real engines' counters).
    double pack_us_per_byte = 0.0004;      ///< memcpy into the pack buffer
    double lookahead_us_per_block = 0.002; ///< signature parse per block
    double search_us_per_block = 0.002;    ///< baseline re-search per block
    double gather_us_per_block = 0.0015;   ///< hand-tuned indexed-load per run
    std::size_t pipeline_chunk = 64 * 1024;

    // Adaptive protocol selection (mirrors rt::ProtoTable): when enabled,
    // every (src, dst) pair learns eager and rendezvous cost lines from the
    // analytic costs above and the learned crossover replaces the static
    // rendezvous_threshold once each line holds adaptive_min_samples
    // observations. Off by default so raw configs cost exactly what they
    // always did.
    bool adaptive_protocol = false;
    std::uint32_t adaptive_min_samples = 16;
    std::size_t adaptive_min_threshold = 1024;
    std::size_t adaptive_max_threshold = 8 * 1024 * 1024;

    // Heterogeneity and noise.
    std::vector<double> speed;  ///< per-rank speed factor; empty = all 1.0
    double skew_us_mean = 0.0;  ///< exponential per-rank skew per operation
    std::uint64_t seed = 42;

    double rank_speed(int r) const {
        if (speed.empty()) return 1.0;
        NNCOMM_CHECK(r >= 0 && static_cast<std::size_t>(r) < speed.size());
        return speed[static_cast<std::size_t>(r)];
    }
};

/// The paper's testbed: `n` processes, first half on 3.6 GHz Intel nodes,
/// second half on 2.8 GHz Opterons (modeled as a per-rank speed factor),
/// with light random skew between the two halves.
ClusterConfig make_paper_testbed(int nprocs, double skew_us_mean = 15.0);

/// A homogeneous cluster with no injected skew (for microbenchmarks that
/// isolate algorithmic effects).
ClusterConfig make_uniform_cluster(int nprocs);

/// Modeled CPU time (us) to prepare one noncontiguous message of `bytes`
/// with average contiguous-block length `block_len`, using the dual-context
/// engine: linear pack + bounded look-ahead.
double pack_cost_dual_us(const ClusterConfig& c, std::uint64_t bytes, double block_len);

/// Same for the single-context baseline: linear pack + quadratic re-search
/// (one re-search per pipeline chunk, each walking all blocks already
/// packed).
double pack_cost_single_us(const ClusterConfig& c, std::uint64_t bytes, double block_len);

/// Routes the runtime's delivery engine through this cluster's latency
/// model: rt::SchedulePolicy::perturb(seed, level) plus size-dependent
/// defer passes derived from the cluster's per-message latency and
/// per-byte time, so big messages sit in flight longer than small ones —
/// the schedule shape the paper's nonuniform collectives actually face.
rt::SchedulePolicy make_schedule(const ClusterConfig& c, std::uint64_t seed, int level = 2);

}  // namespace nncomm::sim

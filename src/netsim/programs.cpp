#include "netsim/programs.hpp"

#include <algorithm>
#include <numeric>

#include "coll/schedule.hpp"

namespace nncomm::sim {

double pack_cost_us(const ClusterConfig& c, PackModel model, std::uint64_t bytes,
                    double block_len) {
    switch (model) {
        case PackModel::Contiguous:
            return 0.0;
        case PackModel::HandTuned:
            // Explicit pack loop: per-byte copy plus one indexed load per
            // contiguous run — no datatype machinery, but not free either.
            return static_cast<double>(bytes) * c.pack_us_per_byte +
                   static_cast<double>(bytes) / std::max(block_len, 1.0) *
                       c.gather_us_per_block;
        case PackModel::SingleContext:
            return pack_cost_single_us(c, bytes, block_len);
        case PackModel::DualContext:
            return pack_cost_dual_us(c, bytes, block_len);
    }
    return 0.0;
}

namespace {

// Tags are handed out in blocks of 256 per collective round so FIFO
// matching lines up exactly like the executable collectives.
constexpr int kTagsPerRound = 256;

// Lowers one rank's compiled coll::Schedule into simulator ops — the SAME
// Schedule objects the executable collectives run, so the predicted curves
// cannot drift from the implementation. Round structure maps directly:
// within a round the executable engine fires its nonblocking sends before
// parking on receives, so the sequential simulator emits the round's sends
// first, then its receives. Local ops (Copy/Pack/Unpack/Reduce) are free in
// the LogGP model except datatype packing, which is charged as a Compute op
// before each send when a pack model is supplied. `rank_order_sends`
// re-sorts each round's sends by destination rank (the BinnedRankOrder
// ablation, which deliberately discards the schedule's binned order).
void lower_schedule(RankProgram& p, const coll::Schedule& sched, int tag0,
                    const ClusterConfig* cluster, const PackModel* pack, double block_len,
                    bool rank_order_sends) {
    std::vector<const coll::ScheduleOp*> sends;
    for (int round = 0; round < sched.rounds; ++round) {
        sends.clear();
        for (const coll::ScheduleOp& op : sched.ops) {
            if (op.round == round && (op.kind == coll::ScheduleOpKind::Send ||
                                      op.kind == coll::ScheduleOpKind::Put))
                sends.push_back(&op);
        }
        if (rank_order_sends) {
            std::stable_sort(sends.begin(), sends.end(),
                             [](const coll::ScheduleOp* a, const coll::ScheduleOp* b) {
                                 return a->peer < b->peer;
                             });
        }
        for (const coll::ScheduleOp* op : sends) {
            if (pack != nullptr) {
                p.push_back(
                    Op::compute(pack_cost_us(*cluster, *pack, op->bytes, block_len)));
            }
            if (op->kind == coll::ScheduleOpKind::Put) {
                p.push_back(Op::put(op->peer, op->bytes));
            } else {
                p.push_back(Op::send(op->peer, tag0 + op->tag_offset, op->bytes));
            }
        }
        for (const coll::ScheduleOp& op : sched.ops) {
            if (op.round != round) continue;
            if (op.kind == coll::ScheduleOpKind::Recv) {
                p.push_back(Op::recv(op.peer, tag0 + op.tag_offset));
            } else if (op.kind == coll::ScheduleOpKind::Fence) {
                p.push_back(Op::fence());
            } else if (op.kind == coll::ScheduleOpKind::Unpack &&
                       op.b.space == coll::BufRef::Space::Win && cluster != nullptr) {
                // RMA receiver-side scatter out of the window region: the
                // two-sided eager path charges this copy inside Recv; here
                // it is an explicit local cost.
                p.push_back(Op::compute(static_cast<double>(op.bytes) *
                                        cluster->copy_us_per_byte));
            }
        }
    }
}

GathervSchedule resolve_allgatherv(std::span<const std::uint64_t> volumes,
                                   GathervSchedule schedule, const AllgathervPolicy& policy) {
    if (schedule != GathervSchedule::Auto) return schedule;
    const int n = static_cast<int>(volumes.size());
    if (allgatherv_use_ring(volumes, policy)) return GathervSchedule::Ring;
    return ((n & (n - 1)) == 0) ? GathervSchedule::RecursiveDoubling
                                : GathervSchedule::Dissemination;
}

void emit_allgatherv(std::vector<RankProgram>& progs, std::span<const std::uint64_t> volumes,
                     GathervSchedule schedule, const AllgathervPolicy& policy, int tag0,
                     std::size_t rendezvous_threshold) {
    const int n = static_cast<int>(volumes.size());
    coll::AllgathervAlgo algo = coll::AllgathervAlgo::Ring;
    switch (resolve_allgatherv(volumes, schedule, policy)) {
        case GathervSchedule::Ring: algo = coll::AllgathervAlgo::Ring; break;
        case GathervSchedule::RecursiveDoubling:
            algo = coll::AllgathervAlgo::RecursiveDoubling;
            break;
        case GathervSchedule::Dissemination:
            algo = coll::AllgathervAlgo::Dissemination;
            break;
        case GathervSchedule::Auto: break;  // resolved above
    }
    // Byte-typed shape: the volume set IS the count set.
    std::vector<std::size_t> counts(static_cast<std::size_t>(n));
    std::vector<std::size_t> displs(static_cast<std::size_t>(n));
    std::size_t off = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        counts[i] = static_cast<std::size_t>(volumes[i]);
        displs[i] = off;
        off += counts[i];
    }
    const dt::Datatype byte = dt::Datatype::byte();
    for (int r = 0; r < n; ++r) {
        const coll::Schedule sched = coll::build_allgatherv_schedule(
            r, n, algo, counts[static_cast<std::size_t>(r)], byte, counts, displs, byte,
            rendezvous_threshold);
        lower_schedule(progs[static_cast<std::size_t>(r)], sched, tag0, nullptr, nullptr, 0.0,
                       false);
    }
}

void emit_alltoallw(std::vector<RankProgram>& progs, const ClusterConfig& cluster,
                    const AlltoallwWorkload& wl, AlltoallwSchedule schedule, int tag0) {
    const int n = wl.nprocs;
    const dt::Datatype byte = dt::Datatype::byte();
    const std::vector<dt::Datatype> types(static_cast<std::size_t>(n), byte);
    const std::vector<std::ptrdiff_t> zero_displs(static_cast<std::size_t>(n), 0);
    std::vector<std::size_t> sendcounts(static_cast<std::size_t>(n));
    std::vector<std::size_t> recvcounts(static_cast<std::size_t>(n));

    if (schedule == AlltoallwSchedule::Rma) {
        // Window layouts are analytic here: rank d's region is the prefix
        // sums of its incoming volumes in source-rank order — exactly what
        // the executable plans negotiate once in their setup exchange.
        std::vector<std::vector<std::uint64_t>> win_off(
            static_cast<std::size_t>(n), std::vector<std::uint64_t>(static_cast<std::size_t>(n), 0));
        for (int dst = 0; dst < n; ++dst) {
            std::uint64_t acc = 0;
            for (int src = 0; src < n; ++src) {
                if (src == dst || wl.vol(src, dst) == 0) continue;
                win_off[static_cast<std::size_t>(dst)][static_cast<std::size_t>(src)] = acc;
                acc += wl.vol(src, dst);
            }
        }
        std::vector<std::uint64_t> target_offsets(static_cast<std::size_t>(n));
        std::vector<std::uint64_t> my_offsets(static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r) {
            for (int peer = 0; peer < n; ++peer) {
                const auto sp = static_cast<std::size_t>(peer);
                sendcounts[sp] = static_cast<std::size_t>(wl.vol(r, peer));
                recvcounts[sp] = static_cast<std::size_t>(wl.vol(peer, r));
                target_offsets[sp] = win_off[sp][static_cast<std::size_t>(r)];
                my_offsets[sp] = win_off[static_cast<std::size_t>(r)][sp];
            }
            const coll::Schedule sched = coll::build_alltoallw_rma_schedule(
                r, n, sendcounts, zero_displs, types, recvcounts, zero_displs, types,
                target_offsets, my_offsets, wl.small_msg_threshold);
            lower_schedule(progs[static_cast<std::size_t>(r)], sched, tag0, &cluster,
                           &wl.pack, wl.block_len, false);
        }
        return;
    }

    const coll::AlltoallwAlgo algo = schedule == AlltoallwSchedule::RoundRobin
                                         ? coll::AlltoallwAlgo::RoundRobin
                                         : coll::AlltoallwAlgo::Binned;
    for (int r = 0; r < n; ++r) {
        for (int peer = 0; peer < n; ++peer) {
            sendcounts[static_cast<std::size_t>(peer)] =
                static_cast<std::size_t>(wl.vol(r, peer));
            recvcounts[static_cast<std::size_t>(peer)] =
                static_cast<std::size_t>(wl.vol(peer, r));
        }
        const coll::Schedule sched = coll::build_alltoallw_schedule(
            r, n, algo, sendcounts, zero_displs, types, recvcounts, zero_displs, types,
            wl.small_msg_threshold);
        lower_schedule(progs[static_cast<std::size_t>(r)], sched, tag0, &cluster, &wl.pack,
                       wl.block_len, schedule == AlltoallwSchedule::BinnedRankOrder);
    }
}

void emit_allreduce(std::vector<RankProgram>& progs, std::uint64_t bytes, int tag0) {
    // Dissemination-pattern allreduce (works for any rank count; per-phase
    // payload is the full reduced value).
    const int n = static_cast<int>(progs.size());
    for (int r = 0; r < n; ++r) {
        RankProgram& p = progs[static_cast<std::size_t>(r)];
        int phase = 0;
        for (int step = 1; step < n; step <<= 1, ++phase) {
            p.push_back(Op::send((r + step) % n, tag0 + phase, bytes));
            p.push_back(Op::recv((r - step + n) % n, tag0 + phase));
        }
    }
}

void add_skew_ops(std::vector<RankProgram>& progs, const ClusterConfig& cluster, Rng& rng) {
    if (cluster.skew_us_mean <= 0.0) return;
    for (auto& p : progs) p.push_back(Op::compute(rng.exponential(cluster.skew_us_mean)));
}

}  // namespace

std::vector<RankProgram> allgatherv_program(const ClusterConfig& cluster,
                                            const AllgathervWorkload& wl,
                                            GathervSchedule schedule) {
    const int n = static_cast<int>(wl.volumes.size());
    NNCOMM_CHECK_MSG(n == cluster.nprocs, "workload/cluster rank-count mismatch");
    Rng rng(cluster.seed);
    std::vector<RankProgram> progs(static_cast<std::size_t>(n));
    for (int it = 0; it < wl.iterations; ++it) {
        add_skew_ops(progs, cluster, rng);
        emit_allgatherv(progs, wl.volumes, schedule, wl.policy, it * kTagsPerRound,
                        cluster.rendezvous_threshold);
    }
    return progs;
}

AlltoallwWorkload make_ring_neighbor_workload(int nprocs, std::uint64_t bytes) {
    AlltoallwWorkload wl;
    wl.nprocs = nprocs;
    wl.volume.assign(static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs), 0);
    for (int r = 0; r < nprocs; ++r) {
        wl.vol(r, (r + 1) % nprocs) = bytes;
        wl.vol(r, (r + nprocs - 1) % nprocs) = bytes;
    }
    return wl;
}

std::vector<RankProgram> alltoallw_program(const ClusterConfig& cluster,
                                           const AlltoallwWorkload& wl,
                                           AlltoallwSchedule schedule) {
    const int n = wl.nprocs;
    NNCOMM_CHECK_MSG(n == cluster.nprocs, "workload/cluster rank-count mismatch");
    NNCOMM_CHECK_MSG(wl.volume.size() ==
                         static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                     "traffic matrix must be nprocs x nprocs");
    Rng rng(cluster.seed);
    std::vector<RankProgram> progs(static_cast<std::size_t>(n));
    for (int it = 0; it < wl.iterations; ++it) {
        add_skew_ops(progs, cluster, rng);
        emit_alltoallw(progs, cluster, wl, schedule, it * kTagsPerRound);
    }
    return progs;
}

SparseNeighborhood make_random_neighborhood(int nprocs, int degree, std::uint64_t bytes,
                                            std::uint64_t seed) {
    NNCOMM_CHECK_MSG(degree < nprocs, "neighborhood degree must leave room for distinct peers");
    Rng rng(seed);
    SparseNeighborhood out(static_cast<std::size_t>(nprocs));
    for (int r = 0; r < nprocs; ++r) {
        auto& edges = out[static_cast<std::size_t>(r)];
        while (static_cast<int>(edges.size()) < degree) {
            const int dest =
                static_cast<int>(rng.uniform_u64(0, static_cast<std::uint64_t>(nprocs - 1)));
            if (dest == r) continue;
            bool dup = false;
            for (const auto& e : edges) dup = dup || e.first == dest;
            if (!dup) edges.emplace_back(dest, bytes);
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// ProgramBuilder

ProgramBuilder::ProgramBuilder(const ClusterConfig& cluster)
    : cluster_(cluster), rng_(cluster.seed),
      progs_(static_cast<std::size_t>(cluster.nprocs)) {}

int ProgramBuilder::next_tag_block() {
    const int t = tag_block_ * kTagsPerRound;
    ++tag_block_;
    return t;
}

void ProgramBuilder::add_skew() { add_skew_ops(progs_, cluster_, rng_); }

void ProgramBuilder::add_compute_all(double us) {
    for (auto& p : progs_) p.push_back(Op::compute(us));
}

void ProgramBuilder::add_compute_per_rank(std::span<const double> us) {
    NNCOMM_CHECK_MSG(us.size() == progs_.size(), "one compute entry per rank required");
    for (std::size_t r = 0; r < progs_.size(); ++r) progs_[r].push_back(Op::compute(us[r]));
}

void ProgramBuilder::add_alltoallw(const AlltoallwWorkload& wl, AlltoallwSchedule schedule) {
    NNCOMM_CHECK_MSG(wl.nprocs == cluster_.nprocs, "workload/cluster rank-count mismatch");
    emit_alltoallw(progs_, cluster_, wl, schedule, next_tag_block());
}

void ProgramBuilder::add_rma_offset_exchange(const AlltoallwWorkload& wl) {
    NNCOMM_CHECK_MSG(wl.nprocs == cluster_.nprocs, "workload/cluster rank-count mismatch");
    const int tag0 = next_tag_block();
    const int n = cluster_.nprocs;
    for (int r = 0; r < n; ++r) {
        RankProgram& p = progs_[static_cast<std::size_t>(r)];
        // Tell each source its 8-byte offset into this rank's window...
        for (int s = 0; s < n; ++s) {
            if (s != r && wl.vol(s, r) > 0) p.push_back(Op::send(s, tag0, 8));
        }
        // ...and learn this rank's offset into each destination's window.
        for (int d = 0; d < n; ++d) {
            if (d != r && wl.vol(r, d) > 0) p.push_back(Op::recv(d, tag0));
        }
    }
}

void ProgramBuilder::add_allgatherv(std::span<const std::uint64_t> volumes,
                                    GathervSchedule schedule, const AllgathervPolicy& policy) {
    NNCOMM_CHECK_MSG(static_cast<int>(volumes.size()) == cluster_.nprocs,
                     "volume set/cluster rank-count mismatch");
    emit_allgatherv(progs_, volumes, schedule, policy, next_tag_block(),
                    cluster_.rendezvous_threshold);
}

void ProgramBuilder::add_allreduce(std::uint64_t bytes) {
    emit_allreduce(progs_, bytes, next_tag_block());
}

void ProgramBuilder::add_barrier() { emit_allreduce(progs_, 0, next_tag_block()); }

namespace {

/// Derives each rank's in-neighborhood and emits the payload traffic of one
/// sparse exchange: out-edges as eager sends, in-edges as receives (self
/// edges are local copies — free in the LogGP model — and skipped). When
/// `ack` is set, every payload receive is answered with a zero-byte token on
/// `ack_tag` and every sender collects its acks — the NBX completion proof.
void emit_sparse_payloads(std::vector<RankProgram>& progs, const SparseNeighborhood& out,
                          int payload_tag, int ack_tag, bool ack) {
    const int n = static_cast<int>(progs.size());
    NNCOMM_CHECK_MSG(static_cast<int>(out.size()) == n,
                     "sparse neighborhood/cluster rank-count mismatch");
    std::vector<std::vector<int>> in(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
        for (const auto& [dest, bytes] : out[static_cast<std::size_t>(r)]) {
            NNCOMM_CHECK_MSG(dest >= 0 && dest < n, "sparse neighborhood: dest out of range");
            (void)bytes;
            if (dest != r) in[static_cast<std::size_t>(dest)].push_back(r);
        }
    }
    for (int r = 0; r < n; ++r) {
        RankProgram& p = progs[static_cast<std::size_t>(r)];
        // Sends never block in the simulator (buffered eager, like the
        // runtime), so firing all payloads before any receive makes the
        // program deadlock-free for every neighborhood shape — including
        // empty ones, which fall straight through to the consensus phase.
        for (const auto& [dest, bytes] : out[static_cast<std::size_t>(r)]) {
            if (dest != r) p.push_back(Op::send(dest, payload_tag, bytes));
        }
        for (int s : in[static_cast<std::size_t>(r)]) {
            p.push_back(Op::recv(s, payload_tag));
            if (ack) p.push_back(Op::send(s, ack_tag, 0));
        }
        if (ack) {
            for (const auto& [dest, bytes] : out[static_cast<std::size_t>(r)]) {
                (void)bytes;
                if (dest != r) p.push_back(Op::recv(dest, ack_tag));
            }
        }
    }
}

}  // namespace

void ProgramBuilder::add_sparse_exchange(const SparseNeighborhood& out) {
    const int tag0 = next_tag_block();
    emit_sparse_payloads(progs_, out, tag0, tag0 + 1, /*ack=*/true);
    // The consensus: once a rank holds acks for all its sends it enters the
    // nonblocking barrier; everyone leaving the barrier proves global
    // quiescence. The simulator's blocking recvs make the barrier's
    // dissemination rounds a faithful stand-in for the IBarrier.
    emit_allreduce(progs_, 0, tag0 + 2);
}

void ProgramBuilder::add_dense_discovery(const SparseNeighborhood& out) {
    const int n = cluster_.nprocs;
    NNCOMM_CHECK_MSG(static_cast<int>(out.size()) == n,
                     "sparse neighborhood/cluster rank-count mismatch");
    // Discovery: every rank publishes its dense per-destination count
    // vector (8 bytes per rank). The log-depth algorithms are deliberately
    // chosen over Ring — the generous baseline still carries O(nprocs)
    // bytes per rank, which is the asymptote the NBX path removes.
    const GathervSchedule gs = ((n & (n - 1)) == 0) ? GathervSchedule::RecursiveDoubling
                                                    : GathervSchedule::Dissemination;
    const std::vector<std::uint64_t> count_vol(static_cast<std::size_t>(n),
                                               8ull * static_cast<std::uint64_t>(n));
    emit_allgatherv(progs_, count_vol, gs, {}, next_tag_block(),
                    cluster_.rendezvous_threshold);
    // Payloads: the pattern is now globally known, so no acks and no
    // barrier — receivers post exactly the discovered receives.
    const int tag0 = next_tag_block();
    emit_sparse_payloads(progs_, out, tag0, tag0 + 1, /*ack=*/false);
}

}  // namespace nncomm::sim

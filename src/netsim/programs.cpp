#include "netsim/programs.hpp"

#include <algorithm>
#include <numeric>

namespace nncomm::sim {

double pack_cost_us(const ClusterConfig& c, PackModel model, std::uint64_t bytes,
                    double block_len) {
    switch (model) {
        case PackModel::Contiguous:
            return 0.0;
        case PackModel::HandTuned:
            // Explicit pack loop: per-byte copy plus one indexed load per
            // contiguous run — no datatype machinery, but not free either.
            return static_cast<double>(bytes) * c.pack_us_per_byte +
                   static_cast<double>(bytes) / std::max(block_len, 1.0) *
                       c.gather_us_per_block;
        case PackModel::SingleContext:
            return pack_cost_single_us(c, bytes, block_len);
        case PackModel::DualContext:
            return pack_cost_dual_us(c, bytes, block_len);
    }
    return 0.0;
}

namespace {

// Tags are handed out in blocks of 256 per collective round so FIFO
// matching lines up exactly like the executable collectives.
constexpr int kTagsPerRound = 256;

std::uint64_t range_bytes(std::span<const std::uint64_t> volumes, int first, int count) {
    const int n = static_cast<int>(volumes.size());
    std::uint64_t total = 0;
    for (int t = 0; t < count; ++t) {
        const int b = ((first + t) % n + n) % n;
        total += volumes[static_cast<std::size_t>(b)];
    }
    return total;
}

void emit_allgatherv_ring(std::vector<RankProgram>& progs,
                          std::span<const std::uint64_t> volumes, int tag0) {
    const int n = static_cast<int>(volumes.size());
    for (int r = 0; r < n; ++r) {
        RankProgram& p = progs[static_cast<std::size_t>(r)];
        const int right = (r + 1) % n;
        const int left = (r + n - 1) % n;
        for (int s = 0; s < n - 1; ++s) {
            const int send_block = (r - s + n) % n;
            p.push_back(
                Op::send(right, tag0 + s, volumes[static_cast<std::size_t>(send_block)]));
            p.push_back(Op::recv(left, tag0 + s));
        }
    }
}

void emit_allgatherv_recdbl(std::vector<RankProgram>& progs,
                            std::span<const std::uint64_t> volumes, int tag0) {
    const int n = static_cast<int>(volumes.size());
    NNCOMM_CHECK_MSG((n & (n - 1)) == 0, "recursive doubling needs power-of-two ranks");
    for (int r = 0; r < n; ++r) {
        RankProgram& p = progs[static_cast<std::size_t>(r)];
        int phase = 0;
        for (int mask = 1; mask < n; mask <<= 1, ++phase) {
            const int partner = r ^ mask;
            const std::uint64_t bytes = range_bytes(volumes, r & ~(mask - 1), mask);
            p.push_back(Op::send(partner, tag0 + phase, bytes));
            p.push_back(Op::recv(partner, tag0 + phase));
        }
    }
}

void emit_allgatherv_dissem(std::vector<RankProgram>& progs,
                            std::span<const std::uint64_t> volumes, int tag0) {
    const int n = static_cast<int>(volumes.size());
    for (int r = 0; r < n; ++r) {
        RankProgram& p = progs[static_cast<std::size_t>(r)];
        int phase = 0;
        for (int step = 1; step < n; step <<= 1, ++phase) {
            const int cnt = std::min(step, n - step);
            const std::uint64_t bytes = range_bytes(volumes, r - cnt + 1, cnt);
            p.push_back(Op::send((r + step) % n, tag0 + phase, bytes));
            p.push_back(Op::recv((r - step + n) % n, tag0 + phase));
        }
    }
}

GathervSchedule resolve_allgatherv(std::span<const std::uint64_t> volumes,
                                   GathervSchedule schedule, const AllgathervPolicy& policy) {
    if (schedule != GathervSchedule::Auto) return schedule;
    const int n = static_cast<int>(volumes.size());
    if (allgatherv_use_ring(volumes, policy)) return GathervSchedule::Ring;
    return ((n & (n - 1)) == 0) ? GathervSchedule::RecursiveDoubling
                                : GathervSchedule::Dissemination;
}

void emit_allgatherv(std::vector<RankProgram>& progs, std::span<const std::uint64_t> volumes,
                     GathervSchedule schedule, const AllgathervPolicy& policy, int tag0) {
    switch (resolve_allgatherv(volumes, schedule, policy)) {
        case GathervSchedule::Ring: emit_allgatherv_ring(progs, volumes, tag0); break;
        case GathervSchedule::RecursiveDoubling:
            emit_allgatherv_recdbl(progs, volumes, tag0);
            break;
        case GathervSchedule::Dissemination:
            emit_allgatherv_dissem(progs, volumes, tag0);
            break;
        case GathervSchedule::Auto: break;  // resolved
    }
}

void emit_alltoallw(std::vector<RankProgram>& progs, const ClusterConfig& cluster,
                    const AlltoallwWorkload& wl, AlltoallwSchedule schedule, int tag0) {
    const int n = wl.nprocs;
    if (schedule == AlltoallwSchedule::RoundRobin) {
        // Blocking pairwise exchange with every rank, zero-size included:
        // each step is a synchronization.
        for (int r = 0; r < n; ++r) {
            RankProgram& p = progs[static_cast<std::size_t>(r)];
            for (int i = 1; i < n; ++i) {
                const int dst = (r + i) % n;
                const int src = (r - i + n) % n;
                const std::uint64_t out = wl.vol(r, dst);
                p.push_back(Op::compute(pack_cost_us(cluster, wl.pack, out, wl.block_len)));
                p.push_back(Op::send(dst, tag0 + i, out));
                p.push_back(Op::recv(src, tag0 + i));
            }
        }
    } else {
        // Binned: zero-volume peers exempt; small volumes packed and sent
        // before large; receives completed afterwards (waitall).
        for (int r = 0; r < n; ++r) {
            RankProgram& p = progs[static_cast<std::size_t>(r)];
            struct Peer {
                int rank;
                std::uint64_t volume;
            };
            std::vector<Peer> small_bin, large_bin;
            for (int dst = 0; dst < n; ++dst) {
                if (dst == r) continue;
                const std::uint64_t v = wl.vol(r, dst);
                if (v == 0) continue;
                (v < wl.small_msg_threshold ? small_bin : large_bin).push_back({dst, v});
            }
            if (schedule == AlltoallwSchedule::Binned) {
                auto by_volume = [](const Peer& a, const Peer& b) {
                    return a.volume < b.volume || (a.volume == b.volume && a.rank < b.rank);
                };
                std::sort(small_bin.begin(), small_bin.end(), by_volume);
                std::sort(large_bin.begin(), large_bin.end(), by_volume);
            } else {
                // BinnedRankOrder: zero-size exemption only; packing order
                // is rank order, so a large early peer delays later ones.
                large_bin.insert(large_bin.end(), small_bin.begin(), small_bin.end());
                small_bin.clear();
                std::sort(large_bin.begin(), large_bin.end(),
                          [](const Peer& a, const Peer& b) { return a.rank < b.rank; });
            }
            for (const auto& bin : {small_bin, large_bin}) {
                for (const Peer& peer : bin) {
                    p.push_back(Op::compute(
                        pack_cost_us(cluster, wl.pack, peer.volume, wl.block_len)));
                    p.push_back(Op::send(peer.rank, tag0, peer.volume));
                }
            }
            for (int src = 0; src < n; ++src) {
                if (src == r || wl.vol(src, r) == 0) continue;
                p.push_back(Op::recv(src, tag0));
            }
        }
    }
}

void emit_allreduce(std::vector<RankProgram>& progs, std::uint64_t bytes, int tag0) {
    // Dissemination-pattern allreduce (works for any rank count; per-phase
    // payload is the full reduced value).
    const int n = static_cast<int>(progs.size());
    for (int r = 0; r < n; ++r) {
        RankProgram& p = progs[static_cast<std::size_t>(r)];
        int phase = 0;
        for (int step = 1; step < n; step <<= 1, ++phase) {
            p.push_back(Op::send((r + step) % n, tag0 + phase, bytes));
            p.push_back(Op::recv((r - step + n) % n, tag0 + phase));
        }
    }
}

void add_skew_ops(std::vector<RankProgram>& progs, const ClusterConfig& cluster, Rng& rng) {
    if (cluster.skew_us_mean <= 0.0) return;
    for (auto& p : progs) p.push_back(Op::compute(rng.exponential(cluster.skew_us_mean)));
}

}  // namespace

std::vector<RankProgram> allgatherv_program(const ClusterConfig& cluster,
                                            const AllgathervWorkload& wl,
                                            GathervSchedule schedule) {
    const int n = static_cast<int>(wl.volumes.size());
    NNCOMM_CHECK_MSG(n == cluster.nprocs, "workload/cluster rank-count mismatch");
    Rng rng(cluster.seed);
    std::vector<RankProgram> progs(static_cast<std::size_t>(n));
    for (int it = 0; it < wl.iterations; ++it) {
        add_skew_ops(progs, cluster, rng);
        emit_allgatherv(progs, wl.volumes, schedule, wl.policy, it * kTagsPerRound);
    }
    return progs;
}

AlltoallwWorkload make_ring_neighbor_workload(int nprocs, std::uint64_t bytes) {
    AlltoallwWorkload wl;
    wl.nprocs = nprocs;
    wl.volume.assign(static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs), 0);
    for (int r = 0; r < nprocs; ++r) {
        wl.vol(r, (r + 1) % nprocs) = bytes;
        wl.vol(r, (r + nprocs - 1) % nprocs) = bytes;
    }
    return wl;
}

std::vector<RankProgram> alltoallw_program(const ClusterConfig& cluster,
                                           const AlltoallwWorkload& wl,
                                           AlltoallwSchedule schedule) {
    const int n = wl.nprocs;
    NNCOMM_CHECK_MSG(n == cluster.nprocs, "workload/cluster rank-count mismatch");
    NNCOMM_CHECK_MSG(wl.volume.size() ==
                         static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                     "traffic matrix must be nprocs x nprocs");
    Rng rng(cluster.seed);
    std::vector<RankProgram> progs(static_cast<std::size_t>(n));
    for (int it = 0; it < wl.iterations; ++it) {
        add_skew_ops(progs, cluster, rng);
        emit_alltoallw(progs, cluster, wl, schedule, it * kTagsPerRound);
    }
    return progs;
}

// ---------------------------------------------------------------------------
// ProgramBuilder

ProgramBuilder::ProgramBuilder(const ClusterConfig& cluster)
    : cluster_(cluster), rng_(cluster.seed),
      progs_(static_cast<std::size_t>(cluster.nprocs)) {}

int ProgramBuilder::next_tag_block() {
    const int t = tag_block_ * kTagsPerRound;
    ++tag_block_;
    return t;
}

void ProgramBuilder::add_skew() { add_skew_ops(progs_, cluster_, rng_); }

void ProgramBuilder::add_compute_all(double us) {
    for (auto& p : progs_) p.push_back(Op::compute(us));
}

void ProgramBuilder::add_compute_per_rank(std::span<const double> us) {
    NNCOMM_CHECK_MSG(us.size() == progs_.size(), "one compute entry per rank required");
    for (std::size_t r = 0; r < progs_.size(); ++r) progs_[r].push_back(Op::compute(us[r]));
}

void ProgramBuilder::add_alltoallw(const AlltoallwWorkload& wl, AlltoallwSchedule schedule) {
    NNCOMM_CHECK_MSG(wl.nprocs == cluster_.nprocs, "workload/cluster rank-count mismatch");
    emit_alltoallw(progs_, cluster_, wl, schedule, next_tag_block());
}

void ProgramBuilder::add_allgatherv(std::span<const std::uint64_t> volumes,
                                    GathervSchedule schedule, const AllgathervPolicy& policy) {
    NNCOMM_CHECK_MSG(static_cast<int>(volumes.size()) == cluster_.nprocs,
                     "volume set/cluster rank-count mismatch");
    emit_allgatherv(progs_, volumes, schedule, policy, next_tag_block());
}

void ProgramBuilder::add_allreduce(std::uint64_t bytes) {
    emit_allreduce(progs_, bytes, next_tag_block());
}

void ProgramBuilder::add_barrier() { emit_allreduce(progs_, 0, next_tag_block()); }

}  // namespace nncomm::sim

// Simulated schedules of the collective algorithms.
//
// These generators emit, for each rank, the exact op sequence the
// corresponding executable algorithm in src/coll performs — same peers,
// same phases, same message volumes — so the simulator can predict the
// collective's latency on clusters far larger than the host. Datatype
// packing costs (linear for the dual-context engine, quadratic re-search
// for the single-context baseline) are injected as Compute ops before each
// noncontiguous send.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/outlier.hpp"
#include "core/rng.hpp"
#include "netsim/sim.hpp"

namespace nncomm::sim {

enum class PackModel {
    Contiguous,     ///< no packing needed
    HandTuned,      ///< explicit pack loop: linear per-byte cost only
    SingleContext,  ///< baseline engine: linear pack + quadratic re-search
    DualContext,    ///< optimized engine: linear pack + bounded look-ahead
};

/// CPU cost (us) to prepare one message under a pack model.
double pack_cost_us(const ClusterConfig& c, PackModel model, std::uint64_t bytes,
                    double block_len);

// ---------------------------------------------------------------------------
// allgatherv

enum class GathervSchedule { Ring, RecursiveDoubling, Dissemination, Auto };

struct AllgathervWorkload {
    /// Bytes contributed by each rank (the communication-volume set).
    std::vector<std::uint64_t> volumes;
    /// Benchmark iterations simulated back to back.
    int iterations = 1;
    /// Eq. 1 policy used by the Auto schedule.
    AllgathervPolicy policy{};
};

/// One op-program per rank for the chosen allgatherv algorithm, with
/// per-iteration random skew drawn from the cluster's skew model.
std::vector<RankProgram> allgatherv_program(const ClusterConfig& cluster,
                                            const AllgathervWorkload& wl,
                                            GathervSchedule schedule);

// ---------------------------------------------------------------------------
// alltoallw

enum class AlltoallwSchedule {
    RoundRobin,       ///< baseline: blocking pairwise, zero-size included
    Binned,           ///< zero-exempt, small bin packed before large
    BinnedRankOrder,  ///< ablation: zero-exempt but rank-order packing
    Rma,              ///< one-sided: fence, fused pack+puts, fence, unpacks
};

struct AlltoallwWorkload {
    int nprocs = 0;
    /// Row-major traffic matrix: volume(src, dst) bytes.
    std::vector<std::uint64_t> volume;
    /// Average contiguous-block length of the send layouts (drives pack and
    /// search costs); messages are contiguous when pack == Contiguous.
    double block_len = 64.0;
    PackModel pack = PackModel::Contiguous;
    int iterations = 1;
    /// Binned: volumes strictly below this are the small bin.
    std::size_t small_msg_threshold = 4 * 1024;

    std::uint64_t vol(int src, int dst) const {
        return volume[static_cast<std::size_t>(src) * static_cast<std::size_t>(nprocs) +
                      static_cast<std::size_t>(dst)];
    }
    std::uint64_t& vol(int src, int dst) {
        return volume[static_cast<std::size_t>(src) * static_cast<std::size_t>(nprocs) +
                      static_cast<std::size_t>(dst)];
    }
};

/// Ring-neighbor workload of the paper's Fig. 15: every rank exchanges
/// `bytes` with its ring successor and predecessor, nothing else.
AlltoallwWorkload make_ring_neighbor_workload(int nprocs, std::uint64_t bytes);

std::vector<RankProgram> alltoallw_program(const ClusterConfig& cluster,
                                           const AlltoallwWorkload& wl,
                                           AlltoallwSchedule schedule);

// ---------------------------------------------------------------------------
// sparse dynamic exchange (NBX)

/// Per-rank outgoing neighborhoods: out[r] lists the (destination, bytes)
/// messages rank r sends in one sparse exchange. The inverse neighborhood
/// is derived by the program generators — ranks in the simulated programs
/// know only what the executable NBX protocol would discover dynamically.
using SparseNeighborhood = std::vector<std::vector<std::pair<int, std::uint64_t>>>;

/// Random sparse pattern: every rank sends to `degree` distinct peers drawn
/// uniformly (self excluded), `bytes` each. Deterministic in `seed`.
SparseNeighborhood make_random_neighborhood(int nprocs, int degree, std::uint64_t bytes,
                                            std::uint64_t seed);

// ---------------------------------------------------------------------------
// composite programs

/// Builds multi-phase rank programs by appending collective rounds — the
/// bridge the application-level benchmarks (VecScatter, multigrid solver)
/// use to express "per solver iteration: ghost exchange, transfer, two
/// allreduces, ..." as one simulated program.
class ProgramBuilder {
public:
    explicit ProgramBuilder(const ClusterConfig& cluster);

    /// Per-rank random skew (exponential with the cluster's mean).
    void add_skew();
    /// Identical compute on every rank (scaled by rank speed at run time).
    void add_compute_all(double us);
    /// Per-rank compute (one entry per rank) — load-imbalance modeling.
    void add_compute_per_rank(std::span<const double> us);
    /// One alltoallw round (the workload's `iterations` field is ignored).
    void add_alltoallw(const AlltoallwWorkload& wl, AlltoallwSchedule schedule);
    /// The one-time window-offset exchange an RMA persistent plan performs
    /// at setup: every rank sends each of its sources an 8-byte offset and
    /// receives its own offset from each of its destinations. Steady-state
    /// RMA rounds (add_alltoallw with AlltoallwSchedule::Rma) then move
    /// zero two-sided messages.
    void add_rma_offset_exchange(const AlltoallwWorkload& wl);
    /// One allgatherv round.
    void add_allgatherv(std::span<const std::uint64_t> volumes, GathervSchedule schedule,
                        const AllgathervPolicy& policy = {});
    /// One recursive-doubling/dissemination allreduce of `bytes` payload.
    void add_allreduce(std::uint64_t bytes);
    /// Zero-byte dissemination barrier.
    void add_barrier();
    /// One NBX sparse dynamic exchange (runtime/sparse.hpp mirrored op for
    /// op): eager payload sends, inverse-neighborhood receives each
    /// answered with a zero-byte ack (the runtime's stand-in for Issend
    /// completion), ack receives for every payload sent, then the
    /// nonblocking-consensus dissemination barrier. Cost scales with the
    /// neighborhood degree plus O(log nprocs), independent of nprocs.
    void add_sparse_exchange(const SparseNeighborhood& out);
    /// The dense-discovery baseline for the same neighborhood: every rank
    /// publishes its full nprocs-entry count vector (8 bytes per
    /// destination) through a log-depth allgatherv, after which the pattern
    /// is globally known and the payloads move without acks or a barrier.
    /// Cost scales with nprocs regardless of how sparse the pattern is.
    void add_dense_discovery(const SparseNeighborhood& out);

    std::vector<RankProgram> take() { return std::move(progs_); }
    const std::vector<RankProgram>& programs() const { return progs_; }

private:
    int next_tag_block();

    const ClusterConfig& cluster_;
    Rng rng_;
    std::vector<RankProgram> progs_;
    int tag_block_ = 0;
};

}  // namespace nncomm::sim

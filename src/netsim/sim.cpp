#include "netsim/sim.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "runtime/protocol.hpp"

namespace nncomm::sim {

namespace {

// (src, dst, tag) packed into one 64-bit key: ranks < 2^16, tags < 2^32.
std::uint64_t pair_key(int src, int dst, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 48) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst) & 0xffff) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
}

struct RankState {
    std::size_t pc = 0;    ///< next op index
    double clock = 0.0;    ///< local virtual time (us)
    bool done = false;
};

/// One collective fence epoch. Fences are collective and every rank passes
/// the same number of them, so epoch k is globally well defined; a put
/// issued by rank r after its fence k-1 and before its fence k belongs to
/// epoch k and must have arrived before epoch k completes.
struct FenceState {
    int arrived = 0;           ///< ranks that have entered this fence
    double max_arrival = 0.0;  ///< latest entry time
    double put_latest = 0.0;   ///< latest arrival of a put in this epoch
    double completion = 0.0;
    bool complete = false;
};

/// One message in transit: arrival time plus what the receiver still owes
/// for it (the eager unpack copy; rendezvous bytes land in place).
struct Transit {
    double arrival = 0.0;
    std::uint64_t bytes = 0;
    bool rendezvous = false;
};

/// Per-(src, dst) online cost model, same three-line structure as
/// rt::ProtoTable but fed from the simulator's analytic costs — the sim
/// knows both protocols' prices for every send, so all lines learn at once.
struct PairEstimate {
    rt::EwLine eager_send;
    rt::EwLine eager_unpack;
    rt::EwLine rdzv;
};

}  // namespace

SimResult Simulator::run(const std::vector<RankProgram>& programs) const {
    const int n = config_.nprocs;
    NNCOMM_CHECK_MSG(programs.size() == static_cast<std::size_t>(n),
                     "one program per rank required");

    std::vector<RankState> ranks(static_cast<std::size_t>(n));
    std::unordered_map<std::uint64_t, std::deque<Transit>> in_flight;  // FIFO per key
    in_flight.reserve(1024);
    std::unordered_map<std::uint64_t, PairEstimate> estimates;  // adaptive only
    std::unordered_map<std::uint64_t, FenceState> fences;       // epoch index -> state
    std::vector<std::uint64_t> next_fence(static_cast<std::size_t>(n), 0);
    std::vector<char> fence_entered(static_cast<std::size_t>(n), 0);
    SimResult result;

    // Sweep until every rank finishes. Sends never block, so any rank that
    // is stuck is waiting on a message; each sweep delivers at least one
    // message if the programs are deadlock-free.
    bool progress = true;
    int remaining = n;
    while (remaining > 0) {
        NNCOMM_CHECK_MSG(progress, "simulated programs deadlocked");
        progress = false;
        for (int r = 0; r < n; ++r) {
            RankState& st = ranks[static_cast<std::size_t>(r)];
            if (st.done) continue;
            const RankProgram& prog = programs[static_cast<std::size_t>(r)];
            const double speed = config_.rank_speed(r);
            while (st.pc < prog.size()) {
                const Op& op = prog[st.pc];
                if (op.kind == Op::Kind::Compute) {
                    st.clock += op.compute_us / speed;
                } else if (op.kind == Op::Kind::Send) {
                    // Sender occupied for overhead + serialization; message
                    // arrives one wire latency after it leaves the NIC.
                    // Protocol split mirrors the runtime's boundary contract
                    // exactly: rendezvous iff bytes >= threshold AND the
                    // message is nonempty — Comm::try_rendezvous rejects
                    // total == 0, so at threshold 0 a zero-byte send must
                    // not be charged a handshake here either.
                    std::size_t threshold = config_.rendezvous_threshold;
                    if (config_.adaptive_protocol && op.bytes > 0) {
                        // Consult the learned crossover first (decision),
                        // then feed this send's analytic costs into both
                        // protocol lines (observation) — same order as the
                        // real runtime, so the first min_samples sends ride
                        // the static threshold.
                        PairEstimate& est =
                            estimates[pair_key(r, op.peer, /*tag=*/0)];
                        threshold = rt::crossover_bytes(
                            est.eager_send.fit(), est.eager_unpack.fit(), est.rdzv.fit(),
                            config_.adaptive_min_samples, config_.adaptive_min_threshold,
                            config_.adaptive_max_threshold, threshold);
                        result.threshold_bytes_last = threshold;
                        if (threshold > result.threshold_bytes_hi) {
                            result.threshold_bytes_hi = threshold;
                        }
                        if (result.threshold_bytes_lo == 0 ||
                            threshold < result.threshold_bytes_lo) {
                            result.threshold_bytes_lo = threshold;
                        }
                        const double b = static_cast<double>(op.bytes);
                        est.eager_send.observe(b, b * config_.copy_us_per_byte);
                        est.eager_unpack.observe(b, b * config_.copy_us_per_byte);
                        est.rdzv.observe(b, config_.rendezvous_handshake_us +
                                                b * config_.copy_us_per_byte);
                        ++result.adaptive_updates;
                    }
                    const bool rdv = op.bytes > 0 && op.bytes >= threshold;
                    double occupied = config_.overhead_us / speed +
                                      static_cast<double>(op.bytes) * config_.us_per_byte;
                    if (rdv) {
                        occupied += config_.rendezvous_handshake_us +
                                    static_cast<double>(op.bytes) * config_.copy_us_per_byte;
                        ++result.rendezvous_messages;
                    } else {
                        occupied += static_cast<double>(op.bytes) * config_.copy_us_per_byte;
                    }
                    st.clock += occupied;
                    in_flight[pair_key(r, op.peer, op.tag)].push_back(
                        Transit{st.clock + config_.latency_us, op.bytes, rdv});
                    ++result.messages;
                    result.bytes += op.bytes;
                } else if (op.kind == Op::Kind::Put) {
                    // LogGP put: sender pays overhead + serialization + the
                    // fused pack/copy into the target region. No handshake
                    // term (nothing to match), no receiver-side cost — the
                    // target only pays when it unpacks, which the lowering
                    // charges as Compute.
                    st.clock += config_.overhead_us / speed +
                                static_cast<double>(op.bytes) * config_.us_per_byte +
                                static_cast<double>(op.bytes) * config_.copy_us_per_byte;
                    FenceState& fs = fences[next_fence[static_cast<std::size_t>(r)]];
                    fs.put_latest =
                        std::max(fs.put_latest, st.clock + config_.latency_us);
                    ++result.puts;
                    result.put_bytes += op.bytes;
                } else if (op.kind == Op::Kind::Fence) {
                    const std::uint64_t k = next_fence[static_cast<std::size_t>(r)];
                    FenceState& fs = fences[k];
                    if (!fence_entered[static_cast<std::size_t>(r)]) {
                        fence_entered[static_cast<std::size_t>(r)] = 1;
                        st.clock += config_.overhead_us / speed;
                        fs.max_arrival = std::max(fs.max_arrival, st.clock);
                        ++fs.arrived;
                        progress = true;
                    }
                    if (fs.arrived < n) break;  // blocked on stragglers
                    if (!fs.complete) {
                        fs.complete = true;
                        fs.completion = std::max(fs.max_arrival, fs.put_latest);
                        ++result.fences;
                    }
                    st.clock = std::max(st.clock, fs.completion);
                    fence_entered[static_cast<std::size_t>(r)] = 0;
                    ++next_fence[static_cast<std::size_t>(r)];
                } else {  // Recv
                    auto it = in_flight.find(pair_key(op.peer, r, op.tag));
                    if (it == in_flight.end() || it->second.empty()) break;  // blocked
                    const Transit msg = it->second.front();
                    it->second.pop_front();
                    if (it->second.empty()) in_flight.erase(it);  // keys rarely repeat
                    st.clock = std::max(st.clock, msg.arrival) + config_.overhead_us / speed;
                    if (!msg.rendezvous) {
                        // Eager second copy: unpack out of the staging buffer.
                        st.clock += static_cast<double>(msg.bytes) * config_.copy_us_per_byte;
                    }
                }
                ++st.pc;
                progress = true;
            }
            if (st.pc == prog.size() && !st.done) {
                st.done = true;
                --remaining;
                progress = true;
            }
        }
    }

    result.finish_us.resize(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
        result.finish_us[static_cast<std::size_t>(r)] = ranks[static_cast<std::size_t>(r)].clock;
        result.makespan_us = std::max(result.makespan_us, ranks[static_cast<std::size_t>(r)].clock);
    }
    return result;
}

}  // namespace nncomm::sim

// Deterministic discrete-event simulator for rank programs.
//
// A rank program is a sequence of ops: Compute (advance the local clock),
// Send (occupy the sender for o + bytes·G, deliver after latency L) and
// Recv (block until the matching message has arrived). Sends never block
// (buffered-eager, matching the threaded runtime), so programs can be
// executed by repeated sweeps: run every rank until it blocks on a message
// not yet sent; a sweep with no progress and unfinished ranks is a
// deadlock and throws.
//
// Messages match on (source, tag) FIFO per pair, mirroring the runtime's
// matching semantics. Costs follow the runtime's protocol split: sends
// below the cluster's rendezvous_threshold are buffered eager (staging
// copy on the sender, unpack copy on the receiver), larger ones pay a
// handshake but a single copy. All times are microseconds of virtual time.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/model.hpp"

namespace nncomm::sim {

struct Op {
    enum class Kind { Compute, Send, Recv, Put, Fence };
    Kind kind = Kind::Compute;
    double compute_us = 0.0;  ///< Compute: raw cost (divided by rank speed)
    int peer = -1;            ///< Send: destination; Recv: source; Put: target
    int tag = 0;
    std::uint64_t bytes = 0;  ///< Send/Put only

    static Op compute(double us) { return Op{Kind::Compute, us, -1, 0, 0}; }
    static Op send(int to, int tag, std::uint64_t bytes) {
        return Op{Kind::Send, 0.0, to, tag, bytes};
    }
    static Op recv(int from, int tag) { return Op{Kind::Recv, 0.0, from, tag, 0}; }
    /// One-sided put: LogGP sender cost (overhead + serialization + the
    /// fused pack/copy), no handshake, no matching, no receiver-side cost.
    /// Visibility is deferred to the next Fence.
    static Op put(int to, std::uint64_t bytes) { return Op{Kind::Put, 0.0, to, 0, bytes}; }
    /// Collective epoch boundary: completes once every rank entered the
    /// same fence AND every put issued toward it has arrived.
    static Op fence() { return Op{Kind::Fence, 0.0, -1, 0, 0}; }
};

using RankProgram = std::vector<Op>;

/// Per-rank completion times plus aggregate measures.
struct SimResult {
    std::vector<double> finish_us;  ///< virtual time each rank completed
    double makespan_us = 0.0;       ///< max over ranks
    std::uint64_t messages = 0;     ///< total messages delivered
    std::uint64_t bytes = 0;        ///< total payload bytes moved
    std::uint64_t rendezvous_messages = 0;  ///< sends that rode the rendezvous cost path

    // One-sided traffic (Put/Fence ops): puts never appear in messages /
    // bytes — they move no envelopes and match nothing.
    std::uint64_t puts = 0;
    std::uint64_t put_bytes = 0;
    std::uint64_t fences = 0;  ///< collective fence epochs completed

    // Adaptive protocol selection (config.adaptive_protocol): observation
    // count plus the smallest / largest / last effective threshold any
    // send consulted — zero when adaptation is off.
    std::uint64_t adaptive_updates = 0;
    std::uint64_t threshold_bytes_lo = 0;
    std::uint64_t threshold_bytes_hi = 0;
    std::uint64_t threshold_bytes_last = 0;
};

class Simulator {
public:
    explicit Simulator(ClusterConfig config) : config_(std::move(config)) {
        NNCOMM_CHECK_MSG(config_.nprocs >= 1, "simulator needs at least one rank");
    }

    /// Executes one program per rank to completion and returns the timing.
    SimResult run(const std::vector<RankProgram>& programs) const;

    const ClusterConfig& config() const { return config_; }

private:
    ClusterConfig config_;
};

}  // namespace nncomm::sim

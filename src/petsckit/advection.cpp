#include "petsckit/advection.hpp"

#include <cmath>

namespace nncomm::pk {

AdvectionDiffusionOp::AdvectionDiffusionOp(std::shared_ptr<const DMDA> dmda, double eps,
                                           std::array<double, 3> velocity,
                                           coll::CollConfig config)
    : dmda_(std::move(dmda)), eps_(eps), vel_(velocity), config_(config) {
    NNCOMM_CHECK_MSG(dmda_->dof() == 1, "AdvectionDiffusionOp: dof must be 1");
    NNCOMM_CHECK_MSG(dmda_->stencil_width() >= 1,
                     "AdvectionDiffusionOp: needs stencil width >= 1");
    NNCOMM_CHECK_MSG(eps > 0.0, "AdvectionDiffusionOp: diffusion must be positive");
    const Index m = dmda_->grid().m;
    NNCOMM_CHECK_MSG(m >= 3, "AdvectionDiffusionOp: grid too small");
    h_ = 1.0 / static_cast<double>(m - 1);
    inv_h2_ = 1.0 / (h_ * h_);
    inv_h_ = 1.0 / h_;
    ghosted_ = dmda_->create_local();
}

double AdvectionDiffusionOp::peclet() const {
    double vmax = 0.0;
    for (int a = 0; a < dmda_->dim(); ++a) {
        vmax = std::max(vmax, std::abs(vel_[static_cast<std::size_t>(a)]));
    }
    return vmax * h_ / (2.0 * eps_);
}

bool AdvectionDiffusionOp::on_boundary(Index i, Index j, Index k) const {
    const GridSize g = dmda_->grid();
    if (i == 0 || i == g.m - 1) return true;
    if (dmda_->dim() >= 2 && (j == 0 || j == g.n - 1)) return true;
    if (dmda_->dim() >= 3 && (k == 0 || k == g.p - 1)) return true;
    return false;
}

void AdvectionDiffusionOp::apply(const Vec& x, Vec& y) const {
    const DMDA& da = *dmda_;
    da.global_to_local(x, ghosted_, config_);

    const GridBox& o = da.owned();
    const int dim = da.dim();
    const double* loc = ghosted_.data();
    double* out = y.data();
    std::size_t at = 0;
    for (Index k = o.zs; k < o.zs + o.zm; ++k) {
        for (Index j = o.ys; j < o.ys + o.ym; ++j) {
            for (Index i = o.xs; i < o.xs + o.xm; ++i, ++at) {
                const double u = loc[da.local_index(i, j, k)];
                if (on_boundary(i, j, k)) {
                    out[at] = u;
                    continue;
                }
                // Eliminated Dirichlet values are zero: out-of-interior
                // neighbors simply contribute nothing.
                auto val = [&](Index ni, Index nj, Index nk) {
                    return on_boundary(ni, nj, nk) ? 0.0 : loc[da.local_index(ni, nj, nk)];
                };
                double acc = 2.0 * dim * eps_ * inv_h2_ * u;
                struct Axis {
                    double v;
                    double um;  // upwind-minus neighbor
                    double up;  // upwind-plus neighbor
                };
                std::array<Axis, 3> ax{};
                ax[0] = {vel_[0], val(i - 1, j, k), val(i + 1, j, k)};
                if (dim >= 2) ax[1] = {vel_[1], val(i, j - 1, k), val(i, j + 1, k)};
                if (dim >= 3) ax[2] = {vel_[2], val(i, j, k - 1), val(i, j, k + 1)};
                for (int a = 0; a < dim; ++a) {
                    acc -= eps_ * inv_h2_ * (ax[static_cast<std::size_t>(a)].um +
                                             ax[static_cast<std::size_t>(a)].up);
                    const double v = ax[static_cast<std::size_t>(a)].v;
                    if (v >= 0.0) {
                        acc += v * inv_h_ * (u - ax[static_cast<std::size_t>(a)].um);
                    } else {
                        acc += v * inv_h_ * (ax[static_cast<std::size_t>(a)].up - u);
                    }
                }
                out[at] = acc;
            }
        }
    }
}

void AdvectionDiffusionOp::fill_diagonal(Vec& d) const {
    const DMDA& da = *dmda_;
    const GridBox& o = da.owned();
    const int dim = da.dim();
    double diag = 2.0 * dim * eps_ * inv_h2_;
    for (int a = 0; a < dim; ++a) diag += std::abs(vel_[static_cast<std::size_t>(a)]) * inv_h_;
    double* out = d.data();
    std::size_t at = 0;
    for (Index k = o.zs; k < o.zs + o.zm; ++k) {
        for (Index j = o.ys; j < o.ys + o.ym; ++j) {
            for (Index i = o.xs; i < o.xs + o.xm; ++i, ++at) {
                out[at] = on_boundary(i, j, k) ? 1.0 : diag;
            }
        }
    }
}

}  // namespace nncomm::pk

// Steady advection-diffusion: -eps Δu + v·∇u = f with homogeneous
// Dirichlet boundaries, discretized with first-order upwind convection on
// a DMDA grid. The operator is nonsymmetric (the reason GMRES exists);
// with upwinding it stays an M-matrix, so Jacobi-preconditioned GMRES
// converges for any Péclet number.
#pragma once

#include <array>
#include <memory>

#include "petsckit/dmda.hpp"
#include "petsckit/ksp.hpp"

namespace nncomm::pk {

class AdvectionDiffusionOp final : public LinearOperator {
public:
    /// `velocity` components beyond dmda->dim() are ignored.
    AdvectionDiffusionOp(std::shared_ptr<const DMDA> dmda, double eps,
                         std::array<double, 3> velocity, coll::CollConfig config = {});

    void apply(const Vec& x, Vec& y) const override;
    void fill_diagonal(Vec& d) const;

    const DMDA& dmda() const { return *dmda_; }
    double h() const { return h_; }
    /// Mesh Péclet number max_a |v_a| h / (2 eps) — above 1, a centered
    /// scheme would oscillate; upwinding stays monotone.
    double peclet() const;

private:
    bool on_boundary(Index i, Index j, Index k) const;

    std::shared_ptr<const DMDA> dmda_;
    double eps_;
    std::array<double, 3> vel_;
    coll::CollConfig config_;
    double h_;
    double inv_h2_;
    double inv_h_;
    mutable std::vector<double> ghosted_;
};

}  // namespace nncomm::pk

#include "petsckit/bratu.hpp"

#include <cmath>

namespace nncomm::pk {

BratuProblem::BratuProblem(std::shared_ptr<const DMDA> dmda, double lambda,
                           coll::CollConfig config)
    : dmda_(std::move(dmda)), lambda_(lambda), config_(config) {
    NNCOMM_CHECK_MSG(dmda_->dof() == 1, "BratuProblem: dof must be 1");
    NNCOMM_CHECK_MSG(dmda_->stencil_width() >= 1, "BratuProblem: needs stencil width >= 1");
    NNCOMM_CHECK_MSG(lambda_ >= 0.0, "BratuProblem: lambda must be nonnegative");
    const Index m = dmda_->grid().m;
    NNCOMM_CHECK_MSG(m >= 3, "BratuProblem: grid too small");
    h_ = 1.0 / static_cast<double>(m - 1);
    inv_h2_ = 1.0 / (h_ * h_);
    ghosted_ = dmda_->create_local();
}

bool BratuProblem::on_boundary(Index i, Index j, Index k) const {
    const GridSize g = dmda_->grid();
    if (i == 0 || i == g.m - 1) return true;
    if (dmda_->dim() >= 2 && (j == 0 || j == g.n - 1)) return true;
    if (dmda_->dim() >= 3 && (k == 0 || k == g.p - 1)) return true;
    return false;
}

void BratuProblem::residual(const Vec& x, Vec& f) const {
    const DMDA& da = *dmda_;
    da.global_to_local(x, ghosted_, config_);

    const GridBox& o = da.owned();
    const int dim = da.dim();
    const double two_d = 2.0 * dim;
    const double* loc = ghosted_.data();
    double* out = f.data();
    std::size_t at = 0;
    for (Index k = o.zs; k < o.zs + o.zm; ++k) {
        for (Index j = o.ys; j < o.ys + o.ym; ++j) {
            for (Index i = o.xs; i < o.xs + o.xm; ++i, ++at) {
                const double u = loc[da.local_index(i, j, k)];
                if (on_boundary(i, j, k)) {
                    out[at] = u;  // Dirichlet: F = u - 0
                    continue;
                }
                double lap = two_d * u;
                if (i > 1) lap -= loc[da.local_index(i - 1, j, k)];
                if (i < da.grid().m - 2) lap -= loc[da.local_index(i + 1, j, k)];
                if (dim >= 2) {
                    if (j > 1) lap -= loc[da.local_index(i, j - 1, k)];
                    if (j < da.grid().n - 2) lap -= loc[da.local_index(i, j + 1, k)];
                }
                if (dim >= 3) {
                    if (k > 1) lap -= loc[da.local_index(i, j, k - 1)];
                    if (k < da.grid().p - 2) lap -= loc[da.local_index(i, j, k + 1)];
                }
                out[at] = lap * inv_h2_ - lambda_ * std::exp(u);
            }
        }
    }
}

void BratuProblem::jacobian(const Vec& x, MatAIJ& jac) const {
    const DMDA& da = *dmda_;
    const GridBox& o = da.owned();
    const int dim = da.dim();

    const double* u = x.data();
    std::size_t at = 0;
    for (Index k = o.zs; k < o.zs + o.zm; ++k) {
        for (Index j = o.ys; j < o.ys + o.ym; ++j) {
            for (Index i = o.xs; i < o.xs + o.xm; ++i, ++at) {
                const Index row = da.global_index(i, j, k);
                if (on_boundary(i, j, k)) {
                    jac.set_value(row, row, 1.0);
                    continue;
                }
                jac.set_value(row, row, 2.0 * dim * inv_h2_ - lambda_ * std::exp(u[at]));
                auto couple = [&](Index ni, Index nj, Index nk) {
                    if (!on_boundary(ni, nj, nk)) {
                        jac.set_value(row, da.global_index(ni, nj, nk), -inv_h2_);
                    }
                };
                couple(i - 1, j, k);
                couple(i + 1, j, k);
                if (dim >= 2) {
                    couple(i, j - 1, k);
                    couple(i, j + 1, k);
                }
                if (dim >= 3) {
                    couple(i, j, k - 1);
                    couple(i, j, k + 1);
                }
            }
        }
    }
}

}  // namespace nncomm::pk

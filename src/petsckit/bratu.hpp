// The Bratu problem (solid-fuel ignition): -Δu - λ e^u = 0 on the unit
// square/cube with homogeneous Dirichlet boundaries — PETSc's canonical
// SNES example (ex5), here on our DMDA with the same boundary elimination
// as LaplacianOp. Solutions exist for λ below the critical value
// (~6.80 in 2-D); the Jacobian -Δ - λ e^u stays SPD in that regime, so
// Jacobi-preconditioned CG is a valid inner solver.
#pragma once

#include <memory>

#include "petsckit/dmda.hpp"
#include "petsckit/snes.hpp"

namespace nncomm::pk {

class BratuProblem final : public NonlinearSystem {
public:
    /// dmda: dof == 1, stencil width >= 1, 1/2/3-D. `lambda` must be in the
    /// subcritical range for Newton to converge.
    BratuProblem(std::shared_ptr<const DMDA> dmda, double lambda,
                 coll::CollConfig config = {});

    void residual(const Vec& x, Vec& f) const override;
    void jacobian(const Vec& x, MatAIJ& jac) const override;

    const DMDA& dmda() const { return *dmda_; }
    double lambda() const { return lambda_; }
    double h() const { return h_; }

private:
    bool on_boundary(Index i, Index j, Index k) const;

    std::shared_ptr<const DMDA> dmda_;
    double lambda_;
    coll::CollConfig config_;
    double h_;
    double inv_h2_;
    mutable std::vector<double> ghosted_;
};

}  // namespace nncomm::pk

#include "petsckit/dmda.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "petsckit/scatter.hpp"

namespace nncomm::pk {

std::array<int, 3> DMDA::factor_grid(int nprocs, int dim, GridSize size) {
    NNCOMM_CHECK_MSG(nprocs >= 1 && dim >= 1 && dim <= 3, "factor_grid: bad arguments");
    // Enumerate all factorizations px * py * pz == nprocs (pz = 1 unless
    // dim == 3, py = 1 unless dim >= 2), require the axis extents to
    // accommodate the split, and pick the one minimizing the per-rank
    // communication surface.
    double best_score = std::numeric_limits<double>::infinity();
    std::array<int, 3> best{nprocs, 1, 1};
    bool found = false;
    const double mx = static_cast<double>(size.m);
    const double my = static_cast<double>(size.n);
    const double mz = static_cast<double>(size.p);
    for (int px = 1; px <= nprocs; ++px) {
        if (nprocs % px != 0) continue;
        const int rest = nprocs / px;
        const int py_max = (dim >= 2) ? rest : 1;
        for (int py = 1; py <= py_max; ++py) {
            if (rest % py != 0) continue;
            const int pz = rest / py;
            if (dim < 3 && pz != 1) continue;
            if (px > size.m || py > size.n || pz > size.p) continue;
            // Surface per rank of the average local box (lower is better);
            // mild tie-break toward balanced aspect ratios.
            const double lx = mx / px, ly = my / py, lz = mz / pz;
            double score = 0.0;
            if (px > 1) score += ly * lz;
            if (py > 1) score += lx * lz;
            if (pz > 1) score += lx * ly;
            score += 1e-6 * (lx + ly + lz);
            if (score < best_score) {
                best_score = score;
                best = {px, py, pz};
                found = true;
            }
        }
    }
    NNCOMM_CHECK_MSG(found, "factor_grid: no valid process grid (too many ranks for the grid)");
    return best;
}

std::vector<GridBox> DMDA::decompose(int nprocs, int dim, GridSize size) {
    const auto grid = factor_grid(nprocs, dim, size);
    const int px = grid[0], py = grid[1], pz = grid[2];
    std::vector<GridBox> boxes(static_cast<std::size_t>(nprocs));
    for (int r = 0; r < nprocs; ++r) {
        const int rcx = r % px;
        const int rcy = (r / px) % py;
        const int rcz = r / (px * py);
        const auto rx = split_ownership(size.m, rcx, px);
        const auto ry = split_ownership(size.n, rcy, py);
        const auto rz = split_ownership(size.p, rcz, pz);
        GridBox& b = boxes[static_cast<std::size_t>(r)];
        b.xs = rx.begin;
        b.xm = rx.count();
        b.ys = ry.begin;
        b.ym = ry.count();
        b.zs = rz.begin;
        b.zm = rz.count();
    }
    return boxes;
}

std::vector<DMDA::TrafficEntry> DMDA::ghost_traffic(int nprocs, int dim, GridSize size,
                                                    int dof, int stencil_width,
                                                    Stencil stencil) {
    const auto grid = factor_grid(nprocs, dim, size);
    const int px = grid[0], py = grid[1], pz = grid[2];
    const auto boxes = decompose(nprocs, dim, size);
    const Index sw = stencil_width;

    std::vector<TrafficEntry> traffic;
    if (sw == 0) return traffic;
    const int dy_range = (dim >= 2) ? 1 : 0;
    const int dz_range = (dim >= 3) ? 1 : 0;
    for (int r = 0; r < nprocs; ++r) {
        const int rcx = r % px;
        const int rcy = (r / px) % py;
        const int rcz = r / (px * py);
        const GridBox& o = boxes[static_cast<std::size_t>(r)];
        for (int dz = -dz_range; dz <= dz_range; ++dz) {
            for (int dy = -dy_range; dy <= dy_range; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    if (dx == 0 && dy == 0 && dz == 0) continue;
                    const int nonzero = (dx != 0) + (dy != 0) + (dz != 0);
                    if (stencil == Stencil::Star && nonzero > 1) continue;
                    const int ncx = rcx + dx, ncy = rcy + dy, ncz = rcz + dz;
                    if (ncx < 0 || ncx >= px || ncy < 0 || ncy >= py || ncz < 0 || ncz >= pz) {
                        continue;
                    }
                    const Index wx = (dx == 0) ? o.xm : sw;
                    const Index wy = (dy == 0) ? o.ym : sw;
                    const Index wz = (dz == 0) ? o.zm : sw;
                    TrafficEntry e;
                    e.src = r;
                    e.dst = ncx + px * (ncy + py * ncz);
                    e.bytes = static_cast<std::uint64_t>(wx) * static_cast<std::uint64_t>(wy) *
                              static_cast<std::uint64_t>(wz) * static_cast<std::uint64_t>(dof) *
                              8;
                    // x-contiguous storage: one run per (y, z) line unless
                    // the slab spans full x rows of the owned box.
                    e.blocks = static_cast<std::uint64_t>(wy) * static_cast<std::uint64_t>(wz);
                    traffic.push_back(e);
                }
            }
        }
    }
    return traffic;
}

DMDA::DMDA(rt::Comm& comm, int dim, GridSize size, int dof, int stencil_width, Stencil stencil)
    : comm_(&comm), dim_(dim), size_(size), dof_(dof), sw_(stencil_width), stencil_(stencil) {
    NNCOMM_CHECK_MSG(dim >= 1 && dim <= 3, "DMDA: dim must be 1, 2 or 3");
    NNCOMM_CHECK_MSG(dof >= 1, "DMDA: dof must be >= 1");
    NNCOMM_CHECK_MSG(sw_ >= 0, "DMDA: negative stencil width");
    NNCOMM_CHECK_MSG(size.m >= 1 && size.n >= 1 && size.p >= 1, "DMDA: empty grid");
    NNCOMM_CHECK_MSG(dim >= 2 || size.n == 1, "DMDA: 1-D grid must have n == 1");
    NNCOMM_CHECK_MSG(dim >= 3 || size.p == 1, "DMDA: sub-3-D grid must have p == 1");

    const auto grid = factor_grid(comm.size(), dim, size);
    px_ = grid[0];
    py_ = grid[1];
    pz_ = grid[2];
    const int rank = comm.rank();
    cx_ = rank % px_;
    cy_ = (rank / px_) % py_;
    cz_ = rank / (px_ * py_);

    owned_ = owned_box_of(rank);
    ghosted_ = ghosted_box_of(rank);

    // Every rank must be at least one stencil width wide along any axis on
    // which it has a neighbor, or a single neighbor exchange cannot fill
    // the ghost region.
    NNCOMM_CHECK_MSG(px_ == 1 || owned_.xm >= sw_, "DMDA: local x extent below stencil width");
    NNCOMM_CHECK_MSG(py_ == 1 || owned_.ym >= sw_, "DMDA: local y extent below stencil width");
    NNCOMM_CHECK_MSG(pz_ == 1 || owned_.zm >= sw_, "DMDA: local z extent below stencil width");

    // Global vector layout: every rank's owned volume, computable locally.
    std::vector<Index> counts(static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
        counts[static_cast<std::size_t>(r)] =
            owned_box_of(r).volume() * static_cast<Index>(dof_);
    }
    layout_ = std::make_shared<const Layout>(Layout::from_counts(counts));

    build_exchange();
}

// Ghost box: the owned box extended by the stencil width, clamped to the
// domain (non-periodic boundaries). Pure math for any rank.
GridBox DMDA::ghosted_box_of(int rank) const {
    const GridBox o = (rank == comm_->rank()) ? owned_ : owned_box_of(rank);
    GridBox g;
    g.xs = std::max<Index>(0, o.xs - sw_);
    g.xm = std::min<Index>(size_.m, o.xs + o.xm + sw_) - g.xs;
    g.ys = std::max<Index>(0, o.ys - (dim_ >= 2 ? sw_ : 0));
    g.ym = std::min<Index>(size_.n, o.ys + o.ym + (dim_ >= 2 ? sw_ : 0)) - g.ys;
    g.zs = std::max<Index>(0, o.zs - (dim_ >= 3 ? sw_ : 0));
    g.zm = std::min<Index>(size_.p, o.zs + o.zm + (dim_ >= 3 ? sw_ : 0)) - g.zs;
    return g;
}

GridBox DMDA::owned_box_of(int rank) const {
    const int rcx = rank % px_;
    const int rcy = (rank / px_) % py_;
    const int rcz = rank / (px_ * py_);
    const auto rx = split_ownership(size_.m, rcx, px_);
    const auto ry = split_ownership(size_.n, rcy, py_);
    const auto rz = split_ownership(size_.p, rcz, pz_);
    GridBox b;
    b.xs = rx.begin;
    b.xm = rx.count();
    b.ys = ry.begin;
    b.ym = ry.count();
    b.zs = rz.begin;
    b.zm = rz.count();
    return b;
}

Index DMDA::global_index(Index i, Index j, Index k, int c) const {
    NNCOMM_CHECK_MSG(i >= 0 && i < size_.m && j >= 0 && j < size_.n && k >= 0 && k < size_.p &&
                         c >= 0 && c < dof_,
                     "global_index: point outside the grid");
    const int rcx = owner_of(i, size_.m, px_);
    const int rcy = owner_of(j, size_.n, py_);
    const int rcz = owner_of(k, size_.p, pz_);
    const int rank = rcx + px_ * (rcy + py_ * rcz);
    const GridBox b = owned_box_of(rank);
    const Index within =
        (((k - b.zs) * b.ym + (j - b.ys)) * b.xm + (i - b.xs)) * dof_ + c;
    return layout_->range(rank).begin + within;
}

Index DMDA::local_index(Index i, Index j, Index k, int c) const {
    NNCOMM_CHECK_MSG(ghosted_.contains(i, j, k) && c >= 0 && c < dof_,
                     "local_index: point outside the ghosted box");
    return (((k - ghosted_.zs) * ghosted_.ym + (j - ghosted_.ys)) * ghosted_.xm +
            (i - ghosted_.xs)) *
               dof_ +
           c;
}

void DMDA::build_exchange() {
    const int n = comm_->size();
    const auto nn = static_cast<std::size_t>(n);
    g2l_scounts_.assign(nn, 0);
    g2l_rcounts_.assign(nn, 0);
    g2l_sdispls_.assign(nn, 0);
    g2l_rdispls_.assign(nn, 0);
    g2l_stypes_.assign(nn, dt::Datatype::byte());
    g2l_rtypes_.assign(nn, dt::Datatype::byte());

    const auto elem = dt::Datatype::contiguous(static_cast<std::size_t>(dof_),
                                               dt::Datatype::float64());

    // Subarray helper over a box: dims ordered (z, y, x) with the dof
    // handled by the element type.
    auto box_subarray = [&](const GridBox& box, Index x0, Index wx, Index y0, Index wy,
                            Index z0, Index wz) {
        const std::array<std::size_t, 3> sizes{static_cast<std::size_t>(box.zm),
                                               static_cast<std::size_t>(box.ym),
                                               static_cast<std::size_t>(box.xm)};
        const std::array<std::size_t, 3> sub{static_cast<std::size_t>(wz),
                                             static_cast<std::size_t>(wy),
                                             static_cast<std::size_t>(wx)};
        const std::array<std::size_t, 3> starts{static_cast<std::size_t>(z0 - box.zs),
                                                static_cast<std::size_t>(y0 - box.ys),
                                                static_cast<std::size_t>(x0 - box.xs)};
        return dt::Datatype::subarray(sizes, sub, starts, elem);
    };

    // Self region: owned box copied into its position in the ghosted box.
    {
        const int rank = comm_->rank();
        g2l_scounts_[static_cast<std::size_t>(rank)] = 1;
        g2l_stypes_[static_cast<std::size_t>(rank)] =
            box_subarray(owned_, owned_.xs, owned_.xm, owned_.ys, owned_.ym, owned_.zs,
                         owned_.zm);
        g2l_rcounts_[static_cast<std::size_t>(rank)] = 1;
        g2l_rtypes_[static_cast<std::size_t>(rank)] =
            box_subarray(ghosted_, owned_.xs, owned_.xm, owned_.ys, owned_.ym, owned_.zs,
                         owned_.zm);
    }

    // One exchange per stencil neighbor.
    const int dy_range = (dim_ >= 2) ? 1 : 0;
    const int dz_range = (dim_ >= 3) ? 1 : 0;
    for (int dz = -dz_range; dz <= dz_range; ++dz) {
        for (int dy = -dy_range; dy <= dy_range; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                if (dx == 0 && dy == 0 && dz == 0) continue;
                const int nonzero = (dx != 0) + (dy != 0) + (dz != 0);
                if (stencil_ == Stencil::Star && nonzero > 1) continue;
                const int ncx = cx_ + dx, ncy = cy_ + dy, ncz = cz_ + dz;
                if (ncx < 0 || ncx >= px_ || ncy < 0 || ncy >= py_ || ncz < 0 || ncz >= pz_) {
                    continue;  // domain boundary: no neighbor
                }
                if (sw_ == 0) continue;
                const int nrank = ncx + px_ * (ncy + py_ * ncz);

                // Send slab: the strip of my owned box facing the neighbor.
                auto send_span = [&](int d, Index s, Index m) -> std::pair<Index, Index> {
                    if (d < 0) return {s, sw_};
                    if (d > 0) return {s + m - sw_, sw_};
                    return {s, m};
                };
                const auto [sx0, swx] = send_span(dx, owned_.xs, owned_.xm);
                const auto [sy0, swy] = send_span(dy, owned_.ys, owned_.ym);
                const auto [sz0, szw] = send_span(dz, owned_.zs, owned_.zm);
                g2l_scounts_[static_cast<std::size_t>(nrank)] = 1;
                g2l_stypes_[static_cast<std::size_t>(nrank)] =
                    box_subarray(owned_, sx0, swx, sy0, swy, sz0, szw);

                // Receive slab: my ghost strip in the neighbor's direction.
                auto recv_span = [&](int d, Index s, Index m) -> std::pair<Index, Index> {
                    if (d < 0) return {s - sw_, sw_};
                    if (d > 0) return {s + m, sw_};
                    return {s, m};
                };
                const auto [rx0, rwx] = recv_span(dx, owned_.xs, owned_.xm);
                const auto [ry0, rwy] = recv_span(dy, owned_.ys, owned_.ym);
                const auto [rz0, rzw] = recv_span(dz, owned_.zs, owned_.zm);
                g2l_rcounts_[static_cast<std::size_t>(nrank)] = 1;
                g2l_rtypes_[static_cast<std::size_t>(nrank)] =
                    box_subarray(ghosted_, rx0, rwx, ry0, rwy, rz0, rzw);

                Neighbor nb;
                nb.rank = nrank;
                nb.dx = dx;
                nb.dy = dy;
                nb.dz = dz;
                nb.send_bytes = static_cast<std::uint64_t>(swx) * static_cast<std::uint64_t>(swy) *
                                static_cast<std::uint64_t>(szw) *
                                static_cast<std::uint64_t>(dof_) * 8;
                nb.send_blocks = g2l_stypes_[static_cast<std::size_t>(nrank)].block_count();
                nb.send_box = GridBox{sx0, swx, sy0, swy, sz0, szw};
                nb.recv_box = GridBox{rx0, rwx, ry0, rwy, rz0, rzw};
                neighbors_.push_back(nb);
            }
        }
    }
}

void DMDA::global_to_local(const Vec& global, std::span<double> local,
                           const coll::CollConfig& config) const {
    coll::CollRequest req = global_to_local_begin(global, local, config);
    global_to_local_end(req);
}

coll::CollRequest DMDA::global_to_local_begin(const Vec& global, std::span<double> local,
                                              const coll::CollConfig& config) const {
    NNCOMM_CHECK_MSG(global.local_size() == owned_.volume() * dof_,
                     "global_to_local: global vector does not match this DMDA");
    NNCOMM_CHECK_MSG(static_cast<Index>(local.size()) == ghosted_.volume() * dof_,
                     "global_to_local: local array has the wrong size");
    return coll::ialltoallw(*comm_, global.data(), g2l_scounts_, g2l_sdispls_, g2l_stypes_,
                            local.data(), g2l_rcounts_, g2l_rdispls_, g2l_rtypes_, config);
}

void DMDA::build_sparse_exchange() const {
    const int n = comm_->size();
    const Index sw = sw_;

    // My ghost slots: every ghosted point some neighbor slab covers, in
    // ghosted-storage order. The recv_box test (rather than "not owned")
    // matters for Star stencils, where corner regions of the ghosted box
    // are never exchanged and must stay untouched — exactly like the dense
    // path's subarray receives.
    std::vector<Index> needed;
    sparse_ghost_local_.clear();
    for (Index k = ghosted_.zs; k < ghosted_.zs + ghosted_.zm; ++k) {
        for (Index j = ghosted_.ys; j < ghosted_.ys + ghosted_.ym; ++j) {
            for (Index i = ghosted_.xs; i < ghosted_.xs + ghosted_.xm; ++i) {
                if (owned_.contains(i, j, k)) continue;
                bool covered = false;
                for (const Neighbor& nb : neighbors_) {
                    if (nb.recv_box.contains(i, j, k)) {
                        covered = true;
                        break;
                    }
                }
                if (!covered) continue;
                for (int c = 0; c < dof_; ++c) {
                    needed.push_back(global_index(i, j, k, c));
                    sparse_ghost_local_.push_back(local_index(i, j, k, c));
                }
            }
        }
    }

    // Every rank's slot count, computed locally (the mirror of the recv
    // slabs each rank derives in build_exchange): one slab per in-domain
    // stencil neighbor, slabs disjoint by direction sign.
    std::vector<Index> counts(static_cast<std::size_t>(n), 0);
    if (sw > 0) {
        const int dy_range = (dim_ >= 2) ? 1 : 0;
        const int dz_range = (dim_ >= 3) ? 1 : 0;
        for (int r = 0; r < n; ++r) {
            const int rcx = r % px_;
            const int rcy = (r / px_) % py_;
            const int rcz = r / (px_ * py_);
            const GridBox o = owned_box_of(r);
            Index vol = 0;
            for (int dz = -dz_range; dz <= dz_range; ++dz) {
                for (int dy = -dy_range; dy <= dy_range; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                        if (dx == 0 && dy == 0 && dz == 0) continue;
                        const int nonzero = (dx != 0) + (dy != 0) + (dz != 0);
                        if (stencil_ == Stencil::Star && nonzero > 1) continue;
                        const int ncx = rcx + dx, ncy = rcy + dy, ncz = rcz + dz;
                        if (ncx < 0 || ncx >= px_ || ncy < 0 || ncy >= py_ || ncz < 0 ||
                            ncz >= pz_) {
                            continue;
                        }
                        vol += ((dx == 0) ? o.xm : sw) * ((dy == 0) ? o.ym : sw) *
                               ((dz == 0) ? o.zm : sw);
                    }
                }
            }
            counts[static_cast<std::size_t>(r)] = vol * static_cast<Index>(dof_);
        }
    }
    NNCOMM_CHECK_MSG(counts[static_cast<std::size_t>(comm_->rank())] ==
                         static_cast<Index>(needed.size()),
                     "DMDA sparse exchange: slot-count model disagrees with enumeration");

    auto ghost_layout = std::make_shared<const Layout>(Layout::from_counts(counts));
    sparse_ghost_vec_ = std::make_unique<Vec>(*comm_, ghost_layout);
    sparse_scatter_ = std::make_unique<VecScatter>(
        VecScatter::gather_sparse(*comm_, *layout_, needed, *ghost_layout));
}

void DMDA::global_to_local_sparse(const Vec& global, std::span<double> local) const {
    NNCOMM_CHECK_MSG(global.local_size() == owned_.volume() * dof_,
                     "global_to_local_sparse: global vector does not match this DMDA");
    NNCOMM_CHECK_MSG(static_cast<Index>(local.size()) == ghosted_.volume() * dof_,
                     "global_to_local_sparse: local array has the wrong size");
    if (!sparse_scatter_) build_sparse_exchange();

    // Owned region: straight local copy (the dense path's self subarray).
    {
        const double* g = global.data();
        const std::size_t row = static_cast<std::size_t>(owned_.xm) *
                                static_cast<std::size_t>(dof_);
        std::size_t gpos = 0;
        for (Index k = owned_.zs; k < owned_.zs + owned_.zm; ++k) {
            for (Index j = owned_.ys; j < owned_.ys + owned_.ym; ++j) {
                const Index l0 = local_index(owned_.xs, j, k, 0);
                std::memcpy(local.data() + l0, g + gpos, row * sizeof(double));
                gpos += row;
            }
        }
    }

    // Ghost slots: gather into the scratch vector, then place each slot at
    // its ghosted-storage offset.
    sparse_scatter_->execute(global, *sparse_ghost_vec_, ScatterBackend::DatatypeOptimized);
    const double* s = sparse_ghost_vec_->data();
    for (std::size_t t = 0; t < sparse_ghost_local_.size(); ++t) {
        local[static_cast<std::size_t>(sparse_ghost_local_[t])] = s[t];
    }
}

void DMDA::local_to_global_add(std::span<const double> local, Vec& global) const {
    NNCOMM_CHECK_MSG(global.local_size() == owned_.volume() * dof_,
                     "local_to_global_add: global vector does not match this DMDA");
    NNCOMM_CHECK_MSG(static_cast<Index>(local.size()) == ghosted_.volume() * dof_,
                     "local_to_global_add: local array has the wrong size");
    constexpr int kTag = 0x6DDA;

    // Each neighbor receives my ghost slab facing it — exactly the region
    // its global_to_local sends me (send_box), so I post receives sized by
    // my own send boxes and accumulate them into the owned region.
    std::vector<std::vector<double>> recv_bufs(neighbors_.size());
    std::vector<rt::Request> recv_reqs;
    recv_reqs.reserve(neighbors_.size());
    for (std::size_t i = 0; i < neighbors_.size(); ++i) {
        recv_bufs[i].resize(static_cast<std::size_t>(neighbors_[i].send_box.volume()) *
                            static_cast<std::size_t>(dof_));
        recv_reqs.push_back(comm_->irecv(recv_bufs[i].data(), recv_bufs[i].size() * 8,
                                         dt::Datatype::byte(), neighbors_[i].rank, kTag));
    }

    // Pack and send my ghost slabs (row-major within the slab).
    std::vector<std::vector<double>> send_bufs(neighbors_.size());
    for (std::size_t i = 0; i < neighbors_.size(); ++i) {
        const GridBox& b = neighbors_[i].recv_box;
        auto& buf = send_bufs[i];
        buf.reserve(static_cast<std::size_t>(b.volume()) * static_cast<std::size_t>(dof_));
        for (Index k = b.zs; k < b.zs + b.zm; ++k) {
            for (Index j = b.ys; j < b.ys + b.ym; ++j) {
                const Index l0 = local_index(b.xs, j, k, 0);
                buf.insert(buf.end(), local.data() + l0,
                           local.data() + l0 + b.xm * static_cast<Index>(dof_));
            }
        }
        comm_->isend(buf.data(), buf.size() * 8, dt::Datatype::byte(), neighbors_[i].rank,
                     kTag);
    }

    // Owned region accumulates locally meanwhile.
    {
        double* g = global.data();
        std::size_t gpos = 0;
        for (Index k = owned_.zs; k < owned_.zs + owned_.zm; ++k) {
            for (Index j = owned_.ys; j < owned_.ys + owned_.ym; ++j) {
                const Index l0 = local_index(owned_.xs, j, k, 0);
                const auto row = static_cast<std::size_t>(owned_.xm) *
                                 static_cast<std::size_t>(dof_);
                for (std::size_t t = 0; t < row; ++t) {
                    g[gpos + t] += local[static_cast<std::size_t>(l0) + t];
                }
                gpos += row;
            }
        }
    }

    comm_->waitall(recv_reqs);
    for (std::size_t i = 0; i < neighbors_.size(); ++i) {
        const GridBox& b = neighbors_[i].send_box;  // region of MY owned box
        double* g = global.data();
        std::size_t at = 0;
        for (Index k = b.zs; k < b.zs + b.zm; ++k) {
            for (Index j = b.ys; j < b.ys + b.ym; ++j) {
                for (Index i2 = b.xs; i2 < b.xs + b.xm; ++i2) {
                    const Index gidx =
                        (((k - owned_.zs) * owned_.ym + (j - owned_.ys)) * owned_.xm +
                         (i2 - owned_.xs)) *
                        dof_;
                    for (int comp = 0; comp < dof_; ++comp, ++at) {
                        g[gidx + comp] += recv_bufs[i][at];
                    }
                }
            }
        }
    }
}

void DMDA::local_to_global(std::span<const double> local, Vec& global) const {
    NNCOMM_CHECK_MSG(global.local_size() == owned_.volume() * dof_,
                     "local_to_global: global vector does not match this DMDA");
    NNCOMM_CHECK_MSG(static_cast<Index>(local.size()) == ghosted_.volume() * dof_,
                     "local_to_global: local array has the wrong size");
    // Row-by-row copy of the owned region out of the ghosted array.
    double* g = global.data();
    const std::size_t row_bytes = static_cast<std::size_t>(owned_.xm) *
                                  static_cast<std::size_t>(dof_) * sizeof(double);
    std::size_t gpos = 0;
    for (Index k = owned_.zs; k < owned_.zs + owned_.zm; ++k) {
        for (Index j = owned_.ys; j < owned_.ys + owned_.ym; ++j) {
            const Index l0 = local_index(owned_.xs, j, k, 0);
            std::memcpy(g + gpos, local.data() + l0, row_bytes);
            gpos += static_cast<std::size_t>(owned_.xm) * static_cast<std::size_t>(dof_);
        }
    }
}

}  // namespace nncomm::pk

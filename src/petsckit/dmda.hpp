// DMDA: distributed 1/2/3-D structured grids (PETSc's DMDA / "DA").
//
// The grid is decomposed over a process grid px × py × pz (tensor-product
// decomposition, each axis split with split_ownership). Each rank owns a
// box of grid points; a point carries `dof` interlaced field values.
// Global vectors store the owned box contiguously per rank (x fastest,
// then y, then z, dof innermost — PETSc's ordering).
//
// Ghost exchange (global_to_local) fills a rank-local "ghosted" array that
// extends the owned box by the stencil width in every direction with data
// owned by neighbor ranks:
//   Star stencil — neighbors along the axes only (faces);
//   Box stencil  — also edge and corner neighbors.
// The exchange is exactly the paper's motivating pattern: per-neighbor
// subarray datatypes (noncontiguous, strided slabs) moved with Alltoallw,
// where face slabs are much larger than edge/corner slabs (nonuniform
// volumes) and non-neighbors exchange nothing (zero volumes).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "coll/collectives.hpp"
#include "coll/schedule.hpp"
#include "petsckit/scatter.hpp"
#include "petsckit/vec.hpp"

namespace nncomm::pk {

enum class Stencil { Star, Box };

struct GridSize {
    Index m = 1;  ///< points along x
    Index n = 1;  ///< points along y
    Index p = 1;  ///< points along z
};

/// A box of grid points in global coordinates: [xs, xs+xm) x [ys, ...] ...
struct GridBox {
    Index xs = 0, xm = 1;
    Index ys = 0, ym = 1;
    Index zs = 0, zm = 1;
    Index volume() const { return xm * ym * zm; }
    bool contains(Index i, Index j, Index k) const {
        return i >= xs && i < xs + xm && j >= ys && j < ys + ym && k >= zs && k < zs + zm;
    }
};

class DMDA {
public:
    DMDA(rt::Comm& comm, int dim, GridSize size, int dof, int stencil_width, Stencil stencil);

    // -- shape -------------------------------------------------------------------
    rt::Comm& comm() const { return *comm_; }
    int dim() const { return dim_; }
    GridSize grid() const { return size_; }
    int dof() const { return dof_; }
    int stencil_width() const { return sw_; }
    Stencil stencil() const { return stencil_; }
    /// Process-grid extents (px, py, pz).
    std::array<int, 3> proc_grid() const { return {px_, py_, pz_}; }
    /// This rank's process-grid coordinates.
    std::array<int, 3> proc_coords() const { return {cx_, cy_, cz_}; }

    const GridBox& owned() const { return owned_; }
    const GridBox& ghosted() const { return ghosted_; }

    /// The owned box of an arbitrary rank (computable locally).
    GridBox owned_box_of(int rank) const;

    // -- vectors -----------------------------------------------------------------
    std::shared_ptr<const Layout> layout() const { return layout_; }
    Vec create_global() const { return Vec(*comm_, layout_); }
    /// Zeroed ghosted storage: ghosted().volume() * dof doubles.
    std::vector<double> create_local() const {
        return std::vector<double>(static_cast<std::size_t>(ghosted_.volume()) *
                                       static_cast<std::size_t>(dof_),
                                   0.0);
    }

    /// Fills `local` (ghosted storage) from the global vector: owned region
    /// plus all ghost slabs from neighbors. Collective.
    void global_to_local(const Vec& global, std::span<double> local,
                         const coll::CollConfig& config = {}) const;

    /// Split-phase ghost exchange: fires the Alltoallw schedule and returns
    /// while the ghost slabs are in flight. The owned region of `local` is
    /// already filled when this returns (the self copy runs inside begin),
    /// so interior stencil points can be computed before _end. Drive the
    /// returned request with test() for overlap progress; complete it with
    /// global_to_local_end. begin + end is bit-identical to
    /// global_to_local.
    coll::CollRequest global_to_local_begin(const Vec& global, std::span<double> local,
                                            const coll::CollConfig& config = {}) const;
    /// Completes a split-phase ghost exchange begun by global_to_local_begin.
    static void global_to_local_end(coll::CollRequest& req) { req.wait(); }

    /// Ghost exchange through the sparse-discovery path: same data motion
    /// and bit-identical result to global_to_local, but the plan — built
    /// lazily on the first call — discovers its neighborhood with one
    /// rt::sparse_exchange (via VecScatter::gather_sparse) instead of
    /// walking precomputed dense per-rank Alltoallw arrays. Each rank
    /// enumerates only its own ghost points; no rank ever materializes
    /// O(p) metadata about non-neighbors. Collective.
    void global_to_local_sparse(const Vec& global, std::span<double> local) const;

    /// The lazily built sparse-discovery scatter (nullptr until the first
    /// global_to_local_sparse call) — introspection for tests/benches.
    const VecScatter* sparse_plan() const { return sparse_scatter_.get(); }

    /// Copies the owned region of `local` back into the global vector
    /// (insert mode; purely local).
    void local_to_global(std::span<const double> local, Vec& global) const;

    /// Accumulates the entire ghosted array into the global vector: owned
    /// region plus every ghost point's value added to its owning rank
    /// (PETSc's DMLocalToGlobal with ADD_VALUES) — the adjoint of
    /// global_to_local, used for ghosted assembly. Collective.
    void local_to_global_add(std::span<const double> local, Vec& global) const;

    // -- indexing ------------------------------------------------------------------
    /// Global (PETSc-ordering) vector index of grid point (i, j, k),
    /// component c. Works for any point in the domain, owned or not.
    Index global_index(Index i, Index j, Index k, int c = 0) const;
    /// Index into this rank's ghosted storage (point must lie in ghosted()).
    Index local_index(Index i, Index j, Index k, int c = 0) const;
    bool owns(Index i, Index j, Index k) const { return owned_.contains(i, j, k); }

    // -- ghost-exchange introspection ------------------------------------------------
    struct Neighbor {
        int rank = -1;
        int dx = 0, dy = 0, dz = 0;
        std::uint64_t send_bytes = 0;   ///< ghost payload sent to this neighbor
        std::uint64_t send_blocks = 0;  ///< contiguous blocks in the send slab
        GridBox send_box{};  ///< owned slab sent in global_to_local (global coords)
        GridBox recv_box{};  ///< ghost slab received in global_to_local
    };
    /// Neighbors this rank exchanges ghosts with (excludes self).
    const std::vector<Neighbor>& neighbors() const { return neighbors_; }

    /// Deterministic process-grid factorization (exposed for tests and the
    /// simulator bridge): splits nprocs into (px, py, pz) minimizing
    /// communication surface subject to axis extents.
    static std::array<int, 3> factor_grid(int nprocs, int dim, GridSize size);

    // -- communicator-free decomposition (simulator bridge) ---------------------
    /// The owned boxes of all ranks of a hypothetical DMDA — pure math, no
    /// communicator. Used by the benchmark harness to compute 128-process
    /// traffic matrices on a small host.
    static std::vector<GridBox> decompose(int nprocs, int dim, GridSize size);

    struct TrafficEntry {
        int src = -1;
        int dst = -1;
        std::uint64_t bytes = 0;   ///< ghost slab payload
        std::uint64_t blocks = 0;  ///< contiguous runs in the send slab
    };
    /// Every ghost-exchange message of one global_to_local on a
    /// hypothetical DMDA (self transfers excluded) — matches what
    /// neighbors() reports on a live instance.
    static std::vector<TrafficEntry> ghost_traffic(int nprocs, int dim, GridSize size, int dof,
                                                   int stencil_width, Stencil stencil);

private:
    void build_exchange();
    GridBox ghosted_box_of(int rank) const;
    void build_sparse_exchange() const;

    rt::Comm* comm_;
    int dim_;
    GridSize size_;
    int dof_;
    int sw_;
    Stencil stencil_;

    int px_ = 1, py_ = 1, pz_ = 1;
    int cx_ = 0, cy_ = 0, cz_ = 0;
    GridBox owned_{};
    GridBox ghosted_{};
    std::shared_ptr<const Layout> layout_;

    std::vector<Neighbor> neighbors_;
    // Prebuilt Alltoallw arrays for the ghost exchange.
    std::vector<std::size_t> g2l_scounts_, g2l_rcounts_;
    std::vector<std::ptrdiff_t> g2l_sdispls_, g2l_rdispls_;
    std::vector<dt::Datatype> g2l_stypes_, g2l_rtypes_;

    // Sparse-discovery ghost path, built lazily by the first
    // global_to_local_sparse (each rank thread owns its DMDA, like its
    // Comm, so mutable-without-locks is safe).
    mutable std::unique_ptr<VecScatter> sparse_scatter_;
    mutable std::vector<Index> sparse_ghost_local_;  ///< ghosted-storage offset per slot
    mutable std::unique_ptr<Vec> sparse_ghost_vec_;  ///< landing scratch for the gather
};

}  // namespace nncomm::pk

// Index sets (PETSc IS): ordered lists of global indices used to describe
// the source and destination of a VecScatter.
//
// petsckit index sets are replicated: every rank holds the full list. This
// matches how the paper's vector-scatter benchmark uses them (each process
// scatters its portion of one 1-D grid to unique portions of another) and
// keeps scatter planning communication-free; see scatter.hpp.
#pragma once

#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include "petsckit/layout.hpp"

namespace nncomm::pk {

class IndexSet {
public:
    IndexSet() = default;

    /// Arbitrary indices, in order.
    static IndexSet general(std::vector<Index> indices) {
        IndexSet is;
        is.idx_ = std::move(indices);
        return is;
    }

    /// first, first + step, ..., n entries.
    static IndexSet stride(Index first, Index step, Index n) {
        NNCOMM_CHECK_MSG(n >= 0, "IndexSet::stride: negative length");
        IndexSet is;
        is.idx_.resize(static_cast<std::size_t>(n));
        for (Index i = 0; i < n; ++i) is.idx_[static_cast<std::size_t>(i)] = first + i * step;
        return is;
    }

    /// Block indices expanded to element indices: for each block b,
    /// indices b*bs .. b*bs+bs-1.
    static IndexSet block(Index bs, std::span<const Index> blocks) {
        NNCOMM_CHECK_MSG(bs >= 1, "IndexSet::block: block size must be >= 1");
        IndexSet is;
        is.idx_.reserve(blocks.size() * static_cast<std::size_t>(bs));
        for (Index b : blocks) {
            for (Index j = 0; j < bs; ++j) is.idx_.push_back(b * bs + j);
        }
        return is;
    }

    /// 0, 1, ..., n-1.
    static IndexSet identity(Index n) { return stride(0, 1, n); }

    std::size_t size() const { return idx_.size(); }
    bool empty() const { return idx_.empty(); }
    Index operator[](std::size_t k) const { return idx_[k]; }
    std::span<const Index> indices() const { return idx_; }

    Index min() const {
        NNCOMM_CHECK(!idx_.empty());
        return *std::min_element(idx_.begin(), idx_.end());
    }
    Index max() const {
        NNCOMM_CHECK(!idx_.empty());
        return *std::max_element(idx_.begin(), idx_.end());
    }

private:
    std::vector<Index> idx_;
};

}  // namespace nncomm::pk

#include "petsckit/ksp.hpp"

namespace nncomm::pk {

JacobiPreconditioner::JacobiPreconditioner(Vec diag) : inv_diag_(std::move(diag)) {
    for (double& v : inv_diag_.local()) {
        NNCOMM_CHECK_MSG(v != 0.0, "JacobiPreconditioner: zero diagonal entry");
        v = 1.0 / v;
    }
}

void JacobiPreconditioner::apply(const Vec& x, Vec& y) const {
    y.pointwise_mult(inv_diag_, x);
}

KspResult cg(const LinearOperator& A, const Vec& b, Vec& x, const KspConfig& config,
             const LinearOperator* precond) {
    Vec r = b.clone_empty();
    Vec z = b.clone_empty();
    Vec p = b.clone_empty();
    Vec Ap = b.clone_empty();

    // r = b - A x
    A.apply(x, Ap);
    r.waxpy_diff(b, Ap);

    const double r0 = r.norm2();
    KspResult result;
    result.residual_norm = r0;
    if (r0 <= config.atol) {
        result.converged = true;
        return result;
    }

    if (precond) precond->apply(r, z);
    else z.copy_from(r);
    p.copy_from(z);
    double rz = r.dot(z);

    for (int it = 1; it <= config.max_iters; ++it) {
        A.apply(p, Ap);
        const double pAp = p.dot(Ap);
        NNCOMM_CHECK_MSG(pAp > 0.0, "cg: operator is not positive definite");
        const double alpha = rz / pAp;
        x.axpy(alpha, p);
        r.axpy(-alpha, Ap);

        const double rnorm = r.norm2();
        result.iterations = it;
        result.residual_norm = rnorm;
        if (rnorm <= config.rtol * r0 || rnorm <= config.atol) {
            result.converged = true;
            return result;
        }

        if (precond) precond->apply(r, z);
        else z.copy_from(r);
        const double rz_new = r.dot(z);
        const double beta = rz_new / rz;
        rz = rz_new;
        // p = z + beta p
        p.aypx(beta, z);
    }
    return result;
}

KspResult gmres(const LinearOperator& A, const Vec& b, Vec& x, const GmresConfig& config,
                const LinearOperator* precond) {
    NNCOMM_CHECK_MSG(config.restart >= 1, "gmres: restart must be >= 1");
    const int m = config.restart;
    KspResult result;

    Vec w = b.clone_empty();
    Vec z = b.clone_empty();
    std::vector<Vec> basis;  // Krylov vectors V_0..V_m
    basis.reserve(static_cast<std::size_t>(m) + 1);

    // Hessenberg (column-major, (m+1) x m), Givens rotations, residual rhs.
    std::vector<double> H(static_cast<std::size_t>((m + 1) * m), 0.0);
    auto h = [&](int i, int j) -> double& {
        return H[static_cast<std::size_t>(j * (m + 1) + i)];
    };
    std::vector<double> cs(static_cast<std::size_t>(m)), sn(static_cast<std::size_t>(m));
    std::vector<double> g(static_cast<std::size_t>(m) + 1);

    // Initial (preconditioned) residual norm for the relative tolerance.
    A.apply(x, w);
    w.waxpy_diff(b, w);
    if (precond) {
        precond->apply(w, z);
    } else {
        z.copy_from(w);
    }
    const double r0 = z.norm2();
    result.residual_norm = r0;
    if (r0 <= config.atol) {
        result.converged = true;
        return result;
    }

    int total_iters = 0;
    while (total_iters < config.max_iters) {
        // (Re)start: V_0 = M r / ||M r||.
        A.apply(x, w);
        w.waxpy_diff(b, w);
        if (precond) precond->apply(w, z);
        else z.copy_from(w);
        const double beta = z.norm2();
        result.residual_norm = beta;
        if (beta <= config.rtol * r0 || beta <= config.atol) {
            result.converged = true;
            return result;
        }
        basis.clear();
        basis.push_back(z.clone_empty());
        basis[0].copy_from(z);
        basis[0].scale(1.0 / beta);
        std::fill(g.begin(), g.end(), 0.0);
        g[0] = beta;

        int k = 0;  // columns built this cycle
        for (; k < m && total_iters < config.max_iters; ++k, ++total_iters) {
            // Arnoldi: w = M A V_k, modified Gram-Schmidt.
            A.apply(basis[static_cast<std::size_t>(k)], w);
            if (precond) {
                precond->apply(w, z);
            } else {
                z.copy_from(w);
            }
            for (int i = 0; i <= k; ++i) {
                const double hik = z.dot(basis[static_cast<std::size_t>(i)]);
                h(i, k) = hik;
                z.axpy(-hik, basis[static_cast<std::size_t>(i)]);
            }
            const double hnext = z.norm2();
            h(k + 1, k) = hnext;

            // Apply previous Givens rotations to the new column.
            for (int i = 0; i < k; ++i) {
                const double t = cs[static_cast<std::size_t>(i)] * h(i, k) +
                                 sn[static_cast<std::size_t>(i)] * h(i + 1, k);
                h(i + 1, k) = -sn[static_cast<std::size_t>(i)] * h(i, k) +
                              cs[static_cast<std::size_t>(i)] * h(i + 1, k);
                h(i, k) = t;
            }
            // New rotation annihilating h(k+1, k).
            const double denom = std::sqrt(h(k, k) * h(k, k) + hnext * hnext);
            if (denom == 0.0) {
                cs[static_cast<std::size_t>(k)] = 1.0;
                sn[static_cast<std::size_t>(k)] = 0.0;
            } else {
                cs[static_cast<std::size_t>(k)] = h(k, k) / denom;
                sn[static_cast<std::size_t>(k)] = hnext / denom;
            }
            h(k, k) = denom;
            g[static_cast<std::size_t>(k) + 1] = -sn[static_cast<std::size_t>(k)] *
                                                 g[static_cast<std::size_t>(k)];
            g[static_cast<std::size_t>(k)] *= cs[static_cast<std::size_t>(k)];

            result.iterations = total_iters + 1;
            result.residual_norm = std::abs(g[static_cast<std::size_t>(k) + 1]);
            const bool happy = hnext == 0.0;  // exact Krylov breakdown
            if (result.residual_norm <= config.rtol * r0 ||
                result.residual_norm <= config.atol || happy) {
                ++k;
                result.converged = true;
                break;
            }
            basis.push_back(z.clone_empty());
            basis.back().copy_from(z);
            basis.back().scale(1.0 / hnext);
        }

        // Solve the k x k triangular system and update x.
        std::vector<double> y(static_cast<std::size_t>(k), 0.0);
        for (int i = k - 1; i >= 0; --i) {
            double acc = g[static_cast<std::size_t>(i)];
            for (int j = i + 1; j < k; ++j) acc -= h(i, j) * y[static_cast<std::size_t>(j)];
            NNCOMM_CHECK_MSG(h(i, i) != 0.0, "gmres: singular Hessenberg diagonal");
            y[static_cast<std::size_t>(i)] = acc / h(i, i);
        }
        for (int i = 0; i < k; ++i) {
            x.axpy(y[static_cast<std::size_t>(i)], basis[static_cast<std::size_t>(i)]);
        }
        if (result.converged) return result;
    }
    return result;
}

void richardson(const LinearOperator& A, const Vec& b, Vec& x, double omega, int iters,
                const LinearOperator* precond) {
    Vec r = b.clone_empty();
    Vec Ax = b.clone_empty();
    Vec z = b.clone_empty();
    for (int it = 0; it < iters; ++it) {
        A.apply(x, Ax);
        r.waxpy_diff(b, Ax);
        if (precond) {
            precond->apply(r, z);
            x.axpy(omega, z);
        } else {
            x.axpy(omega, r);
        }
    }
}

void chebyshev(const LinearOperator& A, const Vec& b, Vec& x, double lambda_min,
               double lambda_max, int iters, const LinearOperator* precond) {
    NNCOMM_CHECK_MSG(lambda_max > lambda_min && lambda_min > 0.0,
                     "chebyshev: need 0 < lambda_min < lambda_max");
    // Standard three-term Chebyshev recurrence (Saad, Iterative Methods,
    // alg. 12.1) on the interval [lambda_min, lambda_max].
    const double theta = 0.5 * (lambda_max + lambda_min);
    const double delta = 0.5 * (lambda_max - lambda_min);
    const double sigma1 = theta / delta;
    double rho = 1.0 / sigma1;

    Vec r = b.clone_empty();
    Vec z = b.clone_empty();
    Vec d = b.clone_empty();
    Vec Ax = b.clone_empty();

    A.apply(x, Ax);
    r.waxpy_diff(b, Ax);
    if (precond) precond->apply(r, z);
    else z.copy_from(r);
    // d = z / theta
    d.copy_from(z);
    d.scale(1.0 / theta);

    for (int it = 0; it < iters; ++it) {
        x.axpy(1.0, d);
        A.apply(x, Ax);
        r.waxpy_diff(b, Ax);
        if (precond) precond->apply(r, z);
        else z.copy_from(r);
        const double rho_next = 1.0 / (2.0 * sigma1 - rho);
        // d = rho_next * rho * d + (2 * rho_next / delta) * z
        d.scale(rho_next * rho);
        d.axpy(2.0 * rho_next / delta, z);
        rho = rho_next;
    }
}

double estimate_max_eigenvalue(const LinearOperator& A, const Vec& prototype, int iterations,
                               const LinearOperator* precond) {
    Vec v = prototype.clone_empty();
    Vec Av = prototype.clone_empty();
    Vec z = prototype.clone_empty();
    // Deterministic nonuniform start vector (a constant vector can be an
    // eigenvector of the smooth modes and stall the iteration).
    for (Index i = 0; i < v.local_size(); ++i) {
        const Index g = v.range().begin + i;
        v.data()[i] = 1.0 + 0.5 * std::sin(static_cast<double>(g) * 0.7);
    }
    double lambda = 1.0;
    for (int it = 0; it < iterations; ++it) {
        const double norm = v.norm2();
        NNCOMM_CHECK_MSG(norm > 0.0, "estimate_max_eigenvalue: zero iterate");
        v.scale(1.0 / norm);
        A.apply(v, Av);
        if (precond) {
            precond->apply(Av, z);
            lambda = v.dot(z);
            v.copy_from(z);
        } else {
            lambda = v.dot(Av);
            v.copy_from(Av);
        }
    }
    return lambda;
}

}  // namespace nncomm::pk

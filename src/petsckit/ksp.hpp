// Krylov solvers (PETSc KSP): preconditioned conjugate gradients and
// Richardson iteration, over an abstract LinearOperator so both assembled
// (MatAIJ) and matrix-free (stencil) operators plug in.
#pragma once

#include "petsckit/mat.hpp"
#include "petsckit/vec.hpp"

namespace nncomm::pk {

class LinearOperator {
public:
    virtual ~LinearOperator() = default;
    /// y = A x. Collective over the vectors' communicator.
    virtual void apply(const Vec& x, Vec& y) const = 0;
};

/// Adapter for assembled matrices.
class MatOperator final : public LinearOperator {
public:
    explicit MatOperator(const MatAIJ& mat) : mat_(&mat) {}
    void apply(const Vec& x, Vec& y) const override { mat_->mult(x, y); }

private:
    const MatAIJ* mat_;
};

/// Identity (no-op preconditioner).
class IdentityOperator final : public LinearOperator {
public:
    void apply(const Vec& x, Vec& y) const override { y.copy_from(x); }
};

/// Diagonal (Jacobi) preconditioner: z = D^{-1} r.
class JacobiPreconditioner final : public LinearOperator {
public:
    /// `diag` must hold the operator's diagonal (all entries nonzero).
    explicit JacobiPreconditioner(Vec diag);
    void apply(const Vec& x, Vec& y) const override;

private:
    Vec inv_diag_;
};

struct KspConfig {
    double rtol = 1e-8;   ///< relative residual tolerance (vs initial)
    double atol = 1e-50;  ///< absolute residual tolerance
    int max_iters = 1000;
};

struct KspResult {
    bool converged = false;
    int iterations = 0;
    double residual_norm = 0.0;
};

/// Preconditioned conjugate gradients; A (and M, if given) must be SPD.
/// Uses x as the initial guess and overwrites it with the solution.
KspResult cg(const LinearOperator& A, const Vec& b, Vec& x, const KspConfig& config = {},
             const LinearOperator* precond = nullptr);

struct GmresConfig {
    double rtol = 1e-8;
    double atol = 1e-50;
    int max_iters = 1000;  ///< total inner iterations across restarts
    int restart = 30;      ///< Krylov basis size per cycle (GMRES(m))
};

/// Restarted GMRES with left preconditioning and Givens rotations — for
/// general (nonsymmetric) operators such as advection-diffusion.
KspResult gmres(const LinearOperator& A, const Vec& b, Vec& x, const GmresConfig& config = {},
                const LinearOperator* precond = nullptr);

/// Damped Richardson iteration x += omega * M(b - A x), `iters` sweeps (no
/// convergence test — used as a smoother).
void richardson(const LinearOperator& A, const Vec& b, Vec& x, double omega, int iters,
                const LinearOperator* precond = nullptr);

/// Chebyshev semi-iteration on the preconditioned system M A, smoothing the
/// eigencomponents in [lambda_min, lambda_max] (PETSc's default multigrid
/// smoother). No convergence test; `iters` polynomial degrees.
void chebyshev(const LinearOperator& A, const Vec& b, Vec& x, double lambda_min,
               double lambda_max, int iters, const LinearOperator* precond = nullptr);

/// Estimates the largest eigenvalue of M A (or A) by power iteration —
/// used to bound the Chebyshev interval. Collective; deterministic.
double estimate_max_eigenvalue(const LinearOperator& A, const Vec& prototype, int iterations,
                               const LinearOperator* precond = nullptr);

}  // namespace nncomm::pk

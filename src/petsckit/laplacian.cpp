#include "petsckit/laplacian.hpp"

namespace nncomm::pk {

LaplacianOp::LaplacianOp(std::shared_ptr<const DMDA> dmda, coll::CollConfig config)
    : dmda_(std::move(dmda)), config_(config) {
    NNCOMM_CHECK_MSG(dmda_->dof() == 1, "LaplacianOp: dof must be 1");
    NNCOMM_CHECK_MSG(dmda_->stencil_width() >= 1, "LaplacianOp: needs stencil width >= 1");
    const Index m = dmda_->grid().m;
    NNCOMM_CHECK_MSG(m >= 2, "LaplacianOp: grid too small");
    h_ = 1.0 / static_cast<double>(m - 1);
    inv_h2_ = 1.0 / (h_ * h_);
    ghosted_ = dmda_->create_local();
}

bool LaplacianOp::on_boundary(Index i, Index j, Index k) const {
    const GridSize g = dmda_->grid();
    if (i == 0 || i == g.m - 1) return true;
    if (dmda_->dim() >= 2 && (j == 0 || j == g.n - 1)) return true;
    if (dmda_->dim() >= 3 && (k == 0 || k == g.p - 1)) return true;
    return false;
}

void LaplacianOp::apply(const Vec& x, Vec& y) const {
    const DMDA& da = *dmda_;
    const GridBox& o = da.owned();
    const int dim = da.dim();
    const double two_d = 2.0 * dim;
    double* out = y.data();
    const double* loc = ghosted_.data();

    // One stencil evaluation. Every point is computed exactly once with
    // this formula whether it runs before or after the ghost exchange
    // completes, so the overlapped apply is bit-identical to the blocking
    // one.
    auto point = [&](Index i, Index j, Index k) {
        const std::size_t at = static_cast<std::size_t>(
            ((k - o.zs) * o.ym + (j - o.ys)) * o.xm + (i - o.xs));
        const double center = loc[da.local_index(i, j, k)];
        if (on_boundary(i, j, k)) {
            out[at] = center;  // identity row (Dirichlet unknown)
            return;
        }
        double acc = two_d * center;
        // Couplings to boundary points are dropped (their values are
        // eliminated zeros).
        if (i > 1) acc -= loc[da.local_index(i - 1, j, k)];
        if (i < da.grid().m - 2) acc -= loc[da.local_index(i + 1, j, k)];
        if (dim >= 2) {
            if (j > 1) acc -= loc[da.local_index(i, j - 1, k)];
            if (j < da.grid().n - 2) acc -= loc[da.local_index(i, j + 1, k)];
        }
        if (dim >= 3) {
            if (k > 1) acc -= loc[da.local_index(i, j, k - 1)];
            if (k < da.grid().p - 2) acc -= loc[da.local_index(i, j, k + 1)];
        }
        out[at] = acc * inv_h2_;
    };

    // Split-phase ghost exchange: begin() has already filled the owned
    // region of ghosted_ (the schedule's self copy runs synchronously), so
    // the strictly-interior sweep — every point whose stencil touches only
    // owned points — overlaps the in-flight ghost slabs. The owned-box
    // shell, which reads ghost values, runs after the exchange completes.
    coll::CollRequest exchange = da.global_to_local_begin(x, ghosted_, config_);

    const Index ilo = o.xs + 1, ihi = o.xs + o.xm - 1;
    const Index jlo = dim >= 2 ? o.ys + 1 : o.ys, jhi = dim >= 2 ? o.ys + o.ym - 1 : o.ys + o.ym;
    const Index klo = dim >= 3 ? o.zs + 1 : o.zs, khi = dim >= 3 ? o.zs + o.zm - 1 : o.zs + o.zm;
    for (Index k = klo; k < khi; ++k) {
        for (Index j = jlo; j < jhi; ++j) {
            for (Index i = ilo; i < ihi; ++i) point(i, j, k);
        }
    }

    DMDA::global_to_local_end(exchange);

    auto on_shell = [&](Index i, Index j, Index k) {
        if (i == o.xs || i == o.xs + o.xm - 1) return true;
        if (dim >= 2 && (j == o.ys || j == o.ys + o.ym - 1)) return true;
        if (dim >= 3 && (k == o.zs || k == o.zs + o.zm - 1)) return true;
        return false;
    };
    for (Index k = o.zs; k < o.zs + o.zm; ++k) {
        for (Index j = o.ys; j < o.ys + o.ym; ++j) {
            for (Index i = o.xs; i < o.xs + o.xm; ++i) {
                if (on_shell(i, j, k)) point(i, j, k);
            }
        }
    }
}

void LaplacianOp::fill_diagonal(Vec& d) const {
    const DMDA& da = *dmda_;
    const GridBox& o = da.owned();
    const double diag_val = 2.0 * da.dim() * inv_h2_;
    double* out = d.data();
    std::size_t at = 0;
    for (Index k = o.zs; k < o.zs + o.zm; ++k) {
        for (Index j = o.ys; j < o.ys + o.ym; ++j) {
            for (Index i = o.xs; i < o.xs + o.xm; ++i, ++at) {
                out[at] = on_boundary(i, j, k) ? 1.0 : diag_val;
            }
        }
    }
}

void assemble_laplacian(MatAIJ& mat, const DMDA& dmda) {
    NNCOMM_CHECK_MSG(dmda.dof() == 1, "assemble_laplacian: dof must be 1");
    const GridBox& o = dmda.owned();
    const GridSize g = dmda.grid();
    const int dim = dmda.dim();
    const double h = 1.0 / static_cast<double>(g.m - 1);
    const double inv_h2 = 1.0 / (h * h);

    auto boundary = [&](Index i, Index j, Index k) {
        if (i == 0 || i == g.m - 1) return true;
        if (dim >= 2 && (j == 0 || j == g.n - 1)) return true;
        if (dim >= 3 && (k == 0 || k == g.p - 1)) return true;
        return false;
    };

    for (Index k = o.zs; k < o.zs + o.zm; ++k) {
        for (Index j = o.ys; j < o.ys + o.ym; ++j) {
            for (Index i = o.xs; i < o.xs + o.xm; ++i) {
                const Index row = dmda.global_index(i, j, k);
                if (boundary(i, j, k)) {
                    mat.set_value(row, row, 1.0);
                    continue;
                }
                mat.set_value(row, row, 2.0 * dim * inv_h2);
                auto couple = [&](Index ni, Index nj, Index nk) {
                    if (!boundary(ni, nj, nk)) {
                        mat.set_value(row, dmda.global_index(ni, nj, nk), -inv_h2);
                    }
                };
                couple(i - 1, j, k);
                couple(i + 1, j, k);
                if (dim >= 2) {
                    couple(i, j - 1, k);
                    couple(i, j + 1, k);
                }
                if (dim >= 3) {
                    couple(i, j, k - 1);
                    couple(i, j, k + 1);
                }
            }
        }
    }
}

void fill_rhs_constant(const DMDA& dmda, Vec& b, double value) {
    const GridBox& o = dmda.owned();
    const GridSize g = dmda.grid();
    const int dim = dmda.dim();
    auto boundary = [&](Index i, Index j, Index k) {
        if (i == 0 || i == g.m - 1) return true;
        if (dim >= 2 && (j == 0 || j == g.n - 1)) return true;
        if (dim >= 3 && (k == 0 || k == g.p - 1)) return true;
        return false;
    };
    double* out = b.data();
    std::size_t at = 0;
    for (Index k = o.zs; k < o.zs + o.zm; ++k) {
        for (Index j = o.ys; j < o.ys + o.ym; ++j) {
            for (Index i = o.xs; i < o.xs + o.xm; ++i, ++at) {
                out[at] = boundary(i, j, k) ? 0.0 : value;
            }
        }
    }
}

}  // namespace nncomm::pk

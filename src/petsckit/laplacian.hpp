// The (negative) Laplacian on a DMDA grid with homogeneous Dirichlet
// boundaries, in two equivalent forms:
//
//   LaplacianOp      — matrix-free: each apply performs a DMDA ghost
//                      exchange and evaluates the 3/5/7-point stencil
//                      (this is the operator the multigrid solver uses, so
//                      every smoothing sweep and residual evaluation
//                      triggers the paper's nonuniform, noncontiguous
//                      neighbor communication);
//   assemble_laplacian — the same operator assembled into a MatAIJ (used
//                      by tests to validate both paths against each other
//                      and by the Krylov examples).
//
// Boundary handling: boundary grid points are kept as unknowns with
// identity rows, and interior stencil couplings to boundary points are
// dropped (the eliminated values are zero), which keeps the operator
// symmetric positive definite. Grid spacing h = 1/(m-1) per axis, so the
// operator is (1/h²)(2d·I - adjacency) on interior points.
#pragma once

#include <memory>
#include <vector>

#include "petsckit/dmda.hpp"
#include "petsckit/ksp.hpp"

namespace nncomm::pk {

class LaplacianOp final : public LinearOperator {
public:
    /// `dmda` must have dof == 1. The collective config selects the ghost
    /// exchange algorithm (the knob the paper's application benchmark
    /// turns).
    explicit LaplacianOp(std::shared_ptr<const DMDA> dmda, coll::CollConfig config = {});

    void apply(const Vec& x, Vec& y) const override;

    /// Diagonal of the operator (for Jacobi smoothing): 2·dim/h² on
    /// interior points, 1 on boundary points.
    void fill_diagonal(Vec& d) const;

    const DMDA& dmda() const { return *dmda_; }
    double h() const { return h_; }
    /// True if grid point (i,j,k) lies on the domain boundary of an active
    /// dimension.
    bool on_boundary(Index i, Index j, Index k) const;

private:
    std::shared_ptr<const DMDA> dmda_;
    coll::CollConfig config_;
    double h_;
    double inv_h2_;
    mutable std::vector<double> ghosted_;  ///< scratch for the ghost exchange
};

/// Assembles the same operator into `mat` (whose layout must be the DMDA's
/// global-vector layout). Call mat.assemble() afterwards.
void assemble_laplacian(MatAIJ& mat, const DMDA& dmda);

/// Fills `b` with the discretized right-hand side f(x,y,z) = 1 on interior
/// points (0 on boundary points), matching the operator scaling.
void fill_rhs_constant(const DMDA& dmda, Vec& b, double value = 1.0);

}  // namespace nncomm::pk

// Parallel layout of 1-D index ranges (PETSc's PetscSplitOwnership).
//
// A global vector of N entries is split into contiguous per-rank ranges:
// the first N % size ranks own N/size + 1 entries, the rest N/size. All
// distributed petsckit objects use this layout, so ownership of any global
// index is computable locally on every rank with no communication.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace nncomm::pk {

using Index = std::int64_t;

struct OwnershipRange {
    Index begin = 0;
    Index end = 0;  ///< one past the last owned index
    Index count() const { return end - begin; }
    bool contains(Index i) const { return i >= begin && i < end; }
};

/// The contiguous range of global indices rank `rank` owns.
inline OwnershipRange split_ownership(Index global, int rank, int size) {
    NNCOMM_CHECK_MSG(global >= 0 && size >= 1 && rank >= 0 && rank < size,
                     "split_ownership: invalid arguments");
    const Index base = global / size;
    const Index extra = global % size;
    const Index r = rank;
    const Index begin = r * base + (r < extra ? r : extra);
    const Index count = base + (r < extra ? 1 : 0);
    return OwnershipRange{begin, begin + count};
}

/// The rank owning global index `i` under split_ownership(global, ·, size).
inline int owner_of(Index i, Index global, int size) {
    NNCOMM_CHECK_MSG(i >= 0 && i < global, "owner_of: index out of range");
    const Index base = global / size;
    const Index extra = global % size;
    // The first `extra` ranks own (base + 1) entries each.
    const Index cutoff = extra * (base + 1);
    if (i < cutoff) return static_cast<int>(i / (base + 1));
    return static_cast<int>(extra + (i - cutoff) / base);
}

/// Replicated description of an arbitrary contiguous partition of [0, N):
/// rank r owns [starts[r], starts[r+1]). Generalizes split_ownership for
/// objects (DMDA vectors, ghost work vectors) whose local sizes are not the
/// uniform split.
class Layout {
public:
    Layout() = default;

    static Layout uniform(Index global, int size) {
        Layout l;
        l.starts_.resize(static_cast<std::size_t>(size) + 1);
        for (int r = 0; r < size; ++r) {
            l.starts_[static_cast<std::size_t>(r)] = split_ownership(global, r, size).begin;
        }
        l.starts_.back() = global;
        return l;
    }

    /// Builds from per-rank local sizes (already gathered; entry r = rank
    /// r's count).
    static Layout from_counts(std::span<const Index> counts) {
        Layout l;
        l.starts_.resize(counts.size() + 1);
        l.starts_[0] = 0;
        for (std::size_t r = 0; r < counts.size(); ++r) {
            NNCOMM_CHECK_MSG(counts[r] >= 0, "Layout: negative local size");
            l.starts_[r + 1] = l.starts_[r] + counts[r];
        }
        return l;
    }

    bool valid() const { return !starts_.empty(); }
    int size() const { return static_cast<int>(starts_.size()) - 1; }
    Index global() const { return starts_.back(); }
    OwnershipRange range(int rank) const {
        NNCOMM_CHECK(rank >= 0 && rank < size());
        return OwnershipRange{starts_[static_cast<std::size_t>(rank)],
                              starts_[static_cast<std::size_t>(rank) + 1]};
    }
    /// Owner of global index i (binary search over the partition).
    int owner(Index i) const {
        NNCOMM_CHECK_MSG(i >= 0 && i < global(), "Layout::owner: index out of range");
        // Upper bound over starts_: first start strictly greater than i.
        std::size_t lo = 0, hi = starts_.size() - 1;
        while (lo + 1 < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (starts_[mid] <= i) lo = mid;
            else hi = mid;
        }
        return static_cast<int>(lo);
    }

    friend bool operator==(const Layout& a, const Layout& b) { return a.starts_ == b.starts_; }

private:
    std::vector<Index> starts_;  ///< size() + 1 entries, starts_[0] == 0
};

}  // namespace nncomm::pk

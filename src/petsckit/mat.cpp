#include "petsckit/mat.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "coll/collectives.hpp"

namespace nncomm::pk {

MatAIJ::MatAIJ(rt::Comm& comm, std::shared_ptr<const Layout> layout)
    : comm_(&comm), layout_(std::move(layout)) {
    NNCOMM_CHECK_MSG(layout_ && layout_->size() == comm.size(),
                     "MatAIJ: layout rank count must match communicator");
    rows_ = layout_->range(comm.rank());
}

void MatAIJ::add_value(Index row, Index col, double v) {
    NNCOMM_CHECK_MSG(!assembled_, "MatAIJ: add_value after assemble");
    NNCOMM_CHECK_MSG(rows_.contains(row), "MatAIJ: row not locally owned");
    NNCOMM_CHECK_MSG(col >= 0 && col < layout_->global(), "MatAIJ: column out of range");
    pending_.push_back(Entry{row, col, v, /*insert=*/false});
}

void MatAIJ::set_value(Index row, Index col, double v) {
    NNCOMM_CHECK_MSG(!assembled_, "MatAIJ: set_value after assemble");
    NNCOMM_CHECK_MSG(rows_.contains(row), "MatAIJ: row not locally owned");
    NNCOMM_CHECK_MSG(col >= 0 && col < layout_->global(), "MatAIJ: column out of range");
    pending_.push_back(Entry{row, col, v, /*insert=*/true});
}

void MatAIJ::assemble(ScatterBackend ghost_backend) {
    NNCOMM_CHECK_MSG(!assembled_, "MatAIJ: already assembled");
    ghost_backend_ = ghost_backend;

    // Combine duplicate coordinates in insertion order (insert overwrites,
    // add accumulates).
    std::map<std::pair<Index, Index>, double> acc;
    for (const Entry& e : pending_) {
        auto key = std::make_pair(e.row, e.col);
        auto [it, fresh] = acc.try_emplace(key, 0.0);
        if (e.insert) it->second = e.val;
        else it->second += e.val;
        (void)fresh;
    }
    pending_.clear();
    pending_.shrink_to_fit();

    // Ghost (off-rank) columns, compacted and sorted.
    for (const auto& [rc, v] : acc) {
        if (!rows_.contains(rc.second)) col_map_.push_back(rc.second);
    }
    std::sort(col_map_.begin(), col_map_.end());
    col_map_.erase(std::unique(col_map_.begin(), col_map_.end()), col_map_.end());

    auto ghost_index = [&](Index gcol) {
        const auto it = std::lower_bound(col_map_.begin(), col_map_.end(), gcol);
        return static_cast<Index>(it - col_map_.begin());
    };

    // CSR construction: `acc` is already (row, col)-sorted.
    const auto nrows = static_cast<std::size_t>(rows_.count());
    diag_.row_ptr.assign(nrows + 1, 0);
    offdiag_.row_ptr.assign(nrows + 1, 0);
    for (const auto& [rc, v] : acc) {
        const auto r = static_cast<std::size_t>(rc.first - rows_.begin);
        if (rows_.contains(rc.second)) {
            diag_.col.push_back(rc.second - rows_.begin);
            diag_.val.push_back(v);
            ++diag_.row_ptr[r + 1];
        } else {
            offdiag_.col.push_back(ghost_index(rc.second));
            offdiag_.val.push_back(v);
            ++offdiag_.row_ptr[r + 1];
        }
    }
    for (std::size_t r = 0; r < nrows; ++r) {
        diag_.row_ptr[r + 1] += diag_.row_ptr[r];
        offdiag_.row_ptr[r + 1] += offdiag_.row_ptr[r];
    }

    // Ghost scatter plan: allgather every rank's ghost-column list so the
    // replicated index sets can be built identically everywhere.
    const int n = comm_->size();
    const auto nranks = static_cast<std::size_t>(n);
    const Index my_nghost = static_cast<Index>(col_map_.size());
    std::vector<Index> ghost_counts(nranks);
    coll::allgather(*comm_, &my_nghost, sizeof(Index), dt::Datatype::byte(),
                    ghost_counts.data(), sizeof(Index), dt::Datatype::byte());

    std::vector<std::size_t> counts_bytes(nranks), displs(nranks);
    std::size_t total_ghosts = 0;
    for (std::size_t r = 0; r < nranks; ++r) {
        counts_bytes[r] = static_cast<std::size_t>(ghost_counts[r]) * sizeof(Index);
        displs[r] = total_ghosts * sizeof(Index);
        total_ghosts += static_cast<std::size_t>(ghost_counts[r]);
    }
    std::vector<Index> all_ghost_cols(total_ghosts);
    coll::allgatherv(*comm_, col_map_.data(), col_map_.size() * sizeof(Index),
                     dt::Datatype::byte(), all_ghost_cols.data(), counts_bytes, displs,
                     dt::Datatype::byte());

    ghost_layout_ = std::make_shared<const Layout>(Layout::from_counts(ghost_counts));
    ghost_vals_ = Vec(*comm_, ghost_layout_);
    ghost_scatter_ = std::make_unique<VecScatter>(
        *comm_, *layout_, IndexSet::general(std::move(all_ghost_cols)), *ghost_layout_,
        IndexSet::identity(static_cast<Index>(total_ghosts)));

    assembled_ = true;
}

void MatAIJ::mult(const Vec& x, Vec& y) const {
    NNCOMM_CHECK_MSG(assembled_, "MatAIJ: mult before assemble");
    NNCOMM_CHECK_MSG(x.local_size() == rows_.count() && y.local_size() == rows_.count(),
                     "MatAIJ: vector layouts do not match");

    // Split-phase: fire the gather of the off-rank x entries, compute the
    // diagonal block (which reads only local x) while the ghost values are
    // in flight, then finish with the off-diagonal block. The per-row
    // accumulation order — diagonal terms in k order, then off-diagonal
    // terms in k order into the same accumulator — is exactly the blocking
    // loop's, so results are bit-identical.
    ScatterRequest gather = ghost_scatter_->begin(x, ghost_vals_, ghost_backend_);

    const auto nrows = static_cast<std::size_t>(rows_.count());
    const double* xl = x.data();
    double* yl = y.data();
    for (std::size_t r = 0; r < nrows; ++r) {
        double acc = 0.0;
        for (std::size_t k = diag_.row_ptr[r]; k < diag_.row_ptr[r + 1]; ++k) {
            acc += diag_.val[k] * xl[diag_.col[k]];
        }
        yl[r] = acc;
    }

    gather.end();

    const double* xg = ghost_vals_.data();
    for (std::size_t r = 0; r < nrows; ++r) {
        double acc = yl[r];
        for (std::size_t k = offdiag_.row_ptr[r]; k < offdiag_.row_ptr[r + 1]; ++k) {
            acc += offdiag_.val[k] * xg[offdiag_.col[k]];
        }
        yl[r] = acc;
    }
}

void MatAIJ::get_diagonal(Vec& d) const {
    NNCOMM_CHECK_MSG(assembled_, "MatAIJ: get_diagonal before assemble");
    NNCOMM_CHECK_MSG(d.local_size() == rows_.count(), "MatAIJ: vector layout mismatch");
    const auto nrows = static_cast<std::size_t>(rows_.count());
    for (std::size_t r = 0; r < nrows; ++r) {
        double v = 0.0;
        for (std::size_t k = diag_.row_ptr[r]; k < diag_.row_ptr[r + 1]; ++k) {
            if (diag_.col[k] == static_cast<Index>(r)) {
                v = diag_.val[k];
                break;
            }
        }
        d.data()[r] = v;
    }
}

}  // namespace nncomm::pk

#include "petsckit/mat.hpp"

#include <algorithm>
#include <iterator>
#include <map>
#include <numeric>

#include "coll/collectives.hpp"
#include "runtime/sparse.hpp"

namespace nncomm::pk {

MatAIJ::MatAIJ(rt::Comm& comm, std::shared_ptr<const Layout> layout)
    : comm_(&comm), layout_(std::move(layout)) {
    NNCOMM_CHECK_MSG(layout_ && layout_->size() == comm.size(),
                     "MatAIJ: layout rank count must match communicator");
    rows_ = layout_->range(comm.rank());
}

void MatAIJ::add_value(Index row, Index col, double v) {
    NNCOMM_CHECK_MSG(!assembled_, "MatAIJ: add_value after assemble");
    NNCOMM_CHECK_MSG(row >= 0 && row < layout_->global(), "MatAIJ: row out of range");
    NNCOMM_CHECK_MSG(col >= 0 && col < layout_->global(), "MatAIJ: column out of range");
    if (rows_.contains(row)) {
        pending_.push_back(Entry{row, col, v, /*insert=*/false});
    } else {
        remote_[layout_->owner(row)].push_back(RemoteEntry{row, col, v, 0});
    }
}

void MatAIJ::set_value(Index row, Index col, double v) {
    NNCOMM_CHECK_MSG(!assembled_, "MatAIJ: set_value after assemble");
    NNCOMM_CHECK_MSG(row >= 0 && row < layout_->global(), "MatAIJ: row out of range");
    NNCOMM_CHECK_MSG(col >= 0 && col < layout_->global(), "MatAIJ: column out of range");
    if (rows_.contains(row)) {
        pending_.push_back(Entry{row, col, v, /*insert=*/true});
    } else {
        remote_[layout_->owner(row)].push_back(RemoteEntry{row, col, v, 1});
    }
}

void MatAIJ::assemble(ScatterBackend ghost_backend) {
    NNCOMM_CHECK_MSG(!assembled_, "MatAIJ: already assembled");
    ghost_backend_ = ghost_backend;

    // Flush stashed off-process entries to their owners. Nobody knows who
    // will contribute to its rows, so this is the NBX sparse exchange:
    // traffic proportional to the actual contributor graph plus one
    // O(log p) consensus, and ranks with nothing to send still participate
    // (the exchange is collective).
    std::vector<std::pair<int, std::vector<RemoteEntry>>> flushes(
        std::make_move_iterator(remote_.begin()), std::make_move_iterator(remote_.end()));
    remote_.clear();
    auto arrived = rt::sparse_exchange_t<RemoteEntry>(
        *comm_, std::span<const std::pair<int, std::vector<RemoteEntry>>>(flushes));

    // Combine duplicate coordinates with deterministic semantics (insert
    // overwrites, add accumulates) in ascending-origin order: arrivals are
    // source-sorted, and this rank's own entries take their place at
    // origin == rank — as if every origin's insertions had been performed
    // at the owner, origin by origin, in original insertion order. Arrival
    // timing can never change the result.
    std::map<std::pair<Index, Index>, double> acc;
    auto apply = [&](Index row, Index col, double val, bool insert) {
        auto [it, fresh] = acc.try_emplace(std::make_pair(row, col), 0.0);
        if (insert) it->second = val;
        else it->second += val;
        (void)fresh;
    };
    const int rank = comm_->rank();
    std::size_t ai = 0;
    for (int origin = 0; origin < comm_->size(); ++origin) {
        if (origin == rank) {
            for (const Entry& e : pending_) apply(e.row, e.col, e.val, e.insert);
            continue;
        }
        if (ai < arrived.size() && arrived[ai].first == origin) {
            for (const RemoteEntry& e : arrived[ai].second) {
                NNCOMM_CHECK_MSG(rows_.contains(e.row),
                                 "MatAIJ: received an entry for a row this rank does not own");
                apply(e.row, e.col, e.val, e.insert != 0);
                ++remote_received_;
            }
            ++ai;
        }
    }
    pending_.clear();
    pending_.shrink_to_fit();

    // Ghost (off-rank) columns, compacted and sorted.
    for (const auto& [rc, v] : acc) {
        if (!rows_.contains(rc.second)) col_map_.push_back(rc.second);
    }
    std::sort(col_map_.begin(), col_map_.end());
    col_map_.erase(std::unique(col_map_.begin(), col_map_.end()), col_map_.end());

    auto ghost_index = [&](Index gcol) {
        const auto it = std::lower_bound(col_map_.begin(), col_map_.end(), gcol);
        return static_cast<Index>(it - col_map_.begin());
    };

    // CSR construction: `acc` is already (row, col)-sorted.
    const auto nrows = static_cast<std::size_t>(rows_.count());
    diag_.row_ptr.assign(nrows + 1, 0);
    offdiag_.row_ptr.assign(nrows + 1, 0);
    for (const auto& [rc, v] : acc) {
        const auto r = static_cast<std::size_t>(rc.first - rows_.begin);
        if (rows_.contains(rc.second)) {
            diag_.col.push_back(rc.second - rows_.begin);
            diag_.val.push_back(v);
            ++diag_.row_ptr[r + 1];
        } else {
            offdiag_.col.push_back(ghost_index(rc.second));
            offdiag_.val.push_back(v);
            ++offdiag_.row_ptr[r + 1];
        }
    }
    for (std::size_t r = 0; r < nrows; ++r) {
        diag_.row_ptr[r + 1] += diag_.row_ptr[r];
        offdiag_.row_ptr[r + 1] += offdiag_.row_ptr[r];
    }

    // Ghost scatter plan, discovered sparsely: each rank asks only the
    // owners of its ghost columns (VecScatter::gather_sparse runs one NBX
    // exchange of per-owner request lists). The lone dense step left is a
    // scalar allgather of per-rank ghost COUNTS for the scratch layout —
    // one Index per rank, never the O(p)-sized column lists the previous
    // allgatherv shipped everywhere.
    const auto nranks = static_cast<std::size_t>(comm_->size());
    const Index my_nghost = static_cast<Index>(col_map_.size());
    std::vector<Index> ghost_counts(nranks);
    coll::allgather(*comm_, &my_nghost, sizeof(Index), dt::Datatype::byte(),
                    ghost_counts.data(), sizeof(Index), dt::Datatype::byte());

    ghost_layout_ = std::make_shared<const Layout>(Layout::from_counts(ghost_counts));
    ghost_vals_ = Vec(*comm_, ghost_layout_);
    ghost_scatter_ = std::make_unique<VecScatter>(
        VecScatter::gather_sparse(*comm_, *layout_, col_map_, *ghost_layout_));

    assembled_ = true;
}

void MatAIJ::mult(const Vec& x, Vec& y) const {
    NNCOMM_CHECK_MSG(assembled_, "MatAIJ: mult before assemble");
    NNCOMM_CHECK_MSG(x.local_size() == rows_.count() && y.local_size() == rows_.count(),
                     "MatAIJ: vector layouts do not match");

    // Split-phase: fire the gather of the off-rank x entries, compute the
    // diagonal block (which reads only local x) while the ghost values are
    // in flight, then finish with the off-diagonal block. The per-row
    // accumulation order — diagonal terms in k order, then off-diagonal
    // terms in k order into the same accumulator — is exactly the blocking
    // loop's, so results are bit-identical.
    ScatterRequest gather = ghost_scatter_->begin(x, ghost_vals_, ghost_backend_);

    const auto nrows = static_cast<std::size_t>(rows_.count());
    const double* xl = x.data();
    double* yl = y.data();
    for (std::size_t r = 0; r < nrows; ++r) {
        double acc = 0.0;
        for (std::size_t k = diag_.row_ptr[r]; k < diag_.row_ptr[r + 1]; ++k) {
            acc += diag_.val[k] * xl[diag_.col[k]];
        }
        yl[r] = acc;
    }

    gather.end();

    const double* xg = ghost_vals_.data();
    for (std::size_t r = 0; r < nrows; ++r) {
        double acc = yl[r];
        for (std::size_t k = offdiag_.row_ptr[r]; k < offdiag_.row_ptr[r + 1]; ++k) {
            acc += offdiag_.val[k] * xg[offdiag_.col[k]];
        }
        yl[r] = acc;
    }
}

void MatAIJ::get_diagonal(Vec& d) const {
    NNCOMM_CHECK_MSG(assembled_, "MatAIJ: get_diagonal before assemble");
    NNCOMM_CHECK_MSG(d.local_size() == rows_.count(), "MatAIJ: vector layout mismatch");
    const auto nrows = static_cast<std::size_t>(rows_.count());
    for (std::size_t r = 0; r < nrows; ++r) {
        double v = 0.0;
        for (std::size_t k = diag_.row_ptr[r]; k < diag_.row_ptr[r + 1]; ++k) {
            if (diag_.col[k] == static_cast<Index>(r)) {
                v = diag_.val[k];
                break;
            }
        }
        d.data()[r] = v;
    }
}

}  // namespace nncomm::pk

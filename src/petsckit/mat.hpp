// Distributed sparse matrices in PETSc's MPIAIJ format.
//
// Rows are partitioned by a Layout (matching the solution vector). Each
// rank stores two CSR blocks: A (the "diagonal" block, whose columns are
// locally owned) and B (the "off-diagonal" block, whose columns are
// compacted and mapped through col_map to global indices). A matvec
// gathers the needed off-rank x entries with a VecScatter — so every
// Krylov iteration exercises the paper's scatter machinery — and computes
// y = A·x_local + B·x_ghost.
//
// Assembly restriction (documented, PETSc-typical): each rank inserts only
// its own rows, so assembly needs no communication beyond building the
// ghost scatter (one allgatherv of ghost-column lists).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "petsckit/scatter.hpp"
#include "petsckit/vec.hpp"

namespace nncomm::pk {

/// Sequential CSR block.
struct CsrBlock {
    std::vector<std::size_t> row_ptr;  ///< nrows + 1
    std::vector<Index> col;            ///< block-local column indices
    std::vector<double> val;

    std::size_t nnz() const { return val.size(); }
};

class MatAIJ {
public:
    /// Square matrix with identical row/column layout (the common case for
    /// PDE operators). Collective.
    MatAIJ(rt::Comm& comm, std::shared_ptr<const Layout> layout);

    rt::Comm& comm() const { return *comm_; }
    const Layout& layout() const { return *layout_; }
    Index global_size() const { return layout_->global(); }
    const OwnershipRange& row_range() const { return rows_; }

    /// Accumulates a value (add mode). `row` must be locally owned; `col`
    /// may be any global index. Must be called before assemble().
    void add_value(Index row, Index col, double v);
    /// Insert-or-overwrite variant.
    void set_value(Index row, Index col, double v);

    /// Builds the CSR blocks and the ghost scatter. Collective.
    void assemble(ScatterBackend ghost_backend = ScatterBackend::HandTuned);
    bool assembled() const { return assembled_; }

    /// y = A x. Collective. Layouts of x and y must match the matrix.
    void mult(const Vec& x, Vec& y) const;

    /// The locally-owned diagonal entries (for Jacobi preconditioning).
    void get_diagonal(Vec& d) const;

    // -- introspection ------------------------------------------------------------
    std::size_t local_nnz() const { return diag_.nnz() + offdiag_.nnz(); }
    std::size_t num_ghost_cols() const { return col_map_.size(); }
    const CsrBlock& diag_block() const { return diag_; }
    const CsrBlock& offdiag_block() const { return offdiag_; }

private:
    struct Entry {
        Index row;
        Index col;
        double val;
        bool insert;
    };

    rt::Comm* comm_;
    std::shared_ptr<const Layout> layout_;
    OwnershipRange rows_{};
    std::vector<Entry> pending_;
    bool assembled_ = false;

    CsrBlock diag_;     ///< columns owned locally (block-local indices)
    CsrBlock offdiag_;  ///< columns off-rank, compacted
    std::vector<Index> col_map_;  ///< compact offdiag column -> global index

    // Ghost gather: x (global layout) -> xwork (one entry per ghost col).
    std::unique_ptr<VecScatter> ghost_scatter_;
    std::shared_ptr<const Layout> ghost_layout_;
    mutable Vec ghost_vals_;  ///< scratch destination vector for the gather
    ScatterBackend ghost_backend_ = ScatterBackend::HandTuned;
};

}  // namespace nncomm::pk

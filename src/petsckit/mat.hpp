// Distributed sparse matrices in PETSc's MPIAIJ format.
//
// Rows are partitioned by a Layout (matching the solution vector). Each
// rank stores two CSR blocks: A (the "diagonal" block, whose columns are
// locally owned) and B (the "off-diagonal" block, whose columns are
// compacted and mapped through col_map to global indices). A matvec
// gathers the needed off-rank x entries with a VecScatter — so every
// Krylov iteration exercises the paper's scatter machinery — and computes
// y = A·x_local + B·x_ghost.
//
// Off-process assembly (PETSc's MatSetValues with any row): a rank may
// insert entries into rows it does not own. Such entries are stashed
// locally, keyed by owner, and flushed at assemble() with one
// rt::sparse_exchange — owners never know their contributor set up front,
// so the flush is exactly the NBX sparse dynamic exchange pattern (no
// dense O(p) metadata anywhere). The merge order is deterministic: every
// entry is applied at its owner as if inserted in ascending origin-rank
// order, entries from the same origin in their original insertion order —
// so the assembled matrix is bit-identical to one built by the owning
// ranks performing those insertions themselves in that order.
//
// The ghost scatter for matvecs is likewise discovered sparsely
// (VecScatter::gather_sparse): the only dense-ish setup step left is a
// single scalar allgather of per-rank ghost counts to build the scratch
// layout — one Index per rank, not a vector.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "petsckit/scatter.hpp"
#include "petsckit/vec.hpp"

namespace nncomm::pk {

/// Sequential CSR block.
struct CsrBlock {
    std::vector<std::size_t> row_ptr;  ///< nrows + 1
    std::vector<Index> col;            ///< block-local column indices
    std::vector<double> val;

    std::size_t nnz() const { return val.size(); }
};

class MatAIJ {
public:
    /// Square matrix with identical row/column layout (the common case for
    /// PDE operators). Collective.
    MatAIJ(rt::Comm& comm, std::shared_ptr<const Layout> layout);

    rt::Comm& comm() const { return *comm_; }
    const Layout& layout() const { return *layout_; }
    Index global_size() const { return layout_->global(); }
    const OwnershipRange& row_range() const { return rows_; }

    /// Accumulates a value (add mode). `row` and `col` may be ANY global
    /// index: entries for rows owned elsewhere are stashed and flushed to
    /// their owner at assemble(). Must be called before assemble().
    void add_value(Index row, Index col, double v);
    /// Insert-or-overwrite variant (same off-process semantics).
    void set_value(Index row, Index col, double v);

    /// Builds the CSR blocks and the ghost scatter, flushing any stashed
    /// off-process entries to their owners first (one NBX sparse
    /// exchange). Collective even when no rank stashed anything.
    void assemble(ScatterBackend ghost_backend = ScatterBackend::HandTuned);
    bool assembled() const { return assembled_; }

    /// y = A x. Collective. Layouts of x and y must match the matrix.
    void mult(const Vec& x, Vec& y) const;

    /// The locally-owned diagonal entries (for Jacobi preconditioning).
    void get_diagonal(Vec& d) const;

    // -- introspection ------------------------------------------------------------
    std::size_t local_nnz() const { return diag_.nnz() + offdiag_.nnz(); }
    std::size_t num_ghost_cols() const { return col_map_.size(); }
    const CsrBlock& diag_block() const { return diag_; }
    const CsrBlock& offdiag_block() const { return offdiag_; }
    /// Off-process entries currently stashed for other owners (pre-
    /// assemble; zero afterwards).
    std::size_t remote_stashed() const {
        std::size_t total = 0;
        for (const auto& [owner, entries] : remote_) total += entries.size();
        return total;
    }
    /// Off-process entries received from other ranks by assemble().
    std::size_t remote_received() const { return remote_received_; }

private:
    struct Entry {
        Index row;
        Index col;
        double val;
        bool insert;
    };

    /// Wire form of one stashed off-process entry (trivially copyable for
    /// rt::sparse_exchange_t; `insert` widened to keep the layout
    /// padding-free).
    struct RemoteEntry {
        Index row;
        Index col;
        double val;
        std::uint64_t insert;
    };
    static_assert(sizeof(RemoteEntry) == 32);

    rt::Comm* comm_;
    std::shared_ptr<const Layout> layout_;
    OwnershipRange rows_{};
    std::vector<Entry> pending_;
    std::map<int, std::vector<RemoteEntry>> remote_;  ///< owner -> stashed entries
    std::size_t remote_received_ = 0;
    bool assembled_ = false;

    CsrBlock diag_;     ///< columns owned locally (block-local indices)
    CsrBlock offdiag_;  ///< columns off-rank, compacted
    std::vector<Index> col_map_;  ///< compact offdiag column -> global index

    // Ghost gather: x (global layout) -> xwork (one entry per ghost col).
    std::unique_ptr<VecScatter> ghost_scatter_;
    std::shared_ptr<const Layout> ghost_layout_;
    mutable Vec ghost_vals_;  ///< scratch destination vector for the gather
    ScatterBackend ghost_backend_ = ScatterBackend::HandTuned;
};

}  // namespace nncomm::pk

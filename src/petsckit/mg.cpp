#include "petsckit/mg.hpp"

#include <algorithm>

namespace nncomm::pk {

namespace {

/// Coarse extent of one axis (m_fine = 2*m_coarse - 1), identity for
/// inactive axes (m == 1).
Index coarsen_extent(Index m) {
    if (m == 1) return 1;
    NNCOMM_CHECK_MSG(m >= 3 && (m % 2) == 1,
                     "MGSolver: grid extent must be odd and >= 3 to coarsen (m = 2*mc - 1)");
    return (m + 1) / 2;
}

}  // namespace

MGSolver::MGSolver(rt::Comm& comm, int dim, GridSize fine, const MGConfig& config)
    : config_(config) {
    NNCOMM_CHECK_MSG(config.levels >= 1, "MGSolver: need at least one level");

    GridSize g = fine;
    for (int l = 0; l < config.levels; ++l) {
        Level lvl;
        lvl.dmda = std::make_shared<const DMDA>(comm, dim, g, 1, 1, Stencil::Star);
        lvl.op = std::make_unique<LaplacianOp>(lvl.dmda, config.coll);
        lvl.b = lvl.dmda->create_global();
        lvl.x = lvl.b.clone_empty();
        lvl.r = lvl.b.clone_empty();
        lvl.diag = lvl.b.clone_empty();
        lvl.op->fill_diagonal(lvl.diag);
        if (config.smoother == Smoother::Chebyshev) {
            Vec d = lvl.diag.clone_empty();
            d.copy_from(lvl.diag);
            lvl.jacobi = std::make_unique<JacobiPreconditioner>(std::move(d));
            lvl.lambda_max = estimate_max_eigenvalue(*lvl.op, lvl.b,
                                                     config.cheby_power_iters,
                                                     lvl.jacobi.get());
        }
        levels_.push_back(std::move(lvl));
        if (l + 1 < config.levels) {
            g = GridSize{coarsen_extent(g.m), coarsen_extent(g.n), coarsen_extent(g.p)};
        }
    }

    // Transfer plans between consecutive levels.
    for (std::size_t l = 0; l + 1 < levels_.size(); ++l) {
        const DMDA& fda = *levels_[l].dmda;
        const DMDA& cda = *levels_[l + 1].dmda;
        const GridSize fg = fda.grid();
        const GridBox& fo = fda.owned();
        const GridBox& co = cda.owned();

        // Restriction reads the fine residual in [2I-1, 2I+1] around every
        // owned coarse point I (clamped to the domain).
        auto fine_span = [&](Index cs, Index cm, Index fm) -> std::pair<Index, Index> {
            if (fm == 1) return {0, 1};
            const Index lo = std::max<Index>(0, 2 * cs - 1);
            const Index hi = std::min<Index>(fm - 1, 2 * (cs + cm - 1) + 1);
            return {lo, hi - lo + 1};
        };
        GridBox fpatch;
        std::tie(fpatch.xs, fpatch.xm) = fine_span(co.xs, co.xm, fg.m);
        std::tie(fpatch.ys, fpatch.ym) = fine_span(co.ys, co.ym, fg.n);
        std::tie(fpatch.zs, fpatch.zm) = fine_span(co.zs, co.zm, fg.p);
        levels_[l].fine_patch = std::make_unique<PatchGather>(fda, fpatch);

        // Prolongation reads the coarse correction in [floor(i/2),
        // floor((i+1)/2)] around every owned fine point i.
        const GridSize cg = cda.grid();
        auto coarse_span = [&](Index fs, Index fm, Index cm) -> std::pair<Index, Index> {
            if (cm == 1) return {0, 1};
            const Index lo = fs / 2;
            const Index hi = std::min<Index>(cm - 1, (fs + fm) / 2);
            return {lo, hi - lo + 1};
        };
        GridBox cpatch;
        std::tie(cpatch.xs, cpatch.xm) = coarse_span(fo.xs, fo.xm, cg.m);
        std::tie(cpatch.ys, cpatch.ym) = coarse_span(fo.ys, fo.ym, cg.n);
        std::tie(cpatch.zs, cpatch.zm) = coarse_span(fo.zs, fo.zm, cg.p);
        levels_[l].coarse_patch = std::make_unique<PatchGather>(cda, cpatch);
    }
}

void MGSolver::smooth(Level& lvl, const Vec& b, Vec& x, int sweeps) {
    if (config_.smoother == Smoother::Chebyshev) {
        chebyshev(*lvl.op, b, x, config_.cheby_fraction_lo * lvl.lambda_max,
                  config_.cheby_fraction_hi * lvl.lambda_max, sweeps, lvl.jacobi.get());
        return;
    }
    const std::size_t n = static_cast<std::size_t>(x.local_size());
    for (int s = 0; s < sweeps; ++s) {
        lvl.op->apply(x, lvl.r);            // r = A x
        lvl.r.waxpy_diff(b, lvl.r);         // r = b - A x
        double* xd = x.data();
        const double* rd = lvl.r.data();
        const double* dd = lvl.diag.data();
        for (std::size_t i = 0; i < n; ++i) {
            xd[i] += config_.jacobi_omega * rd[i] / dd[i];
        }
    }
}

void MGSolver::restrict_residual(std::size_t fine_level) {
    Level& fine = levels_[fine_level];
    Level& coarse = levels_[fine_level + 1];
    fine.fine_patch->gather(fine.r, config_.scatter_backend);

    const PatchGather& patch = *fine.fine_patch;
    const DMDA& cda = *coarse.dmda;
    const GridBox& co = cda.owned();
    const GridSize fg = fine.dmda->grid();
    const int dim = cda.dim();

    // Full weighting: tensor product of [1/4, 1/2, 1/4] over active axes;
    // out-of-domain fine points are skipped (their residual is zero by the
    // boundary elimination anyway).
    auto w1d = [](int off) { return off == 0 ? 0.5 : 0.25; };
    double* out = coarse.b.data();
    std::size_t at = 0;
    for (Index K = co.zs; K < co.zs + co.zm; ++K) {
        for (Index J = co.ys; J < co.ys + co.ym; ++J) {
            for (Index I = co.xs; I < co.xs + co.xm; ++I, ++at) {
                if (coarse.op->on_boundary(I, J, K)) {
                    // Dirichlet rows stay homogeneous on every level.
                    out[at] = 0.0;
                    continue;
                }
                const Index fi = 2 * I;
                const Index fj = (dim >= 2) ? 2 * J : 0;
                const Index fk = (dim >= 3) ? 2 * K : 0;
                double acc = 0.0;
                const int zr = (dim >= 3) ? 1 : 0;
                const int yr = (dim >= 2) ? 1 : 0;
                for (int dz = -zr; dz <= zr; ++dz) {
                    if (fk + dz < 0 || fk + dz >= fg.p) continue;
                    for (int dy = -yr; dy <= yr; ++dy) {
                        if (fj + dy < 0 || fj + dy >= fg.n) continue;
                        for (int dx = -1; dx <= 1; ++dx) {
                            if (fi + dx < 0 || fi + dx >= fg.m) continue;
                            double w = w1d(dx);
                            if (dim >= 2) w *= w1d(dy);
                            if (dim >= 3) w *= w1d(dz);
                            acc += w * patch.values()[static_cast<std::size_t>(
                                           patch.index(fi + dx, fj + dy, fk + dz))];
                        }
                    }
                }
                out[at] = acc;
            }
        }
    }
}

void MGSolver::prolong_and_correct(std::size_t fine_level) {
    Level& fine = levels_[fine_level];
    Level& coarse = levels_[fine_level + 1];
    fine.coarse_patch->gather(coarse.x, config_.scatter_backend);

    const PatchGather& patch = *fine.coarse_patch;
    const DMDA& fda = *fine.dmda;
    const GridBox& fo = fda.owned();
    const int dim = fda.dim();

    // Linear interpolation per axis: even fine index -> the coarse point,
    // odd -> the average of its two coarse neighbors.
    struct Interp {
        Index c0, c1;
        double w0, w1;
    };
    auto interp1d = [](Index i) -> Interp {
        if ((i & 1) == 0) return {i / 2, i / 2, 1.0, 0.0};
        return {(i - 1) / 2, (i + 1) / 2, 0.5, 0.5};
    };

    double* xd = fine.x.data();
    std::size_t at = 0;
    for (Index k = fo.zs; k < fo.zs + fo.zm; ++k) {
        const Interp iz = (dim >= 3) ? interp1d(k) : Interp{0, 0, 1.0, 0.0};
        for (Index j = fo.ys; j < fo.ys + fo.ym; ++j) {
            const Interp iy = (dim >= 2) ? interp1d(j) : Interp{0, 0, 1.0, 0.0};
            for (Index i = fo.xs; i < fo.xs + fo.xm; ++i, ++at) {
                const Interp ix = interp1d(i);
                double acc = 0.0;
                for (int az = 0; az < 2; ++az) {
                    const double wz = az == 0 ? iz.w0 : iz.w1;
                    if (wz == 0.0) continue;
                    const Index K = az == 0 ? iz.c0 : iz.c1;
                    for (int ay = 0; ay < 2; ++ay) {
                        const double wy = ay == 0 ? iy.w0 : iy.w1;
                        if (wy == 0.0) continue;
                        const Index J = ay == 0 ? iy.c0 : iy.c1;
                        for (int ax = 0; ax < 2; ++ax) {
                            const double wx = ax == 0 ? ix.w0 : ix.w1;
                            if (wx == 0.0) continue;
                            const Index I = ax == 0 ? ix.c0 : ix.c1;
                            acc += wz * wy * wx *
                                   patch.values()[static_cast<std::size_t>(
                                       patch.index(I, J, K))];
                        }
                    }
                }
                xd[at] += acc;
            }
        }
    }
}

void MGSolver::cycle(std::size_t l) {
    // Improves levels_[l].x for the current levels_[l].b (the caller has
    // initialized x — zero for correction levels, the iterate on level 0).
    Level& lvl = levels_[l];
    if (l + 1 == levels_.size()) {
        cg(*lvl.op, lvl.b, lvl.x, config_.coarse_solver);
        return;
    }
    smooth(lvl, lvl.b, lvl.x, config_.pre_smooth);
    lvl.op->apply(lvl.x, lvl.r);
    lvl.r.waxpy_diff(lvl.b, lvl.r);  // r = b - A x
    restrict_residual(l);
    // gamma recursive corrections: one for a V-cycle, two for a W-cycle
    // (the second pass continues improving the same coarse solution).
    levels_[l + 1].x.zero();
    const int gamma = (config_.cycle_type == CycleType::W) ? 2 : 1;
    for (int g = 0; g < gamma; ++g) cycle(l + 1);
    prolong_and_correct(l);
    smooth(lvl, lvl.b, lvl.x, config_.post_smooth);
}

void MGSolver::v_cycle(const Vec& b, Vec& x) {
    levels_[0].b.copy_from(b);
    levels_[0].x.copy_from(x);
    cycle(0);
    x.copy_from(levels_[0].x);
}

KspResult MGSolver::solve(const Vec& b, Vec& x, double rtol, int max_cycles) {
    Vec r = b.clone_empty();
    Vec Ax = b.clone_empty();
    const LaplacianOp& A = *levels_[0].op;

    A.apply(x, Ax);
    r.waxpy_diff(b, Ax);
    const double r0 = r.norm2();
    KspResult result;
    result.residual_norm = r0;
    if (r0 == 0.0) {
        result.converged = true;
        return result;
    }
    for (int it = 1; it <= max_cycles; ++it) {
        v_cycle(b, x);
        A.apply(x, Ax);
        r.waxpy_diff(b, Ax);
        result.iterations = it;
        result.residual_norm = r.norm2();
        if (result.residual_norm <= rtol * r0) {
            result.converged = true;
            return result;
        }
    }
    return result;
}

}  // namespace nncomm::pk

// Geometric multigrid for the DMDA Laplacian (the paper's §5.5
// application: a 3-D Laplacian multi-grid solver with three levels).
//
// Grids coarsen by a factor of two per level (vertex-centered: the finer
// grid must satisfy m_fine = 2·m_coarse − 1 along every active axis).
// Per V-cycle and level:
//   - pre-smoothing: damped Jacobi sweeps (each one evaluates the
//     matrix-free Laplacian → DMDA ghost exchange),
//   - residual restriction: full weighting (tensor of [¼ ½ ¼]) through a
//     PatchGather of the fine residual,
//   - recursion to the coarse level; unpreconditioned CG on the coarsest,
//   - prolongation: trilinear interpolation through a PatchGather of the
//     coarse correction,
//   - post-smoothing.
//
// Every communication-bearing step (ghost exchange, both patch gathers)
// runs through the configured ScatterBackend / collective algorithms, so
// the whole solver can be executed in the paper's three configurations:
// hand-tuned, datatype+baseline-MPI, datatype+optimized-MPI.
#pragma once

#include <memory>
#include <vector>

#include "petsckit/laplacian.hpp"
#include "petsckit/patch.hpp"

namespace nncomm::pk {

enum class Smoother {
    Jacobi,     ///< damped point Jacobi (omega = 2/3 by default)
    Chebyshev,  ///< Jacobi-preconditioned Chebyshev (PETSc's default)
};

enum class CycleType {
    V,  ///< one coarse-grid correction per level
    W,  ///< two recursive corrections per level (gamma = 2)
};

struct MGConfig {
    int levels = 3;
    CycleType cycle_type = CycleType::V;
    int pre_smooth = 2;
    int post_smooth = 2;
    Smoother smoother = Smoother::Jacobi;
    double jacobi_omega = 2.0 / 3.0;
    /// Chebyshev targets [eig_fraction_lo, eig_fraction_hi] * lambda_max
    /// with lambda_max estimated by power iteration at setup (PETSc's
    /// 0.1/1.1 convention).
    double cheby_fraction_lo = 0.1;
    double cheby_fraction_hi = 1.1;
    int cheby_power_iters = 12;
    KspConfig coarse_solver{1e-10, 1e-50, 200};
    /// Backend for inter-grid transfers and the collective config for
    /// ghost exchanges — the paper's experiment knob.
    ScatterBackend scatter_backend = ScatterBackend::HandTuned;
    coll::CollConfig coll{};
};

class MGSolver {
public:
    /// Builds the level hierarchy on `comm`. The fine grid must coarsen
    /// `config.levels - 1` times (every active extent m satisfies
    /// m = 2^(levels-1) * (m_coarsest - 1) + 1).
    MGSolver(rt::Comm& comm, int dim, GridSize fine, const MGConfig& config = {});

    const DMDA& fine_dmda() const { return *levels_.front().dmda; }
    const LaplacianOp& fine_op() const { return *levels_.front().op; }
    int num_levels() const { return static_cast<int>(levels_.size()); }
    const MGConfig& config() const { return config_; }

    /// One V-cycle improving x for A x = b on the fine grid. Collective.
    void v_cycle(const Vec& b, Vec& x);

    /// Iterates V-cycles until the fine residual drops below rtol * ||r0||
    /// (or max_cycles). Returns KSP-style statistics.
    KspResult solve(const Vec& b, Vec& x, double rtol = 1e-8, int max_cycles = 50);

private:
    struct Level {
        std::shared_ptr<const DMDA> dmda;
        std::unique_ptr<LaplacianOp> op;
        Vec diag;       ///< operator diagonal (Jacobi smoother)
        std::unique_ptr<JacobiPreconditioner> jacobi;  ///< for Chebyshev
        double lambda_max = 0.0;  ///< power-iteration estimate of D^-1 A
        Vec b, x, r;    ///< per-level work vectors
        // Transfers to/from the next-coarser level (absent on the coarsest):
        std::unique_ptr<PatchGather> fine_patch;    ///< fine residual around coarse box
        std::unique_ptr<PatchGather> coarse_patch;  ///< coarse correction around fine box
    };

    void smooth(Level& lvl, const Vec& b, Vec& x, int sweeps);
    void cycle(std::size_t l);  ///< V-cycle on level l (0 = finest)
    void restrict_residual(std::size_t fine_level);
    void prolong_and_correct(std::size_t fine_level);

    MGConfig config_;
    std::vector<Level> levels_;  ///< [0] = finest
};

}  // namespace nncomm::pk

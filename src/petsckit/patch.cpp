#include "petsckit/patch.hpp"

#include "coll/collectives.hpp"

namespace nncomm::pk {

PatchGather::PatchGather(const DMDA& source, const GridBox& patch) : patch_(patch) {
    NNCOMM_CHECK_MSG(source.dof() == 1, "PatchGather: dof must be 1");
    rt::Comm& comm = source.comm();
    const int n = comm.size();

    // Exchange every rank's patch box so all ranks build the same
    // replicated index sets.
    std::array<Index, 6> mine{patch.xs, patch.xm, patch.ys, patch.ym, patch.zs, patch.zm};
    std::vector<Index> all(static_cast<std::size_t>(n) * 6);
    coll::allgather(comm, mine.data(), sizeof(mine), dt::Datatype::byte(), all.data(),
                    sizeof(mine), dt::Datatype::byte());

    std::vector<Index> src_idx;
    std::vector<Index> counts(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
        const auto base = static_cast<std::size_t>(r) * 6;
        const GridBox b{all[base], all[base + 1], all[base + 2],
                        all[base + 3], all[base + 4], all[base + 5]};
        counts[static_cast<std::size_t>(r)] = b.volume();
        for (Index k = b.zs; k < b.zs + b.zm; ++k) {
            for (Index j = b.ys; j < b.ys + b.ym; ++j) {
                for (Index i = b.xs; i < b.xs + b.xm; ++i) {
                    src_idx.push_back(source.global_index(i, j, k));
                }
            }
        }
    }
    const auto total = static_cast<Index>(src_idx.size());

    auto dest_layout = std::make_shared<const Layout>(Layout::from_counts(counts));
    dest_ = Vec(comm, dest_layout);
    scatter_ = std::make_unique<VecScatter>(comm, *source.layout(),
                                            IndexSet::general(std::move(src_idx)),
                                            *dest_layout, IndexSet::identity(total));
}

void PatchGather::gather(const Vec& src, ScatterBackend backend) {
    scatter_->execute(src, dest_, backend);
}

}  // namespace nncomm::pk

// PatchGather: gathers an arbitrary box of a DMDA's global vector into a
// rank-local array.
//
// Multigrid inter-grid transfers need values from the *other* level's
// decomposition: prolongation reads a patch of the coarse vector around
// this rank's fine box, restriction reads a patch of the fine vector
// around this rank's coarse box. Those patches generally span several
// remote ranks, so each gather is a genuine nonuniform scatter — built
// once per level pair on top of VecScatter (and therefore driven by the
// same hand-tuned / datatype-baseline / datatype-optimized backends the
// paper compares).
//
// Planning is collective: the per-rank patch boxes are allgathered so the
// replicated index sets can be constructed identically on every rank.
#pragma once

#include <memory>

#include "petsckit/dmda.hpp"
#include "petsckit/scatter.hpp"

namespace nncomm::pk {

class PatchGather {
public:
    /// `patch` is this rank's requested box in `source`'s grid coordinates
    /// (already clamped to the domain; may be empty on some ranks only if
    /// volume stays >= 0). dof must be 1.
    PatchGather(const DMDA& source, const GridBox& patch);

    /// Gathers the patch values from `src` (layout = source DMDA's global
    /// layout). Collective.
    void gather(const Vec& src, ScatterBackend backend);

    const GridBox& patch() const { return patch_; }
    std::span<const double> values() const { return dest_.local(); }

    /// Index into values() of grid point (i, j, k) inside the patch.
    Index index(Index i, Index j, Index k) const {
        NNCOMM_CHECK_MSG(patch_.contains(i, j, k), "PatchGather: point outside patch");
        return ((k - patch_.zs) * patch_.ym + (j - patch_.ys)) * patch_.xm + (i - patch_.xs);
    }

    /// Aggregate bytes this rank sends during one gather (netsim bridge).
    const std::vector<std::uint64_t>& send_bytes() const { return scatter_->send_bytes(); }

private:
    GridBox patch_;
    std::unique_ptr<VecScatter> scatter_;
    Vec dest_;
};

}  // namespace nncomm::pk

#include "petsckit/scatter.hpp"

#include <algorithm>
#include <iterator>
#include <map>

#include "runtime/sparse.hpp"

namespace nncomm::pk {

namespace {
constexpr int kScatterTag = 0x5CA7;  // hand-tuned backend's user-level tag

dt::Datatype offsets_type(const std::vector<Index>& offsets) {
    std::vector<std::size_t> lens(offsets.size(), 1);
    std::vector<std::ptrdiff_t> displs(offsets.size());
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        displs[i] = static_cast<std::ptrdiff_t>(offsets[i]) * 8;
    }
    return dt::Datatype::hindexed(lens, displs, dt::Datatype::float64());
}
}  // namespace

VecScatter::VecScatter(rt::Comm& comm, const Layout& src_layout, const IndexSet& is_src,
                       const Layout& dst_layout, const IndexSet& is_dst)
    : comm_(&comm) {
    NNCOMM_CHECK_MSG(is_src.size() == is_dst.size(),
                     "VecScatter: index sets must have equal length");
    const int n = comm.size();
    const int rank = comm.rank();
    NNCOMM_CHECK_MSG(src_layout.size() == n && dst_layout.size() == n,
                     "VecScatter: layouts must match the communicator");
    src_local_ = src_layout.range(rank).count();
    dst_local_ = dst_layout.range(rank).count();

    const Index src_begin = src_layout.range(rank).begin;
    const Index dst_begin = dst_layout.range(rank).begin;

    // Every rank walks the full replicated pair list; entries are grouped
    // by peer in k order, so sender and receiver enumerate each pair's
    // elements identically.
    std::map<int, PeerPlan> send_map, recv_map;
    for (std::size_t k = 0; k < is_src.size(); ++k) {
        const Index gs = is_src[k];
        const Index gd = is_dst[k];
        const int so = src_layout.owner(gs);
        const int dow = dst_layout.owner(gd);
        if (so == rank && dow == rank) {
            self_src_.push_back(gs - src_begin);
            self_dst_.push_back(gd - dst_begin);
        } else if (so == rank) {
            auto& plan = send_map[dow];
            plan.rank = dow;
            plan.offsets.push_back(gs - src_begin);
        } else if (dow == rank) {
            auto& plan = recv_map[so];
            plan.rank = so;
            plan.offsets.push_back(gd - dst_begin);
        }
    }
    for (auto& [r, plan] : send_map) sends_.push_back(std::move(plan));
    for (auto& [r, plan] : recv_map) recvs_.push_back(std::move(plan));

    finalize_plans(n, rank);
}

// Shared constructor tail: once sends_/recvs_/self_* are known (however
// they were discovered — replicated walk or NBX), derive the per-peer byte
// table and the prebuilt Alltoallw argument arrays.
void VecScatter::finalize_plans(int n, int rank) {
    send_bytes_.assign(static_cast<std::size_t>(n), 0);
    for (const PeerPlan& p : sends_) {
        send_bytes_[static_cast<std::size_t>(p.rank)] = p.offsets.size() * 8;
    }

    // Prebuild the Alltoallw argument arrays for the datatype backends.
    const auto nn = static_cast<std::size_t>(n);
    w_sendcounts_.assign(nn, 0);
    w_recvcounts_.assign(nn, 0);
    w_sdispls_.assign(nn, 0);
    w_rdispls_.assign(nn, 0);
    w_sendtypes_.assign(nn, dt::Datatype::byte());
    w_recvtypes_.assign(nn, dt::Datatype::byte());
    for (const PeerPlan& p : sends_) {
        w_sendcounts_[static_cast<std::size_t>(p.rank)] = 1;
        w_sendtypes_[static_cast<std::size_t>(p.rank)] = offsets_type(p.offsets);
    }
    for (const PeerPlan& p : recvs_) {
        w_recvcounts_[static_cast<std::size_t>(p.rank)] = 1;
        w_recvtypes_[static_cast<std::size_t>(p.rank)] = offsets_type(p.offsets);
    }
    if (!self_src_.empty()) {
        w_sendcounts_[static_cast<std::size_t>(rank)] = 1;
        w_sendtypes_[static_cast<std::size_t>(rank)] = offsets_type(self_src_);
        w_recvcounts_[static_cast<std::size_t>(rank)] = 1;
        w_recvtypes_[static_cast<std::size_t>(rank)] = offsets_type(self_dst_);
    }
}

VecScatter VecScatter::gather_sparse(rt::Comm& comm, const Layout& src_layout,
                                     std::span<const Index> needed_global,
                                     const Layout& dst_layout) {
    const int n = comm.size();
    const int rank = comm.rank();
    NNCOMM_CHECK_MSG(src_layout.size() == n && dst_layout.size() == n,
                     "gather_sparse: layouts must match the communicator");
    NNCOMM_CHECK_MSG(dst_layout.range(rank).count() ==
                         static_cast<Index>(needed_global.size()),
                     "gather_sparse: dst layout must own one slot per needed index");

    VecScatter vs;
    vs.comm_ = &comm;
    vs.src_local_ = src_layout.range(rank).count();
    vs.dst_local_ = dst_layout.range(rank).count();
    const Index src_begin = src_layout.range(rank).begin;

    // Local pass: split the needed list into owned entries (pure local
    // moves) and per-owner request lists, both in k order so the receive
    // plan and the request payload enumerate pairs identically.
    std::map<int, std::vector<Index>> request_map;
    std::map<int, PeerPlan> recv_map;
    for (std::size_t k = 0; k < needed_global.size(); ++k) {
        const Index g = needed_global[k];
        const int owner = src_layout.owner(g);
        if (owner == rank) {
            vs.self_src_.push_back(g - src_begin);
            vs.self_dst_.push_back(static_cast<Index>(k));
        } else {
            request_map[owner].push_back(g);
            auto& plan = recv_map[owner];
            plan.rank = owner;
            plan.offsets.push_back(static_cast<Index>(k));
        }
    }

    // NBX discovery: each rank tells only its actual source owners what it
    // reads from them; owners learn their reader set from whatever
    // arrives. No dense O(p) count vectors are exchanged — traffic is
    // proportional to the true neighborhood plus the O(log p) consensus.
    std::vector<std::pair<int, std::vector<Index>>> requests(
        std::make_move_iterator(request_map.begin()), std::make_move_iterator(request_map.end()));
    auto serves = rt::sparse_exchange_t<Index>(
        comm, std::span<const std::pair<int, std::vector<Index>>>(requests));
    for (auto& [reader, globals] : serves) {
        PeerPlan plan;
        plan.rank = reader;
        plan.offsets.reserve(globals.size());
        for (const Index g : globals) {
            NNCOMM_CHECK_MSG(src_layout.owner(g) == rank,
                             "gather_sparse: request for an index this rank does not own");
            plan.offsets.push_back(g - src_begin);
        }
        vs.sends_.push_back(std::move(plan));  // serves is source-sorted
    }
    for (auto& [r, plan] : recv_map) vs.recvs_.push_back(std::move(plan));

    vs.finalize_plans(n, rank);
    return vs;
}

std::vector<std::uint64_t> VecScatter::send_blocks() const {
    std::vector<std::uint64_t> blocks(send_bytes_.size(), 0);
    for (const PeerPlan& p : sends_) {
        blocks[static_cast<std::size_t>(p.rank)] =
            w_sendtypes_[static_cast<std::size_t>(p.rank)].block_count();
    }
    return blocks;
}

void VecScatter::execute(const Vec& src, Vec& dst, ScatterBackend backend,
                         InsertMode insert) const {
    ScatterRequest req = begin(src, dst, backend, insert);
    req.end();
}

void VecScatter::execute_reverse(Vec& src, const Vec& dst, ScatterBackend backend,
                                 InsertMode insert) const {
    ScatterRequest req = begin_reverse(src, dst, backend, insert);
    req.end();
}

ScatterRequest VecScatter::begin(const Vec& src, Vec& dst, ScatterBackend backend,
                                 InsertMode insert) const {
    NNCOMM_CHECK_MSG(src.local_size() == src_local_ && dst.local_size() == dst_local_,
                     "VecScatter::begin: vectors do not match the planned layouts");
    NNCOMM_CHECK_MSG(insert == InsertMode::Insert || backend == ScatterBackend::HandTuned,
                     "VecScatter: Add mode requires the hand-tuned backend");
    switch (backend) {
        case ScatterBackend::HandTuned:
            return begin_hand_tuned(src, sends_, self_src_, dst, recvs_, self_dst_, insert,
                                    ht_fwd_send_, ht_fwd_recv_);
        case ScatterBackend::DatatypeBaseline:
            return begin_datatype(src.data(), dst.data(), coll::AlltoallwAlgo::RoundRobin,
                                  dt::EngineKind::SingleContext, ScatterMode::Forward);
        case ScatterBackend::DatatypeOptimized:
            return begin_datatype(src.data(), dst.data(), coll::AlltoallwAlgo::Binned,
                                  dt::EngineKind::DualContext, ScatterMode::Forward);
    }
    return {};
}

ScatterRequest VecScatter::begin_reverse(Vec& src, const Vec& dst, ScatterBackend backend,
                                         InsertMode insert) const {
    NNCOMM_CHECK_MSG(src.local_size() == src_local_ && dst.local_size() == dst_local_,
                     "VecScatter::begin_reverse: vectors do not match the planned layouts");
    NNCOMM_CHECK_MSG(insert == InsertMode::Insert || backend == ScatterBackend::HandTuned,
                     "VecScatter: Add mode requires the hand-tuned backend");
    switch (backend) {
        case ScatterBackend::HandTuned:
            // The plans swap roles wholesale: forward-receivers become
            // senders of their dst entries, forward-senders accumulate
            // into their src entries.
            return begin_hand_tuned(dst, recvs_, self_dst_, src, sends_, self_src_, insert,
                                    ht_rev_send_, ht_rev_recv_);
        case ScatterBackend::DatatypeBaseline:
            // Reverse: the argument arrays swap roles exactly.
            return begin_datatype(dst.data(), src.data(), coll::AlltoallwAlgo::RoundRobin,
                                  dt::EngineKind::SingleContext, ScatterMode::Reverse);
        case ScatterBackend::DatatypeOptimized:
            return begin_datatype(dst.data(), src.data(), coll::AlltoallwAlgo::Binned,
                                  dt::EngineKind::DualContext, ScatterMode::Reverse);
    }
    return {};
}

ScatterRequest VecScatter::begin_hand_tuned(
    const Vec& from, const std::vector<PeerPlan>& from_plans,
    const std::vector<Index>& from_self, Vec& to, const std::vector<PeerPlan>& to_plans,
    const std::vector<Index>& to_self, InsertMode insert,
    std::vector<std::vector<double>>& send_bufs,
    std::vector<std::vector<double>>& recv_bufs) const {
    // PETSc's default path: explicit packing and per-peer point-to-point,
    // no derived datatypes, no collective. The staging buffers persist in
    // the scatter; after the first execute these resizes are no-ops.
    ScatterRequest req;
    req.path_ = ScatterRequest::Path::HandTuned;
    req.comm_ = comm_;
    req.to_plans_ = &to_plans;
    req.recv_bufs_ = &recv_bufs;
    req.to_ = &to;
    req.insert_ = insert;

    recv_bufs.resize(to_plans.size());
    req.recv_reqs_.reserve(to_plans.size());
    for (std::size_t i = 0; i < to_plans.size(); ++i) {
        recv_bufs[i].resize(to_plans[i].offsets.size());
        req.recv_reqs_.push_back(
            comm_->irecv(recv_bufs[i].data(), recv_bufs[i].size() * 8, dt::Datatype::byte(),
                         to_plans[i].rank, kScatterTag));
    }

    send_bufs.resize(from_plans.size());
    for (std::size_t i = 0; i < from_plans.size(); ++i) {
        const PeerPlan& p = from_plans[i];
        send_bufs[i].resize(p.offsets.size());
        const double* s = from.data();
        for (std::size_t k = 0; k < p.offsets.size(); ++k) {
            send_bufs[i][k] = s[p.offsets[k]];
        }
        comm_->isend(send_bufs[i].data(), send_bufs[i].size() * 8, dt::Datatype::byte(), p.rank,
                     kScatterTag);
    }

    // Local moves overlap the transfers.
    for (std::size_t k = 0; k < from_self.size(); ++k) {
        if (insert == InsertMode::Insert) {
            to.data()[to_self[k]] = from.data()[from_self[k]];
        } else {
            to.data()[to_self[k]] += from.data()[from_self[k]];
        }
    }
    return req;
}

ScatterRequest VecScatter::begin_datatype(const void* sendbuf, void* recvbuf,
                                          coll::AlltoallwAlgo algo, dt::EngineKind engine,
                                          ScatterMode mode) const {
    ScatterRequest req;
    req.comm_ = comm_;
    req.saved_engine_ = comm_->engine_kind();
    req.restore_engine_ = true;
    comm_->set_engine(engine);
    coll::CollConfig cfg;
    cfg.alltoallw_algo = algo;
    cfg.persistent_protocol = persistent_protocol_;

    const bool forward = mode == ScatterMode::Forward;
    const auto& scounts = forward ? w_sendcounts_ : w_recvcounts_;
    const auto& sdispls = forward ? w_sdispls_ : w_rdispls_;
    const auto& stypes = forward ? w_sendtypes_ : w_recvtypes_;
    const auto& rcounts = forward ? w_recvcounts_ : w_sendcounts_;
    const auto& rdispls = forward ? w_rdispls_ : w_sdispls_;
    const auto& rtypes = forward ? w_recvtypes_ : w_sendtypes_;

    // The optimized backend (binned + dual-context) runs through a
    // persistent AlltoallwPlan: the first execute in each direction
    // compiles its cached Schedule, later executes replay it
    // allocation-free. The baseline backend stays one-shot — it reproduces
    // the paper's measured baseline, where this rebuild cost is part of the
    // story.
    if (persistent_ && algo == coll::AlltoallwAlgo::Binned) {
        auto& plan = forward ? fwd_plan_ : rev_plan_;
        if (!plan) {
            plan = std::make_unique<coll::AlltoallwPlan>(*comm_, scounts, sdispls, stypes,
                                                         rcounts, rdispls, rtypes, cfg, engine);
        }
        req.path_ = ScatterRequest::Path::Plan;
        req.plan_ = plan.get();
        plan->begin(sendbuf, recvbuf);
    } else {
        req.path_ = ScatterRequest::Path::OneShot;
        req.coll_ = coll::ialltoallw(*comm_, sendbuf, scounts, sdispls, stypes, recvbuf,
                                     rcounts, rdispls, rtypes, cfg);
    }
    return req;
}

bool ScatterRequest::test() {
    NNCOMM_CHECK_MSG(active(), "ScatterRequest::test on an inactive request");
    switch (path_) {
        case Path::HandTuned: {
            bool all = true;
            for (rt::Request& r : recv_reqs_) {
                if (!comm_->test(r)) all = false;
            }
            return all;
        }
        case Path::OneShot: return coll_.test();
        case Path::Plan: return plan_->test();
        case Path::None: break;
    }
    return true;
}

void ScatterRequest::end() {
    NNCOMM_CHECK_MSG(active(), "ScatterRequest::end on an inactive request");
    switch (path_) {
        case Path::HandTuned: {
            comm_->waitall(recv_reqs_);
            auto& recv_bufs = *recv_bufs_;
            for (std::size_t i = 0; i < to_plans_->size(); ++i) {
                const auto& p = (*to_plans_)[i];
                double* d = to_->data();
                for (std::size_t k = 0; k < p.offsets.size(); ++k) {
                    if (insert_ == InsertMode::Insert) {
                        d[p.offsets[k]] = recv_bufs[i][k];
                    } else {
                        d[p.offsets[k]] += recv_bufs[i][k];
                    }
                }
            }
            recv_reqs_.clear();
            break;
        }
        case Path::OneShot: coll_.wait(); break;
        case Path::Plan: plan_->end(); break;
        case Path::None: break;
    }
    if (restore_engine_) comm_->set_engine(saved_engine_);
    path_ = Path::None;
}

}  // namespace nncomm::pk

// VecScatter: general gather/scatter between two distributed vectors.
//
// A scatter is defined by two equal-length index sets: entry k moves
// src[is_src[k]] -> dst[is_dst[k]]. Index sets are replicated (every rank
// passes the full lists), so the communication plan is computed locally
// with no setup traffic.
//
// Three execution backends reproduce the paper's §5.4 comparison:
//
//   HandTuned         — PETSc's default: explicit pack loops and individual
//                       isend/irecv per peer (the "hand-tuned" series).
//   DatatypeBaseline  — MPI derived datatypes (per-peer hindexed over the
//                       vector storage) + the round-robin Alltoallw + the
//                       single-context pack engine: the MVAPICH2-0.9.5
//                       series.
//   DatatypeOptimized — the same derived datatypes + the binned Alltoallw +
//                       the dual-context engine: the MVAPICH2-New series.
//
// All backends move identical bytes; they differ only in packing strategy
// and communication schedule.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "coll/collectives.hpp"
#include "coll/persistent.hpp"
#include "petsckit/is.hpp"
#include "petsckit/vec.hpp"

namespace nncomm::pk {

enum class ScatterBackend {
    HandTuned,
    DatatypeBaseline,
    DatatypeOptimized,
};

/// Direction of an execute(): Forward moves src -> dst along the planned
/// pairs; Reverse moves dst -> src (PETSc's SCATTER_REVERSE — the adjoint
/// data motion, used e.g. to push ghost contributions back to owners).
enum class ScatterMode { Forward, Reverse };

/// What happens at the destination: Insert overwrites, Add accumulates
/// (PETSc's ADD_VALUES; only the hand-tuned backend supports Add, matching
/// PETSc — the MPI-datatype path has no receive-side reduction).
enum class InsertMode { Insert, Add };

inline const char* scatter_backend_name(ScatterBackend b) {
    switch (b) {
        case ScatterBackend::HandTuned: return "hand-tuned";
        case ScatterBackend::DatatypeBaseline: return "datatype-baseline";
        case ScatterBackend::DatatypeOptimized: return "datatype-optimized";
    }
    return "?";
}

class ScatterRequest;

class VecScatter {
public:
    /// Plans the scatter. `src_layout`/`dst_layout` describe the two
    /// vectors; the index sets are the full replicated lists, must have
    /// equal length, contain no duplicate destinations, and index within
    /// the respective layouts.
    VecScatter(rt::Comm& comm, const Layout& src_layout, const IndexSet& is_src,
               const Layout& dst_layout, const IndexSet& is_dst);

    /// Convenience: plan between two existing vectors' layouts.
    VecScatter(const Vec& src, const IndexSet& is_src, const Vec& dst, const IndexSet& is_dst)
        : VecScatter(src.comm(), src.layout(), is_src, dst.layout(), is_dst) {}

    /// Sparse-discovery gather plan (collective). Unlike the replicated
    /// constructor, each rank passes only ITS OWN needs: the global src
    /// indices whose values should land in this rank's dst slots, in slot
    /// order (dst slot k receives src[needed_global[k]]; `dst_layout` must
    /// give this rank exactly needed_global.size() entries). Nobody knows
    /// its reader set up front — the plan discovers the sparse
    /// neighborhood with one rt::sparse_exchange of per-owner request
    /// lists instead of dense O(p)-per-rank count vectors, so setup cost
    /// scales with the actual neighborhood, not the communicator size. The
    /// resulting scatter is indistinguishable from one planned with
    /// replicated index sets describing the same pairs.
    static VecScatter gather_sparse(rt::Comm& comm, const Layout& src_layout,
                                    std::span<const Index> needed_global,
                                    const Layout& dst_layout);

    /// Executes the planned scatter src -> dst (collective). Vectors must
    /// match the layouts the scatter was planned with. Add mode requires
    /// the HandTuned backend (as in PETSc, the MPI-datatype receive path
    /// has no reduction).
    void execute(const Vec& src, Vec& dst, ScatterBackend backend,
                 InsertMode insert = InsertMode::Insert) const;
    /// The reverse scatter dst -> src (PETSc's SCATTER_REVERSE): entry k
    /// moves dst[is_dst[k]] back into src[is_src[k]]. Add mode accumulates
    /// into src (the ghost-contribution push-back pattern).
    void execute_reverse(Vec& src, const Vec& dst, ScatterBackend backend,
                         InsertMode insert = InsertMode::Insert) const;

    /// Split-phase scatter (PETSc's VecScatterBegin/VecScatterEnd): begin()
    /// posts the receives, packs and fires the sends and performs the local
    /// moves, then returns while the transfers are in flight — overlap
    /// interior compute, optionally poking ScatterRequest::test(), then
    /// end() completes the receive side. execute() is begin() + end(), so
    /// the split path is bit-identical to the blocking one on every
    /// backend. Buffer contract: src must stay unmodified and dst's
    /// scattered entries untouched until end() returns; at most one request
    /// per direction may be in flight per scatter (the persistent plan and
    /// the hand-tuned staging buffers are single-flight).
    ScatterRequest begin(const Vec& src, Vec& dst, ScatterBackend backend,
                         InsertMode insert = InsertMode::Insert) const;
    /// Split-phase reverse scatter; pairs with ScatterRequest::end().
    ScatterRequest begin_reverse(Vec& src, const Vec& dst, ScatterBackend backend,
                                 InsertMode insert = InsertMode::Insert) const;

    /// Persistent-plan toggle for the DatatypeOptimized backend (default
    /// on): the first execute in each direction compiles a persistent
    /// coll::AlltoallwPlan (per-peer engines, pack buffers, binned
    /// schedule) that later executes reuse allocation-free. Off forces
    /// every execute down the one-shot alltoallw — the pre-persistence
    /// path, kept for A/B benchmarking. The baseline backend is always
    /// one-shot (it reproduces the paper's measured baseline).
    void set_persistent(bool on) { persistent_ = on; }
    bool persistent() const { return persistent_; }

    /// Transport for the persistent plans (CollConfig::persistent_protocol):
    /// Auto lowers onto one-sided RMA windows when enabled, Rma forces
    /// them, Eager/Rendezvous force the two-sided schedule graph. Must be
    /// set identically on every rank, before the first execute (existing
    /// plans are not rebuilt).
    void set_persistent_protocol(rt::Protocol proto) { persistent_protocol_ = proto; }
    rt::Protocol persistent_protocol() const { return persistent_protocol_; }
    /// True when that direction's plan exists and lowered onto RMA windows.
    bool forward_rma() const { return fwd_plan_ && fwd_plan_->rma(); }
    bool reverse_rma() const { return rev_plan_ && rev_plan_->rma(); }

    /// The lazily built persistent plans (nullptr until the first
    /// DatatypeOptimized execute in that direction). Exposes the
    /// allocation/plan-hit counters tests and benches assert on.
    const coll::AlltoallwPlan* forward_plan() const { return fwd_plan_.get(); }
    const coll::AlltoallwPlan* reverse_plan() const { return rev_plan_.get(); }

    // -- introspection (benchmarks, netsim bridging) ----------------------------
    /// Bytes this rank sends to each peer (self transfer excluded).
    const std::vector<std::uint64_t>& send_bytes() const { return send_bytes_; }
    /// Contiguous blocks in this rank's send layout per peer (after
    /// adjacent-index merging) — the datatype "signature length".
    std::vector<std::uint64_t> send_blocks() const;
    std::uint64_t local_moves() const { return static_cast<std::uint64_t>(self_src_.size()); }

private:
    friend class ScatterRequest;

    VecScatter() = default;  ///< for gather_sparse, which fills members itself

    struct PeerPlan {
        int rank = -1;
        std::vector<Index> offsets;  ///< local element offsets, in k order
    };

    // Generic first half shared by both directions: posts receives, packs
    // and fires the sends, performs the local moves, and returns the
    // request whose end() unpacks. `send_bufs`/`recv_bufs` are the
    // direction's persistent staging buffers (sized on first use).
    ScatterRequest begin_hand_tuned(const Vec& from, const std::vector<PeerPlan>& from_plans,
                                    const std::vector<Index>& from_self, Vec& to,
                                    const std::vector<PeerPlan>& to_plans,
                                    const std::vector<Index>& to_self, InsertMode insert,
                                    std::vector<std::vector<double>>& send_bufs,
                                    std::vector<std::vector<double>>& recv_bufs) const;
    ScatterRequest begin_datatype(const void* sendbuf, void* recvbuf,
                                  coll::AlltoallwAlgo algo, dt::EngineKind engine,
                                  ScatterMode mode) const;

    // Constructor tail shared with gather_sparse: derives send_bytes_ and
    // the prebuilt Alltoallw argument arrays from sends_/recvs_/self_*.
    void finalize_plans(int n, int rank);

    rt::Comm* comm_ = nullptr;
    Index src_local_ = 0;
    Index dst_local_ = 0;
    std::vector<PeerPlan> sends_;  ///< peers I send to (ascending rank)
    std::vector<PeerPlan> recvs_;  ///< peers I receive from (ascending rank)
    std::vector<Index> self_src_;  ///< local src offsets moved locally
    std::vector<Index> self_dst_;
    std::vector<std::uint64_t> send_bytes_;  ///< per rank, bytes

    // Prebuilt per-peer hindexed datatypes for the datatype backends
    // (absolute byte offsets into the vectors' local storage).
    std::vector<std::size_t> w_sendcounts_, w_recvcounts_;
    std::vector<std::ptrdiff_t> w_sdispls_, w_rdispls_;
    std::vector<dt::Datatype> w_sendtypes_, w_recvtypes_;

    // Persistent state, built lazily on first use. Each rank thread owns
    // its VecScatter (like its Comm), so mutable-without-locks is safe.
    bool persistent_ = true;
    rt::Protocol persistent_protocol_ = rt::Protocol::Auto;
    mutable std::unique_ptr<coll::AlltoallwPlan> fwd_plan_, rev_plan_;
    mutable std::vector<std::vector<double>> ht_fwd_send_, ht_fwd_recv_;
    mutable std::vector<std::vector<double>> ht_rev_send_, ht_rev_recv_;
};

/// One in-flight split-phase scatter, returned by VecScatter::begin /
/// begin_reverse. Move-only; end() must be called exactly once (it is the
/// matching collective completion), after which the request is inert.
class ScatterRequest {
public:
    ScatterRequest() = default;
    ScatterRequest(ScatterRequest&&) = default;
    ScatterRequest& operator=(ScatterRequest&&) = default;
    ScatterRequest(const ScatterRequest&) = delete;
    ScatterRequest& operator=(const ScatterRequest&) = delete;

    /// True between begin() and end().
    bool active() const { return path_ != Path::None; }

    /// One nonblocking progress pass over the in-flight transfers; true
    /// once all of them have landed (end() is still required — it performs
    /// the receive-side unpack for the hand-tuned backend and folds the
    /// statistics).
    bool test();

    /// Completes the scatter: waits for the transfers, unpacks the
    /// received data, restores the communicator's engine kind.
    void end();

private:
    friend class VecScatter;
    enum class Path : std::uint8_t { None, HandTuned, OneShot, Plan };

    Path path_ = Path::None;
    rt::Comm* comm_ = nullptr;

    // Hand-tuned backend: outstanding receives + the unpack plan.
    const std::vector<VecScatter::PeerPlan>* to_plans_ = nullptr;
    std::vector<std::vector<double>>* recv_bufs_ = nullptr;
    Vec* to_ = nullptr;
    InsertMode insert_ = InsertMode::Insert;
    std::vector<rt::Request> recv_reqs_;

    // Datatype backends: a one-shot schedule request or the persistent plan.
    coll::CollRequest coll_;
    coll::AlltoallwPlan* plan_ = nullptr;
    dt::EngineKind saved_engine_ = dt::EngineKind::DualContext;
    bool restore_engine_ = false;
};

}  // namespace nncomm::pk

#include "petsckit/snes.hpp"

#include "petsckit/ksp.hpp"

namespace nncomm::pk {

SnesResult newton_solve(const NonlinearSystem& system, Vec& x, const SnesConfig& config) {
    SnesResult result;
    Vec f = x.clone_empty();
    Vec dx = x.clone_empty();
    Vec trial = x.clone_empty();
    Vec neg_f = x.clone_empty();

    system.residual(x, f);
    double fnorm = f.norm2();
    const double f0 = fnorm;
    result.residual_norm = fnorm;
    if (fnorm <= config.atol) {
        result.converged = true;
        return result;
    }

    for (int it = 1; it <= config.max_iters; ++it) {
        // Assemble J(x) and solve J dx = -F(x).
        MatAIJ jac(x.comm(), x.layout_ptr());
        system.jacobian(x, jac);
        jac.assemble(config.scatter_backend);

        neg_f.copy_from(f);
        neg_f.scale(-1.0);
        dx.zero();
        Vec diag = x.clone_empty();
        jac.get_diagonal(diag);
        JacobiPreconditioner pc(std::move(diag));
        MatOperator J(jac);
        const KspResult lin = cg(J, neg_f, dx, config.ksp, &pc);
        result.total_ksp_iterations += lin.iterations;

        // Backtracking line search on ||F(x + lambda dx)||.
        double lambda = 1.0;
        double trial_norm = fnorm;
        for (int bt = 0; bt <= config.max_backtracks; ++bt) {
            trial.copy_from(x);
            trial.axpy(lambda, dx);
            system.residual(trial, f);
            trial_norm = f.norm2();
            if (!config.line_search || trial_norm < fnorm) break;
            lambda *= 0.5;
        }
        x.copy_from(trial);
        fnorm = trial_norm;
        result.iterations = it;
        result.residual_norm = fnorm;
        if (fnorm <= config.rtol * f0 || fnorm <= config.atol) {
            result.converged = true;
            return result;
        }
    }
    return result;
}

}  // namespace nncomm::pk

// SNES: Newton–Krylov nonlinear solvers (the layer above KSP in PETSc's
// architecture, Figure 1 of the paper).
//
// Solves F(x) = 0 by damped Newton iteration: each step assembles the
// Jacobian J(x) (a fresh MatAIJ — assembly rebuilds the ghost scatter, as
// PETSc does on nonzero-pattern changes), solves J dx = -F(x) with CG, and
// applies a backtracking line search on ||F||. Every residual evaluation,
// Jacobian matvec and line-search probe runs the communication stack the
// paper optimizes (ghost exchanges, scatters, allreduces).
#pragma once

#include <functional>
#include <memory>

#include "petsckit/ksp.hpp"
#include "petsckit/mat.hpp"
#include "petsckit/vec.hpp"

namespace nncomm::pk {

/// A nonlinear system F(x) = 0 with an assembled Jacobian.
class NonlinearSystem {
public:
    virtual ~NonlinearSystem() = default;
    /// f = F(x). Collective.
    virtual void residual(const Vec& x, Vec& f) const = 0;
    /// Assembles J(x) into a fresh matrix over `layout` (insert only into
    /// locally-owned rows). The caller assembles and owns the matrix.
    virtual void jacobian(const Vec& x, MatAIJ& jac) const = 0;
};

struct SnesConfig {
    double rtol = 1e-8;       ///< ||F|| reduction relative to the first iterate
    double atol = 1e-12;      ///< absolute ||F|| tolerance
    int max_iters = 50;
    KspConfig ksp{1e-6, 1e-50, 1000};  ///< inner linear solves (inexact Newton)
    bool line_search = true;  ///< backtracking on ||F||
    int max_backtracks = 8;
    /// Backend for the Jacobian's ghost scatter — the experiment knob.
    ScatterBackend scatter_backend = ScatterBackend::HandTuned;
};

struct SnesResult {
    bool converged = false;
    int iterations = 0;            ///< Newton steps taken
    double residual_norm = 0.0;    ///< final ||F(x)||
    int total_ksp_iterations = 0;  ///< summed inner CG iterations
};

/// Newton's method with analytic Jacobian and Jacobi-preconditioned CG.
/// x holds the initial guess and is overwritten with the solution.
SnesResult newton_solve(const NonlinearSystem& system, Vec& x, const SnesConfig& config = {});

}  // namespace nncomm::pk

#include "petsckit/ts.hpp"

namespace nncomm::pk {

HeatImplicitOp::HeatImplicitOp(std::shared_ptr<const DMDA> dmda, double dt,
                               coll::CollConfig config)
    : lap_(std::move(dmda), config), inv_dt_(1.0 / dt) {
    NNCOMM_CHECK_MSG(dt > 0.0, "HeatImplicitOp: dt must be positive");
}

void HeatImplicitOp::apply(const Vec& x, Vec& y) const {
    // y = (-Δ)x with identity boundary rows ...
    lap_.apply(x, y);
    // ... plus x/dt on interior points only (boundary rows stay pure
    // identity so Dirichlet values are preserved exactly).
    const DMDA& da = lap_.dmda();
    const GridBox& o = da.owned();
    const double* xd = x.data();
    double* yd = y.data();
    std::size_t at = 0;
    for (Index k = o.zs; k < o.zs + o.zm; ++k) {
        for (Index j = o.ys; j < o.ys + o.ym; ++j) {
            for (Index i = o.xs; i < o.xs + o.xm; ++i, ++at) {
                if (!lap_.on_boundary(i, j, k)) yd[at] += inv_dt_ * xd[at];
            }
        }
    }
}

void HeatImplicitOp::fill_diagonal(Vec& d) const {
    lap_.fill_diagonal(d);
    const DMDA& da = lap_.dmda();
    const GridBox& o = da.owned();
    double* dd = d.data();
    std::size_t at = 0;
    for (Index k = o.zs; k < o.zs + o.zm; ++k) {
        for (Index j = o.ys; j < o.ys + o.ym; ++j) {
            for (Index i = o.xs; i < o.xs + o.xm; ++i, ++at) {
                if (!lap_.on_boundary(i, j, k)) dd[at] += inv_dt_;
            }
        }
    }
}

HeatSolver::HeatSolver(std::shared_ptr<const DMDA> dmda, const TsConfig& config)
    : dmda_(dmda), config_(config), lap_(dmda, config.coll) {
    NNCOMM_CHECK_MSG(config.dt > 0.0, "HeatSolver: dt must be positive");
    if (config_.scheme == TimeScheme::BackwardEuler) {
        implicit_op_ = std::make_unique<HeatImplicitOp>(dmda_, config_.dt, config_.coll);
        Vec d = Vec(dmda_->comm(), dmda_->layout());
        implicit_op_->fill_diagonal(d);
        pc_ = std::make_unique<JacobiPreconditioner>(std::move(d));
    }
    rhs_ = Vec(dmda_->comm(), dmda_->layout());
    lap_u_ = rhs_.clone_empty();
}

double HeatSolver::explicit_stability_limit() const {
    const double h = lap_.h();
    return h * h / (2.0 * dmda_->dim());
}

int HeatSolver::step(Vec& u, const Vec* forcing) {
    const GridBox& o = dmda_->owned();
    int iters = 0;
    if (config_.scheme == TimeScheme::BackwardEuler) {
        // rhs = u/dt + f on interior, 0 on boundary.
        const double inv_dt = 1.0 / config_.dt;
        const double* ud = u.data();
        const double* fd = forcing ? forcing->data() : nullptr;
        double* rd = rhs_.data();
        std::size_t at = 0;
        for (Index k = o.zs; k < o.zs + o.zm; ++k) {
            for (Index j = o.ys; j < o.ys + o.ym; ++j) {
                for (Index i = o.xs; i < o.xs + o.xm; ++i, ++at) {
                    rd[at] = lap_.on_boundary(i, j, k)
                                 ? 0.0
                                 : inv_dt * ud[at] + (fd ? fd[at] : 0.0);
                }
            }
        }
        const KspResult r = cg(*implicit_op_, rhs_, u, config_.ksp, pc_.get());
        NNCOMM_CHECK_MSG(r.converged, "HeatSolver: implicit solve did not converge");
        iters = r.iterations;
    } else {
        // u += dt * (Δu + f); LaplacianOp computes -Δ (identity on
        // boundary), so subtract it and pin boundary values.
        lap_.apply(u, lap_u_);
        const double* fd = forcing ? forcing->data() : nullptr;
        const double* ld = lap_u_.data();
        double* ud = u.data();
        std::size_t at = 0;
        for (Index k = o.zs; k < o.zs + o.zm; ++k) {
            for (Index j = o.ys; j < o.ys + o.ym; ++j) {
                for (Index i = o.xs; i < o.xs + o.xm; ++i, ++at) {
                    if (lap_.on_boundary(i, j, k)) {
                        ud[at] = 0.0;
                    } else {
                        ud[at] += config_.dt * (-ld[at] + (fd ? fd[at] : 0.0));
                    }
                }
            }
        }
    }
    time_ += config_.dt;
    return iters;
}

int HeatSolver::advance(Vec& u, int steps, const Vec* forcing) {
    int total = 0;
    for (int s = 0; s < steps; ++s) total += step(u, forcing);
    return total;
}

}  // namespace nncomm::pk

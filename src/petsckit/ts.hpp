// TS: time stepping for the heat equation u_t = Δu + f on a DMDA grid
// (the "TS" layer of PETSc's architecture, Figure 1 of the paper).
//
// Two integrators:
//   - backward (implicit) Euler: (I/dt - Δ) u^{n+1} = u^n/dt + f, solved
//     with Jacobi-preconditioned CG each step (unconditionally stable);
//   - forward (explicit) Euler: u^{n+1} = u^n + dt (Δu^n + f), stable only
//     for dt <= h²/(2·dim).
// Boundary points stay pinned at zero (homogeneous Dirichlet), consistent
// with LaplacianOp's boundary elimination. Every step performs at least
// one ghost exchange; the implicit path adds the full CG communication.
#pragma once

#include <memory>

#include "petsckit/laplacian.hpp"

namespace nncomm::pk {

enum class TimeScheme { BackwardEuler, ForwardEuler };

struct TsConfig {
    double dt = 1e-3;
    TimeScheme scheme = TimeScheme::BackwardEuler;
    KspConfig ksp{1e-10, 1e-50, 2000};  ///< implicit solves
    coll::CollConfig coll{};            ///< ghost-exchange algorithms
};

/// Shifted operator for the implicit step: y = x/dt + (-Δ)x on interior
/// points, y = x on boundary points (SPD, so CG applies).
class HeatImplicitOp final : public LinearOperator {
public:
    HeatImplicitOp(std::shared_ptr<const DMDA> dmda, double dt, coll::CollConfig config);
    void apply(const Vec& x, Vec& y) const override;
    void fill_diagonal(Vec& d) const;

private:
    LaplacianOp lap_;
    double inv_dt_;
    mutable Vec scratch_;
};

class HeatSolver {
public:
    HeatSolver(std::shared_ptr<const DMDA> dmda, const TsConfig& config = {});

    /// Advances u by one step with source term f (may be invalid for f=0).
    /// Returns the inner CG iterations (0 for the explicit scheme).
    int step(Vec& u, const Vec* forcing = nullptr);

    /// Advances n steps; returns total inner iterations.
    int advance(Vec& u, int steps, const Vec* forcing = nullptr);

    const DMDA& dmda() const { return *dmda_; }
    const TsConfig& config() const { return config_; }
    double time() const { return time_; }
    /// Largest stable dt for the explicit scheme on this grid.
    double explicit_stability_limit() const;

private:
    std::shared_ptr<const DMDA> dmda_;
    TsConfig config_;
    LaplacianOp lap_;
    std::unique_ptr<HeatImplicitOp> implicit_op_;
    std::unique_ptr<JacobiPreconditioner> pc_;
    double time_ = 0.0;
    Vec rhs_, lap_u_;
};

}  // namespace nncomm::pk

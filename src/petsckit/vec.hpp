// Distributed vector (PETSc Vec).
//
// Each rank stores its contiguous owned range of a Layout (the uniform
// split by default, or an arbitrary partition, e.g. DMDA box volumes).
// Pointwise operations are purely local; inner products and norms reduce
// over the communicator (all ranks of the communicator must call them
// together, as with every collective in this library).
#pragma once

#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "coll/collectives.hpp"
#include "petsckit/layout.hpp"
#include "runtime/comm.hpp"

namespace nncomm::pk {

class Vec {
public:
    Vec() = default;

    /// Uniform split of `global_size` across the communicator.
    Vec(rt::Comm& comm, Index global_size)
        : Vec(comm, std::make_shared<const Layout>(Layout::uniform(global_size, comm.size()))) {}

    /// Arbitrary replicated partition (must have comm.size() ranks).
    Vec(rt::Comm& comm, std::shared_ptr<const Layout> layout)
        : comm_(&comm), layout_(std::move(layout)) {
        NNCOMM_CHECK_MSG(layout_ && layout_->size() == comm.size(),
                         "Vec: layout rank count must match communicator");
        range_ = layout_->range(comm.rank());
        data_.assign(static_cast<std::size_t>(range_.count()), 0.0);
    }

    /// Collective constructor from this rank's local size: gathers the
    /// counts to build the shared layout.
    static Vec from_local_size(rt::Comm& comm, Index local) {
        std::vector<Index> counts(static_cast<std::size_t>(comm.size()));
        coll::allgather(comm, &local, sizeof(Index), dt::Datatype::byte(), counts.data(),
                        sizeof(Index), dt::Datatype::byte());
        return Vec(comm, std::make_shared<const Layout>(Layout::from_counts(counts)));
    }

    bool valid() const { return comm_ != nullptr; }
    rt::Comm& comm() const { return *comm_; }
    const Layout& layout() const { return *layout_; }
    std::shared_ptr<const Layout> layout_ptr() const { return layout_; }
    Index global_size() const { return layout_->global(); }
    Index local_size() const { return range_.count(); }
    const OwnershipRange& range() const { return range_; }

    std::span<double> local() { return data_; }
    std::span<const double> local() const { return data_; }
    double* data() { return data_.data(); }
    const double* data() const { return data_.data(); }

    /// Accessor by global index (must be locally owned).
    double& at_global(Index i) {
        NNCOMM_CHECK_MSG(range_.contains(i), "at_global: index not owned");
        return data_[static_cast<std::size_t>(i - range_.begin)];
    }
    double at_global(Index i) const {
        NNCOMM_CHECK_MSG(range_.contains(i), "at_global: index not owned");
        return data_[static_cast<std::size_t>(i - range_.begin)];
    }

    // -- local pointwise operations -------------------------------------------
    void set_all(double v) {
        for (double& x : data_) x = v;
    }
    void zero() { set_all(0.0); }
    void scale(double a) {
        for (double& x : data_) x *= a;
    }
    void shift(double a) {
        for (double& x : data_) x += a;
    }
    /// this += a * x
    void axpy(double a, const Vec& x) {
        check_compatible(x);
        for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += a * x.data_[i];
    }
    /// this = a * this + x
    void aypx(double a, const Vec& x) {
        check_compatible(x);
        for (std::size_t i = 0; i < data_.size(); ++i) data_[i] = a * data_[i] + x.data_[i];
    }
    /// this = x - y
    void waxpy_diff(const Vec& x, const Vec& y) {
        check_compatible(x);
        check_compatible(y);
        for (std::size_t i = 0; i < data_.size(); ++i) data_[i] = x.data_[i] - y.data_[i];
    }
    void copy_from(const Vec& x) {
        check_compatible(x);
        data_ = x.data_;
    }
    void pointwise_mult(const Vec& x, const Vec& y) {
        check_compatible(x);
        check_compatible(y);
        for (std::size_t i = 0; i < data_.size(); ++i) data_[i] = x.data_[i] * y.data_[i];
    }

    // -- reductions (collective) ------------------------------------------------
    double dot(const Vec& x) const {
        check_compatible(x);
        double acc = 0.0;
        for (std::size_t i = 0; i < data_.size(); ++i) acc += data_[i] * x.data_[i];
        return coll::allreduce_one(*comm_, acc, coll::ReduceOp::Sum);
    }
    double norm2() const { return std::sqrt(dot(*this)); }
    double norm_inf() const {
        double acc = 0.0;
        for (double v : data_) acc = std::max(acc, std::abs(v));
        return coll::allreduce_one(*comm_, acc, coll::ReduceOp::Max);
    }
    double sum() const {
        double acc = 0.0;
        for (double v : data_) acc += v;
        return coll::allreduce_one(*comm_, acc, coll::ReduceOp::Sum);
    }

    /// A zeroed vector with the same layout and communicator.
    Vec clone_empty() const {
        Vec v;
        v.comm_ = comm_;
        v.layout_ = layout_;
        v.range_ = range_;
        v.data_.assign(data_.size(), 0.0);
        return v;
    }

private:
    void check_compatible(const Vec& x) const {
        NNCOMM_CHECK_MSG(x.range_.begin == range_.begin && x.range_.end == range_.end &&
                             x.global_size() == global_size(),
                         "Vec operation on incompatible layouts");
    }

    rt::Comm* comm_ = nullptr;
    std::shared_ptr<const Layout> layout_;
    OwnershipRange range_{};
    std::vector<double> data_;
};

}  // namespace nncomm::pk

#include "runtime/comm.hpp"

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "core/error.hpp"
#include "datatype/pack.hpp"

namespace nncomm::rt {

namespace detail {

/// Internal collective traffic uses a shifted context so it can never match
/// user-posted wildcard receives on the same communicator.
inline constexpr int kInternalContextOffset = 1 << 30;

struct Envelope {
    int source = -1;
    int tag = -1;
    int context = 0;
    std::vector<std::byte> payload;
};

struct RequestState {
    enum class Kind { Send, Recv };
    Kind kind = Kind::Send;

    // Receive descriptor.
    void* buf = nullptr;
    std::size_t count = 0;
    dt::Datatype type;
    int source = kAnySource;
    int tag = kAnyTag;
    int context = 0;
    int owner_rank = -1;

    // Filled when a matching envelope arrives.
    bool matched = false;
    Envelope env;

    // Set by wait() after unpacking.
    bool complete = false;
    RecvStatus status;
};

struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Envelope> unexpected;                          // arrival order
    std::deque<std::shared_ptr<RequestState>> posted;         // post order
};

struct WorldState {
    int nranks = 0;
    std::vector<std::unique_ptr<Mailbox>> boxes;
    std::atomic<bool> aborted{false};
    std::atomic<int> next_context{1};

    void abort_all() {
        aborted.store(true, std::memory_order_release);
        for (auto& b : boxes) {
            std::lock_guard<std::mutex> lk(b->mu);
            b->cv.notify_all();
        }
    }
};

namespace {

bool matches(const RequestState& req, const Envelope& env) {
    return req.context == env.context && (req.source == kAnySource || req.source == env.source) &&
           (req.tag == kAnyTag || req.tag == env.tag);
}

void deliver(WorldState& world, int dest, Envelope&& env) {
    NNCOMM_CHECK_MSG(dest >= 0 && dest < world.nranks, "send to invalid rank");
    Mailbox& box = *world.boxes[static_cast<std::size_t>(dest)];
    std::lock_guard<std::mutex> lk(box.mu);
    for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
        if (matches(**it, env)) {
            (*it)->env = std::move(env);
            (*it)->matched = true;
            box.posted.erase(it);
            box.cv.notify_all();
            return;
        }
    }
    box.unexpected.push_back(std::move(env));
    box.cv.notify_all();  // wake probers
}

}  // namespace

}  // namespace detail

using detail::Envelope;
using detail::Mailbox;
using detail::RequestState;
using detail::WorldState;

// ---------------------------------------------------------------------------
// Comm

int Comm::size() const { return world_->nranks; }

Request Comm::irecv_ctx(void* buf, std::size_t count, const dt::Datatype& type, int source,
                        int tag, int context) {
    NNCOMM_CHECK_MSG(source == kAnySource || (source >= 0 && source < size()),
                     "irecv: invalid source rank");
    auto req = std::make_shared<RequestState>();
    req->kind = RequestState::Kind::Recv;
    req->buf = buf;
    req->count = count;
    req->type = type;
    req->source = source;
    req->tag = tag;
    req->context = context;
    req->owner_rank = rank_;

    Mailbox& box = *world_->boxes[static_cast<std::size_t>(rank_)];
    std::lock_guard<std::mutex> lk(box.mu);
    for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
        if (detail::matches(*req, *it)) {
            req->env = std::move(*it);
            req->matched = true;
            box.unexpected.erase(it);
            return Request(std::move(req));
        }
    }
    box.posted.push_back(req);
    return Request(std::move(req));
}

Request Comm::irecv(void* buf, std::size_t count, const dt::Datatype& type, int source,
                    int tag) {
    return irecv_ctx(buf, count, type, source, tag, context_);
}

void Comm::send_ctx(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                    int tag, int context) {
    NNCOMM_CHECK(type.valid());
    Envelope env;
    env.source = rank_;
    env.tag = tag;
    env.context = context;

    const std::uint64_t total = static_cast<std::uint64_t>(type.size()) * count;
    if (total > 0) {
        const auto& flat = type.flat();
        const bool fully_dense =
            flat.contiguous() && static_cast<std::ptrdiff_t>(type.size()) == type.extent();
        if (fully_dense) {
            // Contiguous fast path: one copy onto the wire, all Comm time.
            PhaseScope scope(timers_, Phase::Comm);
            env.payload.resize(static_cast<std::size_t>(total));
            std::memcpy(env.payload.data(), buf, env.payload.size());
        } else {
            // Noncontiguous: pipelined chunks through the configured engine.
            env.payload.resize(static_cast<std::size_t>(total));
            auto engine = dt::make_engine(engine_kind_, buf, type, count, engine_config_);
            std::size_t off = 0;
            dt::ChunkView chunk;
            while (engine->next_chunk(chunk)) {
                // Moving the chunk onto the wire is Comm time; the engine
                // internally charged its Pack/Search time.
                PhaseScope scope(timers_, Phase::Comm);
                if (chunk.dense) {
                    for (const auto& [ptr, len] : chunk.iov) {
                        std::memcpy(env.payload.data() + off, ptr, len);
                        off += len;
                    }
                } else {
                    std::memcpy(env.payload.data() + off, chunk.packed.data(),
                                chunk.packed.size());
                    off += chunk.packed.size();
                }
            }
            NNCOMM_CHECK(off == env.payload.size());
            timers_ += engine->timers();
            counters_ += engine->counters();
        }
    }

    PhaseScope scope(timers_, Phase::Comm);
    detail::deliver(*world_, dest, std::move(env));
}

void Comm::send(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                int tag) {
    send_ctx(buf, count, type, dest, tag, context_);
}

Request Comm::isend(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                    int tag) {
    // Buffered-eager: the payload is packed and delivered immediately, so
    // the request is born complete. Packing order across isends is the call
    // order — which is exactly what the binned Alltoallw exploits.
    send(buf, count, type, dest, tag);
    auto req = std::make_shared<RequestState>();
    req->kind = RequestState::Kind::Send;
    req->complete = true;
    return Request(std::move(req));
}

RecvStatus Comm::wait(Request& request) {
    NNCOMM_CHECK_MSG(request.valid(), "wait on null request");
    RequestState& req = *request.state_;
    if (req.complete) return req.status;
    NNCOMM_CHECK(req.kind == RequestState::Kind::Recv);

    Mailbox& box = *world_->boxes[static_cast<std::size_t>(req.owner_rank)];
    {
        std::unique_lock<std::mutex> lk(box.mu);
        box.cv.wait(lk, [&] {
            return req.matched || world_->aborted.load(std::memory_order_acquire);
        });
        if (!req.matched) throw Error("runtime aborted while waiting for a message");
    }

    // Unpack outside the lock; only this rank's thread touches req now.
    const std::size_t capacity = req.type.size() * req.count;
    NNCOMM_CHECK_MSG(req.env.payload.size() <= capacity, "message longer than receive buffer");
    if (!req.env.payload.empty()) {
        const auto& flat = req.type.flat();
        if (flat.contiguous() && static_cast<std::ptrdiff_t>(req.type.size()) == req.type.extent()) {
            PhaseScope scope(timers_, Phase::Comm);
            std::memcpy(req.buf, req.env.payload.data(), req.env.payload.size());
        } else {
            // Receive-side scatter: specialized plan kernels when the layout
            // compiles to one, generic cursor walk otherwise.
            PhaseScope scope(timers_, Phase::Pack);
            const std::span<const std::byte> payload(req.env.payload.data(),
                                                     req.env.payload.size());
            const dt::PackPlan& plan = req.type.plan();
            if (plan.specialized()) {
                ++counters_.plan_hits;
                plan.unpack(flat, static_cast<std::byte*>(req.buf), req.count, payload);
            } else {
                dt::TypeCursor cur(&flat, req.count);
                const std::size_t n =
                    dt::unpack_bytes(static_cast<std::byte*>(req.buf), cur, payload);
                NNCOMM_CHECK(n == req.env.payload.size());
            }
        }
    }
    req.status.source = req.env.source;
    req.status.tag = req.env.tag;
    req.status.bytes = req.env.payload.size();
    req.env.payload.clear();
    req.env.payload.shrink_to_fit();
    req.complete = true;
    return req.status;
}

void Comm::waitall(std::span<Request> reqs) {
    for (Request& r : reqs) {
        if (r.valid()) wait(r);
    }
}

RecvStatus Comm::recv(void* buf, std::size_t count, const dt::Datatype& type, int source,
                      int tag) {
    Request r = irecv(buf, count, type, source, tag);
    return wait(r);
}

RecvStatus Comm::sendrecv(const void* sendbuf, std::size_t sendcount,
                          const dt::Datatype& sendtype, int dest, int sendtag, void* recvbuf,
                          std::size_t recvcount, const dt::Datatype& recvtype, int source,
                          int recvtag) {
    Request r = irecv(recvbuf, recvcount, recvtype, source, recvtag);
    send(sendbuf, sendcount, sendtype, dest, sendtag);
    return wait(r);
}

void Comm::send_i(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                  int tag) {
    send_ctx(buf, count, type, dest, tag, context_ + detail::kInternalContextOffset);
}

RecvStatus Comm::recv_i(void* buf, std::size_t count, const dt::Datatype& type, int source,
                        int tag) {
    Request r = irecv_i(buf, count, type, source, tag);
    return wait(r);
}

Request Comm::isend_i(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                      int tag) {
    send_i(buf, count, type, dest, tag);
    auto req = std::make_shared<RequestState>();
    req->kind = RequestState::Kind::Send;
    req->complete = true;
    return Request(std::move(req));
}

Request Comm::irecv_i(void* buf, std::size_t count, const dt::Datatype& type, int source,
                      int tag) {
    return irecv_ctx(buf, count, type, source, tag, context_ + detail::kInternalContextOffset);
}

RecvStatus Comm::sendrecv_i(const void* sendbuf, std::size_t sendcount,
                            const dt::Datatype& sendtype, int dest, int sendtag, void* recvbuf,
                            std::size_t recvcount, const dt::Datatype& recvtype, int source,
                            int recvtag) {
    Request r = irecv_i(recvbuf, recvcount, recvtype, source, recvtag);
    send_i(sendbuf, sendcount, sendtype, dest, sendtag);
    return wait(r);
}

namespace {
ProbeStatus scan_unexpected(Mailbox& box, int source, int tag, int context) {
    // Caller holds box.mu.
    detail::RequestState pattern;
    pattern.source = source;
    pattern.tag = tag;
    pattern.context = context;
    for (const Envelope& env : box.unexpected) {
        if (detail::matches(pattern, env)) {
            return ProbeStatus{true, env.source, env.tag, env.payload.size()};
        }
    }
    return ProbeStatus{};
}
}  // namespace

ProbeStatus Comm::probe(int source, int tag) {
    Mailbox& box = *world_->boxes[static_cast<std::size_t>(rank_)];
    std::unique_lock<std::mutex> lk(box.mu);
    for (;;) {
        ProbeStatus st = scan_unexpected(box, source, tag, context_);
        if (st.found) return st;
        box.cv.wait(lk, [&] {
            return world_->aborted.load(std::memory_order_acquire) ||
                   scan_unexpected(box, source, tag, context_).found;
        });
        if (world_->aborted.load(std::memory_order_acquire)) {
            throw Error("runtime aborted while probing");
        }
    }
}

ProbeStatus Comm::iprobe(int source, int tag) {
    Mailbox& box = *world_->boxes[static_cast<std::size_t>(rank_)];
    std::lock_guard<std::mutex> lk(box.mu);
    return scan_unexpected(box, source, tag, context_);
}

Comm Comm::dup() {
    // Deterministic tree numbering: all ranks perform the same sequence of
    // dups, so (parent context, per-parent dup ordinal) is globally
    // consistent. Contexts live below kInternalContextOffset.
    ++dup_count_;
    NNCOMM_CHECK_MSG(dup_count_ < 64, "too many duplicates of one communicator");
    const int child = context_ * 64 + dup_count_;
    NNCOMM_CHECK_MSG(child < (1 << 24), "communicator dup tree too deep");
    Comm c(world_, rank_, child);
    c.engine_kind_ = engine_kind_;
    c.engine_config_ = engine_config_;
    return c;
}

void Comm::barrier() {
    // Dissemination barrier: ceil(log2 N) rounds of zero-byte exchanges on
    // the internal context.
    const int n = size();
    const int ctx = context_ + detail::kInternalContextOffset;
    for (int k = 1; k < n; k <<= 1) {
        const int to = (rank_ + k) % n;
        const int from = (rank_ - k % n + n) % n;
        Request r = irecv_ctx(nullptr, 0, dt::Datatype::byte(), from, kInternalTagBase, ctx);
        send_ctx(nullptr, 0, dt::Datatype::byte(), to, kInternalTagBase, ctx);
        wait(r);
    }
}

// ---------------------------------------------------------------------------
// World

World::World(int nranks) : nranks_(nranks), state_(std::make_unique<WorldState>()) {
    NNCOMM_CHECK_MSG(nranks >= 1, "World needs at least one rank");
    state_->nranks = nranks;
    state_->boxes.reserve(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) state_->boxes.push_back(std::make_unique<Mailbox>());
}

World::~World() = default;

void World::run(const std::function<void(Comm&)>& fn) {
    // Reset abort state and clear any residue from a previous run.
    state_->aborted.store(false);
    for (auto& b : state_->boxes) {
        std::lock_guard<std::mutex> lk(b->mu);
        b->unexpected.clear();
        b->posted.clear();
    }

    std::mutex err_mu;
    std::exception_ptr first_error;

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r) {
        threads.emplace_back([this, r, &fn, &err_mu, &first_error] {
            Comm comm(state_.get(), r, /*context=*/0);
            try {
                fn(comm);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lk(err_mu);
                    if (!first_error) first_error = std::current_exception();
                }
                state_->abort_all();
            }
        });
    }
    for (auto& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace nncomm::rt

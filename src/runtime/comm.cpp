#include "runtime/comm.hpp"

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "datatype/pack.hpp"

namespace nncomm::rt {

namespace detail {

/// Internal collective traffic uses a shifted context so it can never match
/// user-posted wildcard receives on the same communicator.
inline constexpr int kInternalContextOffset = 1 << 30;

inline constexpr std::size_t kCacheLine = 64;

/// Owning byte buffer for one staged payload. Unlike std::vector, resizing
/// for reuse never value-initializes: the eager path overwrites every byte
/// it claims, so a recycled pool buffer costs zero writes beyond the pack
/// copy itself.
struct PayloadBuffer {
    std::unique_ptr<std::byte[]> buf;
    std::size_t cap = 0;
    std::size_t len = 0;

    PayloadBuffer() = default;
    PayloadBuffer(PayloadBuffer&& o) noexcept
        : buf(std::move(o.buf)), cap(std::exchange(o.cap, 0)), len(std::exchange(o.len, 0)) {}
    PayloadBuffer& operator=(PayloadBuffer&& o) noexcept {
        buf = std::move(o.buf);
        cap = std::exchange(o.cap, 0);
        len = std::exchange(o.len, 0);
        return *this;
    }

    std::byte* data() { return buf.get(); }
    const std::byte* data() const { return buf.get(); }
    std::size_t size() const { return len; }
    bool empty() const { return len == 0; }

    /// Grows capacity (uninitialized) if needed and sets the logical size.
    void resize_for_overwrite(std::size_t n) {
        if (n > cap) {
            buf.reset(new std::byte[n]);  // default-init: no memset
            cap = n;
        }
        len = n;
    }
    void reset() {
        buf.reset();
        cap = 0;
        len = 0;
    }
};

/// Per-world size-classed pool of payload buffers with a per-rank cache in
/// front of the shared store. Buffers are acquired by sending ranks when a
/// message takes the buffered-eager path and released by the receiving rank
/// when the payload has been unpacked, so in steady state the same buffers
/// cycle between the ranks and rt_payload_allocs stays flat.
///
/// The per-rank caches are only ever touched by their owning rank's thread,
/// so the common acquire/release is lock-free (rt_pool_local_hits); the
/// shared mutex is paid once per kTransferBatch buffers when a cache runs
/// dry (batch refill) or over (batch flush). The shared store is bounded
/// two ways: a per-class buffer-count cap, and a byte budget across all
/// classes — without the latter, a large size class could pin
/// capacity x 8 MiB forever. Trimming frees the largest classes first;
/// resident_bytes_ never exceeds the budget, and its high-water mark is
/// mirrored into rt_pool_resident_bytes. Oversize payloads bypass the pool
/// entirely.
class PayloadPool {
public:
    static constexpr std::size_t kMinClassBytes = 256;
    static constexpr std::size_t kMaxClassBytes = std::size_t{8} << 20;  // 8 MB
    static constexpr std::size_t kNumClasses = 16;                       // 256 B .. 8 MB
    static constexpr std::size_t kBuffersPerClass = 16;
    static constexpr std::size_t kCachePerClass = 8;   ///< per-rank shelf cap
    static constexpr std::size_t kTransferBatch = 4;   ///< buffers per refill/flush
    static constexpr std::size_t kDefaultBudgetBytes = std::size_t{64} << 20;  // 64 MB

    void init(int nranks) { caches_.resize(static_cast<std::size_t>(nranks)); }

    void set_budget(std::size_t bytes) {
        std::lock_guard<std::mutex> lk(mu_);
        budget_bytes_ = bytes;
        trim_locked();
    }

    std::size_t resident_bytes() const {
        std::lock_guard<std::mutex> lk(mu_);
        return resident_bytes_;
    }

    /// Returns a buffer of logical size `bytes` (contents uninitialized).
    PayloadBuffer acquire(std::size_t bytes, int rank, StatCounters& counters) {
        PayloadBuffer out;
        if (bytes > kMaxClassBytes) {
            ++counters.rt_payload_allocs;
            out.resize_for_overwrite(bytes);
            return out;
        }
        const std::size_t idx = class_index(bytes);
        auto& shelf = caches_[static_cast<std::size_t>(rank)].shelf[idx];
        if (shelf.empty()) refill(idx, shelf, counters);
        if (!shelf.empty()) {
            out = std::move(shelf.back());
            shelf.pop_back();
            ++counters.rt_pool_hits;
            ++counters.rt_pool_local_hits;
            out.len = bytes;  // cap >= class size >= bytes
            return out;
        }
        ++counters.rt_pool_misses;
        ++counters.rt_payload_allocs;
        out.resize_for_overwrite(class_bytes(idx));  // allocate the full class
        out.len = bytes;
        return out;
    }

    /// Returns a buffer to the releasing rank's cache (or flushes a batch
    /// to the shared store when the shelf is full). Buffers that fit no
    /// class are freed.
    void release(PayloadBuffer&& b, int rank, StatCounters& counters) {
        if (b.cap < kMinClassBytes || b.cap > kMaxClassBytes) return;  // dropped
        const std::size_t idx = class_index(b.cap);
        if (class_bytes(idx) != b.cap) return;  // not one of ours
        auto& shelf = caches_[static_cast<std::size_t>(rank)].shelf[idx];
        if (shelf.size() >= kCachePerClass) flush(idx, shelf, counters);
        shelf.push_back(std::move(b));
    }

private:
    struct RankCache {
        std::array<std::vector<PayloadBuffer>, kNumClasses> shelf;
    };

    static std::size_t class_bytes(std::size_t idx) { return kMinClassBytes << idx; }
    static std::size_t class_index(std::size_t bytes) {
        if (bytes <= kMinClassBytes) return 0;
        return static_cast<std::size_t>(std::bit_width(bytes - 1)) - 8;  // 256 = 2^8
    }

    /// Moves up to kTransferBatch free buffers of class idx into `shelf`.
    void refill(std::size_t idx, std::vector<PayloadBuffer>& shelf, StatCounters& counters) {
        std::lock_guard<std::mutex> lk(mu_);
        ++counters.rt_lock_acquisitions;
        auto& store = free_[idx];
        for (std::size_t i = 0; i < kTransferBatch && !store.empty(); ++i) {
            resident_bytes_ -= store.back().cap;
            shelf.push_back(std::move(store.back()));
            store.pop_back();
        }
    }

    /// Moves kTransferBatch buffers from `shelf` into the shared store,
    /// honoring the per-class count cap and the byte budget (largest
    /// classes trimmed first). Overflowing buffers are freed.
    void flush(std::size_t idx, std::vector<PayloadBuffer>& shelf, StatCounters& counters) {
        std::lock_guard<std::mutex> lk(mu_);
        ++counters.rt_lock_acquisitions;
        auto& store = free_[idx];
        const std::size_t cls = class_bytes(idx);
        for (std::size_t i = 0; i < kTransferBatch && !shelf.empty(); ++i) {
            PayloadBuffer b = std::move(shelf.back());
            shelf.pop_back();
            if (store.size() >= kBuffersPerClass) continue;  // count cap: drop
            if (resident_bytes_ + cls > budget_bytes_) {
                trim_for_locked(cls, idx);
                if (resident_bytes_ + cls > budget_bytes_) continue;  // still over: drop
            }
            resident_bytes_ += cls;
            store.push_back(std::move(b));
        }
        if (resident_bytes_ > high_water_) high_water_ = resident_bytes_;
        if (high_water_ > counters.rt_pool_resident_bytes) {
            counters.rt_pool_resident_bytes = high_water_;
        }
    }

    /// Frees shelves from the largest class downward until `incoming` bytes
    /// fit under the budget, never trimming the class being inserted into
    /// below its own incoming buffer's worth.
    void trim_for_locked(std::size_t incoming, std::size_t target_idx) {
        for (std::size_t c = kNumClasses; c-- > 0 && resident_bytes_ + incoming > budget_bytes_;) {
            if (c == target_idx) continue;  // prefer evicting other classes
            auto& store = free_[c];
            while (!store.empty() && resident_bytes_ + incoming > budget_bytes_) {
                resident_bytes_ -= store.back().cap;
                store.pop_back();
            }
        }
        // Last resort: shrink the target class itself.
        auto& store = free_[target_idx];
        while (!store.empty() && resident_bytes_ + incoming > budget_bytes_) {
            resident_bytes_ -= store.back().cap;
            store.pop_back();
        }
    }

    void trim_locked() { trim_for_locked(0, kNumClasses - 1); }

    mutable std::mutex mu_;
    std::array<std::vector<PayloadBuffer>, kNumClasses> free_;  // guarded by mu_
    std::size_t resident_bytes_ = 0;                            // guarded by mu_
    std::size_t high_water_ = 0;                                // guarded by mu_
    std::size_t budget_bytes_ = kDefaultBudgetBytes;            // guarded by mu_
    std::vector<RankCache> caches_;  ///< caches_[r] touched only by rank r's thread
};

struct Envelope {
    int source = -1;
    int tag = -1;
    int context = 0;
    PayloadBuffer payload;
};

struct RequestState {
    enum class Kind { Send, Recv };
    Kind kind = Kind::Send;

    // Receive descriptor.
    void* buf = nullptr;
    std::size_t count = 0;
    dt::Datatype type;
    int source = kAnySource;
    int tag = kAnyTag;
    int context = 0;
    int owner_rank = -1;
    std::uint64_t post_seq = 0;  ///< posted-receive ordering across PRQ shards

    // Filled when a matching envelope arrives. For rendezvous transfers the
    // envelope is header-only: the sender already moved `direct_bytes` bytes
    // straight into `buf` before the release-store on `matched`; the
    // acquire-load in the receiver's completion path publishes everything.
    std::atomic<bool> matched{false};
    bool zero_copy = false;
    std::size_t direct_bytes = 0;
    Envelope env;

    // Send requests: set by the delivery engine (possibly from another
    // rank's progress call) when the envelope reaches its mailbox.
    std::atomic<bool> delivered{false};

    // Set by wait() after unpacking.
    bool complete = false;
    RecvStatus status;
};

/// Bounded lock-free SPSC ring of envelopes: the fastpath lane between one
/// (source, dest) pair. The producer is the sending rank's thread (eager
/// inline delivery; under a SchedulePolicy all traffic routes through the
/// mutex-guarded overflow instead, so the ring's single-producer invariant
/// is structural). The consumer is always the destination rank's thread.
/// Head and tail live on their own cache lines so the producer's store
/// never bounces the consumer's line.
class LaneRing {
public:
    static constexpr std::uint32_t kSlots = 8;  // power of two

    bool push(Envelope&& e) {
        const std::uint32_t t = tail_.load(std::memory_order_relaxed);
        if (t - head_.load(std::memory_order_acquire) >= kSlots) return false;  // full
        slots_[t & (kSlots - 1)] = std::move(e);
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    bool pop(Envelope& out) {
        const std::uint32_t h = head_.load(std::memory_order_relaxed);
        if (h == tail_.load(std::memory_order_acquire)) return false;  // empty
        out = std::move(slots_[h & (kSlots - 1)]);
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

private:
    std::array<Envelope, kSlots> slots_;
    alignas(kCacheLine) std::atomic<std::uint32_t> head_{0};  ///< consumer cursor
    alignas(kCacheLine) std::atomic<std::uint32_t> tail_{0};  ///< producer cursor
};

/// One per-source delivery lane of a mailbox.
struct alignas(kCacheLine) Lane {
    LaneRing ring;
    /// Envelopes pushed by this lane's source but not yet matched to a
    /// receive (in the ring, the overflow list, or the receiver's stash).
    /// A rendezvous sender reading 0 (acquire) knows every earlier message
    /// of its own is fully matched, so claiming a posted receive cannot
    /// overtake an older message — the per-pair FIFO proof.
    std::atomic<std::uint32_t> unconsumed{0};
    /// Nonzero while the overflow list holds envelopes; the producer spills
    /// to overflow whenever this is set (or the ring is full), so every
    /// ring entry is always older than every overflow entry.
    std::atomic<std::uint32_t> overflow_count{0};
    std::deque<Envelope> overflow;  ///< guarded by Mailbox::overflow_mu
    /// Receiver-side staging: envelopes drained from the ring/overflow that
    /// matched no posted receive (the per-source unexpected queue). Touched
    /// only by the destination rank's thread — no lock.
    std::deque<Envelope> stash;
};

/// One rank's inbox, sharded by source. Matching state splits three ways:
/// the lanes (producer->consumer envelope transport), the posted-receive
/// registry (PRQ — shared with rendezvous senders under posted_mu), and the
/// per-lane stashes (receiver-private unexpected queues). The seq counter
/// and sleeper registration implement the notify-only-when-someone-sleeps
/// discipline: deliverers bump seq after every push and take wait_mu/cv
/// only when a waiter has registered; waiters spin on seq, then register
/// and re-check before blocking, with a timed wait as the self-healing
/// backstop (also what absorbs the injected delayed-wakeup fault).
struct Mailbox {
    int nranks = 0;
    std::unique_ptr<Lane[]> lanes;
    /// Bitmask of lanes holding undrained envelopes, one bit per source.
    /// Producers set their bit after pushing; the receiver claims whole
    /// words with exchange(0) and visits only the flagged lanes, so a
    /// drain costs O(lanes with traffic), not O(world size).
    std::unique_ptr<std::atomic<std::uint64_t>[]> dirty;
    int dirty_words = 0;

    // -- posted-receive registry (PRQ), guarded by posted_mu ------------------
    // Sharded by source with a wildcard sidecar; post_seq orders entries
    // across shards so matching remains exactly MPI's earliest-posted-first.
    std::mutex posted_mu;
    std::vector<std::deque<std::shared_ptr<RequestState>>> prq_by_src;
    std::deque<std::shared_ptr<RequestState>> prq_wild;
    std::uint64_t next_post_seq = 0;  // guarded by posted_mu

    // -- delivery pulse / sleep-wake ------------------------------------------
    alignas(kCacheLine) std::atomic<std::uint64_t> seq{0};  ///< bumped per delivery
    std::uint64_t drained_seq = 0;  ///< receiver-private: seq at last full drain
    std::atomic<int> sleepers{0};
    std::mutex wait_mu;
    std::condition_variable cv;

    // -- overflow -------------------------------------------------------------
    std::mutex overflow_mu;  ///< guards every lane's overflow deque

    void init(int n) {
        nranks = n;
        lanes = std::make_unique<Lane[]>(static_cast<std::size_t>(n));
        dirty_words = (n + 63) / 64;
        dirty = std::make_unique<std::atomic<std::uint64_t>[]>(
            static_cast<std::size_t>(dirty_words));
        for (int w = 0; w < dirty_words; ++w) dirty[static_cast<std::size_t>(w)].store(0);
        prq_by_src.resize(static_cast<std::size_t>(n));
    }
};

/// A packed envelope waiting in a destination's delivery queue.
struct InFlight {
    Envelope env;
    int defer = 0;  ///< progress passes this envelope may still be held
    std::shared_ptr<RequestState> sender;  ///< completed on delivery (may be null)
};

/// Per-destination shard of the delivery engine. Senders enqueue under mu;
/// drains are serialized per destination by the `claimed` flag — a second
/// rank calling progress skips a claimed destination instead of blocking,
/// so progress calls from different ranks never serialize on one lock.
struct DestQueue {
    std::mutex mu;
    Rng rng;                  ///< guarded by mu; seeded from (policy.seed, dest)
    std::deque<InFlight> q;   ///< guarded by mu
    std::atomic<std::uint64_t> count{0};
    std::atomic<bool> claimed{false};  ///< drain ownership
};

struct WorldState {
    int nranks = 0;
    std::vector<std::unique_ptr<Mailbox>> boxes;
    std::atomic<bool> aborted{false};
    std::atomic<int> next_context{1};

    SchedulePolicy policy;  ///< fixed for the duration of a run

    PayloadPool pool;  ///< recycled buffered-eager payload buffers

    /// Per-(src, dst)-pair protocol cost models (protocol.hpp). Lines are
    /// single-writer (sender thread feeds eager_send/rdzv, receiver thread
    /// feeds eager_unpack), fits are read lock-free from the send path.
    std::unique_ptr<ProtoTable> proto;
    /// When enabled, replaces measured durations with the analytic model
    /// (set before run(), read-only during one).
    SyntheticProtoCosts synthetic;

    // Delivery engine state, sharded per destination.
    std::vector<std::unique_ptr<DestQueue>> destq;
    std::atomic<std::uint64_t> inflight_count{0};

    /// Shared immutable request for sends that complete inline (eager
    /// delivery and successful rendezvous). wait()/test() never write to a
    /// request that is already complete, so one instance serves every rank.
    std::shared_ptr<RequestState> done_send;

    void abort_all() {
        aborted.store(true, std::memory_order_release);
        for (auto& b : boxes) {
            b->seq.fetch_add(1, std::memory_order_seq_cst);
            // Acquire/release the sleep mutex so every waiter either sees
            // the flag before sleeping or is inside wait(); notify after
            // unlocking so woken threads don't bounce off a held mutex.
            { std::lock_guard<std::mutex> lk(b->wait_mu); }
            b->cv.notify_all();
        }
    }
};

namespace {

bool matches(const RequestState& req, const Envelope& env) {
    return req.context == env.context && (req.source == kAnySource || req.source == env.source) &&
           (req.tag == kAnyTag || req.tag == env.tag);
}

/// Wakes the destination after a delivery: bump the pulse, and notify only
/// if a waiter registered as sleeping. seq_cst on both sides closes the
/// race: a producer that reads sleepers == 0 is ordered before the waiter's
/// registration, so the waiter's pre-sleep seq re-check must observe the
/// bump and skip the block.
void pulse(Mailbox& box, StatCounters& counters, bool notify) {
    box.seq.fetch_add(1, std::memory_order_seq_cst);
    if (notify && box.sleepers.load(std::memory_order_seq_cst) > 0) {
        { std::lock_guard<std::mutex> lk(box.wait_mu); }
        box.cv.notify_all();
        ++counters.rt_cv_notifies;
    }
}

/// Delivers one envelope along its lane: SPSC ring when it has room and no
/// overflow backlog exists, otherwise the mutex-guarded overflow list.
/// `force_overflow` routes SchedulePolicy traffic: deliveries made by a
/// drain-claim holder always use the overflow list, which keeps the ring's
/// single-producer invariant purely structural (the producer is only ever
/// the source rank's own thread).
void deliver_lane(WorldState& world, int dest, Envelope&& env, StatCounters& counters,
                  bool force_overflow = false, bool notify = true) {
    NNCOMM_CHECK_MSG(dest >= 0 && dest < world.nranks, "send to invalid rank");
    const int src = env.source;
    Mailbox& box = *world.boxes[static_cast<std::size_t>(dest)];
    Lane& lane = box.lanes[static_cast<std::size_t>(src)];
    lane.unconsumed.fetch_add(1, std::memory_order_relaxed);
    if (!force_overflow && lane.overflow_count.load(std::memory_order_acquire) == 0 &&
        lane.ring.push(std::move(env))) {
        ++counters.rt_lane_fast_deliveries;
    } else {
        {
            std::lock_guard<std::mutex> lk(box.overflow_mu);
            ++counters.rt_lock_acquisitions;
            lane.overflow.push_back(std::move(env));
            lane.overflow_count.fetch_add(1, std::memory_order_release);
        }
        ++counters.rt_lane_overflow_deliveries;
    }
    box.dirty[static_cast<std::size_t>(src) >> 6].fetch_or(std::uint64_t{1} << (src & 63),
                                                           std::memory_order_release);
    pulse(box, counters, notify);
}

/// Finds and removes the earliest-posted receive matching `env`, walking
/// the source shard and the wildcard sidecar merged by post_seq. Caller
/// holds posted_mu.
std::shared_ptr<RequestState> match_prq(Mailbox& box, const Envelope& env) {
    auto& ps = box.prq_by_src[static_cast<std::size_t>(env.source)];
    auto& pw = box.prq_wild;
    std::size_t i = 0, j = 0;
    while (i < ps.size() || j < pw.size()) {
        const bool from_src =
            j >= pw.size() || (i < ps.size() && ps[i]->post_seq < pw[j]->post_seq);
        auto& dq = from_src ? ps : pw;
        std::size_t& k = from_src ? i : j;
        if (matches(*dq[k], env)) {
            std::shared_ptr<RequestState> req = dq[k];
            dq.erase(dq.begin() + static_cast<std::ptrdiff_t>(k));
            return req;
        }
        ++k;
    }
    return nullptr;
}

}  // namespace

/// One drain pass of one destination's delivery queue: delivers every
/// envelope whose defer budget is exhausted, in queue order, skipping any
/// envelope whose source already had an earlier envelope held back this
/// pass — deliveries interleave across sources but per-pair FIFO is exactly
/// the queue order. Each pass decrements at least one defer budget when the
/// queue is nonempty, so repeated passes always terminate. Perturbation
/// events observed here are charged to the driving rank's counters.
/// Returns the number of envelopes delivered. Caller holds the drain claim
/// and dq.mu.
std::size_t drain_dest(WorldState& world, int dest, DestQueue& dq, StatCounters& counters) {
    std::size_t delivered = 0;
    std::vector<int> held;  // sources with an earlier envelope still queued
    held.reserve(8);
    auto src_held = [&](int src) {
        for (int s : held) {
            if (s == src) return true;
        }
        return false;
    };
    for (auto it = dq.q.begin(); it != dq.q.end();) {
        const int src = it->env.source;
        if (src_held(src)) {
            ++it;
            continue;
        }
        if (it->defer > 0) {
            --it->defer;
            held.push_back(src);
            ++it;
            continue;
        }
        InFlight f = std::move(*it);
        it = dq.q.erase(it);
        dq.count.fetch_sub(1, std::memory_order_release);
        world.inflight_count.fetch_sub(1, std::memory_order_release);
        bool notify = true;
        if (world.policy.wakeup_delay_prob > 0 &&
            dq.rng.bernoulli(world.policy.wakeup_delay_prob)) {
            notify = false;
            ++counters.sched_wakeup_delays;
        }
        deliver_lane(world, dest, std::move(f.env), counters, /*force_overflow=*/true, notify);
        if (f.sender) {
            f.sender->delivered.store(true, std::memory_order_release);
            // Wake the sender's own waiter too: the send-side wait parks on
            // the sender's mailbox pulse, and without this bump a send
            // completed by another rank's drain has no wakeup at all — the
            // lost notify behind the oversubscribed-contention livelock.
            // The wakeup-delay fault suppresses it like any other notify;
            // the timed wait self-heals.
            const int owner = f.sender->owner_rank;
            if (owner >= 0 && owner < world.nranks) {
                pulse(*world.boxes[static_cast<std::size_t>(owner)], counters, notify);
            }
        }
        ++delivered;
    }
    return delivered;
}

/// Delivery-engine progress: walk the destination shards starting at the
/// driving rank's own inbox, claim each unclaimed nonempty queue, and drain
/// it. A queue another rank is already draining is skipped, not waited on.
std::size_t progress_world(WorldState& world, int self, StatCounters& counters) {
    if (world.inflight_count.load(std::memory_order_acquire) == 0) return 0;
    std::size_t delivered = 0;
    const int n = world.nranks;
    for (int off = 0; off < n; ++off) {
        const int d = (self + off) % n;
        DestQueue& dq = *world.destq[static_cast<std::size_t>(d)];
        if (dq.count.load(std::memory_order_acquire) == 0) continue;
        if (dq.claimed.exchange(true, std::memory_order_acquire)) continue;  // owned elsewhere
        {
            std::lock_guard<std::mutex> lk(dq.mu);
            ++counters.rt_lock_acquisitions;
            delivered += drain_dest(world, d, dq, counters);
        }
        dq.claimed.store(false, std::memory_order_release);
    }
    return delivered;
}

}  // namespace detail

using detail::Envelope;
using detail::Mailbox;
using detail::RequestState;
using detail::WorldState;

// ---------------------------------------------------------------------------
// Comm

namespace {

/// Bounded spin before a waiter registers as a sleeper. Kept short: the
/// check is one relaxed load of the mailbox pulse, and on an oversubscribed
/// host the yields hand the slice to the rank that will produce the data.
constexpr int kSpinChecks = 16;
constexpr int kSpinYields = 4;
constexpr auto kSleepSlice = std::chrono::microseconds(200);

/// Dense copies below this size are not phase-timed: the two clock reads
/// would cost more than the copy. Engine-driven noncontiguous packs are
/// always timed — their chunks amortize the clock.
constexpr std::size_t kTimedCopyMinBytes = 4096;

/// Messages below this size never feed the protocol cost model: the two
/// clock reads would outweigh the copy being measured, and the learned
/// threshold is clamped above this anyway (ProtoTable::kMinThreshold).
constexpr std::size_t kAdaptiveObserveMinBytes = 1024;

/// One cost-model observation in nanoseconds: the measured duration, or the
/// analytic value when the world runs synthetic protocol costs.
double observed_ns(const WorldState& world, double base_ns, double per_byte_ns,
                   std::size_t bytes, std::chrono::steady_clock::time_point t0) {
    if (world.synthetic.enabled) {
        return base_ns + per_byte_ns * static_cast<double>(bytes);
    }
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             t0)
            .count());
}

}  // namespace

std::size_t Comm::effective_rendezvous_threshold(int dest, const dt::Datatype& type) {
    std::size_t thr = rendezvous_threshold_;
    if (adaptive_protocol_engaged()) {
        thr = world_->proto->learned_threshold(rank_, dest, family_of(type),
                                               rendezvous_threshold_);
    }
    if (thr > counters_.rt_proto_threshold_bytes_hi) counters_.rt_proto_threshold_bytes_hi = thr;
    if (counters_.rt_proto_threshold_bytes_lo == 0 ||
        thr < counters_.rt_proto_threshold_bytes_lo) {
        counters_.rt_proto_threshold_bytes_lo = thr;
    }
    return thr;
}

int Comm::size() const { return world_->nranks; }

/// Drains every lane of this rank's mailbox (rings first, then overflow —
/// ring entries are always older) and runs arrival matching: each envelope
/// goes to the earliest matching posted receive, or to its lane's stash
/// (the per-source unexpected queue). Returns true if any envelope was
/// processed. Only the owning rank's thread calls this.
bool Comm::process_arrivals() {
    Mailbox& box = *world_->boxes[static_cast<std::size_t>(rank_)];
    const std::uint64_t pulse_now = box.seq.load(std::memory_order_seq_cst);
    if (pulse_now == box.drained_seq) return false;
    box.drained_seq = pulse_now;

    bool any = false;
    std::unique_lock<std::mutex> prq_lk;  // taken lazily, once per drain
    for (int w = 0; w < box.dirty_words; ++w) {
        std::uint64_t bits =
            box.dirty[static_cast<std::size_t>(w)].exchange(0, std::memory_order_acquire);
        while (bits != 0) {
            const int src = w * 64 + std::countr_zero(bits);
            bits &= bits - 1;
            detail::Lane& lane = box.lanes[static_cast<std::size_t>(src)];

            // Every ring entry is older than every overflow entry (the
            // producer spills only while a backlog exists), so drain the
            // ring fully first, then the overflow.
            const bool spill = lane.overflow_count.load(std::memory_order_acquire) > 0;
            if (!prq_lk.owns_lock()) {
                prq_lk = std::unique_lock<std::mutex>(box.posted_mu);
                ++counters_.rt_lock_acquisitions;
            }
            // Match in arrival order; misses go to the stash. The
            // unconsumed decrement for a match happens after the commit
            // (matched release-store) inside the same posted_mu critical
            // section: a rendezvous sender that observes the decremented
            // count must acquire posted_mu to touch the registry, which
            // orders it after this commit — per-pair FIFO holds.
            auto sort_one = [&](Envelope&& env) {
                std::shared_ptr<RequestState> req = detail::match_prq(box, env);
                if (req) {
                    req->env = std::move(env);
                    req->matched.store(true, std::memory_order_release);
                    lane.unconsumed.fetch_sub(1, std::memory_order_release);
                } else {
                    lane.stash.push_back(std::move(env));
                }
            };
            Envelope e;
            while (lane.ring.pop(e)) sort_one(std::move(e));
            if (spill) {
                std::lock_guard<std::mutex> olk(box.overflow_mu);
                ++counters_.rt_lock_acquisitions;
                while (!lane.overflow.empty()) {
                    sort_one(std::move(lane.overflow.front()));
                    lane.overflow.pop_front();
                }
                lane.overflow_count.store(0, std::memory_order_release);
            }
            any = true;
        }
    }
    return any;
}

/// Completion check for a receive request: fast-path the matched flag, and
/// only re-drain the lanes when the mailbox pulse moved since the last
/// drain. The receiver-private drained_seq makes repeated calls from a
/// spin loop nearly free.
bool Comm::try_complete_recv(RequestState& req) {
    if (req.matched.load(std::memory_order_acquire)) return true;
    process_arrivals();
    return req.matched.load(std::memory_order_acquire);
}

std::shared_ptr<RequestState> Comm::alloc_request() {
    constexpr std::size_t kCacheCap = 256;
    constexpr std::size_t kProbes = 4;
    const std::size_t n = req_cache_.size();
    for (std::size_t probe = 0; probe < kProbes && probe < n; ++probe) {
        req_cursor_ = req_cursor_ + 1 < n ? req_cursor_ + 1 : 0;
        std::shared_ptr<RequestState>& slot = req_cache_[req_cursor_];
        if (slot.use_count() == 1) {
            // Idle: only the cache references it. Scrub and hand it out.
            RequestState& r = *slot;
            r.post_seq = 0;
            r.matched.store(false, std::memory_order_relaxed);
            r.zero_copy = false;
            r.direct_bytes = 0;
            r.env = Envelope{};
            r.delivered.store(false, std::memory_order_relaxed);
            r.complete = false;
            r.status = RecvStatus{};
            return slot;
        }
    }
    auto r = std::make_shared<RequestState>();
    if (n < kCacheCap) req_cache_.push_back(r);
    return r;
}

Request Comm::irecv_ctx(void* buf, std::size_t count, const dt::Datatype& type, int source,
                        int tag, int context) {
    NNCOMM_CHECK_MSG(source == kAnySource || (source >= 0 && source < size()),
                     "irecv: invalid source rank");
    std::shared_ptr<RequestState> req = alloc_request();
    req->kind = RequestState::Kind::Recv;
    req->buf = buf;
    req->count = count;
    req->type = type;
    req->source = source;
    req->tag = tag;
    req->context = context;
    req->owner_rank = rank_;

    Mailbox& box = *world_->boxes[static_cast<std::size_t>(rank_)];
    process_arrivals();  // bring the unexpected queues up to date

    // Unexpected-queue scan: take the earliest matching envelope. The
    // stashes are receiver-private, so the common posted-receive miss and
    // the probe-then-recv hit are both lock-free.
    const int lo = source == kAnySource ? 0 : source;
    const int hi = source == kAnySource ? box.nranks - 1 : source;
    for (int src = lo; src <= hi; ++src) {
        detail::Lane& lane = box.lanes[static_cast<std::size_t>(src)];
        for (auto it = lane.stash.begin(); it != lane.stash.end(); ++it) {
            if (detail::matches(*req, *it)) {
                req->env = std::move(*it);
                lane.stash.erase(it);
                req->matched.store(true, std::memory_order_relaxed);  // same thread consumes
                lane.unconsumed.fetch_sub(1, std::memory_order_release);
                return Request(std::move(req));
            }
        }
    }

    // No queued message: register in the PRQ so arrival matching and
    // rendezvous senders can find the receive.
    {
        std::lock_guard<std::mutex> lk(box.posted_mu);
        ++counters_.rt_lock_acquisitions;
        req->post_seq = box.next_post_seq++;
        if (source == kAnySource) {
            box.prq_wild.push_back(req);
        } else {
            box.prq_by_src[static_cast<std::size_t>(source)].push_back(req);
        }
    }
    return Request(std::move(req));
}

Request Comm::irecv(void* buf, std::size_t count, const dt::Datatype& type, int source,
                    int tag) {
    return irecv_ctx(buf, count, type, source, tag, context_);
}

/// Packs `buf` into an envelope exactly as the buffered-eager path always
/// has: contiguous layouts in one copy, noncontiguous layouts through the
/// configured pipelined engine, with the same Comm/Pack/Search accounting.
/// The payload buffer comes from this rank's pool cache; zero-byte messages
/// never touch the pool or the allocator at all.
Envelope Comm::pack_envelope(const void* buf, std::size_t count, const dt::Datatype& type,
                             int dest, int tag, int context, std::size_t total) {
    NNCOMM_CHECK(type.valid());
    Envelope env;
    env.source = rank_;
    env.tag = tag;
    env.context = context;

    if (total == 0) return env;  // header-only: zero-byte sends are pure synchronization

    // Feed the eager_send cost line: the staging copy below is exactly the
    // sender-side cost the eager protocol pays that rendezvous avoids.
    const bool observe =
        total >= kAdaptiveObserveMinBytes && adaptive_protocol_engaged();
    std::chrono::steady_clock::time_point t0;
    if (observe && !world_->synthetic.enabled) t0 = std::chrono::steady_clock::now();

    env.payload = world_->pool.acquire(total, rank_, counters_);
    counters_.rt_bytes_copied += total;  // sender-side staging copy
    const auto& flat = type.flat();
    const bool fully_dense =
        flat.contiguous() && static_cast<std::ptrdiff_t>(flat.size()) == flat.extent();
    if (fully_dense) {
        // Contiguous fast path: one copy onto the wire, all Comm time.
        // Copies below the timing cutoff go unclocked: two steady_clock
        // reads cost more than the copy itself and would dominate the
        // small-message rate the transport is built for.
        if (total >= kTimedCopyMinBytes) {
            PhaseScope scope(timers_, Phase::Comm);
            std::memcpy(env.payload.data(), buf, env.payload.size());
        } else {
            std::memcpy(env.payload.data(), buf, env.payload.size());
        }
    } else {
        // Noncontiguous: pipelined chunks through the configured engine.
        auto engine = dt::make_engine(engine_kind_, buf, type, count, engine_config_);
        std::size_t off = 0;
        dt::ChunkView chunk;
        while (engine->next_chunk(chunk)) {
            // Moving the chunk onto the wire is Comm time; the engine
            // internally charged its Pack/Search time.
            PhaseScope scope(timers_, Phase::Comm);
            if (chunk.dense) {
                for (const auto& [ptr, len] : chunk.iov) {
                    std::memcpy(env.payload.data() + off, ptr, len);
                    off += len;
                }
            } else {
                std::memcpy(env.payload.data() + off, chunk.packed.data(), chunk.packed.size());
                off += chunk.packed.size();
            }
        }
        NNCOMM_CHECK(off == env.payload.size());
        timers_ += engine->timers();
        counters_ += engine->counters();
    }
    if (observe) {
        const auto& syn = world_->synthetic;
        world_->proto->observe_eager_send(
            rank_, dest, family_of(type), static_cast<double>(total),
            observed_ns(*world_, syn.eager_send_base_ns, syn.eager_send_per_byte_ns, total, t0));
        ++counters_.rt_proto_adapt_updates;
    }
    return env;
}

/// Attempts the zero-copy rendezvous transfer: if the matching receive is
/// already posted at the destination, the payload moves straight into the
/// receiver's buffer in a single pass (memcpy for contiguous-to-contiguous,
/// plan kernels or engine-chunk streaming otherwise) and no envelope buffer
/// is ever allocated. Returns false — caller falls back to buffered eager —
/// when the receive is not posted, the message is empty or below an Auto
/// threshold, the hint forces Eager, or a SchedulePolicy is active (deferred
/// envelopes must all route through the delivery queues to keep per-pair
/// FIFO intact).
///
/// Order safety: our lane's `unconsumed` count must be zero — every earlier
/// message of ours is fully matched — before a posted receive may be
/// claimed. The count is decremented only after a match commit is published
/// under posted_mu, so once we hold posted_mu the registry reflects all of
/// our earlier traffic and claiming the earliest matching posted entry is
/// exactly what arrival matching would have done.
bool Comm::try_rendezvous(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                          int tag, int context, Protocol proto, std::size_t total) {
    if (proto == Protocol::Eager || world_->policy.enabled) return false;
    if (proto == Protocol::Rma) proto = Protocol::Auto;  // no window here: resolve like Auto
    NNCOMM_CHECK(type.valid());
    // Boundary contract (mirrored by coll/persistent.cpp, coll/schedule.cpp
    // phase_protocol and netsim/sim.cpp): rendezvous iff total > 0 AND
    // total >= threshold. `total < threshold_` below is the exact
    // complement of the >= convention — a message of exactly threshold
    // bytes attempts rendezvous; a zero-byte message never does, even at
    // threshold 0.
    if (total == 0) return false;
    if (proto == Protocol::Auto) {
        // Auto resolution: the effective threshold is the learned per-pair
        // crossover when adaptation is engaged and confident, the static
        // communicator threshold otherwise.
        if (total < effective_rendezvous_threshold(dest, type)) {
            ++counters_.rt_proto_eager_chosen;
            return false;
        }
        ++counters_.rt_proto_rdzv_chosen;
    }
    NNCOMM_CHECK_MSG(dest >= 0 && dest < size(), "send to invalid rank");

    Envelope header;
    header.source = rank_;
    header.tag = tag;
    header.context = context;

    Mailbox& box = *world_->boxes[static_cast<std::size_t>(dest)];
    detail::Lane& lane = box.lanes[static_cast<std::size_t>(rank_)];
    if (lane.unconsumed.load(std::memory_order_acquire) != 0) {
        return false;  // older messages of ours still in flight: keep FIFO, go eager
    }

    std::unique_lock<std::mutex> lk(box.posted_mu);
    ++counters_.rt_lock_acquisitions;
    std::shared_ptr<RequestState> r = detail::match_prq(box, header);
    if (!r) return false;  // unposted: degrade to buffered eager
    const auto& rflat = r->type.flat();
    NNCOMM_CHECK_MSG(total <= rflat.size() * r->count, "message longer than receive buffer");

    // Feed the rdzv cost line: the single direct pass below is the whole
    // marginal cost the rendezvous protocol pays once the claim succeeded.
    const bool observe =
        total >= kAdaptiveObserveMinBytes && adaptive_protocol_engaged();
    std::chrono::steady_clock::time_point t0;
    if (observe && !world_->synthetic.enabled) t0 = std::chrono::steady_clock::now();

    // The copy runs while posted_mu pins the request: the receiver's wait()
    // cannot observe a half-written buffer (matched is still false), an
    // aborting world cannot unwind the receive out from under us, and the
    // release-store on matched gives the bytes their happens-before edge
    // into the receiving thread.
    const auto& sflat = type.flat();
    const bool sdense =
        sflat.contiguous() && static_cast<std::ptrdiff_t>(sflat.size()) == sflat.extent();
    const bool rdense =
        rflat.contiguous() && static_cast<std::ptrdiff_t>(rflat.size()) == rflat.extent();
    auto* rbase = static_cast<std::byte*>(r->buf);

    if (sdense && rdense) {
        PhaseScope scope(timers_, Phase::Comm);
        std::memcpy(rbase, buf, total);
    } else if (!sdense && rdense) {
        // Gather: scattered sender layout into flat destination memory. All
        // kernel classes — Irregular included — are plan-driven now, so the
        // engine path survives only behind the fastpath escape hatch.
        const dt::PackPlan& plan = type.plan();
        if (engine_config_.enable_plan_fastpath) {
            PhaseScope scope(timers_, Phase::Pack);
            ++counters_.plan_hits;
            plan.pack(sflat, static_cast<const std::byte*>(buf), count, {rbase, total},
                      &counters_);
        } else {
            auto engine = dt::make_engine(engine_kind_, buf, type, count, engine_config_);
            std::size_t off = 0;
            dt::ChunkView chunk;
            while (engine->next_chunk(chunk)) {
                PhaseScope scope(timers_, Phase::Comm);
                if (chunk.dense) {
                    for (const auto& [ptr, len] : chunk.iov) {
                        std::memcpy(rbase + off, ptr, len);
                        off += len;
                    }
                } else {
                    std::memcpy(rbase + off, chunk.packed.data(), chunk.packed.size());
                    off += chunk.packed.size();
                }
            }
            NNCOMM_CHECK(off == total);
            timers_ += engine->timers();
            counters_ += engine->counters();
        }
    } else if (sdense && !rdense) {
        // Scatter: flat sender memory into the receiver's layout.
        const std::span<const std::byte> src(static_cast<const std::byte*>(buf), total);
        const dt::PackPlan& rplan = r->type.plan();
        PhaseScope scope(timers_, Phase::Pack);
        if (engine_config_.enable_plan_fastpath) {
            ++counters_.plan_hits;
            rplan.unpack(rflat, rbase, r->count, src, &counters_);
        } else {
            dt::TypeCursor cur(&rflat, r->count);
            const std::size_t n = dt::unpack_bytes(rbase, cur, src);
            NNCOMM_CHECK(n == total);
        }
    } else {
        // Both sides noncontiguous: the engine streams packed chunks out of
        // the sender layout and each chunk scatters straight into the
        // receiver layout at its running stream position — still one pass
        // over the payload with no staging buffer.
        auto engine = dt::make_engine(engine_kind_, buf, type, count, engine_config_);
        const dt::PackPlan& rplan = r->type.plan();
        const bool rspec = engine_config_.enable_plan_fastpath;
        if (rspec) ++counters_.plan_hits;
        dt::TypeCursor cur(&rflat, r->count);
        std::uint64_t pos = 0;
        auto scatter = [&](const std::byte* p, std::size_t len) {
            const std::span<const std::byte> piece(p, len);
            if (rspec) {
                rplan.unpack_range(rflat, rbase, r->count, pos, piece, &counters_);
            } else {
                const std::size_t n = dt::unpack_bytes(rbase, cur, piece);
                NNCOMM_CHECK(n == len);
            }
            pos += len;
        };
        dt::ChunkView chunk;
        while (engine->next_chunk(chunk)) {
            PhaseScope scope(timers_, Phase::Pack);
            if (chunk.dense) {
                for (const auto& [ptr, len] : chunk.iov) scatter(ptr, len);
            } else {
                scatter(chunk.packed.data(), chunk.packed.size());
            }
        }
        NNCOMM_CHECK(pos == total);
        timers_ += engine->timers();
        counters_ += engine->counters();
    }

    if (observe) {
        const auto& syn = world_->synthetic;
        world_->proto->observe_rdzv(
            rank_, dest, family_of(type), static_cast<double>(total),
            observed_ns(*world_, syn.rdzv_base_ns, syn.rdzv_per_byte_ns, total, t0));
        ++counters_.rt_proto_adapt_updates;
    }

    r->env = std::move(header);  // header only: carries source/tag for RecvStatus
    r->direct_bytes = total;
    r->zero_copy = true;
    r->matched.store(true, std::memory_order_release);
    lk.unlock();
    detail::pulse(box, counters_, /*notify=*/true);
    ++counters_.rt_zero_copy_msgs;
    counters_.rt_bytes_copied += total;  // the single pass
    return true;
}

/// Chunk-pipelined rendezvous for producer-driven staged sends: the fused
/// Pack+Send path of coll::CollRequest. Claim logic is identical to
/// try_rendezvous (same FIFO guard, same PRQ claim under posted_mu, same
/// degradation rules); the difference is the copy loop — instead of packing
/// the whole payload into a staging buffer and then copying it cold, the
/// producer fills one pipeline_chunk-sized slice at the front of `stage`
/// and the slice is copied (or scattered) into the receiver's buffer while
/// its bytes are still cache-hot, so the pack of chunk k+1 overlaps the
/// copy of chunk k through the cache hierarchy.
bool Comm::try_rendezvous_staged_i(
    int dest, int tag, std::size_t total, PackFamily family, std::span<std::byte> stage,
    const std::function<void(std::uint64_t, std::span<std::byte>)>& produce) {
    if (world_->policy.enabled) return false;  // all policy traffic routes buffered
    if (total == 0) return false;
    NNCOMM_CHECK_MSG(dest >= 0 && dest < size(), "send to invalid rank");
    NNCOMM_CHECK_MSG(!stage.empty(), "pipelined rendezvous needs a staging window");
    const int context = context_ + detail::kInternalContextOffset;

    Envelope header;
    header.source = rank_;
    header.tag = tag;
    header.context = context;

    Mailbox& box = *world_->boxes[static_cast<std::size_t>(dest)];
    detail::Lane& lane = box.lanes[static_cast<std::size_t>(rank_)];
    if (lane.unconsumed.load(std::memory_order_acquire) != 0) {
        return false;  // older messages of ours still in flight: keep FIFO
    }

    std::unique_lock<std::mutex> lk(box.posted_mu);
    ++counters_.rt_lock_acquisitions;
    std::shared_ptr<RequestState> r = detail::match_prq(box, header);
    if (!r) return false;  // unposted: caller stages and sends buffered
    const auto& rflat = r->type.flat();
    NNCOMM_CHECK_MSG(total <= rflat.size() * r->count, "message longer than receive buffer");

    const bool observe =
        total >= kAdaptiveObserveMinBytes && adaptive_protocol_engaged();
    const auto t0 = std::chrono::steady_clock::now();

    const bool rdense =
        rflat.contiguous() && static_cast<std::ptrdiff_t>(rflat.size()) == rflat.extent();
    auto* rbase = static_cast<std::byte*>(r->buf);
    const std::size_t chunk = engine_config_.pipeline_chunk > 0
                                  ? std::min(engine_config_.pipeline_chunk, stage.size())
                                  : stage.size();
    dt::TypeCursor cur(&rflat, r->count);  // used only off the plan fastpath
    std::uint64_t chunks = 0;
    for (std::size_t pos = 0; pos < total; pos += chunk) {
        const std::size_t n = std::min(chunk, total - pos);
        std::span<std::byte> slice = stage.first(n);
        produce(static_cast<std::uint64_t>(pos), slice);
        const std::span<const std::byte> piece(slice.data(), n);
        if (rdense) {
            std::memcpy(rbase + pos, piece.data(), n);
        } else if (engine_config_.enable_plan_fastpath) {
            r->type.plan().unpack_range(rflat, rbase, r->count, pos, piece, &counters_);
        } else {
            const std::size_t u = dt::unpack_bytes(rbase, cur, piece);
            NNCOMM_CHECK(u == n);
        }
        ++chunks;
    }
    timers_.add_ns(Phase::Comm,
                   static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                                  std::chrono::steady_clock::now() - t0)
                                                  .count()));
    if (observe) {
        const auto& syn = world_->synthetic;
        world_->proto->observe_rdzv(
            rank_, dest, family, static_cast<double>(total),
            observed_ns(*world_, syn.rdzv_base_ns, syn.rdzv_per_byte_ns, total, t0));
        ++counters_.rt_proto_adapt_updates;
    }

    r->env = std::move(header);
    r->direct_bytes = total;
    r->zero_copy = true;
    r->matched.store(true, std::memory_order_release);
    lk.unlock();
    detail::pulse(box, counters_, /*notify=*/true);
    ++counters_.rt_zero_copy_msgs;
    ++counters_.rt_rdzv_pipelined_msgs;
    counters_.rt_rdzv_pipelined_chunks += chunks;
    counters_.rt_bytes_copied += total;  // the copy-out pass
    return true;
}

std::size_t Comm::progress() {
    if (!world_->policy.enabled) return 0;
    return detail::progress_world(*world_, rank_, counters_);
}

void Comm::send_ctx(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                    int tag, int context, Protocol proto) {
    if (!world_->policy.enabled) {
        // Zero-copy rendezvous when the receive is already posted; otherwise
        // the eager fast path — identical to the unperturbed runtime: pack
        // and push straight onto the destination lane, no request state.
        const std::size_t total = type.size() * count;
        if (try_rendezvous(buf, count, type, dest, tag, context, proto, total)) return;
        Envelope env = pack_envelope(buf, count, type, dest, tag, context, total);
        detail::deliver_lane(*world_, dest, std::move(env), counters_);
        return;
    }
    Request r = isend_ctx(buf, count, type, dest, tag, context, proto);
    wait(r);
}

Request Comm::isend_ctx(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                        int tag, int context, Protocol proto) {
    NNCOMM_CHECK_MSG(dest >= 0 && dest < size(), "send to invalid rank");
    const SchedulePolicy& pol = world_->policy;
    if (!pol.enabled) {
        // Transfer completes inline — rendezvous straight into the posted
        // receive, or buffered-eager delivery onto the destination lane —
        // so the request is born complete and the shared singleton serves.
        const std::size_t total = type.size() * count;
        if (!try_rendezvous(buf, count, type, dest, tag, context, proto, total)) {
            Envelope env = pack_envelope(buf, count, type, dest, tag, context, total);
            detail::deliver_lane(*world_, dest, std::move(env), counters_);
        }
        return Request(world_->done_send);
    }
    Envelope env = pack_envelope(buf, count, type, dest, tag, context, type.size() * count);
    auto req = std::make_shared<RequestState>();
    req->kind = RequestState::Kind::Send;
    req->owner_rank = rank_;

    // Genuinely pending: enqueue on the destination's delivery queue under
    // the seeded schedule. All perturbation draws for one destination share
    // that destination's RNG stream under its queue lock.
    const std::size_t bytes = env.payload.size();
    const bool internal = context >= detail::kInternalContextOffset;
    int stall_spins = 0;
    detail::DestQueue& dq = *world_->destq[static_cast<std::size_t>(dest)];
    {
        PhaseScope scope(timers_, Phase::Comm);
        std::lock_guard<std::mutex> lk(dq.mu);
        ++counters_.rt_lock_acquisitions;
        Rng& rng = dq.rng;

        detail::InFlight f;
        f.env = std::move(env);
        f.sender = req;
        if (pol.defer_prob > 0 && pol.max_defer > 0 && rng.bernoulli(pol.defer_prob)) {
            f.defer = static_cast<int>(rng.uniform_u64(1, static_cast<std::uint64_t>(pol.max_defer)));
        }
        if (pol.use_latency_model) {
            const double transit_us = pol.latency_us + static_cast<double>(bytes) * pol.us_per_byte;
            const double quantum = pol.defer_quantum_us > 0 ? pol.defer_quantum_us : 1.0;
            const double passes = transit_us / quantum;
            f.defer += passes > 64.0 ? 64 : static_cast<int>(passes);
        }
        if (f.defer > 0) ++counters_.sched_deferrals;

        // Bounded reordering fault: only internal-context (collective)
        // traffic, which is epoch-tagged and must survive same-pair FIFO
        // violations. User point-to-point ordering is never perturbed.
        auto pos = dq.q.end();
        if (internal && pol.reorder_prob > 0 && pol.max_reorder > 0 &&
            rng.bernoulli(pol.reorder_prob)) {
            const int jump =
                static_cast<int>(rng.uniform_u64(1, static_cast<std::uint64_t>(pol.max_reorder)));
            int overtaken = 0;
            while (pos != dq.q.begin() && overtaken < jump) {
                auto prev = std::prev(pos);
                if (prev->env.source == rank_) {
                    if (prev->env.context < detail::kInternalContextOffset) break;
                    ++overtaken;
                }
                pos = prev;
            }
            if (overtaken > 0) ++counters_.sched_reorders;
        }
        dq.q.insert(pos, std::move(f));
        dq.count.fetch_add(1, std::memory_order_release);
        world_->inflight_count.fetch_add(1, std::memory_order_release);
        ++counters_.sched_pending_sends;

        if (pol.stall_prob > 0 && pol.max_stall_spins > 0 && rng.bernoulli(pol.stall_prob)) {
            stall_spins =
                static_cast<int>(rng.uniform_u64(1, static_cast<std::uint64_t>(pol.max_stall_spins)));
        }
    }
    if (stall_spins > 0) {
        ++counters_.sched_stalls;
        for (int i = 0; i < stall_spins; ++i) std::this_thread::yield();
    }
    return Request(std::move(req));
}

void Comm::send(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                int tag) {
    send_ctx(buf, count, type, dest, tag, context_);
}

Request Comm::isend(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                    int tag) {
    return isend_ctx(buf, count, type, dest, tag, context_);
}

RecvStatus Comm::wait(Request& request) {
    NNCOMM_CHECK_MSG(request.valid(), "wait on null request");
    RequestState& req = *request.state_;
    if (req.complete) return req.status;

    if (req.kind == RequestState::Kind::Send) {
        // Pending buffered send: complete when the envelope reaches the
        // destination mailbox. This rank drives the delivery engine itself,
        // but another rank's drain pass may complete the send first — that
        // drain pulses this rank's mailbox (drain_dest), so after a bounded
        // spin the waiter parks in a registered timed sleep instead of
        // yield-spinning. An unbounded yield loop here starves the scheduler
        // when many oversubscribed copies contend for one core (the
        // PersistentPlanRepeatedExecutes livelock).
        Mailbox& sbox = *world_->boxes[static_cast<std::size_t>(req.owner_rank)];
        int spins = 0;
        while (!req.delivered.load(std::memory_order_acquire)) {
            if (progress() > 0) continue;
            if (req.delivered.load(std::memory_order_acquire)) break;
            if (world_->aborted.load(std::memory_order_acquire)) {
                throw AbortedError("runtime aborted while waiting for a send");
            }
            ++spins;
            if (spins <= kSpinChecks) continue;
            if (spins <= kSpinChecks + kSpinYields) {
                std::this_thread::yield();
                continue;
            }
            spins = 0;
            sbox.sleepers.fetch_add(1, std::memory_order_seq_cst);
            const std::uint64_t seen = sbox.seq.load(std::memory_order_seq_cst);
            {
                std::unique_lock<std::mutex> lk(sbox.wait_mu);
                if (sbox.seq.load(std::memory_order_seq_cst) == seen &&
                    !req.delivered.load(std::memory_order_acquire) &&
                    !world_->aborted.load(std::memory_order_acquire)) {
                    ++counters_.rt_cv_waits;
                    sbox.cv.wait_for(lk, kSleepSlice);
                }
            }
            sbox.sleepers.fetch_sub(1, std::memory_order_release);
        }
        req.complete = true;
        return req.status;
    }

    Mailbox& box = *world_->boxes[static_cast<std::size_t>(req.owner_rank)];
    if (!world_->policy.enabled) {
        // Spin-then-sleep: a bounded burst of pulse checks (one relaxed
        // load when nothing changed), a few yields, then a registered
        // sleep. The deliverer notifies only when it sees the registration;
        // the timed wait is the self-healing backstop. A matched request
        // always completes, even when the world is aborting — the message
        // is here; consuming it cannot mask the root cause.
        int spins = 0;
        while (!try_complete_recv(req)) {
            if (world_->aborted.load(std::memory_order_acquire)) {
                throw AbortedError("runtime aborted while waiting for a message");
            }
            ++spins;
            if (spins <= kSpinChecks) {
                continue;
            }
            if (spins <= kSpinChecks + kSpinYields) {
                std::this_thread::yield();
                continue;
            }
            spins = 0;
            box.sleepers.fetch_add(1, std::memory_order_seq_cst);
            {
                std::unique_lock<std::mutex> lk(box.wait_mu);
                if (box.seq.load(std::memory_order_seq_cst) == box.drained_seq &&
                    !req.matched.load(std::memory_order_acquire) &&
                    !world_->aborted.load(std::memory_order_acquire)) {
                    ++counters_.rt_cv_waits;
                    box.cv.wait_for(lk, kSleepSlice);
                }
            }
            box.sleepers.fetch_sub(1, std::memory_order_release);
        }
    } else {
        // Perturbed schedule: this waiter must also drive the delivery
        // engine, and re-polls on a timeout so suppressed notifications
        // (the delayed-wakeup fault) self-heal.
        for (;;) {
            const bool delivered_any = progress() > 0;
            if (try_complete_recv(req)) break;
            if (world_->aborted.load(std::memory_order_acquire)) {
                throw AbortedError("runtime aborted while waiting for a message");
            }
            if (!delivered_any) {
                box.sleepers.fetch_add(1, std::memory_order_seq_cst);
                {
                    std::unique_lock<std::mutex> lk(box.wait_mu);
                    if (box.seq.load(std::memory_order_seq_cst) == box.drained_seq &&
                        !req.matched.load(std::memory_order_acquire) &&
                        !world_->aborted.load(std::memory_order_acquire)) {
                        ++counters_.rt_cv_waits;
                        box.cv.wait_for(lk, std::chrono::microseconds(100));
                    }
                }
                box.sleepers.fetch_sub(1, std::memory_order_release);
            }
        }
    }

    return finish_recv(req);
}

void Comm::pulse_rank(int rank) {
    NNCOMM_CHECK_MSG(rank >= 0 && rank < size(), "pulse_rank on invalid rank");
    detail::pulse(*world_->boxes[static_cast<std::size_t>(rank)], counters_, /*notify=*/true);
}

void Comm::wait_until(const std::function<bool()>& pred) {
    Mailbox& box = *world_->boxes[static_cast<std::size_t>(rank_)];
    int spins = 0;
    while (!pred()) {
        if (world_->aborted.load(std::memory_order_acquire)) {
            throw AbortedError("runtime aborted while waiting for a one-sided epoch");
        }
        if (progress() > 0) continue;
        ++spins;
        if (spins <= kSpinChecks) continue;
        if (spins <= kSpinChecks + kSpinYields) {
            std::this_thread::yield();
            continue;
        }
        spins = 0;
        box.sleepers.fetch_add(1, std::memory_order_seq_cst);
        const std::uint64_t seen = box.seq.load(std::memory_order_seq_cst);
        {
            std::unique_lock<std::mutex> lk(box.wait_mu);
            if (box.seq.load(std::memory_order_seq_cst) == seen && !pred() &&
                !world_->aborted.load(std::memory_order_acquire)) {
                ++counters_.rt_cv_waits;
                box.cv.wait_for(lk, kSleepSlice);
            }
        }
        box.sleepers.fetch_sub(1, std::memory_order_release);
    }
}

RecvStatus Comm::finish_recv(RequestState& req) {
    if (req.zero_copy) {
        // Rendezvous: the sender already moved the payload straight into
        // req.buf; the envelope is a header. Nothing left to unpack.
        req.status.source = req.env.source;
        req.status.tag = req.env.tag;
        req.status.bytes = req.direct_bytes;
        req.complete = true;
        return req.status;
    }

    // Unpack on the owning thread; only this rank's thread touches req now.
    const auto& flat = req.type.flat();
    const std::size_t capacity = flat.size() * req.count;
    NNCOMM_CHECK_MSG(req.env.payload.size() <= capacity, "message longer than receive buffer");
    if (!req.env.payload.empty()) {
        counters_.rt_bytes_copied += req.env.payload.size();  // receive-side copy
        // Feed the eager_unpack cost line: the copy below is the
        // receiver-side half of the eager protocol's double copy. This
        // rank's thread is the line's single writer.
        const std::size_t total = req.env.payload.size();
        const bool observe =
            total >= kAdaptiveObserveMinBytes && adaptive_protocol_engaged();
        std::chrono::steady_clock::time_point t0;
        if (observe && !world_->synthetic.enabled) t0 = std::chrono::steady_clock::now();
        if (flat.contiguous() && static_cast<std::ptrdiff_t>(flat.size()) == flat.extent()) {
            if (req.env.payload.size() >= kTimedCopyMinBytes) {
                PhaseScope scope(timers_, Phase::Comm);
                std::memcpy(req.buf, req.env.payload.data(), req.env.payload.size());
            } else {
                std::memcpy(req.buf, req.env.payload.data(), req.env.payload.size());
            }
        } else {
            // Receive-side scatter through the compiled plan kernel (every
            // class); cursor walk only behind the fastpath escape hatch.
            PhaseScope scope(timers_, Phase::Pack);
            const std::span<const std::byte> payload(req.env.payload.data(),
                                                     req.env.payload.size());
            const dt::PackPlan& plan = req.type.plan();
            if (engine_config_.enable_plan_fastpath) {
                ++counters_.plan_hits;
                plan.unpack(flat, static_cast<std::byte*>(req.buf), req.count, payload,
                            &counters_);
            } else {
                dt::TypeCursor cur(&flat, req.count);
                const std::size_t n =
                    dt::unpack_bytes(static_cast<std::byte*>(req.buf), cur, payload);
                NNCOMM_CHECK(n == req.env.payload.size());
            }
        }
        if (observe) {
            const auto& syn = world_->synthetic;
            world_->proto->observe_eager_unpack(
                req.env.source, rank_, family_of(req.type), static_cast<double>(total),
                observed_ns(*world_, syn.eager_unpack_base_ns, syn.eager_unpack_per_byte_ns,
                            total, t0));
            ++counters_.rt_proto_adapt_updates;
        }
    }
    req.status.source = req.env.source;
    req.status.tag = req.env.tag;
    req.status.bytes = req.env.payload.size();
    // Recycle through this rank's pool cache for future sends.
    world_->pool.release(std::move(req.env.payload), rank_, counters_);
    req.complete = true;
    return req.status;
}

void Comm::waitall(std::span<Request> reqs) {
    for (Request& r : reqs) {
        if (r.valid()) wait(r);
    }
}

bool Comm::test(Request& request, RecvStatus* status) {
    NNCOMM_CHECK_MSG(request.valid(), "test on null request");
    RequestState& req = *request.state_;
    if (req.complete) {
        if (status) *status = req.status;
        return true;
    }
    progress();

    if (req.kind == RequestState::Kind::Send) {
        if (!req.delivered.load(std::memory_order_acquire)) {
            if (world_->aborted.load(std::memory_order_acquire)) {
                throw AbortedError("runtime aborted while testing a send");
            }
            return false;
        }
        req.complete = true;
        if (status) *status = req.status;
        return true;
    }

    // A matched request always completes, even when the world is aborting —
    // consuming an arrived message cannot mask the root cause (same rule
    // as wait()).
    if (!try_complete_recv(req)) {
        if (world_->aborted.load(std::memory_order_acquire)) {
            throw AbortedError("runtime aborted while testing a receive");
        }
        return false;
    }
    const RecvStatus st = finish_recv(req);
    if (status) *status = st;
    return true;
}

RecvStatus Comm::recv(void* buf, std::size_t count, const dt::Datatype& type, int source,
                      int tag) {
    Request r = irecv(buf, count, type, source, tag);
    return wait(r);
}

RecvStatus Comm::sendrecv(const void* sendbuf, std::size_t sendcount,
                          const dt::Datatype& sendtype, int dest, int sendtag, void* recvbuf,
                          std::size_t recvcount, const dt::Datatype& recvtype, int source,
                          int recvtag) {
    Request r = irecv(recvbuf, recvcount, recvtype, source, recvtag);
    send(sendbuf, sendcount, sendtype, dest, sendtag);
    return wait(r);
}

void Comm::send_i(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                  int tag, Protocol proto) {
    send_ctx(buf, count, type, dest, tag, context_ + detail::kInternalContextOffset, proto);
}

RecvStatus Comm::recv_i(void* buf, std::size_t count, const dt::Datatype& type, int source,
                        int tag) {
    Request r = irecv_i(buf, count, type, source, tag);
    return wait(r);
}

Request Comm::isend_i(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                      int tag, Protocol proto) {
    return isend_ctx(buf, count, type, dest, tag, context_ + detail::kInternalContextOffset,
                     proto);
}

Request Comm::irecv_i(void* buf, std::size_t count, const dt::Datatype& type, int source,
                      int tag) {
    return irecv_ctx(buf, count, type, source, tag, context_ + detail::kInternalContextOffset);
}

RecvStatus Comm::sendrecv_i(const void* sendbuf, std::size_t sendcount,
                            const dt::Datatype& sendtype, int dest, int sendtag, void* recvbuf,
                            std::size_t recvcount, const dt::Datatype& recvtype, int source,
                            int recvtag, Protocol proto) {
    Request r = irecv_i(recvbuf, recvcount, recvtype, source, recvtag);
    send_i(sendbuf, sendcount, sendtype, dest, sendtag, proto);
    return wait(r);
}

namespace {

/// Scans the receiver-private stashes for a message matching (source, tag,
/// context) without consuming it. The stashes hold exactly the envelopes
/// that matched no posted receive — the unexpected queue probe reports on.
ProbeStatus scan_unexpected(Mailbox& box, int source, int tag, int context) {
    detail::RequestState pattern;
    pattern.source = source;
    pattern.tag = tag;
    pattern.context = context;
    const int lo = source == kAnySource ? 0 : source;
    const int hi = source == kAnySource ? box.nranks - 1 : source;
    for (int src = lo; src <= hi; ++src) {
        for (const Envelope& env : box.lanes[static_cast<std::size_t>(src)].stash) {
            if (detail::matches(pattern, env)) {
                return ProbeStatus{true, env.source, env.tag, env.payload.size()};
            }
        }
    }
    return ProbeStatus{};
}

}  // namespace

ProbeStatus Comm::probe(int source, int tag) {
    Mailbox& box = *world_->boxes[static_cast<std::size_t>(rank_)];
    if (!world_->policy.enabled) {
        int spins = 0;
        for (;;) {
            process_arrivals();
            ProbeStatus st = scan_unexpected(box, source, tag, context_);
            if (st.found) return st;
            if (world_->aborted.load(std::memory_order_acquire)) {
                throw AbortedError("runtime aborted while probing");
            }
            ++spins;
            if (spins <= kSpinChecks) continue;
            if (spins <= kSpinChecks + kSpinYields) {
                std::this_thread::yield();
                continue;
            }
            spins = 0;
            box.sleepers.fetch_add(1, std::memory_order_seq_cst);
            {
                std::unique_lock<std::mutex> lk(box.wait_mu);
                if (box.seq.load(std::memory_order_seq_cst) == box.drained_seq &&
                    !world_->aborted.load(std::memory_order_acquire)) {
                    ++counters_.rt_cv_waits;
                    box.cv.wait_for(lk, kSleepSlice);
                }
            }
            box.sleepers.fetch_sub(1, std::memory_order_release);
        }
    }
    // Perturbed schedule: drive delivery between scans and re-poll on a
    // timeout (probes have no matched flag a notify could be tied to).
    for (;;) {
        const bool delivered_any = progress() > 0;
        process_arrivals();
        ProbeStatus st = scan_unexpected(box, source, tag, context_);
        if (st.found) return st;
        if (world_->aborted.load(std::memory_order_acquire)) {
            throw AbortedError("runtime aborted while probing");
        }
        if (!delivered_any) {
            box.sleepers.fetch_add(1, std::memory_order_seq_cst);
            {
                std::unique_lock<std::mutex> lk(box.wait_mu);
                if (box.seq.load(std::memory_order_seq_cst) == box.drained_seq &&
                    !world_->aborted.load(std::memory_order_acquire)) {
                    ++counters_.rt_cv_waits;
                    box.cv.wait_for(lk, std::chrono::microseconds(100));
                }
            }
            box.sleepers.fetch_sub(1, std::memory_order_release);
        }
    }
}

ProbeStatus Comm::iprobe(int source, int tag) {
    progress();  // an in-flight message "is there" once the engine can deliver it
    process_arrivals();
    Mailbox& box = *world_->boxes[static_cast<std::size_t>(rank_)];
    return scan_unexpected(box, source, tag, context_);
}

ProbeStatus Comm::iprobe_i(int source, int tag) {
    progress();
    process_arrivals();
    Mailbox& box = *world_->boxes[static_cast<std::size_t>(rank_)];
    return scan_unexpected(box, source, tag, context_ + detail::kInternalContextOffset);
}

Comm Comm::dup() {
    // Deterministic tree numbering: all ranks perform the same sequence of
    // dups, so (parent context, per-parent dup ordinal) is globally
    // consistent. Contexts live below kInternalContextOffset.
    ++dup_count_;
    NNCOMM_CHECK_MSG(dup_count_ < 64, "too many duplicates of one communicator");
    const int child = context_ * 64 + dup_count_;
    NNCOMM_CHECK_MSG(child < (1 << 24), "communicator dup tree too deep");
    Comm c(world_, rank_, child);
    c.engine_kind_ = engine_kind_;
    c.engine_config_ = engine_config_;
    c.rendezvous_threshold_ = rendezvous_threshold_;
    c.threshold_pinned_ = threshold_pinned_;
    c.adaptive_protocol_ = adaptive_protocol_;
    c.rendezvous_pipeline_ = rendezvous_pipeline_;
    return c;
}

void Comm::barrier() {
    // Dissemination barrier: ceil(log2 N) rounds of zero-byte exchanges on
    // the internal context. Epoch-tagged so a reordered straggler from one
    // barrier can never satisfy a later one.
    const int epoch = next_collective_epoch();
    const int n = size();
    const int ctx = context_ + detail::kInternalContextOffset;
    const int tag = epoch_tag(kInternalTagBase, epoch);
    for (int k = 1; k < n; k <<= 1) {
        const int to = (rank_ + k) % n;
        const int from = (rank_ - k + n) % n;
        Request r = irecv_ctx(nullptr, 0, dt::Datatype::byte(), from, tag, ctx);
        send_ctx(nullptr, 0, dt::Datatype::byte(), to, tag, ctx);
        wait(r);
    }
}

// ---------------------------------------------------------------------------
// World

World::World(int nranks) : nranks_(nranks), state_(std::make_unique<WorldState>()) {
    NNCOMM_CHECK_MSG(nranks >= 1, "World needs at least one rank");
    state_->nranks = nranks;
    state_->boxes.reserve(static_cast<std::size_t>(nranks));
    state_->destq.reserve(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) {
        state_->boxes.push_back(std::make_unique<Mailbox>());
        state_->boxes.back()->init(nranks);
        state_->destq.push_back(std::make_unique<detail::DestQueue>());
    }
    state_->pool.init(nranks);
    state_->proto = std::make_unique<ProtoTable>(nranks);
    state_->done_send = std::make_shared<RequestState>();
    state_->done_send->kind = RequestState::Kind::Send;
    state_->done_send->delivered.store(true, std::memory_order_release);
    state_->done_send->complete = true;
}

World::~World() = default;

void World::set_schedule(const SchedulePolicy& policy) { state_->policy = policy; }

const SchedulePolicy& World::schedule() const { return state_->policy; }

void World::set_payload_pool_budget(std::size_t bytes) { state_->pool.set_budget(bytes); }

std::size_t World::payload_pool_resident_bytes() const { return state_->pool.resident_bytes(); }

void World::set_synthetic_protocol_costs(const SyntheticProtoCosts& costs) {
    state_->synthetic = costs;
}

std::size_t World::learned_threshold(int src, int dst, PackFamily family,
                                     std::size_t fallback) const {
    return state_->proto->learned_threshold(src, dst, family, fallback);
}

std::uint64_t World::proto_pair_samples(int src, int dst) const {
    return state_->proto->pair_samples(src, dst);
}

void World::run(const std::function<void(Comm&)>& fn) {
    // Reset abort state and clear any residue from a previous run.
    state_->aborted.store(false);
    for (auto& b : state_->boxes) {
        std::lock_guard<std::mutex> plk(b->posted_mu);
        std::lock_guard<std::mutex> olk(b->overflow_mu);
        for (int s = 0; s < b->nranks; ++s) {
            detail::Lane& lane = b->lanes[static_cast<std::size_t>(s)];
            Envelope e;
            while (lane.ring.pop(e)) {
            }
            lane.overflow.clear();
            lane.stash.clear();
            lane.unconsumed.store(0);
            lane.overflow_count.store(0);
        }
        for (int w = 0; w < b->dirty_words; ++w) b->dirty[static_cast<std::size_t>(w)].store(0);
        for (auto& q : b->prq_by_src) q.clear();
        b->prq_wild.clear();
        b->next_post_seq = 0;
        b->drained_seq = b->seq.load();
        b->sleepers.store(0);
    }
    for (int d = 0; d < nranks_; ++d) {
        detail::DestQueue& dq = *state_->destq[static_cast<std::size_t>(d)];
        std::lock_guard<std::mutex> lk(dq.mu);
        dq.q.clear();
        dq.count.store(0);
        dq.claimed.store(false);
        // Each destination draws from its own seeded stream so schedules
        // stay reproducible per (seed, destination) without a global RNG
        // lock serializing enqueues.
        dq.rng.reseed(state_->policy.seed ^
                      (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(d) + 1)));
    }
    state_->inflight_count.store(0);
    faulting_rank_ = -1;

    // Root-cause error slot. A woken waiter's secondary AbortedError can
    // race the originating exception here; the originating error always
    // wins, whichever order the ranks arrive in.
    std::mutex err_mu;
    std::exception_ptr first_error;
    int first_error_rank = -1;
    bool first_error_secondary = false;
    auto record = [&](std::exception_ptr e, int rank, bool secondary) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error || (first_error_secondary && !secondary)) {
            first_error = std::move(e);
            first_error_rank = rank;
            first_error_secondary = secondary;
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r) {
        threads.emplace_back([this, r, &fn, &record] {
            Comm comm(state_.get(), r, /*context=*/0);
            try {
                fn(comm);
            } catch (const AbortedError&) {
                record(std::current_exception(), r, /*secondary=*/true);
            } catch (...) {
                record(std::current_exception(), r, /*secondary=*/false);
                state_->abort_all();
            }
        });
    }
    for (auto& t : threads) t.join();
    if (first_error) {
        faulting_rank_ = first_error_rank;
        std::rethrow_exception(first_error);
    }
}

}  // namespace nncomm::rt

#include "runtime/comm.hpp"

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "datatype/pack.hpp"

namespace nncomm::rt {

namespace detail {

/// Internal collective traffic uses a shifted context so it can never match
/// user-posted wildcard receives on the same communicator.
inline constexpr int kInternalContextOffset = 1 << 30;

/// Owning byte buffer for one staged payload. Unlike std::vector, resizing
/// for reuse never value-initializes: the eager path overwrites every byte
/// it claims, so a recycled pool buffer costs zero writes beyond the pack
/// copy itself.
struct PayloadBuffer {
    std::unique_ptr<std::byte[]> buf;
    std::size_t cap = 0;
    std::size_t len = 0;

    PayloadBuffer() = default;
    PayloadBuffer(PayloadBuffer&& o) noexcept
        : buf(std::move(o.buf)), cap(std::exchange(o.cap, 0)), len(std::exchange(o.len, 0)) {}
    PayloadBuffer& operator=(PayloadBuffer&& o) noexcept {
        buf = std::move(o.buf);
        cap = std::exchange(o.cap, 0);
        len = std::exchange(o.len, 0);
        return *this;
    }

    std::byte* data() { return buf.get(); }
    const std::byte* data() const { return buf.get(); }
    std::size_t size() const { return len; }
    bool empty() const { return len == 0; }

    /// Grows capacity (uninitialized) if needed and sets the logical size.
    void resize_for_overwrite(std::size_t n) {
        if (n > cap) {
            buf.reset(new std::byte[n]);  // default-init: no memset
            cap = n;
        }
        len = n;
    }
    void reset() {
        buf.reset();
        cap = 0;
        len = 0;
    }
};

/// Per-world size-classed pool of payload buffers. Buffers are acquired by
/// sending ranks when a message takes the buffered-eager path and released
/// by the receiving rank when the payload has been unpacked, so in steady
/// state (e.g. a persistent scatter loop) the same buffers cycle between
/// the ranks and rt_payload_allocs stays flat. Oversize payloads bypass
/// the pool entirely; per-class capacity bounds retained memory.
class PayloadPool {
public:
    static constexpr std::size_t kMinClassBytes = 256;
    static constexpr std::size_t kMaxClassBytes = std::size_t{8} << 20;  // 8 MB
    static constexpr std::size_t kNumClasses = 16;                       // 256 B .. 8 MB
    static constexpr std::size_t kBuffersPerClass = 16;

    /// Returns a buffer of logical size `bytes` (contents uninitialized).
    PayloadBuffer acquire(std::size_t bytes, StatCounters& counters) {
        PayloadBuffer out;
        if (bytes > kMaxClassBytes) {
            ++counters.rt_payload_allocs;
            out.resize_for_overwrite(bytes);
            return out;
        }
        const std::size_t idx = class_index(bytes);
        {
            std::lock_guard<std::mutex> lk(mu_);
            auto& shelf = free_[idx];
            if (!shelf.empty()) {
                out = std::move(shelf.back());
                shelf.pop_back();
            }
        }
        if (out.cap > 0) {
            ++counters.rt_pool_hits;
            out.len = bytes;  // cap >= class size >= bytes
            return out;
        }
        ++counters.rt_pool_misses;
        ++counters.rt_payload_allocs;
        out.resize_for_overwrite(class_bytes(idx));  // allocate the full class
        out.len = bytes;
        return out;
    }

    /// Returns a buffer to its size class (or frees it when the class shelf
    /// is full or the buffer is oversize / undersized for any class).
    void release(PayloadBuffer&& b) {
        if (b.cap < kMinClassBytes || b.cap > kMaxClassBytes) return;  // dropped
        const std::size_t idx = class_index(b.cap);
        if (class_bytes(idx) != b.cap) return;  // not one of ours
        std::lock_guard<std::mutex> lk(mu_);
        auto& shelf = free_[idx];
        if (shelf.size() < kBuffersPerClass) shelf.push_back(std::move(b));
    }

private:
    static std::size_t class_bytes(std::size_t idx) { return kMinClassBytes << idx; }
    static std::size_t class_index(std::size_t bytes) {
        if (bytes <= kMinClassBytes) return 0;
        return static_cast<std::size_t>(std::bit_width(bytes - 1)) - 8;  // 256 = 2^8
    }

    std::mutex mu_;
    std::array<std::vector<PayloadBuffer>, kNumClasses> free_;
};

struct Envelope {
    int source = -1;
    int tag = -1;
    int context = 0;
    PayloadBuffer payload;
};

struct RequestState {
    enum class Kind { Send, Recv };
    Kind kind = Kind::Send;

    // Receive descriptor.
    void* buf = nullptr;
    std::size_t count = 0;
    dt::Datatype type;
    int source = kAnySource;
    int tag = kAnyTag;
    int context = 0;
    int owner_rank = -1;

    // Filled when a matching envelope arrives. For rendezvous transfers the
    // envelope is header-only: the sender already moved `direct_bytes` bytes
    // straight into `buf` before setting `matched`.
    bool matched = false;
    bool zero_copy = false;
    std::size_t direct_bytes = 0;
    Envelope env;

    // Send requests: set by the delivery engine (possibly from another
    // rank's progress call) when the envelope reaches its mailbox.
    std::atomic<bool> delivered{false};

    // Set by wait() after unpacking.
    bool complete = false;
    RecvStatus status;
};

struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Envelope> unexpected;                          // arrival order
    std::deque<std::shared_ptr<RequestState>> posted;         // post order
};

/// A packed envelope waiting in the delivery engine's queue.
struct InFlight {
    Envelope env;
    int dest = -1;
    int defer = 0;  ///< progress passes this envelope may still be held
    std::shared_ptr<RequestState> sender;  ///< completed on delivery (may be null)
};

struct WorldState {
    int nranks = 0;
    std::vector<std::unique_ptr<Mailbox>> boxes;
    std::atomic<bool> aborted{false};
    std::atomic<int> next_context{1};

    SchedulePolicy policy;  ///< fixed for the duration of a run

    PayloadPool pool;  ///< recycled buffered-eager payload buffers

    // Delivery engine state. prog_mu is held across entire drain passes
    // (including mailbox delivery) so concurrent drains cannot violate
    // per-pair FIFO; lock order is always prog_mu -> box.mu, never reversed.
    std::mutex prog_mu;
    Rng rng;                     ///< guarded by prog_mu
    std::deque<InFlight> inflight;  ///< guarded by prog_mu
    std::atomic<std::uint64_t> inflight_count{0};

    void abort_all() {
        aborted.store(true, std::memory_order_release);
        for (auto& b : boxes) {
            // Acquire/release the mutex so every waiter either sees the flag
            // before sleeping or is inside wait(); notify after unlocking so
            // woken threads don't immediately block on a mutex we still hold.
            { std::lock_guard<std::mutex> lk(b->mu); }
            b->cv.notify_all();
        }
    }
};

namespace {

bool matches(const RequestState& req, const Envelope& env) {
    return req.context == env.context && (req.source == kAnySource || req.source == env.source) &&
           (req.tag == kAnyTag || req.tag == env.tag);
}

/// Moves an envelope into its destination mailbox: match a posted receive
/// or append to the unexpected queue. `notify == false` is the delayed-
/// wakeup fault — waiters recover at their next timed re-poll. The state
/// change happens under box.mu (so a sleeping waiter's predicate re-check
/// cannot miss it) but the notify itself fires after unlocking, so the
/// woken thread never bounces off a mutex the deliverer still holds.
void deliver(WorldState& world, int dest, Envelope&& env, bool notify = true) {
    NNCOMM_CHECK_MSG(dest >= 0 && dest < world.nranks, "send to invalid rank");
    Mailbox& box = *world.boxes[static_cast<std::size_t>(dest)];
    {
        std::unique_lock<std::mutex> lk(box.mu);
        for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
            if (matches(**it, env)) {
                (*it)->env = std::move(env);
                (*it)->matched = true;
                box.posted.erase(it);
                lk.unlock();
                if (notify) box.cv.notify_all();
                return;
            }
        }
        box.unexpected.push_back(std::move(env));
    }
    if (notify) box.cv.notify_all();  // wake probers
}

}  // namespace

/// One drain pass of the delivery engine: delivers every in-flight envelope
/// whose defer budget is exhausted, in queue order, skipping any envelope
/// whose (source, dest) pair already had an earlier envelope held back this
/// pass — deliveries interleave across distinct pairs but per-pair FIFO is
/// exactly the queue order. Each pass decrements at least one defer budget
/// when the queue is nonempty, so repeated passes always terminate.
/// Perturbation events observed here are charged to the driving rank's
/// counters. Returns the number of envelopes delivered.
std::size_t progress_world(WorldState& world, StatCounters& counters) {
    if (world.inflight_count.load(std::memory_order_acquire) == 0) return 0;
    std::size_t delivered = 0;
    std::lock_guard<std::mutex> lk(world.prog_mu);
    std::vector<std::pair<int, int>> held;  // pairs with an earlier envelope still queued
    held.reserve(8);
    auto pair_held = [&](int src, int dst) {
        for (const auto& p : held) {
            if (p.first == src && p.second == dst) return true;
        }
        return false;
    };
    for (auto it = world.inflight.begin(); it != world.inflight.end();) {
        const int src = it->env.source;
        const int dst = it->dest;
        if (pair_held(src, dst)) {
            ++it;
            continue;
        }
        if (it->defer > 0) {
            --it->defer;
            held.emplace_back(src, dst);
            ++it;
            continue;
        }
        InFlight f = std::move(*it);
        it = world.inflight.erase(it);
        world.inflight_count.fetch_sub(1, std::memory_order_release);
        bool notify = true;
        if (world.policy.wakeup_delay_prob > 0 &&
            world.rng.bernoulli(world.policy.wakeup_delay_prob)) {
            notify = false;
            ++counters.sched_wakeup_delays;
        }
        deliver(world, dst, std::move(f.env), notify);
        if (f.sender) f.sender->delivered.store(true, std::memory_order_release);
        ++delivered;
    }
    return delivered;
}

}  // namespace detail

using detail::Envelope;
using detail::Mailbox;
using detail::RequestState;
using detail::WorldState;

// ---------------------------------------------------------------------------
// Comm

int Comm::size() const { return world_->nranks; }

Request Comm::irecv_ctx(void* buf, std::size_t count, const dt::Datatype& type, int source,
                        int tag, int context) {
    NNCOMM_CHECK_MSG(source == kAnySource || (source >= 0 && source < size()),
                     "irecv: invalid source rank");
    auto req = std::make_shared<RequestState>();
    req->kind = RequestState::Kind::Recv;
    req->buf = buf;
    req->count = count;
    req->type = type;
    req->source = source;
    req->tag = tag;
    req->context = context;
    req->owner_rank = rank_;

    Mailbox& box = *world_->boxes[static_cast<std::size_t>(rank_)];
    std::lock_guard<std::mutex> lk(box.mu);
    for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
        if (detail::matches(*req, *it)) {
            req->env = std::move(*it);
            req->matched = true;
            box.unexpected.erase(it);
            return Request(std::move(req));
        }
    }
    box.posted.push_back(req);
    return Request(std::move(req));
}

Request Comm::irecv(void* buf, std::size_t count, const dt::Datatype& type, int source,
                    int tag) {
    return irecv_ctx(buf, count, type, source, tag, context_);
}

/// Packs `buf` into an envelope exactly as the buffered-eager path always
/// has: contiguous layouts in one copy, noncontiguous layouts through the
/// configured pipelined engine, with the same Comm/Pack/Search accounting.
/// The payload buffer comes from the per-world pool; zero-byte messages
/// never touch the pool or the allocator at all.
Envelope Comm::pack_envelope(const void* buf, std::size_t count, const dt::Datatype& type,
                             int tag, int context) {
    NNCOMM_CHECK(type.valid());
    Envelope env;
    env.source = rank_;
    env.tag = tag;
    env.context = context;

    const std::uint64_t total = static_cast<std::uint64_t>(type.size()) * count;
    if (total == 0) return env;  // header-only: zero-byte sends are pure synchronization

    env.payload = world_->pool.acquire(static_cast<std::size_t>(total), counters_);
    counters_.rt_bytes_copied += total;  // sender-side staging copy
    const auto& flat = type.flat();
    const bool fully_dense =
        flat.contiguous() && static_cast<std::ptrdiff_t>(type.size()) == type.extent();
    if (fully_dense) {
        // Contiguous fast path: one copy onto the wire, all Comm time.
        PhaseScope scope(timers_, Phase::Comm);
        std::memcpy(env.payload.data(), buf, env.payload.size());
    } else {
        // Noncontiguous: pipelined chunks through the configured engine.
        auto engine = dt::make_engine(engine_kind_, buf, type, count, engine_config_);
        std::size_t off = 0;
        dt::ChunkView chunk;
        while (engine->next_chunk(chunk)) {
            // Moving the chunk onto the wire is Comm time; the engine
            // internally charged its Pack/Search time.
            PhaseScope scope(timers_, Phase::Comm);
            if (chunk.dense) {
                for (const auto& [ptr, len] : chunk.iov) {
                    std::memcpy(env.payload.data() + off, ptr, len);
                    off += len;
                }
            } else {
                std::memcpy(env.payload.data() + off, chunk.packed.data(), chunk.packed.size());
                off += chunk.packed.size();
            }
        }
        NNCOMM_CHECK(off == env.payload.size());
        timers_ += engine->timers();
        counters_ += engine->counters();
    }
    return env;
}

/// Attempts the zero-copy rendezvous transfer: if the matching receive is
/// already posted at the destination, the payload moves straight into the
/// receiver's buffer in a single pass (memcpy for contiguous-to-contiguous,
/// plan kernels or engine-chunk streaming otherwise) and no envelope buffer
/// is ever allocated. Returns false — caller falls back to buffered eager —
/// when the receive is not posted, the message is empty or below an Auto
/// threshold, the hint forces Eager, or a SchedulePolicy is active (deferred
/// envelopes must all route through the in-flight queue to keep per-pair
/// FIFO intact).
///
/// Order safety: irecv_ctx drains matching unexpected envelopes before
/// posting, so while we hold box.mu a posted receive proves no earlier
/// matching message of ours is still queued — matching the first posted
/// entry is exactly what deliver() would have done.
bool Comm::try_rendezvous(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                          int tag, int context, Protocol proto) {
    if (proto == Protocol::Eager || world_->policy.enabled) return false;
    NNCOMM_CHECK(type.valid());
    const std::size_t total = type.size() * count;
    if (total == 0) return false;
    if (proto == Protocol::Auto && total < rendezvous_threshold_) return false;
    NNCOMM_CHECK_MSG(dest >= 0 && dest < size(), "send to invalid rank");

    Envelope header;
    header.source = rank_;
    header.tag = tag;
    header.context = context;

    Mailbox& box = *world_->boxes[static_cast<std::size_t>(dest)];
    std::unique_lock<std::mutex> lk(box.mu);
    auto it = box.posted.begin();
    while (it != box.posted.end() && !detail::matches(**it, header)) ++it;
    if (it == box.posted.end()) return false;  // unposted: degrade to buffered eager
    std::shared_ptr<RequestState> r = *it;
    NNCOMM_CHECK_MSG(total <= r->type.size() * r->count, "message longer than receive buffer");
    box.posted.erase(it);

    // The copy runs while box.mu pins the request: the receiver's wait()
    // cannot observe a half-written buffer, an aborting world cannot unwind
    // the receive out from under us, and the mutex hand-off gives the bytes
    // their happens-before edge into the receiving thread.
    const auto& sflat = type.flat();
    const bool sdense =
        sflat.contiguous() && static_cast<std::ptrdiff_t>(type.size()) == type.extent();
    const auto& rflat = r->type.flat();
    const bool rdense =
        rflat.contiguous() && static_cast<std::ptrdiff_t>(r->type.size()) == r->type.extent();
    auto* rbase = static_cast<std::byte*>(r->buf);

    if (sdense && rdense) {
        PhaseScope scope(timers_, Phase::Comm);
        std::memcpy(rbase, buf, total);
    } else if (!sdense && rdense) {
        // Gather: scattered sender layout into flat destination memory.
        const dt::PackPlan& plan = type.plan();
        if (engine_config_.enable_plan_fastpath && plan.specialized()) {
            PhaseScope scope(timers_, Phase::Pack);
            ++counters_.plan_hits;
            plan.pack(sflat, static_cast<const std::byte*>(buf), count, {rbase, total});
        } else {
            auto engine = dt::make_engine(engine_kind_, buf, type, count, engine_config_);
            std::size_t off = 0;
            dt::ChunkView chunk;
            while (engine->next_chunk(chunk)) {
                PhaseScope scope(timers_, Phase::Comm);
                if (chunk.dense) {
                    for (const auto& [ptr, len] : chunk.iov) {
                        std::memcpy(rbase + off, ptr, len);
                        off += len;
                    }
                } else {
                    std::memcpy(rbase + off, chunk.packed.data(), chunk.packed.size());
                    off += chunk.packed.size();
                }
            }
            NNCOMM_CHECK(off == total);
            timers_ += engine->timers();
            counters_ += engine->counters();
        }
    } else if (sdense && !rdense) {
        // Scatter: flat sender memory into the receiver's layout.
        const std::span<const std::byte> src(static_cast<const std::byte*>(buf), total);
        const dt::PackPlan& rplan = r->type.plan();
        PhaseScope scope(timers_, Phase::Pack);
        if (rplan.specialized()) {
            ++counters_.plan_hits;
            rplan.unpack(rflat, rbase, r->count, src);
        } else {
            dt::TypeCursor cur(&rflat, r->count);
            const std::size_t n = dt::unpack_bytes(rbase, cur, src);
            NNCOMM_CHECK(n == total);
        }
    } else {
        // Both sides noncontiguous: the engine streams packed chunks out of
        // the sender layout and each chunk scatters straight into the
        // receiver layout at its running stream position — still one pass
        // over the payload with no staging buffer.
        auto engine = dt::make_engine(engine_kind_, buf, type, count, engine_config_);
        const dt::PackPlan& rplan = r->type.plan();
        const bool rspec = rplan.specialized();
        if (rspec) ++counters_.plan_hits;
        dt::TypeCursor cur(&rflat, r->count);
        std::uint64_t pos = 0;
        auto scatter = [&](const std::byte* p, std::size_t len) {
            const std::span<const std::byte> piece(p, len);
            if (rspec) {
                rplan.unpack_range(rflat, rbase, r->count, pos, piece);
            } else {
                const std::size_t n = dt::unpack_bytes(rbase, cur, piece);
                NNCOMM_CHECK(n == len);
            }
            pos += len;
        };
        dt::ChunkView chunk;
        while (engine->next_chunk(chunk)) {
            PhaseScope scope(timers_, Phase::Pack);
            if (chunk.dense) {
                for (const auto& [ptr, len] : chunk.iov) scatter(ptr, len);
            } else {
                scatter(chunk.packed.data(), chunk.packed.size());
            }
        }
        NNCOMM_CHECK(pos == total);
        timers_ += engine->timers();
        counters_ += engine->counters();
    }

    r->env = std::move(header);  // header only: carries source/tag for RecvStatus
    r->direct_bytes = total;
    r->zero_copy = true;
    r->matched = true;
    lk.unlock();
    box.cv.notify_all();
    ++counters_.rt_zero_copy_msgs;
    counters_.rt_bytes_copied += total;  // the single pass
    return true;
}

std::size_t Comm::progress() {
    if (!world_->policy.enabled) return 0;
    return detail::progress_world(*world_, counters_);
}

void Comm::send_ctx(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                    int tag, int context, Protocol proto) {
    if (!world_->policy.enabled) {
        // Zero-copy rendezvous when the receive is already posted; otherwise
        // the eager fast path — identical to the unperturbed runtime: pack
        // and hand straight to the destination mailbox, no request state.
        if (try_rendezvous(buf, count, type, dest, tag, context, proto)) return;
        Envelope env = pack_envelope(buf, count, type, tag, context);
        PhaseScope scope(timers_, Phase::Comm);
        detail::deliver(*world_, dest, std::move(env));
        return;
    }
    Request r = isend_ctx(buf, count, type, dest, tag, context, proto);
    wait(r);
}

Request Comm::isend_ctx(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                        int tag, int context, Protocol proto) {
    NNCOMM_CHECK_MSG(dest >= 0 && dest < size(), "send to invalid rank");
    if (!world_->policy.enabled && try_rendezvous(buf, count, type, dest, tag, context, proto)) {
        // Transfer already completed into the receiver's buffer.
        auto done = std::make_shared<RequestState>();
        done->kind = RequestState::Kind::Send;
        done->owner_rank = rank_;
        done->delivered.store(true, std::memory_order_release);
        done->complete = true;
        return Request(std::move(done));
    }
    Envelope env = pack_envelope(buf, count, type, tag, context);
    auto req = std::make_shared<RequestState>();
    req->kind = RequestState::Kind::Send;
    req->owner_rank = rank_;

    const SchedulePolicy& pol = world_->policy;
    if (!pol.enabled) {
        // Buffered-eager: delivered inline, request born complete.
        PhaseScope scope(timers_, Phase::Comm);
        detail::deliver(*world_, dest, std::move(env));
        req->delivered.store(true, std::memory_order_release);
        req->complete = true;
        return Request(std::move(req));
    }

    // Genuinely pending: enqueue on the delivery engine under the seeded
    // schedule. All perturbation draws share the world RNG under prog_mu.
    const std::uint64_t bytes = env.payload.size();
    const bool internal = context >= detail::kInternalContextOffset;
    int stall_spins = 0;
    {
        PhaseScope scope(timers_, Phase::Comm);
        std::lock_guard<std::mutex> lk(world_->prog_mu);
        Rng& rng = world_->rng;

        detail::InFlight f;
        f.env = std::move(env);
        f.dest = dest;
        f.sender = req;
        if (pol.defer_prob > 0 && pol.max_defer > 0 && rng.bernoulli(pol.defer_prob)) {
            f.defer = static_cast<int>(rng.uniform_u64(1, static_cast<std::uint64_t>(pol.max_defer)));
        }
        if (pol.use_latency_model) {
            const double transit_us = pol.latency_us + static_cast<double>(bytes) * pol.us_per_byte;
            const double quantum = pol.defer_quantum_us > 0 ? pol.defer_quantum_us : 1.0;
            const double passes = transit_us / quantum;
            f.defer += passes > 64.0 ? 64 : static_cast<int>(passes);
        }
        if (f.defer > 0) ++counters_.sched_deferrals;

        // Bounded reordering fault: only internal-context (collective)
        // traffic, which is epoch-tagged and must survive same-pair FIFO
        // violations. User point-to-point ordering is never perturbed.
        auto pos = world_->inflight.end();
        if (internal && pol.reorder_prob > 0 && pol.max_reorder > 0 &&
            rng.bernoulli(pol.reorder_prob)) {
            const int jump =
                static_cast<int>(rng.uniform_u64(1, static_cast<std::uint64_t>(pol.max_reorder)));
            int overtaken = 0;
            while (pos != world_->inflight.begin() && overtaken < jump) {
                auto prev = std::prev(pos);
                if (prev->env.source == rank_ && prev->dest == dest) {
                    if (prev->env.context < detail::kInternalContextOffset) break;
                    ++overtaken;
                }
                pos = prev;
            }
            if (overtaken > 0) ++counters_.sched_reorders;
        }
        world_->inflight.insert(pos, std::move(f));
        world_->inflight_count.fetch_add(1, std::memory_order_release);
        ++counters_.sched_pending_sends;

        if (pol.stall_prob > 0 && pol.max_stall_spins > 0 && rng.bernoulli(pol.stall_prob)) {
            stall_spins =
                static_cast<int>(rng.uniform_u64(1, static_cast<std::uint64_t>(pol.max_stall_spins)));
        }
    }
    if (stall_spins > 0) {
        ++counters_.sched_stalls;
        for (int i = 0; i < stall_spins; ++i) std::this_thread::yield();
    }
    return Request(std::move(req));
}

void Comm::send(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                int tag) {
    send_ctx(buf, count, type, dest, tag, context_);
}

Request Comm::isend(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                    int tag) {
    return isend_ctx(buf, count, type, dest, tag, context_);
}

RecvStatus Comm::wait(Request& request) {
    NNCOMM_CHECK_MSG(request.valid(), "wait on null request");
    RequestState& req = *request.state_;
    if (req.complete) return req.status;

    if (req.kind == RequestState::Kind::Send) {
        // Pending buffered send: complete when the envelope reaches the
        // destination mailbox. This rank drives the delivery engine itself,
        // so completion needs no cooperation from other ranks.
        while (!req.delivered.load(std::memory_order_acquire)) {
            if (progress() == 0) {
                if (req.delivered.load(std::memory_order_acquire)) break;
                if (world_->aborted.load(std::memory_order_acquire)) {
                    throw AbortedError("runtime aborted while waiting for a send");
                }
                std::this_thread::yield();
            }
        }
        req.complete = true;
        return req.status;
    }

    Mailbox& box = *world_->boxes[static_cast<std::size_t>(req.owner_rank)];
    if (!world_->policy.enabled) {
        std::unique_lock<std::mutex> lk(box.mu);
        box.cv.wait(lk, [&] {
            return req.matched || world_->aborted.load(std::memory_order_acquire);
        });
        if (!req.matched) throw AbortedError("runtime aborted while waiting for a message");
    } else {
        // Perturbed schedule: this waiter must also drive the delivery
        // engine, and re-polls on a timeout so suppressed notifications
        // (the delayed-wakeup fault) self-heal. A matched request always
        // completes, even when the world is already aborting — the message
        // is here; consuming it cannot mask the root cause.
        for (;;) {
            const bool delivered_any = progress() > 0;
            std::unique_lock<std::mutex> lk(box.mu);
            if (req.matched) break;
            if (world_->aborted.load(std::memory_order_acquire)) {
                throw AbortedError("runtime aborted while waiting for a message");
            }
            if (!delivered_any) {
                box.cv.wait_for(lk, std::chrono::microseconds(100), [&] {
                    return req.matched || world_->aborted.load(std::memory_order_acquire);
                });
                if (req.matched) break;
            }
        }
    }

    return finish_recv(req);
}

RecvStatus Comm::finish_recv(RequestState& req) {
    if (req.zero_copy) {
        // Rendezvous: the sender already moved the payload straight into
        // req.buf; the envelope is a header. Nothing left to unpack.
        req.status.source = req.env.source;
        req.status.tag = req.env.tag;
        req.status.bytes = req.direct_bytes;
        req.complete = true;
        return req.status;
    }

    // Unpack outside the lock; only this rank's thread touches req now.
    const std::size_t capacity = req.type.size() * req.count;
    NNCOMM_CHECK_MSG(req.env.payload.size() <= capacity, "message longer than receive buffer");
    if (!req.env.payload.empty()) {
        counters_.rt_bytes_copied += req.env.payload.size();  // receive-side copy
        const auto& flat = req.type.flat();
        if (flat.contiguous() && static_cast<std::ptrdiff_t>(req.type.size()) == req.type.extent()) {
            PhaseScope scope(timers_, Phase::Comm);
            std::memcpy(req.buf, req.env.payload.data(), req.env.payload.size());
        } else {
            // Receive-side scatter: specialized plan kernels when the layout
            // compiles to one, generic cursor walk otherwise.
            PhaseScope scope(timers_, Phase::Pack);
            const std::span<const std::byte> payload(req.env.payload.data(),
                                                     req.env.payload.size());
            const dt::PackPlan& plan = req.type.plan();
            if (plan.specialized()) {
                ++counters_.plan_hits;
                plan.unpack(flat, static_cast<std::byte*>(req.buf), req.count, payload);
            } else {
                dt::TypeCursor cur(&flat, req.count);
                const std::size_t n =
                    dt::unpack_bytes(static_cast<std::byte*>(req.buf), cur, payload);
                NNCOMM_CHECK(n == req.env.payload.size());
            }
        }
    }
    req.status.source = req.env.source;
    req.status.tag = req.env.tag;
    req.status.bytes = req.env.payload.size();
    world_->pool.release(std::move(req.env.payload));  // recycle for future sends
    req.complete = true;
    return req.status;
}

void Comm::waitall(std::span<Request> reqs) {
    for (Request& r : reqs) {
        if (r.valid()) wait(r);
    }
}

bool Comm::test(Request& request, RecvStatus* status) {
    NNCOMM_CHECK_MSG(request.valid(), "test on null request");
    RequestState& req = *request.state_;
    if (req.complete) {
        if (status) *status = req.status;
        return true;
    }
    progress();

    if (req.kind == RequestState::Kind::Send) {
        if (!req.delivered.load(std::memory_order_acquire)) {
            if (world_->aborted.load(std::memory_order_acquire)) {
                throw AbortedError("runtime aborted while testing a send");
            }
            return false;
        }
        req.complete = true;
        if (status) *status = req.status;
        return true;
    }

    // `matched` is written under the owner mailbox's mutex; take it briefly
    // to read a coherent value. A matched request always completes, even
    // when the world is aborting — consuming an arrived message cannot mask
    // the root cause (same rule as wait()).
    Mailbox& box = *world_->boxes[static_cast<std::size_t>(req.owner_rank)];
    {
        std::lock_guard<std::mutex> lk(box.mu);
        if (!req.matched) {
            if (world_->aborted.load(std::memory_order_acquire)) {
                throw AbortedError("runtime aborted while testing a receive");
            }
            return false;
        }
    }
    const RecvStatus st = finish_recv(req);
    if (status) *status = st;
    return true;
}

RecvStatus Comm::recv(void* buf, std::size_t count, const dt::Datatype& type, int source,
                      int tag) {
    Request r = irecv(buf, count, type, source, tag);
    return wait(r);
}

RecvStatus Comm::sendrecv(const void* sendbuf, std::size_t sendcount,
                          const dt::Datatype& sendtype, int dest, int sendtag, void* recvbuf,
                          std::size_t recvcount, const dt::Datatype& recvtype, int source,
                          int recvtag) {
    Request r = irecv(recvbuf, recvcount, recvtype, source, recvtag);
    send(sendbuf, sendcount, sendtype, dest, sendtag);
    return wait(r);
}

void Comm::send_i(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                  int tag, Protocol proto) {
    send_ctx(buf, count, type, dest, tag, context_ + detail::kInternalContextOffset, proto);
}

RecvStatus Comm::recv_i(void* buf, std::size_t count, const dt::Datatype& type, int source,
                        int tag) {
    Request r = irecv_i(buf, count, type, source, tag);
    return wait(r);
}

Request Comm::isend_i(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                      int tag, Protocol proto) {
    return isend_ctx(buf, count, type, dest, tag, context_ + detail::kInternalContextOffset,
                     proto);
}

Request Comm::irecv_i(void* buf, std::size_t count, const dt::Datatype& type, int source,
                      int tag) {
    return irecv_ctx(buf, count, type, source, tag, context_ + detail::kInternalContextOffset);
}

RecvStatus Comm::sendrecv_i(const void* sendbuf, std::size_t sendcount,
                            const dt::Datatype& sendtype, int dest, int sendtag, void* recvbuf,
                            std::size_t recvcount, const dt::Datatype& recvtype, int source,
                            int recvtag, Protocol proto) {
    Request r = irecv_i(recvbuf, recvcount, recvtype, source, recvtag);
    send_i(sendbuf, sendcount, sendtype, dest, sendtag, proto);
    return wait(r);
}

namespace {
ProbeStatus scan_unexpected(Mailbox& box, int source, int tag, int context) {
    // Caller holds box.mu.
    detail::RequestState pattern;
    pattern.source = source;
    pattern.tag = tag;
    pattern.context = context;
    for (const Envelope& env : box.unexpected) {
        if (detail::matches(pattern, env)) {
            return ProbeStatus{true, env.source, env.tag, env.payload.size()};
        }
    }
    return ProbeStatus{};
}
}  // namespace

ProbeStatus Comm::probe(int source, int tag) {
    Mailbox& box = *world_->boxes[static_cast<std::size_t>(rank_)];
    if (!world_->policy.enabled) {
        std::unique_lock<std::mutex> lk(box.mu);
        for (;;) {
            ProbeStatus st = scan_unexpected(box, source, tag, context_);
            if (st.found) return st;
            box.cv.wait(lk, [&] {
                return world_->aborted.load(std::memory_order_acquire) ||
                       scan_unexpected(box, source, tag, context_).found;
            });
            if (world_->aborted.load(std::memory_order_acquire)) {
                throw AbortedError("runtime aborted while probing");
            }
        }
    }
    // Perturbed schedule: drive delivery between scans and re-poll on a
    // timeout (probes have no matched flag a notify could be tied to).
    for (;;) {
        const bool delivered_any = progress() > 0;
        std::unique_lock<std::mutex> lk(box.mu);
        ProbeStatus st = scan_unexpected(box, source, tag, context_);
        if (st.found) return st;
        if (world_->aborted.load(std::memory_order_acquire)) {
            throw AbortedError("runtime aborted while probing");
        }
        if (!delivered_any) {
            box.cv.wait_for(lk, std::chrono::microseconds(100), [&] {
                return world_->aborted.load(std::memory_order_acquire) ||
                       scan_unexpected(box, source, tag, context_).found;
            });
        }
    }
}

ProbeStatus Comm::iprobe(int source, int tag) {
    progress();  // an in-flight message "is there" once the engine can deliver it
    Mailbox& box = *world_->boxes[static_cast<std::size_t>(rank_)];
    std::lock_guard<std::mutex> lk(box.mu);
    return scan_unexpected(box, source, tag, context_);
}

Comm Comm::dup() {
    // Deterministic tree numbering: all ranks perform the same sequence of
    // dups, so (parent context, per-parent dup ordinal) is globally
    // consistent. Contexts live below kInternalContextOffset.
    ++dup_count_;
    NNCOMM_CHECK_MSG(dup_count_ < 64, "too many duplicates of one communicator");
    const int child = context_ * 64 + dup_count_;
    NNCOMM_CHECK_MSG(child < (1 << 24), "communicator dup tree too deep");
    Comm c(world_, rank_, child);
    c.engine_kind_ = engine_kind_;
    c.engine_config_ = engine_config_;
    c.rendezvous_threshold_ = rendezvous_threshold_;
    return c;
}

void Comm::barrier() {
    // Dissemination barrier: ceil(log2 N) rounds of zero-byte exchanges on
    // the internal context. Epoch-tagged so a reordered straggler from one
    // barrier can never satisfy a later one.
    const int epoch = next_collective_epoch();
    const int n = size();
    const int ctx = context_ + detail::kInternalContextOffset;
    const int tag = epoch_tag(kInternalTagBase, epoch);
    for (int k = 1; k < n; k <<= 1) {
        const int to = (rank_ + k) % n;
        const int from = (rank_ - k + n) % n;
        Request r = irecv_ctx(nullptr, 0, dt::Datatype::byte(), from, tag, ctx);
        send_ctx(nullptr, 0, dt::Datatype::byte(), to, tag, ctx);
        wait(r);
    }
}

// ---------------------------------------------------------------------------
// World

World::World(int nranks) : nranks_(nranks), state_(std::make_unique<WorldState>()) {
    NNCOMM_CHECK_MSG(nranks >= 1, "World needs at least one rank");
    state_->nranks = nranks;
    state_->boxes.reserve(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) state_->boxes.push_back(std::make_unique<Mailbox>());
}

World::~World() = default;

void World::set_schedule(const SchedulePolicy& policy) { state_->policy = policy; }

const SchedulePolicy& World::schedule() const { return state_->policy; }

void World::run(const std::function<void(Comm&)>& fn) {
    // Reset abort state and clear any residue from a previous run.
    state_->aborted.store(false);
    for (auto& b : state_->boxes) {
        std::lock_guard<std::mutex> lk(b->mu);
        b->unexpected.clear();
        b->posted.clear();
    }
    {
        std::lock_guard<std::mutex> lk(state_->prog_mu);
        state_->inflight.clear();
        state_->inflight_count.store(0);
        state_->rng.reseed(state_->policy.seed);
    }
    faulting_rank_ = -1;

    // Root-cause error slot. A woken waiter's secondary AbortedError can
    // race the originating exception here; the originating error always
    // wins, whichever order the ranks arrive in.
    std::mutex err_mu;
    std::exception_ptr first_error;
    int first_error_rank = -1;
    bool first_error_secondary = false;
    auto record = [&](std::exception_ptr e, int rank, bool secondary) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error || (first_error_secondary && !secondary)) {
            first_error = std::move(e);
            first_error_rank = rank;
            first_error_secondary = secondary;
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r) {
        threads.emplace_back([this, r, &fn, &record] {
            Comm comm(state_.get(), r, /*context=*/0);
            try {
                fn(comm);
            } catch (const AbortedError&) {
                record(std::current_exception(), r, /*secondary=*/true);
            } catch (...) {
                record(std::current_exception(), r, /*secondary=*/false);
                state_->abort_all();
            }
        });
    }
    for (auto& t : threads) t.join();
    if (first_error) {
        faulting_rank_ = first_error_rank;
        std::rethrow_exception(first_error);
    }
}

}  // namespace nncomm::rt

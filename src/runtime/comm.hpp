// Threaded in-process message-passing runtime with MPI semantics.
//
// A World owns N ranks; World::run(fn) executes fn(Comm&) on one thread per
// rank. Comm provides MPI-style point-to-point operations — blocking and
// nonblocking sends/receives with (source, tag, communicator-context)
// matching, wildcards, FIFO ordering per sender, and derived-datatype
// buffers on both sides.
//
// The send path is where the paper's datatype engines plug in: every
// noncontiguous send is driven through a pipelined PackEngine
// (SingleContext = the MPICH2 baseline with the quadratic re-search,
// DualContext = the paper's §4.1 design), selected per-Comm via
// set_engine(). Phase timers accumulate Comm / Pack / Search time exactly
// as Figure 13 reports them.
//
// This runtime is the substrate standing in for MVAPICH2 on the paper's
// InfiniBand cluster: all algorithmic behaviour (matching, ordering,
// packing, zero-byte synchronization) is real; only the wire is a
// process-local queue.
//
// Delivery is eager by default, but under a World::set_schedule policy the
// nonblocking sends become genuinely pending: packed envelopes sit on a
// per-world in-flight queue drained by a delivery engine that
// wait/waitall/probe/iprobe drive, with seeded schedule perturbation and
// fault injection (runtime/schedule.hpp). That is how the test suite makes
// latent message-matching bugs reachable.
//
// The send path runs a two-protocol split mirroring real MPI stacks'
// eager/rendezvous designs:
//
//   rendezvous — a message at or above the communicator's
//     rendezvous_threshold whose matching receive is already posted is
//     moved straight into the receiver's buffer in a single pass: one
//     memcpy for contiguous layouts, a direct plan/engine-driven
//     gather/scatter for noncontiguous ones. No envelope, no intermediate
//     payload allocation (rt_zero_copy_msgs counts these).
//
//   buffered eager — everything else (small messages, unposted receives,
//     and every send under an active SchedulePolicy, which must route
//     through the in-flight queue) stages its payload in an envelope whose
//     buffer comes from a per-world size-classed pool recycled at receive
//     completion (rt_pool_hits / rt_pool_misses / rt_payload_allocs).
//
// Collectives pass explicit Protocol hints so algorithm knowledge (the
// large bin of binned alltoallw, the bulk phases of allgatherv) overrides
// the size heuristic; user point-to-point traffic uses Protocol::Auto.
//
// Transport: each rank's mailbox is sharded by source into per-(source,
// dest) lanes. The buffered-eager fastpath pushes envelopes onto a lane's
// lock-free SPSC ring; ring-full spill and all SchedulePolicy-routed
// traffic go through a mutex-guarded per-lane overflow list that preserves
// per-pair FIFO (ring entries are always older than overflow entries).
// Receivers pull: arrival matching runs on the destination rank's own
// thread against a posted-receive registry (sharded by source, ordered
// across shards by post sequence — MPI's earliest-posted-first), and
// unmatched envelopes land in receiver-private per-source stashes that
// irecv/probe scan without locks. Rendezvous senders claim posted receives
// directly under the registry lock, gated on the lane's unconsumed count so
// a large message can never overtake an earlier small one from the same
// sender. The delivery engine is sharded per destination with an atomic
// drain claim instead of a global lock, the payload pool fronts its shared
// store with per-rank caches (batch refill/flush under a byte budget), and
// waiters spin briefly on a per-mailbox sequence counter before registering
// as sleepers — deliverers only touch the condition variable when a sleeper
// is registered. The rt_lane_* / rt_lock_acquisitions / rt_cv_* /
// rt_pool_local_hits counters make all of this observable.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/counters.hpp"
#include "core/error.hpp"
#include "datatype/engine.hpp"
#include "runtime/protocol.hpp"
#include "runtime/schedule.hpp"

namespace nncomm::rt {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Transfer-protocol selector for one send. Auto applies the size
/// heuristic (rendezvous at or above the communicator's threshold); Eager
/// and Rendezvous force the respective path regardless of size. A
/// rendezvous attempt always degrades to buffered eager when the matching
/// receive is not posted yet or a SchedulePolicy is active, so a hint can
/// never deadlock or reorder anything — it only changes which copy path
/// moves the bytes. Rma marks a transfer lowered onto a one-sided window
/// (rt::Win) by a persistent plan; on the ad-hoc point-to-point path it
/// resolves exactly like Auto (there is no window to put into), so the
/// hint is always safe to pass through generic send paths.
enum class Protocol { Auto, Eager, Rendezvous, Rma };

/// Default rendezvous threshold (bytes). Overridable per communicator via
/// Comm::set_rendezvous_threshold and at build time via the
/// NNCOMM_RENDEZVOUS CMake option (OFF compiles the default to "never").
#if defined(NNCOMM_RENDEZVOUS_THRESHOLD)
inline constexpr std::size_t kDefaultRendezvousThreshold = NNCOMM_RENDEZVOUS_THRESHOLD;
#else
inline constexpr std::size_t kDefaultRendezvousThreshold = 32 * 1024;
#endif
/// Tags >= kInternalTagBase are reserved for collective implementations.
inline constexpr int kInternalTagBase = 1 << 24;

/// Collective tag epochs: every collective invocation folds a
/// per-communicator epoch ordinal into its tags so that back-to-back
/// invocations on the same communicator can never alias once sends are
/// genuinely asynchronous (or the fault injector reorders same-pair
/// envelopes). Each collective keeps its base offset below kEpochTagStride;
/// the epoch selects one of kEpochLanes disjoint tag lanes above it.
inline constexpr int kEpochTagStride = 1 << 12;
inline constexpr int kEpochLanes = 256;
inline constexpr int epoch_tag(int base, int epoch) {
    return base + (epoch & (kEpochLanes - 1)) * kEpochTagStride;
}

/// Secondary failure thrown by ranks that were blocked in a recv/probe/wait
/// when another rank aborted the world. World::run records it only if no
/// root-cause exception arrives, so the originating error always wins the
/// rethrow.
class AbortedError : public Error {
public:
    using Error::Error;
};

struct RecvStatus {
    int source = -1;
    int tag = -1;
    std::size_t bytes = 0;  ///< payload bytes received
};

/// Result of a probe: like RecvStatus but for a message still in the queue.
struct ProbeStatus {
    bool found = false;  ///< always true for blocking probe
    int source = -1;
    int tag = -1;
    std::size_t bytes = 0;
};

namespace detail {
struct WorldState;
struct RequestState;
struct Envelope;
}  // namespace detail

/// Handle to a pending nonblocking operation. Value-semantic; copy shares
/// the underlying operation.
class Request {
public:
    Request() = default;
    bool valid() const { return state_ != nullptr; }

private:
    friend class Comm;
    explicit Request(std::shared_ptr<detail::RequestState> s) : state_(std::move(s)) {}
    std::shared_ptr<detail::RequestState> state_;
};

/// Per-rank communicator handle. Not thread-safe; each rank thread owns one.
class Comm {
public:
    int rank() const { return rank_; }
    int size() const;

    // -- configuration -------------------------------------------------------
    /// Selects the datatype pack engine used by this rank's sends.
    void set_engine(dt::EngineKind kind) { engine_kind_ = kind; }
    dt::EngineKind engine_kind() const { return engine_kind_; }
    void set_engine_config(const dt::EngineConfig& cfg) { engine_config_ = cfg; }
    const dt::EngineConfig& engine_config() const { return engine_config_; }
    /// Message size (bytes) at which Protocol::Auto sends attempt the
    /// zero-copy rendezvous path. 0 makes every nonempty send attempt it;
    /// SIZE_MAX disables the protocol for this communicator. Setting an
    /// explicit threshold PINS static protocol selection (adaptation
    /// disengages), so tests and workloads that reason about exact protocol
    /// counts keep their determinism; a later set_adaptive_protocol(true)
    /// re-engages adaptation with this value as the fallback.
    void set_rendezvous_threshold(std::size_t bytes) {
        rendezvous_threshold_ = bytes;
        threshold_pinned_ = true;
    }
    std::size_t rendezvous_threshold() const { return rendezvous_threshold_; }

    /// Per-(src, dst)-pair self-tuning protocol selection (protocol.hpp):
    /// when engaged, Protocol::Auto resolves against the learned
    /// eager/rendezvous cost crossover for (this rank, dest, pack family)
    /// instead of the static threshold, which remains the fallback while
    /// the cost model is under-sampled. On by default; disengaged by an
    /// explicit set_rendezvous_threshold, the NNCOMM_ADAPTIVE=OFF env var,
    /// or the NNCOMM_ADAPTIVE CMake option. An explicit
    /// set_adaptive_protocol(true) overrides a prior threshold pin.
    void set_adaptive_protocol(bool on) {
        adaptive_protocol_ = on;
        if (on) threshold_pinned_ = false;
    }
    bool adaptive_protocol() const { return adaptive_protocol_; }
    /// True when Auto sends actually consult the learned cost model.
    bool adaptive_protocol_engaged() const {
        return kAdaptiveCompiled && adaptive_protocol_ && !threshold_pinned_ &&
               adaptive_runtime_enabled();
    }
    /// The threshold a Protocol::Auto send to `dest` with layout `type`
    /// resolves against right now: the learned crossover when adaptation is
    /// engaged and confident, the static threshold otherwise. Updates the
    /// rt_proto_threshold_bytes_{hi,lo} water marks.
    std::size_t effective_rendezvous_threshold(int dest, const dt::Datatype& type);

    /// Chunk-pipelined rendezvous for staged collective sends (on by
    /// default): packing chunk k+1 overlaps the copy-out of chunk k through
    /// a small cache-hot window instead of staging the whole payload first.
    /// coll::CollRequest consults this before fusing a Pack+Send op pair.
    void set_rendezvous_pipeline(bool on) { rendezvous_pipeline_ = on; }
    bool rendezvous_pipeline() const { return rendezvous_pipeline_; }

    // -- blocking point-to-point ---------------------------------------------
    void send(const void* buf, std::size_t count, const dt::Datatype& type, int dest, int tag);
    RecvStatus recv(void* buf, std::size_t count, const dt::Datatype& type, int source,
                    int tag);
    /// Combined send+recv (deadlock-free regardless of peer order).
    RecvStatus sendrecv(const void* sendbuf, std::size_t sendcount, const dt::Datatype& sendtype,
                        int dest, int sendtag, void* recvbuf, std::size_t recvcount,
                        const dt::Datatype& recvtype, int source, int recvtag);

    // -- nonblocking ----------------------------------------------------------
    Request isend(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                  int tag);
    Request irecv(void* buf, std::size_t count, const dt::Datatype& type, int source, int tag);
    RecvStatus wait(Request& req);
    void waitall(std::span<Request> reqs);
    /// Nonblocking completion check (MPI_Test). Drives the delivery engine
    /// once, completes the request if it can (including the receive-side
    /// unpack), and returns whether it did. A completed request's status is
    /// written through `status` when non-null. Never blocks; the schedule
    /// executor (coll::CollRequest) is built on this.
    bool test(Request& req, RecvStatus* status = nullptr);

    // -- one-sided completion hooks ------------------------------------------
    /// Bumps `rank`'s mailbox pulse and notifies its registered sleepers.
    /// rt::Win epochs signal completion through this — the same seq-counter
    /// path every delivery rides — instead of mailbox messages.
    void pulse_rank(int rank);
    /// Blocks until `pred()` turns true, using the spin / yield / registered
    /// timed-sleep discipline of the message waiters, driving the delivery
    /// engine between checks. `pred` must become true through another
    /// rank's store followed by a pulse_rank(this rank) (or any delivery to
    /// this rank); the timed slice self-heals a suppressed notify.
    void wait_until(const std::function<bool()>& pred);

    /// Dissemination barrier over all ranks of this communicator.
    void barrier();

    /// Blocks until a message matching (source, tag) is queued without a
    /// posted receive, and reports it without consuming it (MPI_Probe).
    /// Wildcards allowed.
    ProbeStatus probe(int source, int tag);
    /// Nonblocking variant (MPI_Iprobe): found == false when nothing
    /// matches right now.
    ProbeStatus iprobe(int source, int tag);

    /// Duplicates the communicator into a new matching context
    /// (MPI_Comm_dup): messages on the duplicate can never match receives
    /// on the parent. Collective in the MPI sense — every rank must
    /// perform the same sequence of dup calls. Statistics start fresh;
    /// engine configuration is inherited.
    Comm dup();

    // -- internal-context point-to-point ---------------------------------------
    // Used by collective implementations (src/coll). Identical semantics to
    // the public operations but matched on a shifted context, so collective
    // traffic can never be stolen by user-posted wildcard receives. The
    // Protocol parameter is the volume hint collectives thread through:
    // phases known to move bulk data force Rendezvous, latency-bound small
    // phases force Eager, and Auto falls back to the size heuristic.
    void send_i(const void* buf, std::size_t count, const dt::Datatype& type, int dest, int tag,
                Protocol proto = Protocol::Auto);
    RecvStatus recv_i(void* buf, std::size_t count, const dt::Datatype& type, int source,
                      int tag);
    Request isend_i(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                    int tag, Protocol proto = Protocol::Auto);
    Request irecv_i(void* buf, std::size_t count, const dt::Datatype& type, int source, int tag);
    RecvStatus sendrecv_i(const void* sendbuf, std::size_t sendcount,
                          const dt::Datatype& sendtype, int dest, int sendtag, void* recvbuf,
                          std::size_t recvcount, const dt::Datatype& recvtype, int source,
                          int recvtag, Protocol proto = Protocol::Auto);
    /// Internal-context nonblocking probe: like iprobe, but matching on the
    /// shifted collective context, so it can never observe (or steal) user
    /// point-to-point traffic. The NBX sparse exchange (runtime/sparse.cpp)
    /// drives its consensus loop with this.
    ProbeStatus iprobe_i(int source, int tag);

    /// Chunk-pipelined internal-context rendezvous for producer-driven
    /// staged sends (coll::CollRequest's fused Pack+Send path). If the
    /// matching receive is already posted, streams the payload in
    /// engine_config().pipeline_chunk slices: each slice is produced into
    /// the front of `stage` (produce(pos, slice) must fill slice with
    /// payload bytes [pos, pos + slice.size())) and immediately copied or
    /// scattered into the receiver's buffer while the source bytes are
    /// still cache-hot — pack of chunk k+1 overlaps the copy of chunk k
    /// instead of a serial whole-message pack-then-copy. Returns false
    /// (caller falls back to pack-into-staging + isend_i) when the receive
    /// is unposted, a SchedulePolicy is active, total == 0, or FIFO order
    /// would be violated — exactly try_rendezvous's degradation rules.
    /// `family` attributes the cost-model observation.
    bool try_rendezvous_staged_i(
        int dest, int tag, std::size_t total, PackFamily family, std::span<std::byte> stage,
        const std::function<void(std::uint64_t, std::span<std::byte>)>& produce);

    /// Matching-context ordinal of this communicator (stable across ranks:
    /// dup trees are numbered deterministically). Keys the ProtoTuneCache's
    /// per-(communicator, pattern) frozen protocol choices.
    int context_id() const { return context_; }

    // -- convenience typed sends (contiguous arrays) --------------------------
    template <typename T>
    void send_n(const T* buf, std::size_t n, int dest, int tag) {
        send(buf, n * sizeof(T), dt::Datatype::byte(), dest, tag);
    }
    template <typename T>
    RecvStatus recv_n(T* buf, std::size_t n, int source, int tag) {
        return recv(buf, n * sizeof(T), dt::Datatype::byte(), source, tag);
    }

    // -- collective tag epochs -------------------------------------------------
    /// Returns the next collective epoch ordinal for this communicator.
    /// Every collective implementation (src/coll, barrier, persistent
    /// plans) calls this exactly once per invocation, first thing, on every
    /// rank — the call sequences match because collectives are collective —
    /// and folds the result into its tags via epoch_tag().
    int next_collective_epoch() { return collective_epoch_++; }

    // -- instrumentation -------------------------------------------------------
    const PhaseTimers& timers() const { return timers_; }
    PhaseTimers& timers() { return timers_; }
    const StatCounters& counters() const { return counters_; }
    StatCounters& counters() { return counters_; }
    void reset_stats() {
        timers_.reset();
        counters_.reset();
    }
    /// Folds externally measured statistics into this communicator's
    /// totals. Persistent collective plans drive their own pack engines
    /// instead of the send path, then report what they did through here.
    void merge_stats(const StatCounters& c, const PhaseTimers& t) {
        counters_ += c;
        timers_ += t;
    }

private:
    friend class World;
    Comm(detail::WorldState* world, int rank, int context)
        : world_(world), rank_(rank), context_(context) {}

    Request irecv_ctx(void* buf, std::size_t count, const dt::Datatype& type, int source,
                      int tag, int context);
    void send_ctx(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                  int tag, int context, Protocol proto = Protocol::Auto);
    Request isend_ctx(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                      int tag, int context, Protocol proto = Protocol::Auto);
    detail::Envelope pack_envelope(const void* buf, std::size_t count, const dt::Datatype& type,
                                   int dest, int tag, int context, std::size_t total);
    bool try_rendezvous(const void* buf, std::size_t count, const dt::Datatype& type, int dest,
                        int tag, int context, Protocol proto, std::size_t total);
    /// Returns a fresh receive request, recycling an idle RequestState from
    /// this communicator's cache when one is free (use_count == 1 means
    /// only the cache still references it).
    std::shared_ptr<detail::RequestState> alloc_request();
    /// Drains this rank's lanes (rings, then overflow) and runs arrival
    /// matching against the posted-receive registry; misses go to the
    /// per-source stashes. Returns true if any envelope was processed.
    bool process_arrivals();
    /// Fast completion check for a receive: matched flag first, then a
    /// pulse-gated process_arrivals(). Cheap enough to sit in a spin loop.
    bool try_complete_recv(detail::RequestState& req);
    /// Receive-side completion: unpacks a matched request's payload into the
    /// user buffer (or just fills the status for zero-copy rendezvous
    /// arrivals) and recycles the envelope. Shared by wait() and test().
    RecvStatus finish_recv(detail::RequestState& req);
    /// Drains deliverable in-flight envelopes (no-op when the schedule
    /// policy is off). Returns the number of envelopes delivered.
    std::size_t progress();

    detail::WorldState* world_ = nullptr;
    int rank_ = -1;
    int context_ = 0;
    int dup_count_ = 0;  ///< children created from this communicator
    int collective_epoch_ = 0;
    std::size_t rendezvous_threshold_ = kDefaultRendezvousThreshold;
    bool threshold_pinned_ = false;     ///< explicit threshold: static selection
    bool adaptive_protocol_ = true;     ///< consult the learned cost model
    bool rendezvous_pipeline_ = true;   ///< fuse staged Pack+Send op pairs
    dt::EngineKind engine_kind_ = dt::EngineKind::DualContext;
    dt::EngineConfig engine_config_{};
    PhaseTimers timers_;
    StatCounters counters_;
    std::vector<std::shared_ptr<detail::RequestState>> req_cache_;
    std::size_t req_cursor_ = 0;
};

/// A set of ranks executed as threads.
class World {
public:
    explicit World(int nranks);
    ~World();

    World(const World&) = delete;
    World& operator=(const World&) = delete;

    int size() const { return nranks_; }

    /// Installs the delivery schedule used by subsequent run() calls. Must
    /// not be called while a run is in progress. The default is
    /// SchedulePolicy::none() — eager inline delivery.
    void set_schedule(const SchedulePolicy& policy);
    const SchedulePolicy& schedule() const;

    /// Runs fn(Comm&) on every rank concurrently and joins. If any rank
    /// throws, all blocked operations are aborted and the root-cause
    /// exception is rethrown here: a real error always displaces the
    /// secondary AbortedError a woken waiter throws, regardless of which
    /// rank reaches the error slot first.
    void run(const std::function<void(Comm&)>& fn);

    /// Rank whose exception the last run() rethrew (-1 if it succeeded).
    int faulting_rank() const { return faulting_rank_; }

    /// Caps the bytes the shared payload-pool store may keep resident
    /// (per-rank caches excluded). Shrinking the budget trims immediately,
    /// largest size classes first. Default 64 MiB.
    void set_payload_pool_budget(std::size_t bytes);
    /// Bytes currently resident in the shared payload-pool store.
    std::size_t payload_pool_resident_bytes() const;

    /// Replaces measured protocol-cost observations with the analytic model
    /// `costs` (protocol.hpp): every observation becomes base + per_byte ×
    /// bytes with no clock reads, so adaptation is a pure deterministic
    /// function of the message sequence. Must not be called while a run is
    /// in progress. Determinism tests and benches place the crossover
    /// exactly with this.
    void set_synthetic_protocol_costs(const SyntheticProtoCosts& costs);
    /// The learned rendezvous crossover for (src, dst, family), or
    /// `fallback` while the pair's cost model is under-sampled.
    std::size_t learned_threshold(int src, int dst, PackFamily family,
                                  std::size_t fallback) const;
    /// Total cost-model observations recorded for the (src, dst) pair
    /// across all families and lines (determinism tests).
    std::uint64_t proto_pair_samples(int src, int dst) const;

private:
    int nranks_;
    int faulting_rank_ = -1;
    std::unique_ptr<detail::WorldState> state_;
};

}  // namespace nncomm::rt

// Self-tuning transfer-protocol selection (the adaptive rendezvous
// threshold).
//
// The paper's Fig. 15/16 message populations are nonuniform — a few huge
// bins next to many tiny ones — so one global rendezvous threshold is wrong
// for most (src, dst) pairs most of the time. Instead of a constant, each
// pair keeps three exponentially weighted regression lines per pack-plan
// family, fed from timestamps already taken on the hot paths:
//
//   eager_send   — cost of staging a payload into an envelope (sender side)
//   eager_unpack — cost of copying the envelope into the user buffer
//                  (receiver side)
//   rdzv         — cost of the rendezvous claim + single direct copy
//
// Each line fits cost_ns ≈ a + b·bytes. The eager path pays both copies, so
// its model is (a_send + a_unpack) + (b_send + b_unpack)·s; the learned
// crossover s* = (a_rdzv − a_eager) / (b_eager − b_rdzv) is the message size
// where rendezvous starts winning, and Protocol::Auto resolves against it
// once every contributing line has enough samples. Until then — and
// whenever adaptation is disabled — the static communicator threshold
// applies unchanged.
//
// Threading: every line has exactly one writer (eager_send and rdzv are
// written by the sending rank's thread, eager_unpack by the receiving
// rank's), so the regression moments need no synchronization. The published
// fit bit-packs float(a) and float(b) into ONE atomic u64 so concurrent
// readers always see a coherent (a, b) pair from a single relaxed load.
//
// Determinism: observations are a pure function of (bytes, measured ns) and
// arrive in a per-line deterministic order on the paths the tests exercise;
// World::set_synthetic_protocol_costs replaces the clock with an analytic
// cost model so convergence tests are seed-stable and bit-identical across
// reruns.
//
// ProtoTuneCache freezes converged per-peer protocol choices per
// (communicator context, pattern signature) — first freeze wins — so
// persistent AlltoallwPlan/VecScatter plans built from the same pattern
// make bit-identical protocol choices across reruns of a long-running
// service.
//
// Escape hatches: the NNCOMM_ADAPTIVE CMake option compiles the whole
// mechanism out (kAdaptiveCompiled == false); the NNCOMM_ADAPTIVE env var
// ("OFF"/"0"/"FALSE", case-insensitive) pins the legacy static threshold at
// runtime, mirroring the NNCOMM_SIMD pattern.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "datatype/datatype.hpp"
#include "datatype/plan.hpp"

namespace nncomm::rt {

/// True when the adaptive protocol machinery is compiled in (the
/// NNCOMM_ADAPTIVE CMake option; OFF defines NNCOMM_ADAPTIVE_DISABLED).
#if defined(NNCOMM_ADAPTIVE_DISABLED)
inline constexpr bool kAdaptiveCompiled = false;
#else
inline constexpr bool kAdaptiveCompiled = true;
#endif

/// Runtime escape hatch: NNCOMM_ADAPTIVE=OFF|0|FALSE pins the static
/// threshold. Parsing is split out so tests can drive the raw parser
/// without mutating the (memoized) process environment.
inline bool adaptive_env_enabled(const char* value) {
    if (value == nullptr) return true;
    auto matches = [](const char* e, const char* token) {
        for (; *e != '\0' && *token != '\0'; ++e, ++token) {
            const char c = (*e >= 'a' && *e <= 'z') ? static_cast<char>(*e - 'a' + 'A') : *e;
            if (c != *token) return false;
        }
        return *e == '\0' && *token == '\0';
    };
    return !(matches(value, "OFF") || matches(value, "0") || matches(value, "FALSE"));
}

/// Memoized read of the NNCOMM_ADAPTIVE env var (first call wins, like
/// simd.cpp's NNCOMM_SIMD cap).
inline bool adaptive_runtime_enabled() {
    static const bool enabled = adaptive_env_enabled(std::getenv("NNCOMM_ADAPTIVE"));
    return enabled;
}

/// True when the one-sided RMA machinery is eligible for plan selection
/// (the NNCOMM_RMA CMake option; OFF defines NNCOMM_RMA_DISABLED).
/// rt::Win itself always compiles — only the persistent-plan protocol
/// selection is gated, mirroring how NNCOMM_SIMD gates dispatch rather
/// than the kernels.
#if defined(NNCOMM_RMA_DISABLED)
inline constexpr bool kRmaCompiled = false;
#else
inline constexpr bool kRmaCompiled = true;
#endif

/// Runtime escape hatch: NNCOMM_RMA=OFF|0|FALSE keeps persistent plans on
/// the two-sided protocols. Same parser as the adaptive hatch.
inline bool rma_env_enabled(const char* value) { return adaptive_env_enabled(value); }

/// Memoized read of the NNCOMM_RMA env var (first call wins).
inline bool rma_runtime_enabled() {
    static const bool enabled = rma_env_enabled(std::getenv("NNCOMM_RMA"));
    return enabled;
}

/// The one predicate persistent plans consult: RMA compiled in AND not
/// disabled by the env var.
inline bool rma_selection_enabled() { return kRmaCompiled && rma_runtime_enabled(); }

/// Pack-plan family a protocol observation is attributed to. Mirrors
/// dt::PackKernel — the copy cost per byte differs by an order of magnitude
/// between a dense memcpy and an irregular gather, so the crossover does too.
enum class PackFamily : int {
    Contiguous = 0,
    Strided = 1,
    BlockedStrided = 2,
    Irregular = 3,
};

inline constexpr int kNumPackFamilies = 4;

inline PackFamily family_of(const dt::Datatype& type) {
    switch (type.plan().kernel()) {
        case dt::PackKernel::Contiguous: return PackFamily::Contiguous;
        case dt::PackKernel::Strided: return PackFamily::Strided;
        case dt::PackKernel::BlockedStrided: return PackFamily::BlockedStrided;
        case dt::PackKernel::Irregular: return PackFamily::Irregular;
    }
    return PackFamily::Irregular;
}

inline const char* pack_family_name(PackFamily f) {
    switch (f) {
        case PackFamily::Contiguous: return "Contiguous";
        case PackFamily::Strided: return "Strided";
        case PackFamily::BlockedStrided: return "BlockedStrided";
        case PackFamily::Irregular: return "Irregular";
    }
    return "?";
}

/// Analytic cost model substituted for the clock by
/// World::set_synthetic_protocol_costs: an observation of `bytes` on a line
/// contributes base_ns + per_byte_ns·bytes instead of a measured duration.
/// Makes adaptation a pure function of the message sequence (determinism
/// tests) and lets benches place the crossover exactly.
struct SyntheticProtoCosts {
    bool enabled = false;
    double eager_send_base_ns = 0.0;
    double eager_send_per_byte_ns = 0.0;
    double eager_unpack_base_ns = 0.0;
    double eager_unpack_per_byte_ns = 0.0;
    double rdzv_base_ns = 0.0;
    double rdzv_per_byte_ns = 0.0;
};

/// One exponentially weighted least-squares line (cost = a + b·x).
/// Single-writer: observe() must only ever be called from one thread; the
/// published fit is readable from any thread via a single relaxed load.
class EwLine {
public:
    /// Smoothing factor for the EW moments: each observation carries weight
    /// alpha, history decays by (1 − alpha). 1/16 forgets a regime change in
    /// a few dozen messages without chasing per-message noise.
    static constexpr double kAlpha = 1.0 / 16.0;

    struct Fit {
        float a = 0.0f;  ///< intercept, ns
        float b = 0.0f;  ///< slope, ns per byte
        std::uint32_t n = 0;
    };

    void observe(double x, double y) {
        const double keep = 1.0 - kAlpha;
        w_ = keep * w_ + kAlpha;
        mx_ = keep * mx_ + kAlpha * x;
        my_ = keep * my_ + kAlpha * y;
        mxx_ = keep * mxx_ + kAlpha * x * x;
        mxy_ = keep * mxy_ + kAlpha * x * y;
        // Bias-corrected means (w_ < 1 during warmup).
        const double ex = mx_ / w_;
        const double ey = my_ / w_;
        const double var = mxx_ / w_ - ex * ex;
        const double cov = mxy_ / w_ - ex * ey;
        float a;
        float b;
        if (var > 1e-9) {
            b = static_cast<float>(cov / var);
            a = static_cast<float>(ey - (cov / var) * ex);
        } else {
            // All observations at (effectively) one size: no slope signal.
            b = 0.0f;
            a = static_cast<float>(ey);
        }
        const std::uint64_t packed =
            (static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(a)) << 32) |
            std::bit_cast<std::uint32_t>(b);
        ab_.store(packed, std::memory_order_relaxed);
        n_.fetch_add(1, std::memory_order_relaxed);
    }

    Fit fit() const {
        const std::uint64_t packed = ab_.load(std::memory_order_relaxed);
        Fit f;
        f.a = std::bit_cast<float>(static_cast<std::uint32_t>(packed >> 32));
        f.b = std::bit_cast<float>(static_cast<std::uint32_t>(packed & 0xffffffffu));
        f.n = n_.load(std::memory_order_relaxed);
        return f;
    }

private:
    // Writer-private EW moments; only the fit is shared.
    double w_ = 0.0;
    double mx_ = 0.0;
    double my_ = 0.0;
    double mxx_ = 0.0;
    double mxy_ = 0.0;
    std::atomic<std::uint64_t> ab_{0};
    std::atomic<std::uint32_t> n_{0};
};

/// Solves the eager/rendezvous crossover from three line fits. Returns
/// `fallback` until every contributing line has `min_samples` observations;
/// a confident answer is clamped to [lo, hi].
inline std::size_t crossover_bytes(const EwLine::Fit& eager_send, const EwLine::Fit& eager_unpack,
                                   const EwLine::Fit& rdzv, std::uint32_t min_samples,
                                   std::size_t lo, std::size_t hi, std::size_t fallback) {
    if (eager_send.n < min_samples || eager_unpack.n < min_samples || rdzv.n < min_samples) {
        return fallback;
    }
    const double ae = static_cast<double>(eager_send.a) + static_cast<double>(eager_unpack.a);
    const double be = static_cast<double>(eager_send.b) + static_cast<double>(eager_unpack.b);
    const double ar = static_cast<double>(rdzv.a);
    const double br = static_cast<double>(rdzv.b);
    if (be <= br) {
        // Eager never loses per byte: rendezvous wins everywhere or nowhere.
        return (ar < ae) ? lo : hi;
    }
    const double s = (ar - ae) / (be - br);
    if (s <= static_cast<double>(lo)) return lo;
    if (s >= static_cast<double>(hi)) return hi;
    return static_cast<std::size_t>(s);
}

/// Per-world table of per-(src, dst)-pair protocol cost models. Pair slots
/// allocate lazily on first observation (under a mutex) and publish through
/// an atomic pointer, so idle pairs cost 8 bytes and hot-path reads never
/// lock.
class ProtoTable {
public:
    /// Confidence gate: a learned threshold is only trusted once each of
    /// the three lines feeding it has this many observations.
    static constexpr std::uint32_t kMinSamples = 16;
    /// Learned-threshold clamps. The floor keeps latency-bound traffic off
    /// the handshake even when a noisy fit says otherwise; the ceiling keeps
    /// one bad rendezvous sample from disabling the protocol entirely.
    static constexpr std::size_t kMinThreshold = 1024;
    static constexpr std::size_t kMaxThreshold = 8 * 1024 * 1024;

    explicit ProtoTable(int nranks) : nranks_(nranks), slots_(pair_count(nranks)) {
        for (auto& s : slots_) s.store(nullptr, std::memory_order_relaxed);
    }
    ~ProtoTable() {
        for (auto& s : slots_) delete s.load(std::memory_order_relaxed);
    }
    ProtoTable(const ProtoTable&) = delete;
    ProtoTable& operator=(const ProtoTable&) = delete;

    // Observers tolerate out-of-range ranks (a send to an invalid
    // destination is rejected by the runtime *after* the protocol layer
    // sees it — the table must not fault first).
    void observe_eager_send(int src, int dst, PackFamily f, double bytes, double ns) {
        if (!in_range(src) || !in_range(dst)) return;
        pair(src, dst).fam[static_cast<int>(f)].eager_send.observe(bytes, ns);
    }
    void observe_eager_unpack(int src, int dst, PackFamily f, double bytes, double ns) {
        if (!in_range(src) || !in_range(dst)) return;
        pair(src, dst).fam[static_cast<int>(f)].eager_unpack.observe(bytes, ns);
    }
    void observe_rdzv(int src, int dst, PackFamily f, double bytes, double ns) {
        if (!in_range(src) || !in_range(dst)) return;
        pair(src, dst).fam[static_cast<int>(f)].rdzv.observe(bytes, ns);
    }

    struct LineFits {
        EwLine::Fit eager_send;
        EwLine::Fit eager_unpack;
        EwLine::Fit rdzv;
    };

    LineFits fits(int src, int dst, PackFamily f) const {
        LineFits out;
        if (const PairState* p = pair_if(src, dst)) {
            const FamilyLines& lines = p->fam[static_cast<int>(f)];
            out.eager_send = lines.eager_send.fit();
            out.eager_unpack = lines.eager_unpack.fit();
            out.rdzv = lines.rdzv.fit();
        }
        return out;
    }

    /// The learned crossover for (src, dst, family), or `fallback` (the
    /// communicator's static threshold) while under-sampled.
    std::size_t learned_threshold(int src, int dst, PackFamily f, std::size_t fallback) const {
        const PairState* p = pair_if(src, dst);
        if (p == nullptr) return fallback;
        const FamilyLines& lines = p->fam[static_cast<int>(f)];
        return crossover_bytes(lines.eager_send.fit(), lines.eager_unpack.fit(),
                               lines.rdzv.fit(), kMinSamples, kMinThreshold, kMaxThreshold,
                               fallback);
    }

    /// Total observe() calls across all pairs of a (src, dst) slot — tests
    /// use this to assert two runs fed the model identically.
    std::uint64_t pair_samples(int src, int dst) const {
        const PairState* p = pair_if(src, dst);
        if (p == nullptr) return 0;
        std::uint64_t total = 0;
        for (const FamilyLines& lines : p->fam) {
            total += lines.eager_send.fit().n;
            total += lines.eager_unpack.fit().n;
            total += lines.rdzv.fit().n;
        }
        return total;
    }

private:
    struct FamilyLines {
        EwLine eager_send;
        EwLine eager_unpack;
        EwLine rdzv;
    };
    struct PairState {
        FamilyLines fam[kNumPackFamilies];
    };

    static std::size_t pair_count(int nranks) {
        return static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks);
    }
    std::size_t slot(int src, int dst) const {
        return static_cast<std::size_t>(src) * static_cast<std::size_t>(nranks_) +
               static_cast<std::size_t>(dst);
    }

    PairState& pair(int src, int dst) {
        std::atomic<PairState*>& s = slots_[slot(src, dst)];
        PairState* p = s.load(std::memory_order_acquire);
        if (p == nullptr) {
            std::lock_guard<std::mutex> lock(alloc_mu_);
            p = s.load(std::memory_order_relaxed);
            if (p == nullptr) {
                p = new PairState();
                s.store(p, std::memory_order_release);
            }
        }
        return *p;
    }
    const PairState* pair_if(int src, int dst) const {
        if (!in_range(src) || !in_range(dst)) return nullptr;
        return slots_[slot(src, dst)].load(std::memory_order_acquire);
    }
    bool in_range(int r) const { return r >= 0 && r < nranks_; }

    int nranks_;
    std::vector<std::atomic<PairState*>> slots_;
    std::mutex alloc_mu_;
};

/// Order-insensitive-free (sequential) 64-bit hash mix for pattern
/// signatures. Seed with any nonzero constant and fold fields in a fixed
/// order on every rank.
inline std::uint64_t proto_sig_mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h * 0x2545f4914f6cdd1dull;
}

/// Process-wide cache of frozen per-pattern protocol choices, keyed by a
/// hash of (communicator context, rank, per-peer volumes, datatype plan
/// signatures, thresholds). First freeze wins: a plan built later for the
/// same pattern adopts the earlier plan's choices verbatim, so reruns are
/// bit-identical even if the cost model has drifted in between. Mirrors
/// dt::PlanCache (process-wide singleton, mutex-guarded, reset() for tests).
class ProtoTuneCache {
public:
    static ProtoTuneCache& instance() {
        static ProtoTuneCache cache;
        return cache;
    }

    /// One frozen pattern: positional per-send-peer protocol choices
    /// (1 = rendezvous) and the learned per-peer thresholds they were
    /// derived from (for reporting/tests).
    struct Entry {
        std::vector<std::uint8_t> send_rdzv;
        std::vector<std::size_t> thresholds;
    };

    std::shared_ptr<const Entry> lookup(std::uint64_t key) {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it == map_.end()) return nullptr;
        ++stats_.hits;
        return it->second;
    }

    /// Inserts `e` for `key` unless an entry already exists; returns the
    /// canonical (first-frozen) entry either way.
    std::shared_ptr<const Entry> freeze(std::uint64_t key, Entry e) {
        std::lock_guard<std::mutex> lock(mu_);
        auto [it, inserted] = map_.try_emplace(key);
        if (inserted) {
            it->second = std::make_shared<const Entry>(std::move(e));
            ++stats_.freezes;
        }
        return it->second;
    }

    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t freezes = 0;
        std::size_t entries = 0;
    };
    Stats stats() const {
        std::lock_guard<std::mutex> lock(mu_);
        Stats s = stats_;
        s.entries = map_.size();
        return s;
    }

    /// Drops all entries and zeroes the statistics (tests).
    void reset() {
        std::lock_guard<std::mutex> lock(mu_);
        map_.clear();
        stats_ = Stats{};
    }

private:
    ProtoTuneCache() = default;
    mutable std::mutex mu_;
    std::unordered_map<std::uint64_t, std::shared_ptr<const Entry>> map_;
    Stats stats_;
};

}  // namespace nncomm::rt

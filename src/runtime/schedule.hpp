// Schedule perturbation and fault injection for the delivery engine.
//
// With the default policy (`SchedulePolicy::none()`) every send is packed
// and pushed onto the destination mailbox's per-source SPSC lane inline,
// exactly as fast as the hardware allows — the production path. With a
// perturbation policy the runtime becomes *truly* nonblocking: isend/
// isend_i enqueue their packed envelope on a per-destination delivery
// queue (each with its own RNG derived as
// `seed ^ (0x9E3779B97F4A7C15 * (dest + 1))`, so decisions for one
// destination are reproducible regardless of how traffic to others
// interleaves) and a delivery engine, driven from wait/waitall/probe/
// iprobe, drains it under the seeded schedule. Drain ownership is
// claim-based — a progress pass atomically claims a destination's queue
// and skips queues other threads own, so pollers divide the work instead
// of serializing on a global progress lock. Policy-routed envelopes enter
// the mailbox through the lanes' mutex-guarded overflow lists (the
// reorder/stall machinery breaks the rings' single-producer invariant;
// see the transport notes in runtime/comm.hpp). The schedule
//
//   - defers individual envelopes for a bounded number of progress passes,
//     interleaving deliveries across distinct (source, dest) pairs while
//     preserving per-pair FIFO (the MPI ordering guarantee),
//   - injects faults: bounded sender stalls, delayed waiter wakeups
//     (suppressed notifications that self-heal on the waiters' timed
//     re-polls), and bounded envelope reordering *within* a pair — the
//     one perturbation that violates per-pair FIFO. Reordering is applied
//     only to internal-context (collective) traffic, which is required to
//     be epoch-tagged (see rt::epoch_tag) and therefore immune; user-facing
//     point-to-point FIFO is never broken.
//
// Every schedule decision comes from one seeded xoshiro RNG (core/rng.hpp),
// so a (seed, level) pair names a reproducible family of adversarial
// schedules. The netsim latency model can be folded in (sim::make_schedule)
// to defer envelopes proportionally to their modeled transit time.
#pragma once

#include <cstdint>

namespace nncomm::rt {

struct SchedulePolicy {
    /// Off => eager inline delivery, bit-identical to the unperturbed
    /// runtime. All other knobs are ignored when this is false.
    bool enabled = false;
    std::uint64_t seed = 1;

    // -- schedule perturbation ------------------------------------------------
    /// Probability an envelope is assigned a defer budget at enqueue.
    double defer_prob = 0.0;
    /// Maximum progress passes a deferred envelope is held back.
    int max_defer = 0;

    // -- fault injection ------------------------------------------------------
    /// Probability an *internal-context* envelope is reordered ahead of
    /// queued envelopes of the same (source, dest) pair (FIFO violation;
    /// collective traffic must be epoch-tagged to survive this).
    double reorder_prob = 0.0;
    /// Maximum same-pair envelopes a reordered envelope may overtake.
    int max_reorder = 0;
    /// Probability the sending rank stalls (yield loop) after enqueue.
    double stall_prob = 0.0;
    /// Bounded stall length in sched_yield iterations.
    int max_stall_spins = 0;
    /// Probability a delivery's waiter notification is suppressed; blocked
    /// waiters recover at their next timed re-poll (a delayed wakeup).
    double wakeup_delay_prob = 0.0;

    // -- optional latency model (netsim-style) --------------------------------
    /// Adds size-dependent defer passes: one pass per defer_quantum_us of
    /// modeled transit time latency_us + bytes * us_per_byte (capped).
    bool use_latency_model = false;
    double latency_us = 0.0;
    double us_per_byte = 0.0;
    double defer_quantum_us = 1.0;

    /// The production schedule: eager inline delivery, no perturbation.
    static SchedulePolicy none() { return SchedulePolicy{}; }

    /// A canonical perturbation ladder. Level 1 reorders lightly with no
    /// faults beyond it; level 2 adds stalls and delayed wakeups; level 3
    /// is the adversarial setting the stress suite leans on.
    static SchedulePolicy perturb(std::uint64_t seed, int level = 2) {
        SchedulePolicy p;
        p.enabled = true;
        p.seed = seed;
        const int l = level <= 1 ? 1 : (level >= 3 ? 3 : 2);
        if (l == 1) {
            p.defer_prob = 0.25;
            p.max_defer = 3;
            p.reorder_prob = 0.10;
            p.max_reorder = 2;
        } else if (l == 2) {
            p.defer_prob = 0.50;
            p.max_defer = 8;
            p.reorder_prob = 0.25;
            p.max_reorder = 4;
            p.stall_prob = 0.05;
            p.max_stall_spins = 64;
            p.wakeup_delay_prob = 0.05;
        } else {
            p.defer_prob = 0.75;
            p.max_defer = 16;
            p.reorder_prob = 0.50;
            p.max_reorder = 8;
            p.stall_prob = 0.15;
            p.max_stall_spins = 192;
            p.wakeup_delay_prob = 0.15;
        }
        return p;
    }
};

}  // namespace nncomm::rt

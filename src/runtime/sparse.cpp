#include "runtime/sparse.hpp"

#include <algorithm>
#include <thread>

namespace nncomm::rt {

namespace {
// Tag offsets inside one epoch lane. The persistent plans own 0x500-0x5ff;
// the sparse-exchange family takes 0x600-0x6ff: payload and ack lanes for
// the exchange itself, a block of per-round lanes for the consensus
// barrier (<= 32 rounds for any 32-bit rank count, well below the 0x1000
// epoch stride).
constexpr int kTagSparsePayload = kInternalTagBase + 0x600;
constexpr int kTagSparseAck = kInternalTagBase + 0x601;
constexpr int kTagIBarrier = kInternalTagBase + 0x610;
}  // namespace

// ---------------------------------------------------------------------------
// IBarrier

IBarrier::IBarrier(Comm& comm)
    : comm_(&comm), lane_(epoch_tag(kTagIBarrier, comm.next_collective_epoch())) {
    if (comm.size() == 1) {
        done_ = true;
        return;
    }
    fire_round();
}

void IBarrier::fire_round() {
    const int n = comm_->size();
    const int r = comm_->rank();
    const int to = (r + step_) % n;
    const int from = (r - step_ % n + n) % n;
    const int tag = lane_ + round_;
    // Post the receive before the send so a fast partner's token always
    // finds it; the zero-byte send is buffered eager and never blocks.
    recv_ = comm_->irecv_i(nullptr, 0, dt::Datatype::byte(), from, tag);
    comm_->send_i(nullptr, 0, dt::Datatype::byte(), to, tag, Protocol::Eager);
}

bool IBarrier::test() {
    NNCOMM_CHECK_MSG(comm_ != nullptr, "IBarrier: test before start");
    while (!done_) {
        if (!comm_->test(recv_)) return false;
        step_ <<= 1;
        ++round_;
        if (step_ >= comm_->size()) {
            done_ = true;
            break;
        }
        fire_round();
    }
    return true;
}

void IBarrier::wait() {
    NNCOMM_CHECK_MSG(comm_ != nullptr, "IBarrier: wait before start");
    while (!test()) {
        // test() left recv_ pending: block on the runtime (which drives
        // delivery) instead of spinning, then advance this round by hand —
        // wait() retires the request, so test() must not poll it again.
        comm_->wait(recv_);
        step_ <<= 1;
        ++round_;
        if (step_ >= comm_->size()) {
            done_ = true;
            break;
        }
        fire_round();
    }
}

// ---------------------------------------------------------------------------
// sparse_exchange

std::vector<SparseRecv> sparse_exchange(Comm& comm, std::span<const SparseSend> sends) {
    const int n = comm.size();
    const int rank = comm.rank();
    // One epoch for the payload/ack lanes; the IBarrier below draws its
    // own. Both draws happen exactly once per rank per call, so the
    // per-communicator epoch sequences stay aligned across ranks even
    // though ranks reach the barrier at different times.
    const int lane = comm.next_collective_epoch();
    const int payload_tag = epoch_tag(kTagSparsePayload, lane);
    const int ack_tag = epoch_tag(kTagSparseAck, lane);
    const dt::Datatype byte = dt::Datatype::byte();

    StatCounters local;
    std::vector<SparseRecv> out;

    // Validate destinations and fire the remote payload sends. Eager is
    // forced: rendezvous needs a posted receive, and the whole point of
    // the exchange is that receivers do not yet know their sources.
    std::vector<Request> sreqs;
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    std::size_t acks_needed = 0;
    for (const SparseSend& s : sends) {
        NNCOMM_CHECK_MSG(s.dest >= 0 && s.dest < n, "sparse_exchange: destination out of range");
        NNCOMM_CHECK_MSG(!seen[static_cast<std::size_t>(s.dest)],
                         "sparse_exchange: duplicate destination");
        seen[static_cast<std::size_t>(s.dest)] = 1;
        if (s.dest == rank) {
            // Self-delivery: a local copy, no wire traffic, no ack.
            SparseRecv r;
            r.source = rank;
            r.bytes.assign(s.bytes.begin(), s.bytes.end());
            out.push_back(std::move(r));
            continue;
        }
        sreqs.push_back(
            comm.isend_i(s.bytes.data(), s.bytes.size(), byte, s.dest, payload_tag,
                         Protocol::Eager));
        ++acks_needed;
        ++local.rt_sparse_msgs_sent;
    }

    // Consensus loop: drain payloads (answering each with an ack), count
    // acks for our own sends, and once all are in, run the nonblocking
    // barrier while continuing to drain. A rank with no sends enters the
    // barrier on its first pass.
    std::size_t acks_got = 0;
    IBarrier barrier;
    bool done = false;
    while (!done) {
        bool progressed = false;
        ++local.rt_sparse_probe_polls;

        for (;;) {
            ProbeStatus st = comm.iprobe_i(kAnySource, payload_tag);
            if (!st.found) break;
            SparseRecv r;
            r.source = st.source;
            r.bytes.resize(st.bytes);
            comm.recv_i(r.bytes.empty() ? nullptr : r.bytes.data(), st.bytes, byte, st.source,
                        payload_tag);
            out.push_back(std::move(r));
            comm.send_i(nullptr, 0, byte, st.source, ack_tag, Protocol::Eager);
            ++local.rt_sparse_msgs_recvd;
            progressed = true;
        }

        while (acks_got < acks_needed) {
            ProbeStatus st = comm.iprobe_i(kAnySource, ack_tag);
            if (!st.found) break;
            comm.recv_i(nullptr, 0, byte, st.source, ack_tag);
            ++acks_got;
            progressed = true;
        }

        if (!barrier.started()) {
            if (acks_got == acks_needed) {
                // Every payload we injected has been consumed remotely, so
                // the send requests are already deliverable: this waitall
                // only retires local bookkeeping and cannot block on a peer.
                comm.waitall(sreqs);
                barrier = IBarrier(comm);
                progressed = true;
            }
        } else if (barrier.test()) {
            done = true;
        }

        if (!progressed && !done) std::this_thread::yield();
    }

    // Deterministic result order regardless of arrival interleaving.
    std::sort(out.begin(), out.end(),
              [](const SparseRecv& a, const SparseRecv& b) { return a.source < b.source; });
    ++local.rt_sparse_exchanges;
    comm.merge_stats(local, PhaseTimers{});
    return out;
}

}  // namespace nncomm::rt

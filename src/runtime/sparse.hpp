// NBX-style sparse dynamic data exchange (nonblocking consensus).
//
// The metadata problem: during setup, every rank knows who it must SEND to
// (its sparse out-neighborhood), but not who sends to IT. The classic
// solution — allgather/alltoall of dense per-rank count vectors — moves
// O(p) metadata per rank and O(p^2) total, which is exactly the
// nonscalable setup phase the paper's VecScatter/DMDA construction and any
// distributed matrix assembly hit at scale.
//
// rt::sparse_exchange solves "who sends to me, and what?" with
// communication proportional to the actual neighborhood plus one O(log p)
// consensus:
//
//   1. Each rank fires nonblocking eager sends of its payloads to its
//      out-neighbors and enters a probe loop.
//   2. Any arriving payload (wildcard-source probe on the exchange's tag
//      lane) is received and immediately answered with a zero-byte ack —
//      the explicit-acknowledgement NBX variant, standing in for MPI_Issend
//      completion semantics (our buffered-eager sends complete locally, so
//      an ack is what proves remote receipt).
//   3. Once a rank holds acks for ALL of its sends, every payload it
//      injected is known to be consumed; it starts the nonblocking
//      dissemination barrier (IBarrier) and keeps draining payloads/acks.
//   4. When the barrier completes, every rank's sends have been acked, so
//      no payload can still be in flight anywhere: the exchange is over.
//
// Tags are epoch-folded on the internal collective context, so
// back-to-back exchanges (a rank can exit the consensus while a peer is
// still finishing its last barrier round) can never alias. The primitive
// is deadlock-free for empty neighborhoods: a rank with zero sends and
// zero receives enters the barrier immediately and only handshakes the
// O(log p) consensus.
//
// Consumers: VecScatter::gather_sparse (sparse-neighborhood scatter-plan
// discovery), off-process MatAIJ assembly (remote-triplet flush), DMDA's
// sparse ghost path — and the netsim mirror
// (ProgramBuilder::add_sparse_exchange) that lets the setup-cost bench
// sweep 10k+ simulated ranks.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/comm.hpp"

namespace nncomm::rt {

/// Nonblocking dissemination barrier. Construction draws one collective
/// epoch (so construction order must be collective, like every collective
/// here) and fires round 0; drive with test() until it returns true.
/// Unlike Comm::barrier, a rank can interleave arbitrary work — e.g. the
/// NBX payload drain — between progress passes.
class IBarrier {
public:
    IBarrier() = default;
    explicit IBarrier(Comm& comm);

    bool started() const { return comm_ != nullptr; }
    bool done() const { return done_; }
    /// One nonblocking progress pass; advances as many rounds as complete
    /// back-to-back. True once all ceil(log2 p) rounds have retired.
    bool test();
    /// Drives test() to completion (blocking).
    void wait();

private:
    void fire_round();

    Comm* comm_ = nullptr;
    int lane_ = 0;   ///< epoch-folded tag base; round r uses lane_ + r
    int step_ = 1;   ///< 2^round
    int round_ = 0;
    bool done_ = false;
    Request recv_;
};

/// One outgoing message of a sparse exchange. `bytes` must stay valid
/// until sparse_exchange returns (the eager send stages a copy, but the
/// call is collective and blocking anyway). Destinations must be unique;
/// dest == rank is allowed and short-circuits to a local copy.
struct SparseSend {
    int dest = -1;
    std::span<const std::byte> bytes;
};

/// One received message: everything some rank addressed to this one.
struct SparseRecv {
    int source = -1;
    std::vector<std::byte> bytes;
};

/// Collective. Returns the messages addressed to this rank, sorted by
/// source rank ascending (deterministic regardless of arrival order).
/// Zero-byte payloads are legal on both sides.
std::vector<SparseRecv> sparse_exchange(Comm& comm, std::span<const SparseSend> sends);

/// Typed convenience wrapper: exchanges vectors of a trivially copyable T
/// keyed by destination rank; returns (source, values) pairs sorted by
/// source.
template <typename T>
std::vector<std::pair<int, std::vector<T>>> sparse_exchange_t(
    Comm& comm, std::span<const std::pair<int, std::vector<T>>> sends) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<SparseSend> raw;
    raw.reserve(sends.size());
    for (const auto& [dest, vec] : sends) {
        raw.push_back({dest, std::as_bytes(std::span<const T>(vec))});
    }
    std::vector<SparseRecv> got = sparse_exchange(comm, raw);
    std::vector<std::pair<int, std::vector<T>>> out;
    out.reserve(got.size());
    for (SparseRecv& m : got) {
        NNCOMM_CHECK_MSG(m.bytes.size() % sizeof(T) == 0,
                         "sparse_exchange_t: payload size not a multiple of the element size");
        std::vector<T> v(m.bytes.size() / sizeof(T));
        if (!v.empty()) std::memcpy(v.data(), m.bytes.data(), m.bytes.size());
        out.emplace_back(m.source, std::move(v));
    }
    return out;
}

}  // namespace nncomm::rt

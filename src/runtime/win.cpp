#include "runtime/win.hpp"

#include <atomic>
#include <cstring>

#include "core/error.hpp"

namespace nncomm::rt {

namespace detail {

/// Shared control block of one window: every rank's exposed region plus the
/// epoch counters. All counters are monotonic — an epoch transition is
/// "counter reached k", never a reset — so a waiter can only ever be behind,
/// and the release increment / acquire load pair publishes every put byte
/// stored before the transition.
struct WinShared {
    struct Region {
        std::uint8_t* base = nullptr;
        std::size_t bytes = 0;
    };
    int nranks = 0;
    std::vector<Region> regions;
    /// fence_epoch[r]: fences rank r has entered.
    std::unique_ptr<std::atomic<std::uint64_t>[]> fence_epoch;
    /// posts[o * nranks + t]: exposure epochs rank t has posted to origin o.
    std::unique_ptr<std::atomic<std::uint64_t>[]> posts;
    /// completes[t * nranks + o]: access epochs origin o has completed at
    /// target t.
    std::unique_ptr<std::atomic<std::uint64_t>[]> completes;

    static std::unique_ptr<std::atomic<std::uint64_t>[]> zeroed(std::size_t n) {
        auto a = std::make_unique<std::atomic<std::uint64_t>[]>(n);
        for (std::size_t i = 0; i < n; ++i) a[i].store(0, std::memory_order_relaxed);
        return a;
    }
};

namespace {

/// Window-creation tag lane, disjoint from the persistent-plan (+0x500)
/// and sparse-exchange bases below kEpochTagStride.
constexpr int kWinTagBase = kInternalTagBase + 0x600;

struct RegionMsg {
    std::uint64_t base = 0;
    std::uint64_t bytes = 0;
};

}  // namespace

}  // namespace detail

Win Win::create(Comm& comm, void* base, std::size_t bytes) {
    NNCOMM_CHECK_MSG(base != nullptr || bytes == 0, "window region of null base");
    const int n = comm.size();
    const int me = comm.rank();
    const int tag = epoch_tag(detail::kWinTagBase, comm.next_collective_epoch());
    const dt::Datatype byte = dt::Datatype::byte();

    // Rank 0 gathers every region, builds the control block once, then
    // ships each peer a heap clone of the shared_ptr — 8 bytes over the
    // internal context; the threads share one address space.
    std::shared_ptr<detail::WinShared> shared;
    if (me == 0) {
        shared = std::make_shared<detail::WinShared>();
        shared->nranks = n;
        shared->regions.resize(static_cast<std::size_t>(n));
        shared->regions[0] = {static_cast<std::uint8_t*>(base), bytes};
        for (int r = 1; r < n; ++r) {
            detail::RegionMsg msg;
            comm.recv_i(&msg, sizeof msg, byte, r, tag);
            shared->regions[static_cast<std::size_t>(r)] = {
                reinterpret_cast<std::uint8_t*>(msg.base),
                static_cast<std::size_t>(msg.bytes)};
        }
        const std::size_t nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
        shared->fence_epoch = detail::WinShared::zeroed(static_cast<std::size_t>(n));
        shared->posts = detail::WinShared::zeroed(nn);
        shared->completes = detail::WinShared::zeroed(nn);
        for (int r = 1; r < n; ++r) {
            auto* clone = new std::shared_ptr<detail::WinShared>(shared);
            const std::uint64_t addr = reinterpret_cast<std::uint64_t>(clone);
            comm.send_i(&addr, sizeof addr, byte, r, tag, Protocol::Eager);
        }
    } else {
        detail::RegionMsg msg{reinterpret_cast<std::uint64_t>(base),
                              static_cast<std::uint64_t>(bytes)};
        comm.send_i(&msg, sizeof msg, byte, 0, tag, Protocol::Eager);
        std::uint64_t addr = 0;
        comm.recv_i(&addr, sizeof addr, byte, 0, tag);
        auto* clone = reinterpret_cast<std::shared_ptr<detail::WinShared>*>(addr);
        shared = *clone;
        delete clone;
    }

    Win w(std::move(shared), &comm, me);
    w.consumed_posts_.assign(static_cast<std::size_t>(n), 0);
    w.consumed_completes_.assign(static_cast<std::size_t>(n), 0);
    return w;
}

int Win::rank() const {
    NNCOMM_CHECK_MSG(valid(), "rank() on null window");
    return rank_;
}

int Win::size() const {
    NNCOMM_CHECK_MSG(valid(), "size() on null window");
    return shared_->nranks;
}

std::size_t Win::region_bytes(int target) const {
    NNCOMM_CHECK_MSG(valid(), "region_bytes() on null window");
    NNCOMM_CHECK_MSG(target >= 0 && target < shared_->nranks, "window target out of range");
    return shared_->regions[static_cast<std::size_t>(target)].bytes;
}

void* Win::translate(int target, std::size_t offset, std::size_t bytes) {
    NNCOMM_CHECK_MSG(valid(), "translate() on null window");
    NNCOMM_CHECK_MSG(target >= 0 && target < shared_->nranks, "window target out of range");
    const detail::WinShared::Region& reg = shared_->regions[static_cast<std::size_t>(target)];
    NNCOMM_CHECK_MSG(offset <= reg.bytes && bytes <= reg.bytes - offset,
                     "window access outside the target region");
    return reg.base + offset;
}

void Win::record_put(std::size_t bytes) {
    ++comm_->counters().rt_rma_puts;
    comm_->counters().rt_rma_put_bytes += bytes;
}

void Win::put(const void* src, std::size_t bytes, int target, std::size_t target_offset) {
    void* dst = translate(target, target_offset, bytes);
    if (bytes > 0) std::memcpy(dst, src, bytes);
    record_put(bytes);
}

void Win::get(void* dst, std::size_t bytes, int target, std::size_t target_offset) {
    const void* src = translate(target, target_offset, bytes);
    if (bytes > 0) std::memcpy(dst, src, bytes);
    ++comm_->counters().rt_rma_gets;
    comm_->counters().rt_rma_get_bytes += bytes;
}

void Win::flush(int target) {
    NNCOMM_CHECK_MSG(valid(), "flush() on null window");
    NNCOMM_CHECK_MSG(target >= 0 && target < shared_->nranks, "window target out of range");
    // Puts are synchronous copies on this runtime; completing them is a
    // matter of publishing the stores.
    std::atomic_thread_fence(std::memory_order_release);
    ++comm_->counters().rt_rma_flushes;
}

void Win::flush_all() {
    NNCOMM_CHECK_MSG(valid(), "flush_all() on null window");
    std::atomic_thread_fence(std::memory_order_release);
    ++comm_->counters().rt_rma_flushes;
}

void Win::fence_begin() {
    NNCOMM_CHECK_MSG(valid(), "fence_begin() on null window");
    NNCOMM_CHECK_MSG(!fence_open_, "fence_begin() with a fence already open");
    // The release increment publishes every put byte this rank stored
    // before the fence; the pulses wake parked peers so no waiter sits out
    // a full timed slice in the common case.
    fence_target_ =
        shared_->fence_epoch[static_cast<std::size_t>(rank_)].fetch_add(
            1, std::memory_order_release) + 1;
    fence_open_ = true;
    for (int r = 0; r < shared_->nranks; ++r) {
        if (r != rank_) comm_->pulse_rank(r);
    }
}

bool Win::fence_test() {
    NNCOMM_CHECK_MSG(valid(), "fence_test() on null window");
    if (!fence_open_) return true;
    for (int r = 0; r < shared_->nranks; ++r) {
        if (shared_->fence_epoch[static_cast<std::size_t>(r)].load(std::memory_order_acquire) <
            fence_target_) {
            return false;
        }
    }
    fence_open_ = false;
    ++comm_->counters().rt_rma_fences;
    return true;
}

void Win::fence() {
    fence_begin();
    if (!fence_test()) {
        comm_->wait_until([this] { return fence_test(); });
    }
}

void Win::post(const std::vector<int>& origins) {
    NNCOMM_CHECK_MSG(valid(), "post() on null window");
    NNCOMM_CHECK_MSG(!exposure_open_, "post() with an exposure epoch already open");
    const int n = shared_->nranks;
    for (int o : origins) {
        NNCOMM_CHECK_MSG(o >= 0 && o < n, "post() origin out of range");
        shared_->posts[static_cast<std::size_t>(o) * static_cast<std::size_t>(n) +
                       static_cast<std::size_t>(rank_)]
            .fetch_add(1, std::memory_order_release);
        comm_->pulse_rank(o);
    }
    post_group_ = origins;
    exposure_open_ = true;
}

void Win::start(const std::vector<int>& targets) {
    NNCOMM_CHECK_MSG(valid(), "start() on null window");
    NNCOMM_CHECK_MSG(!access_open_, "start() with an access epoch already open");
    const int n = shared_->nranks;
    for (int t : targets) {
        NNCOMM_CHECK_MSG(t >= 0 && t < n, "start() target out of range");
        const std::uint64_t want = consumed_posts_[static_cast<std::size_t>(t)] + 1;
        const std::atomic<std::uint64_t>& posted =
            shared_->posts[static_cast<std::size_t>(rank_) * static_cast<std::size_t>(n) +
                           static_cast<std::size_t>(t)];
        comm_->wait_until(
            [&posted, want] { return posted.load(std::memory_order_acquire) >= want; });
        consumed_posts_[static_cast<std::size_t>(t)] = want;
    }
    start_group_ = targets;
    access_open_ = true;
}

void Win::complete() {
    NNCOMM_CHECK_MSG(valid(), "complete() on null window");
    NNCOMM_CHECK_MSG(access_open_, "complete() without a started access epoch");
    const int n = shared_->nranks;
    for (int t : start_group_) {
        shared_->completes[static_cast<std::size_t>(t) * static_cast<std::size_t>(n) +
                           static_cast<std::size_t>(rank_)]
            .fetch_add(1, std::memory_order_release);
        comm_->pulse_rank(t);
    }
    start_group_.clear();
    access_open_ = false;
    ++comm_->counters().rt_rma_pscw_epochs;
}

void Win::wait() {
    NNCOMM_CHECK_MSG(valid(), "wait() on null window");
    NNCOMM_CHECK_MSG(exposure_open_, "wait() without a posted exposure epoch");
    const int n = shared_->nranks;
    for (int o : post_group_) {
        const std::uint64_t want = consumed_completes_[static_cast<std::size_t>(o)] + 1;
        const std::atomic<std::uint64_t>& done =
            shared_->completes[static_cast<std::size_t>(rank_) * static_cast<std::size_t>(n) +
                               static_cast<std::size_t>(o)];
        comm_->wait_until(
            [&done, want] { return done.load(std::memory_order_acquire) >= want; });
        consumed_completes_[static_cast<std::size_t>(o)] = want;
    }
    post_group_.clear();
    exposure_open_ = false;
}

}  // namespace nncomm::rt

// One-sided RMA windows over the threaded runtime.
//
// A Win exposes every rank's local buffer for direct remote access: a put
// writes straight into the target's memory, a get reads straight out of it,
// and no envelope, matching, or clear-to-send traffic ever moves. On this
// shared-address-space runtime the data transfer itself is a single memcpy
// (or, for the persistent plans, a fused SIMD pack directly into the target
// region via translate()); what the window machinery provides is the
// *synchronization*: epochs that tell the target when remotely written data
// is complete and may be read.
//
// Completion rides the seq-counter pulse infrastructure (comm.cpp), not
// mailbox messages: an epoch transition stores its counter (release), then
// Comm::pulse_rank bumps the waiter's mailbox pulse; the waiting rank parks
// in the same spin / yield / registered-timed-sleep discipline as a message
// waiter (Comm::wait_until), so a suppressed or lost notify self-heals on
// the timed slice. Ordering versus the SPSC lanes is a non-issue by
// construction: window payloads never touch the lanes, and the epoch
// counters carry release/acquire edges that publish every plain store (the
// put bytes) made before the transition.
//
// Two epoch flavors, mirroring MPI-3 active-target synchronization:
//  - fence(): collective over the communicator; closes the current access
//    epoch AND the current exposure epoch on every rank. After fence()
//    returns, every put issued by any rank before its fence is visible to
//    its target.
//  - pscw (start/complete/post/wait): pairwise. A target post()s exposure
//    to a set of origins; each origin start()s access to its targets (waits
//    for the matching posts), puts, then complete()s (signals the targets);
//    the target's wait() blocks until every posted origin completed.
// flush(target)/flush_all() complete outstanding puts mid-epoch: on this
// runtime puts are synchronous copies, so a flush is a release fence plus
// accounting — documented here so the cost model stays honest.
//
// Win is per-rank and value-semantic over a shared control block, like
// Comm over WorldState. Not thread-safe; each rank thread owns its handle.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/comm.hpp"

namespace nncomm::rt {

namespace detail {
struct WinShared;
}  // namespace detail

class Win {
public:
    Win() = default;
    bool valid() const { return shared_ != nullptr; }

    /// Collective over `comm`: every rank contributes a local region
    /// (`base`, `bytes`); any rank may pass (nullptr, 0) to expose nothing.
    /// The region must outlive the Win. Returns this rank's handle.
    static Win create(Comm& comm, void* base, std::size_t bytes);

    int rank() const;
    int size() const;
    /// Size in bytes of `target`'s exposed region.
    std::size_t region_bytes(int target) const;

    /// Bounds-checked pointer to `bytes` of `target`'s region starting at
    /// `offset`. This is the fused pack+put entry: a persistent plan runs
    /// its frozen SIMD pack kernels directly against this pointer, then
    /// calls record_put() so the transfer is accounted. Raw access carries
    /// the window's synchronization contract: write between your epoch
    /// open and close, never outside.
    void* translate(int target, std::size_t offset, std::size_t bytes);

    /// Contiguous one-sided transfers (memcpy + accounting).
    void put(const void* src, std::size_t bytes, int target, std::size_t target_offset);
    void get(void* dst, std::size_t bytes, int target, std::size_t target_offset);
    /// Accounts a transfer performed through translate() as one put.
    void record_put(std::size_t bytes);

    /// Collective epoch close (see header comment). Nonblocking half-pair
    /// for schedule executors: fence_begin() announces arrival and returns;
    /// fence_test() polls whether every rank has arrived. fence() ==
    /// fence_begin() + block on fence_test().
    void fence();
    void fence_begin();
    bool fence_test();

    /// Completes this rank's outstanding puts to `target` (all targets for
    /// flush_all) without closing the epoch: a release fence publishes the
    /// bytes; the target may read them after it observes any later
    /// synchronization from this rank.
    void flush(int target);
    void flush_all();

    // -- pscw ----------------------------------------------------------------
    /// Exposure epoch: allow `origins` to write this rank's region.
    void post(const std::vector<int>& origins);
    /// Blocks until every origin of the current exposure epoch completed.
    void wait();
    /// Access epoch: blocks until every rank in `targets` posted to us.
    void start(const std::vector<int>& targets);
    /// Closes the access epoch: signals every started target.
    void complete();

private:
    Win(std::shared_ptr<detail::WinShared> shared, Comm* comm, int rank)
        : shared_(std::move(shared)), comm_(comm), rank_(rank) {}

    std::shared_ptr<detail::WinShared> shared_;
    Comm* comm_ = nullptr;
    int rank_ = -1;
    std::vector<int> start_group_;  ///< targets of the open access epoch
    std::vector<int> post_group_;   ///< origins of the open exposure epoch
    std::vector<std::uint64_t> consumed_posts_;      ///< per-target posts matched by start()
    std::vector<std::uint64_t> consumed_completes_;  ///< per-origin completes matched by wait()
    std::uint64_t fence_target_ = 0;  ///< epoch a pending fence_begin() waits for
    bool fence_open_ = false;
    bool access_open_ = false;    ///< between start() and complete()
    bool exposure_open_ = false;  ///< between post() and wait()
};

}  // namespace nncomm::rt

// Adaptive protocol selection: the EW cost model, the learned crossover,
// the escape hatches, frozen persistent-plan choices, and the
// chunk-pipelined rendezvous path.
//
// Determinism setup: every convergence test uses 2 ranks (a single
// (src, dst) pair — per-pair FIFO plus one writer per line makes the
// observation sequence program order) and World::set_synthetic_protocol_
// costs (observations are analytic, no clock), so learned thresholds are
// exact values, not ranges.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "coll/persistent.hpp"
#include "runtime/comm.hpp"
#include "runtime/protocol.hpp"

using namespace nncomm;
using dt::Datatype;
using rt::Comm;
using rt::PackFamily;
using rt::Request;
using rt::SchedulePolicy;
using rt::World;

namespace {

constexpr int kDataTag = 11;
constexpr int kTokenTag = 12;

/// es = 200 + 0.3·B, eu = 200 + 0.3·B, rz = 6000 + 0.25·B: the eager path
/// pays both copies, so the crossover sits at
/// (6000 − 400) / (0.6 − 0.25) = 16 000 bytes.
rt::SyntheticProtoCosts crossover_at_16000() {
    rt::SyntheticProtoCosts costs;
    costs.enabled = true;
    costs.eager_send_base_ns = 200.0;
    costs.eager_send_per_byte_ns = 0.3;
    costs.eager_unpack_base_ns = 200.0;
    costs.eager_unpack_per_byte_ns = 0.3;
    costs.rdzv_base_ns = 6000.0;
    costs.rdzv_per_byte_ns = 0.25;
    return costs;
}

/// Feeds all three lines of pair (0 → 1): eager sizes stay below the
/// static threshold, rendezvous sizes above it ride the pre-posted
/// zero-copy path (the receive is guaranteed posted via a token).
void feed_pair(Comm& c, int reps) {
    const std::vector<std::size_t> eager_sizes = {2048, 4096, 8192};
    const std::vector<std::size_t> rdzv_sizes = {65536, 131072, 262144};
    std::vector<std::uint8_t> buf(262144, 0x7e);
    for (int r = 0; r < reps; ++r) {
        for (std::size_t bytes : eager_sizes) {
            if (c.rank() == 0) {
                c.send(buf.data(), bytes, Datatype::byte(), 1, kDataTag);
            } else {
                c.recv(buf.data(), bytes, Datatype::byte(), 0, kDataTag);
            }
        }
        for (std::size_t bytes : rdzv_sizes) {
            if (c.rank() == 0) {
                int token = 0;
                c.recv_n(&token, 1, 1, kTokenTag);
                c.send(buf.data(), bytes, Datatype::byte(), 1, kDataTag);
            } else {
                Request rq = c.irecv(buf.data(), bytes, Datatype::byte(), 0, kDataTag);
                int token = 1;
                c.send_n(&token, 1, 0, kTokenTag);
                c.wait(rq);
            }
        }
    }
}

}  // namespace

// ---------------------------------------------------------------------------
// Unit: env parser, regression line, crossover solver

TEST(Adaptive, EnvParser) {
    EXPECT_TRUE(rt::adaptive_env_enabled(nullptr));
    EXPECT_TRUE(rt::adaptive_env_enabled("ON"));
    EXPECT_TRUE(rt::adaptive_env_enabled("1"));
    EXPECT_TRUE(rt::adaptive_env_enabled(""));
    EXPECT_TRUE(rt::adaptive_env_enabled("off-ish"));
    EXPECT_FALSE(rt::adaptive_env_enabled("OFF"));
    EXPECT_FALSE(rt::adaptive_env_enabled("off"));
    EXPECT_FALSE(rt::adaptive_env_enabled("oFf"));
    EXPECT_FALSE(rt::adaptive_env_enabled("0"));
    EXPECT_FALSE(rt::adaptive_env_enabled("FALSE"));
    EXPECT_FALSE(rt::adaptive_env_enabled("false"));
}

TEST(Adaptive, EwLineRecoversExactLine) {
    rt::EwLine line;
    for (int r = 0; r < 8; ++r) {
        for (double x : {1024.0, 8192.0, 65536.0, 524288.0}) {
            line.observe(x, 100.0 + 0.5 * x);
        }
    }
    const rt::EwLine::Fit f = line.fit();
    EXPECT_EQ(f.n, 32u);
    EXPECT_NEAR(f.a, 100.0f, 1.0f);
    EXPECT_NEAR(f.b, 0.5f, 1e-3f);
}

TEST(Adaptive, CrossoverSolver) {
    auto fit = [](float a, float b, std::uint32_t n) {
        rt::EwLine line;
        // Two exact points pin the line; replay to reach the sample count.
        for (std::uint32_t i = 0; i < n; i += 2) {
            line.observe(1000.0, a + b * 1000.0);
            line.observe(100000.0, a + b * 100000.0);
        }
        return line.fit();
    };
    const auto es = fit(200.0f, 0.3f, 32);
    const auto eu = fit(200.0f, 0.3f, 32);
    const auto rz = fit(6000.0f, 0.25f, 32);
    // (6000 - 400) / (0.6 - 0.25) = 16000.
    const std::size_t s = rt::crossover_bytes(es, eu, rz, 16, 1024, 8 << 20, 32768);
    EXPECT_NEAR(static_cast<double>(s), 16000.0, 64.0);

    // Under-sampled => fallback.
    EXPECT_EQ(rt::crossover_bytes(es, eu, fit(6000.0f, 0.25f, 4), 16, 1024, 8 << 20, 777u),
              777u);
    // Eager dominated per byte and at zero => clamp low.
    EXPECT_EQ(rt::crossover_bytes(es, eu, fit(10.0f, 0.01f, 32), 16, 1024, 8 << 20, 777u),
              1024u);
    // Rendezvous never recovers the handshake => clamp high.
    EXPECT_EQ(rt::crossover_bytes(es, eu, fit(6000.0f, 0.9f, 32), 16, 1024, 8 << 20, 777u),
              static_cast<std::size_t>(8 << 20));
}

// ---------------------------------------------------------------------------
// Runtime: learned threshold from synthetic costs

TEST(Adaptive, LearnsSyntheticCrossover) {
    if (!rt::kAdaptiveCompiled) GTEST_SKIP() << "adaptive machinery compiled out";
    World w(2);
    w.set_synthetic_protocol_costs(crossover_at_16000());
    w.run([](Comm& c) {
        ASSERT_TRUE(c.adaptive_protocol_engaged());
        feed_pair(c, 8);  // 24 observations per line, gate is 16
        c.barrier();
    });
    const std::size_t learned =
        w.learned_threshold(0, 1, PackFamily::Contiguous, /*fallback=*/32768);
    EXPECT_NEAR(static_cast<double>(learned), 16000.0, 160.0);
    EXPECT_GT(w.proto_pair_samples(0, 1), 0u);
}

TEST(Adaptive, CountersAttestChoicesAndWatermarks) {
    if (!rt::kAdaptiveCompiled) GTEST_SKIP() << "adaptive machinery compiled out";
    StatCounters total;
    World w(2);
    w.set_synthetic_protocol_costs(crossover_at_16000());
    w.run([&](Comm& c) {
        feed_pair(c, 8);
        // Post-convergence Auto sends: 20 KiB is above the learned 16 000
        // crossover but below the 32 KiB static default — it must now pick
        // rendezvous; 4 KiB stays eager.
        std::vector<std::uint8_t> buf(20480, 1);
        if (c.rank() == 0) {
            int token = 0;
            c.recv_n(&token, 1, 1, kTokenTag);
            c.send(buf.data(), buf.size(), Datatype::byte(), 1, kDataTag);
        } else {
            Request rq = c.irecv(buf.data(), buf.size(), Datatype::byte(), 0, kDataTag);
            int token = 1;
            c.send_n(&token, 1, 0, kTokenTag);
            c.wait(rq);
        }
        c.barrier();
        static std::mutex mu;
        std::lock_guard<std::mutex> lock(mu);
        total += c.counters();
    });
    EXPECT_GT(total.rt_proto_adapt_updates, 0u);
    EXPECT_GT(total.rt_proto_eager_chosen, 0u);
    EXPECT_GT(total.rt_proto_rdzv_chosen, 0u);
    // Watermarks: the fallback (32 KiB) was consulted before convergence,
    // the learned 16 000 after — both ends visible.
    EXPECT_GT(total.rt_proto_threshold_bytes_hi, 0u);
    EXPECT_GT(total.rt_proto_threshold_bytes_lo, 0u);
    EXPECT_LE(total.rt_proto_threshold_bytes_lo, total.rt_proto_threshold_bytes_hi);
    EXPECT_LE(total.rt_proto_threshold_bytes_lo, 16000u + 160u);
}

// ---------------------------------------------------------------------------
// Escape hatches

TEST(Adaptive, PinnedThresholdDisengages) {
    World w(2);
    w.set_synthetic_protocol_costs(crossover_at_16000());
    w.run([](Comm& c) {
        c.set_rendezvous_threshold(32768);  // explicit pin
        EXPECT_FALSE(c.adaptive_protocol_engaged());
        feed_pair(c, 8);
        c.barrier();
    });
    // Disengaged => nothing observed, threshold stays the fallback.
    EXPECT_EQ(w.proto_pair_samples(0, 1), 0u);
    EXPECT_EQ(w.learned_threshold(0, 1, PackFamily::Contiguous, 32768), 32768u);
}

TEST(Adaptive, SetAdaptiveFalseDisengagesAndTrueClearsPin) {
    World w(2);
    w.run([](Comm& c) {
        EXPECT_EQ(c.adaptive_protocol_engaged(), rt::kAdaptiveCompiled);
        c.set_adaptive_protocol(false);
        EXPECT_FALSE(c.adaptive_protocol_engaged());
        c.set_rendezvous_threshold(1024);
        c.set_adaptive_protocol(true);  // explicit opt-in clears the pin
        EXPECT_EQ(c.adaptive_protocol_engaged(), rt::kAdaptiveCompiled);
        EXPECT_EQ(c.rendezvous_threshold(), 1024u);  // now the fallback
        c.barrier();
    });
}

// ---------------------------------------------------------------------------
// Determinism: seed-stable under the fault-injection matrix

TEST(Adaptive, ConvergenceSeedStableUnderFaultMatrix) {
    if (!rt::kAdaptiveCompiled) GTEST_SKIP() << "adaptive machinery compiled out";
    // Under an active SchedulePolicy the rendezvous claim always declines
    // (delivery is deferred), so the rdzv line never reaches confidence and
    // every seed/level must deterministically report the static fallback —
    // adaptation degrades to the legacy decision instead of diverging.
    for (int level : {1, 2, 3}) {
        for (std::uint64_t seed : {1ull, 42ull, 1009ull}) {
            World w(2);
            w.set_schedule(SchedulePolicy::perturb(seed, level));
            w.set_synthetic_protocol_costs(crossover_at_16000());
            std::uint64_t eager_samples = 0;
            w.run([&](Comm& c) {
                feed_pair(c, 8);
                c.barrier();
                if (c.rank() == 0) eager_samples = c.counters().rt_proto_adapt_updates;
            });
            EXPECT_EQ(w.learned_threshold(0, 1, PackFamily::Contiguous, 32768), 32768u)
                << "seed " << seed << " level " << level;
            // The eager observation stream is program-order deterministic:
            // same count on every seed and level. All six sizes feed the
            // eager line — the declined rendezvous sends degrade to
            // buffered eager and are observed as such.
            EXPECT_EQ(eager_samples, 8u * 6u) << "seed " << seed << " level " << level;
        }
    }
}

// ---------------------------------------------------------------------------
// Persistent plans: frozen protocol choices are rerun-stable

TEST(Adaptive, FrozenPlanChoicesBitIdenticalAcrossReruns) {
    if (!rt::kAdaptiveCompiled) GTEST_SKIP() << "adaptive machinery compiled out";
    rt::ProtoTuneCache::instance().reset();

    auto build_protos = [](World& w) {
        std::vector<rt::Protocol> protos;
        w.run([&](Comm& c) {
            const auto n = static_cast<std::size_t>(c.size());
            std::vector<std::size_t> scounts(n, 0), rcounts(n, 0);
            std::vector<std::ptrdiff_t> sdispls(n, 0), rdispls(n, 0);
            std::vector<Datatype> stypes(n, Datatype::byte()), rtypes(n, Datatype::byte());
            const int peer = 1 - c.rank();
            scounts[static_cast<std::size_t>(peer)] = 65536;
            rcounts[static_cast<std::size_t>(peer)] = 65536;
            std::vector<std::uint8_t> src(65536, 0x3c), dst(65536, 0);
            // The frozen choices under test are the per-peer eager/rdzv
            // decisions of the two-sided schedule; force it so a default
            // RMA selection doesn't replace the Sends with Puts.
            coll::CollConfig cfg;
            cfg.persistent_protocol = rt::Protocol::Rendezvous;
            coll::AlltoallwPlan plan(c, scounts, sdispls, stypes, rcounts, rdispls, rtypes,
                                     cfg);
            plan.execute(src.data(), dst.data());
            EXPECT_EQ(dst[0], 0x3c);
            if (c.rank() == 0) {
                for (const auto& op : plan.schedule().ops) {
                    if (op.kind == coll::ScheduleOpKind::Send) protos.push_back(op.proto);
                }
            }
            c.barrier();
        });
        return protos;
    };

    World w(2);
    w.set_synthetic_protocol_costs(crossover_at_16000());
    const auto first = build_protos(w);
    ASSERT_FALSE(first.empty());
    const auto frozen_after_first = rt::ProtoTuneCache::instance().stats().freezes;
    EXPECT_GT(frozen_after_first, 0u);

    // Drift the cost model between constructions, then rebuild the same
    // pattern: the frozen entry must be adopted verbatim.
    w.run([](Comm& c) {
        feed_pair(c, 8);
        c.barrier();
    });
    const auto second = build_protos(w);
    EXPECT_EQ(first, second);
    const auto stats = rt::ProtoTuneCache::instance().stats();
    EXPECT_EQ(stats.freezes, frozen_after_first);  // no new entries
    EXPECT_GT(stats.hits, 0u);
    rt::ProtoTuneCache::instance().reset();
}

// ---------------------------------------------------------------------------
// Chunk-pipelined rendezvous

TEST(Adaptive, PipelinedRendezvousBitIdenticalToSerial) {
    // Large strided persistent exchange, rendezvous forced. With the
    // pipeline on, the fused Pack+Send must run (counter attests) and the
    // received bytes must match the serial path exactly.
    constexpr std::size_t kBlocks = 4096;
    constexpr std::size_t kElems = 16;  // 512 KiB payload, > pipeline_chunk
    auto run_once = [&](bool pipelined, std::vector<double>* out,
                        std::uint64_t* fused_msgs) {
        World w(2);
        w.run([&](Comm& c) {
            c.set_rendezvous_threshold(1);
            c.set_rendezvous_pipeline(pipelined);
            const auto n = static_cast<std::size_t>(c.size());
            const int peer = 1 - c.rank();
            auto block = Datatype::contiguous(kElems, Datatype::float64());
            auto strided = Datatype::vector(kBlocks, 1, 2, block);
            std::vector<double> src(kBlocks * kElems * 2);
            for (std::size_t i = 0; i < src.size(); ++i) {
                src[i] = static_cast<double>(c.rank() + 1) * static_cast<double>(i % 977);
            }
            std::vector<double> dst(kBlocks * kElems, 0.0);
            std::vector<std::size_t> scounts(n, 0), rcounts(n, 0);
            std::vector<std::ptrdiff_t> sdispls(n, 0), rdispls(n, 0);
            std::vector<Datatype> stypes(n, Datatype::byte()), rtypes(n, Datatype::byte());
            scounts[static_cast<std::size_t>(peer)] = 1;
            stypes[static_cast<std::size_t>(peer)] = strided;
            rcounts[static_cast<std::size_t>(peer)] = kBlocks * kElems;
            rtypes[static_cast<std::size_t>(peer)] = Datatype::float64();
            // Chunk pipelining is a rendezvous-send mechanism; keep the
            // plan on the two-sided path it instruments.
            coll::CollConfig cfg;
            cfg.persistent_protocol = rt::Protocol::Rendezvous;
            coll::AlltoallwPlan plan(c, scounts, sdispls, stypes, rcounts, rdispls, rtypes,
                                     cfg);
            // The fused claim requires the peer's receive to be posted when
            // the send arrives; on an oversubscribed machine a descheduled
            // receiver degrades it to pack-then-send (by design). Keep
            // executing until rank 0's counter attests a fused send, with the
            // break decision exchanged so both ranks stay in lockstep on the
            // collective. Every execute overwrites dst in full, so the
            // iteration count does not affect the bit-identical comparison.
            const int max_iters = pipelined ? 64 : 3;
            int done = 0;
            for (int it = 0; it < max_iters && !done; ++it) {
                plan.execute(src.data(), dst.data());
                int flag = !pipelined && it == 2;
                if (c.rank() == 0) {
                    if (pipelined) flag = c.counters().rt_rdzv_pipelined_msgs > 0 ? 1 : 0;
                    c.send_n(&flag, 1, 1, 901);
                } else {
                    c.recv_n(&flag, 1, 0, 901);
                }
                done = flag;
            }
            c.barrier();
            if (c.rank() == 0) {
                *out = dst;
                *fused_msgs = c.counters().rt_rdzv_pipelined_msgs;
            }
        });
    };
    std::vector<double> serial, piped;
    std::uint64_t serial_fused = 0, piped_fused = 0;
    run_once(false, &serial, &serial_fused);
    run_once(true, &piped, &piped_fused);
    EXPECT_EQ(serial_fused, 0u);
    EXPECT_GT(piped_fused, 0u);
    ASSERT_EQ(serial.size(), piped.size());
    EXPECT_EQ(0, std::memcmp(serial.data(), piped.data(), serial.size() * sizeof(double)));
    // Sanity: the payload actually came from the peer.
    EXPECT_DOUBLE_EQ(piped[1], 2.0 * 1.0);
}

TEST(Adaptive, PipelinedPlanCorrectUnderFaultMatrix) {
    // Under an active SchedulePolicy the staged claim declines and the
    // schedule falls back to pack-then-send; results must stay correct and
    // the fused counter must stay zero.
    constexpr std::size_t kBlocks = 2048;
    constexpr std::size_t kElems = 16;
    for (std::uint64_t seed : {7ull, 99ull}) {
        World w(2);
        w.set_schedule(SchedulePolicy::perturb(seed, 2));
        w.run([&](Comm& c) {
            c.set_rendezvous_threshold(1);
            const auto n = static_cast<std::size_t>(c.size());
            const int peer = 1 - c.rank();
            auto block = Datatype::contiguous(kElems, Datatype::float64());
            auto strided = Datatype::vector(kBlocks, 1, 2, block);
            std::vector<double> src(kBlocks * kElems * 2);
            for (std::size_t i = 0; i < src.size(); ++i) {
                src[i] = static_cast<double>(i % 353);
            }
            std::vector<double> dst(kBlocks * kElems, -1.0);
            std::vector<std::size_t> scounts(n, 0), rcounts(n, 0);
            std::vector<std::ptrdiff_t> sdispls(n, 0), rdispls(n, 0);
            std::vector<Datatype> stypes(n, Datatype::byte()), rtypes(n, Datatype::byte());
            scounts[static_cast<std::size_t>(peer)] = 1;
            stypes[static_cast<std::size_t>(peer)] = strided;
            rcounts[static_cast<std::size_t>(peer)] = kBlocks * kElems;
            rtypes[static_cast<std::size_t>(peer)] = Datatype::float64();
            coll::AlltoallwPlan plan(c, scounts, sdispls, stypes, rcounts, rdispls, rtypes);
            plan.execute(src.data(), dst.data());
            for (std::size_t b = 0; b < kBlocks; ++b) {
                for (std::size_t e = 0; e < kElems; ++e) {
                    ASSERT_DOUBLE_EQ(dst[b * kElems + e],
                                     static_cast<double>((b * kElems * 2 + e) % 353))
                        << "block " << b << " elem " << e;
                }
            }
            EXPECT_EQ(c.counters().rt_rdzv_pipelined_msgs, 0u);
            c.barrier();
        });
    }
}

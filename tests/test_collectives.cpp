// Correctness tests for every collective algorithm at multiple world sizes.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "coll/collectives.hpp"
#include "coll/util.hpp"

namespace {

using namespace nncomm;
using coll::AllgathervAlgo;
using coll::AlltoallwAlgo;
using coll::CollConfig;
using coll::ReduceOp;
using dt::Datatype;
using rt::Comm;
using rt::World;

// ---------------------------------------------------------------------------
// bcast / reduce / allreduce / gather / scatter

TEST(Bcast, AllRootsAllSizes) {
    for (int n : {1, 2, 3, 5, 8}) {
        World w(n);
        for (int root = 0; root < n; ++root) {
            w.run([&](Comm& c) {
                std::vector<int> data(16, c.rank() == root ? 77 : -1);
                coll::bcast(c, data.data(), data.size() * 4, Datatype::byte(), root);
                for (int v : data) EXPECT_EQ(v, 77) << "n=" << n << " root=" << root;
            });
        }
    }
}

TEST(Reduce, SumToEachRoot) {
    const int n = 6;
    World w(n);
    for (int root = 0; root < n; ++root) {
        w.run([&](Comm& c) {
            std::vector<long> v{static_cast<long>(c.rank()), 10L * c.rank()};
            coll::reduce(c, v.data(), v.size(), ReduceOp::Sum, root);
            if (c.rank() == root) {
                EXPECT_EQ(v[0], n * (n - 1) / 2);
                EXPECT_EQ(v[1], 10L * n * (n - 1) / 2);
            }
        });
    }
}

TEST(Reduce, MaxAndMin) {
    const int n = 7;
    World w(n);
    w.run([&](Comm& c) {
        double mx = static_cast<double>(c.rank());
        coll::reduce(c, &mx, 1, ReduceOp::Max, 0);
        if (c.rank() == 0) EXPECT_DOUBLE_EQ(mx, n - 1.0);
        double mn = static_cast<double>(c.rank()) + 5.0;
        coll::reduce(c, &mn, 1, ReduceOp::Min, 0);
        if (c.rank() == 0) EXPECT_DOUBLE_EQ(mn, 5.0);
    });
}

TEST(Allreduce, SumIdenticalEverywhere) {
    for (int n : {1, 2, 4, 5, 9}) {
        World w(n);
        w.run([&](Comm& c) {
            double v = 1.5;
            coll::allreduce(c, &v, 1, ReduceOp::Sum);
            EXPECT_DOUBLE_EQ(v, 1.5 * n);
            EXPECT_DOUBLE_EQ(coll::allreduce_one(c, static_cast<double>(c.rank()), ReduceOp::Max),
                             n - 1.0);
        });
    }
}

TEST(Gather, ContiguousBlocks) {
    const int n = 5;
    World w(n);
    w.run([&](Comm& c) {
        std::array<int, 3> mine{c.rank(), c.rank() * 10, c.rank() * 100};
        std::vector<int> all(3 * static_cast<std::size_t>(n), -1);
        coll::gather(c, mine.data(), mine.size() * 4, Datatype::byte(), all.data(), 12,
                     Datatype::byte(), 2);
        if (c.rank() == 2) {
            for (int i = 0; i < n; ++i) {
                EXPECT_EQ(all[static_cast<std::size_t>(3 * i)], i);
                EXPECT_EQ(all[static_cast<std::size_t>(3 * i + 2)], i * 100);
            }
        }
    });
}

TEST(Gatherv, VariableBlocks) {
    const int n = 4;
    World w(n);
    w.run([&](Comm& c) {
        // Rank r contributes r+1 doubles of value r.
        std::vector<double> mine(static_cast<std::size_t>(c.rank()) + 1,
                                 static_cast<double>(c.rank()));
        std::vector<std::size_t> counts{1, 2, 3, 4};
        std::vector<std::size_t> displs{0, 1, 3, 6};
        std::vector<double> all(10, -1.0);
        coll::gatherv(c, mine.data(), mine.size(), Datatype::float64(), all.data(), counts,
                      displs, Datatype::float64(), 0);
        if (c.rank() == 0) {
            const std::vector<double> expect{0, 1, 1, 2, 2, 2, 3, 3, 3, 3};
            EXPECT_EQ(all, expect);
        }
    });
}

TEST(Scatterv, VariableBlocks) {
    const int n = 4;
    World w(n);
    w.run([&](Comm& c) {
        std::vector<double> all;
        std::vector<std::size_t> counts{1, 2, 3, 4};
        std::vector<std::size_t> displs{0, 1, 3, 6};
        if (c.rank() == 1) {
            all = {0, 1, 1, 2, 2, 2, 3, 3, 3, 3};
        }
        std::vector<double> mine(static_cast<std::size_t>(c.rank()) + 1, -1.0);
        coll::scatterv(c, all.data(), counts, displs, Datatype::float64(), mine.data(),
                       mine.size(), Datatype::float64(), 1);
        for (double v : mine) EXPECT_DOUBLE_EQ(v, static_cast<double>(c.rank()));
    });
}

// ---------------------------------------------------------------------------
// allgatherv — all algorithms, uniform and outlier volume sets

struct AgvCase {
    int nranks;
    AllgathervAlgo algo;
};

class AllgathervAll : public ::testing::TestWithParam<std::tuple<int, int>> {};

void run_allgatherv_case(int n, AllgathervAlgo algo, bool outlier) {
    if (algo == AllgathervAlgo::RecursiveDoubling && (n & (n - 1)) != 0) {
        GTEST_SKIP() << "recursive doubling needs power-of-two ranks";
    }
    World w(n);
    w.run([&](Comm& c) {
        // Rank r contributes `counts[r]` doubles of value 1000*r + j.
        std::vector<std::size_t> counts(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            counts[static_cast<std::size_t>(i)] =
                (outlier && i == 0) ? 4096 : static_cast<std::size_t>(1 + (i % 3));
        }
        std::vector<std::size_t> displs(static_cast<std::size_t>(n));
        std::size_t at = 0;
        for (int i = 0; i < n; ++i) {
            displs[static_cast<std::size_t>(i)] = at;
            at += counts[static_cast<std::size_t>(i)];
        }
        const std::size_t mine = counts[static_cast<std::size_t>(c.rank())];
        std::vector<double> send(mine);
        for (std::size_t j = 0; j < mine; ++j) {
            send[j] = 1000.0 * c.rank() + static_cast<double>(j);
        }
        std::vector<double> recv(at, -1.0);
        CollConfig cfg;
        cfg.allgatherv_algo = algo;
        coll::allgatherv(c, send.data(), mine, Datatype::float64(), recv.data(), counts, displs,
                         Datatype::float64(), cfg);
        for (int i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < counts[static_cast<std::size_t>(i)]; ++j) {
                EXPECT_DOUBLE_EQ(recv[displs[static_cast<std::size_t>(i)] + j],
                                 1000.0 * i + static_cast<double>(j))
                    << "n=" << n << " rank-block=" << i << " j=" << j;
            }
        }
    });
}

TEST_P(AllgathervAll, UniformVolumes) {
    const auto [n, algo_i] = GetParam();
    run_allgatherv_case(n, static_cast<AllgathervAlgo>(algo_i), /*outlier=*/false);
}

TEST_P(AllgathervAll, OutlierVolumes) {
    const auto [n, algo_i] = GetParam();
    run_allgatherv_case(n, static_cast<AllgathervAlgo>(algo_i), /*outlier=*/true);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllgathervAll,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16),
                                            ::testing::Values(0, 1, 2, 3)));

TEST(Allgather, UniformWrapper) {
    const int n = 6;
    World w(n);
    w.run([&](Comm& c) {
        std::array<double, 2> mine{c.rank() + 0.25, c.rank() + 0.75};
        std::vector<double> all(2 * static_cast<std::size_t>(n));
        coll::allgather(c, mine.data(), 2, Datatype::float64(), all.data(), 2,
                        Datatype::float64());
        for (int i = 0; i < n; ++i) {
            EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * i)], i + 0.25);
            EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * i + 1)], i + 0.75);
        }
    });
}

TEST(Allgatherv, NoncontiguousRecvType) {
    // Gather into every third double of the destination: recvtype =
    // resized double with 24-byte extent.
    const int n = 4;
    World w(n);
    w.run([&](Comm& c) {
        auto spaced = Datatype::resized(Datatype::float64(), 0, 24);
        std::vector<std::size_t> counts(static_cast<std::size_t>(n), 2);
        std::vector<std::size_t> displs{0, 2, 4, 6};
        double send[2] = {c.rank() + 0.5, c.rank() + 0.75};
        std::vector<double> recv(3 * 8, -1.0);
        coll::allgatherv(c, send, 16, Datatype::byte(), recv.data(), counts, displs, spaced);
        for (int i = 0; i < n; ++i) {
            EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(6 * i)], i + 0.5);
            EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(6 * i + 3)], i + 0.75);
            EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(6 * i + 1)], -1.0);
        }
    });
}

TEST(Allgatherv, SizeMismatchRejected) {
    World w(2);
    EXPECT_THROW(w.run([](Comm& c) {
                     std::vector<std::size_t> counts{1, 1};
                     std::vector<std::size_t> displs{0, 1};
                     double s[2] = {0, 0};
                     double r[2];
                     coll::allgatherv(c, s, 2, Datatype::float64(), r, counts, displs,
                                      Datatype::float64());
                 }),
                 nncomm::Error);
}

// ---------------------------------------------------------------------------
// alltoallw — both algorithms, nearest-neighbor ring pattern

class AlltoallwAll : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AlltoallwAll, RingNeighborExchange) {
    const auto [n, algo_i] = GetParam();
    const auto algo = static_cast<AlltoallwAlgo>(algo_i);
    World w(n);
    w.run([&](Comm& c) {
        // The paper's Fig. 15 pattern: each rank exchanges a 10x10 matrix of
        // doubles with its ring successor and predecessor, nothing with
        // anyone else.
        const int rank = c.rank();
        const int succ = (rank + 1) % n;
        const int pred = (rank + n - 1) % n;
        const std::size_t nn = static_cast<std::size_t>(n);
        constexpr std::size_t kElems = 100;

        std::vector<double> sendbuf(nn * kElems, 0.0);
        std::vector<double> recvbuf(nn * kElems, -1.0);
        std::vector<std::size_t> scounts(nn, 0), rcounts(nn, 0);
        std::vector<std::ptrdiff_t> sdispls(nn, 0), rdispls(nn, 0);
        std::vector<Datatype> types(nn, Datatype::float64());
        for (std::size_t i = 0; i < nn; ++i) {
            sdispls[i] = static_cast<std::ptrdiff_t>(i * kElems * 8);
            rdispls[i] = static_cast<std::ptrdiff_t>(i * kElems * 8);
        }
        for (int peer : {succ, pred}) {
            const auto p = static_cast<std::size_t>(peer);
            scounts[p] = kElems;
            rcounts[p] = kElems;
            for (std::size_t j = 0; j < kElems; ++j) {
                sendbuf[p * kElems + j] = 10000.0 * rank + 100.0 * peer + static_cast<double>(j);
            }
        }
        CollConfig cfg;
        cfg.alltoallw_algo = algo;
        coll::alltoallw(c, sendbuf.data(), scounts, sdispls, types, recvbuf.data(), rcounts,
                        rdispls, types, cfg);

        for (int peer : {succ, pred}) {
            const auto p = static_cast<std::size_t>(peer);
            for (std::size_t j = 0; j < kElems; ++j) {
                EXPECT_DOUBLE_EQ(recvbuf[p * kElems + j],
                                 10000.0 * peer + 100.0 * rank + static_cast<double>(j))
                    << "n=" << n << " peer=" << peer << " j=" << j;
            }
        }
        // Non-neighbors must remain untouched (n > 3 makes them distinct).
        if (n > 3) {
            const auto far = static_cast<std::size_t>((rank + 2) % n);
            EXPECT_DOUBLE_EQ(recvbuf[far * kElems], -1.0);
        }
    });
}

TEST_P(AlltoallwAll, NonuniformVolumesWithDerivedTypes) {
    const auto [n, algo_i] = GetParam();
    const auto algo = static_cast<AlltoallwAlgo>(algo_i);
    if (n < 2) GTEST_SKIP();
    World w(n);
    w.run([&](Comm& c) {
        // Rank r sends (r + i) % 4 strided doubles to each rank i (zero for
        // some pairs), sent as every-other-double and received densely.
        const int rank = c.rank();
        const auto nn = static_cast<std::size_t>(n);
        auto strided = Datatype::resized(Datatype::float64(), 0, 16);

        auto vol = [&](int from, int to) { return static_cast<std::size_t>((from + to) % 4); };

        std::vector<double> sendbuf(nn * 8, 0.0);
        std::vector<double> recvbuf(nn * 4, -1.0);
        std::vector<std::size_t> scounts(nn), rcounts(nn);
        std::vector<std::ptrdiff_t> sdispls(nn), rdispls(nn);
        std::vector<Datatype> stypes(nn, strided), rtypes(nn, Datatype::float64());
        for (int i = 0; i < n; ++i) {
            const auto ii = static_cast<std::size_t>(i);
            scounts[ii] = vol(rank, i);
            rcounts[ii] = vol(i, rank);
            sdispls[ii] = static_cast<std::ptrdiff_t>(ii * 8 * 8);
            rdispls[ii] = static_cast<std::ptrdiff_t>(ii * 4 * 8);
            for (std::size_t j = 0; j < scounts[ii]; ++j) {
                sendbuf[ii * 8 + 2 * j] = 100.0 * rank + 10.0 * i + static_cast<double>(j);
            }
        }
        CollConfig cfg;
        cfg.alltoallw_algo = algo;
        cfg.small_msg_threshold = 17;  // split the 0..3-double volumes across bins
        coll::alltoallw(c, sendbuf.data(), scounts, sdispls, stypes, recvbuf.data(), rcounts,
                        rdispls, rtypes, cfg);
        for (int i = 0; i < n; ++i) {
            const auto ii = static_cast<std::size_t>(i);
            for (std::size_t j = 0; j < rcounts[ii]; ++j) {
                EXPECT_DOUBLE_EQ(recvbuf[ii * 4 + j],
                                 100.0 * i + 10.0 * rank + static_cast<double>(j))
                    << "from=" << i << " j=" << j;
            }
            for (std::size_t j = rcounts[ii]; j < 4; ++j) {
                EXPECT_DOUBLE_EQ(recvbuf[ii * 4 + j], -1.0);
            }
        }
    });
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlltoallwAll,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8, 12),
                                            ::testing::Values(1, 2)));  // RoundRobin, Binned

TEST(Alltoall, UniformContiguous) {
    const int n = 5;
    World w(n);
    w.run([&](Comm& c) {
        const auto nn = static_cast<std::size_t>(n);
        std::vector<int> send(nn * 2), recv(nn * 2, -1);
        for (int i = 0; i < n; ++i) {
            send[static_cast<std::size_t>(2 * i)] = 100 * c.rank() + i;
            send[static_cast<std::size_t>(2 * i + 1)] = -100 * c.rank() - i;
        }
        coll::alltoall(c, send.data(), 8, Datatype::byte(), recv.data());
        for (int i = 0; i < n; ++i) {
            EXPECT_EQ(recv[static_cast<std::size_t>(2 * i)], 100 * i + c.rank());
            EXPECT_EQ(recv[static_cast<std::size_t>(2 * i + 1)], -100 * i - c.rank());
        }
    });
}

// ---------------------------------------------------------------------------
// copy_typed aliasing (the local "self send" every alltoallw performs)

TEST(CopyTyped, IdenticalInPlaceCopyIsNoop) {
    // src == dst on the contiguous path: must not call memcpy on the
    // identical range (undefined behavior the ASan gate flags).
    std::vector<int> buf(16);
    std::iota(buf.begin(), buf.end(), 0);
    coll::detail::copy_typed(buf.data(), buf.size() * 4, Datatype::byte(), buf.data(),
                             buf.size() * 4, Datatype::byte());
    for (int i = 0; i < 16; ++i) EXPECT_EQ(buf[static_cast<std::size_t>(i)], i);
}

TEST(CopyTyped, OverlappingContiguousCopyUsesMemmove) {
    // Forward-overlapping ranges (dst inside src): memcpy is undefined
    // here; memmove must produce the shifted copy intact.
    std::vector<int> buf(24);
    std::iota(buf.begin(), buf.end(), 0);
    coll::detail::copy_typed(buf.data(), 16 * 4, Datatype::byte(), buf.data() + 4, 16 * 4,
                             Datatype::byte());
    for (int i = 0; i < 16; ++i) EXPECT_EQ(buf[static_cast<std::size_t>(i + 4)], i);
}

TEST(CopyTyped, AlltoallwInPlaceSelfExchange) {
    // Both algorithms route the self block through copy_typed. With
    // sendbuf == recvbuf, zero volume for every other peer, and identical
    // self displacements, the self copy is fully aliased: it must be a
    // no-op, not a memcpy over the identical range.
    for (auto algo : {AlltoallwAlgo::RoundRobin, AlltoallwAlgo::Binned}) {
        const int n = 3;
        World w(n);
        w.run([&](Comm& c) {
            const auto un = static_cast<std::size_t>(n);
            const auto me = static_cast<std::size_t>(c.rank());
            CollConfig cfg;
            cfg.alltoallw_algo = algo;
            std::vector<std::size_t> counts(un, 0);
            counts[me] = 4;
            std::vector<std::ptrdiff_t> displs(un, 0);
            std::vector<Datatype> types(un, Datatype::int32());
            std::vector<std::int32_t> buf(8);
            std::iota(buf.begin(), buf.end(), c.rank() * 10);
            coll::alltoallw(c, buf.data(), counts, displs, types, buf.data(), counts, displs,
                            types, cfg);
            for (int i = 0; i < 8; ++i) {
                EXPECT_EQ(buf[static_cast<std::size_t>(i)], c.rank() * 10 + i)
                    << "algo=" << static_cast<int>(algo);
            }
        });
    }
}

TEST(CopyTyped, AlltoallwOverlappingSelfExchange) {
    // Partially overlapping self displacements (recv block starts 8 bytes
    // into the send block): the contiguous path must behave like memmove.
    const int n = 2;
    World w(n);
    w.run([&](Comm& c) {
        const auto un = static_cast<std::size_t>(n);
        const auto me = static_cast<std::size_t>(c.rank());
        std::vector<std::size_t> counts(un, 0);
        counts[me] = 4;
        std::vector<std::ptrdiff_t> sdispls(un, 0), rdispls(un, 0);
        rdispls[me] = 8;
        std::vector<Datatype> types(un, Datatype::int32());
        std::vector<std::int32_t> buf(8);
        std::iota(buf.begin(), buf.end(), 0);
        coll::alltoallw(c, buf.data(), counts, sdispls, types, buf.data(), counts, rdispls,
                        types);
        // buf[2..5] now holds the original buf[0..3]; the head is untouched.
        EXPECT_EQ(buf[0], 0);
        EXPECT_EQ(buf[1], 1);
        for (int i = 0; i < 4; ++i) EXPECT_EQ(buf[static_cast<std::size_t>(i + 2)], i);
    });
}

}  // namespace

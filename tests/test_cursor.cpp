// Tests for TypeCursor: advancing, signature walking, linear re-search and
// indexed seek, plus reference pack/unpack round-trips.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "core/rng.hpp"
#include "datatype/cursor.hpp"
#include "datatype/pack.hpp"

namespace {

using nncomm::Rng;
using nncomm::StatCounters;
using nncomm::dt::Datatype;
using nncomm::dt::TypeCursor;

Datatype column_type(std::size_t n) {
    auto elem = Datatype::contiguous(3, Datatype::float64());
    return Datatype::vector(n, 1, static_cast<std::ptrdiff_t>(n), elem);
}

TEST(Cursor, FreshCursorAtStart) {
    auto t = column_type(8);
    TypeCursor cur(&t.flat(), 1);
    EXPECT_EQ(cur.position(), 0u);
    EXPECT_EQ(cur.total_bytes(), 8u * 24u);
    EXPECT_FALSE(cur.at_end());
    EXPECT_EQ(cur.current_offset(), 0);
    EXPECT_EQ(cur.current_block_remaining(), 24u);
}

TEST(Cursor, AdvanceWithinBlock) {
    auto t = column_type(8);
    TypeCursor cur(&t.flat(), 1);
    cur.advance(10);
    EXPECT_EQ(cur.position(), 10u);
    EXPECT_EQ(cur.current_offset(), 10);
    EXPECT_EQ(cur.current_block_remaining(), 14u);
}

TEST(Cursor, AdvanceAcrossBlocks) {
    auto t = column_type(8);
    TypeCursor cur(&t.flat(), 1);
    cur.advance(24 + 5);  // into block 1
    EXPECT_EQ(cur.current_offset(), 8 * 24 + 5);
    cur.advance(19 + 24);  // consume rest of block 1 and all of block 2
    EXPECT_EQ(cur.current_offset(), 3 * 8 * 24);
}

TEST(Cursor, AdvanceToEnd) {
    auto t = column_type(4);
    TypeCursor cur(&t.flat(), 1);
    cur.advance(cur.total_bytes());
    EXPECT_TRUE(cur.at_end());
}

TEST(Cursor, MultipleInstancesUseExtentStride) {
    // Two instances of the column type: the second starts extent() bytes in.
    auto t = column_type(4);
    TypeCursor cur(&t.flat(), 2);
    EXPECT_EQ(cur.total_bytes(), 2u * 4u * 24u);
    cur.advance(4 * 24);  // finished first instance
    EXPECT_EQ(cur.current_offset(), t.extent());
}

TEST(Cursor, SkipBlockWalksSignature) {
    auto t = column_type(8);
    TypeCursor cur(&t.flat(), 1);
    EXPECT_EQ(cur.skip_block(), 24u);
    EXPECT_EQ(cur.position(), 24u);
    cur.advance(4);
    EXPECT_EQ(cur.skip_block(), 20u);  // partial block
}

TEST(Cursor, RewindResets) {
    auto t = column_type(8);
    TypeCursor cur(&t.flat(), 1);
    cur.advance(100);
    cur.rewind();
    EXPECT_EQ(cur.position(), 0u);
    EXPECT_EQ(cur.current_offset(), 0);
}

TEST(Cursor, SeekLinearCountsVisitedBlocks) {
    auto t = column_type(16);  // 16 blocks of 24 bytes
    TypeCursor cur(&t.flat(), 1);
    StatCounters c;
    cur.seek_linear(10 * 24, c);
    EXPECT_EQ(cur.position(), 240u);
    EXPECT_EQ(c.search_events, 1u);
    EXPECT_EQ(c.search_blocks_visited, 10u);
    // Mid-block target still visits the containing block.
    cur.seek_linear(10 * 24 + 7, c);
    EXPECT_EQ(c.search_events, 2u);
    EXPECT_EQ(c.search_blocks_visited, 10u + 11u);
    EXPECT_EQ(cur.current_block_remaining(), 17u);
}

TEST(Cursor, SeekLinearBeyondEndRejected) {
    auto t = column_type(4);
    TypeCursor cur(&t.flat(), 1);
    StatCounters c;
    EXPECT_THROW(cur.seek_linear(cur.total_bytes() + 1, c), nncomm::Error);
}

TEST(Cursor, SeekIndexedMatchesSeekLinear) {
    auto t = column_type(32);
    Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        const auto target = rng.uniform_u64(0, 3 * 32 * 24);  // count=3 instances
        TypeCursor a(&t.flat(), 3);
        TypeCursor b(&t.flat(), 3);
        StatCounters c;
        a.seek_linear(target, c);
        b.seek_indexed(target);
        EXPECT_EQ(a.position(), b.position());
        if (!a.at_end()) {
            EXPECT_EQ(a.current_offset(), b.current_offset());
            EXPECT_EQ(a.current_block_remaining(), b.current_block_remaining());
        }
    }
}

TEST(Cursor, SeekIndexedToEnd) {
    auto t = column_type(4);
    TypeCursor cur(&t.flat(), 2);
    cur.seek_indexed(cur.total_bytes());
    EXPECT_TRUE(cur.at_end());
}

// ---------------------------------------------------------------------------
// pack/unpack round trips

TEST(Pack, ColumnExtraction) {
    // 8x8 matrix of 3-double elements; packing the column type must yield
    // exactly the first column's values.
    constexpr std::size_t n = 8;
    std::vector<double> m(n * n * 3);
    std::iota(m.begin(), m.end(), 0.0);
    auto col = column_type(n);
    auto packed = nncomm::dt::pack_all(m.data(), col, 1);
    ASSERT_EQ(packed.size(), n * 24u);
    const double* p = reinterpret_cast<const double*>(packed.data());
    for (std::size_t row = 0; row < n; ++row) {
        for (std::size_t k = 0; k < 3; ++k) {
            EXPECT_DOUBLE_EQ(p[row * 3 + k], static_cast<double>(row * n * 3 + k));
        }
    }
}

TEST(Pack, UnpackScattersBack) {
    constexpr std::size_t n = 8;
    std::vector<double> src(n * n * 3);
    std::iota(src.begin(), src.end(), 0.0);
    auto col = column_type(n);
    auto packed = nncomm::dt::pack_all(src.data(), col, 1);

    std::vector<double> dst(n * n * 3, -1.0);
    nncomm::dt::unpack_all(dst.data(), col, 1, packed);
    for (std::size_t row = 0; row < n; ++row) {
        for (std::size_t k = 0; k < 3; ++k) {
            EXPECT_DOUBLE_EQ(dst[row * n * 3 + k], src[row * n * 3 + k]);
        }
    }
    // Untouched positions stay -1.
    EXPECT_DOUBLE_EQ(dst[3], -1.0);
}

TEST(Pack, PartialPackResumesCorrectly) {
    constexpr std::size_t n = 16;
    std::vector<double> m(n * n * 3);
    std::iota(m.begin(), m.end(), 0.0);
    auto col = column_type(n);

    auto whole = nncomm::dt::pack_all(m.data(), col, 1);

    // Pack in awkward chunk sizes and compare.
    TypeCursor cur(&col.flat(), 1);
    std::vector<std::byte> piecewise(whole.size());
    std::size_t off = 0;
    const std::size_t chunks[] = {1, 7, 23, 64, 5, 1000000};
    for (std::size_t c : chunks) {
        if (cur.at_end()) break;
        const std::size_t want = std::min(c, piecewise.size() - off);
        off += nncomm::dt::pack_bytes(reinterpret_cast<const std::byte*>(m.data()), cur,
                                      std::span<std::byte>(piecewise.data() + off, want));
    }
    ASSERT_EQ(off, whole.size());
    EXPECT_EQ(std::memcmp(piecewise.data(), whole.data(), whole.size()), 0);
}

// Property: pack followed by unpack into a zeroed buffer reproduces exactly
// the bytes the type covers, for randomized type trees.
class PackRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

Datatype random_type(Rng& rng, int depth) {
    if (depth == 0) {
        switch (rng.uniform_u64(0, 2)) {
            case 0: return Datatype::float64();
            case 1: return Datatype::int32();
            default: return Datatype::byte();
        }
    }
    auto child = random_type(rng, depth - 1);
    switch (rng.uniform_u64(0, 3)) {
        case 0:
            return Datatype::contiguous(rng.uniform_u64(1, 4), child);
        case 1: {
            const std::size_t count = rng.uniform_u64(1, 5);
            const std::size_t bl = rng.uniform_u64(1, 3);
            const std::ptrdiff_t stride =
                static_cast<std::ptrdiff_t>(bl + rng.uniform_u64(0, 4));
            return Datatype::vector(count, bl, stride, child);
        }
        case 2: {
            const std::size_t nb = rng.uniform_u64(1, 4);
            std::vector<std::size_t> lens(nb);
            std::vector<std::ptrdiff_t> displs(nb);
            std::ptrdiff_t at = 0;
            for (std::size_t i = 0; i < nb; ++i) {
                lens[i] = rng.uniform_u64(1, 3);
                displs[i] = at;
                at += static_cast<std::ptrdiff_t>(lens[i] + rng.uniform_u64(0, 3));
            }
            return Datatype::indexed(lens, displs, child);
        }
        default:
            return Datatype::resized(child, 0,
                                     child.extent() + static_cast<std::ptrdiff_t>(
                                                          rng.uniform_u64(0, 16)));
    }
}

TEST_P(PackRoundTrip, RandomTypeTrees) {
    Rng rng(GetParam());
    auto t = random_type(rng, static_cast<int>(rng.uniform_u64(1, 4)));
    const std::size_t count = rng.uniform_u64(1, 3);

    // Buffer covering count instances (extents are nonnegative here).
    const std::size_t span = static_cast<std::size_t>(t.extent()) * count + 64;
    std::vector<std::byte> src(span);
    for (std::size_t i = 0; i < span; ++i) src[i] = static_cast<std::byte>(i * 131 + 7);

    auto packed = nncomm::dt::pack_all(src.data(), t, count);
    EXPECT_EQ(packed.size(), t.size() * count);

    std::vector<std::byte> dst(span, std::byte{0});
    nncomm::dt::unpack_all(dst.data(), t, count, packed);

    // Every byte the type covers must match src; the rest must stay zero.
    // Recover coverage from the flattened form.
    std::vector<bool> covered(span, false);
    for (std::size_t rep = 0; rep < count; ++rep) {
        for (const auto& b : t.flat().blocks()) {
            const std::ptrdiff_t base =
                static_cast<std::ptrdiff_t>(rep) * t.extent() + b.offset;
            for (std::size_t j = 0; j < b.length; ++j) {
                covered[static_cast<std::size_t>(base) + j] = true;
            }
        }
    }
    for (std::size_t i = 0; i < span; ++i) {
        if (covered[i]) {
            EXPECT_EQ(dst[i], src[i]) << "at " << i;
        } else {
            EXPECT_EQ(dst[i], std::byte{0}) << "at " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PackRoundTrip, ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
